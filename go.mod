module orwlplace

go 1.24
