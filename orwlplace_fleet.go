package orwlplace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"orwlplace/internal/orwlnet"
	"orwlplace/internal/placement"
)

// The fleet adaptive loop: the client half of the daemon-hosted
// control plane. A process registers its program's task range as a
// lease, ships observed-traffic windows up on a cadence, and applies
// the remaps the daemon's controller pushes down — closed-loop
// placement where the reconciler runs in the daemon and the processes
// only measure and obey.

// Remap is one adopted fleet mapping pushed to watchers: the
// machine-global assignment stamped with a per-machine epoch.
type Remap = orwlnet.Remap

// ProtoFleet is the wire protocol version that carries the fleet
// control plane (leases, observed reports, remap subscriptions).
const ProtoFleet = orwlnet.ProtoFleet

// FleetAdaptiveConfig tunes a fleet adaptive loop.
type FleetAdaptiveConfig struct {
	// Machine routes the lease and the subscription ("" = the daemon's
	// default machine).
	Machine string
	// Peer identifies this process in the daemon's lease table; two
	// registrations with the same (machine, peer) replace each other.
	// "" derives an identity from the process id.
	Peer string
	// TaskBase is where this program's tasks sit in the machine-global
	// task space: local task i is fleet task TaskBase+i. Disjoint
	// processes on one machine use disjoint ranges.
	TaskBase int
	// Interval is the report cadence for Run (0 = 250ms).
	Interval time.Duration
	// Token is the lease ownership token presented at registration: a
	// daemon-side lease holding a non-zero token can only be displaced
	// by a registration carrying the same token, so a hostile peer
	// reusing this (machine, peer) identity cannot hijack the lease.
	// 0 generates a random token, which is the right default; set it
	// explicitly only to share one identity across process restarts.
	Token uint64
}

// defaultReportInterval paces Run's observed-window reports.
const defaultReportInterval = 250 * time.Millisecond

// FleetAdaptive is one process's membership in the fleet control
// plane: a lease, a report sequence, and the remap subscription.
// Build with NewFleetAdaptive, drive with Run (or Report/ApplyRemap
// for manual control).
type FleetAdaptive struct {
	rs   *RemotePlacement
	prog *Program
	cfg  FleetAdaptiveConfig

	leaseID uint64
	count   int

	mu       sync.Mutex
	seq      uint64
	applied  uint64 // last applied remap epoch
	reports  uint64
	remapped uint64
	dropped  uint64 // windows lost to retransmit-queue overflow
	releases uint64 // lease re-registrations after the daemon lost it
	sparse   uint64 // remaps applied via the O(changed) sparse re-bind
	rebound  uint64 // individual task bindings committed across all remaps

	// dropWarned gates the overflow log line: one line per overflow
	// episode, reset when the queue drains, so a prolonged outage does
	// not flood the log at report cadence.
	dropWarned bool

	// pending holds windows whose send failed, keyed by the sequence
	// number they were first assigned: retransmitting under the same
	// seq is safe (the daemon dedups), so a window that did arrive
	// before the error is never double-counted, and one that did not is
	// not lost. Bounded: a prolonged outage drops the oldest windows.
	pending []pendingReport
}

type pendingReport struct {
	seq uint64
	w   *Matrix
}

// maxPendingReports bounds the retransmit queue.
const maxPendingReports = 16

// NewFleetAdaptive registers prog's task range with the daemon behind
// remote and returns the loop. The daemon must speak ProtoFleet and
// host a control plane (orwlnetd -adaptive). The program must be
// scheduled: the lease covers its task count.
func NewFleetAdaptive(ctx context.Context, remote *RemotePlacement, prog *Program, cfg FleetAdaptiveConfig) (*FleetAdaptive, error) {
	if remote == nil {
		return nil, fmt.Errorf("orwlplace: nil remote service")
	}
	if prog == nil {
		return nil, fmt.Errorf("orwlplace: nil program")
	}
	n := prog.NumTasks()
	if n == 0 {
		return nil, fmt.Errorf("orwlplace: program has no tasks to lease")
	}
	if cfg.Peer == "" {
		cfg.Peer = fmt.Sprintf("pid-%d", os.Getpid())
	}
	if cfg.Interval <= 0 {
		cfg.Interval = defaultReportInterval
	}
	if cfg.Token == 0 {
		cfg.Token = randomLeaseToken()
	}
	id, err := remote.RegisterLeaseToken(ctx, cfg.Machine, cfg.Peer, cfg.TaskBase, n, cfg.Token)
	if err != nil {
		return nil, err
	}
	return &FleetAdaptive{rs: remote, prog: prog, cfg: cfg, leaseID: id, count: n}, nil
}

// randomLeaseToken draws a non-zero 64-bit ownership token.
func randomLeaseToken() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; fall back to a
		// pid-derived token rather than the unowned sentinel 0.
		return uint64(os.Getpid())<<16 | 1
	}
	t := binary.LittleEndian.Uint64(b[:])
	if t == 0 {
		t = 1
	}
	return t
}

// LeaseID returns the daemon-assigned lease identity (it changes if
// the loop re-registers after a daemon that lost its state restarts).
func (f *FleetAdaptive) LeaseID() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leaseID
}

// reLease re-registers the lease under the same (machine, peer,
// token) identity after the daemon reports it unknown — the daemon
// restarted without (or with a stale) snapshot. The report sequence
// keeps counting from where it was: the fresh daemon-side lease has
// seen no sequence numbers, so queued retransmits still land.
func (f *FleetAdaptive) reLease(ctx context.Context) error {
	id, err := f.rs.RegisterLeaseToken(ctx, f.cfg.Machine, f.cfg.Peer, f.cfg.TaskBase, f.count, f.cfg.Token)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.leaseID = id
	f.releases++
	f.mu.Unlock()
	return nil
}

// Report ships the program's observed-traffic window accumulated since
// the previous report, after retransmitting any windows an earlier
// failed Report left queued. An empty window is skipped (no RPC, no
// sequence burn); it is not an error. If the daemon no longer knows
// the lease (it restarted without snapshot state), Report re-registers
// under the same ownership token and resumes on the fresh lease.
func (f *FleetAdaptive) Report(ctx context.Context) error {
	f.mu.Lock()
	queue := f.pending
	f.pending = nil
	w := f.prog.ObservedWindow()
	if w != nil && w.Total() > 0 {
		f.seq++
		queue = append(queue, pendingReport{seq: f.seq, w: w})
		if over := len(queue) - maxPendingReports; over > 0 {
			queue = queue[over:]
			f.dropped += uint64(over)
			if !f.dropWarned {
				f.dropWarned = true
				log.Printf("orwlplace: fleet lease %d retransmit queue overflowed: dropped %d oldest window(s); further drops this outage are counted but not logged", f.leaseID, over)
			}
		}
	}
	f.mu.Unlock()
	for i, pr := range queue {
		err := f.rs.ReportObserved(ctx, f.LeaseID(), pr.seq, pr.w)
		if err != nil && strings.Contains(err.Error(), "unknown lease") {
			// The daemon restarted and lost the lease: re-register under
			// the same token and retransmit this window on the new lease.
			if rerr := f.reLease(ctx); rerr == nil {
				err = f.rs.ReportObserved(ctx, f.LeaseID(), pr.seq, pr.w)
			}
		}
		if err != nil {
			// Requeue this window and everything after it, in front of
			// whatever a concurrent Report may have queued meanwhile.
			f.mu.Lock()
			f.pending = append(append([]pendingReport(nil), queue[i:]...), f.pending...)
			f.mu.Unlock()
			return err
		}
		f.mu.Lock()
		f.reports++
		f.mu.Unlock()
	}
	f.mu.Lock()
	if len(f.pending) == 0 {
		f.dropWarned = false // queue drained: the overflow episode is over
	}
	f.mu.Unlock()
	return nil
}

// ApplyRemap commits the lease's slice of a machine-global remap to
// the program: fleet task TaskBase+i binds local task i. Stale epochs
// (already applied) return false without touching the binding.
//
// When the event names its moved tasks (a delta push, or a full frame
// whose controller computed the diff) and this loop holds the directly
// preceding epoch, only the moved tasks inside the lease are re-bound
// — O(changed) instead of O(lease). Any gap, and on the first ever
// remap, the whole slice is bound: bindings this process never applied
// may differ from what the moved-set was diffed against.
func (f *FleetAdaptive) ApplyRemap(ev Remap) (bool, error) {
	if ev.Assignment == nil {
		return false, nil
	}
	f.mu.Lock()
	applied := f.applied
	if ev.Epoch <= applied {
		f.mu.Unlock()
		return false, nil
	}
	f.mu.Unlock()
	if len(ev.Assignment.ComputePU) < f.cfg.TaskBase+f.count {
		return false, fmt.Errorf("orwlplace: remap covers %d fleet tasks, lease needs [%d,%d)",
			len(ev.Assignment.ComputePU), f.cfg.TaskBase, f.cfg.TaskBase+f.count)
	}
	local := &Assignment{
		Strategy:  ev.Assignment.Strategy,
		ComputePU: ev.Assignment.ComputePU[f.cfg.TaskBase : f.cfg.TaskBase+f.count],
	}
	if len(ev.Assignment.ControlPU) >= f.cfg.TaskBase+f.count {
		local.ControlPU = ev.Assignment.ControlPU[f.cfg.TaskBase : f.cfg.TaskBase+f.count]
	}
	var bound uint64
	sparseOK := ev.MovedTasks != nil && applied > 0 && ev.Epoch == applied+1 &&
		!ev.Assignment.Unbound
	if sparseOK {
		// Project the machine-global moved set onto the lease's range.
		var localTasks []int
		for _, t := range ev.MovedTasks {
			if t >= f.cfg.TaskBase && t < f.cfg.TaskBase+f.count {
				localTasks = append(localTasks, t-f.cfg.TaskBase)
			}
		}
		if err := placement.BindTasks(f.prog, local, localTasks); err != nil {
			return false, err
		}
		bound = uint64(len(localTasks))
	} else {
		if err := placement.Bind(f.prog, local); err != nil {
			return false, err
		}
		if !ev.Assignment.Unbound {
			bound = uint64(f.count)
		}
	}
	f.mu.Lock()
	if ev.Epoch > f.applied {
		f.applied = ev.Epoch
	}
	f.remapped++
	if sparseOK {
		f.sparse++
	}
	f.rebound += bound
	f.mu.Unlock()
	return true, nil
}

// AppliedEpoch returns the epoch of the last remap committed to the
// program (0 before the first).
func (f *FleetAdaptive) AppliedEpoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// Counters returns reports shipped and remaps applied.
func (f *FleetAdaptive) Counters() (reports, remaps uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reports, f.remapped
}

// FleetAdaptiveStats is a client-side health snapshot of one fleet
// adaptive loop.
type FleetAdaptiveStats struct {
	// Reports counts observed windows the daemon acknowledged.
	Reports uint64
	// Remaps counts remaps applied to the program.
	Remaps uint64
	// DroppedWindows counts observed windows lost to retransmit-queue
	// overflow during daemon outages; their traffic is gone from the
	// daemon's affinity view until it recurs.
	DroppedWindows uint64
	// Releases counts lease re-registrations after a daemon restart
	// lost the lease (0 when the daemon snapshots its state).
	Releases uint64
	// AppliedEpoch is the epoch of the last remap committed.
	AppliedEpoch uint64
	// DeltaRemaps counts remaps applied through the O(changed) sparse
	// re-bind (the event named its moved tasks and this loop held the
	// preceding epoch); Remaps - DeltaRemaps were full re-binds.
	DeltaRemaps uint64
	// TasksRebound counts individual task bindings committed across all
	// applied remaps — the work the sparse path saves.
	TasksRebound uint64
}

// Stats returns the loop's client-side health counters.
func (f *FleetAdaptive) Stats() FleetAdaptiveStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FleetAdaptiveStats{
		Reports:        f.reports,
		Remaps:         f.remapped,
		DroppedWindows: f.dropped,
		Releases:       f.releases,
		AppliedEpoch:   f.applied,
		DeltaRemaps:    f.sparse,
		TasksRebound:   f.rebound,
	}
}

// Run drives the loop until ctx ends: observed windows ship every
// Interval, and every pushed remap is applied as it arrives. onRemap
// (nil ok) fires after each successful application — the hook tests
// and demos use to observe adoption. Run returns nil when ctx is
// cancelled, or an error if the subscription cannot be established or
// dies unrecoverably.
func (f *FleetAdaptive) Run(ctx context.Context, onRemap func(Remap)) error {
	remaps, err := f.rs.WatchRemaps(ctx, f.cfg.Machine)
	if err != nil {
		return err
	}
	tick := time.NewTicker(f.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
			if err := f.Report(ctx); err != nil && ctx.Err() == nil {
				// A lost report is not fatal: the next window carries the
				// traffic (the daemon merges deltas, and an unshipped
				// window stays accumulated in the program).
				continue
			}
		case ev, ok := <-remaps:
			if !ok {
				if ctx.Err() != nil {
					return nil
				}
				return fmt.Errorf("orwlplace: remap subscription lost")
			}
			if applied, err := f.ApplyRemap(ev); err == nil && applied && onRemap != nil {
				onRemap(ev)
			}
		}
	}
}
