package orwlplace_test

// Benchmark harness: one target per table and figure of the paper
// (regenerating the artifact end to end), plus ablation benches for the
// design choices called out in DESIGN.md §5 and micro-benchmarks of the
// live runtime. Run with
//
//	go test -bench=. -benchmem
//
// The Fig/Table benches report the modeled quantities (seconds of the
// simulated run, GFLOPS, FPS) as custom metrics so a bench run doubles
// as a reproduction log.

import (
	"net"
	"testing"

	"orwlplace/internal/apps/livermore"
	"orwlplace/internal/apps/matmul"
	"orwlplace/internal/apps/tracking"
	"orwlplace/internal/comm"
	"orwlplace/internal/experiments"
	"orwlplace/internal/orwl"
	"orwlplace/internal/orwlnet"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// --- Paper artifacts -------------------------------------------------

func BenchmarkFig1CommMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Mapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIMachines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.TableI() == nil {
			b.Fatal("no table")
		}
	}
}

func benchFigure(b *testing.B, gen func(*topology.Topology) (*experiments.Figure, error)) {
	for _, top := range experiments.Machines() {
		top := top
		b.Run(top.Attrs.Name, func(b *testing.B) {
			var fig *experiments.Figure
			var err error
			for i := 0; i < b.N; i++ {
				fig, err = gen(top)
				if err != nil {
					b.Fatal(err)
				}
			}
			// Report the last tick of the first and second series (the
			// native vs affinity endpoints).
			if len(fig.Series) >= 2 && len(fig.Series[0].Y) > 0 {
				last := len(fig.Series[0].Y) - 1
				b.ReportMetric(fig.Series[0].Y[last], "native")
				b.ReportMetric(fig.Series[1].Y[last], "affinity")
			}
		})
	}
}

func BenchmarkFig4Livermore(b *testing.B) { benchFigure(b, experiments.Fig4) }
func BenchmarkFig5Matmul(b *testing.B)    { benchFigure(b, experiments.Fig5) }
func BenchmarkFig6Tracking(b *testing.B)  { benchFigure(b, experiments.Fig6) }

func BenchmarkTableIICounters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIIICounters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIII(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIVCounters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIV(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ----------------------------------------

// Exhaustive vs greedy GroupProcesses: solution quality vs run time.
func BenchmarkAblationGroupingExhaustive(b *testing.B) {
	m := comm.Random(12, 1000, 7)
	var vol float64
	for i := 0; i < b.N; i++ {
		groups, err := treematch.GroupProcesses(m, 3, 12)
		if err != nil {
			b.Fatal(err)
		}
		vol = treematch.IntraGroupVolume(m, groups)
	}
	b.ReportMetric(vol, "intra-volume")
}

func BenchmarkAblationGroupingGreedy(b *testing.B) {
	m := comm.Random(12, 1000, 7)
	var vol float64
	for i := 0; i < b.N; i++ {
		groups, err := treematch.GroupProcesses(m, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		vol = treematch.IntraGroupVolume(m, groups)
	}
	b.ReportMetric(vol, "intra-volume")
}

// Swap refinement on top of greedy grouping: quality recovered vs time
// spent (compare the intra-volume metric with the exhaustive/greedy
// benches above).
func BenchmarkAblationGroupingRefined(b *testing.B) {
	m := comm.Random(12, 1000, 7)
	var vol float64
	for i := 0; i < b.N; i++ {
		groups, err := treematch.GroupProcesses(m, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		groups = treematch.RefineSwap(m, groups, 8)
		vol = treematch.IntraGroupVolume(m, groups)
	}
	b.ReportMetric(vol, "intra-volume")
}

func BenchmarkAblationMapRefinement(b *testing.B) {
	top := topology.SMP12E5()
	m := comm.Random(96, 1<<20, 5)
	for _, cfg := range []struct {
		name   string
		rounds int
	}{{"plain", 0}, {"refine-8", 8}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				mp, err := treematch.Map(top, m, treematch.Options{
					ControlThreads: true, RefineRounds: cfg.rounds,
				})
				if err != nil {
					b.Fatal(err)
				}
				cost, err = treematch.Cost(top, m, mp.ComputePU)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cost, "cost")
		})
	}
}

func BenchmarkAblationGroupingGreedyLarge(b *testing.B) {
	m := comm.Random(96, 1000, 7)
	for i := 0; i < b.N; i++ {
		if _, err := treematch.GroupProcesses(m, 8, 12); err != nil {
			b.Fatal(err)
		}
	}
}

// Control-thread accounting on/off on the hyperthreaded machine: the
// modeled run time of the K23 workload under both mappings.
func BenchmarkAblationControlThreads(b *testing.B) {
	top := topology.SMP12E5()
	w, err := livermore.Profile(16384, 64, 100)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		ctl  bool
	}{{"with-control", true}, {"without-control", false}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var seconds float64
			for i := 0; i < b.N; i++ {
				mp, err := treematch.Map(top, w.Comm, treematch.Options{ControlThreads: cfg.ctl})
				if err != nil {
					b.Fatal(err)
				}
				res, err := perfsim.Simulate(top, w, &perfsim.Placement{
					ComputePU: mp.ComputePU, ControlPU: mp.ControlPU, LocalAlloc: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				seconds = res.Seconds
			}
			b.ReportMetric(seconds, "modeled-s")
		})
	}
}

// Oversubscription: the added virtual tree level vs a naive modulo fold
// of entities onto cores.
func BenchmarkAblationOversubscription(b *testing.B) {
	top := topology.TinyFlat()
	m := comm.Clustered(16, 8, 1000, 1)
	b.Run("treematch-virtual-level", func(b *testing.B) {
		var cost float64
		for i := 0; i < b.N; i++ {
			mp, err := treematch.Map(top, m, treematch.Options{})
			if err != nil {
				b.Fatal(err)
			}
			cost, err = treematch.Cost(top, m, mp.ComputePU)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(cost, "cost")
	})
	b.Run("modulo-fold", func(b *testing.B) {
		var cost float64
		pus := top.PUs()
		place := make([]int, 16)
		for e := range place {
			place[e] = pus[e%len(pus)].LogicalIndex
		}
		for i := 0; i < b.N; i++ {
			var err error
			cost, err = treematch.Cost(top, m, place)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(cost, "cost")
	})
}

// TreeMatch vs the oblivious strategies on the canonical patterns.
func BenchmarkAblationStrategies(b *testing.B) {
	top := topology.SMP12E5()
	patterns := map[string]*comm.Matrix{
		"stencil":   comm.Stencil2D(8, 8, 1<<14, 1<<14),
		"ring":      comm.Ring(64, 1<<20, true),
		"dfg":       mustCommMatrix(b),
		"clustered": comm.Clustered(64, 8, 1<<20, 1<<10),
	}
	for name, m := range patterns {
		name, m := name, m
		b.Run("treematch/"+name, func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				mp, err := treematch.Map(top, m, treematch.Options{ControlThreads: true})
				if err != nil {
					b.Fatal(err)
				}
				cost, err = treematch.Cost(top, m, mp.ComputePU)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cost, "cost")
		})
		for _, s := range []treematch.Strategy{treematch.StrategyCompactCores, treematch.StrategyScatter} {
			s := s
			b.Run(s.String()+"/"+name, func(b *testing.B) {
				var cost float64
				for i := 0; i < b.N; i++ {
					pl, err := treematch.Place(top, m.Order(), s)
					if err != nil {
						b.Fatal(err)
					}
					cost, err = treematch.Cost(top, m, pl)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(cost, "cost")
			})
		}
	}
}

func mustCommMatrix(b *testing.B) *comm.Matrix {
	b.Helper()
	m, err := tracking.PaperConfig(tracking.HD).CommMatrix()
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// --- Live runtime micro-benchmarks -----------------------------------

// One iterative grant/release round trip between two tasks.
func BenchmarkLocationHandoff(b *testing.B) {
	p := orwl.MustProgram(2, "ping")
	done := make(chan error, 2)
	iters := b.N
	b.ResetTimer()
	go func() {
		done <- p.Run(func(ctx *orwl.TaskContext) error {
			h := orwl.NewHandle2()
			if err := ctx.WriteInsert(h, orwl.Loc(0, "ping"), ctx.TID()); err != nil {
				return err
			}
			if err := ctx.Schedule(); err != nil {
				return err
			}
			for i := 0; i < iters; i++ {
				if err := h.Section(func([]byte) error { return nil }); err != nil {
					return err
				}
			}
			return nil
		})
	}()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// One remote grant/read/release round trip over loopback TCP.
func BenchmarkRemoteLocationRoundTrip(b *testing.B) {
	prog := orwl.MustProgram(1, "data")
	loc := prog.Location(orwl.Loc(0, "data"))
	loc.Scale(64)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := orwlnet.NewServer(lis, map[string]*orwl.Location{"data": loc})
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	c, err := orwlnet.Dial(lis.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := c.Insert("data", orwl.Write)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Acquire(); err != nil {
			b.Fatal(err)
		}
		if err := h.Write([]byte{byte(i)}); err != nil {
			b.Fatal(err)
		}
		if err := h.Release(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFifoPushPop(b *testing.B) {
	f, err := orwl.NewFifo(64)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Push(payload); err != nil {
			b.Fatal(err)
		}
		if _, ok := f.Pop(); !ok {
			b.Fatal("pop failed")
		}
	}
}

// Real ORWL executions of the three applications at test scale.
func BenchmarkLivermoreORWL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := livermore.NewGrid(258, 258, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := livermore.RunORWL(g, 4, 2, 10, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLivermoreForkJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := livermore.NewGrid(258, 258, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := livermore.RunForkJoin(g, 4, 2, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatmulORWL(b *testing.B) {
	a, _ := matmul.NewRandomMatrix(256, 1)
	bm, _ := matmul.NewRandomMatrix(256, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, _ := matmul.NewMatrix(256)
		if _, err := matmul.RunORWL(a, bm, c, 4, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatmulForkJoin(b *testing.B) {
	a, _ := matmul.NewRandomMatrix(256, 1)
	bm, _ := matmul.NewRandomMatrix(256, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, _ := matmul.NewMatrix(256)
		if err := matmul.RunForkJoin(a, bm, c, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrackingDFG(b *testing.B) {
	cfg := tracking.Config{
		Size: tracking.Size{W: 160, H: 96}, GMMSplits: 4, CCLSplits: 2,
		Dilates: 2, MinArea: 16, MaxDist: 32, Objects: 3, Seed: 7,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tracking.RunORWL(cfg, 8, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrackingSerial(b *testing.B) {
	cfg := tracking.Config{
		Size: tracking.Size{W: 160, H: 96}, GMMSplits: 4, CCLSplits: 2,
		Dilates: 2, MinArea: 16, MaxDist: 32, Objects: 3, Seed: 7,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tracking.RunSerial(cfg, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// TreeMatch end-to-end mapping cost at machine scale.
func BenchmarkTreeMatchMap(b *testing.B) {
	for _, size := range []struct {
		name string
		m    *comm.Matrix
		top  *topology.Topology
	}{
		{"30tasks-32cores", mustCommMatrixB(b), topology.Fig2Machine()},
		{"64tasks-96cores", comm.Stencil2D(8, 8, 1<<14, 1<<14), topology.SMP12E5()},
		{"160tasks-160cores", comm.Ring(160, 1<<20, true), topology.SMP20E7()},
	} {
		size := size
		b.Run(size.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := treematch.Map(size.top, size.m, treematch.Options{ControlThreads: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The sparse partitioned path: 10k tasks in a ring of clusters
	// (O(n) nonzeros), oversubscribed ~10x onto the 1024-core Fleet1K.
	// No dense n² slab exists anywhere on this path — the acceptance
	// bar is single-digit milliseconds per mapping.
	b.Run("10ktasks-1kcores", func(b *testing.B) {
		top := topology.Fleet1K()
		s := comm.RingOfClusters(250, 40, 1<<20, 1<<12) // 10000 tasks
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := treematch.MapAffinity(top, s, treematch.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func mustCommMatrixB(b *testing.B) *comm.Matrix {
	b.Helper()
	m, err := tracking.PaperConfig(tracking.HD).CommMatrix()
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// Simulator throughput.
func BenchmarkPerfsimSimulate(b *testing.B) {
	top := topology.SMP12E5()
	w, err := livermore.Profile(16384, 96, 100)
	if err != nil {
		b.Fatal(err)
	}
	mp, err := treematch.Map(top, w.Comm, treematch.Options{ControlThreads: true})
	if err != nil {
		b.Fatal(err)
	}
	pl := &perfsim.Placement{ComputePU: mp.ComputePU, ControlPU: mp.ControlPU, LocalAlloc: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perfsim.Simulate(top, w, pl); err != nil {
			b.Fatal(err)
		}
	}
}
