package orwlplace_test

// Facade tests: the public surface external consumers use instead of
// internal/ — in-process service construction, topology discovery, and
// the remote daemon path end to end.

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"orwlplace"
	"orwlplace/internal/orwlnet"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

func TestFacadeDiscovery(t *testing.T) {
	machines := orwlplace.Machines()
	if len(machines) == 0 {
		t.Fatal("no machines discoverable")
	}
	for _, name := range machines {
		top, err := orwlplace.Machine(name)
		if err != nil {
			t.Fatalf("Machine(%q): %v", name, err)
		}
		if top.NumPUs() == 0 {
			t.Errorf("machine %q has no PUs", name)
		}
	}
	if _, err := orwlplace.Machine("betz-IV"); err == nil {
		t.Error("fictional machine discovered")
	}
	if host := orwlplace.HostTopology(); host.NumPUs() < 1 {
		t.Error("host topology has no PUs")
	}
	found := false
	for _, s := range orwlplace.Strategies() {
		if s == orwlplace.TreeMatch {
			found = true
		}
	}
	if !found {
		t.Errorf("strategy list %v misses treematch", orwlplace.Strategies())
	}
}

func TestFacadeInProcessService(t *testing.T) {
	top, err := orwlplace.Machine("tinyflat")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := orwlplace.NewService(top)
	if err != nil {
		t.Fatal(err)
	}
	mat := orwlplace.NewMatrix(4)
	mat.AddSym(0, 1, 1000)
	mat.AddSym(2, 3, 1000)
	resp, err := orwlplace.PlaceOn(context.Background(), svc, orwlplace.TreeMatch, mat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Assignment.Entities() != 4 {
		t.Fatalf("entities = %d", resp.Assignment.Entities())
	}
	render := orwlplace.RenderAssignment(top, resp.Assignment, []string{"a", "b", "c", "d"})
	if !strings.Contains(render, "TinyFlat") {
		t.Errorf("render misses machine name:\n%s", render)
	}
}

func TestFacadeRemoteDaemon(t *testing.T) {
	// Spin up what `orwlnetd -place -machine tinyht` runs.
	top, err := orwlplace.Machine("tinyht")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := placement.NewEngine(top)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := placement.NewLocalService(eng)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := orwlnet.NewServer(lis, nil, orwlnet.WithPlacement(svc))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	remote, err := orwlplace.DialPlacement(ctx, lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	var _ orwlplace.Service = remote // the stub satisfies the facade contract

	mat := orwlplace.NewMatrix(6)
	for i := 1; i < 6; i++ {
		mat.AddSym(i-1, i, float64(100*i))
	}
	resp, err := orwlplace.PlaceOn(ctx, remote, orwlplace.TreeMatch, mat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Assignment == nil || resp.Assignment.Entities() != 6 {
		t.Fatalf("assignment = %+v", resp.Assignment)
	}
	stats, err := remote.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TopologySignature != placement.Signature(topology.TinyHT()) {
		t.Error("remote signature mismatch")
	}
	fetched, err := remote.Topology(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fetched.Attrs.Name != "TinyHT" {
		t.Errorf("fetched machine %q", fetched.Attrs.Name)
	}

	// The unbound baseline works remotely too and skips diagnostics.
	unbound, err := orwlplace.PlaceOn(ctx, remote, orwlplace.Unbound, mat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !unbound.Assignment.Unbound || unbound.Cost != 0 {
		t.Errorf("unbound response = %+v", unbound)
	}
}

func TestFacadeFleet(t *testing.T) {
	fleet, err := orwlplace.NewFleet([]string{"tinyht", "tinyflat"})
	if err != nil {
		t.Fatal(err)
	}
	var _ orwlplace.Service = fleet // the fleet satisfies the facade contract
	if got := fleet.Machines(); len(got) != 2 || got[0] != "tinyht" {
		t.Fatalf("fleet machines = %v", got)
	}
	if _, err := orwlplace.NewFleet(nil); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := orwlplace.NewFleet([]string{"betz-IV"}); err == nil {
		t.Error("fictional fleet machine accepted")
	}

	// Serve the fleet like `orwlnetd -place -machine tinyht -machine
	// tinyflat` and compare machines through the facade in one RPC.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := orwlnet.NewServer(lis, nil, orwlnet.WithPlacement(fleet))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	remote, err := orwlplace.DialPlacement(ctx, lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	stats, err := remote.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Machines) != 2 {
		t.Fatalf("remote fleet machines = %v", stats.Machines)
	}
	mat := orwlplace.NewMatrix(4)
	for i := 1; i < 4; i++ {
		mat.AddSym(i-1, i, 100)
	}
	resps, err := orwlplace.PlaceAcross(ctx, remote, orwlplace.TreeMatch, mat, 0, stats.Machines)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 {
		t.Fatalf("PlaceAcross answered %d slots", len(resps))
	}
	for i, resp := range resps {
		if resp.Err != "" || resp.Assignment == nil || resp.Machine != stats.Machines[i] {
			t.Errorf("slot %d = %+v, want assignment from %q", i, resp, stats.Machines[i])
		}
	}

	// An unnamed request lands on the default machine.
	def, err := orwlplace.PlaceOn(ctx, remote, orwlplace.TreeMatch, mat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if def.Machine != "tinyht" || !def.CacheHit {
		t.Errorf("default place = machine %q cache hit %v, want a tinyht hit", def.Machine, def.CacheHit)
	}
}

func TestDialPlacementRefused(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	// A closed port: DialPlacement must fail, not hang.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	if _, err := orwlplace.DialPlacement(ctx, addr); err == nil {
		t.Fatal("dial against closed port succeeded")
	}
}
