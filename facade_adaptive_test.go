package orwlplace_test

// Facade tests for the adaptive-placement surface and the cache-entry
// option threading.

import (
	"context"
	"testing"

	"orwlplace"
)

// clusterShiftMatrices builds the two phases of a pattern shift: a
// pipeline and stride-4 cliques over n entities.
func clusterShiftMatrices(n int) (pipeline, clusters *orwlplace.Matrix) {
	pipeline = orwlplace.NewMatrix(n)
	for i := 0; i+1 < n; i++ {
		pipeline.AddSym(i, i+1, 1<<20)
	}
	clusters = orwlplace.NewMatrix(n)
	for base := 0; base < 4; base++ {
		for i := base; i < n; i += 4 {
			for j := i + 4; j < n; j += 4 {
				clusters.AddSym(i, j, 1<<20)
			}
		}
	}
	return pipeline, clusters
}

func TestFacadeAdaptiveLoop(t *testing.T) {
	top, err := orwlplace.Machine("smp12e5")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := orwlplace.NewService(top)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	pipeline, clusters := clusterShiftMatrices(n)
	if d := orwlplace.Drift(pipeline, clusters); d < 0.5 {
		t.Fatalf("Drift(pipeline, clusters) = %.3f, want substantial", d)
	}

	src := orwlplace.FixedSource("trace", pipeline)
	rec, err := orwlplace.NewAdaptive(svc, src, nil, orwlplace.AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Prime(orwlplace.FixedSource("declared", pipeline)); err != nil {
		t.Fatal(err)
	}
	rep, err := rec.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recomputed || rep.Drift != 0 {
		t.Fatalf("drift-free epoch = %+v", rep)
	}

	// The loop's counters surface through the facade Service stats.
	st, err := svc.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Adaptive.Epochs != 1 {
		t.Errorf("service adaptive epochs = %d, want 1", st.Adaptive.Epochs)
	}

	// Remote services cannot host the loop.
	if _, err := orwlplace.NewAdaptive(remoteStub{}, src, nil, orwlplace.AdaptiveConfig{}); err == nil {
		t.Error("NewAdaptive accepted a non-local service")
	}
}

// remoteStub is a non-LocalService Service implementation.
type remoteStub struct{ orwlplace.Service }

func TestFacadeCacheEntriesOption(t *testing.T) {
	top, err := orwlplace.Machine("tinyht")
	if err != nil {
		t.Fatal(err)
	}
	// Cache disabled: identical placements never hit.
	svc, err := orwlplace.NewService(top, orwlplace.WithCacheEntries(0))
	if err != nil {
		t.Fatal(err)
	}
	m := orwlplace.NewMatrix(4)
	m.AddSym(0, 1, 100)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		resp, err := orwlplace.PlaceOn(ctx, svc, orwlplace.TreeMatch, m, 4)
		if err != nil {
			t.Fatal(err)
		}
		if resp.CacheHit {
			t.Fatalf("call %d hit a disabled cache", i)
		}
	}
	st, err := svc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Entries != 0 || st.Cache.Hits != 0 {
		t.Errorf("disabled cache stats = %+v", st.Cache)
	}

	// The option threads through fleets too: a one-entry cache keeps at
	// most one assignment per machine.
	fleet, err := orwlplace.NewFleet([]string{"tinyht", "tinyflat"}, orwlplace.WithCacheEntries(1))
	if err != nil {
		t.Fatal(err)
	}
	m2 := orwlplace.NewMatrix(4)
	m2.AddSym(2, 3, 50)
	for _, mat := range []*orwlplace.Matrix{m, m2, m} {
		if _, err := orwlplace.PlaceOn(ctx, fleet, orwlplace.TreeMatch, mat, 4); err != nil {
			t.Fatal(err)
		}
	}
	fst, err := fleet.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fst.Cache.Entries > 2 { // one per machine at most
		t.Errorf("one-entry fleet caches hold %d entries", fst.Cache.Entries)
	}
	if fst.Cache.Hits != 0 {
		t.Errorf("expected evictions to prevent hits, got %d", fst.Cache.Hits)
	}
}

// TestFacadeAdaptiveOnFleet: passing a fleet attaches the loop to its
// default machine instead of failing the in-process type check.
func TestFacadeAdaptiveOnFleet(t *testing.T) {
	fleet, err := orwlplace.NewFleet([]string{"tinyht", "tinyflat"})
	if err != nil {
		t.Fatal(err)
	}
	pipeline, _ := clusterShiftMatrices(8)
	rec, err := orwlplace.NewAdaptive(fleet, orwlplace.FixedSource("trace", pipeline), nil, orwlplace.AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Prime(orwlplace.FixedSource("declared", pipeline)); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Epoch(); err != nil {
		t.Fatal(err)
	}
	st, err := fleet.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Adaptive.Epochs != 1 {
		t.Errorf("fleet aggregate adaptive epochs = %d, want 1", st.Adaptive.Epochs)
	}
}
