#!/bin/sh
# bench.sh — regenerate BENCH_PR3.json: run the placement hot-path
# benchmarks (go test -bench -benchmem across the root, placement,
# treematch, comm and orwlnet packages) and record ns/op + allocs/op
# as JSON next to the pre-PR baseline in
# scripts/bench_baseline_pr3.json.
#
#   scripts/bench.sh                  # full run, writes BENCH_PR3.json
#   scripts/bench.sh -benchtime 0.3s  # quicker CI pass, same schema
#
# Extra flags are handed through to cmd/benchjson.
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/benchjson -baseline scripts/bench_baseline_pr3.json "$@"
