#!/bin/sh
# bench.sh — regenerate BENCH_PR10.json: run the placement hot-path
# benchmarks (go test -bench -benchmem across the root, placement,
# treematch, comm, orwlnet and orwl packages — including the PR 9
# sparse 10ktasks-1kcores partitioned mapping and the PR 10
# RemapDeltaPush single-partition delta, whose extra metrics carry the
# push_bytes_ratio / rebind_ratio acceptance numbers) and record
# ns/op + allocs/op as JSON, plus the cmd/placeload transport pair
# (lock-step baseline vs pipelined — the PR 6 throughput/payload
# acceptance numbers). Benches that existed before PR 3 carry their
# recorded baseline from scripts/bench_baseline_pr3.json; later
# additions record fresh.
#
#   scripts/bench.sh                    # full run, writes BENCH_PR10.json
#   scripts/bench.sh -benchtime 0.3s -placeload 1s  # quicker CI pass
#
# Extra flags are handed through to cmd/benchjson (later flags win).
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/benchjson -baseline scripts/bench_baseline_pr3.json -placeload 2s "$@"
