#!/bin/sh
# bench.sh — regenerate BENCH_PR5.json: run the placement hot-path
# benchmarks (go test -bench -benchmem across the root, placement,
# treematch, comm, orwlnet and orwl packages) and record ns/op +
# allocs/op as JSON. Benches that existed before PR 3 carry their
# recorded baseline from scripts/bench_baseline_pr3.json; the PR 5
# additions (observed-traffic counters, adaptive epochs) record fresh.
#
#   scripts/bench.sh                  # full run, writes BENCH_PR5.json
#   scripts/bench.sh -benchtime 0.3s  # quicker CI pass, same schema
#
# Extra flags are handed through to cmd/benchjson.
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/benchjson -baseline scripts/bench_baseline_pr3.json "$@"
