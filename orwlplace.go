package orwlplace

import (
	"context"
	"fmt"

	"orwlplace/internal/comm"
	"orwlplace/internal/core"
	"orwlplace/internal/orwl"
	"orwlplace/internal/orwlnet"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// This file is the public facade: the curated surface external
// consumers import instead of reaching into internal/. It re-exports
// the placement Service contract, the strategy registry, topology
// discovery, and the two deployments of the service — in-process
// (NewService) and remote (DialPlacement, speaking the orwlnetd wire
// protocol).

// Service is the placement-as-a-service contract: Place, Topology,
// Stats — context-aware and transport-agnostic.
type Service = placement.Service

// PlaceRequest asks a Service for an assignment.
type PlaceRequest = placement.PlaceRequest

// PlaceResponse carries the assignment plus cache/cost/latency
// diagnostics.
type PlaceResponse = placement.PlaceResponse

// ServiceStats describes a Service: machine, strategies, counters.
type ServiceStats = placement.ServiceStats

// Assignment is where every compute (and control) entity goes.
type Assignment = placement.Assignment

// Options tunes the mapping algorithms.
type Options = placement.Options

// CacheStats counts mapping-cache traffic.
type CacheStats = placement.CacheStats

// Matrix is a communication matrix: entry (i,j) is the volume
// exchanged between entities i and j.
type Matrix = comm.Matrix

// Topology is a machine's hardware tree.
type Topology = topology.Topology

// Strategy names accepted by every Service built from this module's
// registry.
const (
	// TreeMatch is the paper's topology-and-communication-aware
	// strategy (Algorithm 1).
	TreeMatch = placement.TreeMatch
	// Unbound is the no-binding baseline: the OS scheduler decides.
	Unbound = placement.None
)

// ServiceVersion is the current request/response schema version.
const ServiceVersion = placement.ServiceVersion

// Fleet is a placement service routing across a set of named machines
// — one engine (strategy registry + mapping cache) per topology, a
// default machine for requests that name none, and PlaceBatch to fan
// one request slice across the fleet in a single call. It implements
// Service, so everything that consumes a single-machine service
// (core.Module, the daemon, the RPC layer) serves a fleet unchanged.
type Fleet = placement.MultiService

// ServiceOption tunes the engines behind NewService/NewFleet.
type ServiceOption = placement.EngineOption

// WithCacheEntries bounds each engine's mapping cache (0 disables
// caching) — the facade face of the engine option, threaded through
// NewService and NewFleet so external deployments size the cache from
// the outside.
func WithCacheEntries(n int) ServiceOption { return placement.WithCacheEntries(n) }

// NewFleet builds an in-process fleet service over the named machines
// (resolved like Machine); the first name is the default machine.
// Options apply to every machine's engine.
func NewFleet(machines []string, opts ...ServiceOption) (*Fleet, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("orwlplace: fleet needs at least one machine")
	}
	fleet := placement.NewMultiService()
	for _, name := range machines {
		top, err := Machine(name)
		if err != nil {
			return nil, err
		}
		if err := fleet.AddMachine(name, top, opts...); err != nil {
			return nil, err
		}
	}
	return fleet, nil
}

// NewMatrix returns an n x n zero communication matrix.
func NewMatrix(n int) *Matrix { return comm.NewMatrix(n) }

// Strategies lists the registered strategy names, registration-ordered.
func Strategies() []string { return placement.Names() }

// Machines lists the discoverable machine names.
func Machines() []string { return topology.MachineNames() }

// Machine builds the named machine ("smp12e5", "tinyht", ...).
func Machine(name string) (*Topology, error) { return topology.ByName(name) }

// HostTopology approximates the machine this process runs on.
func HostTopology() *Topology { return topology.Host() }

// NewService builds an in-process placement service for a machine: a
// placement engine (strategy registry + mapping cache) behind the
// Service interface.
func NewService(top *Topology, opts ...ServiceOption) (Service, error) {
	eng, err := placement.NewEngine(top, opts...)
	if err != nil {
		return nil, err
	}
	return placement.NewLocalService(eng)
}

// RemotePlacement is a connection (or connection pool) to a remote
// placement daemon (cmd/orwlnetd). It implements Service; Close
// releases every connection.
type RemotePlacement = orwlnet.RemoteService

// DialOption tunes DialPlacement: pool size, protocol ceiling.
type DialOption = orwlnet.DialOption

// WithPoolSize opens n connections to the daemon and spreads placement
// calls across them — combined with the pipelined transport, the knob
// for driving a daemon at high placements/sec from one process.
func WithPoolSize(n int) DialOption { return orwlnet.WithPoolSize(n) }

// WithMaxProtocol caps the wire protocol version offered to the
// daemon, forcing the downgraded behaviour (lock-step placement calls,
// dense matrices below ProtoPipeline) a genuinely old peer would get.
func WithMaxProtocol(v int) DialOption { return orwlnet.WithMaxProtocol(v) }

// RetryPolicy tunes the stub's retry/backoff machinery for idempotent
// calls: exponential backoff with jitter between attempts and an
// optional per-attempt deadline budget. The zero value with WithRetry
// still arms retries at the defaults.
type RetryPolicy = orwlnet.RetryPolicy

// DefaultRetryPolicy returns the stock policy: 4 attempts, 50ms base
// delay doubling to a 2s cap, ±20% jitter, no per-attempt budget.
func DefaultRetryPolicy() RetryPolicy { return orwlnet.DefaultRetryPolicy() }

// WithRetry arms the stub with a retry policy: idempotent calls
// (Place, PlaceBatch, Topology, Stats, lease registration, observed
// reports) retry transient transport failures with exponential
// backoff, redialing dead pool connections between attempts. Location
// operations never retry — their FIFO semantics are not idempotent.
func WithRetry(p RetryPolicy) DialOption { return orwlnet.WithRetryPolicy(p) }

// Protocol versions usable with WithMaxProtocol.
const (
	// ProtoAdaptive is the last pre-pipeline protocol version.
	ProtoAdaptive = orwlnet.ProtoAdaptive
	// ProtoPipeline is the pipelined, pooled, compact-payload version.
	ProtoPipeline = orwlnet.ProtoPipeline
)

// DialPlacement connects to a placement daemon, honouring the
// context's deadline, and negotiates the wire protocol version.
func DialPlacement(ctx context.Context, addr string, opts ...DialOption) (*RemotePlacement, error) {
	return orwlnet.DialPlacementService(ctx, addr, opts...)
}

// RenderAssignment renders an assignment on a machine like the paper's
// Fig. 2: for every socket, the cores and the entities bound to them.
// names may be nil, in which case entities are shown by index.
func RenderAssignment(top *Topology, a *Assignment, names []string) string {
	if a == nil {
		return "(no assignment)\n"
	}
	return core.RenderMapping(a.Mapping(top), names)
}

// PlaceOn is the one-call convenience: place n entities communicating
// per matrix on the service's default machine with the named strategy.
func PlaceOn(ctx context.Context, svc Service, strategy string, m *Matrix, n int) (*PlaceResponse, error) {
	if svc == nil {
		return nil, fmt.Errorf("orwlplace: nil service")
	}
	return svc.Place(ctx, &PlaceRequest{Strategy: strategy, Matrix: m, Entities: n})
}

// Program is the ORWL runtime instance adaptive placement re-binds.
type Program = orwl.Program

// MatrixSource is the seam for step 1 of the pipeline: where the
// communication matrix comes from — the declared handle graph, the
// runtime-observed traffic, or a fixed trace.
type MatrixSource = placement.MatrixSource

// DeclaredSource wraps a program's declared dependency graph (the
// paper's schedule-barrier extraction) as a source.
func DeclaredSource(prog *Program) MatrixSource { return placement.Declared(prog) }

// ObservedSource wraps a program's runtime-measured traffic as a
// windowed source: every extraction consumes the epoch since the
// previous one — the adaptive loop's diet.
func ObservedSource(prog *Program) MatrixSource { return placement.ObservedWindow(prog) }

// FixedSource wraps a constant matrix (a replayed trace) as a source.
func FixedSource(label string, m *Matrix) MatrixSource { return placement.Fixed(label, m) }

// Adaptive is the epoch-driven re-placement reconciler: it samples an
// observed-traffic source, measures drift against the matrix backing
// the current mapping, and re-places through the strategy registry
// when the modeled gain beats the modeled migration cost.
type Adaptive = placement.Reconciler

// AdaptiveConfig tunes an Adaptive reconciler.
type AdaptiveConfig = placement.AdaptiveConfig

// AdaptiveStats counts a reconciler's epochs, drift alarms and remaps;
// ServiceStats carries the aggregate for a service's attached loops.
type AdaptiveStats = placement.AdaptiveStats

// EpochReport describes one reconciliation epoch.
type EpochReport = placement.EpochReport

// Drift measures structural change between two communication matrices
// in [0, 1]: 0 for the same pattern (at any volume), 1 for disjoint
// flows.
func Drift(a, b *Matrix) float64 { return placement.Drift(a, b) }

// NewAdaptive builds a re-placement loop for prog on an in-process
// service — NewService's result, or one machine of an in-process
// Fleet (the fleet itself routes across machines; pick the one the
// program runs on with fleet.MachineService(name) or pass the fleet
// to place on its default machine). The source is typically
// ObservedSource(prog). The reconciler registers with the service, so
// its epoch/drift/remap counters surface through Stats (and the
// fleet's aggregate). Remote services are rejected: re-binding needs
// the program's runtime state, which lives in this process.
func NewAdaptive(svc Service, src MatrixSource, prog *Program, cfg AdaptiveConfig) (*Adaptive, error) {
	if fleet, ok := svc.(*Fleet); ok {
		machine, err := fleet.MachineService("")
		if err != nil {
			return nil, err
		}
		svc = machine
	}
	local, ok := svc.(*placement.LocalService)
	if !ok {
		return nil, fmt.Errorf("orwlplace: adaptive placement needs an in-process service (got %T): the loop re-binds local runtime state", svc)
	}
	rec, err := placement.NewReconciler(local.Engine(), src, prog, cfg)
	if err != nil {
		return nil, err
	}
	local.AttachReconciler(rec)
	return rec, nil
}

// PlaceAcross batch-places one workload onto every named machine of a
// fleet service in a single call (one RPC when svc is remote): the
// paper's cross-machine comparison, as a service primitive. Responses
// are positional per machine; a machine's failure is reported in its
// response's Err field.
func PlaceAcross(ctx context.Context, svc Service, strategy string, m *Matrix, n int, machines []string) ([]*PlaceResponse, error) {
	if svc == nil {
		return nil, fmt.Errorf("orwlplace: nil service")
	}
	reqs := make([]*PlaceRequest, len(machines))
	for i, machine := range machines {
		reqs[i] = &PlaceRequest{Machine: machine, Strategy: strategy, Matrix: m, Entities: n}
	}
	return svc.PlaceBatch(ctx, reqs)
}
