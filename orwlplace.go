package orwlplace

import (
	"context"
	"fmt"

	"orwlplace/internal/comm"
	"orwlplace/internal/core"
	"orwlplace/internal/orwlnet"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// This file is the public facade: the curated surface external
// consumers import instead of reaching into internal/. It re-exports
// the placement Service contract, the strategy registry, topology
// discovery, and the two deployments of the service — in-process
// (NewService) and remote (DialPlacement, speaking the orwlnetd wire
// protocol).

// Service is the placement-as-a-service contract: Place, Topology,
// Stats — context-aware and transport-agnostic.
type Service = placement.Service

// PlaceRequest asks a Service for an assignment.
type PlaceRequest = placement.PlaceRequest

// PlaceResponse carries the assignment plus cache/cost/latency
// diagnostics.
type PlaceResponse = placement.PlaceResponse

// ServiceStats describes a Service: machine, strategies, counters.
type ServiceStats = placement.ServiceStats

// Assignment is where every compute (and control) entity goes.
type Assignment = placement.Assignment

// Options tunes the mapping algorithms.
type Options = placement.Options

// CacheStats counts mapping-cache traffic.
type CacheStats = placement.CacheStats

// Matrix is a communication matrix: entry (i,j) is the volume
// exchanged between entities i and j.
type Matrix = comm.Matrix

// Topology is a machine's hardware tree.
type Topology = topology.Topology

// Strategy names accepted by every Service built from this module's
// registry.
const (
	// TreeMatch is the paper's topology-and-communication-aware
	// strategy (Algorithm 1).
	TreeMatch = placement.TreeMatch
	// Unbound is the no-binding baseline: the OS scheduler decides.
	Unbound = placement.None
)

// ServiceVersion is the current request/response schema version.
const ServiceVersion = placement.ServiceVersion

// Fleet is a placement service routing across a set of named machines
// — one engine (strategy registry + mapping cache) per topology, a
// default machine for requests that name none, and PlaceBatch to fan
// one request slice across the fleet in a single call. It implements
// Service, so everything that consumes a single-machine service
// (core.Module, the daemon, the RPC layer) serves a fleet unchanged.
type Fleet = placement.MultiService

// NewFleet builds an in-process fleet service over the named machines
// (resolved like Machine); the first name is the default machine.
func NewFleet(machines ...string) (*Fleet, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("orwlplace: fleet needs at least one machine")
	}
	fleet := placement.NewMultiService()
	for _, name := range machines {
		top, err := Machine(name)
		if err != nil {
			return nil, err
		}
		if err := fleet.AddMachine(name, top); err != nil {
			return nil, err
		}
	}
	return fleet, nil
}

// NewMatrix returns an n x n zero communication matrix.
func NewMatrix(n int) *Matrix { return comm.NewMatrix(n) }

// Strategies lists the registered strategy names, registration-ordered.
func Strategies() []string { return placement.Names() }

// Machines lists the discoverable machine names.
func Machines() []string { return topology.MachineNames() }

// Machine builds the named machine ("smp12e5", "tinyht", ...).
func Machine(name string) (*Topology, error) { return topology.ByName(name) }

// HostTopology approximates the machine this process runs on.
func HostTopology() *Topology { return topology.Host() }

// NewService builds an in-process placement service for a machine: a
// placement engine (strategy registry + mapping cache) behind the
// Service interface.
func NewService(top *Topology) (Service, error) {
	eng, err := placement.NewEngine(top)
	if err != nil {
		return nil, err
	}
	return placement.NewLocalService(eng)
}

// RemotePlacement is a connection to a remote placement daemon
// (cmd/orwlnetd). It implements Service; Close releases the
// connection.
type RemotePlacement = orwlnet.RemoteService

// DialPlacement connects to a placement daemon, honouring the
// context's deadline, and negotiates the wire protocol version.
func DialPlacement(ctx context.Context, addr string) (*RemotePlacement, error) {
	c, err := orwlnet.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	svc, err := c.PlacementService()
	if err != nil {
		c.Close()
		return nil, err
	}
	return svc, nil
}

// RenderAssignment renders an assignment on a machine like the paper's
// Fig. 2: for every socket, the cores and the entities bound to them.
// names may be nil, in which case entities are shown by index.
func RenderAssignment(top *Topology, a *Assignment, names []string) string {
	if a == nil {
		return "(no assignment)\n"
	}
	return core.RenderMapping(a.Mapping(top), names)
}

// PlaceOn is the one-call convenience: place n entities communicating
// per matrix on the service's default machine with the named strategy.
func PlaceOn(ctx context.Context, svc Service, strategy string, m *Matrix, n int) (*PlaceResponse, error) {
	if svc == nil {
		return nil, fmt.Errorf("orwlplace: nil service")
	}
	return svc.Place(ctx, &PlaceRequest{Strategy: strategy, Matrix: m, Entities: n})
}

// PlaceAcross batch-places one workload onto every named machine of a
// fleet service in a single call (one RPC when svc is remote): the
// paper's cross-machine comparison, as a service primitive. Responses
// are positional per machine; a machine's failure is reported in its
// response's Err field.
func PlaceAcross(ctx context.Context, svc Service, strategy string, m *Matrix, n int, machines []string) ([]*PlaceResponse, error) {
	if svc == nil {
		return nil, fmt.Errorf("orwlplace: nil service")
	}
	reqs := make([]*PlaceRequest, len(machines))
	for i, machine := range machines {
		reqs[i] = &PlaceRequest{Machine: machine, Strategy: strategy, Matrix: m, Entities: n}
	}
	return svc.PlaceBatch(ctx, reqs)
}
