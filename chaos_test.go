package orwlplace_test

// PR 8 chaos acceptance: kill the daemon mid-fleet-loop, restart it,
// and prove both clients reconverge on identical epoch-stamped remaps
// — with a snapshot (epochs resume where they stopped) and without
// one (clients re-lease under their ownership tokens and converge on
// the reset epoch stream).

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"orwlplace"
	"orwlplace/internal/ctrlplane"
	"orwlplace/internal/orwl"
	"orwlplace/internal/orwlnet"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// chaosTasks sizes the machine-global task space (two peers, half
// each), matching the wire-level fleet tests: big enough to span NUMA
// boundaries on the Fig. 2 testbed so the golden shift is worth
// adopting.
const chaosTasks = 32

// chaosDaemon is one in-process incarnation of `orwlnetd -place
// -adaptive`: a controller the test drives epoch-by-epoch (so adoption
// timing is deterministic) and a server the test can kill abruptly.
type chaosDaemon struct {
	ctrl *ctrlplane.Controller
	srv  *orwlnet.Server
	done chan struct{}
}

// startChaosDaemon brings a daemon incarnation up on addr ("" = pick a
// port), optionally restoring a control-plane snapshot first.
func startChaosDaemon(t *testing.T, addr string, snap *ctrlplane.Snapshot) (*chaosDaemon, string) {
	t.Helper()
	fleet := placement.NewMultiService()
	if err := fleet.AddMachine("fig2", topology.Fig2Machine()); err != nil {
		t.Fatal(err)
	}
	threads := make([]perfsim.Thread, chaosTasks)
	for i := range threads {
		threads[i] = perfsim.Thread{ComputeCycles: 1e5, WorkingSet: 1 << 20, MemoryTraffic: 1 << 14}
	}
	ctrl, err := ctrlplane.NewController(fleet, ctrlplane.Config{
		Adaptive: placement.AdaptiveConfig{
			Horizon:  500,
			Workload: &perfsim.Workload{Name: "chaos-test", Threads: threads, Iterations: 1},
		},
		StaleAfter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		if err := ctrl.Restore(snap); err != nil {
			t.Fatal(err)
		}
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := orwlnet.NewServer(lis, nil, orwlnet.WithPlacement(fleet), orwlnet.WithControlPlane(ctrl))
	if err != nil {
		t.Fatal(err)
	}
	d := &chaosDaemon{ctrl: ctrl, srv: srv, done: make(chan struct{})}
	go func() { srv.Serve(); close(d.done) }()
	return d, lis.Addr().String()
}

// kill closes the daemon abruptly — every client connection dies
// mid-conversation — and waits for the serve loop to exit so the port
// can be rebound by the next incarnation.
func (d *chaosDaemon) kill(t *testing.T) {
	t.Helper()
	d.srv.Close()
	select {
	case <-d.done:
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not drain after kill")
	}
}

// chaosClient is one fleet member: a program generating synthetic
// traffic, a FleetAdaptive loop, and a log of every remap it applied.
type chaosClient struct {
	name string
	fa   *orwlplace.FleetAdaptive
	stop context.CancelFunc
	done chan error

	mu      sync.Mutex
	phase   int // 0 = ring, 1 = clusters
	applied []orwlplace.Remap
}

// startChaosClient dials the daemon with retries armed and runs the
// fleet loop in the background.
func startChaosClient(t *testing.T, ctx context.Context, addr, name string, base int) *chaosClient {
	t.Helper()
	rs, err := orwlplace.DialPlacement(ctx, addr, orwlplace.WithRetry(orwlplace.RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })

	const half = chaosTasks / 2
	prog := orwl.MustProgram(half)
	fa, err := orwlplace.NewFleetAdaptive(ctx, rs, prog, orwlplace.FleetAdaptiveConfig{
		Peer:     name,
		TaskBase: base,
		Interval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	runCtx, cancel := context.WithCancel(ctx)
	c := &chaosClient{name: name, fa: fa, stop: cancel, done: make(chan error, 1)}
	t.Cleanup(cancel)

	// Traffic generator: each peer records its local slice of the
	// machine-wide pattern — a ring until the test flips the phase,
	// then the clustered pattern the ring mapping is wrong for.
	go func() {
		tr := prog.Traffic()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-tick.C:
			}
			c.mu.Lock()
			phase := c.phase
			c.mu.Unlock()
			if phase == 0 {
				for i := 0; i+1 < half; i++ {
					tr.Record(i, i+1, 1<<20)
				}
			} else {
				const k = 4
				for b := 0; b < k; b++ {
					for x := b; x < half; x += k {
						for y := x + k; y < half; y += k {
							tr.Record(x, y, 1<<20)
						}
					}
				}
			}
		}
	}()

	go func() {
		c.done <- fa.Run(runCtx, func(ev orwlplace.Remap) {
			c.mu.Lock()
			c.applied = append(c.applied, ev)
			c.mu.Unlock()
		})
	}()
	return c
}

func (c *chaosClient) setPhase(p int) {
	c.mu.Lock()
	c.phase = p
	c.mu.Unlock()
}

func (c *chaosClient) remaps() []orwlplace.Remap {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]orwlplace.Remap(nil), c.applied...)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// driveEpoch runs reconciliation epochs until one adopts.
func driveEpoch(t *testing.T, ctrl *ctrlplane.Controller, what string) uint64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rep, err := ctrl.Epoch("")
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if rep != nil && rep.Adopted {
			return ctrl.Latest("").Epoch
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for adoption: %s", what)
	return 0
}

// sameAssignment compares the machine-global compute mapping of two
// remap events.
func sameAssignment(a, b orwlplace.Remap) bool {
	if a.Assignment == nil || b.Assignment == nil || len(a.Assignment.ComputePU) != len(b.Assignment.ComputePU) {
		return false
	}
	for i, pu := range a.Assignment.ComputePU {
		if b.Assignment.ComputePU[i] != pu {
			return false
		}
	}
	return true
}

// TestChaosRestartWithSnapshot: the daemon dies abruptly mid-loop and
// comes back from its snapshot. Both clients ride out the outage and
// apply the post-restart remap; the epoch stream continues past the
// snapshotted epoch instead of resetting.
func TestChaosRestartWithSnapshot(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	d1, addr := startChaosDaemon(t, "", nil)
	alpha := startChaosClient(t, ctx, addr, "alpha", 0)
	beta := startChaosClient(t, ctx, addr, "beta", chaosTasks/2)
	clients := []*chaosClient{alpha, beta}

	// Phase 1: ring traffic flows, the controller primes — epoch 1 —
	// and both clients apply it.
	waitFor(t, "first reports", 10*time.Second, func() bool {
		return d1.ctrl.Stats().ReportsReceived >= 2
	})
	ep1 := driveEpoch(t, d1.ctrl, "priming epoch")
	waitFor(t, "both clients on the primed epoch", 10*time.Second, func() bool {
		return alpha.fa.AppliedEpoch() >= ep1 && beta.fa.AppliedEpoch() >= ep1
	})

	// Phase 2: snapshot (the periodic snapshotter's work), then kill.
	// Everything after the snapshot dies with the daemon.
	snap := d1.ctrl.Snapshot()
	d1.kill(t)

	// Clients are now degraded: reports fail and queue, the last
	// applied placement stays bound, the watchers redial in a loop.
	time.Sleep(50 * time.Millisecond)

	// Phase 3: restart on the same address from the snapshot. The
	// restored controller resumes at the snapshotted epoch.
	d2, _ := startChaosDaemon(t, addr, snap)
	if got := d2.ctrl.Latest("").Epoch; got != ep1 {
		t.Fatalf("restored daemon resumed at epoch %d, want snapshotted %d", got, ep1)
	}
	waitFor(t, "watchers resubscribed", 15*time.Second, func() bool {
		return d2.ctrl.Stats().Watchers >= 2
	})
	waitFor(t, "reports resumed", 15*time.Second, func() bool {
		return d2.ctrl.Stats().ReportsReceived >= 2
	})

	// Phase 4: the golden shift. The restored reconciler measures drift
	// against its restored baseline and adopts — stamped ABOVE the
	// snapshotted epoch (continuity, not a reset).
	for _, c := range clients {
		c.setPhase(1)
	}
	waitFor(t, "post-shift reports", 15*time.Second, func() bool {
		return d2.ctrl.Stats().ReportsReceived >= 6
	})
	ep2 := driveEpoch(t, d2.ctrl, "post-restart shift epoch")
	if ep2 <= ep1 {
		t.Fatalf("post-restart adoption epoch %d did not continue past snapshotted %d", ep2, ep1)
	}
	waitFor(t, "both clients on the post-restart epoch", 15*time.Second, func() bool {
		return alpha.fa.AppliedEpoch() >= ep2 && beta.fa.AppliedEpoch() >= ep2
	})
	d2.kill(t)
	for _, c := range clients {
		c.stop()
		<-c.done
	}

	// Both clients saw identical epoch-stamped remaps: same epochs in
	// the same order, same machine-global assignment at every epoch.
	ra, rb := alpha.remaps(), beta.remaps()
	if len(ra) == 0 || len(ra) != len(rb) {
		t.Fatalf("remap logs diverge: alpha %d events, beta %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Epoch != rb[i].Epoch || !sameAssignment(ra[i], rb[i]) {
			t.Fatalf("remap %d diverges: alpha epoch %d vs beta epoch %d", i, ra[i].Epoch, rb[i].Epoch)
		}
	}
	// And the lease survived the restart: nobody needed to re-register.
	for _, c := range clients {
		if st := c.fa.Stats(); st.Releases != 0 {
			t.Errorf("%s re-leased %d time(s) despite the snapshot", c.name, st.Releases)
		}
	}
}

// TestFleetReportQueueOverflowCounted: during a prolonged outage the
// facade's retransmit queue is bounded — the oldest windows are
// dropped, and the drops are counted in the loop's stats instead of
// vanishing silently.
func TestFleetReportQueueOverflowCounted(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	d, addr := startChaosDaemon(t, "", nil)
	rs, err := orwlplace.DialPlacement(ctx, addr) // no retry: fail fast
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	prog := orwl.MustProgram(4)
	fa, err := orwlplace.NewFleetAdaptive(ctx, rs, prog, orwlplace.FleetAdaptiveConfig{Peer: "solo"})
	if err != nil {
		t.Fatal(err)
	}
	d.kill(t)

	// 20 windows against a dead daemon: the 16-slot queue fills, then
	// each further window evicts the oldest.
	tr := prog.Traffic()
	for i := 0; i < 20; i++ {
		tr.Record(0, 1, 1024)
		if err := fa.Report(ctx); err == nil {
			t.Fatal("report to a dead daemon succeeded")
		}
	}
	st := fa.Stats()
	if st.DroppedWindows != 4 {
		t.Fatalf("DroppedWindows = %d, want 4 (20 windows into a 16-slot queue)", st.DroppedWindows)
	}
	if st.Reports != 0 {
		t.Fatalf("Reports = %d while the daemon was dead, want 0", st.Reports)
	}
}

// TestChaosRestartWithoutSnapshot: the daemon comes back with amnesia.
// Clients' reports are refused with "unknown lease"; the facade
// re-registers under the same ownership token and the fleet still
// reconverges on the (reset) epoch stream.
func TestChaosRestartWithoutSnapshot(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	d1, addr := startChaosDaemon(t, "", nil)
	alpha := startChaosClient(t, ctx, addr, "alpha", 0)
	beta := startChaosClient(t, ctx, addr, "beta", chaosTasks/2)
	clients := []*chaosClient{alpha, beta}

	waitFor(t, "first reports", 10*time.Second, func() bool {
		return d1.ctrl.Stats().ReportsReceived >= 2
	})
	ep1 := driveEpoch(t, d1.ctrl, "priming epoch")
	waitFor(t, "both clients on the primed epoch", 10*time.Second, func() bool {
		return alpha.fa.AppliedEpoch() >= ep1 && beta.fa.AppliedEpoch() >= ep1
	})
	d1.kill(t)

	// Restart with no snapshot: every lease is gone.
	d2, _ := startChaosDaemon(t, addr, nil)
	// The facade loops hit "unknown lease", re-register with their
	// tokens, and reports flow again.
	waitFor(t, "clients re-leased", 15*time.Second, func() bool {
		return alpha.fa.Stats().Releases > 0 && beta.fa.Stats().Releases > 0
	})
	waitFor(t, "watchers resubscribed", 15*time.Second, func() bool {
		return d2.ctrl.Stats().Watchers >= 2
	})

	// The amnesiac daemon's epochs restart at 1 — which both clients
	// already applied, so dedup skips it. Only an epoch past their
	// applied mark lands: prime, then shift.
	waitFor(t, "post-restart reports", 15*time.Second, func() bool {
		return d2.ctrl.Stats().ReportsReceived >= 2
	})
	driveEpoch(t, d2.ctrl, "re-priming epoch")
	for _, c := range clients {
		c.setPhase(1)
	}
	waitFor(t, "post-shift reports", 15*time.Second, func() bool {
		return d2.ctrl.Stats().ReportsReceived >= 6
	})
	ep2 := driveEpoch(t, d2.ctrl, "post-restart shift epoch")
	waitFor(t, "both clients past the reset epoch stream", 15*time.Second, func() bool {
		return alpha.fa.AppliedEpoch() >= ep2 && beta.fa.AppliedEpoch() >= ep2
	})
	d2.kill(t)
	for _, c := range clients {
		c.stop()
		<-c.done
	}

	// The applied streams still match event for event.
	ra, rb := alpha.remaps(), beta.remaps()
	if len(ra) == 0 || len(ra) != len(rb) {
		t.Fatalf("remap logs diverge: alpha %d events, beta %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Epoch != rb[i].Epoch || !sameAssignment(ra[i], rb[i]) {
			t.Fatalf("remap %d diverges: alpha epoch %d vs beta epoch %d", i, ra[i].Epoch, rb[i].Epoch)
		}
	}
}
