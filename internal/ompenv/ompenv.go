// Package ompenv parses the OpenMP-family affinity environment
// variables the paper's baselines are configured with (§II, §VI):
// OMP_PLACES and OMP_PROC_BIND from the OpenMP 4.5 standard,
// KMP_AFFINITY from Intel's runtime and GOMP_CPU_AFFINITY from GCC's.
// The parsed settings translate into concrete placements on a
// topology, which is how cmd/orwlmap and the experiment harness name
// their baseline configurations.
package ompenv

import (
	"fmt"
	"strconv"
	"strings"

	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// PlaceKind is the granularity named by OMP_PLACES.
type PlaceKind int

// OMP_PLACES granularities.
const (
	PlacesThreads  PlaceKind = iota // one place per hardware thread
	PlacesCores                     // one place per core
	PlacesSockets                   // one place per socket
	PlacesExplicit                  // an explicit place list
)

// ProcBind is the OMP_PROC_BIND policy.
type ProcBind int

// OMP_PROC_BIND policies.
const (
	BindFalse ProcBind = iota
	BindTrue
	BindClose
	BindSpread
	BindMaster
)

// Settings is the parsed affinity configuration.
type Settings struct {
	Places     PlaceKind
	PlaceList  [][]int // PU OS indexes per place, for PlacesExplicit
	Bind       ProcBind
	KMPCompact bool  // KMP_AFFINITY=compact
	KMPScatter bool  // KMP_AFFINITY=scatter
	GOMPList   []int // GOMP_CPU_AFFINITY CPU list, in order
}

// ParsePlaces parses an OMP_PLACES value: "threads", "cores",
// "sockets", or an explicit list like "{0,1},{2,3}" or "{0:4}" (start
// and length) with an optional stride form "{0:2}:4:8" (length:count:
// stride) reduced here to the common start:len subset per place.
func ParsePlaces(v string) (PlaceKind, [][]int, error) {
	switch strings.TrimSpace(strings.ToLower(v)) {
	case "threads":
		return PlacesThreads, nil, nil
	case "cores":
		return PlacesCores, nil, nil
	case "sockets":
		return PlacesSockets, nil, nil
	case "":
		return PlacesCores, nil, nil
	}
	var places [][]int
	rest := strings.TrimSpace(v)
	for len(rest) > 0 {
		if rest[0] != '{' {
			return 0, nil, fmt.Errorf("ompenv: expected '{' in OMP_PLACES at %q", rest)
		}
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return 0, nil, fmt.Errorf("ompenv: unterminated place in %q", v)
		}
		place, err := parsePlaceBody(rest[1:end])
		if err != nil {
			return 0, nil, err
		}
		places = append(places, place)
		rest = rest[end+1:]
		rest = strings.TrimPrefix(rest, ",")
		rest = strings.TrimSpace(rest)
	}
	if len(places) == 0 {
		return 0, nil, fmt.Errorf("ompenv: empty OMP_PLACES %q", v)
	}
	return PlacesExplicit, places, nil
}

// parsePlaceBody parses "0,1,2" or "0:4" (start:length).
func parsePlaceBody(body string) ([]int, error) {
	if strings.Contains(body, ":") {
		parts := strings.Split(body, ":")
		if len(parts) != 2 {
			return nil, fmt.Errorf("ompenv: unsupported place form {%s}", body)
		}
		start, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		length, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil || length <= 0 || start < 0 {
			return nil, fmt.Errorf("ompenv: bad place {%s}", body)
		}
		out := make([]int, length)
		for i := range out {
			out[i] = start + i
		}
		return out, nil
	}
	var out []int
	for _, f := range strings.Split(body, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || id < 0 {
			return nil, fmt.Errorf("ompenv: bad place member %q", f)
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("ompenv: empty place")
	}
	return out, nil
}

// ParseProcBind parses an OMP_PROC_BIND value.
func ParseProcBind(v string) (ProcBind, error) {
	switch strings.TrimSpace(strings.ToLower(v)) {
	case "", "false":
		return BindFalse, nil
	case "true":
		return BindTrue, nil
	case "close":
		return BindClose, nil
	case "spread":
		return BindSpread, nil
	case "master", "primary":
		return BindMaster, nil
	default:
		return 0, fmt.Errorf("ompenv: unknown OMP_PROC_BIND %q", v)
	}
}

// ParseKMPAffinity parses the KMP_AFFINITY forms used in the paper:
// comma-separated modifiers where "compact" and "scatter" name the
// strategy and "granularity=..." is accepted and recorded implicitly.
func ParseKMPAffinity(v string) (compact, scatter bool, err error) {
	if strings.TrimSpace(v) == "" {
		return false, false, nil
	}
	for _, f := range strings.Split(v, ",") {
		f = strings.TrimSpace(strings.ToLower(f))
		switch {
		case f == "compact":
			compact = true
		case f == "scatter":
			scatter = true
		case f == "none" || f == "disabled" || f == "norespect" || f == "respect" ||
			f == "verbose" || strings.HasPrefix(f, "granularity="):
			// accepted modifiers without effect on the placement shape
		default:
			return false, false, fmt.Errorf("ompenv: unknown KMP_AFFINITY part %q", f)
		}
	}
	if compact && scatter {
		return false, false, fmt.Errorf("ompenv: KMP_AFFINITY cannot be both compact and scatter")
	}
	return compact, scatter, nil
}

// ParseGOMPAffinity parses GOMP_CPU_AFFINITY: a space- or
// comma-separated list of CPUs and ranges with optional stride, e.g.
// "0 3 1-2 4-10:2".
func ParseGOMPAffinity(v string) ([]int, error) {
	fields := strings.FieldsFunc(v, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' })
	var out []int
	for _, f := range fields {
		stride := 1
		if i := strings.IndexByte(f, ':'); i >= 0 {
			s, err := strconv.Atoi(f[i+1:])
			if err != nil || s <= 0 {
				return nil, fmt.Errorf("ompenv: bad stride in %q", f)
			}
			stride = s
			f = f[:i]
		}
		if i := strings.IndexByte(f, '-'); i >= 0 {
			lo, err1 := strconv.Atoi(f[:i])
			hi, err2 := strconv.Atoi(f[i+1:])
			if err1 != nil || err2 != nil || lo < 0 || hi < lo {
				return nil, fmt.Errorf("ompenv: bad range %q", f)
			}
			for c := lo; c <= hi; c += stride {
				out = append(out, c)
			}
			continue
		}
		c, err := strconv.Atoi(f)
		if err != nil || c < 0 {
			return nil, fmt.Errorf("ompenv: bad CPU %q", f)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("ompenv: empty GOMP_CPU_AFFINITY")
	}
	return out, nil
}

// Parse combines the four variables into Settings. Values are passed
// explicitly (rather than read from the process environment) so callers
// can evaluate configurations side by side.
func Parse(ompPlaces, ompProcBind, kmpAffinity, gompAffinity string) (*Settings, error) {
	s := &Settings{}
	var err error
	s.Places, s.PlaceList, err = ParsePlaces(ompPlaces)
	if err != nil {
		return nil, err
	}
	s.Bind, err = ParseProcBind(ompProcBind)
	if err != nil {
		return nil, err
	}
	s.KMPCompact, s.KMPScatter, err = ParseKMPAffinity(kmpAffinity)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(gompAffinity) != "" {
		s.GOMPList, err = ParseGOMPAffinity(gompAffinity)
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Placement derives the placement of n threads on a topology from the
// settings, reproducing how the respective runtimes interpret them:
// GOMP_CPU_AFFINITY wins when present, then KMP_AFFINITY, then
// OMP_PLACES+OMP_PROC_BIND. An unbound configuration returns nil (the
// OS schedules).
func (s *Settings) Placement(top *topology.Topology, n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ompenv: thread count %d", n)
	}
	osToLogical := make(map[int]int, top.NumPUs())
	for _, pu := range top.PUs() {
		osToLogical[pu.OSIndex] = pu.LogicalIndex
	}
	fromOS := func(ids []int) ([]int, error) {
		out := make([]int, n)
		for i := 0; i < n; i++ {
			id := ids[i%len(ids)]
			logical, ok := osToLogical[id]
			if !ok {
				return nil, fmt.Errorf("ompenv: CPU %d not in topology", id)
			}
			out[i] = logical
		}
		return out, nil
	}
	switch {
	case len(s.GOMPList) > 0:
		return fromOS(s.GOMPList)
	case s.KMPCompact:
		return treematch.Place(top, n, treematch.StrategyCompact)
	case s.KMPScatter:
		return treematch.Place(top, n, treematch.StrategyScatter)
	}
	if s.Bind == BindFalse {
		return nil, nil // unbound
	}
	if s.Places == PlacesExplicit {
		// Thread i goes to place i (close) or to places spread over the
		// list; one PU per thread: the first PU of its place.
		firsts := make([]int, len(s.PlaceList))
		for i, p := range s.PlaceList {
			firsts[i] = p[0]
		}
		if s.Bind == BindSpread && len(firsts) > n {
			stride := len(firsts) / n
			spread := make([]int, n)
			for i := range spread {
				spread[i] = firsts[i*stride]
			}
			return fromOS(spread)
		}
		return fromOS(firsts)
	}
	switch s.Bind {
	case BindSpread:
		return treematch.Place(top, n, treematch.StrategyScatter)
	case BindMaster:
		// All threads on the master's place.
		out := make([]int, n)
		return out, nil
	default: // BindTrue, BindClose
		switch s.Places {
		case PlacesThreads:
			return treematch.Place(top, n, treematch.StrategyCompact)
		case PlacesSockets:
			return treematch.Place(top, n, treematch.StrategyScatter)
		default: // PlacesCores
			return treematch.Place(top, n, treematch.StrategyCompactCores)
		}
	}
}
