package ompenv

import (
	"testing"

	"orwlplace/internal/topology"
)

func TestParsePlacesKeywords(t *testing.T) {
	for _, c := range []struct {
		in   string
		want PlaceKind
	}{{"threads", PlacesThreads}, {"cores", PlacesCores}, {"SOCKETS", PlacesSockets}, {"", PlacesCores}} {
		kind, list, err := ParsePlaces(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if kind != c.want || list != nil {
			t.Errorf("%q: kind %v list %v", c.in, kind, list)
		}
	}
}

func TestParsePlacesExplicit(t *testing.T) {
	kind, list, err := ParsePlaces("{0,1},{2,3}")
	if err != nil {
		t.Fatal(err)
	}
	if kind != PlacesExplicit || len(list) != 2 {
		t.Fatalf("kind %v list %v", kind, list)
	}
	if list[0][0] != 0 || list[0][1] != 1 || list[1][0] != 2 {
		t.Errorf("list = %v", list)
	}
	// start:length form.
	_, list, err = ParsePlaces("{4:4}")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || len(list[0]) != 4 || list[0][3] != 7 {
		t.Errorf("range place = %v", list)
	}
	for _, bad := range []string{"{", "{0,1", "0,1}", "{}", "{a}", "{0:0}", "{-1}", "{0:2:3:4}"} {
		if _, _, err := ParsePlaces(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseProcBind(t *testing.T) {
	cases := map[string]ProcBind{
		"": BindFalse, "false": BindFalse, "true": BindTrue,
		"close": BindClose, "SPREAD": BindSpread, "master": BindMaster, "primary": BindMaster,
	}
	for in, want := range cases {
		got, err := ParseProcBind(in)
		if err != nil || got != want {
			t.Errorf("%q = %v, %v", in, got, err)
		}
	}
	if _, err := ParseProcBind("sideways"); err == nil {
		t.Error("accepted bad policy")
	}
}

func TestParseKMPAffinity(t *testing.T) {
	compact, scatter, err := ParseKMPAffinity("granularity=core,compact")
	if err != nil || !compact || scatter {
		t.Errorf("compact parse: %v %v %v", compact, scatter, err)
	}
	compact, scatter, err = ParseKMPAffinity("granularity=core,scatter")
	if err != nil || compact || !scatter {
		t.Errorf("scatter parse: %v %v %v", compact, scatter, err)
	}
	if _, _, err := ParseKMPAffinity("compact,scatter"); err == nil {
		t.Error("accepted contradictory value")
	}
	if _, _, err := ParseKMPAffinity("explode"); err == nil {
		t.Error("accepted unknown modifier")
	}
	if c, s, err := ParseKMPAffinity(""); err != nil || c || s {
		t.Error("empty value should be neutral")
	}
}

func TestParseGOMPAffinity(t *testing.T) {
	got, err := ParseGOMPAffinity("0 3 1-2 8-14:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 1, 2, 8, 11, 14}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "x", "3-1", "1-2:0", "-4"} {
		if _, err := ParseGOMPAffinity(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseCombined(t *testing.T) {
	s, err := Parse("cores", "close", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if s.Places != PlacesCores || s.Bind != BindClose {
		t.Errorf("settings = %+v", s)
	}
	if _, err := Parse("{bad", "", "", ""); err == nil {
		t.Error("accepted bad places")
	}
	if _, err := Parse("", "bad", "", ""); err == nil {
		t.Error("accepted bad proc bind")
	}
	if _, err := Parse("", "", "bad", ""); err == nil {
		t.Error("accepted bad kmp")
	}
	if _, err := Parse("", "", "", "bad"); err == nil {
		t.Error("accepted bad gomp")
	}
}

func TestPlacementPriorities(t *testing.T) {
	top := topology.TinyHT() // 2 NUMA x 2 cores x 2 PUs
	pus := top.PUs()

	// GOMP list wins over everything.
	s, _ := Parse("cores", "close", "compact", "3 1")
	pl, err := s.Placement(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pus[pl[0]].OSIndex != 3 || pus[pl[1]].OSIndex != 1 {
		t.Errorf("GOMP placement = %v", pl)
	}

	// KMP compact fills siblings.
	s, _ = Parse("", "", "granularity=core,compact", "")
	pl, err = s.Placement(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pus[pl[0]].Parent != pus[pl[1]].Parent {
		t.Error("KMP compact should fill hyperthread siblings")
	}

	// KMP scatter spreads over NUMA nodes.
	s, _ = Parse("", "", "scatter", "")
	pl, err = s.Placement(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	n0 := pus[pl[0]].AncestorOfType(topology.NUMANode)
	n1 := pus[pl[1]].AncestorOfType(topology.NUMANode)
	if n0 == n1 {
		t.Error("KMP scatter should spread")
	}

	// OMP_PLACES=cores + close: one PU per core.
	s, _ = Parse("cores", "close", "", "")
	pl, err = s.Placement(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pus[pl[0]].Parent == pus[pl[1]].Parent {
		t.Error("places=cores should use distinct cores")
	}

	// spread policy scatters.
	s, _ = Parse("cores", "spread", "", "")
	pl, err = s.Placement(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pus[pl[0]].AncestorOfType(topology.NUMANode) == pus[pl[1]].AncestorOfType(topology.NUMANode) {
		t.Error("spread should cross NUMA nodes")
	}

	// master packs everything on PU 0.
	s, _ = Parse("cores", "master", "", "")
	pl, err = s.Placement(top, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pl {
		if p != 0 {
			t.Errorf("master placement = %v", pl)
		}
	}

	// Unbound.
	s, _ = Parse("cores", "false", "", "")
	pl, err = s.Placement(top, 2)
	if err != nil || pl != nil {
		t.Errorf("unbound placement = %v, %v", pl, err)
	}
}

func TestPlacementExplicitPlaces(t *testing.T) {
	top := topology.TinyFlat() // 8 PUs
	s, err := Parse("{0,1},{4,5}", "close", "", "")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := s.Placement(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	pus := top.PUs()
	if pus[pl[0]].OSIndex != 0 || pus[pl[1]].OSIndex != 4 {
		t.Errorf("explicit placement = %v", pl)
	}
	// More threads than places wrap around.
	pl, err = s.Placement(top, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pus[pl[2]].OSIndex != 0 {
		t.Errorf("wrap placement = %v", pl)
	}
	// Spread over a longer place list picks strided places.
	s, _ = Parse("{0},{1},{2},{3},{4},{5},{6},{7}", "spread", "", "")
	pl, err = s.Placement(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pus[pl[0]].OSIndex != 0 || pus[pl[1]].OSIndex != 4 {
		t.Errorf("spread over places = %v", pl)
	}
	// Place naming a CPU outside the topology fails.
	s, _ = Parse("{99}", "close", "", "")
	if _, err := s.Placement(top, 1); err == nil {
		t.Error("accepted out-of-topology CPU")
	}
	if _, err := s.Placement(top, 0); err == nil {
		t.Error("accepted zero threads")
	}
}
