package orwlnet

import (
	"bytes"
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/placement"
)

// Native fuzz targets for the byte-level attack surface of the v4
// transport: the sparse matrix codec and the frame header are the two
// decoders that parse wire bytes with length/count fields a hostile
// peer controls. Both must never panic, and whatever they accept must
// re-encode to an equivalent value (run with `go test -fuzz=FuzzX`).

func FuzzSparseMatrixCodec(f *testing.F) {
	// Seed with real encodings so the fuzzer starts from the valid
	// grammar, plus adversarial shapes the unit tests rejected.
	ring := comm.Ring(16, 1<<20, true)
	runs, _ := sparseSize(ring)
	f.Add(appendSparseBody(nil, ring, runs))
	f.Add(appendSparseBody(nil, comm.NewMatrix(3), 0))
	f.Add(putUvarint(nil, 1<<40))
	f.Add(putUvarint(putUvarint(nil, 4), 1<<30))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, _, err := getSparseBody(data)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		// Anything accepted must survive a re-encode round trip with
		// its fingerprint intact — byte-identity is not guaranteed (the
		// input may encode zeros as value runs), value-identity is.
		runs, size := sparseSize(m)
		re := appendSparseBody(nil, m, runs)
		if len(re) != size {
			t.Fatalf("sparseSize predicted %d bytes, encoder wrote %d", size, len(re))
		}
		got, rest, err := getSparseBody(re)
		if err != nil {
			t.Fatalf("re-encoded matrix rejected: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("re-encode left %d trailing bytes", len(rest))
		}
		if comm.Fingerprint(got) != comm.Fingerprint(m) {
			t.Fatal("fingerprint drifted across re-encode")
		}
	})
}

func FuzzFrameHeader(f *testing.F) {
	var buf bytes.Buffer
	writeMessage(&buf, message{callID: 7, op: opPlaceCompute, payload: []byte("hello")})
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := readMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := writeMessage(&out, msg); err != nil {
			t.Fatalf("accepted frame refused re-encoding: %v", err)
		}
		back, err := readMessage(&out)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if back.callID != msg.callID || back.op != msg.op || !bytes.Equal(back.payload, msg.payload) {
			t.Fatal("frame round trip mangled the message")
		}
	})
}

// FuzzPlaceRequestDecode feeds arbitrary bytes to the serving side's
// full request decoder (seen-matrix table attached, as in the daemon):
// every mode byte, varint and length field is reachable, and none may
// panic or over-allocate.
func FuzzPlaceRequestDecode(f *testing.F) {
	req := &placement.PlaceRequest{Strategy: "treematch", Matrix: chainMatrix(4)}
	body, _ := encodePlaceRequest(nil, req)
	f.Add(body)
	fpOnly, _ := encodePlaceRequestOpt(nil, req, true)
	f.Add(fpOnly)
	f.Add([]byte{4})
	f.Fuzz(func(t *testing.T, data []byte) {
		mc := newMatrixCache(4)
		_, _ = decodePlaceRequestCached(data, mc)
		_, _ = decodePlaceBatchRequestCached(data, mc)
	})
}
