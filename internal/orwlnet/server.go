package orwlnet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"orwlplace/internal/ctrlplane"
	"orwlplace/internal/orwl"
	"orwlplace/internal/placement"
)

// Server exports a set of named ORWL locations — and, when configured
// with WithPlacement, a placement service — to remote clients. Each
// client connection is served independently; a blocking Await occupies
// only its own goroutine, so one connection can multiplex many
// outstanding requests.
type Server struct {
	lis   net.Listener
	locs  map[string]*orwl.Location
	place placement.Service

	// ctrl is the fleet control plane (WithControlPlane): leases,
	// observed-report merging, daemon-hosted reconciliation and remap
	// subscriptions. Nil unless the daemon runs -adaptive.
	ctrl *ctrlplane.Controller

	// ctx is canceled by Close so placement calls arriving during
	// shutdown fail fast (a strategy already computing runs to
	// completion; Close waits for it).
	ctx    context.Context
	cancel context.CancelFunc

	// matrices is the seen-matrix table fingerprint-only requests
	// resolve against (schema v4). Shared across connections: a pooled
	// client ships a matrix body once on any of its connections and
	// references it from all of them.
	matrices *matrixCache

	// idleTimeout, when positive, closes a connection that has sent no
	// bytes for the duration while nothing is in flight on it. Zero
	// (the default) keeps the historical wait-forever behaviour.
	idleTimeout time.Duration

	// reportCaps bounds what a single connection may feed the control
	// plane through opObservedReport: frame size, decoded row count and
	// a decoded-bytes/sec budget. The protocol's own limits are the
	// defaults; WithReportCaps tightens them for hostile fleets.
	reportCaps reportCaps

	// placeSem bounds concurrently *dispatched* placement ops across
	// all connections, so a pipelining client cannot fan one connection
	// out into unbounded compute goroutines. Location ops are exempt:
	// a Release must be able to overtake the blocked Awaits it unblocks,
	// and parking it behind a full semaphore would deadlock the FIFO.
	placeSem chan struct{}

	// maxProto is the highest protocol version this server offers in
	// the opHello handshake. It is protoMax in production; cross-version
	// tests lower it to impersonate an older daemon build.
	maxProto int

	// Transport counters surfaced as placement.NetStats on schema v4
	// stats payloads.
	bytesIn       atomic.Uint64
	bytesOut      atomic.Uint64
	placeInFlight atomic.Int64
	peakInFlight  atomic.Uint64

	// Remap push counters surfaced as FleetStats.DeltaPushes /
	// FullPushes on schema v6 stats payloads. They live on the server,
	// not the controller: the delta-vs-full choice is a wire concern the
	// transport-agnostic control plane never sees.
	deltaPushes atomic.Uint64
	fullPushes  atomic.Uint64

	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]struct{}
	handleID atomic.Uint64
	wg       sync.WaitGroup
}

// ServerOption customises a server.
type ServerOption func(*Server)

// WithPlacement exports a placement service alongside (or instead of)
// the locations: clients that complete the opHello handshake may call
// the placement RPCs against it.
func WithPlacement(svc placement.Service) ServerOption {
	return func(s *Server) { s.place = svc }
}

// WithControlPlane exports a fleet control plane: connections that
// negotiate protoFleet may register (machine, peer, task-range)
// leases, stream observed-traffic windows up, and subscribe to the
// controller's adopted remaps. The caller drives the controller's
// epochs (Controller.Run); the server only bridges its wire face.
func WithControlPlane(ctrl *ctrlplane.Controller) ServerOption {
	return func(s *Server) { s.ctrl = ctrl }
}

// reportCaps is the per-connection observed-report resource policy.
type reportCaps struct {
	// maxFrameBytes is the hard per-frame payload cap for
	// opObservedReport (0 = the protocol's maxMessage).
	maxFrameBytes int
	// maxRows is the hard cap on a decoded report matrix's order
	// (0 = the codec's maxMatrixOrder).
	maxRows int
	// bytesPerSec/burst, when bytesPerSec > 0, meter the report payload
	// bytes one connection may deliver (token bucket). Violations get a
	// retryable "rate limit" error, not a dropped connection.
	bytesPerSec float64
	burst       float64
}

// WithReportCaps bounds observed-report traffic per connection: a hard
// per-frame payload cap, a hard decoded row-count cap, and a sustained
// decoded-bytes/sec budget with a burst allowance. Zero values keep
// the protocol-level defaults (64 MiB frames, 2896 rows, unmetered).
func WithReportCaps(maxFrameBytes, maxRows int, bytesPerSec, burst float64) ServerOption {
	return func(s *Server) {
		if bytesPerSec > 0 && burst <= 0 {
			burst = bytesPerSec
		}
		s.reportCaps = reportCaps{maxFrameBytes: maxFrameBytes, maxRows: maxRows, bytesPerSec: bytesPerSec, burst: burst}
	}
}

// WithIdleTimeout closes connections that stay byte-silent for d with
// nothing in flight. A connection mid-request (an Await parked in the
// FIFO, a placement computing) is never reaped — only one that is
// both silent and empty. d <= 0 disables the timeout (the default).
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.idleTimeout = d }
}

// placeDispatchParallelism bounds concurrently dispatched placement
// ops per server — the same sizing the placement engine uses for its
// batch fan-out: enough to saturate the machine, bounded so a
// pipelining client cannot balloon goroutines.
var placeDispatchParallelism = max(4, 2*runtime.GOMAXPROCS(0))

// NewServer wraps a listener and the locations to export (keyed by the
// names clients use). Locations may be empty only for a pure placement
// daemon (WithPlacement).
func NewServer(lis net.Listener, locs map[string]*orwl.Location, opts ...ServerOption) (*Server, error) {
	if lis == nil {
		return nil, fmt.Errorf("orwlnet: nil listener")
	}
	s := &Server{
		lis:      lis,
		locs:     locs,
		conns:    make(map[net.Conn]struct{}),
		matrices: newMatrixCache(defaultMatrixCacheEntries),
		placeSem: make(chan struct{}, placeDispatchParallelism),
		maxProto: protoMax,
	}
	for _, o := range opts {
		o(s)
	}
	if len(locs) == 0 && s.place == nil {
		return nil, fmt.Errorf("orwlnet: nothing to export (no locations, no placement service)")
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

// Serve accepts connections until Close; it returns nil after a clean
// shutdown.
func (s *Server) Serve() error {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting, closes every connection and waits for the
// per-connection goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.cancel()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

// connState tracks the open requests of one client connection, plus
// the protocol version its opHello negotiated (protoLegacy before the
// handshake) and how many requests are mid-dispatch (the pipeline
// depth — the idle reaper must not close a silent connection that is
// merely waiting for its parked Awaits).
type connState struct {
	conn     net.Conn
	mu       sync.Mutex
	writeMu  sync.Mutex
	reqs     map[uint64]*orwl.RawRequest
	version  int
	inflight atomic.Int64

	// subs are the connection's live remap subscriptions (controller
	// ids), unsubscribed when the connection dies so their pushers
	// drain and exit.
	subs map[uint64]struct{}

	// Observed-report byte-budget token bucket (reportCaps.bytesPerSec).
	budgetMu     sync.Mutex
	reportBucket float64
	reportFilled time.Time
}

// takeReportBudget draws n payload bytes from the connection's report
// byte budget, reporting whether the budget covered them.
func (st *connState) takeReportBudget(n int, caps reportCaps) bool {
	st.budgetMu.Lock()
	defer st.budgetMu.Unlock()
	now := time.Now()
	if st.reportFilled.IsZero() {
		st.reportBucket = caps.burst
	} else {
		st.reportBucket += now.Sub(st.reportFilled).Seconds() * caps.bytesPerSec
		if st.reportBucket > caps.burst {
			st.reportBucket = caps.burst
		}
	}
	st.reportFilled = now
	if st.reportBucket < float64(n) {
		return false
	}
	st.reportBucket -= float64(n)
	return true
}

// countingReader counts the bytes readMessage has consumed, so the
// idle-timeout logic can tell "silent" (deadline fired, zero bytes
// consumed — the frame boundary is intact, maybe idle) from "stalled
// mid-frame" (a partial frame was consumed, then silence — the framing
// is unrecoverable, drop the connection). It sits ON TOP of the
// connection's bufio layer: read-ahead the buffer holds but
// readMessage has not consumed must not count, or an idle connection
// whose next frame was half-buffered would look mid-frame.
type countingReader struct {
	r io.Reader
	n atomic.Uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	st := &connState{conn: conn, reqs: make(map[uint64]*orwl.RawRequest)}
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		// Remap subscriptions die with their connection: unsubscribing
		// closes each pusher's event channel, so the pusher goroutines
		// drain and exit.
		st.mu.Lock()
		subs := st.subs
		st.subs = nil
		st.mu.Unlock()
		for id := range subs {
			s.ctrl.Unsubscribe(id)
		}
		// A dead client's queued requests must not stall the FIFO (its
		// grant would never be released) or a draining Close (a handler
		// goroutine blocked in Await would never return): withdraw them.
		st.mu.Lock()
		for id, req := range st.reqs {
			req.Cancel()
			delete(st.reqs, id)
		}
		st.mu.Unlock()
	}()
	// Buffered reads turn a pipelined burst of small frames into one
	// read syscall; the counting layer above the buffer keeps the
	// idle-timeout bookkeeping in consumed-byte terms.
	cr := &countingReader{r: bufio.NewReaderSize(conn, 32<<10)}
	for {
		if s.idleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		before := cr.n.Load()
		msg, err := readMessage(cr)
		if err != nil {
			var nerr net.Error
			if s.idleTimeout > 0 && errors.As(err, &nerr) && nerr.Timeout() && cr.n.Load() == before {
				// Byte-silent for a full idle period. With requests in
				// flight the client is legitimately waiting on us (a
				// parked Await, a long placement): keep listening.
				// With nothing in flight, reap the connection.
				if st.inflight.Load() > 0 {
					continue
				}
			}
			// Client gone, protocol error, or a timeout that struck
			// mid-frame (partial header/body read): the stream cannot be
			// re-synchronised, drop the connection.
			return
		}
		s.bytesIn.Add(13 + uint64(len(msg.payload)))
		st.inflight.Add(1)
		s.wg.Add(1)
		go func(m message) {
			defer s.wg.Done()
			defer st.inflight.Add(-1)
			if placementOp(m.op) {
				// Bound placement dispatch: a pipelining client may have
				// hundreds of frames in flight, but only this many compute
				// concurrently; the rest queue here in FIFO-ish order.
				s.placeSem <- struct{}{}
				defer func() { <-s.placeSem }()
				depth := s.placeInFlight.Add(1)
				defer s.placeInFlight.Add(-1)
				for {
					peak := s.peakInFlight.Load()
					if uint64(depth) <= peak || s.peakInFlight.CompareAndSwap(peak, uint64(depth)) {
						break
					}
				}
			}
			payload, pooled, err := s.handle(st, m)
			resp := message{callID: m.callID, op: statusOK, payload: payload}
			if err != nil {
				resp.op = statusError
				resp.payload = []byte(err.Error())
			}
			st.writeMu.Lock()
			werr := writeMessage(conn, resp)
			st.writeMu.Unlock()
			s.bytesOut.Add(13 + uint64(len(resp.payload)))
			if pooled {
				// The payload came from the encode pool and is dead now
				// that it has been written (or dropped on error).
				putPayloadBuf(payload)
			}
			if werr != nil {
				conn.Close()
			}
		}(msg)
	}
}

// placementOp reports whether op is a placement RPC — the ops whose
// dispatch the server bounds. opPlaceStats rides along: it touches the
// same service and is cheap, so bounding it costs nothing and keeps a
// stats stampede from bypassing the limiter.
func placementOp(op byte) bool {
	return op == opPlaceCompute || op == opPlaceBatch || op == opPlaceStats
}

var errUnknownHandle = errors.New("orwlnet: unknown handle")

// handle dispatches one request. The bool reports whether the payload
// was drawn from the encode pool and must be recycled after the write;
// the placement responses are, since they carry the big assignment and
// stats payloads the pool exists for.
func (s *Server) handle(st *connState, m message) ([]byte, bool, error) {
	switch m.op {
	case opPlaceCompute:
		svc, err := s.placementFor(st)
		if err != nil {
			return nil, false, err
		}
		req, err := decodePlaceRequestCached(m.payload, s.matrices)
		if err != nil {
			return nil, false, err
		}
		resp, err := svc.Place(s.ctx, req)
		if err != nil {
			return nil, false, err
		}
		// Answer in the schema the request spoke: a v1 client must be
		// able to decode the response to its routed-to-default call.
		resp.Version = req.Version
		buf := getPayloadBuf()
		payload, err := encodePlaceResponse(buf, resp)
		if err != nil {
			putPayloadBuf(buf)
			return nil, false, err
		}
		return payload, true, nil
	case opPlaceBatch:
		svc, err := s.placementFor(st)
		if err != nil {
			return nil, false, err
		}
		// Batch is a protoBatch-level op and its response is always
		// schema v2: a connection that only negotiated v1 could not
		// decode the answer, so refuse up front.
		if v := s.connVersion(st); v < protoBatch {
			return nil, false, fmt.Errorf("orwlnet: opPlaceBatch on a protocol v%d connection (needs >= v%d)", v, protoBatch)
		}
		reqs, err := decodePlaceBatchRequestCached(m.payload, s.matrices)
		if err != nil {
			return nil, false, err
		}
		resps, err := svc.PlaceBatch(s.ctx, reqs)
		if err != nil {
			return nil, false, err
		}
		buf := getPayloadBuf()
		payload, err := encodePlaceBatchResponse(buf, resps, schemaForProto(s.connVersion(st)))
		if err != nil {
			putPayloadBuf(buf)
			return nil, false, err
		}
		return payload, true, nil
	case opPlaceStats:
		if _, err := s.placementFor(st); err != nil {
			return nil, false, err
		}
		stats, err := s.ServiceStats(s.ctx)
		if err != nil {
			return nil, false, err
		}
		// The stats op carries no request schema version, so the
		// connection's negotiated protocol decides the payload shape:
		// pre-fleet clients get the v1 encoding, pre-adaptive fleet
		// clients the v2 one (the later tails simply go unencoded).
		schema := schemaForProto(s.connVersion(st))
		buf := getPayloadBuf()
		payload, err := encodeServiceStats(buf, stats, schema)
		if err != nil {
			putPayloadBuf(buf)
			return nil, false, err
		}
		return payload, true, nil
	case opFleetLease:
		ctrl, err := s.fleetFor(st)
		if err != nil {
			return nil, false, err
		}
		machine, peer, base, count, token, err := decodeFleetLeaseRequest(m.payload)
		if err != nil {
			return nil, false, err
		}
		lease, err := ctrl.RegisterToken(machine, peer, base, count, token)
		if err != nil {
			return nil, false, err
		}
		return encodeFleetLeaseResponse(nil, lease.ID), false, nil
	case opObservedReport:
		ctrl, err := s.fleetFor(st)
		if err != nil {
			return nil, false, err
		}
		if cap := s.reportCaps.maxFrameBytes; cap > 0 && len(m.payload) > cap {
			return nil, false, fmt.Errorf("orwlnet: observed report of %d bytes exceeds the %d-byte frame cap", len(m.payload), cap)
		}
		if s.reportCaps.bytesPerSec > 0 && !st.takeReportBudget(len(m.payload), s.reportCaps) {
			return nil, false, fmt.Errorf("orwlnet: rate limit: connection exceeded its observed-report byte budget — back off and retry")
		}
		leaseID, seq, delta, err := decodeObservedReport(m.payload)
		if err != nil {
			return nil, false, err
		}
		if cap := s.reportCaps.maxRows; cap > 0 && delta.Order() > cap {
			return nil, false, fmt.Errorf("orwlnet: observed report order %d exceeds the %d-row cap", delta.Order(), cap)
		}
		return nil, false, ctrl.Report(leaseID, seq, delta)
	case opWatchRemaps:
		return s.handleWatch(st, m)
	default:
		payload, err := s.handleLocation(st, m)
		return payload, false, err
	}
}

// handleLocation serves the location ops, the handshake and the
// topology fetch — the payloads small or caller-owned enough that
// pooling buys nothing.
func (s *Server) handleLocation(st *connState, m message) ([]byte, error) {
	switch m.op {
	case opScale:
		name, rest, err := getString(m.payload)
		if err != nil {
			return nil, err
		}
		size, _, err := getUint64(rest)
		if err != nil {
			return nil, err
		}
		loc, err := s.location(name)
		if err != nil {
			return nil, err
		}
		loc.Scale(int(size))
		return nil, nil
	case opSize:
		name, _, err := getString(m.payload)
		if err != nil {
			return nil, err
		}
		loc, err := s.location(name)
		if err != nil {
			return nil, err
		}
		return putUint64(nil, uint64(loc.Size())), nil
	case opInsert:
		name, rest, err := getString(m.payload)
		if err != nil {
			return nil, err
		}
		if len(rest) < 1 {
			return nil, fmt.Errorf("orwlnet: missing mode")
		}
		mode := orwl.Mode(rest[0])
		if mode != orwl.Read && mode != orwl.Write {
			return nil, fmt.Errorf("orwlnet: bad mode %d", rest[0])
		}
		loc, err := s.location(name)
		if err != nil {
			return nil, err
		}
		id := s.handleID.Add(1)
		st.mu.Lock()
		st.reqs[id] = loc.NewRequest(mode)
		st.mu.Unlock()
		return putUint64(nil, id), nil
	case opAwait:
		req, err := s.request(st, m.payload)
		if err != nil {
			return nil, err
		}
		req.Await()
		return nil, nil
	case opRead:
		req, err := s.request(st, m.payload)
		if err != nil {
			return nil, err
		}
		if !req.TryAwait() {
			return nil, fmt.Errorf("orwlnet: read without grant")
		}
		buf := req.Buffer()
		out := make([]byte, len(buf))
		copy(out, buf)
		return out, nil
	case opWrite:
		id, rest, err := getUint64(m.payload)
		if err != nil {
			return nil, err
		}
		req, err := s.requestByID(st, id)
		if err != nil {
			return nil, err
		}
		if !req.TryAwait() {
			return nil, fmt.Errorf("orwlnet: write without grant")
		}
		if req.Mode() != orwl.Write {
			return nil, fmt.Errorf("orwlnet: write on read handle")
		}
		buf := req.Buffer()
		if len(rest) > len(buf) {
			return nil, fmt.Errorf("orwlnet: write of %d bytes into %d-byte location", len(rest), len(buf))
		}
		copy(buf, rest)
		return nil, nil
	case opRelease:
		id, _, err := getUint64(m.payload)
		if err != nil {
			return nil, err
		}
		req, err := s.requestByID(st, id)
		if err != nil {
			return nil, err
		}
		if err := req.Release(); err != nil {
			return nil, err
		}
		st.mu.Lock()
		delete(st.reqs, id)
		st.mu.Unlock()
		return nil, nil
	case opReleaseReinsert:
		req, err := s.request(st, m.payload)
		if err != nil {
			return nil, err
		}
		return nil, req.ReleaseAndReinsert()
	case opHello:
		if len(m.payload) < 2 {
			return nil, fmt.Errorf("orwlnet: malformed hello")
		}
		min, max := int(m.payload[0]), int(m.payload[1])
		chosen := s.maxProto
		if max < chosen {
			chosen = max
		}
		if chosen < min {
			return nil, fmt.Errorf("orwlnet: no common protocol version (client %d-%d, server <= %d)", min, max, s.maxProto)
		}
		st.mu.Lock()
		st.version = chosen
		st.mu.Unlock()
		return []byte{byte(chosen)}, nil
	case opTopology:
		svc, err := s.placementFor(st)
		if err != nil {
			return nil, err
		}
		top, err := svc.Topology(s.ctx)
		if err != nil {
			return nil, err
		}
		return top.MarshalJSON()
	default:
		return nil, fmt.Errorf("orwlnet: %s %d", errUnknownOp, m.op)
	}
}

// ServiceStats snapshots the full service description the daemon
// serves to opPlaceStats callers (and to the -stats-addr HTTP
// endpoint): the placement service's own counters plus the transport
// (NetStats) and control-plane (FleetStats) tails only the daemon can
// see. It requires a placement service.
func (s *Server) ServiceStats(ctx context.Context) (placement.ServiceStats, error) {
	if s.place == nil {
		return placement.ServiceStats{}, fmt.Errorf("orwlnet: server exports no placement service")
	}
	stats, err := s.place.Stats(ctx)
	if err != nil {
		return placement.ServiceStats{}, err
	}
	// The serving daemon owns the transport, so it (not the placement
	// service) fills in the NetStats tail.
	stats.Net = placement.NetStats{
		InFlight:           uint64(s.placeInFlight.Load()),
		PeakInFlight:       s.peakInFlight.Load(),
		BytesIn:            s.bytesIn.Load(),
		BytesOut:           s.bytesOut.Load(),
		SparseMatrices:     s.matrices.sparseSeen.Load(),
		FingerprintHits:    s.matrices.fpHits.Load(),
		FingerprintMisses:  s.matrices.fpMisses.Load(),
		MatrixCacheEntries: s.matrices.len(),
	}
	if s.ctrl != nil {
		// Same split as NetStats: the daemon hosts the control plane, so
		// it fills the fleet tail the placement service cannot see — and
		// the push-encoding counters, which live on the server because
		// the delta-vs-full choice is made at the wire.
		stats.Fleet = s.ctrl.Stats()
		stats.Fleet.DeltaPushes = s.deltaPushes.Load()
		stats.Fleet.FullPushes = s.fullPushes.Load()
	}
	return stats, nil
}

// handleWatch turns the connection into a remap subscription: the
// response to the opWatchRemaps call is the catch-up ack (the latest
// adopted remap newer than the client's since-epoch, or an empty
// epoch-0 frame), and a pusher goroutine then writes every later
// adoption as an unsolicited frame reusing the subscription's call id.
// The pusher holds an inflight count for its whole life so the idle
// reaper never closes a byte-silent watch connection.
func (s *Server) handleWatch(st *connState, m message) ([]byte, bool, error) {
	ctrl, err := s.fleetFor(st)
	if err != nil {
		return nil, false, err
	}
	machine, since, err := decodeWatchRequest(m.payload)
	if err != nil {
		return nil, false, err
	}
	subID, events, catchUp, err := ctrl.Subscribe(machine, since)
	if err != nil {
		return nil, false, err
	}
	// The ack and every pushed frame speak the connection's negotiated
	// schema: a protoDelta subscriber gets kind-byte v6 frames, an older
	// one the v5 layout.
	schema := schemaForProto(s.connVersion(st))
	buf := getPayloadBuf()
	var payload []byte
	if schema >= schemaDelta {
		payload, _, err = encodeRemapFrameV6(buf, catchUp, false)
	} else {
		payload, err = encodeRemapFrame(buf, catchUp)
	}
	if err != nil {
		putPayloadBuf(buf)
		ctrl.Unsubscribe(subID)
		return nil, false, err
	}
	// The catch-up ack is the subscriber's baseline: it now holds
	// exactly catchUp.Epoch (or its own since-epoch when nothing newer
	// existed), which is what the pusher's delta eligibility builds on.
	lastDelivered := since
	if catchUp != nil {
		lastDelivered = catchUp.Epoch
		s.fullPushes.Add(1)
	}
	st.mu.Lock()
	if st.subs == nil {
		st.subs = make(map[uint64]struct{})
	}
	st.subs[subID] = struct{}{}
	st.mu.Unlock()
	st.inflight.Add(1)
	s.wg.Add(1)
	go s.watchPusher(st, m.callID, subID, schema, lastDelivered, events)
	return payload, true, nil
}

// watchPusher forwards adopted remaps to one subscriber connection. It
// exits when the subscription's event channel closes — on connection
// death (serveConn's deferred unsubscribe) or an Unsubscribe after a
// failed write.
//
// lastDelivered tracks the newest epoch the subscriber is known to
// hold (seeded by the catch-up ack) — the state behind the delta
// eligibility rule: a schema v6 subscriber that is exactly one epoch
// behind an event that knows its moved tasks may receive the delta
// form; any gap (a coalesced latest-wins push, a missed write) falls
// back to the full frame, so the subscriber can always reconstruct.
func (s *Server) watchPusher(st *connState, callID, subID uint64, schema int, lastDelivered uint64, events <-chan ctrlplane.Remap) {
	defer s.wg.Done()
	defer st.inflight.Add(-1)
	for ev := range events {
		allowDelta := schema >= schemaDelta && ev.Epoch == lastDelivered+1 && ev.MovedTasks != nil
		buf := getPayloadBuf()
		var payload []byte
		var isDelta bool
		var err error
		if schema >= schemaDelta {
			payload, isDelta, err = encodeRemapFrameV6(buf, &ev, allowDelta)
		} else {
			payload, err = encodeRemapFrame(buf, &ev)
		}
		if err != nil {
			putPayloadBuf(buf)
			continue
		}
		st.writeMu.Lock()
		werr := writeMessage(st.conn, message{callID: callID, op: statusOK, payload: payload})
		st.writeMu.Unlock()
		s.bytesOut.Add(13 + uint64(len(payload)))
		putPayloadBuf(payload)
		if werr != nil {
			// Dead subscriber: tear the connection down and stop the
			// flow at the source; the range drains the closing channel.
			st.conn.Close()
			s.ctrl.Unsubscribe(subID)
			continue
		}
		lastDelivered = ev.Epoch
		if isDelta {
			s.deltaPushes.Add(1)
		} else {
			s.fullPushes.Add(1)
		}
	}
}

// fleetFor gates the fleet control-plane ops: the daemon must host a
// controller and the connection must have negotiated protoFleet — the
// frames do not exist in older protocols, so a v4 connection asking
// for them is a client bug, not a routing choice.
func (s *Server) fleetFor(st *connState) (*ctrlplane.Controller, error) {
	if s.ctrl == nil {
		return nil, fmt.Errorf("orwlnet: server hosts no fleet control plane")
	}
	if v := s.connVersion(st); v < protoFleet {
		return nil, fmt.Errorf("orwlnet: fleet op on a protocol v%d connection (needs >= v%d)", v, protoFleet)
	}
	return s.ctrl, nil
}

// placementFor gates the placement RPCs: the server must export a
// service and the connection must have negotiated a version that
// includes them. The location ops stay handshake-free for backward
// compatibility.
func (s *Server) placementFor(st *connState) (placement.Service, error) {
	if s.place == nil {
		return nil, fmt.Errorf("orwlnet: server exports no placement service")
	}
	if s.connVersion(st) < protoPlacement {
		return nil, fmt.Errorf("orwlnet: placement RPC before version handshake (negotiate >= v%d with opHello)", protoPlacement)
	}
	return s.place, nil
}

// connVersion reads the connection's negotiated protocol version.
func (s *Server) connVersion(st *connState) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.version
}

func (s *Server) location(name string) (*orwl.Location, error) {
	loc, ok := s.locs[name]
	if !ok {
		return nil, fmt.Errorf("orwlnet: unknown location %q", name)
	}
	return loc, nil
}

func (s *Server) request(st *connState, payload []byte) (*orwl.RawRequest, error) {
	id, _, err := getUint64(payload)
	if err != nil {
		return nil, err
	}
	return s.requestByID(st, id)
}

func (s *Server) requestByID(st *connState, id uint64) (*orwl.RawRequest, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	req, ok := st.reqs[id]
	if !ok {
		return nil, errUnknownHandle
	}
	return req, nil
}
