package orwlnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"orwlplace/internal/orwl"
)

// Server exports a set of named ORWL locations to remote clients. Each
// client connection is served independently; a blocking Await occupies
// only its own goroutine, so one connection can multiplex many
// outstanding requests.
type Server struct {
	lis  net.Listener
	locs map[string]*orwl.Location

	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]struct{}
	handleID atomic.Uint64
	wg       sync.WaitGroup
}

// NewServer wraps a listener and the locations to export (keyed by the
// names clients use).
func NewServer(lis net.Listener, locs map[string]*orwl.Location) (*Server, error) {
	if lis == nil {
		return nil, fmt.Errorf("orwlnet: nil listener")
	}
	if len(locs) == 0 {
		return nil, fmt.Errorf("orwlnet: no locations to export")
	}
	return &Server{
		lis:   lis,
		locs:  locs,
		conns: make(map[net.Conn]struct{}),
	}, nil
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

// Serve accepts connections until Close; it returns nil after a clean
// shutdown.
func (s *Server) Serve() error {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting, closes every connection and waits for the
// per-connection goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

// connState tracks the open requests of one client connection.
type connState struct {
	mu      sync.Mutex
	writeMu sync.Mutex
	reqs    map[uint64]*orwl.RawRequest
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	st := &connState{reqs: make(map[uint64]*orwl.RawRequest)}
	for {
		msg, err := readMessage(conn)
		if err != nil {
			return // client gone or protocol error: drop the connection
		}
		s.wg.Add(1)
		go func(m message) {
			defer s.wg.Done()
			payload, err := s.handle(st, m)
			resp := message{callID: m.callID, op: statusOK, payload: payload}
			if err != nil {
				resp.op = statusError
				resp.payload = []byte(err.Error())
			}
			st.writeMu.Lock()
			werr := writeMessage(conn, resp)
			st.writeMu.Unlock()
			if werr != nil {
				conn.Close()
			}
		}(msg)
	}
}

var errUnknownHandle = errors.New("orwlnet: unknown handle")

func (s *Server) handle(st *connState, m message) ([]byte, error) {
	switch m.op {
	case opScale:
		name, rest, err := getString(m.payload)
		if err != nil {
			return nil, err
		}
		size, _, err := getUint64(rest)
		if err != nil {
			return nil, err
		}
		loc, err := s.location(name)
		if err != nil {
			return nil, err
		}
		loc.Scale(int(size))
		return nil, nil
	case opSize:
		name, _, err := getString(m.payload)
		if err != nil {
			return nil, err
		}
		loc, err := s.location(name)
		if err != nil {
			return nil, err
		}
		return putUint64(nil, uint64(loc.Size())), nil
	case opInsert:
		name, rest, err := getString(m.payload)
		if err != nil {
			return nil, err
		}
		if len(rest) < 1 {
			return nil, fmt.Errorf("orwlnet: missing mode")
		}
		mode := orwl.Mode(rest[0])
		if mode != orwl.Read && mode != orwl.Write {
			return nil, fmt.Errorf("orwlnet: bad mode %d", rest[0])
		}
		loc, err := s.location(name)
		if err != nil {
			return nil, err
		}
		id := s.handleID.Add(1)
		st.mu.Lock()
		st.reqs[id] = loc.NewRequest(mode)
		st.mu.Unlock()
		return putUint64(nil, id), nil
	case opAwait:
		req, err := s.request(st, m.payload)
		if err != nil {
			return nil, err
		}
		req.Await()
		return nil, nil
	case opRead:
		req, err := s.request(st, m.payload)
		if err != nil {
			return nil, err
		}
		if !req.TryAwait() {
			return nil, fmt.Errorf("orwlnet: read without grant")
		}
		buf := req.Buffer()
		out := make([]byte, len(buf))
		copy(out, buf)
		return out, nil
	case opWrite:
		id, rest, err := getUint64(m.payload)
		if err != nil {
			return nil, err
		}
		req, err := s.requestByID(st, id)
		if err != nil {
			return nil, err
		}
		if !req.TryAwait() {
			return nil, fmt.Errorf("orwlnet: write without grant")
		}
		if req.Mode() != orwl.Write {
			return nil, fmt.Errorf("orwlnet: write on read handle")
		}
		buf := req.Buffer()
		if len(rest) > len(buf) {
			return nil, fmt.Errorf("orwlnet: write of %d bytes into %d-byte location", len(rest), len(buf))
		}
		copy(buf, rest)
		return nil, nil
	case opRelease:
		id, _, err := getUint64(m.payload)
		if err != nil {
			return nil, err
		}
		req, err := s.requestByID(st, id)
		if err != nil {
			return nil, err
		}
		if err := req.Release(); err != nil {
			return nil, err
		}
		st.mu.Lock()
		delete(st.reqs, id)
		st.mu.Unlock()
		return nil, nil
	case opReleaseReinsert:
		req, err := s.request(st, m.payload)
		if err != nil {
			return nil, err
		}
		return nil, req.ReleaseAndReinsert()
	default:
		return nil, fmt.Errorf("orwlnet: unknown op %d", m.op)
	}
}

func (s *Server) location(name string) (*orwl.Location, error) {
	loc, ok := s.locs[name]
	if !ok {
		return nil, fmt.Errorf("orwlnet: unknown location %q", name)
	}
	return loc, nil
}

func (s *Server) request(st *connState, payload []byte) (*orwl.RawRequest, error) {
	id, _, err := getUint64(payload)
	if err != nil {
		return nil, err
	}
	return s.requestByID(st, id)
}

func (s *Server) requestByID(st *connState, id uint64) (*orwl.RawRequest, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	req, ok := st.reqs[id]
	if !ok {
		return nil, errUnknownHandle
	}
	return req, nil
}
