package orwlnet

import (
	"context"
	"net"
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// One opPlaceCompute round trip over loopback TCP, engine cache warm,
// so the measurement is the wire format, the pooled payload buffers
// and the transport — the per-RPC overhead a placement daemon pays on
// top of the strategy itself. Run with -benchmem: the codec pools keep
// the request/response payload bodies out of the per-call allocation
// count.
func BenchmarkPlaceComputeRoundTrip(b *testing.B) {
	top := topology.TinyFlat()
	eng, err := placement.NewEngine(top)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := placement.NewLocalService(eng)
	if err != nil {
		b.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(lis, nil, WithPlacement(svc))
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	c, err := Dial(lis.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	remote, err := c.PlacementService()
	if err != nil {
		b.Fatal(err)
	}

	req := &placement.PlaceRequest{
		Strategy: placement.TreeMatch,
		Matrix:   comm.Ring(8, 1<<16, true),
		Options:  placement.Options{ControlThreads: true},
	}
	ctx := context.Background()
	if _, err := remote.Place(ctx, req); err != nil { // warm the mapping cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := remote.Place(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Assignment == nil {
			b.Fatal("no assignment")
		}
	}
}
