package orwlnet

import (
	"context"
	"net"
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// One opPlaceCompute round trip over loopback TCP, engine cache warm,
// so the measurement is the wire format, the pooled payload buffers
// and the transport — the per-RPC overhead a placement daemon pays on
// top of the strategy itself. Run with -benchmem: the codec pools keep
// the request/response payload bodies out of the per-call allocation
// count.
func BenchmarkPlaceComputeRoundTrip(b *testing.B) {
	top := topology.TinyFlat()
	eng, err := placement.NewEngine(top)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := placement.NewLocalService(eng)
	if err != nil {
		b.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(lis, nil, WithPlacement(svc))
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	c, err := Dial(lis.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	remote, err := c.PlacementService()
	if err != nil {
		b.Fatal(err)
	}

	req := &placement.PlaceRequest{
		Strategy: placement.TreeMatch,
		Matrix:   comm.Ring(8, 1<<16, true),
		Options:  placement.Options{ControlThreads: true},
	}
	ctx := context.Background()
	if _, err := remote.Place(ctx, req); err != nil { // warm the mapping cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := remote.Place(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Assignment == nil {
			b.Fatal("no assignment")
		}
	}
}

// batchBenchSize is the fan-out of the batch-vs-sequential pair below:
// one request per paper testbed plus a few repeats — the shape of a
// cross-machine comparison.
const batchBenchSize = 8

// startBenchFleet serves a two-machine fleet over loopback TCP and
// returns a connected stub plus the warm request slice both benchmarks
// place. Caches are warmed so the two benchmarks measure wire and
// dispatch overhead, not TreeMatch.
func startBenchFleet(b *testing.B) (*RemoteService, []*placement.PlaceRequest, func()) {
	b.Helper()
	fleet := placement.NewMultiService()
	if err := fleet.AddMachine("tinyht", topology.TinyHT()); err != nil {
		b.Fatal(err)
	}
	if err := fleet.AddMachine("tinyflat", topology.TinyFlat()); err != nil {
		b.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(lis, nil, WithPlacement(fleet))
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		srv.Close()
		b.Fatal(err)
	}
	remote, err := c.PlacementService()
	if err != nil {
		c.Close()
		srv.Close()
		b.Fatal(err)
	}
	machines := []string{"tinyht", "tinyflat"}
	reqs := make([]*placement.PlaceRequest, batchBenchSize)
	for i := range reqs {
		reqs[i] = &placement.PlaceRequest{
			Machine:  machines[i%len(machines)],
			Strategy: placement.TreeMatch,
			Matrix:   comm.Ring(8, 1<<16, true),
		}
	}
	if _, err := remote.PlaceBatch(context.Background(), reqs); err != nil { // warm both caches
		b.Fatal(err)
	}
	return remote, reqs, func() {
		c.Close()
		srv.Close()
	}
}

// BenchmarkPlaceBatchRoundTrip places batchBenchSize warm requests
// across a two-machine fleet in ONE opPlaceBatch RPC per iteration.
// Compare ns/op against BenchmarkPlaceSequentialRoundTrip, which does
// the same work as N single RPCs: the difference is the per-request
// wire overhead batching amortises.
func BenchmarkPlaceBatchRoundTrip(b *testing.B) {
	remote, reqs, stop := startBenchFleet(b)
	defer stop()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resps, err := remote.PlaceBatch(ctx, reqs)
		if err != nil {
			b.Fatal(err)
		}
		if len(resps) != len(reqs) || resps[0].Assignment == nil {
			b.Fatal("bad batch answer")
		}
	}
}

// BenchmarkPlaceSequentialRoundTrip is the N-RPC baseline of the pair
// above: identical requests, one opPlaceCompute round trip each.
func BenchmarkPlaceSequentialRoundTrip(b *testing.B) {
	remote, reqs, stop := startBenchFleet(b)
	defer stop()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, req := range reqs {
			resp, err := remote.Place(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Assignment == nil {
				b.Fatal("no assignment")
			}
		}
	}
}
