package orwlnet

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"orwlplace/internal/comm"
	"orwlplace/internal/ctrlplane"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// fleetTasks sizes the machine-global task space: each of the two
// simulated peers owns 16 tasks, enough to span NUMA boundaries on the
// 32-PU Fig. 2 testbed (a smaller block would fit inside one NUMA node,
// where every within-block pattern costs the same and no shift could
// ever be worth adopting).
const fleetTasks = 32

// startCtrlFleetServer runs a daemon hosting a placement fleet AND the
// fleet control plane over the paper's Fig. 2 testbed. The returned
// controller is epoch-driven by the tests (no background ticker), so
// adoption timing is deterministic.
func startCtrlFleetServer(t *testing.T) (*Server, *ctrlplane.Controller, string) {
	t.Helper()
	fleet := placement.NewMultiService()
	if err := fleet.AddMachine("fig2", topology.Fig2Machine()); err != nil {
		t.Fatal(err)
	}
	threads := make([]perfsim.Thread, fleetTasks)
	for i := range threads {
		threads[i] = perfsim.Thread{ComputeCycles: 1e5, WorkingSet: 1 << 20, MemoryTraffic: 1 << 14}
	}
	ctrl, err := ctrlplane.NewController(fleet, ctrlplane.Config{
		Adaptive: placement.AdaptiveConfig{
			// A long horizon: the per-peer half-patterns yield a smaller
			// modeled gain than the golden shift's machine-wide ones, and
			// this test exercises the wire loop, not the adoption bar.
			Horizon:  500,
			Workload: &perfsim.Workload{Name: "fleet-test", Threads: threads, Iterations: 1},
		},
		StaleAfter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := serveCtrlFleet(t, fleet, ctrl)
	return srv, ctrl, addr
}

func serveCtrlFleet(t *testing.T, fleet *placement.MultiService, ctrl *ctrlplane.Controller) (*Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis, nil, WithPlacement(fleet), WithControlPlane(ctrl))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, lis.Addr().String()
}

// fleetRing / fleetClusters are the golden shift's phases, sliced per
// peer: each of the two simulated processes owns half the task space
// and generates only its local half of the machine-wide pattern.
func fleetRing(count int, vol float64) *comm.Matrix {
	m := comm.NewMatrix(count)
	for i := 0; i+1 < count; i++ {
		m.AddSym(i, i+1, vol)
	}
	return m
}

func fleetClusters(count, k int, vol float64) *comm.Matrix {
	m := comm.NewMatrix(count)
	for base := 0; base < k; base++ {
		var members []int
		for i := base; i < count; i += k {
			members = append(members, i)
		}
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				m.AddSym(members[x], members[y], vol)
			}
		}
	}
	return m
}

// TestFleetLoopEndToEnd is the acceptance scenario over the real wire:
// two client processes lease disjoint halves of one machine's task
// space, report their observed traffic, and both subscribe. The
// controller reconciles the merged matrix; when the traffic shifts,
// both watchers receive the same epoch-stamped machine-global
// assignment — without restarting anything.
func TestFleetLoopEndToEnd(t *testing.T) {
	_, ctrl, addr := startCtrlFleetServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const half = fleetTasks / 2
	type peer struct {
		rs    *RemoteService
		lease uint64
		base  int
	}
	var peers [2]*peer
	for i := range peers {
		rs, err := DialPlacementService(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rs.Close() })
		lease, err := rs.RegisterLease(ctx, "", []string{"alpha", "beta"}[i], i*half, half)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = &peer{rs: rs, lease: lease, base: i * half}
	}

	watch := make([]<-chan Remap, 2)
	for i, p := range peers {
		ch, err := p.rs.WatchRemaps(ctx, "")
		if err != nil {
			t.Fatal(err)
		}
		watch[i] = ch
	}

	report := func(seq uint64, pattern func(int, float64) *comm.Matrix) {
		t.Helper()
		for _, p := range peers {
			if err := p.rs.ReportObserved(ctx, p.lease, seq, pattern(half, 1<<20)); err != nil {
				t.Fatal(err)
			}
		}
	}
	recv := func(i int) Remap {
		t.Helper()
		select {
		case ev, ok := <-watch[i]:
			if !ok {
				t.Fatalf("watcher %d: channel closed", i)
			}
			return ev
		case <-ctx.Done():
			t.Fatalf("watcher %d: no remap before timeout", i)
		}
		panic("unreachable")
	}

	// Ring traffic primes the machine: both watchers get epoch 1.
	report(1, func(n int, vol float64) *comm.Matrix { return fleetRing(n, vol) })
	if rep, err := ctrl.Epoch("fig2"); err != nil || rep == nil || !rep.Adopted {
		t.Fatalf("priming epoch = (%+v, %v), want adoption", rep, err)
	}
	for i := range peers {
		ev := recv(i)
		if ev.Epoch != 1 || ev.Machine != "fig2" {
			t.Fatalf("watcher %d: first remap = epoch %d machine %q, want 1/fig2", i, ev.Epoch, ev.Machine)
		}
		if len(ev.Assignment.ComputePU) != fleetTasks {
			t.Fatalf("watcher %d: remap covers %d tasks, want the machine-global %d", i, len(ev.Assignment.ComputePU), fleetTasks)
		}
	}

	// The shift: clustered traffic the ring mapping is wrong for. Both
	// watchers receive the SAME epoch-2 assignment.
	report(2, func(n int, vol float64) *comm.Matrix { return fleetClusters(n, 4, vol) })
	if rep, err := ctrl.Epoch("fig2"); err != nil || rep == nil || !rep.Adopted {
		t.Fatalf("shift epoch = (%+v, %v), want adoption", rep, err)
	}
	a := recv(0)
	b := recv(1)
	if a.Epoch != 2 || b.Epoch != 2 {
		t.Fatalf("shift remap epochs = %d/%d, want 2/2", a.Epoch, b.Epoch)
	}
	if len(a.Assignment.ComputePU) != len(b.Assignment.ComputePU) {
		t.Fatal("watchers received different assignments")
	}
	for i := range a.Assignment.ComputePU {
		if a.Assignment.ComputePU[i] != b.Assignment.ComputePU[i] {
			t.Fatalf("watchers disagree at task %d: %d vs %d", i, a.Assignment.ComputePU[i], b.Assignment.ComputePU[i])
		}
	}

	// The v5 stats tail sees all of it.
	stats, err := peers[0].rs.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fleet.ReportsReceived != 4 || stats.Fleet.PeersTracked != 2 ||
		stats.Fleet.RemapsPushed < 4 || stats.Fleet.Watchers != 2 {
		t.Fatalf("fleet stats = %+v", stats.Fleet)
	}
}

// TestWatchCatchUpAck: a subscriber arriving after an adoption gets
// the latest remap as the subscription ack, pre-delivered on the
// channel — and one subscribed at the current epoch gets nothing.
func TestWatchCatchUpAck(t *testing.T) {
	_, ctrl, addr := startCtrlFleetServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	rs, err := DialPlacementService(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	lease, err := rs.RegisterLease(ctx, "fig2", "solo", 0, fleetTasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.ReportObserved(ctx, lease, 1, fleetRing(fleetTasks, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Epoch("fig2"); err != nil {
		t.Fatal(err)
	}

	late, err := DialPlacementService(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	ch, err := late.WatchRemaps(ctx, "fig2")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-ch:
		if ev.Epoch != 1 || ev.Assignment == nil {
			t.Fatalf("catch-up = %+v, want epoch 1 with assignment", ev)
		}
	case <-ctx.Done():
		t.Fatal("no catch-up delivered")
	}
}

// TestWatchResubscribeOnReconnect kills the watch connection under the
// subscriber and proves the subscription survives: the watcher redials
// with its last applied epoch and receives a remap adopted during the
// outage.
func TestWatchResubscribeOnReconnect(t *testing.T) {
	_, ctrl, addr := startCtrlFleetServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	rs, err := DialPlacementService(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	lease, err := rs.RegisterLease(ctx, "fig2", "phoenix", 0, fleetTasks)
	if err != nil {
		t.Fatal(err)
	}

	// A second stub owns the watch, so killing its connection does not
	// kill the reporting path.
	ws, err := DialPlacementService(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	ch, err := ws.WatchRemaps(ctx, "fig2")
	if err != nil {
		t.Fatal(err)
	}

	if err := rs.ReportObserved(ctx, lease, 1, fleetRing(fleetTasks, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Epoch("fig2"); err != nil {
		t.Fatal(err)
	}
	if ev := <-ch; ev.Epoch != 1 {
		t.Fatalf("first remap epoch = %d, want 1", ev.Epoch)
	}

	// Kill the watch connection out from under the subscription, then
	// adopt a remap during the outage.
	ws.c.conn.Close()
	if err := rs.ReportObserved(ctx, lease, 2, fleetClusters(fleetTasks, 4, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if rep, err := ctrl.Epoch("fig2"); err != nil || rep == nil || !rep.Adopted {
		t.Fatalf("outage epoch = (%+v, %v), want adoption", rep, err)
	}

	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("watch channel closed instead of resubscribing")
		}
		if ev.Epoch != 2 {
			t.Fatalf("post-reconnect remap epoch = %d, want 2", ev.Epoch)
		}
	case <-ctx.Done():
		t.Fatal("no remap after reconnect")
	}
}

// TestFleetOpsRefusedBelowProtoFleet pins the negotiation guard: a
// client that negotiated only v4 (the full PR 6 pipeline protocol)
// must have every fleet op refused by the server, and the client stub
// refuses to even send them.
func TestFleetOpsRefusedBelowProtoFleet(t *testing.T) {
	_, _, addr := startCtrlFleetServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	rs, err := DialPlacementService(ctx, addr, WithMaxProtocol(ProtoPipeline))
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if got := rs.c.Version(); got != protoPipeline {
		t.Fatalf("negotiated v%d, want v%d", got, protoPipeline)
	}

	// Client-side guard: the stub knows the connection cannot carry
	// fleet ops.
	if _, err := rs.RegisterLease(ctx, "fig2", "old", 0, 4); err == nil {
		t.Fatal("RegisterLease succeeded on a v4 connection")
	}
	if err := rs.ReportObserved(ctx, 1, 1, fleetRing(4, 1)); err == nil {
		t.Fatal("ReportObserved succeeded on a v4 connection")
	}
	if _, err := rs.WatchRemaps(ctx, "fig2"); err == nil {
		t.Fatal("WatchRemaps succeeded on a v4 connection")
	}

	// Server-side guard: a hand-rolled frame past the stub must be
	// refused by the dispatch, not crash it.
	for _, op := range []byte{opFleetLease, opObservedReport, opWatchRemaps} {
		payload, err := encodeFleetLeaseRequest(nil, schemaFleet, "fig2", "old", 0, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, err = rs.c.callCtx(ctx, op, payload)
		if err == nil || !strings.Contains(err.Error(), "protocol v4") {
			t.Fatalf("op %d on v4 connection: err = %v, want protocol refusal", op, err)
		}
	}
}

// TestFleetOpsWithoutControlPlane: a v5 connection to a daemon that
// hosts no controller gets a clean refusal.
func TestFleetOpsWithoutControlPlane(t *testing.T) {
	_, _, addr := startPlacementServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rs, err := DialPlacementService(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if _, err := rs.RegisterLease(ctx, "", "p", 0, 4); err == nil || !strings.Contains(err.Error(), "no fleet control plane") {
		t.Fatalf("lease against plain daemon: err = %v, want control-plane refusal", err)
	}
}

// TestPinnedV4ClientAgainstV5Server proves the compatibility
// acceptance criterion: a client pinned to the PR 6 protocol runs the
// full pipelined placement path against a fleet-capable server with
// identical behaviour — sparse matrices, fingerprint reuse, batches,
// v4 stats (no fleet tail).
func TestPinnedV4ClientAgainstV5Server(t *testing.T) {
	_, _, addr := startCtrlFleetServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	rs, err := DialPlacementService(ctx, addr, WithMaxProtocol(ProtoPipeline))
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if got := rs.c.Version(); got != protoPipeline {
		t.Fatalf("negotiated v%d, want v%d", got, protoPipeline)
	}

	m := fleetRing(8, 1<<16)
	first, err := rs.Place(ctx, &placement.PlaceRequest{Strategy: placement.TreeMatch, Matrix: m, Entities: 8})
	if err != nil {
		t.Fatal(err)
	}
	if first.Err != "" || first.Assignment == nil {
		t.Fatalf("v4 place = %+v", first)
	}
	// Second call rides the fingerprint fast path, as in PR 6.
	again, err := rs.Place(ctx, &placement.PlaceRequest{Strategy: placement.TreeMatch, Matrix: m, Entities: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("v4 repeat place missed the mapping cache")
	}
	batch, err := rs.PlaceBatch(ctx, []*placement.PlaceRequest{
		{Machine: "fig2", Strategy: placement.TreeMatch, Matrix: m, Entities: 8},
	})
	if err != nil || len(batch) != 1 || batch[0].Err != "" {
		t.Fatalf("v4 batch = (%+v, %v)", batch, err)
	}
	stats, err := rs.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Net.BytesIn == 0 {
		t.Fatal("v4 stats lost the NetStats tail")
	}
	var zero placement.FleetStats
	if stats.Fleet != zero {
		t.Fatalf("v4 stats carried a fleet tail: %+v", stats.Fleet)
	}
}
