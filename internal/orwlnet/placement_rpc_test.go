package orwlnet

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"orwlplace/internal/orwl"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// startPlacementServer runs a server exporting one location and a
// placement service for TinyHT.
func startPlacementServer(t *testing.T) (*Server, *placement.LocalService, string) {
	t.Helper()
	prog := orwl.MustProgram(1)
	loc, err := prog.AddLocation(orwl.Loc(0, "l"))
	if err != nil {
		t.Fatal(err)
	}
	loc.Scale(8)
	eng, err := placement.NewEngine(topology.TinyHT())
	if err != nil {
		t.Fatal(err)
	}
	svc, err := placement.NewLocalService(eng)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis, map[string]*orwl.Location{"l": loc}, WithPlacement(svc))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, svc, lis.Addr().String()
}

func TestRemotePlacementEndToEnd(t *testing.T) {
	_, local, addr := startPlacementServer(t)
	ctx := context.Background()
	c, err := DialContext(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() != protoMax {
		t.Fatalf("negotiated version %d, want %d", c.Version(), protoMax)
	}
	remote, err := c.PlacementService()
	if err != nil {
		t.Fatal(err)
	}

	req := &placement.PlaceRequest{Strategy: placement.TreeMatch, Matrix: chainMatrix(4)}
	resp, err := remote.Place(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Place(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	// The local call above is the second identical request, so it hits
	// the cache the remote call populated — same assignment either way.
	if !want.CacheHit {
		t.Error("local follow-up call missed the cache the remote call filled")
	}
	if len(resp.Assignment.ComputePU) != len(want.Assignment.ComputePU) {
		t.Fatalf("remote assignment %v, local %v", resp.Assignment, want.Assignment)
	}
	for i := range resp.Assignment.ComputePU {
		if resp.Assignment.ComputePU[i] != want.Assignment.ComputePU[i] {
			t.Fatalf("remote assignment %v, local %v", resp.Assignment.ComputePU, want.Assignment.ComputePU)
		}
	}
	if resp.Cost != want.Cost {
		t.Errorf("remote cost %g, local %g", resp.Cost, want.Cost)
	}

	// Topology transfers losslessly: the client-side signature equals
	// the server's.
	top, err := remote.Topology(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := remote.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := placement.Signature(top); got != stats.TopologySignature {
		t.Errorf("transferred topology signature %#x, server reports %#x", got, stats.TopologySignature)
	}
	if stats.TopologyName != "TinyHT" {
		t.Errorf("topology name %q", stats.TopologyName)
	}
	if stats.Places < 2 {
		t.Errorf("places = %d, want >= 2", stats.Places)
	}

	// The location ops still work on the same connection.
	if size, err := c.Size("l"); err != nil || size != 8 {
		t.Errorf("Size = %d, %v; want 8", size, err)
	}
}

func TestRemotePlacementConcurrent(t *testing.T) {
	_, _, addr := startPlacementServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	remote, err := c.PlacementService()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				n := 3 + (w+i)%3
				resp, err := remote.Place(ctx, &placement.PlaceRequest{
					Strategy: placement.TreeMatch, Matrix: chainMatrix(n),
				})
				if err != nil {
					errs <- err
					return
				}
				if resp.Assignment.Entities() != n {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stats, err := remote.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Places != 80 {
		t.Errorf("places = %d, want 80", stats.Places)
	}
	if stats.Cache.Hits+stats.Cache.Misses != 80 {
		t.Errorf("hits+misses = %d, want 80", stats.Cache.Hits+stats.Cache.Misses)
	}
}

// TestPlacementRequiresHandshake talks raw protocol: a placement op on
// a connection that never sent opHello must be rejected, while the
// legacy location ops keep working.
func TestPlacementRequiresHandshake(t *testing.T) {
	_, _, addr := startPlacementServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	send := func(id uint64, op byte, payload []byte) message {
		t.Helper()
		if err := writeMessage(conn, message{callID: id, op: op, payload: payload}); err != nil {
			t.Fatal(err)
		}
		resp, err := readMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := send(1, opPlaceCompute, mustEncode(encodePlaceRequest(nil, &placement.PlaceRequest{
		Strategy: placement.TreeMatch, Matrix: chainMatrix(3),
	})))
	if resp.op != statusError {
		t.Fatal("placement RPC before handshake succeeded")
	}
	if resp2 := send(2, opSize, putString(nil, "l")); resp2.op != statusOK {
		t.Fatalf("legacy op rejected without handshake: %s", resp2.payload)
	}
	if resp3 := send(3, opHello, []byte{protoLegacy, protoMax}); resp3.op != statusOK || resp3.payload[0] != protoMax {
		t.Fatalf("handshake failed: %v %s", resp3.op, resp3.payload)
	}
	if resp4 := send(4, opPlaceCompute, mustEncode(encodePlaceRequest(nil, &placement.PlaceRequest{
		Strategy: placement.TreeMatch, Matrix: chainMatrix(3),
	}))); resp4.op != statusOK {
		t.Fatalf("placement RPC after handshake rejected: %s", resp4.payload)
	}
}

func TestHelloVersionNegotiation(t *testing.T) {
	_, _, addr := startPlacementServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A client from the future: the server picks its own max.
	if err := writeMessage(conn, message{callID: 1, op: opHello, payload: []byte{protoLegacy, 200}}); err != nil {
		t.Fatal(err)
	}
	resp, err := readMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp.op != statusOK || int(resp.payload[0]) != protoMax {
		t.Fatalf("negotiated %v, want %d", resp.payload, protoMax)
	}

	// A client demanding a version beyond the server must be refused.
	if err := writeMessage(conn, message{callID: 2, op: opHello, payload: []byte{protoMax + 1, protoMax + 5}}); err != nil {
		t.Fatal(err)
	}
	resp, err = readMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp.op != statusError {
		t.Fatal("impossible version range accepted")
	}
}

// TestLegacyServerFallback fakes a pre-handshake server: opHello gets
// an unknown-op error, and the client degrades to the legacy protocol
// with placement unavailable.
func TestLegacyServerFallback(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			msg, err := readMessage(conn)
			if err != nil {
				return
			}
			writeMessage(conn, message{
				callID:  msg.callID,
				op:      statusError,
				payload: []byte("orwlnet: unknown op 9"),
			})
		}
	}()

	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() != protoLegacy {
		t.Fatalf("version = %d, want legacy %d", c.Version(), protoLegacy)
	}
	if _, err := c.PlacementService(); err == nil {
		t.Fatal("placement stub handed out on a legacy connection")
	}
}

func TestPlacementOnLocationOnlyServer(t *testing.T) {
	prog := orwl.MustProgram(1)
	loc, err := prog.AddLocation(orwl.Loc(0, "l"))
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis, map[string]*orwl.Location{"l": loc})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The handshake succeeds (the protocol is versioned server-wide)...
	remote, err := c.PlacementService()
	if err != nil {
		t.Fatal(err)
	}
	// ...but the RPCs report the missing service.
	if _, err := remote.Place(context.Background(), &placement.PlaceRequest{
		Strategy: placement.TreeMatch, Matrix: chainMatrix(3),
	}); err == nil {
		t.Fatal("placement served by a server with no placement service")
	}
}

func TestNewServerNothingToExport(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	if _, err := NewServer(lis, nil); err == nil {
		t.Fatal("server with neither locations nor placement accepted")
	}
	eng, err := placement.NewEngine(topology.TinyFlat())
	if err != nil {
		t.Fatal(err)
	}
	svc, err := placement.NewLocalService(eng)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis, nil, WithPlacement(svc))
	if err != nil {
		t.Fatalf("pure placement daemon rejected: %v", err)
	}
	go srv.Serve()
	srv.Close()
}

// TestCloseDrainsBlockedAwait: Close must return even when a handler
// goroutine is parked in opAwait behind a grant held by another (also
// dying) client — connection teardown withdraws the dead clients'
// queued requests.
func TestCloseDrainsBlockedAwait(t *testing.T) {
	srv, _, addr := startPlacementServer(t)

	holder, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	hw, err := holder.Insert("l", orwl.Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := hw.Acquire(); err != nil {
		t.Fatal(err)
	}

	waiter, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	ww, err := waiter.Insert("l", orwl.Write)
	if err != nil {
		t.Fatal(err)
	}
	acquireDone := make(chan error, 1)
	go func() { acquireDone <- ww.Acquire() }()
	time.Sleep(20 * time.Millisecond) // let opAwait park server-side

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a handler goroutine blocked in Await")
	}
	<-acquireDone // the waiter's call fails or returns once its conn dies
}

func TestDialContextCancellation(t *testing.T) {
	// A listener that accepts but never replies: the handshake must be
	// bounded by the context instead of hanging.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := DialContext(ctx, lis.Addr().String()); err == nil {
		t.Fatal("dial against a mute server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial took %v despite a 50ms context", elapsed)
	}
}
