package orwlnet

import (
	"container/list"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"orwlplace/internal/comm"
	"orwlplace/internal/placement"
	"orwlplace/internal/treematch"
)

// Schema v4 payload compaction: the dependency matrices that dominate
// placement payloads are mostly sparse (a ring row has two nonzero
// entries out of hundreds) and slowly changing (a warm client resends
// the same matrix on every call). Two wire encodings exploit that:
//
//   - a sparse run-length triplet encoding — (zero-gap, run-length,
//     value) varint runs over the row-major cell stream — chosen
//     automatically whenever it beats the dense 8n² layout;
//   - a fingerprint-only reference: once a matrix body has crossed the
//     wire, later requests send its 8-byte comm.Fingerprint and the
//     server resolves the body from its seen-matrix table, answering
//     errUnknownMatrix on a miss so the client resends the body.
//
// Both are gated on the schema v4 version byte, so a pre-pipeline peer
// never sees a mode byte it would misread as a presence bool.

// Matrix wire modes (the byte that replaces the v1-v3 presence bool in
// schema v4 payloads).
const (
	matAbsent      = 0
	matDense       = 1
	matSparse      = 2
	matFingerprint = 3
)

// errUnknownMatrix is the error text a server answers when a
// fingerprint-only request names a matrix its seen-matrix table no
// longer holds (evicted, or the daemon restarted). The wording is
// FROZEN: clients detect the condition by this substring and fall back
// to resending the matrix body.
const errUnknownMatrix = "unknown matrix fingerprint"

// maxMatrixOrder bounds a decoded matrix order. Dense payloads are
// implicitly bounded by maxMessage; the sparse and fingerprint
// encodings can claim a huge order in a few bytes, so the same ceiling
// is enforced explicitly — a hostile 5-byte frame must not allocate a
// terabyte-scale backing array.
const maxMatrixOrder = 2896 // floor(sqrt(maxMessage/8)): the densest matrix a frame can carry

// uvarintLen returns the encoded size of v in bytes.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// zigzagFloat maps float64 bits so that the trailing zero bytes of
// typical volumes (integral byte counts) become leading zeros a varint
// elides: 65536.0 encodes in 3 bytes instead of 10.
func zigzagFloat(v float64) uint64 {
	return bits.ReverseBytes64(math.Float64bits(v))
}

func unzigzagFloat(u uint64) float64 {
	return math.Float64frombits(bits.ReverseBytes64(u))
}

// sparseSize measures the exact sparse-body size of m (runs and bytes,
// excluding the mode byte) in one pass over the cell stream, so the
// encoder can choose the smaller of sparse and dense without encoding
// twice. A cell is "zero" only when its bit pattern is exactly +0:
// the encoding must round-trip bits (NaNs, -0) exactly, or the
// client's fingerprint and the server's would drift apart and every
// fingerprint-only request would miss.
func sparseSize(m *comm.Matrix) (runs int, bodyBytes int) {
	n := m.Order()
	gap := 0
	for i := 0; i < n; i++ {
		row := m.RowView(i)
		for j := 0; j < n; {
			if math.Float64bits(row[j]) == 0 {
				gap++
				j++
				continue
			}
			runLen := 1
			for j+runLen < n && math.Float64bits(row[j+runLen]) == math.Float64bits(row[j]) {
				runLen++
			}
			runs++
			bodyBytes += uvarintLen(uint64(gap)) + uvarintLen(uint64(runLen)) + uvarintLen(zigzagFloat(row[j]))
			gap = 0
			j += runLen
		}
	}
	bodyBytes += uvarintLen(uint64(n)) + uvarintLen(uint64(runs))
	return runs, bodyBytes
}

// appendSparseBody emits the sparse body: uvarint order, uvarint run
// count, then (zero-gap, run-length, reversed-bits value) varint
// triplets over the row-major cell stream. Runs never cross a value
// change; the gap field is the RLE of the zero cells between them.
func appendSparseBody(dst []byte, m *comm.Matrix, runs int) []byte {
	n := m.Order()
	dst = putUvarint(dst, uint64(n))
	dst = putUvarint(dst, uint64(runs))
	gap := 0
	for i := 0; i < n; i++ {
		row := m.RowView(i)
		for j := 0; j < n; {
			b := math.Float64bits(row[j])
			if b == 0 {
				gap++
				j++
				continue
			}
			runLen := 1
			for j+runLen < n && math.Float64bits(row[j+runLen]) == b {
				runLen++
			}
			dst = putUvarint(dst, uint64(gap))
			dst = putUvarint(dst, uint64(runLen))
			dst = putUvarint(dst, zigzagFloat(row[j]))
			gap = 0
			j += runLen
		}
	}
	return dst
}

// getSparseBody decodes a sparse matrix body.
func getSparseBody(src []byte) (*comm.Matrix, []byte, error) {
	n64, rest, err := getUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if n64 > maxMatrixOrder {
		return nil, nil, fmt.Errorf("orwlnet: sparse matrix order %d exceeds limit %d", n64, maxMatrixOrder)
	}
	n := int(n64)
	runs, rest, err := getUvarint(rest)
	if err != nil {
		return nil, nil, err
	}
	// Each run costs at least three bytes on the wire; a count beyond
	// that is a corrupt or hostile frame.
	if runs > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("orwlnet: absurd sparse run count %d", runs)
	}
	m := comm.NewMatrix(n)
	cells := n * n
	idx := 0
	for r := uint64(0); r < runs; r++ {
		var gap, runLen, raw uint64
		if gap, rest, err = getUvarint(rest); err != nil {
			return nil, nil, err
		}
		if runLen, rest, err = getUvarint(rest); err != nil {
			return nil, nil, err
		}
		if raw, rest, err = getUvarint(rest); err != nil {
			return nil, nil, err
		}
		if runLen == 0 {
			return nil, nil, fmt.Errorf("orwlnet: sparse run %d has zero length", r)
		}
		if gap > uint64(cells) || uint64(idx)+gap+runLen > uint64(cells) {
			return nil, nil, fmt.Errorf("orwlnet: sparse run %d overruns the %d-cell matrix", r, cells)
		}
		idx += int(gap)
		v := unzigzagFloat(raw)
		for k := 0; k < int(runLen); k++ {
			m.Set(idx/n, idx%n, v)
			idx++
		}
	}
	return m, rest, nil
}

// putMatrixCompact encodes a matrix for a schema v4 payload, choosing
// the smaller of the sparse and dense encodings. The choice is
// invisible to the decoder (both carry their mode byte), so density
// drift in a workload never needs renegotiation.
func putMatrixCompact(dst []byte, m *comm.Matrix) []byte {
	if m == nil {
		return append(dst, matAbsent)
	}
	n := m.Order()
	runs, sparseBytes := sparseSize(m)
	if sparseBytes >= 8+8*n*n {
		dst = append(dst, matDense)
		return putMatrixDenseBody(dst, m)
	}
	dst = append(dst, matSparse)
	return appendSparseBody(dst, m, runs)
}

// putMatrixFingerprint encodes a fingerprint-only matrix reference:
// the 8-byte comm.Fingerprint plus the order (so the server can
// sanity-check the resolved body against what the client meant).
func putMatrixFingerprint(dst []byte, fp uint64, order int) []byte {
	dst = append(dst, matFingerprint)
	dst = putUint64(dst, fp)
	return putUvarint(dst, uint64(order))
}

// getMatrixV4 decodes a schema v4 matrix field. mc is the serving
// side's seen-matrix table: full bodies are remembered in it and
// fingerprint references resolved from it; a nil mc (client-side
// decode, codec tests) still decodes bodies but refuses fingerprint
// references. The second result is the matrix's comm.Fingerprint when
// the decode path established it anyway (resolving a reference, or
// remembering a body) — the serving side forwards it as the request's
// MatrixFP hint so the engine never re-hashes; zero when unknown.
func getMatrixV4(src []byte, mc *matrixCache) (*comm.Matrix, uint64, []byte, error) {
	if len(src) < 1 {
		return nil, 0, nil, fmt.Errorf("orwlnet: truncated matrix mode")
	}
	mode, rest := src[0], src[1:]
	switch mode {
	case matAbsent:
		return nil, 0, rest, nil
	case matDense:
		m, rest, err := getMatrixDenseBody(rest)
		if err != nil {
			return nil, 0, nil, err
		}
		var fp uint64
		if mc != nil {
			fp = comm.Fingerprint(m)
			mc.remember(fp, m)
		}
		return m, fp, rest, nil
	case matSparse:
		m, rest, err := getSparseBody(rest)
		if err != nil {
			return nil, 0, nil, err
		}
		var fp uint64
		if mc != nil {
			mc.sparseSeen.Add(1)
			fp = comm.Fingerprint(m)
			mc.remember(fp, m)
		}
		return m, fp, rest, nil
	case matFingerprint:
		fp, rest, err := getUint64(rest)
		if err != nil {
			return nil, 0, nil, err
		}
		order, rest, err := getUvarint(rest)
		if err != nil {
			return nil, 0, nil, err
		}
		if mc == nil {
			return nil, 0, nil, fmt.Errorf("orwlnet: fingerprint-only matrix without a serving matrix table")
		}
		m, ok := mc.lookup(fp)
		if !ok {
			return nil, 0, nil, fmt.Errorf("orwlnet: %s %016x", errUnknownMatrix, fp)
		}
		if uint64(m.Order()) != order {
			// A fingerprint collision between different orders would
			// silently place the wrong matrix; refuse like a miss so the
			// client resends the body.
			return nil, 0, nil, fmt.Errorf("orwlnet: %s %016x (order %d, cached %d)", errUnknownMatrix, fp, order, m.Order())
		}
		return m, fp, rest, nil
	default:
		return nil, 0, nil, fmt.Errorf("orwlnet: unknown matrix mode %d", mode)
	}
}

// matrixCache is the daemon's seen-matrix table: an LRU of recently
// decoded request matrices keyed by comm.Fingerprint, shared across
// every connection so a pooled client warms it once. Cached matrices
// are shared read-only with the placement engines (nothing downstream
// of decode mutates a request matrix).
type matrixCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *matrixCacheEntry
	entries map[uint64]*list.Element

	sparseSeen atomic.Uint64
	fpHits     atomic.Uint64
	fpMisses   atomic.Uint64
}

type matrixCacheEntry struct {
	fp uint64
	m  *comm.Matrix
}

// defaultMatrixCacheEntries bounds the seen-matrix table. Matrices are
// at most maxMessage bytes each by construction; a fleet workload has
// a handful of live patterns, so a small table covers the warm path
// while bounding worst-case memory.
const defaultMatrixCacheEntries = 64

func newMatrixCache(max int) *matrixCache {
	return &matrixCache{max: max, order: list.New(), entries: make(map[uint64]*list.Element)}
}

func (c *matrixCache) lookup(fp uint64) (*comm.Matrix, bool) {
	c.mu.Lock()
	el, ok := c.entries[fp]
	if ok {
		c.order.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.fpMisses.Add(1)
		return nil, false
	}
	c.fpHits.Add(1)
	return el.Value.(*matrixCacheEntry).m, true
}

func (c *matrixCache) remember(fp uint64, m *comm.Matrix) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[fp]; ok {
		el.Value.(*matrixCacheEntry).m = m
		c.order.MoveToFront(el)
		return
	}
	c.entries[fp] = c.order.PushFront(&matrixCacheEntry{fp: fp, m: m})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*matrixCacheEntry).fp)
	}
}

func (c *matrixCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// zigzag maps a signed int to a varint-friendly unsigned one (small
// magnitudes of either sign stay small; -1, the unbound PU marker,
// becomes 1).
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// putIntSliceV4 is putIntSlice in the schema v4 varint layout: PU
// indices are small, so one byte each instead of eight. An
// assignment's three slices dominate a warm response; this is what
// makes a v4 response a few hundred bytes instead of ~4 KiB. Nil and
// empty stay distinguished the same way (count holds 0 or len+1).
func putIntSliceV4(dst []byte, s []int) []byte {
	if s == nil {
		return putUvarint(dst, 0)
	}
	dst = putUvarint(dst, uint64(len(s)+1))
	for _, v := range s {
		dst = putUvarint(dst, zigzag(int64(v)))
	}
	return dst
}

func getIntSliceV4(src []byte) ([]int, []byte, error) {
	n, rest, err := getUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, rest, nil
	}
	count := int(n - 1)
	// Each value costs at least one byte on the wire.
	if count < 0 || count > len(rest) {
		return nil, nil, fmt.Errorf("orwlnet: truncated varint int slice (%d entries)", count)
	}
	out := make([]int, count)
	for i := range out {
		var u uint64
		if u, rest, err = getUvarint(rest); err != nil {
			return nil, nil, err
		}
		out[i] = int(unzigzag(u))
	}
	return out, rest, nil
}

// putAssignmentV4 / getAssignmentV4 are the schema v4 assignment
// layout: identical structure to the v1-v3 one, with the three PU
// slices varint-packed.
func putAssignmentV4(dst []byte, a *placement.Assignment) []byte {
	if a == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = putString(dst, a.Strategy)
	var flags byte
	if a.Unbound {
		flags |= asgnUnbound
	}
	if a.Oversubscribed {
		flags |= asgnOversubscribed
	}
	dst = append(dst, flags, byte(a.Mode))
	dst = putIntSliceV4(dst, a.ComputePU)
	dst = putIntSliceV4(dst, a.ControlPU)
	return putIntSliceV4(dst, a.CoreOf)
}

func getAssignmentV4(src []byte) (*placement.Assignment, []byte, error) {
	present, rest, err := getBool(src)
	if err != nil || !present {
		return nil, rest, err
	}
	a := &placement.Assignment{}
	if a.Strategy, rest, err = getString(rest); err != nil {
		return nil, nil, err
	}
	if len(rest) < 2 {
		return nil, nil, fmt.Errorf("orwlnet: truncated assignment")
	}
	flags := rest[0]
	a.Unbound = flags&asgnUnbound != 0
	a.Oversubscribed = flags&asgnOversubscribed != 0
	a.Mode = treematch.ControlMode(rest[1])
	rest = rest[2:]
	if a.ComputePU, rest, err = getIntSliceV4(rest); err != nil {
		return nil, nil, err
	}
	if a.ControlPU, rest, err = getIntSliceV4(rest); err != nil {
		return nil, nil, err
	}
	if a.CoreOf, rest, err = getIntSliceV4(rest); err != nil {
		return nil, nil, err
	}
	return a, rest, nil
}

// NetStats codec (schema v4 stats payload tail).

func putNetStats(dst []byte, st placement.NetStats) []byte {
	dst = putUint64(dst, st.InFlight)
	dst = putUint64(dst, st.PeakInFlight)
	dst = putUint64(dst, st.BytesIn)
	dst = putUint64(dst, st.BytesOut)
	dst = putUint64(dst, st.SparseMatrices)
	dst = putUint64(dst, st.FingerprintHits)
	dst = putUint64(dst, st.FingerprintMisses)
	return putUint64(dst, uint64(int64(st.MatrixCacheEntries)))
}

func getNetStats(src []byte) (placement.NetStats, []byte, error) {
	var st placement.NetStats
	var err error
	if st.InFlight, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.PeakInFlight, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.BytesIn, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.BytesOut, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.SparseMatrices, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.FingerprintHits, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.FingerprintMisses, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	var u uint64
	if u, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	st.MatrixCacheEntries = int(int64(u))
	return st, src, nil
}
