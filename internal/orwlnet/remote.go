package orwlnet

import (
	"context"
	"fmt"

	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// RemoteService is the client-side stub of a placement service served
// by an orwlnet server: it implements placement.Service over the wire
// protocol, so the affinity module (and any other consumer of the
// Service interface) is oblivious to whether the engine runs in
// process or in a remote daemon.
type RemoteService struct {
	c *Client
}

var _ placement.Service = (*RemoteService)(nil)

// PlacementService returns the placement stub of this connection. It
// errors when the negotiated protocol version predates the placement
// RPCs, so callers fail at acquisition instead of per call.
func (c *Client) PlacementService() (*RemoteService, error) {
	if c.version < protoPlacement {
		return nil, fmt.Errorf("orwlnet: server speaks protocol v%d, placement needs v%d", c.version, protoPlacement)
	}
	return &RemoteService{c: c}, nil
}

// Place implements placement.Service: the request is serialised,
// computed by the remote engine, and the response decoded — including
// the remote cache/latency diagnostics.
func (s *RemoteService) Place(ctx context.Context, req *placement.PlaceRequest) (*placement.PlaceResponse, error) {
	if req == nil {
		return nil, fmt.Errorf("orwlnet: nil placement request")
	}
	// The request payload (strategy + options + full matrix) is encoded
	// into a pooled buffer: callCtx does not retain it past the write,
	// so it recycles as soon as the call returns.
	buf := encodePlaceRequest(getPayloadBuf(), req)
	payload, err := s.c.callCtx(ctx, opPlaceCompute, buf)
	putPayloadBuf(buf)
	if err != nil {
		return nil, err
	}
	return decodePlaceResponse(payload)
}

// Topology implements placement.Service: the served machine is
// transferred in its canonical JSON encoding, so the client-side tree
// hashes (placement.Signature) identically to the server's.
func (s *RemoteService) Topology(ctx context.Context) (*topology.Topology, error) {
	payload, err := s.c.callCtx(ctx, opTopology, nil)
	if err != nil {
		return nil, err
	}
	return topology.FromJSON(payload)
}

// Stats implements placement.Service.
func (s *RemoteService) Stats(ctx context.Context) (placement.ServiceStats, error) {
	payload, err := s.c.callCtx(ctx, opPlaceStats, nil)
	if err != nil {
		return placement.ServiceStats{}, err
	}
	return decodeServiceStats(payload)
}

// Close closes the underlying connection.
func (s *RemoteService) Close() error { return s.c.Close() }
