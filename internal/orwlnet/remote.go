package orwlnet

import (
	"context"
	"fmt"

	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// RemoteService is the client-side stub of a placement service served
// by an orwlnet server: it implements placement.Service over the wire
// protocol, so the affinity module (and any other consumer of the
// Service interface) is oblivious to whether the engine runs in
// process or in a remote daemon.
type RemoteService struct {
	c *Client
}

var _ placement.Service = (*RemoteService)(nil)

// PlacementService returns the placement stub of this connection. It
// errors when the negotiated protocol version predates the placement
// RPCs, so callers fail at acquisition instead of per call.
func (c *Client) PlacementService() (*RemoteService, error) {
	if c.version < protoPlacement {
		return nil, fmt.Errorf("orwlnet: server speaks protocol v%d, placement needs v%d", c.version, protoPlacement)
	}
	return &RemoteService{c: c}, nil
}

// Place implements placement.Service: the request is serialised,
// computed by the remote engine, and the response decoded — including
// the remote cache/latency diagnostics.
func (s *RemoteService) Place(ctx context.Context, req *placement.PlaceRequest) (*placement.PlaceResponse, error) {
	if req == nil {
		return nil, fmt.Errorf("orwlnet: nil placement request")
	}
	if err := s.checkSchema(req.Version); err != nil {
		return nil, err
	}
	// The request payload (strategy + options + full matrix) is encoded
	// into a pooled buffer: callCtx does not retain it past the write,
	// so it recycles as soon as the call returns. On encode error the
	// pristine buffer goes back to the pool (the failed encoder's
	// partial output is discarded).
	buf := getPayloadBuf()
	enc, err := encodePlaceRequest(buf, req)
	if err != nil {
		putPayloadBuf(buf)
		return nil, err
	}
	payload, err := s.c.callCtx(ctx, opPlaceCompute, enc)
	putPayloadBuf(enc)
	if err != nil {
		return nil, err
	}
	return decodePlaceResponse(payload)
}

// PlaceBatch implements placement.Service: the whole request slice
// crosses the wire in one opPlaceBatch round trip and fans out across
// the daemon's fleet engines, so a cross-machine comparison pays one
// RPC instead of one per machine.
func (s *RemoteService) PlaceBatch(ctx context.Context, reqs []*placement.PlaceRequest) ([]*placement.PlaceResponse, error) {
	if s.c.version < protoBatch {
		return nil, fmt.Errorf("orwlnet: server speaks protocol v%d, batch placement needs v%d", s.c.version, protoBatch)
	}
	buf := getPayloadBuf()
	enc, err := encodePlaceBatchRequest(buf, reqs)
	if err != nil {
		putPayloadBuf(buf)
		return nil, err
	}
	payload, err := s.c.callCtx(ctx, opPlaceBatch, enc)
	putPayloadBuf(enc)
	if err != nil {
		return nil, err
	}
	resps, err := decodePlaceBatchResponse(payload)
	if err != nil {
		return nil, err
	}
	if len(resps) != len(reqs) {
		return nil, fmt.Errorf("orwlnet: batch answered %d slots for %d requests", len(resps), len(reqs))
	}
	return resps, nil
}

// checkSchema fails a call whose request schema the connected server
// cannot decode — loudly and client-side, instead of as an opaque
// server decode error. A request pinned to Version 1 still reaches a
// pre-fleet server.
func (s *RemoteService) checkSchema(v int) error {
	if v == 0 {
		v = placement.ServiceVersion
	}
	if v >= 2 && s.c.version < protoBatch {
		return fmt.Errorf("orwlnet: server speaks protocol v%d: schema v%d request needs protocol v%d (pin PlaceRequest.Version to 1 for a legacy server)",
			s.c.version, v, protoBatch)
	}
	return nil
}

// Topology implements placement.Service: the served machine is
// transferred in its canonical JSON encoding, so the client-side tree
// hashes (placement.Signature) identically to the server's.
func (s *RemoteService) Topology(ctx context.Context) (*topology.Topology, error) {
	payload, err := s.c.callCtx(ctx, opTopology, nil)
	if err != nil {
		return nil, err
	}
	return topology.FromJSON(payload)
}

// Stats implements placement.Service.
func (s *RemoteService) Stats(ctx context.Context) (placement.ServiceStats, error) {
	payload, err := s.c.callCtx(ctx, opPlaceStats, nil)
	if err != nil {
		return placement.ServiceStats{}, err
	}
	return decodeServiceStats(payload)
}

// Close closes the underlying connection.
func (s *RemoteService) Close() error { return s.c.Close() }
