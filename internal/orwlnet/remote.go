package orwlnet

import (
	"context"
	"fmt"

	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// RemoteService is the client-side stub of a placement service served
// by an orwlnet server: it implements placement.Service over the wire
// protocol, so the affinity module (and any other consumer of the
// Service interface) is oblivious to whether the engine runs in
// process or in a remote daemon.
type RemoteService struct {
	c *Client
}

var _ placement.Service = (*RemoteService)(nil)

// PlacementService returns the placement stub of this connection. It
// errors when the negotiated protocol version predates the placement
// RPCs, so callers fail at acquisition instead of per call.
func (c *Client) PlacementService() (*RemoteService, error) {
	if c.version < protoPlacement {
		return nil, fmt.Errorf("orwlnet: server speaks protocol v%d, placement needs v%d", c.version, protoPlacement)
	}
	return &RemoteService{c: c}, nil
}

// Place implements placement.Service: the request is serialised,
// computed by the remote engine, and the response decoded — including
// the remote cache/latency diagnostics.
func (s *RemoteService) Place(ctx context.Context, req *placement.PlaceRequest) (*placement.PlaceResponse, error) {
	if req == nil {
		return nil, fmt.Errorf("orwlnet: nil placement request")
	}
	effective, err := s.resolveSchema(req)
	if err != nil {
		return nil, err
	}
	if req.Version == 0 && effective != placement.ServiceVersion {
		// An unpinned request speaks the highest schema the connected
		// server negotiated, so a newer client downgrades transparently
		// (schema v3 only adds stats fields to v2; nothing a request
		// carries is lost).
		pinned := *req
		pinned.Version = effective
		req = &pinned
	}
	// The request payload (strategy + options + full matrix) is encoded
	// into a pooled buffer: callCtx does not retain it past the write,
	// so it recycles as soon as the call returns. On encode error the
	// pristine buffer goes back to the pool (the failed encoder's
	// partial output is discarded).
	buf := getPayloadBuf()
	enc, err := encodePlaceRequest(buf, req)
	if err != nil {
		putPayloadBuf(buf)
		return nil, err
	}
	payload, err := s.c.callCtx(ctx, opPlaceCompute, enc)
	putPayloadBuf(enc)
	if err != nil {
		return nil, err
	}
	return decodePlaceResponse(payload)
}

// PlaceBatch implements placement.Service: the whole request slice
// crosses the wire in one opPlaceBatch round trip and fans out across
// the daemon's fleet engines, so a cross-machine comparison pays one
// RPC instead of one per machine.
func (s *RemoteService) PlaceBatch(ctx context.Context, reqs []*placement.PlaceRequest) ([]*placement.PlaceResponse, error) {
	if s.c.version < protoBatch {
		return nil, fmt.Errorf("orwlnet: server speaks protocol v%d, batch placement needs v%d", s.c.version, protoBatch)
	}
	buf := getPayloadBuf()
	enc, err := encodePlaceBatchRequest(buf, reqs, schemaForProto(s.c.version))
	if err != nil {
		putPayloadBuf(buf)
		return nil, err
	}
	payload, err := s.c.callCtx(ctx, opPlaceBatch, enc)
	putPayloadBuf(enc)
	if err != nil {
		return nil, err
	}
	resps, err := decodePlaceBatchResponse(payload)
	if err != nil {
		return nil, err
	}
	if len(resps) != len(reqs) {
		return nil, fmt.Errorf("orwlnet: batch answered %d slots for %d requests", len(resps), len(reqs))
	}
	return resps, nil
}

// resolveSchema picks the schema version a request crosses the wire
// at, failing loudly and client-side — instead of as an opaque server
// decode error — when the connected server cannot serve it: an
// explicit pin above the negotiated schema, or an unpinned request
// whose features (the fleet machine selector, schema v2) predate the
// server. Unpinned requests otherwise downgrade to the negotiated
// schema, so a v3 client talks to a v2 fleet daemon transparently.
func (s *RemoteService) resolveSchema(req *placement.PlaceRequest) (int, error) {
	max := schemaForProto(s.c.version)
	if v := req.Version; v != 0 {
		if v > max {
			return 0, fmt.Errorf("orwlnet: server speaks protocol v%d: schema v%d request needs schema <= %d (pin PlaceRequest.Version lower for a legacy server)",
				s.c.version, v, max)
		}
		return v, nil
	}
	if req.Machine != "" && max < 2 {
		return 0, fmt.Errorf("orwlnet: server speaks protocol v%d: machine selector %q needs protocol v%d",
			s.c.version, req.Machine, protoBatch)
	}
	if max > placement.ServiceVersion {
		max = placement.ServiceVersion
	}
	return max, nil
}

// Topology implements placement.Service: the served machine is
// transferred in its canonical JSON encoding, so the client-side tree
// hashes (placement.Signature) identically to the server's.
func (s *RemoteService) Topology(ctx context.Context) (*topology.Topology, error) {
	payload, err := s.c.callCtx(ctx, opTopology, nil)
	if err != nil {
		return nil, err
	}
	return topology.FromJSON(payload)
}

// Stats implements placement.Service.
func (s *RemoteService) Stats(ctx context.Context) (placement.ServiceStats, error) {
	payload, err := s.c.callCtx(ctx, opPlaceStats, nil)
	if err != nil {
		return placement.ServiceStats{}, err
	}
	return decodeServiceStats(payload)
}

// Close closes the underlying connection.
func (s *RemoteService) Close() error { return s.c.Close() }
