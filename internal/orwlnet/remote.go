package orwlnet

import (
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"orwlplace/internal/comm"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// RemoteService is the client-side stub of a placement service served
// by an orwlnet server: it implements placement.Service over the wire
// protocol, so the affinity module (and any other consumer of the
// Service interface) is oblivious to whether the engine runs in
// process or in a remote daemon.
//
// A stub may hold a pool of connections to the same daemon
// (DialPlacementService with WithPoolSize): placement calls spread
// round-robin across the pool, and on protoPipeline connections many
// calls pipeline on each connection besides. Topology/Stats ride the
// primary connection.
type RemoteService struct {
	// poolMu guards c and pool: revive swaps dead connections for
	// freshly dialed ones in place, so calls racing a revival see
	// either the dead or the new connection, never a torn slice.
	poolMu sync.RWMutex
	c      *Client
	pool   []*Client
	next   atomic.Uint64

	// known tracks matrix fingerprints this stub believes the daemon's
	// seen-matrix table holds — the basis for sending fingerprint-only
	// requests. Shared across the pool, because the server table is.
	known *fpSet

	// addr and dialOpts remember how the stub was dialed (set by
	// DialPlacementService), so a remap subscription can redial and
	// resubscribe — and revive can replace dead pooled connections —
	// when a connection dies. Empty for stubs built from a raw
	// connection, which cannot reconnect.
	addr     string
	dialOpts []DialOption

	// retry is the resilience policy (WithRetryPolicy); nil fails calls
	// on the first error, the historical behaviour.
	retry *RetryPolicy
}

var _ placement.Service = (*RemoteService)(nil)

// PlacementService returns the placement stub of this connection. It
// errors when the negotiated protocol version predates the placement
// RPCs, so callers fail at acquisition instead of per call.
func (c *Client) PlacementService() (*RemoteService, error) {
	if c.version < protoPlacement {
		return nil, fmt.Errorf("orwlnet: server speaks protocol v%d, placement needs v%d", c.version, protoPlacement)
	}
	return &RemoteService{c: c, pool: []*Client{c}, known: newFPSet(knownFingerprints)}, nil
}

// DialPlacementService dials a placement daemon with the given
// options — notably WithPoolSize(n), which opens n connections and
// spreads placement calls across them. Closing the returned stub
// closes every pooled connection.
func DialPlacementService(ctx context.Context, addr string, opts ...DialOption) (*RemoteService, error) {
	cfg := applyDialOptions(opts)
	pool := make([]*Client, 0, cfg.poolSize)
	for i := 0; i < cfg.poolSize; i++ {
		c, err := DialContext(ctx, addr, opts...)
		if err != nil {
			for _, p := range pool {
				p.Close()
			}
			return nil, err
		}
		if c.version < protoPlacement {
			v := c.version
			c.Close()
			for _, p := range pool {
				p.Close()
			}
			return nil, fmt.Errorf("orwlnet: server speaks protocol v%d, placement needs v%d", v, protoPlacement)
		}
		pool = append(pool, c)
	}
	return &RemoteService{c: pool[0], pool: pool, known: newFPSet(knownFingerprints), addr: addr, dialOpts: opts, retry: cfg.retry}, nil
}

// WirePoolStats sums the wire byte counters across the stub's
// connection pool.
func (s *RemoteService) WirePoolStats() (bytesIn, bytesOut uint64) {
	s.poolMu.RLock()
	defer s.poolMu.RUnlock()
	for _, c := range s.pool {
		in, out := c.WireStats()
		bytesIn += in
		bytesOut += out
	}
	return bytesIn, bytesOut
}

// pick selects the connection for the next placement call, skipping
// dead pool slots when a live one exists (a retrying caller otherwise
// burns attempts on connections already known lost).
func (s *RemoteService) pick() *Client {
	s.poolMu.RLock()
	defer s.poolMu.RUnlock()
	if len(s.pool) == 1 {
		return s.pool[0]
	}
	start := s.next.Add(1)
	for i := 0; i < len(s.pool); i++ {
		c := s.pool[(start+uint64(i))%uint64(len(s.pool))]
		if !c.Dead() {
			return c
		}
	}
	return s.pool[start%uint64(len(s.pool))]
}

// primary returns the connection Topology/Stats and the fleet ops
// ride.
func (s *RemoteService) primary() *Client {
	s.poolMu.RLock()
	defer s.poolMu.RUnlock()
	return s.c
}

// revive redials every dead pooled connection. Best-effort: a slot
// whose redial fails stays dead (the next retry attempt tries again),
// and stubs without a remembered address (raw-connection builds)
// cannot revive at all.
func (s *RemoteService) revive(ctx context.Context) {
	if s.addr == "" {
		return
	}
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	for i, c := range s.pool {
		if !c.Dead() {
			continue
		}
		nc, err := DialContext(ctx, s.addr, s.dialOpts...)
		if err != nil {
			continue
		}
		if nc.version < protoPlacement {
			nc.Close()
			continue
		}
		c.Close()
		s.pool[i] = nc
		if s.c == c {
			s.c = nc
		}
	}
}

// knownFingerprints bounds the client-side believed-known set. Kept
// larger than the server's table so the client rarely believes more
// than the server holds; a stale belief only costs one errUnknownMatrix
// round trip before the body is resent.
const knownFingerprints = 256

// fpSet is a small mutex-guarded LRU set of matrix fingerprints.
type fpSet struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently confirmed; values are uint64
	m     map[uint64]*list.Element
}

func newFPSet(max int) *fpSet {
	return &fpSet{max: max, order: list.New(), m: make(map[uint64]*list.Element)}
}

func (s *fpSet) has(fp uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[fp]
	if ok {
		s.order.MoveToFront(el)
	}
	return ok
}

func (s *fpSet) remember(fp uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[fp]; ok {
		s.order.MoveToFront(el)
		return
	}
	s.m[fp] = s.order.PushFront(fp)
	for s.order.Len() > s.max {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.m, oldest.Value.(uint64))
	}
}

func (s *fpSet) forget(fp uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[fp]; ok {
		s.order.Remove(el)
		delete(s.m, fp)
	}
}

// Place implements placement.Service: the request is serialised,
// computed by the remote engine, and the response decoded — including
// the remote cache/latency diagnostics.
//
// On schema v4 connections a matrix the daemon has already seen is
// sent as its fingerprint reference; an errUnknownMatrix answer
// (evicted, daemon restarted) triggers one transparent retry with the
// full body.
func (s *RemoteService) Place(ctx context.Context, req *placement.PlaceRequest) (*placement.PlaceResponse, error) {
	if req == nil {
		return nil, fmt.Errorf("orwlnet: nil placement request")
	}
	var resp *placement.PlaceResponse
	err := s.retryCall(ctx, func(ctx context.Context) error {
		var err error
		resp, err = s.placeOnce(ctx, req)
		return err
	})
	return resp, err
}

// placeOnce is one Place attempt on one picked connection (including
// the transparent errUnknownMatrix body resend, which is a protocol
// recovery, not a failure retry).
func (s *RemoteService) placeOnce(ctx context.Context, req *placement.PlaceRequest) (*placement.PlaceResponse, error) {
	c := s.pick()
	effective, err := s.resolveSchema(c, req)
	if err != nil {
		return nil, err
	}
	if req.Version == 0 && effective != placement.ServiceVersion {
		// An unpinned request speaks the highest schema the connected
		// server negotiated, so a newer client downgrades transparently
		// (schema v3 only adds stats fields to v2; nothing a request
		// carries is lost).
		pinned := *req
		pinned.Version = effective
		req = &pinned
	}
	var fp uint64
	fpOnly := false
	if effective >= 4 && req.Matrix != nil {
		// Take the caller's precomputed identity when offered; a steady
		// workload (one matrix, many calls) then never re-hashes on the
		// client side either.
		if fp = req.MatrixFP; fp == 0 {
			fp = comm.Fingerprint(req.Matrix)
		}
		fpOnly = s.known.has(fp)
		if req.MatrixFP == 0 {
			// Forward the hash we just paid for: the encoder (fingerprint
			// reference) and, on the far side, the daemon's engine both
			// reuse it instead of re-hashing.
			hinted := *req
			hinted.MatrixFP = fp
			req = &hinted
		}
	}
	payload, err := s.placeCall(ctx, c, opPlaceCompute, func(dst []byte) ([]byte, error) {
		return encodePlaceRequestOpt(dst, req, fpOnly)
	})
	if err != nil && fpOnly && strings.Contains(err.Error(), errUnknownMatrix) {
		// The daemon no longer holds the body this reference named:
		// drop the belief and resend the request with the body inline.
		s.known.forget(fp)
		fpOnly = false
		payload, err = s.placeCall(ctx, c, opPlaceCompute, func(dst []byte) ([]byte, error) {
			return encodePlaceRequestOpt(dst, req, false)
		})
	}
	if err != nil {
		return nil, err
	}
	if effective >= 4 && req.Matrix != nil {
		// The daemon decoded the body (or confirmed the reference): the
		// next request for this matrix can go fingerprint-only.
		s.known.remember(fp)
	}
	return decodePlaceResponse(payload)
}

// reqFP returns the request matrix's fingerprint, trusting the
// caller's precomputed MatrixFP hint when set.
func reqFP(req *placement.PlaceRequest) uint64 {
	if req.MatrixFP != 0 {
		return req.MatrixFP
	}
	return comm.Fingerprint(req.Matrix)
}

// placeCall encodes a placement payload into a pooled buffer (whose
// ownership passes to the connection's writer goroutine) and performs
// the RPC. On pre-pipeline connections the call is lock-stepped — one
// placement RPC in flight per connection, the discipline every client
// before protoPipeline observed — while location ops stay multiplexed
// (serialising an Await against the Release that unblocks it would
// deadlock).
func (s *RemoteService) placeCall(ctx context.Context, c *Client, op byte, enc func([]byte) ([]byte, error)) ([]byte, error) {
	buf := getPayloadBuf()
	payload, err := enc(buf)
	if err != nil {
		putPayloadBuf(buf)
		return nil, err
	}
	if c.version < protoPipeline {
		c.turnMu.Lock()
		defer c.turnMu.Unlock()
	}
	return c.callPooled(ctx, op, payload, true)
}

// PlaceBatch implements placement.Service: the whole request slice
// crosses the wire in one opPlaceBatch round trip and fans out across
// the daemon's fleet engines, so a cross-machine comparison pays one
// RPC instead of one per machine. On schema v4 connections, slots
// whose matrices the daemon has seen carry fingerprint references; an
// errUnknownMatrix answer retries the batch with every body inline.
func (s *RemoteService) PlaceBatch(ctx context.Context, reqs []*placement.PlaceRequest) ([]*placement.PlaceResponse, error) {
	var resps []*placement.PlaceResponse
	err := s.retryCall(ctx, func(ctx context.Context) error {
		var err error
		resps, err = s.placeBatchOnce(ctx, reqs)
		return err
	})
	return resps, err
}

func (s *RemoteService) placeBatchOnce(ctx context.Context, reqs []*placement.PlaceRequest) ([]*placement.PlaceResponse, error) {
	c := s.pick()
	if c.version < protoBatch {
		return nil, fmt.Errorf("orwlnet: server speaks protocol v%d, batch placement needs v%d", c.version, protoBatch)
	}
	schema := schemaForProto(c.version)
	// slotSchema is the schema one slot encodes at: its pin, or the
	// negotiated batch schema when unpinned. Only v4-encoded slots may
	// carry (or install) fingerprint references.
	slotSchema := func(req *placement.PlaceRequest) int {
		if req != nil && req.Version != 0 {
			return req.Version
		}
		return schema
	}
	var fpOnlyFn func(i int, req *placement.PlaceRequest) bool
	if schema >= 4 {
		fpOnlyFn = func(i int, req *placement.PlaceRequest) bool {
			return req.Matrix != nil && slotSchema(req) >= 4 && s.known.has(reqFP(req))
		}
	}
	payload, err := s.placeCall(ctx, c, opPlaceBatch, func(dst []byte) ([]byte, error) {
		return encodePlaceBatchRequestOpt(dst, reqs, schema, fpOnlyFn)
	})
	if err != nil && fpOnlyFn != nil && strings.Contains(err.Error(), errUnknownMatrix) {
		// At least one reference missed; the daemon rejected the whole
		// frame. Forget every belief the batch relied on and resend with
		// bodies inline.
		for _, req := range reqs {
			if req != nil && req.Matrix != nil {
				s.known.forget(reqFP(req))
			}
		}
		payload, err = s.placeCall(ctx, c, opPlaceBatch, func(dst []byte) ([]byte, error) {
			return encodePlaceBatchRequestOpt(dst, reqs, schema, nil)
		})
	}
	if err != nil {
		return nil, err
	}
	if schema >= 4 {
		for _, req := range reqs {
			if req != nil && req.Matrix != nil && slotSchema(req) >= 4 {
				s.known.remember(reqFP(req))
			}
		}
	}
	resps, err := decodePlaceBatchResponse(payload)
	if err != nil {
		return nil, err
	}
	if len(resps) != len(reqs) {
		return nil, fmt.Errorf("orwlnet: batch answered %d slots for %d requests", len(resps), len(reqs))
	}
	return resps, nil
}

// resolveSchema picks the schema version a request crosses the wire
// at, failing loudly and client-side — instead of as an opaque server
// decode error — when the connected server cannot serve it: an
// explicit pin above the negotiated schema, or an unpinned request
// whose features (the fleet machine selector, schema v2) predate the
// server. Unpinned requests otherwise downgrade to the negotiated
// schema, so a v3 client talks to a v2 fleet daemon transparently.
func (s *RemoteService) resolveSchema(c *Client, req *placement.PlaceRequest) (int, error) {
	max := schemaForProto(c.version)
	if v := req.Version; v != 0 {
		if v > max {
			return 0, fmt.Errorf("orwlnet: server speaks protocol v%d: schema v%d request needs schema <= %d (pin PlaceRequest.Version lower for a legacy server)",
				c.version, v, max)
		}
		return v, nil
	}
	if req.Machine != "" && max < 2 {
		return 0, fmt.Errorf("orwlnet: server speaks protocol v%d: machine selector %q needs protocol v%d",
			c.version, req.Machine, protoBatch)
	}
	if max > placement.ServiceVersion {
		max = placement.ServiceVersion
	}
	return max, nil
}

// Topology implements placement.Service: the served machine is
// transferred in its canonical JSON encoding, so the client-side tree
// hashes (placement.Signature) identically to the server's.
func (s *RemoteService) Topology(ctx context.Context) (*topology.Topology, error) {
	var top *topology.Topology
	err := s.retryCall(ctx, func(ctx context.Context) error {
		payload, err := s.primary().callCtx(ctx, opTopology, nil)
		if err != nil {
			return err
		}
		top, err = topology.FromJSON(payload)
		return err
	})
	return top, err
}

// Stats implements placement.Service.
func (s *RemoteService) Stats(ctx context.Context) (placement.ServiceStats, error) {
	var stats placement.ServiceStats
	err := s.retryCall(ctx, func(ctx context.Context) error {
		payload, err := s.primary().callCtx(ctx, opPlaceStats, nil)
		if err != nil {
			return err
		}
		stats, err = decodeServiceStats(payload)
		return err
	})
	return stats, err
}

// Close closes every pooled connection, reporting the first error.
func (s *RemoteService) Close() error {
	s.poolMu.RLock()
	defer s.poolMu.RUnlock()
	var first error
	for _, c := range s.pool {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
