package orwlnet

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"

	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// startFleetServer runs a pure placement daemon serving two named
// machines — what `orwlnetd -place -machine tinyht -machine tinyflat`
// exports.
func startFleetServer(t *testing.T) (*placement.MultiService, string) {
	t.Helper()
	fleet := placement.NewMultiService()
	if err := fleet.AddMachine("tinyht", topology.TinyHT()); err != nil {
		t.Fatal(err)
	}
	if err := fleet.AddMachine("tinyflat", topology.TinyFlat()); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis, nil, WithPlacement(fleet))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return fleet, lis.Addr().String()
}

func TestRemoteFleetEndToEnd(t *testing.T) {
	_, addr := startFleetServer(t)
	ctx := context.Background()
	c, err := DialContext(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	remote, err := c.PlacementService()
	if err != nil {
		t.Fatal(err)
	}

	stats, err := remote.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Machines) != 2 || stats.Machines[0] != "tinyht" {
		t.Fatalf("fleet stats machines = %v", stats.Machines)
	}

	// One RPC, one slot per machine, plus a bad slot that must fail
	// positionally without voiding its siblings.
	mat := chainMatrix(4)
	resps, err := remote.PlaceBatch(ctx, []*placement.PlaceRequest{
		{Machine: "tinyht", Strategy: placement.TreeMatch, Matrix: mat},
		{Machine: "tinyflat", Strategy: placement.TreeMatch, Matrix: mat},
		{Machine: "smp99", Strategy: placement.TreeMatch, Matrix: mat},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 3 {
		t.Fatalf("batch answered %d slots", len(resps))
	}
	for i, want := range []string{"tinyht", "tinyflat"} {
		if resps[i].Err != "" || resps[i].Assignment == nil || resps[i].Machine != want {
			t.Errorf("slot %d = %+v, want assignment from %q", i, resps[i], want)
		}
	}
	if resps[2].Err == "" || !strings.Contains(resps[2].Err, "unknown machine") {
		t.Errorf("bad slot = %+v, want an unknown-machine error", resps[2])
	}

	// Single Place with a machine selector routes too.
	resp, err := remote.Place(ctx, &placement.PlaceRequest{Machine: "tinyflat", Strategy: placement.TreeMatch, Matrix: mat})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Machine != "tinyflat" || !resp.CacheHit {
		t.Errorf("routed place = %+v, want a tinyflat cache hit from the batch's compute", resp)
	}
}

// TestRemoteFleetConcurrentBatches drives mixed-machine, mixed
// hit/miss batches over one connection from many goroutines — the
// -race shape of the full stack (client mux, server fan-out, engine
// singleflight).
func TestRemoteFleetConcurrentBatches(t *testing.T) {
	fleet, addr := startFleetServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	remote, err := c.PlacementService()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	shared := chainMatrix(4)

	const workers = 6
	const batches = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				resps, err := remote.PlaceBatch(ctx, []*placement.PlaceRequest{
					{Machine: "tinyht", Strategy: placement.TreeMatch, Matrix: shared},
					{Machine: "tinyflat", Strategy: placement.TreeMatch, Matrix: shared},
					{Machine: "tinyht", Strategy: placement.TreeMatch, Matrix: chainMatrix(3 + (w+i)%4)},
				})
				if err != nil {
					errs <- err
					return
				}
				for s, resp := range resps {
					if resp.Err != "" || resp.Assignment == nil {
						t.Errorf("worker %d batch %d slot %d: %+v", w, i, s, resp)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st, err := fleet.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(workers * batches * 3)
	if st.Places != total {
		t.Errorf("places = %d, want %d", st.Places, total)
	}
	if st.Cache.Hits+st.Cache.Misses != total {
		t.Errorf("hits(%d)+misses(%d) != %d", st.Cache.Hits, st.Cache.Misses, total)
	}
}

// TestFleetV1RequestCompat talks raw protocol: a v1-encoded request —
// what a pre-fleet client sends — must decode on a fleet server, route
// to the default machine, and come back v1-encoded so the old client
// can decode the response.
func TestFleetV1RequestCompat(t *testing.T) {
	_, addr := startFleetServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	send := func(id uint64, op byte, payload []byte) message {
		t.Helper()
		if err := writeMessage(conn, message{callID: id, op: op, payload: payload}); err != nil {
			t.Fatal(err)
		}
		resp, err := readMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// An old client negotiates protocol v1...
	if resp := send(1, opHello, []byte{protoLegacy, protoPlacement}); resp.op != statusOK || resp.payload[0] != protoPlacement {
		t.Fatalf("v1 handshake failed: %v %s", resp.op, resp.payload)
	}
	// ...and sends a v1-shaped request (no machine field).
	resp := send(2, opPlaceCompute, mustEncode(encodePlaceRequest(nil, &placement.PlaceRequest{
		Version: 1, Strategy: placement.TreeMatch, Matrix: chainMatrix(4),
	})))
	if resp.op != statusError {
		decoded, err := decodePlaceResponse(resp.payload)
		if err != nil {
			t.Fatalf("v1 client cannot decode the fleet server's response: %v", err)
		}
		if decoded.Version != 1 {
			t.Errorf("fleet server answered a v1 request with schema v%d", decoded.Version)
		}
		if decoded.Assignment == nil || decoded.Assignment.Entities() != 4 {
			t.Errorf("v1 request not placed: %+v", decoded)
		}
	} else {
		t.Fatalf("fleet server rejected a v1 request: %s", resp.payload)
	}

	// The stats payload is also downgraded to what the connection's
	// protocol implies.
	sresp := send(3, opPlaceStats, nil)
	if sresp.op != statusOK {
		t.Fatalf("stats rejected: %s", sresp.payload)
	}
	if got := int(sresp.payload[0]); got != 1 {
		t.Errorf("stats for a v1 connection encoded at schema %d", got)
	}

	// opPlaceBatch is a protoBatch-level op: a v1 connection sending it
	// anyway is refused instead of answered with an undecodable v2
	// payload.
	bresp := send(4, opPlaceBatch, mustEncode(encodePlaceBatchRequest(nil, []*placement.PlaceRequest{
		{Strategy: placement.TreeMatch, Entities: 2},
	}, 0)))
	if bresp.op != statusError || !strings.Contains(string(bresp.payload), "protocol v1") {
		t.Errorf("v1 connection's batch answered %v %q, want a protocol refusal", bresp.op, bresp.payload)
	}
}

// TestBatchAgainstOldServer fakes a pre-batch (protocol v1) server:
// the new client's PlaceBatch and default-schema Place must fail
// loudly client-side instead of sending bytes the server would
// misread.
func TestBatchAgainstOldServer(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			msg, err := readMessage(conn)
			if err != nil {
				return
			}
			if msg.op == opHello {
				// A v1 build negotiates at most protoPlacement.
				writeMessage(conn, message{callID: msg.callID, op: statusOK, payload: []byte{protoPlacement}})
				continue
			}
			writeMessage(conn, message{callID: msg.callID, op: statusError, payload: []byte("unexpected op")})
		}
	}()

	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() != protoPlacement {
		t.Fatalf("negotiated %d, want the old server's %d", c.Version(), protoPlacement)
	}
	remote, err := c.PlacementService()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := remote.PlaceBatch(ctx, []*placement.PlaceRequest{{Strategy: placement.TreeMatch, Entities: 2}}); err == nil ||
		!strings.Contains(err.Error(), "batch placement needs") {
		t.Errorf("PlaceBatch against an old server did not fail loudly: %v", err)
	}
	if _, err := remote.Place(ctx, &placement.PlaceRequest{Machine: "tinyht", Strategy: placement.TreeMatch, Entities: 2}); err == nil ||
		!strings.Contains(err.Error(), "protocol") {
		t.Errorf("v2 Place against an old server did not fail loudly: %v", err)
	}
}
