package orwlnet

import (
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/ctrlplane"
	"orwlplace/internal/placement"
)

// Fuzz targets for the schema v5 fleet frames — the two new decoders
// that parse wire bytes a hostile peer controls. Same contract as the
// v4 targets: rejected is fine, panicking is not, and anything
// accepted must survive a re-encode round trip.

func FuzzObservedReportDecode(f *testing.F) {
	dense := comm.NewMatrix(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			dense.Set(i, j, float64(i*4+j+1))
		}
	}
	if seed, err := encodeObservedReport(nil, schemaFleet, 7, 3, dense); err == nil {
		f.Add(seed)
	}
	sparse := comm.Ring(16, 1<<20, true)
	if seed, err := encodeObservedReport(nil, schemaFleet, 1, 1, sparse); err == nil {
		f.Add(seed)
		f.Add(seed[:len(seed)/2]) // truncated mid-matrix
	}
	f.Add([]byte{})
	f.Add(putUvarint(putUvarint([]byte{5}, 1<<40), 1<<40))
	f.Fuzz(func(t *testing.T, data []byte) {
		leaseID, seq, delta, err := decodeObservedReport(data)
		if err != nil {
			return
		}
		if delta == nil {
			t.Fatal("accepted report without a matrix")
		}
		re, err := encodeObservedReport(nil, schemaFleet, leaseID, seq, delta)
		if err != nil {
			t.Fatalf("accepted report does not re-encode: %v", err)
		}
		l2, s2, d2, err := decodeObservedReport(re)
		if err != nil {
			t.Fatalf("re-encoded report rejected: %v", err)
		}
		if l2 != leaseID || s2 != seq {
			t.Fatalf("lease/seq changed across round trip: (%d,%d) -> (%d,%d)", leaseID, seq, l2, s2)
		}
		if comm.Fingerprint(d2) != comm.Fingerprint(delta) {
			t.Fatal("matrix fingerprint changed across round trip")
		}
	})
}

func FuzzRemapFrameDecode(f *testing.F) {
	if ack, err := encodeRemapFrame(nil, nil); err == nil {
		f.Add(ack) // the "nothing adopted yet" ack
	}
	full := &ctrlplane.Remap{
		Machine: "fig2",
		Epoch:   3,
		Drift:   0.42,
		Assignment: &placement.Assignment{
			Strategy:  placement.TreeMatch,
			ComputePU: []int{0, 2, 4, 6},
			ControlPU: []int{-1, -1, -1, -1},
		},
	}
	if seed, err := encodeRemapFrame(nil, full); err == nil {
		f.Add(seed)
		f.Add(seed[:len(seed)-2]) // truncated mid-assignment
	}
	f.Add([]byte{})
	f.Add([]byte{5, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := decodeRemapFrame(data)
		if err != nil {
			return
		}
		if ev.Epoch > 0 && ev.Assignment == nil {
			t.Fatal("accepted a non-zero epoch without an assignment")
		}
		re, err := encodeRemapFrame(nil, ev)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		ev2, err := decodeRemapFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if ev2.Machine != ev.Machine || ev2.Epoch != ev.Epoch || ev2.Drift != ev.Drift {
			t.Fatalf("header changed across round trip: %+v -> %+v", ev, ev2)
		}
		if (ev.Assignment == nil) != (ev2.Assignment == nil) {
			t.Fatal("assignment presence changed across round trip")
		}
		if ev.Assignment != nil {
			if len(ev2.Assignment.ComputePU) != len(ev.Assignment.ComputePU) {
				t.Fatal("assignment length changed across round trip")
			}
			for i := range ev.Assignment.ComputePU {
				if ev2.Assignment.ComputePU[i] != ev.Assignment.ComputePU[i] {
					t.Fatalf("ComputePU[%d] changed across round trip", i)
				}
			}
		}
	})
}
