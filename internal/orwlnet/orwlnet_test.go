package orwlnet

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"orwlplace/internal/orwl"
)

// startServer exports the given locations on a loopback listener and
// returns the address and a cleanup function.
func startServer(t *testing.T, locs map[string]*orwl.Location) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis, locs)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := srv.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { srv.Close() })
	return lis.Addr().String()
}

func locations(t *testing.T, names ...string) map[string]*orwl.Location {
	t.Helper()
	p := orwl.MustProgram(1, names...)
	out := make(map[string]*orwl.Location, len(names))
	for _, n := range names {
		out[n] = p.Location(orwl.Loc(0, n))
	}
	return out
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(nil, map[string]*orwl.Location{}); err == nil {
		t.Error("accepted nil listener")
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	if _, err := NewServer(lis, nil); err == nil {
		t.Error("accepted empty location map")
	}
}

func TestScaleSizeRoundTrip(t *testing.T) {
	addr := startServer(t, locations(t, "data"))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Scale("data", 128); err != nil {
		t.Fatal(err)
	}
	size, err := c.Size("data")
	if err != nil {
		t.Fatal(err)
	}
	if size != 128 {
		t.Errorf("size = %d", size)
	}
	if err := c.Scale("data", -1); err == nil {
		t.Error("accepted negative size")
	}
	if err := c.Scale("nope", 8); err == nil {
		t.Error("accepted unknown location")
	}
	if _, err := c.Size("nope"); err == nil {
		t.Error("size of unknown location accepted")
	}
}

func TestRemoteWriteReadExclusion(t *testing.T) {
	locs := locations(t, "data")
	locs["data"].Scale(8)
	addr := startServer(t, locs)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	w, err := c.Insert("data", orwl.Write)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Insert("data", orwl.Read)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write([]byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := w.Release(); err != nil {
		t.Fatal(err)
	}
	if err := r.Acquire(); err != nil {
		t.Fatal(err)
	}
	data, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data[:4], []byte{1, 2, 3, 4}) {
		t.Errorf("read %v", data)
	}
	if err := r.Write([]byte{9}); err == nil {
		t.Error("write on read handle accepted")
	}
	if err := r.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteHandleStateErrors(t *testing.T) {
	locs := locations(t, "data")
	locs["data"].Scale(4)
	addr := startServer(t, locs)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	h, err := c.Insert("data", orwl.Write)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Read(); err == nil {
		t.Error("read before acquire accepted")
	}
	if err := h.Release(); err == nil {
		t.Error("release before acquire accepted")
	}
	if err := h.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := h.Acquire(); err == nil {
		t.Error("double acquire accepted")
	}
	if err := h.Write(make([]byte, 100)); err == nil {
		t.Error("oversized write accepted")
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	if err := h.Acquire(); err == nil {
		t.Error("acquire on spent handle accepted")
	}
	if _, err := c.Insert("data", orwl.Mode(9)); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestRemotePipelineAcrossClients(t *testing.T) {
	// Listing 1 across "processes": each stage is a separate client
	// connection; data flows through a chain of remote locations using
	// iterative handles.
	const stages = 4
	const rounds = 8
	names := make([]string, stages)
	for i := range names {
		names[i] = fmt.Sprintf("slot%d", i)
	}
	locs := locations(t, names...)
	for _, l := range locs {
		l.Scale(8)
	}
	addr := startServer(t, locs)

	var wg sync.WaitGroup
	errs := make([]error, stages)
	results := make([]byte, rounds)
	// Remote inserts are ordered by arrival, so the writer-first FIFO
	// order must be established explicitly: stage s announces its write
	// insertion before stage s+1 queues its read.
	writerQueued := make([]chan struct{}, stages)
	for i := range writerQueued {
		writerQueued[i] = make(chan struct{})
	}
	for s := 0; s < stages; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = func() error {
				c, err := Dial(addr)
				if err != nil {
					return err
				}
				defer c.Close()
				// Writer-first on own slot, reader on the previous.
				write, err := c.Insert(names[s], orwl.Write)
				if err != nil {
					return err
				}
				close(writerQueued[s])
				var read *RemoteHandle
				if s > 0 {
					<-writerQueued[s-1]
					read, err = c.Insert(names[s-1], orwl.Read)
					if err != nil {
						return err
					}
				}
				for r := 0; r < rounds; r++ {
					var carry byte
					if s > 0 {
						if err := read.Section(true, func(h *RemoteHandle) error {
							data, err := h.Read()
							if err != nil {
								return err
							}
							carry = data[0]
							return nil
						}); err != nil {
							return err
						}
					} else {
						carry = byte(r)
					}
					if err := write.Section(true, func(h *RemoteHandle) error {
						return h.Write([]byte{carry + 1})
					}); err != nil {
						return err
					}
					if s == stages-1 {
						results[r] = carry + 1
					}
				}
				return nil
			}()
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Fatalf("stage %d: %v", s, err)
		}
	}
	// Stage s adds 1 per hop: final value for round r is r + stages...
	// except pipelining: stage s's iteration r reads stage s-1's value
	// from ITS iteration r (alternating FIFO), so the final is r+stages.
	for r := 0; r < rounds; r++ {
		if int(results[r]) != r+stages {
			t.Errorf("round %d result = %d, want %d", r, results[r], r+stages)
		}
	}
}

func TestConcurrentClientsOnOneLocation(t *testing.T) {
	locs := locations(t, "ctr")
	locs["ctr"].Scale(1)
	addr := startServer(t, locs)

	const clients = 8
	const iters = 10
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = func() error {
				c, err := Dial(addr)
				if err != nil {
					return err
				}
				defer c.Close()
				for k := 0; k < iters; k++ {
					h, err := c.Insert("ctr", orwl.Write)
					if err != nil {
						return err
					}
					if err := h.Acquire(); err != nil {
						return err
					}
					data, err := h.Read()
					if err != nil {
						return err
					}
					if err := h.Write([]byte{data[0] + 1}); err != nil {
						return err
					}
					if err := h.Release(); err != nil {
						return err
					}
				}
				return nil
			}()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	// The exclusive FIFO makes the increments atomic: 80 increments
	// modulo 256.
	if got := locs["ctr"].Size(); got != 1 {
		t.Fatalf("size = %d", got)
	}
	final, err := func() (byte, error) {
		c, err := Dial(addr)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		h, err := c.Insert("ctr", orwl.Read)
		if err != nil {
			return 0, err
		}
		if err := h.Acquire(); err != nil {
			return 0, err
		}
		defer h.Release()
		data, err := h.Read()
		if err != nil {
			return 0, err
		}
		return data[0], nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	if int(final) != clients*iters {
		t.Errorf("counter = %d, want %d", final, clients*iters)
	}
}

func TestClientFailsAfterServerClose(t *testing.T) {
	locs := locations(t, "data")
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis, locs)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Scale("data", 4); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// Subsequent calls must fail, not hang.
	if err := c.Scale("data", 8); err == nil {
		t.Error("call after server close succeeded")
	}
}

func TestProtocolFraming(t *testing.T) {
	var buf bytes.Buffer
	in := message{callID: 42, op: opInsert, payload: []byte("hello")}
	if err := writeMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.callID != 42 || out.op != opInsert || string(out.payload) != "hello" {
		t.Errorf("round trip = %+v", out)
	}
	// Corrupt frame length.
	if _, err := readMessage(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0, 0})); err == nil {
		t.Error("accepted giant frame")
	}
	if _, err := readMessage(bytes.NewReader([]byte{1, 0, 0, 0, 9})); err == nil {
		t.Error("accepted undersized frame")
	}
	// String codec.
	p := putString(nil, "abc")
	s, rest, err := getString(p)
	if err != nil || s != "abc" || len(rest) != 0 {
		t.Errorf("string codec: %q %v %v", s, rest, err)
	}
	if _, _, err := getString([]byte{5, 0, 'x'}); err == nil {
		t.Error("accepted truncated string")
	}
	if _, _, err := getUint64([]byte{1, 2}); err == nil {
		t.Error("accepted truncated integer")
	}
}
