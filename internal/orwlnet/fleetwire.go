package orwlnet

import (
	"fmt"
	"sort"

	"orwlplace/internal/comm"
	"orwlplace/internal/ctrlplane"
	"orwlplace/internal/placement"
	"orwlplace/internal/treematch"
)

// Schema v5/v6 codecs: the fleet control-plane frames. All start with
// the schema-version byte like every placement payload, so a future
// schema can evolve the layouts behind the same opcodes.
//
//	opFleetLease      req:  version, machine, peer, base, count
//	                        [, ownership token — absent = 0, unowned]
//	                  resp: lease id
//	opObservedReport  req:  version, lease id, seq, matrix (v4 compact)
//	                  resp: empty
//	opWatchRemaps     req:  version, machine, since-epoch
//	                  resp: remap frame (the catch-up ack) — and every
//	                        later adoption arrives as an unsolicited
//	                        frame with the same call id and layout
//
// The v5 remap frame is version, machine, epoch, drift, assignment
// (schema v4 varint packing). Epoch 0 with no assignment is the
// "nothing adopted yet" ack. Schema v6 inserts a kind byte after the
// version: kind 0 is the same full-assignment body, kind 1 is the
// partition delta (see the remapDelta layout below). The request
// frames are layout-identical in v5 and v6 — only the version byte
// differs, chosen per connection so a genuine v5 peer keeps decoding.
const (
	// schemaFleet / schemaDelta are the payload schema versions of the
	// v5 and v6 fleet frames (they track protoFleet / protoDelta).
	schemaFleet = 5
	schemaDelta = 6
)

// Remap frame kinds (schema v6, the byte after the version).
const (
	remapKindFull  = 0
	remapKindDelta = 1
)

// Validation bounds for the untrusted delta decoder. They are
// deliberately far above any deployed configuration (the default
// lease-task bound is 2896 and -max-lease-tasks raises it by orders of
// magnitude before these bite) while still keeping a hostile length
// prefix from forcing huge allocations.
const (
	// maxDeltaTasks bounds the task-space order a delta frame may claim.
	maxDeltaTasks = 1 << 21
	// maxDeltaPU bounds the PU / core indices a delta frame may carry.
	maxDeltaPU = 1 << 20
)

func encodeFleetLeaseRequest(dst []byte, schema int, machine, peer string, base, count int, token uint64) ([]byte, error) {
	dst, _, err := putWireVersion(dst, schema)
	if err != nil {
		return nil, err
	}
	dst = putString(dst, machine)
	dst = putString(dst, peer)
	dst = putUvarint(dst, uint64(base))
	dst = putUvarint(dst, uint64(count))
	return putUvarint(dst, token), nil
}

func decodeFleetLeaseRequest(src []byte) (machine, peer string, base, count int, token uint64, err error) {
	_, rest, err := checkWireVersion(src)
	if err != nil {
		return "", "", 0, 0, 0, err
	}
	if machine, rest, err = getString(rest); err != nil {
		return "", "", 0, 0, 0, err
	}
	if peer, rest, err = getString(rest); err != nil {
		return "", "", 0, 0, 0, err
	}
	var u uint64
	if u, rest, err = getUvarint(rest); err != nil {
		return "", "", 0, 0, 0, err
	}
	base = int(u)
	if u, rest, err = getUvarint(rest); err != nil {
		return "", "", 0, 0, 0, err
	}
	count = int(u)
	if base < 0 || count < 0 {
		return "", "", 0, 0, 0, fmt.Errorf("orwlnet: lease range [%d,+%d) overflows", base, count)
	}
	// Trailing ownership token (PR 8); a pre-hardening frame ends
	// before it, which reads as unowned.
	if len(rest) > 0 {
		if token, _, err = getUvarint(rest); err != nil {
			return "", "", 0, 0, 0, err
		}
	}
	return machine, peer, base, count, token, nil
}

func encodeFleetLeaseResponse(dst []byte, leaseID uint64) []byte {
	return putUvarint(dst, leaseID)
}

func decodeFleetLeaseResponse(src []byte) (uint64, error) {
	id, _, err := getUvarint(src)
	return id, err
}

// encodeObservedReport frames one observed-traffic window delta. The
// matrix crosses in the schema v4 compact encoding (sparse or dense,
// whichever is smaller) — observed windows are usually even sparser
// than declared matrices.
func encodeObservedReport(dst []byte, schema int, leaseID, seq uint64, delta *comm.Matrix) ([]byte, error) {
	if delta == nil {
		return nil, fmt.Errorf("orwlnet: nil observed window")
	}
	dst, _, err := putWireVersion(dst, schema)
	if err != nil {
		return nil, err
	}
	dst = putUvarint(dst, leaseID)
	dst = putUvarint(dst, seq)
	return putMatrixCompact(dst, delta), nil
}

// decodeObservedReport decodes a report frame. Fingerprint-only matrix
// references are refused (nil matrix table): a report is a one-shot
// delta, never worth a round trip to resolve, and remembering every
// peer's windows would churn the placement seen-matrix table.
func decodeObservedReport(src []byte) (leaseID, seq uint64, delta *comm.Matrix, err error) {
	_, rest, err := checkWireVersion(src)
	if err != nil {
		return 0, 0, nil, err
	}
	if leaseID, rest, err = getUvarint(rest); err != nil {
		return 0, 0, nil, err
	}
	if seq, rest, err = getUvarint(rest); err != nil {
		return 0, 0, nil, err
	}
	if delta, _, _, err = getMatrixV4(rest, nil); err != nil {
		return 0, 0, nil, err
	}
	if delta == nil {
		return 0, 0, nil, fmt.Errorf("orwlnet: observed report without a matrix")
	}
	return leaseID, seq, delta, nil
}

func encodeWatchRequest(dst []byte, schema int, machine string, sinceEpoch uint64) ([]byte, error) {
	dst, _, err := putWireVersion(dst, schema)
	if err != nil {
		return nil, err
	}
	dst = putString(dst, machine)
	return putUvarint(dst, sinceEpoch), nil
}

func decodeWatchRequest(src []byte) (machine string, sinceEpoch uint64, err error) {
	_, rest, err := checkWireVersion(src)
	if err != nil {
		return "", 0, err
	}
	if machine, rest, err = getString(rest); err != nil {
		return "", 0, err
	}
	if sinceEpoch, _, err = getUvarint(rest); err != nil {
		return "", 0, err
	}
	return machine, sinceEpoch, nil
}

// encodeRemapFrame frames one remap event in the schema v5 full-frame
// layout (or the empty ack when ev is nil: epoch 0, no assignment) —
// the only layout a protoFleet subscriber decodes. The version byte is
// pinned to schemaFleet, not this build's ServiceVersion: a genuine v5
// peer rejects anything newer.
func encodeRemapFrame(dst []byte, ev *ctrlplane.Remap) ([]byte, error) {
	dst, _, err := putWireVersion(dst, schemaFleet)
	if err != nil {
		return nil, err
	}
	return appendRemapHeaderAndBody(dst, ev), nil
}

// encodeRemapFrameV6 frames one remap event for a protoDelta
// subscriber. When allowDelta is set (the pusher proved the subscriber
// holds exactly the previous epoch) and the event is delta-eligible
// (it knows its moved-task set), both bodies are measured and the
// smaller ships — the same choice rule as the v4 sparse/dense matrix
// encoding. The returned bool reports whether the delta form was used.
func encodeRemapFrameV6(dst []byte, ev *ctrlplane.Remap, allowDelta bool) ([]byte, bool, error) {
	base := len(dst)
	full, _, err := putWireVersion(dst, schemaDelta)
	if err != nil {
		return nil, false, err
	}
	full = append(full, remapKindFull)
	full = appendRemapHeaderAndBody(full, ev)
	if !allowDelta || ev == nil {
		return full, false, nil
	}
	d, err := buildRemapDelta(ev)
	if err != nil {
		return full, false, nil // ineligible: the full frame is the fallback
	}
	delta, err := encodeRemapDelta(nil, d)
	if err != nil || len(delta) >= len(full)-base {
		return full, false, nil
	}
	return append(full[:base], delta...), true, nil
}

// appendRemapHeaderAndBody appends machine, epoch, drift and the v4
// assignment — the shared tail of the v5 frame and the v6 full frame.
func appendRemapHeaderAndBody(dst []byte, ev *ctrlplane.Remap) []byte {
	if ev == nil {
		dst = putString(dst, "")
		dst = putUvarint(dst, 0)
		dst = putUvarint(dst, zigzagFloat(0))
		return putAssignmentV4(dst, nil)
	}
	dst = putString(dst, ev.Machine)
	dst = putUvarint(dst, ev.Epoch)
	dst = putUvarint(dst, zigzagFloat(ev.Drift))
	return putAssignmentV4(dst, ev.Assignment)
}

// decodeRemapFrame decodes a full remap frame (either schema). A zero
// epoch means "nothing adopted yet" (the subscription ack before the
// first adoption); its Remap has no assignment. Delta frames are an
// error here — callers that can apply them use decodeRemapFrameAny.
func decodeRemapFrame(src []byte) (*ctrlplane.Remap, error) {
	ev, d, err := decodeRemapFrameAny(src)
	if err != nil {
		return nil, err
	}
	if d != nil {
		return nil, fmt.Errorf("orwlnet: remap delta frame where a full frame was expected")
	}
	return ev, nil
}

// decodeRemapFrameAny decodes a remap frame of either schema and
// either kind. Exactly one of the results is non-nil on success: a
// full frame yields the Remap, a delta frame yields the remapDelta the
// caller applies onto its cached assignment.
func decodeRemapFrameAny(src []byte) (*ctrlplane.Remap, *remapDelta, error) {
	v, rest, err := checkWireVersion(src)
	if err != nil {
		return nil, nil, err
	}
	if v >= schemaDelta {
		if len(rest) < 1 {
			return nil, nil, fmt.Errorf("orwlnet: remap frame without a kind byte")
		}
		kind := rest[0]
		rest = rest[1:]
		switch kind {
		case remapKindFull:
			// fall through to the shared full-body decode below
		case remapKindDelta:
			d, err := decodeRemapDelta(rest)
			if err != nil {
				return nil, nil, err
			}
			return nil, d, nil
		default:
			return nil, nil, fmt.Errorf("orwlnet: unknown remap frame kind %d", kind)
		}
	}
	ev := &ctrlplane.Remap{}
	if ev.Machine, rest, err = getString(rest); err != nil {
		return nil, nil, err
	}
	if ev.Epoch, rest, err = getUvarint(rest); err != nil {
		return nil, nil, err
	}
	var raw uint64
	if raw, rest, err = getUvarint(rest); err != nil {
		return nil, nil, err
	}
	ev.Drift = unzigzagFloat(raw)
	if ev.Assignment, _, err = getAssignmentV4(rest); err != nil {
		return nil, nil, err
	}
	if ev.Epoch > 0 && ev.Assignment == nil {
		return nil, nil, fmt.Errorf("orwlnet: remap epoch %d without an assignment", ev.Epoch)
	}
	return ev, nil, nil
}

// remapDelta is the decoded form of a schema v6 delta frame: the remap
// header plus only what changed since the previous epoch. Applying it
// onto the assignment of epoch Epoch-1 reconstructs the full epoch
// Epoch assignment; it carries enough of the header (strategy, flags,
// mode, order, aux-slice presence) that any mismatch with the cached
// assignment is detected instead of silently mis-applied.
type remapDelta struct {
	Machine string
	Epoch   uint64
	Drift   float64

	// Order is the machine-global task-space size — must equal the
	// cached assignment's.
	Order    int
	Strategy string
	Flags    byte // the asgn* bits of the new assignment
	Mode     byte
	// Aux records which auxiliary per-task slices the assignment
	// carries (and hence which values each pair encodes).
	Aux byte

	// Parts lists the partition indices the reconciler re-placed
	// (EpochReport.RemappedPartitions).
	Parts []int

	// Tasks (ascending) and the index-aligned new placements of the
	// moved tasks. ControlPU/CoreOf are nil when Aux says the
	// assignment does not carry them.
	Tasks     []int
	ComputePU []int
	ControlPU []int
	CoreOf    []int
}

// Aux bits.
const (
	deltaAuxControl = 1 << 0
	deltaAuxCore    = 1 << 1
)

// buildRemapDelta derives the delta form of a remap event, or an error
// when the event cannot ship as a delta: no moved-task set (catch-up,
// initial adoption, non-adjacent epoch bookkeeping lives in the
// pusher), an unbound or irregular assignment, or values outside the
// wire bounds.
func buildRemapDelta(ev *ctrlplane.Remap) (*remapDelta, error) {
	a := ev.Assignment
	if a == nil || a.Unbound || ev.MovedTasks == nil {
		return nil, fmt.Errorf("orwlnet: remap is not delta-eligible")
	}
	order := len(a.ComputePU)
	if order == 0 || order > maxDeltaTasks {
		return nil, fmt.Errorf("orwlnet: delta order %d out of range", order)
	}
	if (len(a.ControlPU) != 0 && len(a.ControlPU) != order) ||
		(len(a.CoreOf) != 0 && len(a.CoreOf) != order) {
		return nil, fmt.Errorf("orwlnet: ragged assignment slices")
	}
	d := &remapDelta{
		Machine:  ev.Machine,
		Epoch:    ev.Epoch,
		Drift:    ev.Drift,
		Order:    order,
		Strategy: a.Strategy,
		Flags:    assignmentFlags(a),
		Mode:     byte(a.Mode),
	}
	if len(a.ControlPU) > 0 {
		d.Aux |= deltaAuxControl
	}
	if len(a.CoreOf) > 0 {
		d.Aux |= deltaAuxCore
	}
	d.Parts = append([]int(nil), ev.RemappedPartitions...)
	sort.Ints(d.Parts)
	for _, p := range d.Parts {
		if p < 0 || p >= order {
			return nil, fmt.Errorf("orwlnet: partition index %d out of range", p)
		}
	}
	tasks := append([]int(nil), ev.MovedTasks...)
	sort.Ints(tasks)
	prev := -1
	for _, t := range tasks {
		if t <= prev || t >= order {
			return nil, fmt.Errorf("orwlnet: moved task %d out of range or duplicated", t)
		}
		prev = t
		if pu := a.ComputePU[t]; pu < 0 || pu > maxDeltaPU {
			return nil, fmt.Errorf("orwlnet: compute PU %d out of wire range", pu)
		}
		d.Tasks = append(d.Tasks, t)
		d.ComputePU = append(d.ComputePU, a.ComputePU[t])
		if d.Aux&deltaAuxControl != 0 {
			if pu := a.ControlPU[t]; pu < -1 || pu > maxDeltaPU {
				return nil, fmt.Errorf("orwlnet: control PU %d out of wire range", pu)
			}
			d.ControlPU = append(d.ControlPU, a.ControlPU[t])
		}
		if d.Aux&deltaAuxCore != 0 {
			if c := a.CoreOf[t]; c < 0 || c > maxDeltaPU {
				return nil, fmt.Errorf("orwlnet: core index %d out of wire range", c)
			}
			d.CoreOf = append(d.CoreOf, a.CoreOf[t])
		}
	}
	return d, nil
}

// assignmentFlags mirrors putAssignmentV4's flag byte.
func assignmentFlags(a *placement.Assignment) byte {
	var flags byte
	if a.Unbound {
		flags |= asgnUnbound
	}
	if a.Oversubscribed {
		flags |= asgnOversubscribed
	}
	return flags
}

// encodeRemapDelta frames a delta: version, kind, machine, epoch,
// drift, then order, strategy, flags, mode, aux, the remapped
// partition indices, and the moved pairs — task ids as ascending gaps,
// compute PU as uvarint, control PU zigzagged (for the -1 "OS-managed"
// marker), core index as uvarint.
func encodeRemapDelta(dst []byte, d *remapDelta) ([]byte, error) {
	dst, _, err := putWireVersion(dst, schemaDelta)
	if err != nil {
		return nil, err
	}
	dst = append(dst, remapKindDelta)
	dst = putString(dst, d.Machine)
	dst = putUvarint(dst, d.Epoch)
	dst = putUvarint(dst, zigzagFloat(d.Drift))
	dst = putUvarint(dst, uint64(d.Order))
	dst = putString(dst, d.Strategy)
	dst = append(dst, d.Flags, d.Mode, d.Aux)
	dst = putUvarint(dst, uint64(len(d.Parts)))
	for _, p := range d.Parts {
		dst = putUvarint(dst, uint64(p))
	}
	dst = putUvarint(dst, uint64(len(d.Tasks)))
	prev := -1
	for i, t := range d.Tasks {
		dst = putUvarint(dst, uint64(t-prev))
		prev = t
		dst = putUvarint(dst, uint64(d.ComputePU[i]))
		if d.Aux&deltaAuxControl != 0 {
			dst = putUvarint(dst, zigzag(int64(d.ControlPU[i])))
		}
		if d.Aux&deltaAuxCore != 0 {
			dst = putUvarint(dst, uint64(d.CoreOf[i]))
		}
	}
	return dst, nil
}

// decodeRemapDelta parses a delta body (everything after the version
// and kind bytes). It is an untrusted decoder: every count is bounded,
// task ids must stay ascending inside the claimed order, and PU/core
// indices outside the wire bounds are rejected.
func decodeRemapDelta(src []byte) (*remapDelta, error) {
	d := &remapDelta{}
	var err error
	if d.Machine, src, err = getString(src); err != nil {
		return nil, err
	}
	if d.Epoch, src, err = getUvarint(src); err != nil {
		return nil, err
	}
	var raw uint64
	if raw, src, err = getUvarint(src); err != nil {
		return nil, err
	}
	d.Drift = unzigzagFloat(raw)
	if d.Epoch == 0 {
		return nil, fmt.Errorf("orwlnet: delta frame with epoch 0")
	}
	var u uint64
	if u, src, err = getUvarint(src); err != nil {
		return nil, err
	}
	if u == 0 || u > maxDeltaTasks {
		return nil, fmt.Errorf("orwlnet: delta order %d out of range", u)
	}
	d.Order = int(u)
	if d.Strategy, src, err = getString(src); err != nil {
		return nil, err
	}
	if len(src) < 3 {
		return nil, fmt.Errorf("orwlnet: truncated delta header")
	}
	d.Flags, d.Mode, d.Aux = src[0], src[1], src[2]
	src = src[3:]
	if d.Flags&asgnUnbound != 0 {
		return nil, fmt.Errorf("orwlnet: delta frame for an unbound assignment")
	}
	if d.Aux&^(deltaAuxControl|deltaAuxCore) != 0 {
		return nil, fmt.Errorf("orwlnet: unknown delta aux bits %#x", d.Aux)
	}
	if u, src, err = getUvarint(src); err != nil {
		return nil, err
	}
	// Each entry costs at least one byte on the wire — the allocation
	// guard of every count below.
	if u > uint64(d.Order) || u > uint64(len(src)) {
		return nil, fmt.Errorf("orwlnet: delta claims %d partitions", u)
	}
	if n := int(u); n > 0 {
		d.Parts = make([]int, 0, n)
		prev := -1
		for i := 0; i < n; i++ {
			if u, src, err = getUvarint(src); err != nil {
				return nil, err
			}
			p := int(u)
			if p <= prev || p >= d.Order {
				return nil, fmt.Errorf("orwlnet: partition index %d out of order or range", p)
			}
			prev = p
			d.Parts = append(d.Parts, p)
		}
	}
	if u, src, err = getUvarint(src); err != nil {
		return nil, err
	}
	if u > uint64(d.Order) || u > uint64(len(src)) {
		return nil, fmt.Errorf("orwlnet: delta claims %d moved tasks", u)
	}
	n := int(u)
	d.Tasks = make([]int, 0, n)
	d.ComputePU = make([]int, 0, n)
	if d.Aux&deltaAuxControl != 0 {
		d.ControlPU = make([]int, 0, n)
	}
	if d.Aux&deltaAuxCore != 0 {
		d.CoreOf = make([]int, 0, n)
	}
	prev := -1
	for i := 0; i < n; i++ {
		if u, src, err = getUvarint(src); err != nil {
			return nil, err
		}
		if u == 0 {
			return nil, fmt.Errorf("orwlnet: zero task-id gap")
		}
		t := prev + int(u)
		if t < 0 || t >= d.Order {
			return nil, fmt.Errorf("orwlnet: moved task %d outside order %d", t, d.Order)
		}
		prev = t
		d.Tasks = append(d.Tasks, t)
		if u, src, err = getUvarint(src); err != nil {
			return nil, err
		}
		if u > maxDeltaPU {
			return nil, fmt.Errorf("orwlnet: compute PU %d out of wire range", u)
		}
		d.ComputePU = append(d.ComputePU, int(u))
		if d.Aux&deltaAuxControl != 0 {
			if u, src, err = getUvarint(src); err != nil {
				return nil, err
			}
			pu := unzigzag(u)
			if pu < -1 || pu > maxDeltaPU {
				return nil, fmt.Errorf("orwlnet: control PU %d out of wire range", pu)
			}
			d.ControlPU = append(d.ControlPU, int(pu))
		}
		if d.Aux&deltaAuxCore != 0 {
			if u, src, err = getUvarint(src); err != nil {
				return nil, err
			}
			if u > maxDeltaPU {
				return nil, fmt.Errorf("orwlnet: core index %d out of wire range", u)
			}
			d.CoreOf = append(d.CoreOf, int(u))
		}
	}
	return d, nil
}

// applyRemapDelta reconstructs the full assignment of epoch d.Epoch by
// applying the delta onto prev, the cached assignment of the previous
// epoch. Any structural mismatch — order, unboundness, aux-slice
// presence — is an error; the caller treats it as decode doubt and
// resyncs with a full frame. prev is not mutated.
func applyRemapDelta(prev *placement.Assignment, d *remapDelta) (*placement.Assignment, error) {
	if prev == nil || prev.Unbound {
		return nil, fmt.Errorf("orwlnet: no cached assignment to apply a delta onto")
	}
	if len(prev.ComputePU) != d.Order {
		return nil, fmt.Errorf("orwlnet: delta order %d does not match cached assignment order %d", d.Order, len(prev.ComputePU))
	}
	if (d.Aux&deltaAuxControl != 0) != (len(prev.ControlPU) == d.Order) {
		return nil, fmt.Errorf("orwlnet: delta control-PU presence does not match cached assignment")
	}
	if (d.Aux&deltaAuxCore != 0) != (len(prev.CoreOf) == d.Order) {
		return nil, fmt.Errorf("orwlnet: delta core presence does not match cached assignment")
	}
	a := prev.Clone()
	a.Strategy = d.Strategy
	a.Unbound = d.Flags&asgnUnbound != 0
	a.Oversubscribed = d.Flags&asgnOversubscribed != 0
	a.Mode = treematch.ControlMode(d.Mode)
	for i, t := range d.Tasks {
		a.ComputePU[t] = d.ComputePU[i]
		if d.ControlPU != nil {
			a.ControlPU[t] = d.ControlPU[i]
		}
		if d.CoreOf != nil {
			a.CoreOf[t] = d.CoreOf[i]
		}
	}
	return a, nil
}

// remap converts the delta plus its reconstructed assignment into the
// event delivered to watchers: a full Remap that also knows which
// tasks moved, so the facade can re-bind in O(changed).
func (d *remapDelta) remap(a *placement.Assignment) *ctrlplane.Remap {
	return &ctrlplane.Remap{
		Machine:            d.Machine,
		Epoch:              d.Epoch,
		Drift:              d.Drift,
		Assignment:         a,
		MovedTasks:         append([]int(nil), d.Tasks...),
		RemappedPartitions: append([]int(nil), d.Parts...),
		Delta:              true,
	}
}

// FleetStats codec (schema v5/v6 stats payload tail).

func putFleetStats(dst []byte, st placement.FleetStats, schema int) []byte {
	dst = putUint64(dst, st.ReportsReceived)
	dst = putUint64(dst, st.PeersTracked)
	dst = putUint64(dst, st.RemapsPushed)
	dst = putUint64(dst, st.StalePeersEvicted)
	dst = putUint64(dst, st.Watchers)
	dst = putUint64(dst, st.ReportsThrottled)
	dst = putUint64(dst, st.LeaseConflicts)
	if schema >= schemaDelta {
		dst = putUint64(dst, st.DeltaPushes)
		dst = putUint64(dst, st.FullPushes)
	}
	return dst
}

func getFleetStats(src []byte) (placement.FleetStats, []byte, error) {
	var st placement.FleetStats
	var err error
	if st.ReportsReceived, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.PeersTracked, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.RemapsPushed, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.StalePeersEvicted, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.Watchers, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	// The hostile-peer counters (PR 8) trail the original five fields;
	// a pre-hardening daemon's payload simply ends here.
	if len(src) == 0 {
		return st, src, nil
	}
	if st.ReportsThrottled, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.LeaseConflicts, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	// The delta/full push counters (schema v6) trail those; a v5
	// daemon's payload ends here.
	if len(src) == 0 {
		return st, src, nil
	}
	if st.DeltaPushes, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.FullPushes, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	return st, src, nil
}
