package orwlnet

import (
	"fmt"

	"orwlplace/internal/comm"
	"orwlplace/internal/ctrlplane"
	"orwlplace/internal/placement"
)

// Schema v5 codecs: the fleet control-plane frames. All three start
// with the schema-version byte like every placement payload, so a
// future schema can evolve the layouts behind the same opcodes.
//
//	opFleetLease      req:  version, machine, peer, base, count
//	                        [, ownership token — absent = 0, unowned]
//	                  resp: lease id
//	opObservedReport  req:  version, lease id, seq, matrix (v4 compact)
//	                  resp: empty
//	opWatchRemaps     req:  version, machine, since-epoch
//	                  resp: remap frame (the catch-up ack) — and every
//	                        later adoption arrives as an unsolicited
//	                        frame with the same call id and layout
//
// The remap frame is version, machine, epoch, drift, assignment
// (schema v4 varint packing). Epoch 0 with no assignment is the
// "nothing adopted yet" ack.

func encodeFleetLeaseRequest(dst []byte, machine, peer string, base, count int, token uint64) ([]byte, error) {
	dst, _, err := putWireVersion(dst, 0)
	if err != nil {
		return nil, err
	}
	dst = putString(dst, machine)
	dst = putString(dst, peer)
	dst = putUvarint(dst, uint64(base))
	dst = putUvarint(dst, uint64(count))
	return putUvarint(dst, token), nil
}

func decodeFleetLeaseRequest(src []byte) (machine, peer string, base, count int, token uint64, err error) {
	_, rest, err := checkWireVersion(src)
	if err != nil {
		return "", "", 0, 0, 0, err
	}
	if machine, rest, err = getString(rest); err != nil {
		return "", "", 0, 0, 0, err
	}
	if peer, rest, err = getString(rest); err != nil {
		return "", "", 0, 0, 0, err
	}
	var u uint64
	if u, rest, err = getUvarint(rest); err != nil {
		return "", "", 0, 0, 0, err
	}
	base = int(u)
	if u, rest, err = getUvarint(rest); err != nil {
		return "", "", 0, 0, 0, err
	}
	count = int(u)
	if base < 0 || count < 0 {
		return "", "", 0, 0, 0, fmt.Errorf("orwlnet: lease range [%d,+%d) overflows", base, count)
	}
	// Trailing ownership token (PR 8); a pre-hardening frame ends
	// before it, which reads as unowned.
	if len(rest) > 0 {
		if token, _, err = getUvarint(rest); err != nil {
			return "", "", 0, 0, 0, err
		}
	}
	return machine, peer, base, count, token, nil
}

func encodeFleetLeaseResponse(dst []byte, leaseID uint64) []byte {
	return putUvarint(dst, leaseID)
}

func decodeFleetLeaseResponse(src []byte) (uint64, error) {
	id, _, err := getUvarint(src)
	return id, err
}

// encodeObservedReport frames one observed-traffic window delta. The
// matrix crosses in the schema v4 compact encoding (sparse or dense,
// whichever is smaller) — observed windows are usually even sparser
// than declared matrices.
func encodeObservedReport(dst []byte, leaseID, seq uint64, delta *comm.Matrix) ([]byte, error) {
	if delta == nil {
		return nil, fmt.Errorf("orwlnet: nil observed window")
	}
	dst, _, err := putWireVersion(dst, 0)
	if err != nil {
		return nil, err
	}
	dst = putUvarint(dst, leaseID)
	dst = putUvarint(dst, seq)
	return putMatrixCompact(dst, delta), nil
}

// decodeObservedReport decodes a report frame. Fingerprint-only matrix
// references are refused (nil matrix table): a report is a one-shot
// delta, never worth a round trip to resolve, and remembering every
// peer's windows would churn the placement seen-matrix table.
func decodeObservedReport(src []byte) (leaseID, seq uint64, delta *comm.Matrix, err error) {
	_, rest, err := checkWireVersion(src)
	if err != nil {
		return 0, 0, nil, err
	}
	if leaseID, rest, err = getUvarint(rest); err != nil {
		return 0, 0, nil, err
	}
	if seq, rest, err = getUvarint(rest); err != nil {
		return 0, 0, nil, err
	}
	if delta, _, _, err = getMatrixV4(rest, nil); err != nil {
		return 0, 0, nil, err
	}
	if delta == nil {
		return 0, 0, nil, fmt.Errorf("orwlnet: observed report without a matrix")
	}
	return leaseID, seq, delta, nil
}

func encodeWatchRequest(dst []byte, machine string, sinceEpoch uint64) ([]byte, error) {
	dst, _, err := putWireVersion(dst, 0)
	if err != nil {
		return nil, err
	}
	dst = putString(dst, machine)
	return putUvarint(dst, sinceEpoch), nil
}

func decodeWatchRequest(src []byte) (machine string, sinceEpoch uint64, err error) {
	_, rest, err := checkWireVersion(src)
	if err != nil {
		return "", 0, err
	}
	if machine, rest, err = getString(rest); err != nil {
		return "", 0, err
	}
	if sinceEpoch, _, err = getUvarint(rest); err != nil {
		return "", 0, err
	}
	return machine, sinceEpoch, nil
}

// encodeRemapFrame frames one remap event (or the empty ack when ev is
// nil: epoch 0, no assignment).
func encodeRemapFrame(dst []byte, ev *ctrlplane.Remap) ([]byte, error) {
	dst, _, err := putWireVersion(dst, 0)
	if err != nil {
		return nil, err
	}
	if ev == nil {
		dst = putString(dst, "")
		dst = putUvarint(dst, 0)
		dst = putUvarint(dst, zigzagFloat(0))
		return putAssignmentV4(dst, nil), nil
	}
	dst = putString(dst, ev.Machine)
	dst = putUvarint(dst, ev.Epoch)
	dst = putUvarint(dst, zigzagFloat(ev.Drift))
	return putAssignmentV4(dst, ev.Assignment), nil
}

// decodeRemapFrame decodes a remap event frame. A zero epoch means
// "nothing adopted yet" (the subscription ack before the first
// adoption); its Remap has no assignment.
func decodeRemapFrame(src []byte) (*ctrlplane.Remap, error) {
	_, rest, err := checkWireVersion(src)
	if err != nil {
		return nil, err
	}
	ev := &ctrlplane.Remap{}
	if ev.Machine, rest, err = getString(rest); err != nil {
		return nil, err
	}
	if ev.Epoch, rest, err = getUvarint(rest); err != nil {
		return nil, err
	}
	var raw uint64
	if raw, rest, err = getUvarint(rest); err != nil {
		return nil, err
	}
	ev.Drift = unzigzagFloat(raw)
	if ev.Assignment, _, err = getAssignmentV4(rest); err != nil {
		return nil, err
	}
	if ev.Epoch > 0 && ev.Assignment == nil {
		return nil, fmt.Errorf("orwlnet: remap epoch %d without an assignment", ev.Epoch)
	}
	return ev, nil
}

// FleetStats codec (schema v5 stats payload tail).

func putFleetStats(dst []byte, st placement.FleetStats) []byte {
	dst = putUint64(dst, st.ReportsReceived)
	dst = putUint64(dst, st.PeersTracked)
	dst = putUint64(dst, st.RemapsPushed)
	dst = putUint64(dst, st.StalePeersEvicted)
	dst = putUint64(dst, st.Watchers)
	dst = putUint64(dst, st.ReportsThrottled)
	return putUint64(dst, st.LeaseConflicts)
}

func getFleetStats(src []byte) (placement.FleetStats, []byte, error) {
	var st placement.FleetStats
	var err error
	if st.ReportsReceived, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.PeersTracked, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.RemapsPushed, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.StalePeersEvicted, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.Watchers, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	// The hostile-peer counters (PR 8) trail the original five fields;
	// a pre-hardening daemon's payload simply ends here.
	if len(src) == 0 {
		return st, src, nil
	}
	if st.ReportsThrottled, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.LeaseConflicts, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	return st, src, nil
}
