package orwlnet

import (
	"math"
	"testing"

	"orwlplace/internal/ctrlplane"
	"orwlplace/internal/placement"
)

// FuzzRemapDeltaDecode exercises the schema v6 remap decoder — the
// delta body is fully attacker-controlled on a watch stream. Same
// contract as the other wire fuzz targets: rejecting is fine,
// panicking is not, and anything accepted must hold the documented
// invariants (epoch > 0, ascending in-range task ids, bounded PUs) and
// survive a re-encode round trip and an apply onto a matching cache.
func FuzzRemapDeltaDecode(f *testing.F) {
	prev := &placement.Assignment{
		Strategy:  placement.TreeMatch,
		ComputePU: []int{0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15},
		ControlPU: []int{-1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1},
	}
	next := prev.Clone()
	next.ComputePU[3] = 7
	next.ComputePU[7] = 9
	ev := &ctrlplane.Remap{
		Machine:            "fig2",
		Epoch:              4,
		Drift:              0.1,
		Assignment:         next,
		MovedTasks:         []int{3, 7},
		RemappedPartitions: []int{1},
	}
	if d, err := buildRemapDelta(ev); err == nil {
		if seed, err := encodeRemapDelta(nil, d); err == nil {
			f.Add(seed)
			f.Add(seed[:len(seed)-2]) // truncated mid-pair
		}
	}
	if full, _, err := encodeRemapFrameV6(nil, ev, false); err == nil {
		f.Add(full) // the kind-0 sibling goes through the same entry point
	}
	f.Add([]byte{})
	f.Add([]byte{schemaDelta})
	f.Add([]byte{schemaDelta, remapKindDelta})
	f.Add([]byte{schemaDelta, 0x7f}) // unknown kind
	f.Fuzz(func(t *testing.T, data []byte) {
		full, d, err := decodeRemapFrameAny(data)
		if err != nil {
			return
		}
		if full != nil {
			// The full-frame path has its own fuzz target; just hold the
			// shared invariant here.
			if full.Epoch > 0 && full.Assignment == nil {
				t.Fatal("accepted a non-zero epoch without an assignment")
			}
			return
		}
		if d == nil {
			t.Fatal("decode succeeded with neither a full frame nor a delta")
		}
		if d.Epoch == 0 {
			t.Fatal("accepted a delta with epoch 0")
		}
		if d.Order <= 0 || d.Order > maxDeltaTasks {
			t.Fatalf("accepted delta order %d", d.Order)
		}
		prevTask := -1
		for i, task := range d.Tasks {
			if task <= prevTask || task >= d.Order {
				t.Fatalf("accepted out-of-range or non-ascending task %d", task)
			}
			prevTask = task
			if pu := d.ComputePU[i]; pu < 0 || pu > maxDeltaPU {
				t.Fatalf("accepted compute PU %d", pu)
			}
			if d.ControlPU != nil {
				if pu := d.ControlPU[i]; pu < -1 || pu > maxDeltaPU {
					t.Fatalf("accepted control PU %d", pu)
				}
			}
			if d.CoreOf != nil {
				if c := d.CoreOf[i]; c < 0 || c > maxDeltaPU {
					t.Fatalf("accepted core index %d", c)
				}
			}
		}
		re, err := encodeRemapDelta(nil, d)
		if err != nil {
			t.Fatalf("accepted delta does not re-encode: %v", err)
		}
		_, d2, err := decodeRemapFrameAny(re)
		if err != nil || d2 == nil {
			t.Fatalf("re-encoded delta rejected: %v", err)
		}
		if d2.Machine != d.Machine || d2.Epoch != d.Epoch || d2.Order != d.Order ||
			d2.Strategy != d.Strategy || d2.Flags != d.Flags || d2.Mode != d.Mode || d2.Aux != d.Aux ||
			math.Float64bits(d2.Drift) != math.Float64bits(d.Drift) {
			t.Fatalf("header changed across round trip: %+v -> %+v", d, d2)
		}
		if len(d2.Tasks) != len(d.Tasks) || len(d2.Parts) != len(d.Parts) {
			t.Fatal("pair/partition counts changed across round trip")
		}
		for i := range d.Tasks {
			if d2.Tasks[i] != d.Tasks[i] || d2.ComputePU[i] != d.ComputePU[i] {
				t.Fatalf("pair %d changed across round trip", i)
			}
		}
		// Anything accepted applies cleanly onto a shape-matched cache
		// (bounded to keep the allocation per exec small).
		if d.Order <= 4096 {
			cache := &placement.Assignment{ComputePU: make([]int, d.Order)}
			if d.Aux&deltaAuxControl != 0 {
				cache.ControlPU = make([]int, d.Order)
			}
			if d.Aux&deltaAuxCore != 0 {
				cache.CoreOf = make([]int, d.Order)
			}
			a, err := applyRemapDelta(cache, d)
			if err != nil {
				t.Fatalf("accepted delta does not apply: %v", err)
			}
			for i, task := range d.Tasks {
				if a.ComputePU[task] != d.ComputePU[i] {
					t.Fatalf("apply lost pair %d", i)
				}
			}
		}
	})
}
