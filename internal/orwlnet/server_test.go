package orwlnet

import (
	"net"
	"testing"

	"orwlplace/internal/orwl"
)

// Handler-level tests covering protocol error paths without a network.

func testServer(t *testing.T) (*Server, *connState) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	locs := locations(t, "data")
	locs["data"].Scale(8)
	srv, err := NewServer(lis, locs)
	if err != nil {
		t.Fatal(err)
	}
	return srv, &connState{reqs: make(map[uint64]*orwl.RawRequest)}
}

func TestHandleUnknownOp(t *testing.T) {
	srv, st := testServer(t)
	if _, _, err := srv.handle(st, message{op: 99}); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestHandleTruncatedPayloads(t *testing.T) {
	srv, st := testServer(t)
	cases := []message{
		{op: opScale, payload: nil},
		{op: opScale, payload: putString(nil, "data")}, // missing size
		{op: opSize, payload: nil},
		{op: opInsert, payload: nil},
		{op: opInsert, payload: putString(nil, "data")}, // missing mode
		{op: opAwait, payload: []byte{1}},
		{op: opRead, payload: []byte{1}},
		{op: opWrite, payload: []byte{1}},
		{op: opRelease, payload: []byte{1}},
		{op: opReleaseReinsert, payload: []byte{1}},
	}
	for i, m := range cases {
		if _, _, err := srv.handle(st, m); err == nil {
			t.Errorf("case %d (op %d): truncated payload accepted", i, m.op)
		}
	}
}

func TestHandleUnknownLocationAndHandle(t *testing.T) {
	srv, st := testServer(t)
	if _, _, err := srv.handle(st, message{op: opInsert, payload: append(putString(nil, "nope"), byte(orwl.Read))}); err == nil {
		t.Error("insert on unknown location accepted")
	}
	if _, _, err := srv.handle(st, message{op: opAwait, payload: putUint64(nil, 12345)}); err == nil {
		t.Error("await on unknown handle accepted")
	}
	if _, _, err := srv.handle(st, message{op: opRelease, payload: putUint64(nil, 12345)}); err == nil {
		t.Error("release on unknown handle accepted")
	}
}

func TestHandleReadWriteWithoutGrant(t *testing.T) {
	srv, st := testServer(t)
	// Queue a writer that holds the grant, then a reader that is not
	// yet granted.
	resp, _, err := srv.handle(st, message{op: opInsert, payload: append(putString(nil, "data"), byte(orwl.Write))})
	if err != nil {
		t.Fatal(err)
	}
	wID, _, _ := getUint64(resp)
	resp, _, err = srv.handle(st, message{op: opInsert, payload: append(putString(nil, "data"), byte(orwl.Read))})
	if err != nil {
		t.Fatal(err)
	}
	rID, _, _ := getUint64(resp)
	// The reader has no grant yet: read must fail rather than block.
	if _, _, err := srv.handle(st, message{op: opRead, payload: putUint64(nil, rID)}); err == nil {
		t.Error("read without grant accepted")
	}
	if _, _, err := srv.handle(st, message{op: opWrite, payload: putUint64(nil, rID)}); err == nil {
		t.Error("write without grant accepted")
	}
	// Writer: write works, oversized write fails.
	if _, _, err := srv.handle(st, message{op: opWrite, payload: append(putUint64(nil, wID), 1, 2)}); err != nil {
		t.Errorf("writer write failed: %v", err)
	}
	big := append(putUint64(nil, wID), make([]byte, 100)...)
	if _, _, err := srv.handle(st, message{op: opWrite, payload: big}); err == nil {
		t.Error("oversized write accepted")
	}
	// Release the writer; reader becomes granted and read succeeds.
	if _, _, err := srv.handle(st, message{op: opRelease, payload: putUint64(nil, wID)}); err != nil {
		t.Fatal(err)
	}
	data, _, err := srv.handle(st, message{op: opRead, payload: putUint64(nil, rID)})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 8 || data[0] != 1 || data[1] != 2 {
		t.Errorf("read = %v", data)
	}
	// Write on a read handle fails even with the grant.
	if _, _, err := srv.handle(st, message{op: opWrite, payload: append(putUint64(nil, rID), 9)}); err == nil {
		t.Error("write on read handle accepted")
	}
}

func TestServerDoubleCloseAndAddr(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis, locations(t, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr().String() == "" {
		t.Error("empty address")
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Errorf("Serve after Close = %v, want nil", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}
