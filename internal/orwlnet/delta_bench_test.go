package orwlnet

import (
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/ctrlplane"
	"orwlplace/internal/orwl"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// BenchmarkRemapDeltaPush measures the acceptance scenario of the
// schema v6 delta push end to end: a single-partition remap of the
// 10k-task / 1024-core fleet mapping (the PR 9 sparse partitioned
// recipe), pushed as a delta and re-bound O(changed) on the client.
//
// Each iteration runs the per-subscriber hot path — encode the delta
// frame, decode it, apply it onto the cached assignment, re-bind only
// the moved tasks. The reported extra metrics pin the two >=10x
// acceptance ratios against their full-frame baselines:
//
//	full_bytes / delta_bytes  -> push_bytes_ratio
//	order / moved_tasks       -> rebind_ratio
func BenchmarkRemapDeltaPush(b *testing.B) {
	top := topology.Fleet1K()
	s := comm.RingOfClusters(250, 40, 1<<20, 1<<12) // 10000 tasks
	mp, err := treematch.MapAffinity(top, s, treematch.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if mp.Partitions == nil || len(mp.Partitions.Parts) < 2 {
		b.Fatal("10k mapping did not take the partitioned path")
	}
	prev := &placement.Assignment{
		Strategy:   placement.TreeMatch,
		ComputePU:  mp.ComputePU,
		ControlPU:  mp.ControlPU,
		Mode:       mp.Mode,
		CoreOf:     mp.CoreOf,
		Partitions: mp.Partitions,
	}
	order := len(prev.ComputePU)

	// A single-partition drift event: the drifted subtree's tasks swap
	// places with its sibling's (each Fleet1K partition is ~10 tasks on
	// one core, so a remap of one subtree migrates its tasks — the
	// moved set is the two partitions, ~0.2% of the fleet).
	partIdx := len(mp.Partitions.Parts) / 2
	pa, pb := mp.Partitions.Parts[partIdx], mp.Partitions.Parts[partIdx+1]
	next := prev.Clone()
	swapTo := func(tasks []int, src int) {
		for _, task := range tasks {
			next.ComputePU[task] = prev.ComputePU[src]
			next.ControlPU[task] = prev.ControlPU[src]
			next.CoreOf[task] = prev.CoreOf[src]
		}
	}
	swapTo(pa.Tasks, pb.Tasks[0])
	swapTo(pb.Tasks, pa.Tasks[0])
	moved := make([]int, 0, len(pa.Tasks)+len(pb.Tasks))
	for task := range next.ComputePU {
		if next.ComputePU[task] != prev.ComputePU[task] ||
			next.ControlPU[task] != prev.ControlPU[task] ||
			next.CoreOf[task] != prev.CoreOf[task] {
			moved = append(moved, task)
		}
	}
	if len(moved) == 0 {
		b.Fatal("partition swap moved nothing")
	}
	ev := &ctrlplane.Remap{
		Machine:            "fleet1k",
		Epoch:              2,
		Drift:              0.25,
		Assignment:         next,
		MovedTasks:         moved,
		RemappedPartitions: []int{partIdx, partIdx + 1},
	}

	full, isDelta, err := encodeRemapFrameV6(nil, ev, false)
	if err != nil || isDelta {
		b.Fatalf("full encode = (delta=%v, %v)", isDelta, err)
	}
	delta, isDelta, err := encodeRemapFrameV6(nil, ev, true)
	if err != nil {
		b.Fatal(err)
	}
	if !isDelta {
		b.Fatal("chooser shipped a full frame for a single-partition move")
	}

	// The client side: a 10k-task program whose cached assignment the
	// delta lands on.
	prog := orwl.MustProgram(order)
	if err := placement.Bind(prog, prev); err != nil {
		b.Fatal(err)
	}
	cache := prev.Clone()

	buf := make([]byte, 0, len(full))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, isDelta, err = encodeRemapFrameV6(buf[:0], ev, true)
		if err != nil || !isDelta {
			b.Fatalf("encode = (delta=%v, %v)", isDelta, err)
		}
		_, d, err := decodeRemapFrameAny(buf)
		if err != nil || d == nil {
			b.Fatalf("decode = (%v, %v)", d, err)
		}
		applied, err := applyRemapDelta(cache, d)
		if err != nil {
			b.Fatal(err)
		}
		if err := placement.BindTasks(prog, applied, d.Tasks); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(full)), "full_bytes")
	b.ReportMetric(float64(len(delta)), "delta_bytes")
	b.ReportMetric(float64(len(full))/float64(len(delta)), "push_bytes_ratio")
	b.ReportMetric(float64(order), "tasks")
	b.ReportMetric(float64(len(moved)), "moved_tasks")
	b.ReportMetric(float64(order)/float64(len(moved)), "rebind_ratio")
}
