package orwlnet

import (
	"fmt"
	"math"
	"sync"

	"orwlplace/internal/comm"
	"orwlplace/internal/placement"
	"orwlplace/internal/treematch"
)

// Binary codecs for the placement RPCs. All integers are
// little-endian; strings are uint16-length-prefixed (putString);
// optional values carry a presence byte. The leading byte of a
// request/response is its placement.ServiceVersion, so schema
// evolution is detected before any field is decoded.
//
// The encoders are append-style (dst ...[]byte) so hot paths reuse a
// pooled payload buffer: a placement request carries a full matrix
// (8n² bytes) and the response three assignment slices, which used to
// be reallocated for every RPC.

// payloadPool recycles encode buffers between RPCs. A buffer is safe
// to recycle once its message has been written to the connection —
// neither writeMessage nor the codecs retain it. Put boxes the slice
// header (one ~24-byte allocation); what it saves is the payload
// body — up to 8n²+ bytes of matrix per request — so the trade is
// heavily in the pool's favour and the buffer can travel from the
// encoder to the writer as a plain []byte.
var payloadPool = sync.Pool{
	New: func() any { return make([]byte, 0, 4096) },
}

// getPayloadBuf returns an empty buffer with pooled capacity; encode
// with the append-style codecs and recycle the result with
// putPayloadBuf after the message hits the wire.
func getPayloadBuf() []byte { return payloadPool.Get().([]byte)[:0] }

// putPayloadBuf recycles a payload buffer for a later encode.
func putPayloadBuf(b []byte) {
	if cap(b) > 0 {
		payloadPool.Put(b[:0])
	}
}

func putFloat64(dst []byte, v float64) []byte {
	return putUint64(dst, math.Float64bits(v))
}

func getFloat64(src []byte) (float64, []byte, error) {
	u, rest, err := getUint64(src)
	return math.Float64frombits(u), rest, err
}

func putBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func getBool(src []byte) (bool, []byte, error) {
	if len(src) < 1 {
		return false, nil, fmt.Errorf("orwlnet: truncated bool")
	}
	return src[0] != 0, src[1:], nil
}

// putIntSlice encodes a possibly-nil []int (values may be negative,
// e.g. unbound control PUs). Nil and empty are distinguished: the
// count field holds 0 for nil and len+1 otherwise.
func putIntSlice(dst []byte, s []int) []byte {
	if s == nil {
		return putUint64(dst, 0)
	}
	dst = putUint64(dst, uint64(len(s)+1))
	for _, v := range s {
		dst = putUint64(dst, uint64(int64(v)))
	}
	return dst
}

func getIntSlice(src []byte) ([]int, []byte, error) {
	n, rest, err := getUint64(src)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, rest, nil
	}
	count := int(n - 1)
	if count < 0 || count > len(rest)/8 {
		return nil, nil, fmt.Errorf("orwlnet: truncated int slice (%d entries)", count)
	}
	out := make([]int, count)
	for i := range out {
		var u uint64
		u, rest, _ = getUint64(rest)
		out[i] = int(int64(u))
	}
	return out, rest, nil
}

// putMatrix encodes a possibly-nil communication matrix in the
// schema v1-v3 layout: presence byte, order, then the row-major
// float64 entries. Schema v4 payloads use putMatrixCompact /
// putMatrixFingerprint instead (placewire_v4.go), which replace the
// presence byte with a mode byte.
func putMatrix(dst []byte, m *comm.Matrix) []byte {
	if m == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return putMatrixDenseBody(dst, m)
}

// putMatrixDenseBody appends the dense matrix body (order, row-major
// float64 entries) without any presence/mode prefix — shared between
// the v1-v3 presence-byte layout and the v4 matDense mode.
func putMatrixDenseBody(dst []byte, m *comm.Matrix) []byte {
	n := m.Order()
	dst = putUint64(dst, uint64(n))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dst = putFloat64(dst, m.At(i, j))
		}
	}
	return dst
}

func getMatrix(src []byte) (*comm.Matrix, []byte, error) {
	present, rest, err := getBool(src)
	if err != nil || !present {
		return nil, rest, err
	}
	return getMatrixDenseBody(rest)
}

func getMatrixDenseBody(rest []byte) (*comm.Matrix, []byte, error) {
	n64, rest, err := getUint64(rest)
	if err != nil {
		return nil, nil, err
	}
	n := int(n64)
	if n < 0 || n > maxMessage/8 || len(rest) < 8*n*n {
		return nil, nil, fmt.Errorf("orwlnet: truncated matrix (order %d)", n)
	}
	m := comm.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var v float64
			v, rest, _ = getFloat64(rest)
			m.Set(i, j, v)
		}
	}
	return m, rest, nil
}

func putOptions(dst []byte, o placement.Options) []byte {
	dst = putBool(dst, o.ControlThreads)
	dst = putFloat64(dst, o.ControlVolumeFraction)
	dst = putUint64(dst, uint64(int64(o.ExhaustiveLimit)))
	return putUint64(dst, uint64(int64(o.RefineRounds)))
}

func getOptions(src []byte) (placement.Options, []byte, error) {
	var o placement.Options
	var err error
	if o.ControlThreads, src, err = getBool(src); err != nil {
		return o, nil, err
	}
	if o.ControlVolumeFraction, src, err = getFloat64(src); err != nil {
		return o, nil, err
	}
	var u uint64
	if u, src, err = getUint64(src); err != nil {
		return o, nil, err
	}
	o.ExhaustiveLimit = int(int64(u))
	if u, src, err = getUint64(src); err != nil {
		return o, nil, err
	}
	o.RefineRounds = int(int64(u))
	return o, src, nil
}

// assignment flag bits.
const (
	asgnUnbound        = 1 << 0
	asgnOversubscribed = 1 << 1
)

func putAssignment(dst []byte, a *placement.Assignment) []byte {
	if a == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = putString(dst, a.Strategy)
	var flags byte
	if a.Unbound {
		flags |= asgnUnbound
	}
	if a.Oversubscribed {
		flags |= asgnOversubscribed
	}
	dst = append(dst, flags, byte(a.Mode))
	dst = putIntSlice(dst, a.ComputePU)
	dst = putIntSlice(dst, a.ControlPU)
	return putIntSlice(dst, a.CoreOf)
}

func getAssignment(src []byte) (*placement.Assignment, []byte, error) {
	present, rest, err := getBool(src)
	if err != nil || !present {
		return nil, rest, err
	}
	a := &placement.Assignment{}
	if a.Strategy, rest, err = getString(rest); err != nil {
		return nil, nil, err
	}
	if len(rest) < 2 {
		return nil, nil, fmt.Errorf("orwlnet: truncated assignment")
	}
	flags := rest[0]
	a.Unbound = flags&asgnUnbound != 0
	a.Oversubscribed = flags&asgnOversubscribed != 0
	a.Mode = treematch.ControlMode(rest[1])
	rest = rest[2:]
	if a.ComputePU, rest, err = getIntSlice(rest); err != nil {
		return nil, nil, err
	}
	if a.ControlPU, rest, err = getIntSlice(rest); err != nil {
		return nil, nil, err
	}
	if a.CoreOf, rest, err = getIntSlice(rest); err != nil {
		return nil, nil, err
	}
	return a, rest, nil
}

func putCacheStats(dst []byte, st placement.CacheStats) []byte {
	dst = putUint64(dst, st.Hits)
	dst = putUint64(dst, st.Misses)
	return putUint64(dst, uint64(int64(st.Entries)))
}

func getCacheStats(src []byte) (placement.CacheStats, []byte, error) {
	var st placement.CacheStats
	var err error
	if st.Hits, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.Misses, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	var u uint64
	if u, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	st.Entries = int(int64(u))
	return st, src, nil
}

func putAdaptiveStats(dst []byte, st placement.AdaptiveStats) []byte {
	dst = putUint64(dst, st.Epochs)
	dst = putUint64(dst, st.DriftEpochs)
	dst = putUint64(dst, st.Remaps)
	dst = putUint64(dst, st.Rejected)
	return putFloat64(dst, st.LastDrift)
}

func getAdaptiveStats(src []byte) (placement.AdaptiveStats, []byte, error) {
	var st placement.AdaptiveStats
	var err error
	if st.Epochs, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.DriftEpochs, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.Remaps, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.Rejected, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.LastDrift, src, err = getFloat64(src); err != nil {
		return st, nil, err
	}
	return st, src, nil
}

// putWireVersion resolves and appends the leading schema-version byte.
// Zero resolves to the current placement.ServiceVersion; versions that
// do not fit the wire's single byte (or predate schema 1) are an
// explicit error instead of a silent truncation — byte(256) would
// encode as schema 0 and misdecode on every peer.
func putWireVersion(dst []byte, v int) ([]byte, int, error) {
	if v == 0 {
		v = placement.ServiceVersion
	}
	if v < 1 || v > 255 {
		return nil, 0, fmt.Errorf("orwlnet: placement schema version %d does not fit the wire's version byte (want 1..255)", v)
	}
	return append(dst, byte(v)), v, nil
}

// checkWireVersion validates the leading schema-version byte against
// what this build speaks.
func checkWireVersion(src []byte) (int, []byte, error) {
	return checkWireVersionMax(src, placement.ServiceVersion)
}

// checkWireVersionMax is checkWireVersion against an explicit ceiling
// — the decode path of a server that speaks at most max. Split out so
// cross-version tests can replay how an older build answers newer
// payloads.
func checkWireVersionMax(src []byte, max int) (int, []byte, error) {
	if len(src) < 1 {
		return 0, nil, fmt.Errorf("orwlnet: missing schema version")
	}
	v := int(src[0])
	if v == 0 || v > max {
		return 0, nil, fmt.Errorf("orwlnet: unsupported placement schema version %d (speak <= %d)",
			v, max)
	}
	return v, src[1:], nil
}

func encodePlaceRequest(dst []byte, req *placement.PlaceRequest) ([]byte, error) {
	return encodePlaceRequestOpt(dst, req, false)
}

// encodePlaceRequestOpt is encodePlaceRequest with the schema v4
// fingerprint-only option: when fpOnly is set (and the request
// resolves to schema >= 4 and carries a matrix), the matrix field is
// encoded as its comm.Fingerprint reference instead of a body — the
// caller asserts the serving peer has already seen the body and is
// prepared to resend it on an errUnknownMatrix answer.
func encodePlaceRequestOpt(dst []byte, req *placement.PlaceRequest, fpOnly bool) ([]byte, error) {
	dst, v, err := putWireVersion(dst, req.Version)
	if err != nil {
		return nil, err
	}
	if v >= 2 {
		dst = putString(dst, req.Machine)
	} else if req.Machine != "" {
		return nil, fmt.Errorf("orwlnet: machine selector %q needs schema v2, request pinned to v%d", req.Machine, v)
	}
	dst = putString(dst, req.Strategy)
	dst = putUint64(dst, uint64(int64(req.Entities)))
	dst = putOptions(dst, req.Options)
	if v >= 4 {
		if fpOnly && req.Matrix != nil {
			fp := req.MatrixFP
			if fp == 0 {
				fp = comm.Fingerprint(req.Matrix)
			}
			return putMatrixFingerprint(dst, fp, req.Matrix.Order()), nil
		}
		return putMatrixCompact(dst, req.Matrix), nil
	}
	return putMatrix(dst, req.Matrix), nil
}

func decodePlaceRequest(src []byte) (*placement.PlaceRequest, error) {
	req, _, err := decodePlaceRequestRest(src, nil)
	return req, err
}

// decodePlaceRequestCached is decodePlaceRequest on the serving side:
// decoded matrix bodies are remembered in mc and fingerprint-only
// references resolved from it.
func decodePlaceRequestCached(src []byte, mc *matrixCache) (*placement.PlaceRequest, error) {
	req, _, err := decodePlaceRequestRest(src, mc)
	return req, err
}

// decodePlaceRequestRest decodes one request and returns the
// remaining bytes, so the batch codec can walk a request list. mc is
// the serving side's seen-matrix table (nil on the client and in
// codec tests: bodies decode, fingerprint references error).
func decodePlaceRequestRest(src []byte, mc *matrixCache) (*placement.PlaceRequest, []byte, error) {
	v, rest, err := checkWireVersion(src)
	if err != nil {
		return nil, nil, err
	}
	req := &placement.PlaceRequest{Version: v}
	if v >= 2 {
		if req.Machine, rest, err = getString(rest); err != nil {
			return nil, nil, err
		}
	}
	if req.Strategy, rest, err = getString(rest); err != nil {
		return nil, nil, err
	}
	var u uint64
	if u, rest, err = getUint64(rest); err != nil {
		return nil, nil, err
	}
	req.Entities = int(int64(u))
	if req.Options, rest, err = getOptions(rest); err != nil {
		return nil, nil, err
	}
	if v >= 4 {
		if req.Matrix, req.MatrixFP, rest, err = getMatrixV4(rest, mc); err != nil {
			return nil, nil, err
		}
	} else if req.Matrix, rest, err = getMatrix(rest); err != nil {
		return nil, nil, err
	}
	return req, rest, nil
}

func encodePlaceResponse(dst []byte, resp *placement.PlaceResponse) ([]byte, error) {
	dst, v, err := putWireVersion(dst, resp.Version)
	if err != nil {
		return nil, err
	}
	if v >= 2 {
		dst = putString(dst, resp.Machine)
		dst = putString(dst, resp.Err)
	} else if resp.Err != "" {
		// A v1 response has no error slot; dropping it would turn a
		// failed batch slot into a silent empty success.
		return nil, fmt.Errorf("orwlnet: per-slot error needs schema v2, response pinned to v%d", v)
	}
	dst = putBool(dst, resp.CacheHit)
	dst = putFloat64(dst, resp.Cost)
	dst = putFloat64(dst, resp.CrossNUMAVolume)
	dst = putCacheStats(dst, resp.Cache)
	dst = putUint64(dst, uint64(resp.ElapsedNS))
	if v >= 4 {
		return putAssignmentV4(dst, resp.Assignment), nil
	}
	return putAssignment(dst, resp.Assignment), nil
}

func decodePlaceResponse(src []byte) (*placement.PlaceResponse, error) {
	resp, _, err := decodePlaceResponseRest(src)
	return resp, err
}

func decodePlaceResponseRest(src []byte) (*placement.PlaceResponse, []byte, error) {
	v, rest, err := checkWireVersion(src)
	if err != nil {
		return nil, nil, err
	}
	resp := &placement.PlaceResponse{Version: v}
	if v >= 2 {
		if resp.Machine, rest, err = getString(rest); err != nil {
			return nil, nil, err
		}
		if resp.Err, rest, err = getString(rest); err != nil {
			return nil, nil, err
		}
	}
	if resp.CacheHit, rest, err = getBool(rest); err != nil {
		return nil, nil, err
	}
	if resp.Cost, rest, err = getFloat64(rest); err != nil {
		return nil, nil, err
	}
	if resp.CrossNUMAVolume, rest, err = getFloat64(rest); err != nil {
		return nil, nil, err
	}
	if resp.Cache, rest, err = getCacheStats(rest); err != nil {
		return nil, nil, err
	}
	var u uint64
	if u, rest, err = getUint64(rest); err != nil {
		return nil, nil, err
	}
	resp.ElapsedNS = int64(u)
	if v >= 4 {
		if resp.Assignment, rest, err = getAssignmentV4(rest); err != nil {
			return nil, nil, err
		}
	} else if resp.Assignment, rest, err = getAssignment(rest); err != nil {
		return nil, nil, err
	}
	return resp, rest, nil
}

// minBatchSlotBytes bounds the slot count of a batch frame against
// its remaining payload. The smallest legal request slot (v1: version
// byte, empty strategy, entities, options, absent matrix) is 37
// bytes and the smallest response slot is larger; each reserved slot
// pointer costs 8 bytes, so any divisor comfortably above 8 keeps a
// hostile count field from amplifying a small frame into a huge
// backing-array allocation.
const minBatchSlotBytes = 32

// encodePlaceBatchRequest frames a request slice for opPlaceBatch:
// leading batch schema version, slot count, then every slot encoded
// exactly like a single request (own version byte included, so mixed
// v1/v2 slots route like their single-call counterparts). schema is
// the version the connected peer negotiated (0 = current): unpinned
// slots encode at it, so a newer client still frames payloads an
// older server decodes.
func encodePlaceBatchRequest(dst []byte, reqs []*placement.PlaceRequest, schema int) ([]byte, error) {
	return encodePlaceBatchRequestOpt(dst, reqs, schema, nil)
}

// encodePlaceBatchRequestOpt is encodePlaceBatchRequest with a
// per-slot fingerprint-only decision (nil = always send bodies): the
// pooled client sends references for matrices the server has seen and
// bodies for the rest, within one batch frame.
func encodePlaceBatchRequestOpt(dst []byte, reqs []*placement.PlaceRequest, schema int, fpOnly func(i int, req *placement.PlaceRequest) bool) ([]byte, error) {
	dst, v, err := putWireVersion(dst, schema)
	if err != nil {
		return nil, err
	}
	dst = putUint64(dst, uint64(len(reqs)))
	for i, req := range reqs {
		if req == nil {
			return nil, fmt.Errorf("orwlnet: nil request in batch slot %d", i)
		}
		if req.Version == 0 && v != placement.ServiceVersion {
			pinned := *req
			pinned.Version = v
			req = &pinned
		}
		if dst, err = encodePlaceRequestOpt(dst, req, fpOnly != nil && fpOnly(i, req)); err != nil {
			return nil, fmt.Errorf("orwlnet: batch slot %d: %w", i, err)
		}
	}
	return dst, nil
}

func decodePlaceBatchRequest(src []byte) ([]*placement.PlaceRequest, error) {
	return decodePlaceBatchRequestCached(src, nil)
}

// decodePlaceBatchRequestCached is the serving side's batch decode:
// matrix bodies are remembered in mc and fingerprint references
// resolved from it. One unknown fingerprint fails the whole frame
// (the error keeps the errUnknownMatrix substring), and the client
// answers by resending every slot with its body.
func decodePlaceBatchRequestCached(src []byte, mc *matrixCache) ([]*placement.PlaceRequest, error) {
	v, rest, err := checkWireVersion(src)
	if err != nil {
		return nil, err
	}
	if v < 2 {
		return nil, fmt.Errorf("orwlnet: batch placement needs schema >= 2, got %d", v)
	}
	n, rest, err := getUint64(rest)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(rest)/minBatchSlotBytes) {
		return nil, fmt.Errorf("orwlnet: absurd batch slot count %d", n)
	}
	reqs := make([]*placement.PlaceRequest, 0, n)
	for i := uint64(0); i < n; i++ {
		var req *placement.PlaceRequest
		if req, rest, err = decodePlaceRequestRest(rest, mc); err != nil {
			return nil, fmt.Errorf("orwlnet: batch slot %d: %w", i, err)
		}
		reqs = append(reqs, req)
	}
	return reqs, nil
}

// encodePlaceBatchResponse frames a response slice at the connection's
// negotiated schema (0 = current, >= 2 always: batch needs per-slot
// errors and machine names), so a v2 client decodes a v3 server's
// answer.
func encodePlaceBatchResponse(dst []byte, resps []*placement.PlaceResponse, schema int) ([]byte, error) {
	dst, v, err := putWireVersion(dst, schema)
	if err != nil {
		return nil, err
	}
	if v < 2 {
		return nil, fmt.Errorf("orwlnet: batch placement needs schema >= 2, got %d", v)
	}
	dst = putUint64(dst, uint64(len(resps)))
	for i, resp := range resps {
		if resp == nil {
			return nil, fmt.Errorf("orwlnet: nil response in batch slot %d", i)
		}
		// Batch slots always speak the negotiated batch schema.
		slot := *resp
		slot.Version = v
		if dst, err = encodePlaceResponse(dst, &slot); err != nil {
			return nil, fmt.Errorf("orwlnet: batch slot %d: %w", i, err)
		}
	}
	return dst, nil
}

func decodePlaceBatchResponse(src []byte) ([]*placement.PlaceResponse, error) {
	v, rest, err := checkWireVersion(src)
	if err != nil {
		return nil, err
	}
	if v < 2 {
		return nil, fmt.Errorf("orwlnet: batch placement needs schema >= 2, got %d", v)
	}
	n, rest, err := getUint64(rest)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(rest)/minBatchSlotBytes) {
		return nil, fmt.Errorf("orwlnet: absurd batch slot count %d", n)
	}
	resps := make([]*placement.PlaceResponse, 0, n)
	for i := uint64(0); i < n; i++ {
		var resp *placement.PlaceResponse
		if resp, rest, err = decodePlaceResponseRest(rest); err != nil {
			return nil, fmt.Errorf("orwlnet: batch slot %d: %w", i, err)
		}
		resps = append(resps, resp)
	}
	return resps, nil
}

// encodeServiceStats encodes a stats payload at the given schema
// version — the server answers with the schema the connection's
// negotiated protocol implies, so pre-fleet clients decode it.
func encodeServiceStats(dst []byte, st placement.ServiceStats, version int) ([]byte, error) {
	dst, v, err := putWireVersion(dst, version)
	if err != nil {
		return nil, err
	}
	dst = putString(dst, st.TopologyName)
	dst = putUint64(dst, st.TopologySignature)
	dst = putUint64(dst, st.Places)
	dst = putCacheStats(dst, st.Cache)
	dst = putUint64(dst, uint64(len(st.Strategies)))
	for _, s := range st.Strategies {
		dst = putString(dst, s)
	}
	if v >= 2 {
		dst = putUint64(dst, uint64(len(st.Machines)))
		for _, m := range st.Machines {
			dst = putString(dst, m)
		}
	}
	if v >= 3 {
		dst = putAdaptiveStats(dst, st.Adaptive)
	}
	if v >= 4 {
		dst = putNetStats(dst, st.Net)
	}
	if v >= 5 {
		dst = putFleetStats(dst, st.Fleet, v)
	}
	return dst, nil
}

func decodeServiceStats(src []byte) (placement.ServiceStats, error) {
	var st placement.ServiceStats
	v, rest, err := checkWireVersion(src)
	if err != nil {
		return st, err
	}
	if st.TopologyName, rest, err = getString(rest); err != nil {
		return st, err
	}
	if st.TopologySignature, rest, err = getUint64(rest); err != nil {
		return st, err
	}
	if st.Places, rest, err = getUint64(rest); err != nil {
		return st, err
	}
	if st.Cache, rest, err = getCacheStats(rest); err != nil {
		return st, err
	}
	if st.Strategies, rest, err = getStringList(rest); err != nil {
		return st, err
	}
	if v >= 2 {
		if st.Machines, rest, err = getStringList(rest); err != nil {
			return st, err
		}
	}
	if v >= 3 {
		if st.Adaptive, rest, err = getAdaptiveStats(rest); err != nil {
			return st, err
		}
	}
	if v >= 4 {
		if st.Net, rest, err = getNetStats(rest); err != nil {
			return st, err
		}
	}
	if v >= 5 {
		if st.Fleet, rest, err = getFleetStats(rest); err != nil {
			return st, err
		}
	}
	return st, nil
}

// getStringList decodes a uint64-count-prefixed string list. Each name
// needs at least its 2-byte length prefix; bounding by the remaining
// payload keeps a tiny hostile message from reserving a huge backing
// array.
func getStringList(src []byte) ([]string, []byte, error) {
	n, rest, err := getUint64(src)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)/2) {
		return nil, nil, fmt.Errorf("orwlnet: absurd string count %d", n)
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		var s string
		if s, rest, err = getString(rest); err != nil {
			return nil, nil, err
		}
		out = append(out, s)
	}
	return out, rest, nil
}
