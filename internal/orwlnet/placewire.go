package orwlnet

import (
	"fmt"
	"math"
	"sync"

	"orwlplace/internal/comm"
	"orwlplace/internal/placement"
	"orwlplace/internal/treematch"
)

// Binary codecs for the placement RPCs. All integers are
// little-endian; strings are uint16-length-prefixed (putString);
// optional values carry a presence byte. The leading byte of a
// request/response is its placement.ServiceVersion, so schema
// evolution is detected before any field is decoded.
//
// The encoders are append-style (dst ...[]byte) so hot paths reuse a
// pooled payload buffer: a placement request carries a full matrix
// (8n² bytes) and the response three assignment slices, which used to
// be reallocated for every RPC.

// payloadPool recycles encode buffers between RPCs. A buffer is safe
// to recycle once its message has been written to the connection —
// neither writeMessage nor the codecs retain it. Put boxes the slice
// header (one ~24-byte allocation); what it saves is the payload
// body — up to 8n²+ bytes of matrix per request — so the trade is
// heavily in the pool's favour and the buffer can travel from the
// encoder to the writer as a plain []byte.
var payloadPool = sync.Pool{
	New: func() any { return make([]byte, 0, 4096) },
}

// getPayloadBuf returns an empty buffer with pooled capacity; encode
// with the append-style codecs and recycle the result with
// putPayloadBuf after the message hits the wire.
func getPayloadBuf() []byte { return payloadPool.Get().([]byte)[:0] }

// putPayloadBuf recycles a payload buffer for a later encode.
func putPayloadBuf(b []byte) {
	if cap(b) > 0 {
		payloadPool.Put(b[:0])
	}
}

func putFloat64(dst []byte, v float64) []byte {
	return putUint64(dst, math.Float64bits(v))
}

func getFloat64(src []byte) (float64, []byte, error) {
	u, rest, err := getUint64(src)
	return math.Float64frombits(u), rest, err
}

func putBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func getBool(src []byte) (bool, []byte, error) {
	if len(src) < 1 {
		return false, nil, fmt.Errorf("orwlnet: truncated bool")
	}
	return src[0] != 0, src[1:], nil
}

// putIntSlice encodes a possibly-nil []int (values may be negative,
// e.g. unbound control PUs). Nil and empty are distinguished: the
// count field holds 0 for nil and len+1 otherwise.
func putIntSlice(dst []byte, s []int) []byte {
	if s == nil {
		return putUint64(dst, 0)
	}
	dst = putUint64(dst, uint64(len(s)+1))
	for _, v := range s {
		dst = putUint64(dst, uint64(int64(v)))
	}
	return dst
}

func getIntSlice(src []byte) ([]int, []byte, error) {
	n, rest, err := getUint64(src)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, rest, nil
	}
	count := int(n - 1)
	if count < 0 || count > len(rest)/8 {
		return nil, nil, fmt.Errorf("orwlnet: truncated int slice (%d entries)", count)
	}
	out := make([]int, count)
	for i := range out {
		var u uint64
		u, rest, _ = getUint64(rest)
		out[i] = int(int64(u))
	}
	return out, rest, nil
}

// putMatrix encodes a possibly-nil communication matrix: presence
// byte, order, then the row-major float64 entries.
func putMatrix(dst []byte, m *comm.Matrix) []byte {
	if m == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	n := m.Order()
	dst = putUint64(dst, uint64(n))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dst = putFloat64(dst, m.At(i, j))
		}
	}
	return dst
}

func getMatrix(src []byte) (*comm.Matrix, []byte, error) {
	present, rest, err := getBool(src)
	if err != nil || !present {
		return nil, rest, err
	}
	n64, rest, err := getUint64(rest)
	if err != nil {
		return nil, nil, err
	}
	n := int(n64)
	if n < 0 || n > maxMessage/8 || len(rest) < 8*n*n {
		return nil, nil, fmt.Errorf("orwlnet: truncated matrix (order %d)", n)
	}
	m := comm.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var v float64
			v, rest, _ = getFloat64(rest)
			m.Set(i, j, v)
		}
	}
	return m, rest, nil
}

func putOptions(dst []byte, o placement.Options) []byte {
	dst = putBool(dst, o.ControlThreads)
	dst = putFloat64(dst, o.ControlVolumeFraction)
	dst = putUint64(dst, uint64(int64(o.ExhaustiveLimit)))
	return putUint64(dst, uint64(int64(o.RefineRounds)))
}

func getOptions(src []byte) (placement.Options, []byte, error) {
	var o placement.Options
	var err error
	if o.ControlThreads, src, err = getBool(src); err != nil {
		return o, nil, err
	}
	if o.ControlVolumeFraction, src, err = getFloat64(src); err != nil {
		return o, nil, err
	}
	var u uint64
	if u, src, err = getUint64(src); err != nil {
		return o, nil, err
	}
	o.ExhaustiveLimit = int(int64(u))
	if u, src, err = getUint64(src); err != nil {
		return o, nil, err
	}
	o.RefineRounds = int(int64(u))
	return o, src, nil
}

// assignment flag bits.
const (
	asgnUnbound        = 1 << 0
	asgnOversubscribed = 1 << 1
)

func putAssignment(dst []byte, a *placement.Assignment) []byte {
	if a == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = putString(dst, a.Strategy)
	var flags byte
	if a.Unbound {
		flags |= asgnUnbound
	}
	if a.Oversubscribed {
		flags |= asgnOversubscribed
	}
	dst = append(dst, flags, byte(a.Mode))
	dst = putIntSlice(dst, a.ComputePU)
	dst = putIntSlice(dst, a.ControlPU)
	return putIntSlice(dst, a.CoreOf)
}

func getAssignment(src []byte) (*placement.Assignment, []byte, error) {
	present, rest, err := getBool(src)
	if err != nil || !present {
		return nil, rest, err
	}
	a := &placement.Assignment{}
	if a.Strategy, rest, err = getString(rest); err != nil {
		return nil, nil, err
	}
	if len(rest) < 2 {
		return nil, nil, fmt.Errorf("orwlnet: truncated assignment")
	}
	flags := rest[0]
	a.Unbound = flags&asgnUnbound != 0
	a.Oversubscribed = flags&asgnOversubscribed != 0
	a.Mode = treematch.ControlMode(rest[1])
	rest = rest[2:]
	if a.ComputePU, rest, err = getIntSlice(rest); err != nil {
		return nil, nil, err
	}
	if a.ControlPU, rest, err = getIntSlice(rest); err != nil {
		return nil, nil, err
	}
	if a.CoreOf, rest, err = getIntSlice(rest); err != nil {
		return nil, nil, err
	}
	return a, rest, nil
}

func putCacheStats(dst []byte, st placement.CacheStats) []byte {
	dst = putUint64(dst, st.Hits)
	dst = putUint64(dst, st.Misses)
	return putUint64(dst, uint64(int64(st.Entries)))
}

func getCacheStats(src []byte) (placement.CacheStats, []byte, error) {
	var st placement.CacheStats
	var err error
	if st.Hits, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	if st.Misses, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	var u uint64
	if u, src, err = getUint64(src); err != nil {
		return st, nil, err
	}
	st.Entries = int(int64(u))
	return st, src, nil
}

// checkWireVersion validates the leading schema-version byte.
func checkWireVersion(src []byte) (int, []byte, error) {
	if len(src) < 1 {
		return 0, nil, fmt.Errorf("orwlnet: missing schema version")
	}
	v := int(src[0])
	if v == 0 || v > placement.ServiceVersion {
		return 0, nil, fmt.Errorf("orwlnet: unsupported placement schema version %d (speak <= %d)",
			v, placement.ServiceVersion)
	}
	return v, src[1:], nil
}

func encodePlaceRequest(dst []byte, req *placement.PlaceRequest) []byte {
	v := req.Version
	if v == 0 {
		v = placement.ServiceVersion
	}
	dst = append(dst, byte(v))
	dst = putString(dst, req.Strategy)
	dst = putUint64(dst, uint64(int64(req.Entities)))
	dst = putOptions(dst, req.Options)
	return putMatrix(dst, req.Matrix)
}

func decodePlaceRequest(src []byte) (*placement.PlaceRequest, error) {
	v, rest, err := checkWireVersion(src)
	if err != nil {
		return nil, err
	}
	req := &placement.PlaceRequest{Version: v}
	if req.Strategy, rest, err = getString(rest); err != nil {
		return nil, err
	}
	var u uint64
	if u, rest, err = getUint64(rest); err != nil {
		return nil, err
	}
	req.Entities = int(int64(u))
	if req.Options, rest, err = getOptions(rest); err != nil {
		return nil, err
	}
	if req.Matrix, _, err = getMatrix(rest); err != nil {
		return nil, err
	}
	return req, nil
}

func encodePlaceResponse(dst []byte, resp *placement.PlaceResponse) []byte {
	v := resp.Version
	if v == 0 {
		v = placement.ServiceVersion
	}
	dst = append(dst, byte(v))
	dst = putBool(dst, resp.CacheHit)
	dst = putFloat64(dst, resp.Cost)
	dst = putFloat64(dst, resp.CrossNUMAVolume)
	dst = putCacheStats(dst, resp.Cache)
	dst = putUint64(dst, uint64(resp.ElapsedNS))
	return putAssignment(dst, resp.Assignment)
}

func decodePlaceResponse(src []byte) (*placement.PlaceResponse, error) {
	v, rest, err := checkWireVersion(src)
	if err != nil {
		return nil, err
	}
	resp := &placement.PlaceResponse{Version: v}
	if resp.CacheHit, rest, err = getBool(rest); err != nil {
		return nil, err
	}
	if resp.Cost, rest, err = getFloat64(rest); err != nil {
		return nil, err
	}
	if resp.CrossNUMAVolume, rest, err = getFloat64(rest); err != nil {
		return nil, err
	}
	if resp.Cache, rest, err = getCacheStats(rest); err != nil {
		return nil, err
	}
	var u uint64
	if u, rest, err = getUint64(rest); err != nil {
		return nil, err
	}
	resp.ElapsedNS = int64(u)
	if resp.Assignment, _, err = getAssignment(rest); err != nil {
		return nil, err
	}
	return resp, nil
}

func encodeServiceStats(dst []byte, st placement.ServiceStats) []byte {
	dst = append(dst, byte(placement.ServiceVersion))
	dst = putString(dst, st.TopologyName)
	dst = putUint64(dst, st.TopologySignature)
	dst = putUint64(dst, st.Places)
	dst = putCacheStats(dst, st.Cache)
	dst = putUint64(dst, uint64(len(st.Strategies)))
	for _, s := range st.Strategies {
		dst = putString(dst, s)
	}
	return dst
}

func decodeServiceStats(src []byte) (placement.ServiceStats, error) {
	var st placement.ServiceStats
	_, rest, err := checkWireVersion(src)
	if err != nil {
		return st, err
	}
	if st.TopologyName, rest, err = getString(rest); err != nil {
		return st, err
	}
	if st.TopologySignature, rest, err = getUint64(rest); err != nil {
		return st, err
	}
	if st.Places, rest, err = getUint64(rest); err != nil {
		return st, err
	}
	if st.Cache, rest, err = getCacheStats(rest); err != nil {
		return st, err
	}
	var n uint64
	if n, rest, err = getUint64(rest); err != nil {
		return st, err
	}
	// Each name needs at least its 2-byte length prefix; bounding by the
	// remaining payload keeps a tiny hostile message from reserving a
	// huge backing array.
	if n > uint64(len(rest)/2) {
		return st, fmt.Errorf("orwlnet: absurd strategy count %d", n)
	}
	st.Strategies = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		var s string
		if s, rest, err = getString(rest); err != nil {
			return st, err
		}
		st.Strategies = append(st.Strategies, s)
	}
	return st, nil
}
