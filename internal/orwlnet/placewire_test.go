package orwlnet

import (
	"reflect"
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/placement"
	"orwlplace/internal/treematch"
)

func chainMatrix(n int) *comm.Matrix {
	m := comm.NewMatrix(n)
	for i := 1; i < n; i++ {
		m.AddSym(i-1, i, float64(i*1000))
	}
	return m
}

// mustEncode unwraps an error-returning codec in tests that feed it
// well-formed values.
func mustEncode(b []byte, err error) []byte {
	if err != nil {
		panic(err)
	}
	return b
}

func TestPlaceRequestRoundTrip(t *testing.T) {
	cases := []*placement.PlaceRequest{
		{
			Strategy: "treematch",
			Matrix:   chainMatrix(5),
			Options: placement.Options{
				ControlThreads:        true,
				ControlVolumeFraction: 0.25,
				ExhaustiveLimit:       9,
				RefineRounds:          3,
			},
		},
		{Strategy: "scatter", Entities: 7}, // matrix-oblivious: nil matrix
		{Version: placement.ServiceVersion, Strategy: "compact", Entities: 1},
		{Machine: "smp20e7", Strategy: "treematch", Matrix: chainMatrix(3)},
	}
	for _, req := range cases {
		got, err := decodePlaceRequest(mustEncode(encodePlaceRequest(nil, req)))
		if err != nil {
			t.Fatalf("decode(%+v): %v", req, err)
		}
		want := *req
		if want.Version == 0 {
			want.Version = placement.ServiceVersion
		}
		if got.Strategy != want.Strategy || got.Entities != want.Entities ||
			got.Version != want.Version || got.Options != want.Options ||
			got.Machine != want.Machine {
			t.Errorf("round trip mangled scalars: got %+v, want %+v", got, want)
		}
		if (got.Matrix == nil) != (req.Matrix == nil) {
			t.Fatalf("matrix presence lost: got %v, sent %v", got.Matrix, req.Matrix)
		}
		if req.Matrix != nil && got.Matrix.String() != req.Matrix.String() {
			t.Errorf("matrix mangled:\ngot\n%s\nwant\n%s", got.Matrix, req.Matrix)
		}
	}
}

func TestPlaceResponseRoundTrip(t *testing.T) {
	cases := []*placement.PlaceResponse{
		{
			CacheHit:        true,
			Cost:            1234.5,
			CrossNUMAVolume: 88,
			Cache:           placement.CacheStats{Hits: 3, Misses: 2, Entries: 2},
			ElapsedNS:       987654,
			Assignment: &placement.Assignment{
				Strategy:       "treematch",
				ComputePU:      []int{0, 2, 4, 6},
				ControlPU:      []int{1, 3, -1, -1},
				Mode:           treematch.ControlMode(1),
				Oversubscribed: true,
				CoreOf:         []int{0, 1, 2, 3},
			},
		},
		{
			// Unbound baseline: no PU slices at all.
			Assignment: &placement.Assignment{Strategy: "none", Unbound: true},
		},
		{
			// Empty-but-non-nil slice must survive as empty, not nil.
			Assignment: &placement.Assignment{Strategy: "x", ComputePU: []int{}},
		},
		{
			// A failed batch slot: machine + error, no assignment.
			Machine: "tinyht",
			Err:     "placement: unknown strategy \"nope\"",
		},
	}
	for _, resp := range cases {
		got, err := decodePlaceResponse(mustEncode(encodePlaceResponse(nil, resp)))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		want := *resp
		if want.Version == 0 {
			want.Version = placement.ServiceVersion
		}
		if got.CacheHit != want.CacheHit || got.Cost != want.Cost ||
			got.CrossNUMAVolume != want.CrossNUMAVolume || got.Cache != want.Cache ||
			got.ElapsedNS != want.ElapsedNS || got.Version != want.Version ||
			got.Machine != want.Machine || got.Err != want.Err {
			t.Errorf("scalars mangled: got %+v, want %+v", got, want)
		}
		if !reflect.DeepEqual(got.Assignment, resp.Assignment) {
			t.Errorf("assignment mangled:\ngot  %+v\nwant %+v", got.Assignment, resp.Assignment)
		}
	}
}

func TestServiceStatsRoundTrip(t *testing.T) {
	st := placement.ServiceStats{
		TopologyName:      "TinyHT",
		TopologySignature: 0xdeadbeefcafe,
		Strategies:        []string{"treematch", "compact", "none"},
		Machines:          []string{"tinyht", "smp20e7"},
		Places:            42,
		Cache:             placement.CacheStats{Hits: 40, Misses: 2, Entries: 2},
	}
	got, err := decodeServiceStats(mustEncode(encodeServiceStats(nil, st, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Errorf("round trip mangled stats:\ngot  %+v\nwant %+v", got, st)
	}

	// A v1 encoding is what pre-fleet clients receive: same scalars,
	// no machine listing.
	gotV1, err := decodeServiceStats(mustEncode(encodeServiceStats(nil, st, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if gotV1.Machines != nil {
		t.Errorf("v1 stats carried a machine listing: %v", gotV1.Machines)
	}
	if gotV1.TopologyName != st.TopologyName || gotV1.Places != st.Places || !reflect.DeepEqual(gotV1.Strategies, st.Strategies) {
		t.Errorf("v1 stats mangled: %+v", gotV1)
	}
}

func TestPlaceBatchRoundTrip(t *testing.T) {
	reqs := []*placement.PlaceRequest{
		{Machine: "a", Strategy: "treematch", Matrix: chainMatrix(4)},
		{Strategy: "scatter", Entities: 3},
		{Version: 1, Strategy: "compact", Entities: 2}, // a v1 slot inside a batch
	}
	gotReqs, err := decodePlaceBatchRequest(mustEncode(encodePlaceBatchRequest(nil, reqs, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotReqs) != len(reqs) {
		t.Fatalf("decoded %d slots, want %d", len(gotReqs), len(reqs))
	}
	if gotReqs[0].Machine != "a" || gotReqs[1].Machine != "" || gotReqs[2].Version != 1 {
		t.Errorf("batch slots mangled: %+v %+v %+v", gotReqs[0], gotReqs[1], gotReqs[2])
	}

	resps := []*placement.PlaceResponse{
		{Machine: "a", Assignment: &placement.Assignment{Strategy: "treematch", ComputePU: []int{0, 1}}},
		{Machine: "b", Err: "boom"},
	}
	gotResps, err := decodePlaceBatchResponse(mustEncode(encodePlaceBatchResponse(nil, resps, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotResps) != 2 || gotResps[0].Machine != "a" || gotResps[1].Err != "boom" || gotResps[1].Assignment != nil {
		t.Errorf("batch responses mangled: %+v", gotResps)
	}

	// Slot errors must not void the frame: slot counts are positional.
	if _, err := encodePlaceBatchRequest(nil, []*placement.PlaceRequest{nil}, 0); err == nil {
		t.Error("nil batch slot encoded")
	}
}

func TestPlaceWireVersionRejected(t *testing.T) {
	req := mustEncode(encodePlaceRequest(nil, &placement.PlaceRequest{Strategy: "treematch", Entities: 2}))
	req[0] = placement.ServiceVersion + 1
	if _, err := decodePlaceRequest(req); err == nil {
		t.Error("future schema version decoded")
	}
	req[0] = 0
	if _, err := decodePlaceRequest(req); err == nil {
		t.Error("zero schema version decoded")
	}
	if _, err := decodePlaceRequest(nil); err == nil {
		t.Error("empty payload decoded")
	}
}

// TestPlaceWireVersionByteGuard: schema versions are one wire byte;
// encoding a version that does not fit (or predates schema 1) must be
// an explicit error, not a silent byte(v) truncation that would
// misdecode as an unrelated version.
func TestPlaceWireVersionByteGuard(t *testing.T) {
	for _, v := range []int{-1, 256, 300, 1 << 20} {
		if _, err := encodePlaceRequest(nil, &placement.PlaceRequest{Version: v, Strategy: "treematch"}); err == nil {
			t.Errorf("request version %d encoded despite not fitting the version byte", v)
		}
		if _, err := encodePlaceResponse(nil, &placement.PlaceResponse{Version: v}); err == nil {
			t.Errorf("response version %d encoded despite not fitting the version byte", v)
		}
		if _, err := encodeServiceStats(nil, placement.ServiceStats{}, v); err == nil {
			t.Errorf("stats version %d encoded despite not fitting the version byte", v)
		}
	}
	// A v1-pinned request cannot carry v2-only fields silently.
	if _, err := encodePlaceRequest(nil, &placement.PlaceRequest{Version: 1, Machine: "tinyht", Strategy: "treematch"}); err == nil {
		t.Error("machine selector encoded into a v1 request")
	}
	if _, err := encodePlaceResponse(nil, &placement.PlaceResponse{Version: 1, Err: "boom"}); err == nil {
		t.Error("slot error encoded into a v1 response")
	}
}

// TestCrossVersionRequests replays both directions of the v1↔v2 skew:
// an old client's v1 request decodes on this build and routes to the
// default machine, and a new client's v2 request is refused by a
// server that speaks at most schema v1 — loudly, at the version byte,
// before any field is misread.
func TestCrossVersionRequests(t *testing.T) {
	// Old client → new server: the v1 encoding (no machine field) must
	// decode and leave Machine empty, which routes to the default.
	v1 := mustEncode(encodePlaceRequest(nil, &placement.PlaceRequest{Version: 1, Strategy: "treematch", Matrix: chainMatrix(3)}))
	req, err := decodePlaceRequest(v1)
	if err != nil {
		t.Fatalf("v1 request refused by the v2 decoder: %v", err)
	}
	if req.Version != 1 || req.Machine != "" {
		t.Errorf("v1 request decoded as %+v, want version 1 with empty machine", req)
	}

	// New client → old server: replay an old build's decode (schema
	// ceiling 1) against a v2 payload.
	v2 := mustEncode(encodePlaceRequest(nil, &placement.PlaceRequest{Machine: "smp20e7", Strategy: "treematch", Entities: 4}))
	if _, _, err := checkWireVersionMax(v2, 1); err == nil {
		t.Error("old server accepted a v2 payload")
	}

	// And the v1 response an old server would send decodes here.
	v1resp := mustEncode(encodePlaceResponse(nil, &placement.PlaceResponse{Version: 1, CacheHit: true}))
	resp, err := decodePlaceResponse(v1resp)
	if err != nil || resp.Version != 1 || !resp.CacheHit {
		t.Errorf("v1 response decode: %+v, %v", resp, err)
	}
}

func TestPlaceWireTruncationRejected(t *testing.T) {
	full := mustEncode(encodePlaceResponse(nil, &placement.PlaceResponse{
		Assignment: &placement.Assignment{Strategy: "treematch", ComputePU: []int{1, 2, 3}},
	}))
	for cut := 1; cut < len(full); cut++ {
		if _, err := decodePlaceResponse(full[:cut]); err == nil {
			// Some prefixes decode cleanly when the cut lands exactly on
			// the optional assignment boundary; everything else must
			// error rather than panic or fabricate fields.
			if cut < len(full)-1 && full[cut-1] != 0 {
				continue
			}
		}
	}
	reqFull := mustEncode(encodePlaceRequest(nil, &placement.PlaceRequest{Strategy: "treematch", Matrix: chainMatrix(3)}))
	for cut := 1; cut < len(reqFull); cut++ {
		// Must never panic; errors are expected for most cuts.
		_, _ = decodePlaceRequest(reqFull[:cut])
	}
	statsFull := mustEncode(encodeServiceStats(nil, placement.ServiceStats{TopologyName: "x", Strategies: []string{"a", "b"}, Machines: []string{"m"}}, 0))
	for cut := 1; cut < len(statsFull); cut++ {
		_, _ = decodeServiceStats(statsFull[:cut])
	}
	batchFull := mustEncode(encodePlaceBatchRequest(nil, []*placement.PlaceRequest{
		{Strategy: "treematch", Matrix: chainMatrix(3)},
		{Machine: "m", Strategy: "scatter", Entities: 2},
	}, 0))
	for cut := 1; cut < len(batchFull); cut++ {
		_, _ = decodePlaceBatchRequest(batchFull[:cut])
	}
}

func TestIntSliceNilVsEmpty(t *testing.T) {
	for _, s := range [][]int{nil, {}, {0}, {-1, 5, 1 << 40}} {
		got, rest, err := getIntSlice(putIntSlice(nil, s))
		if err != nil {
			t.Fatalf("round trip of %v: %v", s, err)
		}
		if len(rest) != 0 {
			t.Errorf("trailing bytes after %v", s)
		}
		if !reflect.DeepEqual(got, s) {
			t.Errorf("round trip of %v gave %v", s, got)
		}
	}
}
