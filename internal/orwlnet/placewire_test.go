package orwlnet

import (
	"reflect"
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/placement"
	"orwlplace/internal/treematch"
)

func chainMatrix(n int) *comm.Matrix {
	m := comm.NewMatrix(n)
	for i := 1; i < n; i++ {
		m.AddSym(i-1, i, float64(i*1000))
	}
	return m
}

func TestPlaceRequestRoundTrip(t *testing.T) {
	cases := []*placement.PlaceRequest{
		{
			Strategy: "treematch",
			Matrix:   chainMatrix(5),
			Options: placement.Options{
				ControlThreads:        true,
				ControlVolumeFraction: 0.25,
				ExhaustiveLimit:       9,
				RefineRounds:          3,
			},
		},
		{Strategy: "scatter", Entities: 7}, // matrix-oblivious: nil matrix
		{Version: placement.ServiceVersion, Strategy: "compact", Entities: 1},
	}
	for _, req := range cases {
		got, err := decodePlaceRequest(encodePlaceRequest(nil, req))
		if err != nil {
			t.Fatalf("decode(%+v): %v", req, err)
		}
		want := *req
		if want.Version == 0 {
			want.Version = placement.ServiceVersion
		}
		if got.Strategy != want.Strategy || got.Entities != want.Entities ||
			got.Version != want.Version || got.Options != want.Options {
			t.Errorf("round trip mangled scalars: got %+v, want %+v", got, want)
		}
		if (got.Matrix == nil) != (req.Matrix == nil) {
			t.Fatalf("matrix presence lost: got %v, sent %v", got.Matrix, req.Matrix)
		}
		if req.Matrix != nil && got.Matrix.String() != req.Matrix.String() {
			t.Errorf("matrix mangled:\ngot\n%s\nwant\n%s", got.Matrix, req.Matrix)
		}
	}
}

func TestPlaceResponseRoundTrip(t *testing.T) {
	cases := []*placement.PlaceResponse{
		{
			CacheHit:        true,
			Cost:            1234.5,
			CrossNUMAVolume: 88,
			Cache:           placement.CacheStats{Hits: 3, Misses: 2, Entries: 2},
			ElapsedNS:       987654,
			Assignment: &placement.Assignment{
				Strategy:       "treematch",
				ComputePU:      []int{0, 2, 4, 6},
				ControlPU:      []int{1, 3, -1, -1},
				Mode:           treematch.ControlMode(1),
				Oversubscribed: true,
				CoreOf:         []int{0, 1, 2, 3},
			},
		},
		{
			// Unbound baseline: no PU slices at all.
			Assignment: &placement.Assignment{Strategy: "none", Unbound: true},
		},
		{
			// Empty-but-non-nil slice must survive as empty, not nil.
			Assignment: &placement.Assignment{Strategy: "x", ComputePU: []int{}},
		},
	}
	for _, resp := range cases {
		got, err := decodePlaceResponse(encodePlaceResponse(nil, resp))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		want := *resp
		if want.Version == 0 {
			want.Version = placement.ServiceVersion
		}
		if got.CacheHit != want.CacheHit || got.Cost != want.Cost ||
			got.CrossNUMAVolume != want.CrossNUMAVolume || got.Cache != want.Cache ||
			got.ElapsedNS != want.ElapsedNS || got.Version != want.Version {
			t.Errorf("scalars mangled: got %+v, want %+v", got, want)
		}
		if !reflect.DeepEqual(got.Assignment, resp.Assignment) {
			t.Errorf("assignment mangled:\ngot  %+v\nwant %+v", got.Assignment, resp.Assignment)
		}
	}
}

func TestServiceStatsRoundTrip(t *testing.T) {
	st := placement.ServiceStats{
		TopologyName:      "TinyHT",
		TopologySignature: 0xdeadbeefcafe,
		Strategies:        []string{"treematch", "compact", "none"},
		Places:            42,
		Cache:             placement.CacheStats{Hits: 40, Misses: 2, Entries: 2},
	}
	got, err := decodeServiceStats(encodeServiceStats(nil, st))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Errorf("round trip mangled stats:\ngot  %+v\nwant %+v", got, st)
	}
}

func TestPlaceWireVersionRejected(t *testing.T) {
	req := encodePlaceRequest(nil, &placement.PlaceRequest{Strategy: "treematch", Entities: 2})
	req[0] = placement.ServiceVersion + 1
	if _, err := decodePlaceRequest(req); err == nil {
		t.Error("future schema version decoded")
	}
	req[0] = 0
	if _, err := decodePlaceRequest(req); err == nil {
		t.Error("zero schema version decoded")
	}
	if _, err := decodePlaceRequest(nil); err == nil {
		t.Error("empty payload decoded")
	}
}

func TestPlaceWireTruncationRejected(t *testing.T) {
	full := encodePlaceResponse(nil, &placement.PlaceResponse{
		Assignment: &placement.Assignment{Strategy: "treematch", ComputePU: []int{1, 2, 3}},
	})
	for cut := 1; cut < len(full); cut++ {
		if _, err := decodePlaceResponse(full[:cut]); err == nil {
			// Some prefixes decode cleanly when the cut lands exactly on
			// the optional assignment boundary; everything else must
			// error rather than panic or fabricate fields.
			if cut < len(full)-1 && full[cut-1] != 0 {
				continue
			}
		}
	}
	reqFull := encodePlaceRequest(nil, &placement.PlaceRequest{Strategy: "treematch", Matrix: chainMatrix(3)})
	for cut := 1; cut < len(reqFull); cut++ {
		// Must never panic; errors are expected for most cuts.
		_, _ = decodePlaceRequest(reqFull[:cut])
	}
	statsFull := encodeServiceStats(nil, placement.ServiceStats{TopologyName: "x", Strategies: []string{"a", "b"}})
	for cut := 1; cut < len(statsFull); cut++ {
		_, _ = decodeServiceStats(statsFull[:cut])
	}
}

func TestIntSliceNilVsEmpty(t *testing.T) {
	for _, s := range [][]int{nil, {}, {0}, {-1, 5, 1 << 40}} {
		got, rest, err := getIntSlice(putIntSlice(nil, s))
		if err != nil {
			t.Fatalf("round trip of %v: %v", s, err)
		}
		if len(rest) != 0 {
			t.Errorf("trailing bytes after %v", s)
		}
		if !reflect.DeepEqual(got, s) {
			t.Errorf("round trip of %v gave %v", s, got)
		}
	}
}
