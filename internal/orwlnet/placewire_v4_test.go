package orwlnet

import (
	"context"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"orwlplace/internal/comm"
	"orwlplace/internal/orwl"
	"orwlplace/internal/placement"
)

// Schema v4 is the high-throughput transport: pipelined frames, pooled
// connections, sparse/fingerprint matrix payloads, varint responses,
// NetStats, and the server-side idle reaper. These tests cover the new
// codecs bit-exactly, the fingerprint miss/resend protocol over a live
// server, and both cross-version directions.

// bitsEqual compares two matrices cell by cell on raw float64 bits —
// the equality the sparse codec must preserve (NaNs and signed zeros
// included), since both wire peers fingerprint the decoded bits.
func bitsEqual(a, b *comm.Matrix) bool {
	if a.Order() != b.Order() {
		return false
	}
	n := a.Order()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Float64bits(a.At(i, j)) != math.Float64bits(b.At(i, j)) {
				return false
			}
		}
	}
	return true
}

func TestSparseMatrixRoundTrip(t *testing.T) {
	awkward := comm.NewMatrix(4)
	awkward.Set(0, 1, math.NaN())
	awkward.Set(1, 0, math.Copysign(0, -1)) // -0: nonzero bits, zero value
	awkward.Set(2, 3, 65536)
	awkward.Set(3, 3, 65536) // equal-value cells in separate runs
	cases := []*comm.Matrix{
		comm.Ring(16, 1<<20, true),
		chainMatrix(5),
		comm.NewMatrix(3), // all-zero: zero runs
		comm.NewMatrix(1),
		awkward,
	}
	for i, m := range cases {
		runs, size := sparseSize(m)
		enc := appendSparseBody(nil, m, runs)
		if len(enc) != size {
			t.Errorf("case %d: sparseSize predicted %d bytes, encoder wrote %d", i, size, len(enc))
		}
		got, rest, err := getSparseBody(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if len(rest) != 0 {
			t.Errorf("case %d: %d trailing bytes", i, len(rest))
		}
		if !bitsEqual(m, got) {
			t.Errorf("case %d: sparse round trip not bit-exact", i)
		}
		if comm.Fingerprint(m) != comm.Fingerprint(got) {
			t.Errorf("case %d: fingerprint drifted across the codec", i)
		}
	}
}

func TestMatrixCompactChoosesEncoding(t *testing.T) {
	// A ring is overwhelmingly zero: sparse must win.
	ring := comm.Ring(64, 1<<20, true)
	enc := putMatrixCompact(nil, ring)
	if enc[0] != matSparse {
		t.Errorf("ring encoded as mode %d, want sparse", enc[0])
	}
	denseSize := 1 + 8 + 8*64*64
	if len(enc) >= denseSize {
		t.Errorf("sparse ring took %d bytes, dense is %d", len(enc), denseSize)
	}
	// A matrix of full-entropy values (all mantissa bytes populated, so
	// varints run their full 10 bytes) costs more sparse than dense.
	full := comm.NewMatrix(8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			full.Set(i, j, math.Sqrt(float64(i*8+j+2)))
		}
	}
	if enc := putMatrixCompact(nil, full); enc[0] != matDense {
		t.Errorf("dense matrix encoded as mode %d, want dense", enc[0])
	}
	// Either mode decodes back bit-exactly through the v4 field decoder.
	for _, m := range []*comm.Matrix{ring, full, nil} {
		got, fp, rest, err := getMatrixV4(putMatrixCompact(nil, m), nil)
		if err != nil || len(rest) != 0 {
			t.Fatalf("decode: %v (%d trailing)", err, len(rest))
		}
		if m == nil {
			if got != nil {
				t.Error("absent matrix decoded non-nil")
			}
			continue
		}
		if !bitsEqual(m, got) {
			t.Error("compact round trip not bit-exact")
		}
		if fp != 0 {
			t.Error("nil-cache decode invented a fingerprint")
		}
	}
}

func TestSparseDecodeRejectsHostile(t *testing.T) {
	cases := map[string][]byte{
		"huge order":    putUvarint(nil, 1<<40),
		"absurd runs":   putUvarint(putUvarint(nil, 4), 1<<30),
		"zero run len":  putUvarint(putUvarint(putUvarint(putUvarint(putUvarint(nil, 4), 1), 0), 0), 7),
		"overrun cells": putUvarint(putUvarint(putUvarint(putUvarint(putUvarint(nil, 2), 1), 0), 40), 7),
		"truncated":     putUvarint(putUvarint(nil, 4), 1),
	}
	for name, enc := range cases {
		if _, _, err := getSparseBody(enc); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestAssignmentV4RoundTrip(t *testing.T) {
	cases := []*placement.Assignment{
		nil,
		{Strategy: "treematch", ComputePU: []int{0, 1, 19, 7}, ControlPU: []int{-1, -1, 3, -1}, CoreOf: []int{0, 0, 9, 3}},
		{Strategy: "none", Unbound: true},
		{Strategy: "x", Oversubscribed: true, ComputePU: []int{}, ControlPU: nil},
	}
	for i, a := range cases {
		got, rest, err := getAssignmentV4(putAssignmentV4(nil, a))
		if err != nil || len(rest) != 0 {
			t.Fatalf("case %d: %v (%d trailing)", i, err, len(rest))
		}
		if (a == nil) != (got == nil) {
			t.Fatalf("case %d: presence lost", i)
		}
		if a == nil {
			continue
		}
		if got.Strategy != a.Strategy || got.Unbound != a.Unbound || got.Oversubscribed != a.Oversubscribed {
			t.Errorf("case %d: scalars mangled: %+v", i, got)
		}
		if !intSlicesEqual(got.ComputePU, a.ComputePU) || !intSlicesEqual(got.ControlPU, a.ControlPU) || !intSlicesEqual(got.CoreOf, a.CoreOf) {
			t.Errorf("case %d: slices mangled: %+v", i, got)
		}
	}
	// The varint layout must beat the fixed one on a realistic
	// assignment — it is the whole point of the v4 response.
	big := &placement.Assignment{Strategy: "treematch", ComputePU: make([]int, 160), ControlPU: make([]int, 160), CoreOf: make([]int, 160)}
	for i := range big.ComputePU {
		big.ComputePU[i] = i % 20
		big.ControlPU[i] = -1
		big.CoreOf[i] = i % 10
	}
	v4, v1 := len(putAssignmentV4(nil, big)), len(putAssignment(nil, big))
	if v4*4 > v1 {
		t.Errorf("varint assignment = %d bytes, fixed = %d; want at least 4x smaller", v4, v1)
	}
}

func intSlicesEqual(a, b []int) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFingerprintFlowOverRPC drives the full body → reference → miss →
// resend protocol against a live server.
func TestFingerprintFlowOverRPC(t *testing.T) {
	srv, _, addr := startPlacementServer(t)
	svc, err := DialPlacementService(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	req := &placement.PlaceRequest{Strategy: "treematch", Matrix: chainMatrix(4)}

	// First call ships the body and installs it in the seen table.
	if _, err := svc.Place(ctx, req); err != nil {
		t.Fatal(err)
	}
	if n := srv.matrices.len(); n != 1 {
		t.Fatalf("seen-matrix table holds %d entries after a body, want 1", n)
	}
	// Second call goes fingerprint-only: the request delta on the wire
	// must be far below the ~150-byte dense body.
	_, out0 := svc.WirePoolStats()
	resp, err := svc.Place(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	_, out1 := svc.WirePoolStats()
	if !resp.CacheHit {
		t.Error("warm call missed the mapping cache")
	}
	if delta := out1 - out0; delta > 100 {
		t.Errorf("fingerprint-only request cost %d bytes on the wire", delta)
	}
	if hits := srv.matrices.fpHits.Load(); hits == 0 {
		t.Error("server recorded no fingerprint hit")
	}

	// Simulate eviction/daemon restart: empty the seen table. The next
	// fingerprint-only call must miss, and the stub must transparently
	// resend the body.
	srv.matrices = newMatrixCache(defaultMatrixCacheEntries)
	resp, err = svc.Place(ctx, req)
	if err != nil {
		t.Fatalf("place after table flush: %v", err)
	}
	if resp.Assignment == nil {
		t.Error("retried place returned no assignment")
	}
	if misses := srv.matrices.fpMisses.Load(); misses == 0 {
		t.Error("flushed table recorded no fingerprint miss")
	}
	if n := srv.matrices.len(); n != 1 {
		t.Errorf("retry did not reinstall the body (table holds %d)", n)
	}
}

// TestPipelinedPooledPlacement hammers a pooled stub from many
// goroutines — the shape the -race run is for.
func TestPipelinedPooledPlacement(t *testing.T) {
	_, _, addr := startPlacementServer(t)
	svc, err := DialPlacementService(context.Background(), addr, WithPoolSize(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	m := chainMatrix(4)
	fp := comm.Fingerprint(m)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				req := &placement.PlaceRequest{Strategy: "treematch", Matrix: m, MatrixFP: fp}
				resp, err := svc.Place(ctx, req)
				if err != nil {
					errs <- err
					return
				}
				if resp.Assignment == nil || len(resp.Assignment.ComputePU) != 4 {
					errs <- context.DeadlineExceeded
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent place: %v", err)
	}
}

func TestNetStatsOverRPC(t *testing.T) {
	_, _, addr := startPlacementServer(t)
	svc, err := DialPlacementService(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	req := &placement.PlaceRequest{Strategy: "treematch", Matrix: chainMatrix(4)}
	for i := 0; i < 3; i++ {
		if _, err := svc.Place(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	st, err := svc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Net.BytesIn == 0 || st.Net.BytesOut == 0 {
		t.Errorf("byte counters missing from stats: %+v", st.Net)
	}
	if st.Net.MatrixCacheEntries != 1 {
		t.Errorf("stats report %d seen matrices, want 1", st.Net.MatrixCacheEntries)
	}
	if st.Net.FingerprintHits == 0 {
		t.Errorf("stats report no fingerprint hits after warm calls: %+v", st.Net)
	}
}

// TestIdleTimeoutReapsSilentConn covers the -conn-idle satellite: a
// byte-silent connection with nothing in flight is closed after the
// timeout.
func TestIdleTimeoutReapsSilentConn(t *testing.T) {
	locs := locations(t, "data")
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis, locs, WithIdleTimeout(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Size("data"); err != nil {
		t.Fatalf("fresh connection unusable: %v", err)
	}
	time.Sleep(200 * time.Millisecond)
	if _, err := c.Size("data"); err == nil {
		t.Error("idle connection survived 3x the timeout")
	}
}

// TestIdleTimeoutSparesInFlight: a connection whose Await is parked in
// the FIFO is waiting on the server, not idle — it must survive any
// number of timeout periods and complete when the grant arrives.
func TestIdleTimeoutSparesInFlight(t *testing.T) {
	locs := locations(t, "data")
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis, locs, WithIdleTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	addr := lis.Addr().String()

	holder, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	h1, err := holder.Insert("data", orwl.Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.Acquire(); err != nil {
		t.Fatal(err)
	}

	waiter, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	h2, err := waiter.Insert("data", orwl.Write)
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- h2.Acquire() }()

	// Hold the grant across several idle periods, keeping the holder's
	// own connection warm with pings (well inside the timeout, so a
	// loaded scheduler can't let the gap reach the reaper); the
	// waiter's connection is byte-silent the whole time but has the
	// Await in flight.
	for i := 0; i < 5; i++ {
		time.Sleep(50 * time.Millisecond)
		if _, err := holder.Size("data"); err != nil {
			t.Fatalf("holder ping: %v", err)
		}
	}
	if err := h1.Release(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("parked Await failed after idle periods: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked Await never granted")
	}
	if err := h2.Release(); err != nil {
		t.Errorf("release on surviving connection: %v", err)
	}
}

// TestPipelinedClientAgainstV3Server replays a protoAdaptive-era server
// and checks the new client degrades to the old discipline: dense
// schema <= 3 payloads, and placement calls strictly lock-stepped.
func TestPipelinedClientAgainstV3Server(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	const serverDelay = 20 * time.Millisecond
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			msg, err := readMessage(conn)
			if err != nil {
				return
			}
			switch msg.op {
			case opHello:
				writeMessage(conn, message{callID: msg.callID, op: statusOK, payload: []byte{protoAdaptive}})
			case opPlaceCompute:
				// The old build's decode ceiling: a v4 payload (mode bytes,
				// varints) must never arrive here.
				if _, _, err := checkWireVersionMax(msg.payload, 3); err != nil {
					writeMessage(conn, message{callID: msg.callID, op: statusError, payload: []byte(err.Error())})
					continue
				}
				req, err := decodePlaceRequest(msg.payload)
				if err != nil || req.Matrix == nil {
					writeMessage(conn, message{callID: msg.callID, op: statusError, payload: []byte("v3 server expected a dense matrix body")})
					continue
				}
				// Answering slowly makes lock-step observable as wall time.
				time.Sleep(serverDelay)
				payload, err := encodePlaceResponse(nil, &placement.PlaceResponse{Version: 3, Machine: "m", CacheHit: true})
				if err != nil {
					writeMessage(conn, message{callID: msg.callID, op: statusError, payload: []byte(err.Error())})
					continue
				}
				writeMessage(conn, message{callID: msg.callID, op: statusOK, payload: payload})
			default:
				writeMessage(conn, message{callID: msg.callID, op: statusError, payload: []byte("unexpected op")})
			}
		}
	}()

	svc, err := DialPlacementService(context.Background(), lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if v := svc.c.Version(); v != protoAdaptive {
		t.Fatalf("negotiated v%d, want the old server's v%d", v, protoAdaptive)
	}

	const calls = 4
	req := &placement.PlaceRequest{Strategy: "treematch", Matrix: chainMatrix(4)}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.Place(context.Background(), req); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("place against v3 server: %v", err)
	}
	// Lock-step: the concurrent calls serialise, so wall time is at
	// least the sum of the server's per-call delays (minus one for
	// scheduling slop).
	if elapsed := time.Since(start); elapsed < (calls-1)*serverDelay {
		t.Errorf("4 concurrent calls finished in %v: pre-pipeline server was not lock-stepped", elapsed)
	}
}

// TestPinnedV3ClientAgainstV4Server is the other direction: a client
// capped at the old protocol against the new server.
func TestPinnedV3ClientAgainstV4Server(t *testing.T) {
	_, _, addr := startPlacementServer(t)
	svc, err := DialPlacementService(context.Background(), addr, WithMaxProtocol(ProtoAdaptive))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if v := svc.c.Version(); v != protoAdaptive {
		t.Fatalf("capped handshake negotiated v%d, want v%d", v, protoAdaptive)
	}
	ctx := context.Background()
	req := &placement.PlaceRequest{Strategy: "treematch", Matrix: chainMatrix(4)}
	for i := 0; i < 2; i++ {
		resp, err := svc.Place(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Version != 3 {
			t.Errorf("v3-capped connection answered schema v%d", resp.Version)
		}
		if resp.Assignment == nil {
			t.Error("no assignment")
		}
	}
	// Pre-pipeline stats payloads carry no NetStats tail.
	st, err := svc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Net != (placement.NetStats{}) {
		t.Errorf("v3 stats carried NetStats: %+v", st.Net)
	}
	// An explicit v4 pin on a v3 connection fails loudly client-side.
	if _, err := svc.Place(ctx, &placement.PlaceRequest{Version: 4, Strategy: "treematch"}); err == nil ||
		!strings.Contains(err.Error(), "schema") {
		t.Errorf("v4 pin on a v3 connection: %v, want loud schema error", err)
	}
}
