package orwlnet

import (
	"context"
	"fmt"
	"time"

	"orwlplace/internal/comm"
	"orwlplace/internal/ctrlplane"
	"orwlplace/internal/placement"
)

// Client-side face of the fleet control plane (schema v5): lease
// registration, observed-traffic reporting, and the remap
// subscription with resubscribe-on-reconnect and epoch dedup.

// Remap re-exports the control-plane event type watchers receive.
type Remap = ctrlplane.Remap

// fleetConn returns the stub's primary connection if it negotiated
// the fleet protocol.
func (s *RemoteService) fleetConn() (*Client, error) {
	c := s.primary()
	if c.version < protoFleet {
		return nil, fmt.Errorf("orwlnet: server speaks protocol v%d, fleet control plane needs v%d", c.version, protoFleet)
	}
	return c, nil
}

// RegisterLease registers this process's (machine, peer, task-range)
// identity with the daemon's control plane and returns the lease id
// subsequent ReportObserved calls name, claiming no ownership token.
// machine "" selects the daemon's default machine server-side.
func (s *RemoteService) RegisterLease(ctx context.Context, machine, peer string, base, count int) (uint64, error) {
	return s.RegisterLeaseToken(ctx, machine, peer, base, count, 0)
}

// RegisterLeaseToken is RegisterLease with a lease ownership token: a
// non-zero token marks the lease as owned, and only a registration
// presenting the same token can displace it. Registration is
// idempotent under one (machine, peer, token) key — re-registering
// after a daemon restart or a retry replaces this client's own
// previous incarnation — so it retries under the stub's policy.
func (s *RemoteService) RegisterLeaseToken(ctx context.Context, machine, peer string, base, count int, token uint64) (uint64, error) {
	var id uint64
	err := s.retryCall(ctx, func(ctx context.Context) error {
		c, err := s.fleetConn()
		if err != nil {
			return err
		}
		payload, err := encodeFleetLeaseRequest(nil, schemaForProto(c.version), machine, peer, base, count, token)
		if err != nil {
			return err
		}
		resp, err := c.callCtx(ctx, opFleetLease, payload)
		if err != nil {
			return err
		}
		id, err = decodeFleetLeaseResponse(resp)
		return err
	})
	return id, err
}

// ReportObserved ships one observed-traffic window (a delta since the
// previous report) under a lease. seq must increase monotonically per
// lease: the daemon drops duplicates, so a retransmitted window —
// including the retries the stub's policy issues — is never
// double-counted.
func (s *RemoteService) ReportObserved(ctx context.Context, leaseID, seq uint64, delta *comm.Matrix) error {
	return s.retryCall(ctx, func(ctx context.Context) error {
		c, err := s.fleetConn()
		if err != nil {
			return err
		}
		buf := getPayloadBuf()
		payload, err := encodeObservedReport(buf, schemaForProto(c.version), leaseID, seq, delta)
		if err != nil {
			putPayloadBuf(buf)
			return err
		}
		_, err = c.callPooled(ctx, opObservedReport, payload, true)
		return err
	})
}

// watchRedialBackoff is the flat resubscribe pacing used when the stub
// has no retry policy: the historical 250ms cadence.
const watchRedialBackoff = 250 * time.Millisecond

// watchBackoff returns the resubscribe pacing policy: the stub's
// configured retry policy when present, else a flat-backoff stand-in
// at the historical cadence. Unlike call retries, resubscribe attempts
// are unbounded (a watch is expected to outlive daemon restarts), so
// only the delay schedule is taken from the policy — exponential
// growth with jitter caps the reconnect burst rate against a daemon
// that stays down.
func (s *RemoteService) watchBackoff() RetryPolicy {
	if s.retry != nil {
		return *s.retry
	}
	return RetryPolicy{BaseDelay: watchRedialBackoff, MaxDelay: watchRedialBackoff, Multiplier: 1, Jitter: 0}.withDefaults()
}

// WatchRemaps turns a connection into a remap subscription: the
// returned channel yields every mapping the daemon's controller adopts
// for machine ("" = the daemon's default machine), epoch-deduped —
// the subscription ack, a resubscribe's catch-up and the pushed events
// all carry epochs, and an event is delivered at most once, in order.
//
// The subscription survives connection loss: when the watch connection
// dies, the watcher redials the daemon (the stub must have been built
// by DialPlacementService, which remembers the address) and
// resubscribes with the last applied epoch, so a remap adopted during
// the outage is delivered on reconnect. The channel closes when ctx is
// cancelled, or when the connection dies and no redial address is
// known.
func (s *RemoteService) WatchRemaps(ctx context.Context, machine string) (<-chan Remap, error) {
	c, err := s.fleetConn()
	if err != nil {
		return nil, err
	}
	id, ch, ack, err := s.subscribeRemaps(ctx, c, machine, 0)
	if err != nil {
		return nil, err
	}
	out := make(chan Remap, 8)
	var last uint64
	var cur *placement.Assignment
	if ack != nil && ack.Epoch > 0 {
		last = ack.Epoch
		cur = ack.Assignment
		out <- *ack
	}
	go s.watchLoop(ctx, machine, out, c, id, ch, last, cur)
	return out, nil
}

// subscribeRemaps opens the subscription stream and waits for the
// server's ack: the latest adopted remap newer than sinceEpoch, or an
// empty frame (epoch 0) when there is nothing to catch up on. The ack
// is always a full frame, but the pusher may race an adoption's
// unsolicited frame ahead of it on the wire — a delta frame arriving
// here is skipped (the full ack the server already queued makes it
// redundant: both describe epochs the ack's snapshot covers).
func (s *RemoteService) subscribeRemaps(ctx context.Context, c *Client, machine string, sinceEpoch uint64) (uint64, <-chan message, *Remap, error) {
	payload, err := encodeWatchRequest(nil, schemaForProto(c.version), machine, sinceEpoch)
	if err != nil {
		return 0, nil, nil, err
	}
	id, ch, err := c.openStream(ctx, opWatchRemaps, payload)
	if err != nil {
		return 0, nil, nil, err
	}
	for {
		select {
		case msg, ok := <-ch:
			if !ok {
				return 0, nil, nil, fmt.Errorf("orwlnet: connection lost before watch ack")
			}
			if msg.op == statusError {
				c.closeStream(id)
				return 0, nil, nil, fmt.Errorf("orwlnet: server: %s", string(msg.payload))
			}
			ev, d, err := decodeRemapFrameAny(msg.payload)
			if err != nil {
				c.closeStream(id)
				return 0, nil, nil, err
			}
			if d != nil {
				continue // a pushed delta overtook the ack; wait for the full frame
			}
			if ev.Epoch == 0 {
				ev = nil // nothing adopted yet
			}
			return id, ch, ev, nil
		case <-ctx.Done():
			c.closeStream(id)
			return 0, nil, nil, ctx.Err()
		}
	}
}

// watchLoop forwards pushed remap frames, dropping stale epochs, and
// resubscribes on a new connection when the current one dies. It keeps
// the last delivered full assignment cached (cur) so a schema v6 delta
// frame — the moved tasks of epoch last+1 — reconstructs the complete
// mapping locally. Any doubt about a delta (an epoch gap from a frame
// this client never saw, a decode error, a structural mismatch with
// the cache) tears the stream down and resubscribes with the last
// applied epoch: the server's ack is then a full-frame resync, so a
// dropped or garbled delta always converges to the same assignment the
// full-frame path would have delivered.
func (s *RemoteService) watchLoop(ctx context.Context, machine string, out chan<- Remap, c *Client, id uint64, ch <-chan message, last uint64, cur *placement.Assignment) {
	defer close(out)
	redialed := false
	// resync abandons the current stream and resubscribes with the last
	// applied epoch — shared by connection loss, gap recovery and decode
	// doubt. It reports whether the loop can continue.
	resync := func() bool {
		c.closeStream(id)
		if redialed {
			c.Close()
		}
		nc, nid, nch, ack, err := s.resubscribe(ctx, machine, last)
		if err != nil {
			return false
		}
		c, id, ch, redialed = nc, nid, nch, true
		if ack != nil && ack.Epoch > last {
			last = ack.Epoch
			cur = ack.Assignment
			select {
			case out <- *ack:
			case <-ctx.Done():
			}
		}
		return true
	}
	for {
		select {
		case <-ctx.Done():
			c.closeStream(id)
			if redialed {
				c.Close()
			}
			return
		case msg, ok := <-ch:
			if !ok {
				// Connection lost. Resubscribe with the last applied epoch:
				// the ack then delivers anything adopted during the outage.
				if !resync() {
					return
				}
				continue
			}
			if msg.op == statusError {
				// A pushed error ends the subscription (the server shut its
				// control plane down); treat like connection loss without
				// retry — the daemon is telling us to stop, not vanishing.
				c.closeStream(id)
				if redialed {
					c.Close()
				}
				return
			}
			ev, d, err := decodeRemapFrameAny(msg.payload)
			if err != nil {
				// Undecodable push: the stream may be carrying frames this
				// build cannot parse — resubscribe for a clean full frame.
				if !resync() {
					return
				}
				continue
			}
			if d != nil {
				if d.Epoch <= last {
					continue // stale replay: dedup absorbs it
				}
				if d.Epoch != last+1 || cur == nil {
					// A delta for an epoch we cannot build on (the frame in
					// between never arrived, or we hold no full assignment):
					// full-frame resync.
					if !resync() {
						return
					}
					continue
				}
				a, err := applyRemapDelta(cur, d)
				if err != nil {
					if !resync() {
						return
					}
					continue
				}
				cur = a
				last = d.Epoch
				select {
				case out <- *d.remap(a):
				case <-ctx.Done():
				}
				continue
			}
			if ev.Epoch <= last {
				continue // stale: dedup absorbs replays
			}
			last = ev.Epoch
			cur = ev.Assignment
			select {
			case out <- *ev:
			case <-ctx.Done():
			}
		}
	}
}

// resubscribe redials the daemon and reopens the subscription,
// retrying with the stub's backoff policy (exponential with jitter
// when a retry policy is configured) until the context ends. It fails
// fast when the stub has no redial address (built from a raw
// connection rather than DialPlacementService).
func (s *RemoteService) resubscribe(ctx context.Context, machine string, sinceEpoch uint64) (*Client, uint64, <-chan message, *Remap, error) {
	if s.addr == "" {
		return nil, 0, nil, nil, fmt.Errorf("orwlnet: watch connection lost and no redial address known")
	}
	pol := s.watchBackoff()
	for attempt := 1; ; attempt++ {
		c, err := DialContext(ctx, s.addr, s.dialOpts...)
		if err == nil && c.version < protoFleet {
			c.Close()
			err = fmt.Errorf("orwlnet: redialed server no longer speaks the fleet protocol")
		}
		if err == nil {
			id, ch, ack, serr := s.subscribeRemaps(ctx, c, machine, sinceEpoch)
			if serr == nil {
				return c, id, ch, ack, nil
			}
			c.Close()
			err = serr
		}
		select {
		case <-ctx.Done():
			return nil, 0, nil, nil, ctx.Err()
		case <-time.After(pol.delay(attempt)):
		}
	}
}
