package orwlnet

import (
	"context"
	"fmt"
	"time"

	"orwlplace/internal/comm"
	"orwlplace/internal/ctrlplane"
)

// Client-side face of the fleet control plane (schema v5): lease
// registration, observed-traffic reporting, and the remap
// subscription with resubscribe-on-reconnect and epoch dedup.

// Remap re-exports the control-plane event type watchers receive.
type Remap = ctrlplane.Remap

// fleetConn returns the stub's primary connection if it negotiated
// the fleet protocol.
func (s *RemoteService) fleetConn() (*Client, error) {
	c := s.primary()
	if c.version < protoFleet {
		return nil, fmt.Errorf("orwlnet: server speaks protocol v%d, fleet control plane needs v%d", c.version, protoFleet)
	}
	return c, nil
}

// RegisterLease registers this process's (machine, peer, task-range)
// identity with the daemon's control plane and returns the lease id
// subsequent ReportObserved calls name, claiming no ownership token.
// machine "" selects the daemon's default machine server-side.
func (s *RemoteService) RegisterLease(ctx context.Context, machine, peer string, base, count int) (uint64, error) {
	return s.RegisterLeaseToken(ctx, machine, peer, base, count, 0)
}

// RegisterLeaseToken is RegisterLease with a lease ownership token: a
// non-zero token marks the lease as owned, and only a registration
// presenting the same token can displace it. Registration is
// idempotent under one (machine, peer, token) key — re-registering
// after a daemon restart or a retry replaces this client's own
// previous incarnation — so it retries under the stub's policy.
func (s *RemoteService) RegisterLeaseToken(ctx context.Context, machine, peer string, base, count int, token uint64) (uint64, error) {
	var id uint64
	err := s.retryCall(ctx, func(ctx context.Context) error {
		c, err := s.fleetConn()
		if err != nil {
			return err
		}
		payload, err := encodeFleetLeaseRequest(nil, machine, peer, base, count, token)
		if err != nil {
			return err
		}
		resp, err := c.callCtx(ctx, opFleetLease, payload)
		if err != nil {
			return err
		}
		id, err = decodeFleetLeaseResponse(resp)
		return err
	})
	return id, err
}

// ReportObserved ships one observed-traffic window (a delta since the
// previous report) under a lease. seq must increase monotonically per
// lease: the daemon drops duplicates, so a retransmitted window —
// including the retries the stub's policy issues — is never
// double-counted.
func (s *RemoteService) ReportObserved(ctx context.Context, leaseID, seq uint64, delta *comm.Matrix) error {
	return s.retryCall(ctx, func(ctx context.Context) error {
		c, err := s.fleetConn()
		if err != nil {
			return err
		}
		buf := getPayloadBuf()
		payload, err := encodeObservedReport(buf, leaseID, seq, delta)
		if err != nil {
			putPayloadBuf(buf)
			return err
		}
		_, err = c.callPooled(ctx, opObservedReport, payload, true)
		return err
	})
}

// watchRedialBackoff is the flat resubscribe pacing used when the stub
// has no retry policy: the historical 250ms cadence.
const watchRedialBackoff = 250 * time.Millisecond

// watchBackoff returns the resubscribe pacing policy: the stub's
// configured retry policy when present, else a flat-backoff stand-in
// at the historical cadence. Unlike call retries, resubscribe attempts
// are unbounded (a watch is expected to outlive daemon restarts), so
// only the delay schedule is taken from the policy — exponential
// growth with jitter caps the reconnect burst rate against a daemon
// that stays down.
func (s *RemoteService) watchBackoff() RetryPolicy {
	if s.retry != nil {
		return *s.retry
	}
	return RetryPolicy{BaseDelay: watchRedialBackoff, MaxDelay: watchRedialBackoff, Multiplier: 1, Jitter: 0}.withDefaults()
}

// WatchRemaps turns a connection into a remap subscription: the
// returned channel yields every mapping the daemon's controller adopts
// for machine ("" = the daemon's default machine), epoch-deduped —
// the subscription ack, a resubscribe's catch-up and the pushed events
// all carry epochs, and an event is delivered at most once, in order.
//
// The subscription survives connection loss: when the watch connection
// dies, the watcher redials the daemon (the stub must have been built
// by DialPlacementService, which remembers the address) and
// resubscribes with the last applied epoch, so a remap adopted during
// the outage is delivered on reconnect. The channel closes when ctx is
// cancelled, or when the connection dies and no redial address is
// known.
func (s *RemoteService) WatchRemaps(ctx context.Context, machine string) (<-chan Remap, error) {
	c, err := s.fleetConn()
	if err != nil {
		return nil, err
	}
	id, ch, ack, err := s.subscribeRemaps(ctx, c, machine, 0)
	if err != nil {
		return nil, err
	}
	out := make(chan Remap, 8)
	var last uint64
	if ack != nil && ack.Epoch > 0 {
		last = ack.Epoch
		out <- *ack
	}
	go s.watchLoop(ctx, machine, out, c, id, ch, last)
	return out, nil
}

// subscribeRemaps opens the subscription stream and waits for the
// server's ack: the latest adopted remap newer than sinceEpoch, or an
// empty frame (epoch 0) when there is nothing to catch up on.
func (s *RemoteService) subscribeRemaps(ctx context.Context, c *Client, machine string, sinceEpoch uint64) (uint64, <-chan message, *Remap, error) {
	payload, err := encodeWatchRequest(nil, machine, sinceEpoch)
	if err != nil {
		return 0, nil, nil, err
	}
	id, ch, err := c.openStream(ctx, opWatchRemaps, payload)
	if err != nil {
		return 0, nil, nil, err
	}
	select {
	case msg, ok := <-ch:
		if !ok {
			return 0, nil, nil, fmt.Errorf("orwlnet: connection lost before watch ack")
		}
		if msg.op == statusError {
			c.closeStream(id)
			return 0, nil, nil, fmt.Errorf("orwlnet: server: %s", string(msg.payload))
		}
		ev, err := decodeRemapFrame(msg.payload)
		if err != nil {
			c.closeStream(id)
			return 0, nil, nil, err
		}
		if ev.Epoch == 0 {
			ev = nil // nothing adopted yet
		}
		return id, ch, ev, nil
	case <-ctx.Done():
		c.closeStream(id)
		return 0, nil, nil, ctx.Err()
	}
}

// watchLoop forwards pushed remap frames, dropping stale epochs, and
// resubscribes on a new connection when the current one dies.
func (s *RemoteService) watchLoop(ctx context.Context, machine string, out chan<- Remap, c *Client, id uint64, ch <-chan message, last uint64) {
	defer close(out)
	redialed := false
	for {
		select {
		case <-ctx.Done():
			c.closeStream(id)
			if redialed {
				c.Close()
			}
			return
		case msg, ok := <-ch:
			if !ok {
				// Connection lost. Resubscribe with the last applied epoch:
				// the ack then delivers anything adopted during the outage.
				if redialed {
					c.Close()
				}
				nc, nid, nch, ack, err := s.resubscribe(ctx, machine, last)
				if err != nil {
					return
				}
				c, id, ch, redialed = nc, nid, nch, true
				if ack != nil && ack.Epoch > last {
					last = ack.Epoch
					select {
					case out <- *ack:
					case <-ctx.Done():
					}
				}
				continue
			}
			if msg.op == statusError {
				// A pushed error ends the subscription (the server shut its
				// control plane down); treat like connection loss without
				// retry — the daemon is telling us to stop, not vanishing.
				c.closeStream(id)
				if redialed {
					c.Close()
				}
				return
			}
			ev, err := decodeRemapFrame(msg.payload)
			if err != nil || ev.Epoch <= last {
				continue // undecodable or stale: dedup absorbs replays
			}
			last = ev.Epoch
			select {
			case out <- *ev:
			case <-ctx.Done():
			}
		}
	}
}

// resubscribe redials the daemon and reopens the subscription,
// retrying with the stub's backoff policy (exponential with jitter
// when a retry policy is configured) until the context ends. It fails
// fast when the stub has no redial address (built from a raw
// connection rather than DialPlacementService).
func (s *RemoteService) resubscribe(ctx context.Context, machine string, sinceEpoch uint64) (*Client, uint64, <-chan message, *Remap, error) {
	if s.addr == "" {
		return nil, 0, nil, nil, fmt.Errorf("orwlnet: watch connection lost and no redial address known")
	}
	pol := s.watchBackoff()
	for attempt := 1; ; attempt++ {
		c, err := DialContext(ctx, s.addr, s.dialOpts...)
		if err == nil && c.version < protoFleet {
			c.Close()
			err = fmt.Errorf("orwlnet: redialed server no longer speaks the fleet protocol")
		}
		if err == nil {
			id, ch, ack, serr := s.subscribeRemaps(ctx, c, machine, sinceEpoch)
			if serr == nil {
				return c, id, ch, ack, nil
			}
			c.Close()
			err = serr
		}
		select {
		case <-ctx.Done():
			return nil, 0, nil, nil, ctx.Err()
		case <-time.After(pol.delay(attempt)):
		}
	}
}
