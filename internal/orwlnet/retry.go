package orwlnet

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"time"
)

// RetryPolicy is the client-side resilience policy: how a
// RemoteService built with WithRetryPolicy re-attempts idempotent
// calls when the daemon restarts, the network hiccups, or the server
// throttles. Exponential backoff with jitter paces the attempts, and
// an optional per-attempt deadline budget keeps one hung attempt from
// eating the caller's whole context.
//
// Only idempotent operations retry: Place/PlaceBatch/Topology/Stats
// are pure requests, observed reports are seq-deduplicated server-side
// (a retransmit is dropped, never double-counted), and a lease
// re-registration under the same (machine, peer, token) key replaces
// the previous incarnation. Location ops (Acquire/Release) are NOT
// retried — replaying them would corrupt the FIFO.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, the first included
	// (default 4; 1 disables retries while keeping the attempt budget).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default
	// 50ms); each later attempt multiplies it by Multiplier up to
	// MaxDelay (default 2s).
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter is the random fraction applied to each delay, in [0, 1]
	// (default 0.2: +-20%), so a fleet of clients severed by one daemon
	// restart does not reconnect in lockstep.
	Jitter float64
	// AttemptBudget, when positive, deadlines each attempt
	// individually; an attempt that exceeds it is abandoned and
	// retried while the caller's own context still has time.
	AttemptBudget time.Duration
}

// DefaultRetryPolicy returns the policy WithRetryPolicy() applies when
// given a zero value: 4 attempts, 50ms..2s exponential backoff with
// 20% jitter, no per-attempt budget.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Multiplier: 2, Jitter: 0.2}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = d.Multiplier
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = d.Jitter
	}
	return p
}

// delay computes the backoff after the attempt'th failure (1-based),
// jittered.
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rand.Float64()-1)
	}
	return time.Duration(d)
}

// retryableError classifies the failures worth re-attempting: the
// connection died (the daemon restarted or the network dropped us),
// the dial failed (the daemon is not back yet), or the server refused
// with its retryable rate-limit error. Application errors — unknown
// machine, malformed request, lease conflict — are not retryable: the
// same request will fail the same way.
func retryableError(err error) bool {
	if err == nil {
		return false
	}
	var nerr net.Error
	if errors.As(err, &nerr) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	msg := err.Error()
	return strings.Contains(msg, "connection lost") ||
		strings.Contains(msg, "orwlnet: dial:") ||
		strings.Contains(msg, "rate limit") ||
		strings.Contains(msg, "connection reset") ||
		strings.Contains(msg, "connection refused") ||
		strings.Contains(msg, "broken pipe") ||
		strings.Contains(msg, "use of closed network connection")
}

// retryCall runs do under the stub's retry policy: each attempt gets a
// fresh per-attempt deadline (when budgeted), failures classified as
// transient back off and re-attempt after reviving dead pool
// connections, and the caller's context always wins. With no policy
// configured, do runs exactly once — the pre-PR 8 behaviour.
func (s *RemoteService) retryCall(ctx context.Context, do func(ctx context.Context) error) error {
	if s.retry == nil {
		return do(ctx)
	}
	pol := *s.retry
	var err error
	for attempt := 1; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if pol.AttemptBudget > 0 {
			actx, cancel = context.WithTimeout(ctx, pol.AttemptBudget)
		}
		err = do(actx)
		cancel()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The caller's own deadline or cancellation: surface it, the
			// budget is spent.
			return err
		}
		// An attempt that blew only its per-attempt budget reads as
		// context.DeadlineExceeded with the parent still live: transient.
		if attempt >= pol.MaxAttempts || !(retryableError(err) || errors.Is(err, context.DeadlineExceeded)) {
			return err
		}
		select {
		case <-time.After(pol.delay(attempt)):
		case <-ctx.Done():
			return err
		}
		s.revive(ctx)
	}
}
