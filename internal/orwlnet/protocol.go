// Package orwlnet provides remote access to ORWL locations over TCP,
// reproducing the distributed face of the reference library: in the
// ORWL model a location may live in another process or on another
// node, and tasks interact with it through exactly the same
// insert/acquire/release FIFO discipline. The paper's evaluation is
// single-SMP, so this package is the "extension" substrate: it lets
// the examples and tests exercise location sharing across process
// boundaries without changing the protocol semantics.
//
// The wire protocol is deliberately small: length-prefixed binary
// messages, one multiplexed TCP connection per client, each call
// tagged with an id so long-blocking operations (Await) do not stall
// unrelated calls.
package orwlnet

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Operation codes. The location ops (opScale..opReleaseReinsert) are
// the original protocol and work on any connection; the placement ops
// require a version-negotiating opHello handshake first (see
// DESIGN.md, PROTOCOL).
const (
	opScale = iota + 1
	opSize
	opInsert
	opAwait
	opRead
	opWrite
	opRelease
	opReleaseReinsert
	// opHello negotiates the protocol version. Request payload: two
	// bytes [min, max] — the version range the client speaks. Response
	// payload: one byte, the version the server chose (the highest it
	// shares with the client).
	opHello
	// opPlaceCompute runs a placement request (placewire.go codecs).
	opPlaceCompute
	// opTopology fetches the served machine as canonical topology JSON.
	opTopology
	// opPlaceStats fetches the placement service description/counters.
	opPlaceStats
	// opPlaceBatch runs a slice of placement requests in one round
	// trip, fanned across the server's fleet machines (protoBatch).
	opPlaceBatch
	// opFleetLease registers this client's (machine, peer, task-range)
	// identity with the daemon's control plane (protoFleet). The
	// response carries a server-assigned lease id that subsequent
	// opObservedReport frames name.
	opFleetLease
	// opObservedReport ships one observed-traffic window (delta, not
	// cumulative) for a lease, matrix in the schema v4 compact
	// encoding. The daemon merges it at the lease's task offset into
	// the machine's fleet-wide observed matrix.
	opObservedReport
	// opWatchRemaps turns the connection into a remap subscription:
	// the response acknowledges with the current adopted mapping (if
	// newer than the client's since-epoch), and every later adoption is
	// pushed as an unsolicited frame with the same call id and frame
	// layout.
	opWatchRemaps
)

// errUnknownOp is the error text answered to unrecognised opcodes.
// The wording is FROZEN: clients detect pre-handshake servers by this
// substring when opHello is rejected, and servers built before the
// handshake already reply with exactly this phrase.
const errUnknownOp = "unknown op"

// Protocol versions negotiated by opHello.
const (
	// protoLegacy is the pre-handshake protocol: location ops only.
	// Clients talking to a server that rejects opHello assume it.
	protoLegacy = 0
	// protoPlacement adds the handshake and the placement RPCs.
	protoPlacement = 1
	// protoBatch adds opPlaceBatch and the fleet (schema v2) payload
	// fields: machine selectors, per-slot errors, fleet listings.
	protoBatch = 2
	// protoAdaptive adds the schema v3 stats payload: the adaptive
	// reconciler counters (epochs, drift alarms, remaps) next to the
	// cache counters. Requests and responses are unchanged from v2.
	protoAdaptive = 3
	// protoPipeline is the high-throughput transport (schema v4):
	// clients may pipeline many placement frames on one connection
	// (responses return out of order, demuxed by call id), matrices may
	// cross in the sparse run-length encoding or as a fingerprint-only
	// reference resolved from the server's seen-matrix table, and the
	// stats payload carries the daemon's transport counters. A client
	// on a <= v3 connection falls back to lock-step placement calls and
	// dense matrices.
	protoPipeline = 4
	// protoFleet is the fleet control plane (schema v5): clients may
	// register a (machine, peer, task-range) lease, stream observed-
	// traffic windows up with opObservedReport, and subscribe to
	// daemon-adopted remaps with opWatchRemaps — the first op that
	// makes the server push unsolicited frames. Placement requests and
	// responses are byte-identical to v4; the stats payload gains the
	// control-plane counters.
	protoFleet = 5
	// protoDelta is the partition-delta push protocol (schema v6): a
	// remap pushed to a subscriber that is exactly one epoch behind may
	// cross as a delta frame — the epoch, the remapped partition
	// indices, and varint-packed (task, PU) pairs for the moved tasks
	// only — with the encoder measuring delta against the full body and
	// shipping whichever is smaller (the same choice rule as the v4
	// sparse/dense matrix encoding). Catch-up acks, epoch gaps and
	// coalesced pushes to slow subscribers always fall back to the full
	// frame, so the subscription semantics are unchanged from v5.
	protoDelta = 6
	// protoMax is the highest version this build speaks.
	protoMax = protoDelta
)

// Exported protocol version aliases for out-of-package dial knobs
// (WithMaxProtocol): cmd/placeload pins a connection to the pre-
// pipeline transport to measure the lock-step baseline.
const (
	// ProtoAdaptive is the last pre-pipeline protocol version.
	ProtoAdaptive = protoAdaptive
	// ProtoPipeline is the pipelined/pooled/compact-payload version.
	ProtoPipeline = protoPipeline
	// ProtoFleet is the fleet control-plane version (leases, observed
	// reports, remap subscriptions). Cross-version tests pin clients to
	// ProtoPipeline to prove the v4 placement path is untouched.
	ProtoFleet = protoFleet
	// ProtoDelta is the partition-delta remap push version. Cross-
	// version tests pin clients to ProtoFleet to prove a v5 subscriber
	// keeps receiving full frames from a v6 server.
	ProtoDelta = protoDelta
)

// schemaForProto maps a negotiated protocol version to the highest
// placement payload schema the peer can decode: the two version spaces
// moved together from protoBatch on (proto 2 ↔ schema 2, proto 3 ↔
// schema 3), with proto 1 pinned to the original schema 1 payloads.
func schemaForProto(proto int) int {
	switch {
	case proto >= protoDelta:
		return 6
	case proto >= protoFleet:
		return 5
	case proto >= protoPipeline:
		return 4
	case proto >= protoAdaptive:
		return 3
	case proto >= protoBatch:
		return 2
	default:
		return 1
	}
}

// Status codes.
const (
	statusOK = iota
	statusError
)

// maxMessage bounds a single message (64 MiB), protecting both sides
// against corrupt length prefixes.
const maxMessage = 64 << 20

// message is one framed request or response.
type message struct {
	callID  uint64
	op      byte // request: operation; response: status
	payload []byte
}

// writeCoalesceLimit is the payload size up to which a frame's header
// and payload are copied into one buffer and written with a single
// Write call. The compact schema v4 frames (fingerprint requests,
// varint responses) are far below it, so the warm path costs one
// syscall per frame instead of two; big dense payloads keep the
// two-write shape rather than paying a copy.
const writeCoalesceLimit = 16 << 10

// writeMessage frames and writes m.
func writeMessage(w io.Writer, m message) error {
	if len(m.payload) > maxMessage {
		return fmt.Errorf("orwlnet: message payload %d exceeds limit", len(m.payload))
	}
	var head [4 + 8 + 1]byte
	binary.LittleEndian.PutUint32(head[:], uint32(8+1+len(m.payload)))
	binary.LittleEndian.PutUint64(head[4:], m.callID)
	head[12] = m.op
	if n := len(m.payload); n > 0 && n <= writeCoalesceLimit {
		frame := getPayloadBuf()
		frame = append(frame, head[:]...)
		frame = append(frame, m.payload...)
		_, err := w.Write(frame)
		putPayloadBuf(frame)
		return err
	}
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	if len(m.payload) > 0 {
		if _, err := w.Write(m.payload); err != nil {
			return err
		}
	}
	return nil
}

// readMessage reads one framed message.
func readMessage(r io.Reader) (message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return message{}, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 9 || n > maxMessage {
		return message{}, fmt.Errorf("orwlnet: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return message{}, err
	}
	return message{
		callID:  binary.LittleEndian.Uint64(body),
		op:      body[8],
		payload: body[9:],
	}, nil
}

// Payload encoding helpers.

func putString(dst []byte, s string) []byte {
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
	dst = append(dst, l[:]...)
	return append(dst, s...)
}

func getString(src []byte) (string, []byte, error) {
	if len(src) < 2 {
		return "", nil, fmt.Errorf("orwlnet: truncated string")
	}
	n := int(binary.LittleEndian.Uint16(src))
	if len(src) < 2+n {
		return "", nil, fmt.Errorf("orwlnet: truncated string body")
	}
	return string(src[2 : 2+n]), src[2+n:], nil
}

func putUint64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func getUint64(src []byte) (uint64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, fmt.Errorf("orwlnet: truncated integer")
	}
	return binary.LittleEndian.Uint64(src), src[8:], nil
}

// putUvarint appends v in the unsigned LEB128 varint encoding — the
// compact integer of the schema v4 sparse-matrix payload (gaps, run
// lengths and byte-reversed float bits are all small or trailing-zero
// heavy, so most encode in 1-3 bytes instead of 8).
func putUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func getUvarint(src []byte) (uint64, []byte, error) {
	v, n, ok := decodeUvarint(src)
	if !ok {
		return 0, nil, fmt.Errorf("orwlnet: truncated or overlong varint")
	}
	return v, src[n:], nil
}

// decodeUvarint is binary.Uvarint with the two failure modes (buffer
// exhausted, 64-bit overflow) collapsed into ok=false.
func decodeUvarint(src []byte) (uint64, int, bool) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, false
	}
	return v, n, true
}
