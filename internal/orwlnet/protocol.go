// Package orwlnet provides remote access to ORWL locations over TCP,
// reproducing the distributed face of the reference library: in the
// ORWL model a location may live in another process or on another
// node, and tasks interact with it through exactly the same
// insert/acquire/release FIFO discipline. The paper's evaluation is
// single-SMP, so this package is the "extension" substrate: it lets
// the examples and tests exercise location sharing across process
// boundaries without changing the protocol semantics.
//
// The wire protocol is deliberately small: length-prefixed binary
// messages, one multiplexed TCP connection per client, each call
// tagged with an id so long-blocking operations (Await) do not stall
// unrelated calls.
package orwlnet

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Operation codes. The location ops (opScale..opReleaseReinsert) are
// the original protocol and work on any connection; the placement ops
// require a version-negotiating opHello handshake first (see
// DESIGN.md, PROTOCOL).
const (
	opScale = iota + 1
	opSize
	opInsert
	opAwait
	opRead
	opWrite
	opRelease
	opReleaseReinsert
	// opHello negotiates the protocol version. Request payload: two
	// bytes [min, max] — the version range the client speaks. Response
	// payload: one byte, the version the server chose (the highest it
	// shares with the client).
	opHello
	// opPlaceCompute runs a placement request (placewire.go codecs).
	opPlaceCompute
	// opTopology fetches the served machine as canonical topology JSON.
	opTopology
	// opPlaceStats fetches the placement service description/counters.
	opPlaceStats
	// opPlaceBatch runs a slice of placement requests in one round
	// trip, fanned across the server's fleet machines (protoBatch).
	opPlaceBatch
)

// errUnknownOp is the error text answered to unrecognised opcodes.
// The wording is FROZEN: clients detect pre-handshake servers by this
// substring when opHello is rejected, and servers built before the
// handshake already reply with exactly this phrase.
const errUnknownOp = "unknown op"

// Protocol versions negotiated by opHello.
const (
	// protoLegacy is the pre-handshake protocol: location ops only.
	// Clients talking to a server that rejects opHello assume it.
	protoLegacy = 0
	// protoPlacement adds the handshake and the placement RPCs.
	protoPlacement = 1
	// protoBatch adds opPlaceBatch and the fleet (schema v2) payload
	// fields: machine selectors, per-slot errors, fleet listings.
	protoBatch = 2
	// protoAdaptive adds the schema v3 stats payload: the adaptive
	// reconciler counters (epochs, drift alarms, remaps) next to the
	// cache counters. Requests and responses are unchanged from v2.
	protoAdaptive = 3
	// protoMax is the highest version this build speaks.
	protoMax = protoAdaptive
)

// schemaForProto maps a negotiated protocol version to the highest
// placement payload schema the peer can decode: the two version spaces
// moved together from protoBatch on (proto 2 ↔ schema 2, proto 3 ↔
// schema 3), with proto 1 pinned to the original schema 1 payloads.
func schemaForProto(proto int) int {
	switch {
	case proto >= protoAdaptive:
		return 3
	case proto >= protoBatch:
		return 2
	default:
		return 1
	}
}

// Status codes.
const (
	statusOK = iota
	statusError
)

// maxMessage bounds a single message (64 MiB), protecting both sides
// against corrupt length prefixes.
const maxMessage = 64 << 20

// message is one framed request or response.
type message struct {
	callID  uint64
	op      byte // request: operation; response: status
	payload []byte
}

// writeMessage frames and writes m.
func writeMessage(w io.Writer, m message) error {
	if len(m.payload) > maxMessage {
		return fmt.Errorf("orwlnet: message payload %d exceeds limit", len(m.payload))
	}
	head := make([]byte, 4+8+1)
	binary.LittleEndian.PutUint32(head, uint32(8+1+len(m.payload)))
	binary.LittleEndian.PutUint64(head[4:], m.callID)
	head[12] = m.op
	if _, err := w.Write(head); err != nil {
		return err
	}
	if len(m.payload) > 0 {
		if _, err := w.Write(m.payload); err != nil {
			return err
		}
	}
	return nil
}

// readMessage reads one framed message.
func readMessage(r io.Reader) (message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return message{}, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 9 || n > maxMessage {
		return message{}, fmt.Errorf("orwlnet: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return message{}, err
	}
	return message{
		callID:  binary.LittleEndian.Uint64(body),
		op:      body[8],
		payload: body[9:],
	}, nil
}

// Payload encoding helpers.

func putString(dst []byte, s string) []byte {
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
	dst = append(dst, l[:]...)
	return append(dst, s...)
}

func getString(src []byte) (string, []byte, error) {
	if len(src) < 2 {
		return "", nil, fmt.Errorf("orwlnet: truncated string")
	}
	n := int(binary.LittleEndian.Uint16(src))
	if len(src) < 2+n {
		return "", nil, fmt.Errorf("orwlnet: truncated string body")
	}
	return string(src[2 : 2+n]), src[2+n:], nil
}

func putUint64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func getUint64(src []byte) (uint64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, fmt.Errorf("orwlnet: truncated integer")
	}
	return binary.LittleEndian.Uint64(src), src[8:], nil
}
