package orwlnet

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"orwlplace/internal/orwl"
)

// Client is one connection to a location server. It is safe for
// concurrent use: calls are tagged and multiplexed, so a blocked
// Acquire does not stall other handles on the same connection.
type Client struct {
	conn    net.Conn
	version int // negotiated protocol version (protoLegacy for old servers)

	callID  atomic.Uint64
	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan message
	err     error
	done    chan struct{}
}

// Dial connects to a server. It is DialContext without a deadline.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to a server, honouring the context's deadline
// and cancellation for both the TCP connect and the version handshake,
// and negotiates the protocol version (servers predating the handshake
// are detected and spoken to as protoLegacy).
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("orwlnet: dial: %w", err)
	}
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan message),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	if err := c.handshake(ctx); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// handshake negotiates the protocol version. A server that rejects
// opHello with an unknown-op error is a legacy build: the connection
// stays usable for the location ops.
func (c *Client) handshake(ctx context.Context) error {
	resp, err := c.callCtx(ctx, opHello, []byte{protoLegacy, protoMax})
	if err != nil {
		if strings.Contains(err.Error(), errUnknownOp) {
			c.version = protoLegacy
			return nil
		}
		return fmt.Errorf("orwlnet: handshake: %w", err)
	}
	if len(resp) < 1 || int(resp[0]) > protoMax {
		return fmt.Errorf("orwlnet: handshake: bad version reply %v", resp)
	}
	c.version = int(resp[0])
	return nil
}

// Version returns the negotiated protocol version.
func (c *Client) Version() int { return c.version }

// Close terminates the connection; outstanding calls fail.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) readLoop() {
	for {
		msg, err := readMessage(c.conn)
		if err != nil {
			c.mu.Lock()
			c.err = fmt.Errorf("orwlnet: connection lost: %w", err)
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			close(c.done)
			return
		}
		c.mu.Lock()
		ch := c.pending[msg.callID]
		delete(c.pending, msg.callID)
		c.mu.Unlock()
		if ch != nil {
			ch <- msg
		}
	}
}

// call performs one request/response round trip.
func (c *Client) call(op byte, payload []byte) ([]byte, error) {
	return c.callCtx(context.Background(), op, payload)
}

// callCtx is call honouring context cancellation: an abandoned call's
// response is discarded by the read loop (the reply channel is
// buffered) and its pending slot reclaimed here.
func (c *Client) callCtx(ctx context.Context, op byte, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	id := c.callID.Add(1)
	ch := make(chan message, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeMessage(c.conn, message{callID: id, op: op, payload: payload})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("orwlnet: send: %w", err)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return nil, err
		}
		if resp.op == statusError {
			return nil, fmt.Errorf("orwlnet: server: %s", string(resp.payload))
		}
		return resp.payload, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Scale resizes a remote location.
func (c *Client) Scale(location string, size int) error {
	if size < 0 {
		return fmt.Errorf("orwlnet: negative size %d", size)
	}
	_, err := c.call(opScale, putUint64(putString(nil, location), uint64(size)))
	return err
}

// Size returns a remote location's buffer size.
func (c *Client) Size(location string) (int, error) {
	resp, err := c.call(opSize, putString(nil, location))
	if err != nil {
		return 0, err
	}
	v, _, err := getUint64(resp)
	return int(v), err
}

// RemoteHandle is the client-side face of a queued request on a remote
// location; it mirrors orwl.Handle's lifecycle.
type RemoteHandle struct {
	c        *Client
	id       uint64
	mode     orwl.Mode
	acquired bool
	spent    bool
}

// Insert queues a request on the remote location. Remote requests are
// FIFO-ordered by arrival (the steady-state ordering of the runtime;
// initial priority ordering happens inside the owning process).
func (c *Client) Insert(location string, mode orwl.Mode) (*RemoteHandle, error) {
	payload := append(putString(nil, location), byte(mode))
	resp, err := c.call(opInsert, payload)
	if err != nil {
		return nil, err
	}
	id, _, err := getUint64(resp)
	if err != nil {
		return nil, err
	}
	return &RemoteHandle{c: c, id: id, mode: mode}, nil
}

// Acquire blocks until the remote FIFO grants the request.
func (h *RemoteHandle) Acquire() error {
	if h.spent {
		return fmt.Errorf("orwlnet: acquire on spent handle")
	}
	if h.acquired {
		return fmt.Errorf("orwlnet: double acquire")
	}
	if _, err := h.c.call(opAwait, putUint64(nil, h.id)); err != nil {
		return err
	}
	h.acquired = true
	return nil
}

// Read fetches the location content; the handle must be acquired.
func (h *RemoteHandle) Read() ([]byte, error) {
	if !h.acquired {
		return nil, fmt.Errorf("orwlnet: read without grant")
	}
	return h.c.call(opRead, putUint64(nil, h.id))
}

// Write replaces the leading bytes of the location content; the handle
// must be an acquired write handle.
func (h *RemoteHandle) Write(data []byte) error {
	if !h.acquired {
		return fmt.Errorf("orwlnet: write without grant")
	}
	_, err := h.c.call(opWrite, append(putUint64(nil, h.id), data...))
	return err
}

// Release ends the critical section; the handle becomes spent.
func (h *RemoteHandle) Release() error {
	if !h.acquired {
		return fmt.Errorf("orwlnet: release without acquire")
	}
	if _, err := h.c.call(opRelease, putUint64(nil, h.id)); err != nil {
		return err
	}
	h.acquired = false
	h.spent = true
	return nil
}

// ReleaseReinsert atomically releases and queues the next iteration
// (the iterative orwl_handle2 step).
func (h *RemoteHandle) ReleaseReinsert() error {
	if !h.acquired {
		return fmt.Errorf("orwlnet: release without acquire")
	}
	if _, err := h.c.call(opReleaseReinsert, putUint64(nil, h.id)); err != nil {
		return err
	}
	h.acquired = false
	return nil
}

// Section runs fn under the grant and releases afterwards, re-queueing
// when iterative is true.
func (h *RemoteHandle) Section(iterative bool, fn func(h *RemoteHandle) error) error {
	if err := h.Acquire(); err != nil {
		return err
	}
	ferr := fn(h)
	var rerr error
	if iterative {
		rerr = h.ReleaseReinsert()
	} else {
		rerr = h.Release()
	}
	if ferr != nil {
		return ferr
	}
	return rerr
}
