package orwlnet

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"orwlplace/internal/orwl"
)

// Client is one connection to a location server. It is safe for
// concurrent use: calls are tagged and multiplexed, so a blocked
// Acquire does not stall other handles on the same connection. Frames
// are handed to a single writer goroutine, so a caller never blocks on
// another caller's socket write — the transport pipelines as deep as
// the send queue.
type Client struct {
	conn     net.Conn
	version  int // negotiated protocol version (protoLegacy for old servers)
	maxProto int // ceiling offered in the handshake (WithMaxProtocol)

	callID atomic.Uint64
	sendCh chan outFrame

	// turnMu lock-steps placement RPCs on pre-pipeline connections
	// (held by RemoteService.placeCall, never by location ops).
	turnMu sync.Mutex

	// Wire byte counters (frames in/out including headers), read by
	// WireStats for throughput accounting.
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan message
	// streams are call ids turned into subscriptions (opWatchRemaps):
	// unlike pending slots they survive their first response frame, and
	// the server pushes unsolicited frames at them until the stream is
	// closed. Delivery is latest-wins: each frame is a full snapshot,
	// so a slow consumer loses history, never the newest state.
	streams map[uint64]chan message
	err     error
	done    chan struct{}
}

// outFrame is one queued request frame. pooled marks a payload drawn
// from payloadPool: ownership transfers to the writer goroutine at
// enqueue, which recycles it after the bytes hit the wire — the caller
// must not touch it again, even if its context is canceled while the
// frame is still queued.
type outFrame struct {
	msg    message
	pooled bool
}

// sendQueueDepth bounds frames queued to the writer. Deep enough that
// a pipelining caller fleet never stalls on the queue itself, shallow
// enough to apply back-pressure when the socket is the bottleneck.
const sendQueueDepth = 256

// DialOption customises a Dial/DialContext connection.
type DialOption func(*dialConfig)

// DialFunc opens the transport connection a Client runs over. The
// default is a plain TCP dial; tests inject fault-wrapped dialers
// (internal/faultnet) through WithDialFunc.
type DialFunc func(ctx context.Context, network, addr string) (net.Conn, error)

type dialConfig struct {
	maxProto int
	poolSize int
	dial     DialFunc
	retry    *RetryPolicy
}

// WithMaxProtocol caps the protocol version offered in the handshake.
// A client pinned below ProtoPipeline speaks the pre-pipeline
// transport even to a new server — placement calls run lock-step and
// matrices cross dense, which is what cmd/placeload measures as its
// baseline.
func WithMaxProtocol(v int) DialOption {
	return func(cfg *dialConfig) { cfg.maxProto = v }
}

// WithPoolSize sets how many connections a pooled dialer
// (DialPlacement / NewRemoteService) opens. The plain Dial/DialContext
// single-connection client ignores it.
func WithPoolSize(n int) DialOption {
	return func(cfg *dialConfig) { cfg.poolSize = n }
}

// WithDialFunc replaces the transport dialer — the seam fault
// injection (internal/faultnet) and custom transports plug into. The
// function receives the network "tcp" and the dialed address.
func WithDialFunc(fn DialFunc) DialOption {
	return func(cfg *dialConfig) { cfg.dial = fn }
}

// WithRetryPolicy arms a RemoteService built by DialPlacementService
// with client-side retries: idempotent calls that fail transiently
// (connection lost, dial refused, server rate limit) back off, revive
// dead pooled connections, and re-attempt under p. The zero policy
// means DefaultRetryPolicy. Without this option calls fail on the
// first error, the historical behaviour.
func WithRetryPolicy(p RetryPolicy) DialOption {
	p = p.withDefaults()
	return func(cfg *dialConfig) { cfg.retry = &p }
}

func applyDialOptions(opts []DialOption) dialConfig {
	cfg := dialConfig{maxProto: protoMax, poolSize: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxProto < protoLegacy || cfg.maxProto > protoMax {
		cfg.maxProto = protoMax
	}
	if cfg.poolSize < 1 {
		cfg.poolSize = 1
	}
	return cfg
}

// Dial connects to a server. It is DialContext without a deadline.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	return DialContext(context.Background(), addr, opts...)
}

// DialContext connects to a server, honouring the context's deadline
// and cancellation for both the TCP connect and the version handshake,
// and negotiates the protocol version (servers predating the handshake
// are detected and spoken to as protoLegacy).
func DialContext(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	cfg := applyDialOptions(opts)
	dial := cfg.dial
	if dial == nil {
		var d net.Dialer
		dial = d.DialContext
	}
	conn, err := dial(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("orwlnet: dial: %w", err)
	}
	c := &Client{
		conn:     conn,
		maxProto: cfg.maxProto,
		sendCh:   make(chan outFrame, sendQueueDepth),
		pending:  make(map[uint64]chan message),
		streams:  make(map[uint64]chan message),
		done:     make(chan struct{}),
	}
	go c.readLoop()
	go c.writeLoop()
	if err := c.handshake(ctx); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// handshake negotiates the protocol version. A server that rejects
// opHello with an unknown-op error is a legacy build: the connection
// stays usable for the location ops.
func (c *Client) handshake(ctx context.Context) error {
	resp, err := c.callCtx(ctx, opHello, []byte{protoLegacy, byte(c.maxProto)})
	if err != nil {
		if strings.Contains(err.Error(), errUnknownOp) {
			c.version = protoLegacy
			return nil
		}
		return fmt.Errorf("orwlnet: handshake: %w", err)
	}
	if len(resp) < 1 || int(resp[0]) > c.maxProto {
		return fmt.Errorf("orwlnet: handshake: bad version reply %v", resp)
	}
	c.version = int(resp[0])
	return nil
}

// Version returns the negotiated protocol version.
func (c *Client) Version() int { return c.version }

// WireStats returns the bytes this connection has read and written,
// frame headers included.
func (c *Client) WireStats() (bytesIn, bytesOut uint64) {
	return c.bytesIn.Load(), c.bytesOut.Load()
}

// Close terminates the connection; outstanding calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// Dead reports whether the connection has failed (its read loop has
// exited): calls on it can only return the recorded error. Pool
// revival uses this to pick which slots to redial.
func (c *Client) Dead() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

func (c *Client) readLoop() {
	// Buffered reads: a pipelining server answers in bursts, and the
	// buffer turns per-frame header+body read pairs into one syscall
	// per burst.
	br := bufio.NewReaderSize(c.conn, 32<<10)
	for {
		msg, err := readMessage(br)
		if err != nil {
			c.mu.Lock()
			c.err = fmt.Errorf("orwlnet: connection lost: %w", err)
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			// Closing a stream channel is how its watcher learns the
			// connection died (and should resubscribe elsewhere).
			for id, ch := range c.streams {
				close(ch)
				delete(c.streams, id)
			}
			c.mu.Unlock()
			close(c.done)
			return
		}
		c.bytesIn.Add(13 + uint64(len(msg.payload)))
		c.mu.Lock()
		ch := c.pending[msg.callID]
		if ch != nil {
			delete(c.pending, msg.callID)
		} else if sch := c.streams[msg.callID]; sch != nil {
			// Deliver under the lock (closeStream also closes under it):
			// latest-wins into the buffered channel, never blocking the
			// read loop on a slow watcher.
			select {
			case sch <- msg:
			default:
				select {
				case <-sch:
				default:
				}
				select {
				case sch <- msg:
				default:
				}
			}
		}
		c.mu.Unlock()
		if ch != nil {
			ch <- msg
		}
	}
}

// writeLoop is the connection's only socket writer: callers enqueue
// frames and return to waiting on their reply channel, so N callers
// pipeline N frames without serialising on each other's syscalls. On
// a write error it closes the connection — the read loop then fails
// every pending call — and keeps draining the queue so enqueued
// pooled buffers are still recycled.
func (c *Client) writeLoop() {
	// Writes go through a buffer that is flushed only when the send
	// queue runs dry: a burst of pipelined frames crosses in one
	// syscall instead of one per frame.
	bw := bufio.NewWriterSize(c.conn, 32<<10)
	var dead bool
	write := func(f outFrame) {
		if !dead {
			if err := writeMessage(bw, f.msg); err != nil {
				dead = true
				c.conn.Close()
			} else {
				c.bytesOut.Add(13 + uint64(len(f.msg.payload)))
			}
		}
		if f.pooled {
			putPayloadBuf(f.msg.payload)
		}
	}
	for {
		select {
		case f := <-c.sendCh:
			write(f)
			// Batch whatever else is already queued before paying the
			// flush.
		drain:
			for {
				select {
				case f := <-c.sendCh:
					write(f)
				default:
					break drain
				}
			}
			if !dead {
				if err := bw.Flush(); err != nil {
					dead = true
					c.conn.Close()
				}
			}
		case <-c.done:
			// Connection dead and no more replies will come: discard
			// whatever is still queued, recycling its buffers. A frame
			// enqueued after this drain is dropped unrecycled — the pool
			// tolerates that, and its caller is already being failed via
			// the closed pending channels.
			for {
				select {
				case f := <-c.sendCh:
					if f.pooled {
						putPayloadBuf(f.msg.payload)
					}
				default:
					return
				}
			}
		}
	}
}

// call performs one request/response round trip.
func (c *Client) call(op byte, payload []byte) ([]byte, error) {
	return c.callCtx(context.Background(), op, payload)
}

// callCtx is call honouring context cancellation: an abandoned call's
// response is discarded by the read loop (the reply channel is
// buffered) and its pending slot reclaimed here.
func (c *Client) callCtx(ctx context.Context, op byte, payload []byte) ([]byte, error) {
	return c.callPooled(ctx, op, payload, false)
}

// callPooled is callCtx for payloads drawn from payloadPool: the
// buffer's ownership transfers to the writer goroutine once the frame
// is enqueued (the writer recycles it after the write), and is
// recycled here when enqueueing fails. Either way the caller must not
// reuse the buffer after this call.
func (c *Client) callPooled(ctx context.Context, op byte, payload []byte, pooled bool) ([]byte, error) {
	recycle := func() {
		if pooled {
			putPayloadBuf(payload)
		}
	}
	if err := ctx.Err(); err != nil {
		recycle()
		return nil, err
	}
	id := c.callID.Add(1)
	ch := make(chan message, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		recycle()
		return nil, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	select {
	case c.sendCh <- outFrame{msg: message{callID: id, op: op, payload: payload}, pooled: pooled}:
		// Ownership of the payload is the writer's now.
	case <-c.done:
		c.mu.Lock()
		err := c.err
		delete(c.pending, id)
		c.mu.Unlock()
		recycle()
		return nil, err
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		recycle()
		return nil, ctx.Err()
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return nil, err
		}
		if resp.op == statusError {
			return nil, fmt.Errorf("orwlnet: server: %s", string(resp.payload))
		}
		return resp.payload, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// openStream sends a request frame whose call id becomes a
// subscription: every response frame with that id — the ack and each
// later push — arrives on the returned channel until closeStream, or
// until the connection dies (the channel is then closed). The first
// message is the server's ack (statusError if the subscription was
// refused); the caller decodes it like any other frame.
func (c *Client) openStream(ctx context.Context, op byte, payload []byte) (uint64, <-chan message, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	id := c.callID.Add(1)
	ch := make(chan message, 8)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, nil, err
	}
	c.streams[id] = ch
	c.mu.Unlock()

	select {
	case c.sendCh <- outFrame{msg: message{callID: id, op: op, payload: payload}}:
		return id, ch, nil
	case <-c.done:
		c.mu.Lock()
		err := c.err
		delete(c.streams, id)
		c.mu.Unlock()
		return 0, nil, err
	case <-ctx.Done():
		c.closeStream(id)
		return 0, nil, ctx.Err()
	}
}

// closeStream abandons a subscription client-side: later frames with
// its call id are dropped by the read loop. (The server learns when
// the connection closes; there is no unsubscribe frame — watch
// connections are dedicated or long-lived.)
func (c *Client) closeStream(id uint64) {
	c.mu.Lock()
	if ch, ok := c.streams[id]; ok {
		delete(c.streams, id)
		close(ch)
	}
	c.mu.Unlock()
}

// Scale resizes a remote location.
func (c *Client) Scale(location string, size int) error {
	if size < 0 {
		return fmt.Errorf("orwlnet: negative size %d", size)
	}
	_, err := c.call(opScale, putUint64(putString(nil, location), uint64(size)))
	return err
}

// Size returns a remote location's buffer size.
func (c *Client) Size(location string) (int, error) {
	resp, err := c.call(opSize, putString(nil, location))
	if err != nil {
		return 0, err
	}
	v, _, err := getUint64(resp)
	return int(v), err
}

// RemoteHandle is the client-side face of a queued request on a remote
// location; it mirrors orwl.Handle's lifecycle.
type RemoteHandle struct {
	c        *Client
	id       uint64
	mode     orwl.Mode
	acquired bool
	spent    bool
}

// Insert queues a request on the remote location. Remote requests are
// FIFO-ordered by arrival (the steady-state ordering of the runtime;
// initial priority ordering happens inside the owning process).
func (c *Client) Insert(location string, mode orwl.Mode) (*RemoteHandle, error) {
	payload := append(putString(nil, location), byte(mode))
	resp, err := c.call(opInsert, payload)
	if err != nil {
		return nil, err
	}
	id, _, err := getUint64(resp)
	if err != nil {
		return nil, err
	}
	return &RemoteHandle{c: c, id: id, mode: mode}, nil
}

// Acquire blocks until the remote FIFO grants the request.
func (h *RemoteHandle) Acquire() error {
	if h.spent {
		return fmt.Errorf("orwlnet: acquire on spent handle")
	}
	if h.acquired {
		return fmt.Errorf("orwlnet: double acquire")
	}
	if _, err := h.c.call(opAwait, putUint64(nil, h.id)); err != nil {
		return err
	}
	h.acquired = true
	return nil
}

// Read fetches the location content; the handle must be acquired.
func (h *RemoteHandle) Read() ([]byte, error) {
	if !h.acquired {
		return nil, fmt.Errorf("orwlnet: read without grant")
	}
	return h.c.call(opRead, putUint64(nil, h.id))
}

// Write replaces the leading bytes of the location content; the handle
// must be an acquired write handle.
func (h *RemoteHandle) Write(data []byte) error {
	if !h.acquired {
		return fmt.Errorf("orwlnet: write without grant")
	}
	_, err := h.c.call(opWrite, append(putUint64(nil, h.id), data...))
	return err
}

// Release ends the critical section; the handle becomes spent.
func (h *RemoteHandle) Release() error {
	if !h.acquired {
		return fmt.Errorf("orwlnet: release without acquire")
	}
	if _, err := h.c.call(opRelease, putUint64(nil, h.id)); err != nil {
		return err
	}
	h.acquired = false
	h.spent = true
	return nil
}

// ReleaseReinsert atomically releases and queues the next iteration
// (the iterative orwl_handle2 step).
func (h *RemoteHandle) ReleaseReinsert() error {
	if !h.acquired {
		return fmt.Errorf("orwlnet: release without acquire")
	}
	if _, err := h.c.call(opReleaseReinsert, putUint64(nil, h.id)); err != nil {
		return err
	}
	h.acquired = false
	return nil
}

// Section runs fn under the grant and releases afterwards, re-queueing
// when iterative is true.
func (h *RemoteHandle) Section(iterative bool, fn func(h *RemoteHandle) error) error {
	if err := h.Acquire(); err != nil {
		return err
	}
	ferr := fn(h)
	var rerr error
	if iterative {
		rerr = h.ReleaseReinsert()
	} else {
		rerr = h.Release()
	}
	if ferr != nil {
		return ferr
	}
	return rerr
}
