package orwlnet

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"orwlplace/internal/comm"
	"orwlplace/internal/ctrlplane"
	"orwlplace/internal/faultnet"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// PR 8 robustness: retry/backoff under injected faults, and the
// hostile-peer hardening acceptance scenarios over the real wire.

// fastRetry keeps fault-injection tests quick: tight backoff, enough
// attempts to outlast the injected failures.
func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond, Multiplier: 2, Jitter: 0.2}
}

// TestPlaceRetriesThroughSeveredConnections: the client's dial path is
// wrapped with a fault injector that kills every connection after a
// few writes. Without a retry policy the calls die with the
// connection; with one, every call lands — the stub revives dead pool
// slots between attempts, and revival goes through the same (faulty)
// dialer, proving recovery is repeatable rather than lucky.
func TestPlaceRetriesThroughSeveredConnections(t *testing.T) {
	_, _, addr := startPlacementServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// 3 writes per connection: the hello plus two calls, then the plan
	// severs it mid-conversation.
	inj := faultnet.New(faultnet.Plan{Seed: 42, SeverAfterWrites: 3})
	rs, err := DialPlacementService(ctx, addr, WithDialFunc(inj.DialFunc(nil)), WithRetryPolicy(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	req := &placement.PlaceRequest{Strategy: placement.TreeMatch, Matrix: chainMatrix(4)}
	for i := 0; i < 10; i++ {
		resp, err := rs.Place(ctx, req)
		if err != nil {
			t.Fatalf("place %d under severed connections: %v", i, err)
		}
		if resp.Assignment == nil || len(resp.Assignment.ComputePU) != 4 {
			t.Fatalf("place %d returned a damaged assignment: %+v", i, resp)
		}
	}
	if _, _, _, severed := inj.Counters(); severed == 0 {
		t.Fatal("the fault plan never fired — the test proved nothing")
	}

	// Control: the same fault plan without a retry policy loses calls.
	inj2 := faultnet.New(faultnet.Plan{Seed: 42, SeverAfterWrites: 3})
	bare, err := DialPlacementService(ctx, addr, WithDialFunc(inj2.DialFunc(nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	var failed bool
	for i := 0; i < 10; i++ {
		if _, err := bare.Place(ctx, req); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("control without retry survived the fault plan — the plan is too weak to test retries")
	}
}

// TestRetryHonoursDeadlineBudget: a per-attempt budget turns a stalled
// connection into a timely retry, and the parent deadline still cuts
// the whole call off.
func TestRetryHonoursDeadlineBudget(t *testing.T) {
	_, _, addr := startPlacementServer(t)
	ctx := context.Background()

	// Every write stalls longer than the attempt budget. The call must
	// exhaust its attempts and fail within the parent deadline, not hang.
	inj := faultnet.New(faultnet.Plan{Seed: 9, DelayProb: 1, Delay: 300 * time.Millisecond})
	pol := fastRetry()
	pol.MaxAttempts = 2
	pol.AttemptBudget = 50 * time.Millisecond
	rs, err := DialPlacementService(ctx, addr, WithDialFunc(inj.DialFunc(nil)), WithRetryPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	callCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	start := time.Now()
	_, err = rs.Place(callCtx, &placement.PlaceRequest{Strategy: placement.TreeMatch, Matrix: chainMatrix(4)})
	if err == nil {
		t.Fatal("place succeeded through a 100% stall plan")
	}
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Fatalf("budgeted retries took %v, want well under the parent deadline", elapsed)
	}
}

// hardenedFleetServer hosts a control plane with the hostile-peer
// limits engaged: a per-lease report rate and per-connection caps.
func hardenedFleetServer(t *testing.T, cfg ctrlplane.Config, opts ...ServerOption) (*ctrlplane.Controller, string) {
	t.Helper()
	fleet := placement.NewMultiService()
	if err := fleet.AddMachine("fig2", topology.Fig2Machine()); err != nil {
		t.Fatal(err)
	}
	if cfg.Adaptive.Workload == nil {
		threads := make([]perfsim.Thread, fleetTasks)
		for i := range threads {
			threads[i] = perfsim.Thread{ComputeCycles: 1e5, WorkingSet: 1 << 20, MemoryTraffic: 1 << 14}
		}
		cfg.Adaptive.Horizon = 500
		cfg.Adaptive.Workload = &perfsim.Workload{Name: "hardened-test", Threads: threads, Iterations: 1}
	}
	if cfg.StaleAfter == 0 {
		cfg.StaleAfter = -1
	}
	ctrl, err := ctrlplane.NewController(fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis, nil, append([]ServerOption{WithPlacement(fleet), WithControlPlane(ctrl)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return ctrl, lis.Addr().String()
}

// TestSpammerThrottledWithoutCollateral is the acceptance scenario:
// one peer hammering ReportObserved is throttled with a retryable
// error and counted in FleetStats, while another peer on the same
// daemon keeps reporting untouched.
func TestSpammerThrottledWithoutCollateral(t *testing.T) {
	_, addr := hardenedFleetServer(t, ctrlplane.Config{ReportRate: 5, ReportBurst: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const half = fleetTasks / 2
	dial := func() *RemoteService {
		rs, err := DialPlacementService(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rs.Close() })
		return rs
	}
	spammer, polite := dial(), dial()
	spamLease, err := spammer.RegisterLease(ctx, "", "spammer", 0, half)
	if err != nil {
		t.Fatal(err)
	}
	politeLease, err := polite.RegisterLease(ctx, "", "polite", half, half)
	if err != nil {
		t.Fatal(err)
	}

	// Burn the burst, then hit the limit: the refusal must be the
	// retryable kind (a polite client backs off; the server does not
	// hang up).
	var throttledErr error
	for seq := uint64(1); seq <= 20 && throttledErr == nil; seq++ {
		throttledErr = spammer.ReportObserved(ctx, spamLease, seq, fleetRing(half, 1))
	}
	if throttledErr == nil || !strings.Contains(throttledErr.Error(), "rate limit") {
		t.Fatalf("spam burst: err = %v, want rate limit", throttledErr)
	}
	if !retryableError(throttledErr) {
		t.Fatalf("throttle error %v is not classified retryable", throttledErr)
	}

	// The polite peer on the same daemon is unaffected (its own bucket
	// is untouched — limits are per lease, not global).
	if err := polite.ReportObserved(ctx, politeLease, 1, fleetRing(half, 1)); err != nil {
		t.Fatalf("polite peer throttled by the spammer: %v", err)
	}

	// And the abuse shows up in the daemon's stats over the wire.
	st, err := polite.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fleet.ReportsThrottled == 0 {
		t.Fatalf("FleetStats.ReportsThrottled = %+v, want > 0", st.Fleet)
	}

	// The spammer's connection survived the refusals: backing off and
	// retrying under the same lease still works.
	time.Sleep(600 * time.Millisecond) // >2 tokens at 5/sec
	if err := spammer.ReportObserved(ctx, spamLease, 21, fleetRing(half, 1)); err != nil {
		t.Fatalf("spammer's post-backoff report: %v", err)
	}
}

// TestLeaseTokenGuardsDisplacement is the acceptance scenario: a
// client without the lease's ownership token cannot displace it, and
// the conflict is counted in FleetStats.
func TestLeaseTokenGuardsDisplacement(t *testing.T) {
	_, addr := hardenedFleetServer(t, ctrlplane.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	owner, err := DialPlacementService(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	const half = fleetTasks / 2
	lease, err := owner.RegisterLeaseToken(ctx, "", "worker", 0, half, 0x0ddc0ffee)
	if err != nil {
		t.Fatal(err)
	}

	// A hostile client naming the same identity without the token is
	// refused — with and with a wrong token.
	thief, err := DialPlacementService(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer thief.Close()
	if _, err := thief.RegisterLease(ctx, "", "worker", 0, half); err == nil || !strings.Contains(err.Error(), "lease conflict") {
		t.Fatalf("tokenless displacement: err = %v, want lease conflict", err)
	}
	wrongTok := func() error {
		_, err := thief.RegisterLeaseToken(ctx, "", "worker", 0, half, 0xbad)
		return err
	}
	if err := wrongTok(); err == nil || !strings.Contains(err.Error(), "lease conflict") {
		t.Fatalf("wrong-token displacement: err = %v, want lease conflict", err)
	} else if retryableError(err) {
		t.Fatalf("lease conflict %v classified retryable — a thief would spin on it", err)
	}

	// The owner's lease still reports fine, and re-presenting the token
	// re-registers (the reconnect path).
	if err := owner.ReportObserved(ctx, lease, 1, fleetRing(half, 1)); err != nil {
		t.Fatalf("owner's lease damaged by displacement attempts: %v", err)
	}
	if _, err := owner.RegisterLeaseToken(ctx, "", "worker", 0, half, 0x0ddc0ffee); err != nil {
		t.Fatalf("owner re-registration refused: %v", err)
	}

	st, err := owner.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fleet.LeaseConflicts != 2 {
		t.Fatalf("FleetStats.LeaseConflicts = %+v, want 2", st.Fleet)
	}
}

// TestReportCapsRefuseOversizedFrames: the per-connection decode caps
// refuse a frame over the byte cap and a delta over the row cap before
// any decoding work is spent.
func TestReportCapsRefuseOversizedFrames(t *testing.T) {
	_, addr := hardenedFleetServer(t, ctrlplane.Config{},
		WithReportCaps(256, 8, 0, 0))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	rs, err := DialPlacementService(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	// Within both caps: a small report on a small lease works.
	small, err := rs.RegisterLease(ctx, "", "small", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.ReportObserved(ctx, small, 1, fleetRing(4, 1)); err != nil {
		t.Fatalf("within-caps report refused: %v", err)
	}

	// Over the row cap: a 16-task delta against the 8-row cap.
	big, err := rs.RegisterLease(ctx, "", "big", 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	err = rs.ReportObserved(ctx, big, 1, fleetRing(16, 1))
	if err == nil || !strings.Contains(err.Error(), "row cap") {
		t.Fatalf("over-row report: err = %v, want row cap refusal", err)
	}

	// Over the byte cap: a dense matrix big enough to blow 256 bytes.
	dense := comm.NewMatrix(16)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if i != j {
				dense.AddSym(i, j, float64(i*16+j)+0.5)
			}
		}
	}
	err = rs.ReportObserved(ctx, big, 2, dense)
	if err == nil || !strings.Contains(err.Error(), "frame cap") {
		t.Fatalf("over-byte report: err = %v, want frame cap refusal", err)
	}
}

// TestReportByteBudgetThrottles: the per-connection bytes/sec budget
// throttles a flood with a retryable error.
func TestReportByteBudgetThrottles(t *testing.T) {
	_, addr := hardenedFleetServer(t, ctrlplane.Config{},
		WithReportCaps(0, 0, 64, 256))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	rs, err := DialPlacementService(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	lease, err := rs.RegisterLease(ctx, "", "flood", 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	var budgetErr error
	for seq := uint64(1); seq <= 50 && budgetErr == nil; seq++ {
		budgetErr = rs.ReportObserved(ctx, lease, seq, fleetRing(16, float64(seq)))
	}
	if budgetErr == nil || !strings.Contains(budgetErr.Error(), "rate limit") {
		t.Fatalf("flood: err = %v, want byte-budget rate limit", budgetErr)
	}
	if !retryableError(budgetErr) {
		t.Fatalf("byte-budget error %v is not classified retryable", budgetErr)
	}
}
