package orwlnet

import (
	"context"
	"net"
	"testing"
	"time"

	"orwlplace/internal/ctrlplane"
	"orwlplace/internal/placement"
)

// Schema v6 delta-push tests: the codec round trip, the delta-vs-full
// chooser, the server pusher's eligibility tracking, the client's
// apply/resync paths against a scripted daemon, and the cross-version
// matrix (a v5 subscriber against a v6 daemon and the reverse).

// deltaAssignment builds a fully-populated assignment (compute,
// control and core slices) deterministic in seed.
func deltaAssignment(n, seed int) *placement.Assignment {
	a := &placement.Assignment{
		Strategy:  placement.TreeMatch,
		ComputePU: make([]int, n),
		ControlPU: make([]int, n),
		CoreOf:    make([]int, n),
	}
	for i := 0; i < n; i++ {
		a.ComputePU[i] = (i*7 + seed) % 16
		a.ControlPU[i] = -1
		a.CoreOf[i] = (i + seed) % 8
	}
	return a
}

// deltaShift clones a and moves the named tasks to new PUs/cores.
func deltaShift(a *placement.Assignment, tasks ...int) *placement.Assignment {
	b := a.Clone()
	for _, t := range tasks {
		b.ComputePU[t] = (b.ComputePU[t] + 1) % 16
		b.CoreOf[t] = (b.CoreOf[t] + 1) % 8
	}
	return b
}

func sameAssignment(t *testing.T, got, want *placement.Assignment) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("assignment presence: got %v, want %v", got != nil, want != nil)
	}
	if got.Strategy != want.Strategy || got.Unbound != want.Unbound ||
		got.Oversubscribed != want.Oversubscribed || got.Mode != want.Mode {
		t.Fatalf("assignment header differs: %+v vs %+v", got, want)
	}
	for name, pair := range map[string][2][]int{
		"ComputePU": {got.ComputePU, want.ComputePU},
		"ControlPU": {got.ControlPU, want.ControlPU},
		"CoreOf":    {got.CoreOf, want.CoreOf},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("%s length %d, want %d", name, len(pair[0]), len(pair[1]))
		}
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("%s[%d] = %d, want %d", name, i, pair[0][i], pair[1][i])
			}
		}
	}
}

func TestRemapDeltaRoundTrip(t *testing.T) {
	prev := deltaAssignment(32, 0)
	next := deltaShift(prev, 3, 9, 20)
	ev := &ctrlplane.Remap{
		Machine:            "fig2",
		Epoch:              5,
		Drift:              0.25,
		Assignment:         next,
		MovedTasks:         []int{20, 3, 9}, // unsorted on purpose
		RemappedPartitions: []int{2, 0},
	}
	d, err := buildRemapDelta(ev)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := encodeRemapDelta(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	full, d2, err := decodeRemapFrameAny(frame)
	if err != nil {
		t.Fatal(err)
	}
	if full != nil || d2 == nil {
		t.Fatalf("delta frame decoded as full=%v delta=%v", full != nil, d2 != nil)
	}
	if d2.Machine != "fig2" || d2.Epoch != 5 || d2.Drift != 0.25 || d2.Order != 32 {
		t.Fatalf("delta header = %+v", d2)
	}
	if len(d2.Tasks) != 3 || d2.Tasks[0] != 3 || d2.Tasks[1] != 9 || d2.Tasks[2] != 20 {
		t.Fatalf("moved tasks = %v, want sorted {3,9,20}", d2.Tasks)
	}
	if len(d2.Parts) != 2 || d2.Parts[0] != 0 || d2.Parts[1] != 2 {
		t.Fatalf("partitions = %v, want sorted {0,2}", d2.Parts)
	}
	a, err := applyRemapDelta(prev, d2)
	if err != nil {
		t.Fatal(err)
	}
	sameAssignment(t, a, next)
	// prev is untouched by the apply.
	if prev.ComputePU[3] == next.ComputePU[3] {
		t.Fatal("shift did not move task 3 (test bug)")
	}
	rm := d2.remap(a)
	if rm.Epoch != 5 || !rm.Delta || len(rm.MovedTasks) != 3 || len(rm.RemappedPartitions) != 2 {
		t.Fatalf("delta remap event = %+v", rm)
	}
	// The strict decoder refuses the delta form.
	if _, err := decodeRemapFrame(frame); err == nil {
		t.Fatal("decodeRemapFrame accepted a delta frame")
	}
}

func TestEncodeRemapFrameV6Chooser(t *testing.T) {
	prev := deltaAssignment(64, 0)
	next := deltaShift(prev, 5)
	ev := &ctrlplane.Remap{Machine: "m", Epoch: 2, Assignment: next, MovedTasks: []int{5}}

	frame, isDelta, err := encodeRemapFrameV6(nil, ev, true)
	if err != nil {
		t.Fatal(err)
	}
	if !isDelta {
		t.Fatal("one moved task out of 64 did not ship as a delta")
	}
	if _, d, err := decodeRemapFrameAny(frame); err != nil || d == nil {
		t.Fatalf("chooser's delta frame decode = (%v, %v)", d, err)
	}
	fullFrame, isFull, err := encodeRemapFrameV6(nil, ev, false)
	if err != nil {
		t.Fatal(err)
	}
	if isFull {
		t.Fatal("allowDelta=false still produced a delta")
	}
	if gotEv, _, err := decodeRemapFrameAny(fullFrame); err != nil || gotEv == nil {
		t.Fatalf("full frame decode = (%v, %v)", gotEv, err)
	} else {
		sameAssignment(t, gotEv.Assignment, next)
	}
	if len(frame) >= len(fullFrame) {
		t.Fatalf("delta frame is %d bytes, full is %d — delta should be smaller", len(frame), len(fullFrame))
	}

	// When every task moved the delta cannot be smaller (it carries the
	// same values plus the task-id gaps): the chooser falls back to full.
	all := make([]int, 64)
	for i := range all {
		all[i] = i
	}
	ev2 := &ctrlplane.Remap{Machine: "m", Epoch: 2, Assignment: deltaShift(prev, all...), MovedTasks: all}
	if _, isDelta, err := encodeRemapFrameV6(nil, ev2, true); err != nil || isDelta {
		t.Fatalf("all-tasks-moved encode = (delta=%v, %v), want full", isDelta, err)
	}

	// No moved-task set: not delta-eligible regardless of allowDelta.
	ev3 := &ctrlplane.Remap{Machine: "m", Epoch: 2, Assignment: next}
	if _, isDelta, err := encodeRemapFrameV6(nil, ev3, true); err != nil || isDelta {
		t.Fatalf("nil moved set encode = (delta=%v, %v), want full", isDelta, err)
	}
}

// TestWatchPusherDeltaEligibility drives watchPusher directly over a
// net.Pipe and checks the per-subscriber epoch tracking: only an event
// exactly one epoch past the last delivered one (that knows its moved
// tasks) ships as a delta; gaps and unknown-diff events fall back to
// full frames.
func TestWatchPusherDeltaEligibility(t *testing.T) {
	srvC, cliC := net.Pipe()
	defer cliC.Close()
	s := &Server{maxProto: protoMax}
	st := &connState{conn: srvC}
	st.inflight.Add(1)
	s.wg.Add(1)
	events := make(chan ctrlplane.Remap, 1)
	go s.watchPusher(st, 7, 1, schemaDelta, 1, events)

	read := func() (*ctrlplane.Remap, *remapDelta) {
		t.Helper()
		if err := cliC.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
		msg, err := readMessage(cliC)
		if err != nil {
			t.Fatal(err)
		}
		if msg.callID != 7 || msg.op != statusOK {
			t.Fatalf("pushed frame callID=%d op=%d", msg.callID, msg.op)
		}
		ev, d, err := decodeRemapFrameAny(msg.payload)
		if err != nil {
			t.Fatal(err)
		}
		return ev, d
	}

	base := deltaAssignment(32, 0)

	// Epoch 2 on a subscriber holding epoch 1, moved set known: delta.
	next := deltaShift(base, 4)
	events <- ctrlplane.Remap{Machine: "m", Epoch: 2, Assignment: next, MovedTasks: []int{4}}
	if ev, d := read(); d == nil {
		t.Fatalf("adjacent-epoch push was a full frame (epoch %d)", ev.Epoch)
	} else if d.Epoch != 2 || len(d.Tasks) != 1 || d.Tasks[0] != 4 {
		t.Fatalf("delta = %+v", d)
	}

	// Epoch 4 (the pusher last delivered 2 — a coalesced push skipped
	// 3): the gap forces a full frame even though the diff is known.
	gap := deltaShift(next, 9)
	events <- ctrlplane.Remap{Machine: "m", Epoch: 4, Assignment: gap, MovedTasks: []int{9}}
	if ev, d := read(); d != nil {
		t.Fatal("epoch-gap push shipped as a delta")
	} else if ev.Epoch != 4 {
		t.Fatalf("full frame epoch = %d, want 4", ev.Epoch)
	}

	// Epoch 5, adjacent but with no moved-task set: full frame.
	events <- ctrlplane.Remap{Machine: "m", Epoch: 5, Assignment: deltaShift(gap, 1)}
	if ev, d := read(); d != nil {
		t.Fatal("unknown-diff push shipped as a delta")
	} else if ev.Epoch != 5 {
		t.Fatalf("full frame epoch = %d, want 5", ev.Epoch)
	}

	close(events)
	s.wg.Wait()
	if got := s.deltaPushes.Load(); got != 1 {
		t.Fatalf("deltaPushes = %d, want 1", got)
	}
	if got := s.fullPushes.Load(); got != 2 {
		t.Fatalf("fullPushes = %d, want 2", got)
	}
}

// TestWatchPusherV5Schema: a schema v5 subscriber gets the v5 layout,
// never a delta, whatever the event knows.
func TestWatchPusherV5Schema(t *testing.T) {
	srvC, cliC := net.Pipe()
	defer cliC.Close()
	s := &Server{maxProto: protoMax}
	st := &connState{conn: srvC}
	st.inflight.Add(1)
	s.wg.Add(1)
	events := make(chan ctrlplane.Remap, 1)
	go s.watchPusher(st, 3, 1, schemaFleet, 1, events)

	next := deltaShift(deltaAssignment(16, 0), 2)
	events <- ctrlplane.Remap{Machine: "m", Epoch: 2, Assignment: next, MovedTasks: []int{2}}
	if err := cliC.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	msg, err := readMessage(cliC)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.payload) == 0 {
		t.Fatal("empty remap frame")
	}
	if msg.payload[0] != schemaFleet {
		t.Fatalf("v5 subscriber got a schema %d frame", msg.payload[0])
	}
	ev, err := decodeRemapFrame(msg.payload)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", ev.Epoch)
	}
	sameAssignment(t, ev.Assignment, next)
	close(events)
	s.wg.Wait()
	if s.deltaPushes.Load() != 0 {
		t.Fatal("a v5 subscriber was counted as a delta push")
	}
}

// --- scripted daemon: the client-side delta paths --------------------

type fakeSub struct {
	conn   net.Conn
	callID uint64
	since  uint64
}

// startFakeDeltaServer runs a minimal protoDelta daemon: it answers
// the hello handshake, surfaces each watch subscription on the
// returned channel, and leaves every frame push to the test.
func startFakeDeltaServer(t *testing.T) (string, <-chan fakeSub) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	subs := make(chan fakeSub, 4)
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					m, err := readMessage(conn)
					if err != nil {
						return
					}
					switch m.op {
					case opHello:
						_ = writeMessage(conn, message{callID: m.callID, op: statusOK, payload: []byte{protoDelta}})
					case opWatchRemaps:
						_, since, err := decodeWatchRequest(m.payload)
						if err != nil {
							return
						}
						subs <- fakeSub{conn: conn, callID: m.callID, since: since}
					default:
						_ = writeMessage(conn, message{callID: m.callID, op: statusError, payload: []byte("unexpected op")})
					}
				}
			}(conn)
		}
	}()
	return lis.Addr().String(), subs
}

func pushFull(t *testing.T, sub fakeSub, ev *ctrlplane.Remap) {
	t.Helper()
	payload, _, err := encodeRemapFrameV6(nil, ev, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeMessage(sub.conn, message{callID: sub.callID, op: statusOK, payload: payload}); err != nil {
		t.Fatal(err)
	}
}

func pushDelta(t *testing.T, sub fakeSub, ev *ctrlplane.Remap) {
	t.Helper()
	d, err := buildRemapDelta(ev)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := encodeRemapDelta(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeMessage(sub.conn, message{callID: sub.callID, op: statusOK, payload: payload}); err != nil {
		t.Fatal(err)
	}
}

// watchAgainstFake dials the fake daemon, opens the subscription and
// returns the event channel plus the daemon-side subscription handle.
func watchAgainstFake(t *testing.T, ctx context.Context, addr string, subs <-chan fakeSub, ack *ctrlplane.Remap) (<-chan Remap, fakeSub) {
	t.Helper()
	rs, err := DialPlacementService(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	type watchResult struct {
		ch  <-chan Remap
		err error
	}
	res := make(chan watchResult, 1)
	go func() {
		ch, err := rs.WatchRemaps(ctx, "m")
		res <- watchResult{ch, err}
	}()
	var sub fakeSub
	select {
	case sub = <-subs:
	case <-ctx.Done():
		t.Fatal("no subscription reached the fake daemon")
	}
	pushFull(t, sub, ack)
	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	return r.ch, sub
}

func recvRemap(t *testing.T, ctx context.Context, ch <-chan Remap) Remap {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("watch channel closed")
		}
		return ev
	case <-ctx.Done():
		t.Fatal("no remap before timeout")
	}
	panic("unreachable")
}

// TestWatchDeltaApply: the client applies consecutive delta frames
// onto its cached assignment and delivers fully-reconstructed remaps.
func TestWatchDeltaApply(t *testing.T) {
	addr, subs := startFakeDeltaServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	a1 := deltaAssignment(32, 0)
	ch, sub := watchAgainstFake(t, ctx, addr, subs, &ctrlplane.Remap{Machine: "m", Epoch: 1, Assignment: a1})
	if ev := recvRemap(t, ctx, ch); ev.Epoch != 1 {
		t.Fatalf("ack epoch = %d, want 1", ev.Epoch)
	}

	a2 := deltaShift(a1, 2, 5)
	pushDelta(t, sub, &ctrlplane.Remap{Machine: "m", Epoch: 2, Drift: 0.1, Assignment: a2, MovedTasks: []int{2, 5}})
	ev2 := recvRemap(t, ctx, ch)
	if ev2.Epoch != 2 || !ev2.Delta {
		t.Fatalf("second event = epoch %d delta %v, want delta epoch 2", ev2.Epoch, ev2.Delta)
	}
	if len(ev2.MovedTasks) != 2 || ev2.MovedTasks[0] != 2 || ev2.MovedTasks[1] != 5 {
		t.Fatalf("moved tasks = %v", ev2.MovedTasks)
	}
	sameAssignment(t, ev2.Assignment, a2)

	// A second delta chains onto the reconstructed cache, not the ack.
	a3 := deltaShift(a2, 7)
	pushDelta(t, sub, &ctrlplane.Remap{Machine: "m", Epoch: 3, Assignment: a3, MovedTasks: []int{7}})
	ev3 := recvRemap(t, ctx, ch)
	if ev3.Epoch != 3 || !ev3.Delta {
		t.Fatalf("third event = epoch %d delta %v", ev3.Epoch, ev3.Delta)
	}
	sameAssignment(t, ev3.Assignment, a3)
}

// TestWatchDeltaGapResync: a delta the client cannot build on (epoch 3
// after epoch 1 — the epoch 2 frame was dropped) forces a full-frame
// resubscribe, converging on exactly the assignment the full path
// would have delivered.
func TestWatchDeltaGapResync(t *testing.T) {
	addr, subs := startFakeDeltaServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	a1 := deltaAssignment(32, 1)
	ch, sub := watchAgainstFake(t, ctx, addr, subs, &ctrlplane.Remap{Machine: "m", Epoch: 1, Assignment: a1})
	if ev := recvRemap(t, ctx, ch); ev.Epoch != 1 {
		t.Fatalf("ack epoch = %d, want 1", ev.Epoch)
	}

	a3 := deltaShift(a1, 4, 11)
	pushDelta(t, sub, &ctrlplane.Remap{Machine: "m", Epoch: 3, Assignment: a3, MovedTasks: []int{4, 11}})

	// The gap makes the client resubscribe on a fresh connection with
	// its last applied epoch; the fake answers with the full frame.
	var sub2 fakeSub
	select {
	case sub2 = <-subs:
	case <-ctx.Done():
		t.Fatal("client did not resubscribe after the epoch gap")
	}
	if sub2.since != 1 {
		t.Fatalf("resubscribe since-epoch = %d, want 1", sub2.since)
	}
	pushFull(t, sub2, &ctrlplane.Remap{Machine: "m", Epoch: 3, Assignment: a3})
	ev := recvRemap(t, ctx, ch)
	if ev.Epoch != 3 || ev.Delta {
		t.Fatalf("post-resync event = epoch %d delta %v, want full epoch 3", ev.Epoch, ev.Delta)
	}
	sameAssignment(t, ev.Assignment, a3)
}

// TestWatchGarbledDeltaResync: an undecodable pushed frame is decode
// doubt, not a crash — the client resubscribes and the full ack brings
// it to the same assignment.
func TestWatchGarbledDeltaResync(t *testing.T) {
	addr, subs := startFakeDeltaServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	a1 := deltaAssignment(32, 2)
	ch, sub := watchAgainstFake(t, ctx, addr, subs, &ctrlplane.Remap{Machine: "m", Epoch: 1, Assignment: a1})
	if ev := recvRemap(t, ctx, ch); ev.Epoch != 1 {
		t.Fatalf("ack epoch = %d, want 1", ev.Epoch)
	}

	// A garbled delta frame: valid version and kind, hostile body.
	garbled := []byte{schemaDelta, remapKindDelta, 0xff, 0xff, 0xff, 0xff}
	if err := writeMessage(sub.conn, message{callID: sub.callID, op: statusOK, payload: garbled}); err != nil {
		t.Fatal(err)
	}

	var sub2 fakeSub
	select {
	case sub2 = <-subs:
	case <-ctx.Done():
		t.Fatal("client did not resubscribe after the garbled frame")
	}
	if sub2.since != 1 {
		t.Fatalf("resubscribe since-epoch = %d, want 1", sub2.since)
	}
	a2 := deltaShift(a1, 6)
	pushFull(t, sub2, &ctrlplane.Remap{Machine: "m", Epoch: 2, Assignment: a2})
	ev := recvRemap(t, ctx, ch)
	if ev.Epoch != 2 {
		t.Fatalf("post-resync epoch = %d, want 2", ev.Epoch)
	}
	sameAssignment(t, ev.Assignment, a2)
}

// --- cross-version ---------------------------------------------------

// runFleetShift drives one lease through the two-phase traffic shift
// and returns the epoch 1 and epoch 2 events the watcher received.
func runFleetShift(t *testing.T, ctx context.Context, rs *RemoteService, ctrl *ctrlplane.Controller) (Remap, Remap) {
	t.Helper()
	lease, err := rs.RegisterLease(ctx, "fig2", "xver", 0, fleetTasks)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := rs.WatchRemaps(ctx, "fig2")
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.ReportObserved(ctx, lease, 1, fleetRing(fleetTasks, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if rep, err := ctrl.Epoch("fig2"); err != nil || rep == nil || !rep.Adopted {
		t.Fatalf("priming epoch = (%+v, %v), want adoption", rep, err)
	}
	ev1 := recvRemap(t, ctx, ch)
	if err := rs.ReportObserved(ctx, lease, 2, fleetClusters(fleetTasks, 4, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if rep, err := ctrl.Epoch("fig2"); err != nil || rep == nil || !rep.Adopted {
		t.Fatalf("shift epoch = (%+v, %v), want adoption", rep, err)
	}
	ev2 := recvRemap(t, ctx, ch)
	return ev1, ev2
}

// TestPinnedV5ClientAgainstV6Server: a subscriber pinned to protoFleet
// runs the whole fleet loop against a protoDelta daemon and never sees
// a delta frame.
func TestPinnedV5ClientAgainstV6Server(t *testing.T) {
	srv, ctrl, addr := startCtrlFleetServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	rs, err := DialPlacementService(ctx, addr, WithMaxProtocol(ProtoFleet))
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if got := rs.c.Version(); got != protoFleet {
		t.Fatalf("negotiated v%d, want v%d", got, protoFleet)
	}
	ev1, ev2 := runFleetShift(t, ctx, rs, ctrl)
	if ev1.Epoch != 1 || ev2.Epoch != 2 {
		t.Fatalf("epochs = %d, %d, want 1, 2", ev1.Epoch, ev2.Epoch)
	}
	if len(ev2.Assignment.ComputePU) != fleetTasks {
		t.Fatalf("v5 subscriber got %d tasks, want %d", len(ev2.Assignment.ComputePU), fleetTasks)
	}
	if ev1.Delta || ev2.Delta {
		t.Fatal("a v5 subscriber received a delta frame")
	}
	if got := srv.deltaPushes.Load(); got != 0 {
		t.Fatalf("server counted %d delta pushes to a v5 subscriber", got)
	}
}

// TestV6ClientAgainstV5Server: a current client against a daemon capped
// at protoFleet negotiates down and the loop still works end to end.
func TestV6ClientAgainstV5Server(t *testing.T) {
	srv, ctrl, addr := startCtrlFleetServer(t)
	srv.maxProto = protoFleet // the daemon predates the delta protocol
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	rs, err := DialPlacementService(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if got := rs.c.Version(); got != protoFleet {
		t.Fatalf("negotiated v%d, want v%d", got, protoFleet)
	}
	ev1, ev2 := runFleetShift(t, ctx, rs, ctrl)
	if ev1.Epoch != 1 || ev2.Epoch != 2 {
		t.Fatalf("epochs = %d, %d, want 1, 2", ev1.Epoch, ev2.Epoch)
	}
	if ev1.Delta || ev2.Delta {
		t.Fatal("a v5 daemon produced a delta frame")
	}

	// The v6 stats tail degrades cleanly: the v5 payload simply ends
	// before the push counters.
	stats, err := rs.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fleet.ReportsReceived != 2 {
		t.Fatalf("fleet stats over v5 = %+v", stats.Fleet)
	}
}

// TestDeltaStatsOverWire: the schema v6 stats payload carries the push
// counters end to end.
func TestDeltaStatsOverWire(t *testing.T) {
	_, ctrl, addr := startCtrlFleetServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	rs, err := DialPlacementService(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if got := rs.c.Version(); got != protoDelta {
		t.Fatalf("negotiated v%d, want v%d", got, protoDelta)
	}
	ev1, ev2 := runFleetShift(t, ctx, rs, ctrl)
	if ev1.Epoch != 1 || ev2.Epoch != 2 {
		t.Fatalf("epochs = %d, %d, want 1, 2", ev1.Epoch, ev2.Epoch)
	}
	stats, err := rs.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fleet.DeltaPushes+stats.Fleet.FullPushes < 2 {
		t.Fatalf("push counters = delta %d + full %d, want >= 2 frames counted",
			stats.Fleet.DeltaPushes, stats.Fleet.FullPushes)
	}
}
