package orwlnet

import (
	"context"
	"net"
	"reflect"
	"strings"
	"testing"

	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// Schema v3 carries the adaptive reconciler counters in the stats
// payload; requests and responses are otherwise identical to v2.
// These tests cover the v3 round trip and both cross-version
// directions.

func adaptiveServiceStats() placement.ServiceStats {
	return placement.ServiceStats{
		TopologyName:      "TinyHT",
		TopologySignature: 0xfeed,
		Strategies:        []string{"treematch", "none"},
		Machines:          []string{"tinyht"},
		Places:            7,
		Cache:             placement.CacheStats{Hits: 5, Misses: 2, Entries: 2},
		Adaptive: placement.AdaptiveStats{
			Epochs:      12,
			DriftEpochs: 3,
			Remaps:      2,
			Rejected:    1,
			LastDrift:   0.42,
		},
	}
}

func TestServiceStatsV3RoundTrip(t *testing.T) {
	st := adaptiveServiceStats()
	got, err := decodeServiceStats(mustEncode(encodeServiceStats(nil, st, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Errorf("v3 round trip mangled stats:\ngot  %+v\nwant %+v", got, st)
	}
}

func TestServiceStatsV2Downgrade(t *testing.T) {
	// What a pre-adaptive fleet client receives: the v2 encoding, no
	// adaptive counters, everything else intact.
	st := adaptiveServiceStats()
	got, err := decodeServiceStats(mustEncode(encodeServiceStats(nil, st, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Adaptive != (placement.AdaptiveStats{}) {
		t.Errorf("v2 stats carried adaptive counters: %+v", got.Adaptive)
	}
	if got.TopologyName != st.TopologyName || !reflect.DeepEqual(got.Machines, st.Machines) {
		t.Errorf("v2 stats mangled: %+v", got)
	}
	// An old build (schema ceiling 2) must refuse the v3 payload
	// instead of misdecoding the trailing counters.
	v3 := mustEncode(encodeServiceStats(nil, st, 3))
	if _, _, err := checkWireVersionMax(v3, 2); err == nil {
		t.Error("old decoder accepted a v3 stats payload")
	}
}

func TestBatchCodecsHonourNegotiatedSchema(t *testing.T) {
	reqs := []*placement.PlaceRequest{{Strategy: "treematch", Entities: 2}}
	// A client on a protoBatch connection frames the batch at schema 2;
	// an old server's decode ceiling accepts it.
	enc := mustEncode(encodePlaceBatchRequest(nil, reqs, 2))
	if v, _, err := checkWireVersionMax(enc, 2); err != nil || v != 2 {
		t.Fatalf("schema-2 batch header = v%d, %v", v, err)
	}
	got, err := decodePlaceBatchRequest(enc)
	if err != nil || got[0].Version != 2 {
		t.Fatalf("schema-2 batch slots decoded as %+v, %v (want slot pinned to v2)", got[0], err)
	}
	// A server answering a protoBatch client frames slots at schema 2.
	resps := []*placement.PlaceResponse{{Machine: "m", CacheHit: true}}
	rEnc := mustEncode(encodePlaceBatchResponse(nil, resps, 2))
	rGot, err := decodePlaceBatchResponse(rEnc)
	if err != nil || rGot[0].Version != 2 {
		t.Fatalf("schema-2 batch responses decoded as %+v, %v", rGot[0], err)
	}
	// Batch framing below v2 is impossible: there is no v1 slot-error
	// field to report per-machine failures with.
	if _, err := encodePlaceBatchResponse(nil, resps, 1); err == nil {
		t.Error("schema-1 batch response accepted")
	}
}

// TestAdaptiveStatsOverRPC runs a live server and checks the adaptive
// counters cross the wire end to end at the negotiated v3.
func TestAdaptiveStatsOverRPC(t *testing.T) {
	top, err := topology.ByName("tinyht")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := placement.NewEngine(top)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := placement.NewLocalService(eng)
	if err != nil {
		t.Fatal(err)
	}
	m := placement.Fixed("trace", chainMatrix(4))
	rec, err := placement.NewReconciler(eng, m, nil, placement.AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	svc.AttachReconciler(rec)
	if err := rec.Prime(m); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := rec.Epoch(); err != nil {
			t.Fatal(err)
		}
	}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis, nil, WithPlacement(svc))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() != protoMax {
		t.Fatalf("negotiated protocol v%d, want v%d", c.Version(), protoMax)
	}
	remote, err := c.PlacementService()
	if err != nil {
		t.Fatal(err)
	}
	st, err := remote.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Adaptive.Epochs != 4 {
		t.Errorf("remote adaptive epochs = %d, want 4", st.Adaptive.Epochs)
	}
}

// TestV3ClientAgainstBatchServer replays a protoBatch-era server and
// checks the current client downgrades its unpinned requests to
// schema 2 instead of sending v3 bytes the server would refuse.
func TestV3ClientAgainstBatchServer(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			msg, err := readMessage(conn)
			if err != nil {
				return
			}
			switch msg.op {
			case opHello:
				writeMessage(conn, message{callID: msg.callID, op: statusOK, payload: []byte{protoBatch}})
			case opPlaceCompute:
				// Replay the old build's decode ceiling, then answer a
				// v2 response like a real protoBatch server.
				if _, _, err := checkWireVersionMax(msg.payload, 2); err != nil {
					writeMessage(conn, message{callID: msg.callID, op: statusError, payload: []byte(err.Error())})
					continue
				}
				payload, err := encodePlaceResponse(nil, &placement.PlaceResponse{Version: 2, Machine: "m", CacheHit: true})
				if err != nil {
					writeMessage(conn, message{callID: msg.callID, op: statusError, payload: []byte(err.Error())})
					continue
				}
				writeMessage(conn, message{callID: msg.callID, op: statusOK, payload: payload})
			default:
				writeMessage(conn, message{callID: msg.callID, op: statusError, payload: []byte("unexpected op")})
			}
		}
	}()

	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() != protoBatch {
		t.Fatalf("negotiated v%d, want the old server's v%d", c.Version(), protoBatch)
	}
	remote, err := c.PlacementService()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := remote.Place(context.Background(), &placement.PlaceRequest{Strategy: "treematch", Entities: 2})
	if err != nil {
		t.Fatalf("unpinned request against a v2 server failed: %v", err)
	}
	if !resp.CacheHit || resp.Machine != "m" {
		t.Errorf("response = %+v", resp)
	}
	// An explicit pin above the server's schema still fails loudly.
	if _, err := remote.Place(context.Background(), &placement.PlaceRequest{Version: 3, Strategy: "treematch", Entities: 2}); err == nil ||
		!strings.Contains(err.Error(), "schema") {
		t.Errorf("explicit v3 pin against a v2 server: %v, want loud schema error", err)
	}
}
