package tracking

import (
	"fmt"
	"sort"
)

// GMM is a single-Gaussian per-pixel background model over a band of
// rows (the foreground–background extraction of [16], simplified to
// one mode). Each pixel keeps a running mean and variance; a pixel
// whose squared deviation exceeds k²·variance is foreground. The state
// is owned by whichever task processes the band, which is why the DFG
// splits the stage into stateful sub-tasks rather than a stateless
// parallel-for.
type GMM struct {
	w, rows int
	mean    []float32
	vari    []float32
	alpha   float32 // learning rate
	k2      float32 // squared deviation threshold factor
}

// NewGMM creates the model for a w-wide band of rows, initialised to a
// dark background.
func NewGMM(w, rows int) (*GMM, error) {
	if w < 1 || rows < 1 {
		return nil, fmt.Errorf("tracking: GMM band %dx%d invalid", w, rows)
	}
	g := &GMM{
		w: w, rows: rows,
		mean:  make([]float32, w*rows),
		vari:  make([]float32, w*rows),
		alpha: 0.05,
		k2:    9, // k = 3 sigmas
	}
	for i := range g.mean {
		g.mean[i] = 25
		g.vari[i] = 36
	}
	return g, nil
}

// Process classifies the band's pixels into out (255 = foreground) and
// updates the background model with the background pixels.
func (g *GMM) Process(in, out []byte) error {
	if len(in) != g.w*g.rows || len(out) != g.w*g.rows {
		return fmt.Errorf("tracking: GMM band size mismatch (%d/%d, want %d)",
			len(in), len(out), g.w*g.rows)
	}
	for i, px := range in {
		x := float32(px)
		d := x - g.mean[i]
		if d*d > g.k2*g.vari[i] {
			out[i] = 255
			// Absorb persistent changes slowly, so a parked object or a
			// lighting change eventually becomes background (standard
			// background-maintenance behaviour).
			g.mean[i] += g.alpha / 4 * d
			continue
		}
		out[i] = 0
		g.mean[i] += g.alpha * d
		g.vari[i] = (1-g.alpha)*g.vari[i] + g.alpha*d*d
		if g.vari[i] < 4 {
			g.vari[i] = 4
		}
	}
	return nil
}

// Erode writes the 4-neighbourhood binary erosion of mask into out;
// border pixels erode to background.
func Erode(mask, out []byte, w, h int) error {
	if len(mask) != w*h || len(out) != w*h {
		return fmt.Errorf("tracking: erode size mismatch")
	}
	ErodeRows(mask, out, w, h, 0, h)
	return nil
}

// ErodeRows erodes rows [r0, r1), reading neighbour rows from mask —
// the parallel-for body of the fork-join implementation.
func ErodeRows(mask, out []byte, w, h, r0, r1 int) {
	for y := r0; y < r1; y++ {
		row := y * w
		for x := 0; x < w; x++ {
			i := row + x
			if mask[i] == 0 || x == 0 || x == w-1 || y == 0 || y == h-1 {
				out[i] = 0
				continue
			}
			if mask[i-1] != 0 && mask[i+1] != 0 && mask[i-w] != 0 && mask[i+w] != 0 {
				out[i] = 255
			} else {
				out[i] = 0
			}
		}
	}
}

// Dilate writes the 4-neighbourhood binary dilation of mask into out.
func Dilate(mask, out []byte, w, h int) error {
	if len(mask) != w*h || len(out) != w*h {
		return fmt.Errorf("tracking: dilate size mismatch")
	}
	DilateRows(mask, out, w, h, 0, h)
	return nil
}

// DilateRows dilates rows [r0, r1), reading neighbour rows from mask.
func DilateRows(mask, out []byte, w, h, r0, r1 int) {
	for y := r0; y < r1; y++ {
		row := y * w
		for x := 0; x < w; x++ {
			i := row + x
			v := mask[i]
			if v == 0 && x > 0 {
				v = mask[i-1]
			}
			if v == 0 && x < w-1 {
				v = mask[i+1]
			}
			if v == 0 && y > 0 {
				v = mask[i-w]
			}
			if v == 0 && y < h-1 {
				v = mask[i+w]
			}
			out[i] = v
		}
	}
}

// Component is one connected foreground region.
type Component struct {
	Area       int64
	SumX, SumY int64
	MinX, MinY int32
	MaxX, MaxY int32
}

// CX returns the centroid x coordinate.
func (c Component) CX() float64 { return float64(c.SumX) / float64(c.Area) }

// CY returns the centroid y coordinate.
func (c Component) CY() float64 { return float64(c.SumY) / float64(c.Area) }

// merge absorbs other into c.
func (c *Component) merge(other Component) {
	c.Area += other.Area
	c.SumX += other.SumX
	c.SumY += other.SumY
	if other.MinX < c.MinX {
		c.MinX = other.MinX
	}
	if other.MinY < c.MinY {
		c.MinY = other.MinY
	}
	if other.MaxX > c.MaxX {
		c.MaxX = other.MaxX
	}
	if other.MaxY > c.MaxY {
		c.MaxY = other.MaxY
	}
}

// unionFind is a plain union-find over int32 ids.
type unionFind struct{ parent []int32 }

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

func (u *unionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		if ra < rb {
			u.parent[rb] = ra
		} else {
			u.parent[ra] = rb
		}
	}
}

// StripLabels is the result of labelling one horizontal strip: the
// components found and, for the boundary rows, which component each
// foreground column belongs to (-1 for background). Coordinates are
// global thanks to the strip's row offset.
type StripLabels struct {
	Comps  []Component
	TopIDs []int32
	BotIDs []int32
}

// LabelStrip performs two-pass 4-connected labelling on a strip of
// `rows` mask rows whose first row is global row rowOff.
func LabelStrip(mask []byte, w, rows, rowOff int) (*StripLabels, error) {
	if len(mask) != w*rows {
		return nil, fmt.Errorf("tracking: strip %d bytes, want %d", len(mask), w*rows)
	}
	labels := make([]int32, w*rows)
	for i := range labels {
		labels[i] = -1
	}
	uf := newUnionFind(w*rows/2 + 1)
	var next int32
	for y := 0; y < rows; y++ {
		row := y * w
		for x := 0; x < w; x++ {
			i := row + x
			if mask[i] == 0 {
				continue
			}
			var left, up int32 = -1, -1
			if x > 0 {
				left = labels[i-1]
			}
			if y > 0 {
				up = labels[i-w]
			}
			switch {
			case left < 0 && up < 0:
				labels[i] = next
				next++
			case left >= 0 && up < 0:
				labels[i] = left
			case left < 0 && up >= 0:
				labels[i] = up
			default:
				labels[i] = left
				uf.union(left, up)
			}
		}
	}
	// Resolve and accumulate.
	rootComp := make(map[int32]int)
	sl := &StripLabels{
		TopIDs: make([]int32, w),
		BotIDs: make([]int32, w),
	}
	for i := range sl.TopIDs {
		sl.TopIDs[i] = -1
		sl.BotIDs[i] = -1
	}
	for y := 0; y < rows; y++ {
		row := y * w
		for x := 0; x < w; x++ {
			l := labels[row+x]
			if l < 0 {
				continue
			}
			root := uf.find(l)
			ci, ok := rootComp[root]
			if !ok {
				ci = len(sl.Comps)
				rootComp[root] = ci
				sl.Comps = append(sl.Comps, Component{
					MinX: int32(x), MinY: int32(y + rowOff),
					MaxX: int32(x), MaxY: int32(y + rowOff),
				})
			}
			c := &sl.Comps[ci]
			c.Area++
			c.SumX += int64(x)
			c.SumY += int64(y + rowOff)
			if int32(x) < c.MinX {
				c.MinX = int32(x)
			}
			if int32(x) > c.MaxX {
				c.MaxX = int32(x)
			}
			if int32(y+rowOff) > c.MaxY {
				c.MaxY = int32(y + rowOff)
			}
			if y == 0 {
				sl.TopIDs[x] = int32(ci)
			}
			if y == rows-1 {
				sl.BotIDs[x] = int32(ci)
			}
		}
	}
	return sl, nil
}

// MergeStrips fuses per-strip labelling results into the global
// component list, joining components that touch across strip
// boundaries (4-connectivity: same column).
func MergeStrips(strips []*StripLabels) []Component {
	// Global component index: offset of each strip's components.
	offsets := make([]int, len(strips)+1)
	for i, s := range strips {
		offsets[i+1] = offsets[i] + len(s.Comps)
	}
	uf := newUnionFind(offsets[len(strips)])
	for s := 0; s+1 < len(strips); s++ {
		bot, top := strips[s].BotIDs, strips[s+1].TopIDs
		for x := 0; x < len(bot) && x < len(top); x++ {
			if bot[x] >= 0 && top[x] >= 0 {
				uf.union(int32(offsets[s])+bot[x], int32(offsets[s+1])+top[x])
			}
		}
	}
	merged := make(map[int32]*Component)
	var order []int32
	for s, strip := range strips {
		for ci, c := range strip.Comps {
			root := uf.find(int32(offsets[s] + ci))
			if dst, ok := merged[root]; ok {
				dst.merge(c)
			} else {
				cc := c
				merged[root] = &cc
				order = append(order, root)
			}
		}
	}
	out := make([]Component, 0, len(order))
	for _, root := range order {
		out = append(out, *merged[root])
	}
	SortComponents(out)
	return out
}

// SortComponents orders components canonically (by bounding box, then
// area) so different labelling strategies produce comparable lists.
func SortComponents(cs []Component) {
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].MinY != cs[b].MinY {
			return cs[a].MinY < cs[b].MinY
		}
		if cs[a].MinX != cs[b].MinX {
			return cs[a].MinX < cs[b].MinX
		}
		return cs[a].Area > cs[b].Area
	})
}

// Track is one followed object.
type Track struct {
	ID     int32
	CX, CY float64
}

// Tracker assigns stable ids to components across frames by greedy
// nearest-centroid matching, as in occlusion-free multi-object
// tracking.
type Tracker struct {
	nextID  int32
	prev    []Track
	maxDist float64
	minArea int64
}

// NewTracker creates a tracker; components smaller than minArea are
// ignored, and a component matches a previous track within maxDist
// pixels.
func NewTracker(minArea int64, maxDist float64) *Tracker {
	return &Tracker{minArea: minArea, maxDist: maxDist}
}

// Update consumes the (canonically sorted) components of one frame and
// returns the current tracks sorted by id.
func (t *Tracker) Update(comps []Component) []Track {
	used := make(map[int]bool)
	var out []Track
	for _, c := range comps {
		if c.Area < t.minArea {
			continue
		}
		cx, cy := c.CX(), c.CY()
		best, bestD := -1, t.maxDist*t.maxDist
		for pi, p := range t.prev {
			if used[pi] {
				continue
			}
			dx, dy := cx-p.CX, cy-p.CY
			if d := dx*dx + dy*dy; d < bestD {
				best, bestD = pi, d
			}
		}
		var id int32
		if best >= 0 {
			used[best] = true
			id = t.prev[best].ID
		} else {
			id = t.nextID
			t.nextID++
		}
		out = append(out, Track{ID: id, CX: cx, CY: cy})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	t.prev = out
	return out
}
