package tracking

import (
	"fmt"
	"sync"
)

// Config fixes the pipeline structure. The paper's configuration
// (Fig. 3) uses 16 GMM sub-tasks, 4 CCL sub-tasks and a chain of 4
// dilate tasks, for 30 tasks in total.
type Config struct {
	Size      Size
	GMMSplits int
	CCLSplits int
	Dilates   int
	// MinArea and MaxDist parameterise the tracker.
	MinArea int64
	MaxDist float64
	// Objects and Seed parameterise the synthetic source.
	Objects int
	Seed    int64
}

// PaperConfig returns the 30-task configuration of Figs. 1-3 at the
// given resolution.
func PaperConfig(size Size) Config {
	return Config{
		Size:      size,
		GMMSplits: 16,
		CCLSplits: 4,
		Dilates:   4,
		MinArea:   64,
		MaxDist:   64,
		Objects:   6,
		Seed:      2017,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Size.W < 8 || c.Size.H < 8 {
		return fmt.Errorf("tracking: frame %v too small", c.Size)
	}
	if c.GMMSplits < 1 || c.GMMSplits > c.Size.H {
		return fmt.Errorf("tracking: GMM splits %d out of range", c.GMMSplits)
	}
	if c.CCLSplits < 1 || c.CCLSplits > c.Size.H {
		return fmt.Errorf("tracking: CCL splits %d out of range", c.CCLSplits)
	}
	if c.Dilates < 1 {
		return fmt.Errorf("tracking: need at least one dilate stage")
	}
	if c.Objects < 0 || c.MinArea < 0 || c.MaxDist < 0 {
		return fmt.Errorf("tracking: negative tracker/source parameters")
	}
	return nil
}

// NumTasks returns the DFG task count: producer, GMM master, erode,
// the dilate chain, CCL master, tracking, consumer, plus the GMM and
// CCL sub-tasks.
func (c Config) NumTasks() int { return 6 + c.Dilates + c.GMMSplits + c.CCLSplits }

// Task ids within the DFG, matching Fig. 2's numbering for the paper
// configuration.
func (c Config) taskProducer() int       { return 0 }
func (c Config) taskGMM() int            { return 1 }
func (c Config) taskErode() int          { return 2 }
func (c Config) taskDilate(i int) int    { return 3 + i }
func (c Config) taskCCL() int            { return 3 + c.Dilates }
func (c Config) taskTracking() int       { return 4 + c.Dilates }
func (c Config) taskConsumer() int       { return 5 + c.Dilates }
func (c Config) taskGMMWorker(i int) int { return 6 + c.Dilates + i }
func (c Config) taskCCLWorker(i int) int { return 6 + c.Dilates + c.GMMSplits + i }

// TaskNames returns a display name per task id (for Fig. 2 rendering).
func (c Config) TaskNames() []string {
	names := make([]string, c.NumTasks())
	names[c.taskProducer()] = "producer"
	names[c.taskGMM()] = "gmm"
	names[c.taskErode()] = "erode"
	for i := 0; i < c.Dilates; i++ {
		names[c.taskDilate(i)] = "dilate"
	}
	names[c.taskCCL()] = "ccl"
	names[c.taskTracking()] = "tracking"
	names[c.taskConsumer()] = "consumer"
	for i := 0; i < c.GMMSplits; i++ {
		names[c.taskGMMWorker(i)] = "gmm split"
	}
	for i := 0; i < c.CCLSplits; i++ {
		names[c.taskCCLWorker(i)] = "ccl split"
	}
	return names
}

// stripRows partitions the frame height into near-equal strips and
// returns the row offsets (length parts+1).
func stripRows(h, parts int) []int {
	offs := make([]int, parts+1)
	base, extra := h/parts, h%parts
	for i := 0; i < parts; i++ {
		offs[i+1] = offs[i] + base
		if i < extra {
			offs[i+1]++
		}
	}
	return offs
}

// RunSerial processes `frames` frames sequentially and returns the
// per-frame track lists — the reference output every parallel
// implementation must reproduce, and the "Sequential" series of Fig. 6.
func RunSerial(cfg Config, frames int) ([][]Track, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if frames < 0 {
		return nil, fmt.Errorf("tracking: negative frame count")
	}
	src, err := NewSource(cfg.Size, cfg.Objects, cfg.Seed)
	if err != nil {
		return nil, err
	}
	w, h := cfg.Size.W, cfg.Size.H
	// The GMM state is banded exactly like the parallel version so the
	// outputs agree bitwise (the model is per-pixel, so banding is only
	// an ownership question).
	gmmOffs := stripRows(h, cfg.GMMSplits)
	gmms := make([]*GMM, cfg.GMMSplits)
	for i := range gmms {
		gmms[i], err = NewGMM(w, gmmOffs[i+1]-gmmOffs[i])
		if err != nil {
			return nil, err
		}
	}
	cclOffs := stripRows(h, cfg.CCLSplits)
	tracker := NewTracker(cfg.MinArea, cfg.MaxDist)

	frame := make([]byte, w*h)
	mask := make([]byte, w*h)
	tmp := make([]byte, w*h)
	var results [][]Track
	for f := 0; f < frames; f++ {
		if err := src.Frame(f, frame); err != nil {
			return nil, err
		}
		for i := range gmms {
			lo, hi := gmmOffs[i]*w, gmmOffs[i+1]*w
			if err := gmms[i].Process(frame[lo:hi], mask[lo:hi]); err != nil {
				return nil, err
			}
		}
		if err := Erode(mask, tmp, w, h); err != nil {
			return nil, err
		}
		mask, tmp = tmp, mask
		for d := 0; d < cfg.Dilates; d++ {
			if err := Dilate(mask, tmp, w, h); err != nil {
				return nil, err
			}
			mask, tmp = tmp, mask
		}
		strips := make([]*StripLabels, cfg.CCLSplits)
		for i := range strips {
			lo, hi := cclOffs[i]*w, cclOffs[i+1]*w
			strips[i], err = LabelStrip(mask[lo:hi], w, cclOffs[i+1]-cclOffs[i], cclOffs[i])
			if err != nil {
				return nil, err
			}
		}
		comps := MergeStrips(strips)
		results = append(results, tracker.Update(comps))
	}
	return results, nil
}

// RunForkJoin is the OpenMP-style implementation of §VI-B3: each
// pipeline stage is executed for the whole frame before the next
// starts, with a parallel-for (static chunks over `workers` goroutines)
// inside every data-parallel stage. There is no pipelining across
// frames, which is the structural handicap against the ORWL DFG.
func RunForkJoin(cfg Config, frames, workers int) ([][]Track, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if frames < 0 || workers < 1 {
		return nil, fmt.Errorf("tracking: invalid frames/workers %d/%d", frames, workers)
	}
	src, err := NewSource(cfg.Size, cfg.Objects, cfg.Seed)
	if err != nil {
		return nil, err
	}
	w, h := cfg.Size.W, cfg.Size.H
	gmmOffs := stripRows(h, cfg.GMMSplits)
	gmms := make([]*GMM, cfg.GMMSplits)
	for i := range gmms {
		gmms[i], err = NewGMM(w, gmmOffs[i+1]-gmmOffs[i])
		if err != nil {
			return nil, err
		}
	}
	cclOffs := stripRows(h, cfg.CCLSplits)
	rowOffs := stripRows(h, workers)
	tracker := NewTracker(cfg.MinArea, cfg.MaxDist)

	parallel := func(parts int, body func(i int) error) error {
		var wg sync.WaitGroup
		errs := make([]error, parts)
		for i := 0; i < parts; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = body(i)
			}(i)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return nil
	}

	frame := make([]byte, w*h)
	mask := make([]byte, w*h)
	tmp := make([]byte, w*h)
	var results [][]Track
	for f := 0; f < frames; f++ {
		if err := src.Frame(f, frame); err != nil {
			return nil, err
		}
		if err := parallel(cfg.GMMSplits, func(i int) error {
			lo, hi := gmmOffs[i]*w, gmmOffs[i+1]*w
			return gmms[i].Process(frame[lo:hi], mask[lo:hi])
		}); err != nil {
			return nil, err
		}
		if err := parallel(workers, func(i int) error {
			ErodeRows(mask, tmp, w, h, rowOffs[i], rowOffs[i+1])
			return nil
		}); err != nil {
			return nil, err
		}
		mask, tmp = tmp, mask
		for d := 0; d < cfg.Dilates; d++ {
			if err := parallel(workers, func(i int) error {
				DilateRows(mask, tmp, w, h, rowOffs[i], rowOffs[i+1])
				return nil
			}); err != nil {
				return nil, err
			}
			mask, tmp = tmp, mask
		}
		strips := make([]*StripLabels, cfg.CCLSplits)
		if err := parallel(cfg.CCLSplits, func(i int) error {
			lo, hi := cclOffs[i]*w, cclOffs[i+1]*w
			var err error
			strips[i], err = LabelStrip(mask[lo:hi], w, cclOffs[i+1]-cclOffs[i], cclOffs[i])
			return err
		}); err != nil {
			return nil, err
		}
		results = append(results, tracker.Update(MergeStrips(strips)))
	}
	return results, nil
}

// TracksEqual compares two per-frame track lists exactly.
func TracksEqual(a, b [][]Track) bool {
	if len(a) != len(b) {
		return false
	}
	for f := range a {
		if len(a[f]) != len(b[f]) {
			return false
		}
		for i := range a[f] {
			if a[f][i] != b[f][i] {
				return false
			}
		}
	}
	return true
}
