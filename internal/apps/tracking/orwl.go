package tracking

import (
	"fmt"

	"orwlplace/internal/core"
	"orwlplace/internal/orwl"
	"orwlplace/internal/topology"
)

// Location names: every task exposes its product in "out"; split
// workers additionally receive their input strip in "in".
const (
	locOut = "out"
	locIn  = "in"
)

// compCapacity bounds the component count carried between CCL and
// tracking stages.
const compCapacity = 256

// trackCap bounds the track count carried to the consumer.
const trackCap = 128

// ORWLResult exposes the runtime objects of a DFG run for inspection
// (dependency matrix, mapping, control statistics).
type ORWLResult struct {
	Program *orwl.Program
	Module  *core.Module
	Config  Config
}

// RunORWL executes the video-tracking DFG of Fig. 3 on `frames`
// synthetic frames: an iterative ORWL task per pipeline node, with the
// GMM and CCL stages split into parallel stateful sub-tasks. Every
// stage's output travels through its "out" location with writer-first
// FIFO order, so consecutive stages alternate on it and different
// stages process different frames concurrently (pipeline parallelism +
// split-merge data parallelism, §V-C).
//
// When top is non-nil the affinity module runs in forced automatic
// mode (ORWL (Affinity) in Fig. 6).
func RunORWL(cfg Config, frames int, top *topology.Topology) ([][]Track, *ORWLResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if frames < 0 {
		return nil, nil, fmt.Errorf("tracking: negative frame count")
	}
	src, err := NewSource(cfg.Size, cfg.Objects, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	w, h := cfg.Size.W, cfg.Size.H
	frameBytes := w * h
	gmmOffs := stripRows(h, cfg.GMMSplits)
	cclOffs := stripRows(h, cfg.CCLSplits)
	stripLabelBytes := headerBytes + compCapacity*componentBytes + 2*4*w

	prog, err := orwl.NewProgram(cfg.NumTasks(), locOut, locIn)
	if err != nil {
		return nil, nil, err
	}
	res := &ORWLResult{Program: prog, Config: cfg}
	if top != nil {
		mod, _, err := core.EnableAutomatic(prog, top, true)
		if err != nil {
			return nil, nil, err
		}
		res.Module = mod
	}

	results := make([][]Track, frames)

	// pipeEdge wires a writer-first iterative edge from the out
	// location of task `from` to reader handle of the running task.
	readOut := func(ctx *orwl.TaskContext, from int) (*orwl.Handle, error) {
		hd := orwl.NewHandle2()
		if err := ctx.ReadInsert(hd, orwl.Loc(from, locOut), 1); err != nil {
			return nil, err
		}
		return hd, nil
	}
	writeOwn := func(ctx *orwl.TaskContext, name string, size int) (*orwl.Handle, error) {
		if err := ctx.Scale(name, size); err != nil {
			return nil, err
		}
		hd := orwl.NewHandle2()
		if err := ctx.WriteInsert(hd, orwl.Loc(ctx.TID(), name), 0); err != nil {
			return nil, err
		}
		return hd, nil
	}

	bodies := make([]func(*orwl.TaskContext) error, cfg.NumTasks())

	bodies[cfg.taskProducer()] = func(ctx *orwl.TaskContext) error {
		out, err := writeOwn(ctx, locOut, frameBytes)
		if err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		for f := 0; f < frames; f++ {
			if err := out.Section(func(buf []byte) error {
				return src.Frame(f, buf)
			}); err != nil {
				return err
			}
		}
		return nil
	}

	bodies[cfg.taskGMM()] = func(ctx *orwl.TaskContext) error {
		in, err := readOut(ctx, cfg.taskProducer())
		if err != nil {
			return err
		}
		out, err := writeOwn(ctx, locOut, frameBytes)
		if err != nil {
			return err
		}
		toWorker := make([]*orwl.Handle, cfg.GMMSplits)
		fromWorker := make([]*orwl.Handle, cfg.GMMSplits)
		for i := range toWorker {
			toWorker[i] = orwl.NewHandle2()
			if err := ctx.WriteInsert(toWorker[i], orwl.Loc(cfg.taskGMMWorker(i), locIn), 0); err != nil {
				return err
			}
			fromWorker[i] = orwl.NewHandle2()
			if err := ctx.ReadInsert(fromWorker[i], orwl.Loc(cfg.taskGMMWorker(i), locOut), 1); err != nil {
				return err
			}
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		frame := make([]byte, frameBytes)
		mask := make([]byte, frameBytes)
		for f := 0; f < frames; f++ {
			if err := in.Section(func(buf []byte) error {
				copy(frame, buf)
				return nil
			}); err != nil {
				return err
			}
			for i := 0; i < cfg.GMMSplits; i++ {
				lo, hi := gmmOffs[i]*w, gmmOffs[i+1]*w
				if err := toWorker[i].Section(func(buf []byte) error {
					copy(buf, frame[lo:hi])
					return nil
				}); err != nil {
					return err
				}
			}
			for i := 0; i < cfg.GMMSplits; i++ {
				lo := gmmOffs[i] * w
				if err := fromWorker[i].Section(func(buf []byte) error {
					copy(mask[lo:lo+len(buf)], buf)
					return nil
				}); err != nil {
					return err
				}
			}
			if err := out.Section(func(buf []byte) error {
				copy(buf, mask)
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	}

	for i := 0; i < cfg.GMMSplits; i++ {
		i := i
		bodies[cfg.taskGMMWorker(i)] = func(ctx *orwl.TaskContext) error {
			rows := gmmOffs[i+1] - gmmOffs[i]
			stripBytes := rows * w
			if err := ctx.Scale(locIn, stripBytes); err != nil {
				return err
			}
			in := orwl.NewHandle2()
			if err := ctx.ReadInsert(in, orwl.Loc(ctx.TID(), locIn), 1); err != nil {
				return err
			}
			out, err := writeOwn(ctx, locOut, stripBytes)
			if err != nil {
				return err
			}
			if err := ctx.Schedule(); err != nil {
				return err
			}
			model, err := NewGMM(w, rows)
			if err != nil {
				return err
			}
			strip := make([]byte, stripBytes)
			for f := 0; f < frames; f++ {
				if err := in.Section(func(buf []byte) error {
					copy(strip, buf)
					return nil
				}); err != nil {
					return err
				}
				if err := out.Section(func(buf []byte) error {
					return model.Process(strip, buf)
				}); err != nil {
					return err
				}
			}
			return nil
		}
	}

	// morphStage builds the body of a full-frame mask filter stage.
	morphStage := func(from int, filter func(in, out []byte) error) func(*orwl.TaskContext) error {
		return func(ctx *orwl.TaskContext) error {
			in, err := readOut(ctx, from)
			if err != nil {
				return err
			}
			out, err := writeOwn(ctx, locOut, frameBytes)
			if err != nil {
				return err
			}
			if err := ctx.Schedule(); err != nil {
				return err
			}
			mask := make([]byte, frameBytes)
			for f := 0; f < frames; f++ {
				if err := in.Section(func(buf []byte) error {
					copy(mask, buf)
					return nil
				}); err != nil {
					return err
				}
				if err := out.Section(func(buf []byte) error {
					return filter(mask, buf)
				}); err != nil {
					return err
				}
			}
			return nil
		}
	}
	bodies[cfg.taskErode()] = morphStage(cfg.taskGMM(), func(in, out []byte) error {
		return Erode(in, out, w, h)
	})
	for d := 0; d < cfg.Dilates; d++ {
		from := cfg.taskErode()
		if d > 0 {
			from = cfg.taskDilate(d - 1)
		}
		bodies[cfg.taskDilate(d)] = morphStage(from, func(in, out []byte) error {
			return Dilate(in, out, w, h)
		})
	}

	bodies[cfg.taskCCL()] = func(ctx *orwl.TaskContext) error {
		in, err := readOut(ctx, cfg.taskDilate(cfg.Dilates-1))
		if err != nil {
			return err
		}
		out, err := writeOwn(ctx, locOut, headerBytes+compCapacity*componentBytes)
		if err != nil {
			return err
		}
		toWorker := make([]*orwl.Handle, cfg.CCLSplits)
		fromWorker := make([]*orwl.Handle, cfg.CCLSplits)
		for i := range toWorker {
			toWorker[i] = orwl.NewHandle2()
			if err := ctx.WriteInsert(toWorker[i], orwl.Loc(cfg.taskCCLWorker(i), locIn), 0); err != nil {
				return err
			}
			fromWorker[i] = orwl.NewHandle2()
			if err := ctx.ReadInsert(fromWorker[i], orwl.Loc(cfg.taskCCLWorker(i), locOut), 1); err != nil {
				return err
			}
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		mask := make([]byte, frameBytes)
		strips := make([]*StripLabels, cfg.CCLSplits)
		for f := 0; f < frames; f++ {
			if err := in.Section(func(buf []byte) error {
				copy(mask, buf)
				return nil
			}); err != nil {
				return err
			}
			for i := 0; i < cfg.CCLSplits; i++ {
				lo, hi := cclOffs[i]*w, cclOffs[i+1]*w
				if err := toWorker[i].Section(func(buf []byte) error {
					copy(buf, mask[lo:hi])
					return nil
				}); err != nil {
					return err
				}
			}
			for i := 0; i < cfg.CCLSplits; i++ {
				i := i
				if err := fromWorker[i].Section(func(buf []byte) error {
					var err error
					strips[i], err = decodeStripLabels(buf, w)
					return err
				}); err != nil {
					return err
				}
			}
			comps := MergeStrips(strips)
			if err := out.Section(func(buf []byte) error {
				return encodeComponents(buf, comps)
			}); err != nil {
				return err
			}
		}
		return nil
	}

	for i := 0; i < cfg.CCLSplits; i++ {
		i := i
		bodies[cfg.taskCCLWorker(i)] = func(ctx *orwl.TaskContext) error {
			rows := cclOffs[i+1] - cclOffs[i]
			stripBytes := rows * w
			if err := ctx.Scale(locIn, stripBytes); err != nil {
				return err
			}
			in := orwl.NewHandle2()
			if err := ctx.ReadInsert(in, orwl.Loc(ctx.TID(), locIn), 1); err != nil {
				return err
			}
			out, err := writeOwn(ctx, locOut, stripLabelBytes)
			if err != nil {
				return err
			}
			if err := ctx.Schedule(); err != nil {
				return err
			}
			strip := make([]byte, stripBytes)
			for f := 0; f < frames; f++ {
				if err := in.Section(func(buf []byte) error {
					copy(strip, buf)
					return nil
				}); err != nil {
					return err
				}
				sl, err := LabelStrip(strip, w, rows, cclOffs[i])
				if err != nil {
					return err
				}
				if err := out.Section(func(buf []byte) error {
					return encodeStripLabels(buf, sl, w)
				}); err != nil {
					return err
				}
			}
			return nil
		}
	}

	bodies[cfg.taskTracking()] = func(ctx *orwl.TaskContext) error {
		in, err := readOut(ctx, cfg.taskCCL())
		if err != nil {
			return err
		}
		out, err := writeOwn(ctx, locOut, headerBytes+trackCap*trackBytes)
		if err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		tracker := NewTracker(cfg.MinArea, cfg.MaxDist)
		for f := 0; f < frames; f++ {
			var comps []Component
			if err := in.Section(func(buf []byte) error {
				var err error
				comps, err = decodeComponents(buf)
				return err
			}); err != nil {
				return err
			}
			tracks := tracker.Update(comps)
			if err := out.Section(func(buf []byte) error {
				return encodeTracks(buf, tracks)
			}); err != nil {
				return err
			}
		}
		return nil
	}

	bodies[cfg.taskConsumer()] = func(ctx *orwl.TaskContext) error {
		in, err := readOut(ctx, cfg.taskTracking())
		if err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		for f := 0; f < frames; f++ {
			if err := in.Section(func(buf []byte) error {
				tracks, err := decodeTracks(buf)
				if err != nil {
					return err
				}
				results[f] = tracks
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	}

	if err := prog.RunTasks(bodies); err != nil {
		return nil, nil, err
	}
	return results, res, nil
}
