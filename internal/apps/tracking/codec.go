package tracking

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Location payload encodings for the DFG. Locations have a fixed size,
// so variable-length component/track lists are stored as a count plus a
// fixed-capacity record array.

const (
	componentBytes = 7 * 8 // Area, SumX, SumY + 4 coords as int64
	trackBytes     = 3 * 8 // ID + CX + CY as 8-byte fields
	headerBytes    = 8
)

// componentCapacity returns how many components fit in a buffer of the
// given size.
func componentCapacity(bufLen int) int { return (bufLen - headerBytes) / componentBytes }

// encodeComponents stores comps in buf. It fails when the capacity is
// exceeded (the caller sizes the location for the expected maximum).
func encodeComponents(buf []byte, comps []Component) error {
	if len(comps) > componentCapacity(len(buf)) {
		return fmt.Errorf("tracking: %d components exceed buffer capacity %d",
			len(comps), componentCapacity(len(buf)))
	}
	binary.LittleEndian.PutUint64(buf, uint64(len(comps)))
	off := headerBytes
	for _, c := range comps {
		for _, v := range []int64{c.Area, c.SumX, c.SumY,
			int64(c.MinX), int64(c.MinY), int64(c.MaxX), int64(c.MaxY)} {
			binary.LittleEndian.PutUint64(buf[off:], uint64(v))
			off += 8
		}
	}
	return nil
}

// decodeComponents parses a buffer written by encodeComponents.
func decodeComponents(buf []byte) ([]Component, error) {
	if len(buf) < headerBytes {
		return nil, fmt.Errorf("tracking: component buffer too short")
	}
	n := int(binary.LittleEndian.Uint64(buf))
	if n < 0 || n > componentCapacity(len(buf)) {
		return nil, fmt.Errorf("tracking: corrupt component count %d", n)
	}
	comps := make([]Component, n)
	off := headerBytes
	get := func() int64 {
		v := int64(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		return v
	}
	for i := range comps {
		comps[i].Area = get()
		comps[i].SumX = get()
		comps[i].SumY = get()
		comps[i].MinX = int32(get())
		comps[i].MinY = int32(get())
		comps[i].MaxX = int32(get())
		comps[i].MaxY = int32(get())
	}
	return comps, nil
}

// encodeStripLabels stores a strip labelling result: components plus
// the top/bottom boundary id rows (w int32 each).
func encodeStripLabels(buf []byte, sl *StripLabels, w int) error {
	need := headerBytes + len(sl.Comps)*componentBytes
	idsOff := len(buf) - 2*4*w
	if idsOff < need {
		return fmt.Errorf("tracking: strip buffer too small (%d for %d comps + %d ids)",
			len(buf), len(sl.Comps), 2*w)
	}
	if err := encodeComponents(buf[:idsOff], sl.Comps); err != nil {
		return err
	}
	off := idsOff
	for _, ids := range [][]int32{sl.TopIDs, sl.BotIDs} {
		if len(ids) != w {
			return fmt.Errorf("tracking: boundary row has %d ids, want %d", len(ids), w)
		}
		for _, id := range ids {
			binary.LittleEndian.PutUint32(buf[off:], uint32(id))
			off += 4
		}
	}
	return nil
}

// decodeStripLabels parses a buffer written by encodeStripLabels.
func decodeStripLabels(buf []byte, w int) (*StripLabels, error) {
	idsOff := len(buf) - 2*4*w
	if idsOff < headerBytes {
		return nil, fmt.Errorf("tracking: strip buffer too short")
	}
	comps, err := decodeComponents(buf[:idsOff])
	if err != nil {
		return nil, err
	}
	sl := &StripLabels{Comps: comps, TopIDs: make([]int32, w), BotIDs: make([]int32, w)}
	off := idsOff
	for _, ids := range [][]int32{sl.TopIDs, sl.BotIDs} {
		for i := range ids {
			ids[i] = int32(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
	}
	return sl, nil
}

// trackCapacity returns how many tracks fit in a buffer.
func trackCapacity(bufLen int) int { return (bufLen - headerBytes) / trackBytes }

// encodeTracks stores the frame's tracks.
func encodeTracks(buf []byte, tracks []Track) error {
	if len(tracks) > trackCapacity(len(buf)) {
		return fmt.Errorf("tracking: %d tracks exceed capacity %d", len(tracks), trackCapacity(len(buf)))
	}
	binary.LittleEndian.PutUint64(buf, uint64(len(tracks)))
	off := headerBytes
	for _, tr := range tracks {
		binary.LittleEndian.PutUint64(buf[off:], uint64(tr.ID))
		binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(tr.CX))
		binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(tr.CY))
		off += trackBytes
	}
	return nil
}

// decodeTracks parses a buffer written by encodeTracks.
func decodeTracks(buf []byte) ([]Track, error) {
	if len(buf) < headerBytes {
		return nil, fmt.Errorf("tracking: track buffer too short")
	}
	n := int(binary.LittleEndian.Uint64(buf))
	if n < 0 || n > trackCapacity(len(buf)) {
		return nil, fmt.Errorf("tracking: corrupt track count %d", n)
	}
	out := make([]Track, n)
	off := headerBytes
	for i := range out {
		out[i].ID = int32(binary.LittleEndian.Uint64(buf[off:]))
		out[i].CX = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:]))
		out[i].CY = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+16:]))
		off += trackBytes
	}
	return out, nil
}
