package tracking

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestComponentSpanningThreeStrips: a vertical bar crossing all strips
// must merge into a single component.
func TestComponentSpanningThreeStrips(t *testing.T) {
	w, h := 9, 9
	mask := make([]byte, w*h)
	for y := 0; y < h; y++ {
		mask[y*w+4] = 255
	}
	offs := stripRows(h, 3)
	strips := make([]*StripLabels, 3)
	for i := range strips {
		var err error
		strips[i], err = LabelStrip(mask[offs[i]*w:offs[i+1]*w], w, offs[i+1]-offs[i], offs[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(strips[i].Comps) != 1 {
			t.Fatalf("strip %d components = %d", i, len(strips[i].Comps))
		}
	}
	merged := MergeStrips(strips)
	if len(merged) != 1 {
		t.Fatalf("merged components = %d, want 1", len(merged))
	}
	c := merged[0]
	if c.Area != int64(h) || c.MinY != 0 || c.MaxY != int32(h-1) || c.MinX != 4 || c.MaxX != 4 {
		t.Errorf("merged component = %+v", c)
	}
}

// TestZigzagAcrossStrips: a component entering and leaving a strip
// boundary at two different columns exercises the union-find across
// strips.
func TestZigzagAcrossStrips(t *testing.T) {
	w := 8
	// Strip 0 (rows 0-1): segment connecting columns 1 and 5 via row 1.
	// Strip 1 (rows 2-3): columns 1 and 5 both continue down; they are
	// separate within strip 1 but joined through strip 0.
	mask := make([]byte, w*4)
	for x := 1; x <= 5; x++ {
		mask[1*w+x] = 255
	}
	mask[2*w+1] = 255
	mask[2*w+5] = 255
	mask[3*w+1] = 255
	mask[3*w+5] = 255
	s0, err := LabelStrip(mask[:2*w], w, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := LabelStrip(mask[2*w:], w, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Comps) != 2 {
		t.Fatalf("strip 1 components = %d, want 2", len(s1.Comps))
	}
	merged := MergeStrips([]*StripLabels{s0, s1})
	if len(merged) != 1 {
		t.Fatalf("merged = %d components, want 1 (zigzag)", len(merged))
	}
	if merged[0].Area != 9 {
		t.Errorf("area = %d, want 9", merged[0].Area)
	}
}

// Property: strip labelling + merge equals full-frame labelling for
// random masks at any strip count.
func TestMergeEqualsFullFrameProperty(t *testing.T) {
	const w, h = 24, 18
	f := func(seed uint32, stripsPick uint8) bool {
		parts := 2 + int(stripsPick)%4
		mask := make([]byte, w*h)
		x := uint64(seed)*2654435761 + 1
		for i := range mask {
			x = x*6364136223846793005 + 1442695040888963407
			if x>>62 == 3 { // ~25% foreground
				mask[i] = 255
			}
		}
		full, err := LabelStrip(mask, w, h, 0)
		if err != nil {
			return false
		}
		want := append([]Component(nil), full.Comps...)
		SortComponents(want)

		offs := stripRows(h, parts)
		strips := make([]*StripLabels, parts)
		for i := range strips {
			strips[i], err = LabelStrip(mask[offs[i]*w:offs[i+1]*w], w, offs[i+1]-offs[i], offs[i])
			if err != nil {
				return false
			}
		}
		got := MergeStrips(strips)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: erosion then dilation never grows beyond the original mask
// plus its dilation ring (morphological sanity on random masks).
func TestMorphologyProperties(t *testing.T) {
	const w, h = 16, 12
	f := func(seed uint32) bool {
		mask := make([]byte, w*h)
		x := uint64(seed) + 99
		for i := range mask {
			x = x*6364136223846793005 + 1442695040888963407
			if x>>62 == 3 {
				mask[i] = 255
			}
		}
		eroded := make([]byte, w*h)
		if Erode(mask, eroded, w, h) != nil {
			return false
		}
		// Erosion shrinks: every eroded pixel was set before.
		for i := range eroded {
			if eroded[i] != 0 && mask[i] == 0 {
				return false
			}
		}
		dilated := make([]byte, w*h)
		if Dilate(mask, dilated, w, h) != nil {
			return false
		}
		// Dilation grows: every original pixel is still set.
		for i := range mask {
			if mask[i] != 0 && dilated[i] == 0 {
				return false
			}
		}
		// Opening (erode then dilate) stays within the original mask's
		// dilation.
		opened := make([]byte, w*h)
		if Dilate(eroded, opened, w, h) != nil {
			return false
		}
		for i := range opened {
			if opened[i] != 0 && dilated[i] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the GMM converges on a static scene — after enough frames
// of constant input nothing is foreground.
func TestGMMConvergesProperty(t *testing.T) {
	f := func(level uint8) bool {
		g, err := NewGMM(8, 4)
		if err != nil {
			return false
		}
		frame := make([]byte, 32)
		for i := range frame {
			frame[i] = 50 + level%100
		}
		mask := make([]byte, 32)
		for r := 0; r < 250; r++ {
			if g.Process(frame, mask) != nil {
				return false
			}
		}
		for _, v := range mask {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRenderDFG(t *testing.T) {
	out := PaperConfig(HD).RenderDFG()
	for _, want := range []string{"producer", "==>", "split{10", "split{26", "30 tasks"} {
		if !strings.Contains(out, want) {
			t.Errorf("DFG render missing %q:\n%s", want, out)
		}
	}
}

func TestSortComponentsTieBreaking(t *testing.T) {
	cs := []Component{
		{MinY: 1, MinX: 1, Area: 5},
		{MinY: 0, MinX: 9, Area: 1},
		{MinY: 1, MinX: 1, Area: 9},
	}
	SortComponents(cs)
	if cs[0].MinY != 0 {
		t.Error("MinY should sort first")
	}
	if cs[1].Area != 9 || cs[2].Area != 5 {
		t.Error("equal boxes should sort by decreasing area")
	}
}
