package tracking

import (
	"testing"

	"orwlplace/internal/topology"
)

// tinyConfig is a fast test pipeline: 64x48 frames, 4 GMM splits, 2 CCL
// splits, 2 dilates (13 tasks).
func tinyConfig() Config {
	return Config{
		Size:      Size{W: 64, H: 48},
		GMMSplits: 4,
		CCLSplits: 2,
		Dilates:   2,
		MinArea:   16,
		MaxDist:   32,
		Objects:   3,
		Seed:      7,
	}
}

func TestSourceValidation(t *testing.T) {
	if _, err := NewSource(Size{W: 4, H: 4}, 1, 0); err == nil {
		t.Error("accepted tiny frame")
	}
	if _, err := NewSource(HD, -1, 0); err == nil {
		t.Error("accepted negative objects")
	}
	src, err := NewSource(Size{W: 32, H: 32}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Frame(0, make([]byte, 7)); err == nil {
		t.Error("accepted short buffer")
	}
}

func TestSourceDeterministicAndMoving(t *testing.T) {
	size := Size{W: 64, H: 48}
	a, _ := NewSource(size, 3, 5)
	b, _ := NewSource(size, 3, 5)
	f1 := make([]byte, size.Pixels())
	f2 := make([]byte, size.Pixels())
	if err := a.Frame(3, f1); err != nil {
		t.Fatal(err)
	}
	if err := b.Frame(3, f2); err != nil {
		t.Fatal(err)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("same seed, same frame differ")
		}
	}
	if err := a.Frame(4, f2); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range f1 {
		if f1[i] != f2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("objects do not move between frames")
	}
}

func TestGMMDetectsBrightObject(t *testing.T) {
	g, err := NewGMM(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	bg := make([]byte, 64)
	for i := range bg {
		bg[i] = 25
	}
	mask := make([]byte, 64)
	// Warm up on the background.
	for i := 0; i < 10; i++ {
		if err := g.Process(bg, mask); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range mask {
		if v != 0 {
			t.Fatal("background classified as foreground after warm-up")
		}
	}
	// A bright pixel must be flagged.
	frame := append([]byte(nil), bg...)
	frame[27] = 220
	if err := g.Process(frame, mask); err != nil {
		t.Fatal(err)
	}
	if mask[27] != 255 {
		t.Error("bright pixel not detected")
	}
	if mask[26] != 0 {
		t.Error("background pixel misclassified")
	}
	if err := g.Process(bg[:8], mask); err == nil {
		t.Error("accepted wrong band size")
	}
	if _, err := NewGMM(0, 5); err == nil {
		t.Error("accepted zero width")
	}
}

func TestErodeDilateSmallPatterns(t *testing.T) {
	// A single pixel erodes away and dilates into a plus.
	w, h := 5, 5
	mask := make([]byte, w*h)
	out := make([]byte, w*h)
	mask[2*w+2] = 255
	if err := Erode(mask, out, w, h); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 0 {
			t.Fatalf("erode left pixel %d", i)
		}
	}
	if err := Dilate(mask, out, w, h); err != nil {
		t.Fatal(err)
	}
	wantOn := []int{2*w + 2, 1*w + 2, 3*w + 2, 2*w + 1, 2*w + 3}
	on := 0
	for _, v := range out {
		if v != 0 {
			on++
		}
	}
	if on != len(wantOn) {
		t.Errorf("dilate produced %d pixels, want %d", on, len(wantOn))
	}
	for _, i := range wantOn {
		if out[i] == 0 {
			t.Errorf("dilate missing pixel %d", i)
		}
	}
	if err := Erode(mask, out[:3], w, h); err == nil {
		t.Error("accepted short buffer")
	}
	if err := Dilate(mask[:3], out, w, h); err == nil {
		t.Error("accepted short buffer")
	}
	// A solid 3x3 block survives erosion at its centre.
	for y := 1; y <= 3; y++ {
		for x := 1; x <= 3; x++ {
			mask[y*w+x] = 255
		}
	}
	if err := Erode(mask, out, w, h); err != nil {
		t.Fatal(err)
	}
	if out[2*w+2] != 255 {
		t.Error("block centre should survive erosion")
	}
}

func TestLabelStripFindsComponents(t *testing.T) {
	// Two separate blobs in one strip.
	w, rows := 8, 4
	mask := make([]byte, w*rows)
	mask[1*w+1] = 255
	mask[1*w+2] = 255
	mask[2*w+1] = 255
	mask[1*w+5] = 255
	sl, err := LabelStrip(mask, w, rows, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sl.Comps) != 2 {
		t.Fatalf("components = %d, want 2", len(sl.Comps))
	}
	SortComponents(sl.Comps)
	if sl.Comps[0].Area != 3 || sl.Comps[1].Area != 1 {
		t.Errorf("areas = %d/%d", sl.Comps[0].Area, sl.Comps[1].Area)
	}
	// Global coordinates include the row offset.
	if sl.Comps[0].MinY != 11 {
		t.Errorf("MinY = %d, want 11", sl.Comps[0].MinY)
	}
	if _, err := LabelStrip(mask, w, 5, 0); err == nil {
		t.Error("accepted wrong strip size")
	}
}

func TestLabelStripUShapeMergesLabels(t *testing.T) {
	// A U shape forces a label union in the second pass.
	w, rows := 5, 3
	mask := make([]byte, w*rows)
	for _, i := range []int{0, 2, w, w + 2, 2 * w, 2*w + 1, 2*w + 2} {
		mask[i] = 255
	}
	sl, err := LabelStrip(mask, w, rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sl.Comps) != 1 {
		t.Fatalf("components = %d, want 1 (U shape)", len(sl.Comps))
	}
	if sl.Comps[0].Area != 7 {
		t.Errorf("area = %d, want 7", sl.Comps[0].Area)
	}
}

func TestMergeStripsEqualsFullFrameLabeling(t *testing.T) {
	// Random-ish blobs; label the full frame vs 3 strips + merge.
	size := Size{W: 32, H: 24}
	src, _ := NewSource(size, 4, 3)
	frame := make([]byte, size.Pixels())
	if err := src.Frame(5, frame); err != nil {
		t.Fatal(err)
	}
	mask := make([]byte, size.Pixels())
	for i, v := range frame {
		if v > 100 {
			mask[i] = 255
		}
	}
	full, err := LabelStrip(mask, size.W, size.H, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantComps := append([]Component(nil), full.Comps...)
	SortComponents(wantComps)

	offs := stripRows(size.H, 3)
	strips := make([]*StripLabels, 3)
	for i := range strips {
		lo, hi := offs[i]*size.W, offs[i+1]*size.W
		strips[i], err = LabelStrip(mask[lo:hi], size.W, offs[i+1]-offs[i], offs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	got := MergeStrips(strips)
	if len(got) != len(wantComps) {
		t.Fatalf("merged %d components, want %d", len(got), len(wantComps))
	}
	for i := range got {
		if got[i] != wantComps[i] {
			t.Errorf("component %d = %+v, want %+v", i, got[i], wantComps[i])
		}
	}
}

func TestTrackerAssignsStableIDs(t *testing.T) {
	tr := NewTracker(1, 10)
	mk := func(x, y int64) Component {
		return Component{Area: 4, SumX: 4 * x, SumY: 4 * y,
			MinX: int32(x), MinY: int32(y), MaxX: int32(x), MaxY: int32(y)}
	}
	f1 := tr.Update([]Component{mk(10, 10), mk(50, 50)})
	if len(f1) != 2 || f1[0].ID != 0 || f1[1].ID != 1 {
		t.Fatalf("frame 1 tracks = %+v", f1)
	}
	// Objects move slightly: ids persist.
	f2 := tr.Update([]Component{mk(12, 11), mk(52, 49)})
	if len(f2) != 2 || f2[0].ID != 0 || f2[1].ID != 1 {
		t.Fatalf("frame 2 tracks = %+v", f2)
	}
	// A new distant object gets a fresh id.
	f3 := tr.Update([]Component{mk(12, 11), mk(52, 49), mk(100, 100)})
	if len(f3) != 3 || f3[2].ID != 2 {
		t.Fatalf("frame 3 tracks = %+v", f3)
	}
	// Tiny components are ignored.
	f4 := tr.Update([]Component{{Area: 0}})
	if len(f4) != 0 {
		t.Fatalf("tiny component tracked: %+v", f4)
	}
}

func TestCodecRoundTrips(t *testing.T) {
	comps := []Component{
		{Area: 5, SumX: 10, SumY: 20, MinX: 1, MinY: 2, MaxX: 3, MaxY: 4},
		{Area: 1, SumX: -5, SumY: 7, MinX: 0, MinY: 0, MaxX: 0, MaxY: 0},
	}
	buf := make([]byte, headerBytes+4*componentBytes)
	if err := encodeComponents(buf, comps); err != nil {
		t.Fatal(err)
	}
	got, err := decodeComponents(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != comps[0] || got[1] != comps[1] {
		t.Errorf("components round trip = %+v", got)
	}
	if err := encodeComponents(make([]byte, headerBytes+componentBytes), comps); err == nil {
		t.Error("accepted overflow")
	}
	if _, err := decodeComponents([]byte{1}); err == nil {
		t.Error("accepted short buffer")
	}

	sl := &StripLabels{Comps: comps, TopIDs: []int32{-1, 0, 1}, BotIDs: []int32{1, -1, -1}}
	sbuf := make([]byte, headerBytes+4*componentBytes+2*4*3)
	if err := encodeStripLabels(sbuf, sl, 3); err != nil {
		t.Fatal(err)
	}
	gsl, err := decodeStripLabels(sbuf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(gsl.Comps) != 2 || gsl.TopIDs[1] != 0 || gsl.BotIDs[0] != 1 || gsl.TopIDs[0] != -1 {
		t.Errorf("strip labels round trip = %+v", gsl)
	}
	if err := encodeStripLabels(make([]byte, 20), sl, 3); err == nil {
		t.Error("accepted tiny strip buffer")
	}

	tracks := []Track{{ID: 3, CX: 1.5, CY: -2.25}}
	tbuf := make([]byte, headerBytes+2*trackBytes)
	if err := encodeTracks(tbuf, tracks); err != nil {
		t.Fatal(err)
	}
	gt, err := decodeTracks(tbuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt) != 1 || gt[0] != tracks[0] {
		t.Errorf("tracks round trip = %+v", gt)
	}
	if err := encodeTracks(make([]byte, headerBytes), tracks); err == nil {
		t.Error("accepted track overflow")
	}
	if _, err := decodeTracks([]byte{0}); err == nil {
		t.Error("accepted short track buffer")
	}
}

func TestConfigValidateAndTaskIDs(t *testing.T) {
	cfg := PaperConfig(HD)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumTasks() != 30 {
		t.Errorf("paper config tasks = %d, want 30", cfg.NumTasks())
	}
	// Fig. 2 numbering.
	if cfg.taskProducer() != 0 || cfg.taskGMM() != 1 || cfg.taskErode() != 2 ||
		cfg.taskDilate(0) != 3 || cfg.taskCCL() != 7 || cfg.taskTracking() != 8 ||
		cfg.taskConsumer() != 9 || cfg.taskGMMWorker(0) != 10 || cfg.taskCCLWorker(0) != 26 {
		t.Error("task numbering does not match Fig. 2")
	}
	names := cfg.TaskNames()
	if names[0] != "producer" || names[10] != "gmm split" || names[29] != "ccl split" {
		t.Error("task names wrong")
	}
	bad := cfg
	bad.GMMSplits = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero splits")
	}
	bad = cfg
	bad.Dilates = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero dilates")
	}
}

func TestSerialProducesTracks(t *testing.T) {
	res, err := RunSerial(tinyConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 {
		t.Fatalf("frames = %d", len(res))
	}
	tracked := 0
	for _, tracks := range res {
		tracked += len(tracks)
	}
	if tracked == 0 {
		t.Error("no objects tracked over 8 frames")
	}
}

func TestForkJoinMatchesSerial(t *testing.T) {
	cfg := tinyConfig()
	want, err := RunSerial(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		got, err := RunForkJoin(cfg, 6, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !TracksEqual(want, got) {
			t.Errorf("workers=%d: fork-join diverges from serial", workers)
		}
	}
	if _, err := RunForkJoin(cfg, 2, 0); err == nil {
		t.Error("accepted zero workers")
	}
}

func TestORWLMatchesSerial(t *testing.T) {
	cfg := tinyConfig()
	want, err := RunSerial(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, res, err := RunORWL(cfg, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !TracksEqual(want, got) {
		t.Error("ORWL DFG diverges from serial")
	}
	if res.Program.NumTasks() != cfg.NumTasks() {
		t.Error("task count mismatch")
	}
}

func TestORWLWithAffinity(t *testing.T) {
	cfg := tinyConfig()
	want, err := RunSerial(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, res, err := RunORWL(cfg, 4, topology.TinyFlat())
	if err != nil {
		t.Fatal(err)
	}
	if !TracksEqual(want, got) {
		t.Error("affinity run diverges from serial")
	}
	if res.Module == nil || res.Module.Mapping() == nil {
		t.Fatal("affinity module inactive")
	}
	// 13 tasks on 8 cores: oversubscribed mapping.
	if !res.Module.Mapping().Oversubscribed {
		t.Error("expected oversubscription on TinyFlat")
	}
	// The dependency matrix must contain the pipeline spine and the
	// split stars.
	m := res.Module.Matrix()
	if m.At(cfg.taskProducer(), cfg.taskGMM()) == 0 {
		t.Error("producer->gmm edge missing")
	}
	if m.At(cfg.taskGMM(), cfg.taskGMMWorker(0)) == 0 {
		t.Error("gmm->worker edge missing")
	}
	if m.At(cfg.taskGMMWorker(0), cfg.taskGMM()) == 0 {
		t.Error("worker->gmm edge missing")
	}
}

func TestORWLZeroFrames(t *testing.T) {
	got, _, err := RunORWL(tinyConfig(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Error("zero frames should give no results")
	}
	if _, _, err := RunORWL(tinyConfig(), -1, nil); err == nil {
		t.Error("accepted negative frames")
	}
}

func TestCommMatrixShape(t *testing.T) {
	cfg := PaperConfig(HD)
	m, err := cfg.CommMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if m.Order() != 30 {
		t.Fatalf("order = %d", m.Order())
	}
	frameBytes := float64(HD.Pixels())
	if m.At(0, 1) != frameBytes {
		t.Errorf("producer->gmm volume = %g", m.At(0, 1))
	}
	// GMM worker star: 2 strips per worker.
	if m.At(1, 10) != 2*frameBytes/16 {
		t.Errorf("gmm->worker volume = %g", m.At(1, 10))
	}
	// No direct producer->erode edge.
	if m.At(0, 2) != 0 {
		t.Error("spurious edge")
	}
}

func TestProfiles(t *testing.T) {
	cfg := PaperConfig(FullHD)
	w, err := cfg.Profile(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Threads) != 30 {
		t.Errorf("threads = %d", len(w.Threads))
	}
	if w.ControlThreads == 0 {
		t.Error("DFG profile needs control threads")
	}
	// GMM workers are the heaviest single-strip workers; erode carries
	// a full frame.
	if w.Threads[10].ComputeCycles <= 0 || w.Threads[2].ComputeCycles <= 0 {
		t.Error("stage cycles missing")
	}
	seq, err := cfg.ProfileSequential(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Threads) != 1 {
		t.Error("sequential profile should be single-threaded")
	}
	// The sequential thread does more work per frame than any single
	// pipeline stage.
	if seq.Threads[0].ComputeCycles <= w.Threads[10].ComputeCycles {
		t.Error("sequential profile too light")
	}
	if _, err := cfg.Profile(0); err == nil {
		t.Error("accepted zero frames")
	}
	if _, err := cfg.ProfileSequential(0); err == nil {
		t.Error("accepted zero frames")
	}
}
