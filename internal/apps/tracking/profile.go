package tracking

import (
	"fmt"

	"orwlplace/internal/comm"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/profile"
)

// Per-pixel cycle weights of the stages, calibrated so the stage mix
// matches the paper's description: GMM and CCL are the expensive
// bottleneck stages (hence split 16 and 4 ways), erode/dilate are
// cheaper full-frame filters.
const (
	cyclesPerPxProducer = 2
	cyclesPerPxGMM      = 24
	cyclesPerPxMorph    = 7
	cyclesPerPxCCL      = 14
	cyclesPerPxMerge    = 0.4
	cyclesTracking      = 200_000
	cyclesConsumer      = 50_000
)

// CommMatrix derives the per-frame communication matrix of the DFG —
// the structure rendered in Fig. 1. It matches what the ORWL runtime
// extracts from the task-location graph at schedule time.
func (c Config) CommMatrix() (*comm.Matrix, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	frameBytes := float64(c.Size.Pixels())
	m := comm.NewMatrix(c.NumTasks())
	// Pipeline spine.
	m.AddSym(c.taskProducer(), c.taskGMM(), frameBytes)
	m.AddSym(c.taskGMM(), c.taskErode(), frameBytes)
	prev := c.taskErode()
	for d := 0; d < c.Dilates; d++ {
		m.AddSym(prev, c.taskDilate(d), frameBytes)
		prev = c.taskDilate(d)
	}
	m.AddSym(prev, c.taskCCL(), frameBytes)
	compBytes := float64(headerBytes + compCapacity*componentBytes)
	m.AddSym(c.taskCCL(), c.taskTracking(), compBytes)
	m.AddSym(c.taskTracking(), c.taskConsumer(), float64(headerBytes+trackCap*trackBytes))
	// Split-merge stars.
	for i := 0; i < c.GMMSplits; i++ {
		strip := frameBytes / float64(c.GMMSplits)
		m.AddSym(c.taskGMM(), c.taskGMMWorker(i), 2*strip) // in + out
	}
	for i := 0; i < c.CCLSplits; i++ {
		strip := frameBytes / float64(c.CCLSplits)
		m.AddSym(c.taskCCL(), c.taskCCLWorker(i), strip+compBytes)
	}
	return m, nil
}

// Profile builds the perfsim workload of the DFG processing `frames`
// frames. The pipeline runs in steady state, so the modeled throughput
// is set by the slowest stage under the chosen placement.
func (c Config) Profile(frames int) (*perfsim.Workload, error) {
	if frames < 1 {
		return nil, fmt.Errorf("tracking: need at least one frame")
	}
	m, err := c.CommMatrix()
	if err != nil {
		return nil, err
	}
	px := float64(c.Size.Pixels())
	frameB := px
	b := profile.New(fmt.Sprintf("tracking-%s", c.Size), c.NumTasks()).Comm(m)
	b.Thread(c.taskProducer(), cyclesPerPxProducer*px, frameB, frameB)
	// The GMM master only scatters and gathers strips.
	b.Thread(c.taskGMM(), 0.5*px, 2*frameB, 2*frameB)
	b.Thread(c.taskErode(), cyclesPerPxMorph*px, 2*frameB, 2*frameB)
	for d := 0; d < c.Dilates; d++ {
		b.Thread(c.taskDilate(d), cyclesPerPxMorph*px, 2*frameB, 2*frameB)
	}
	b.Thread(c.taskCCL(), cyclesPerPxMerge*px, frameB, frameB)
	b.Thread(c.taskTracking(), cyclesTracking, 1<<16, 1<<14)
	b.Thread(c.taskConsumer(), cyclesConsumer, 1<<14, 1<<12)
	for i := 0; i < c.GMMSplits; i++ {
		strip := px / float64(c.GMMSplits)
		// The background model is 8 bytes of state per pixel.
		b.Thread(c.taskGMMWorker(i), cyclesPerPxGMM*strip, 9*strip, 9*strip)
	}
	for i := 0; i < c.CCLSplits; i++ {
		strip := px / float64(c.CCLSplits)
		// Labels are 4 bytes per pixel.
		b.Thread(c.taskCCLWorker(i), cyclesPerPxCCL*strip, 5*strip, 5*strip)
	}
	// One location per task plus one "in" per worker; a grant/release
	// pair on each edge per frame.
	control := c.NumTasks() + c.GMMSplits + c.CCLSplits
	return b.Iterations(frames).
		Control(control, float64(control)*2).
		Startup(float64(2 * c.NumTasks())).
		Build()
}

// ProfileOpenMP models the fork-join implementation: the same stage
// threads, but stages execute one after the other per frame (no
// pipeline overlap), the OpenMP runtime deploys no per-location control
// threads, and a barrier ends every stage.
func (c Config) ProfileOpenMP(frames int) (*perfsim.Workload, error) {
	w, err := c.Profile(frames)
	if err != nil {
		return nil, err
	}
	w.Name = fmt.Sprintf("tracking-omp-%s", c.Size)
	w.ControlThreads = 0
	stages := [][]int{{c.taskProducer()}}
	gmmStage := []int{c.taskGMM()}
	for i := 0; i < c.GMMSplits; i++ {
		gmmStage = append(gmmStage, c.taskGMMWorker(i))
	}
	stages = append(stages, gmmStage, []int{c.taskErode()})
	for d := 0; d < c.Dilates; d++ {
		stages = append(stages, []int{c.taskDilate(d)})
	}
	cclStage := []int{c.taskCCL()}
	for i := 0; i < c.CCLSplits; i++ {
		cclStage = append(cclStage, c.taskCCLWorker(i))
	}
	stages = append(stages, cclStage, []int{c.taskTracking()}, []int{c.taskConsumer()})
	w.Stages = stages
	w.ControlEventsPerIter = float64(len(stages)) * 0.05 * float64(c.NumTasks())
	// Frames and masks are shared arrays allocated by the main thread.
	w.MasterAlloc = true
	return w, nil
}

// ProfileSequential models the whole pipeline on a single thread (the
// Sequential series of Fig. 6).
func (c Config) ProfileSequential(frames int) (*perfsim.Workload, error) {
	if frames < 1 {
		return nil, fmt.Errorf("tracking: need at least one frame")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	px := float64(c.Size.Pixels())
	total := cyclesPerPxProducer*px + 0.5*px +
		cyclesPerPxMorph*px*float64(1+c.Dilates) +
		cyclesPerPxGMM*px + cyclesPerPxCCL*px + cyclesPerPxMerge*px +
		cyclesTracking + cyclesConsumer
	return profile.New(fmt.Sprintf("tracking-seq-%s", c.Size), 1).
		EachThread(total, 12*px, 14*px).
		Iterations(frames).
		Startup(2).
		Build()
}
