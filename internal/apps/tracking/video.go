// Package tracking implements the HD video tracking application of
// §V-C: a synchronous data-flow pipeline that detects moving objects by
// foreground–background extraction (a per-pixel Gaussian background
// model), cleans the mask with erosion and dilation, labels connected
// components and tracks them across frames. Three implementations are
// provided: a serial reference, the ORWL DFG of Fig. 3 (with the GMM
// and CCL stages split into parallel sub-tasks) and an OpenMP-style
// per-stage fork-join version.
package tracking

import "fmt"

// Resolution presets used in Fig. 6.
var (
	HD     = Size{W: 1280, H: 720}
	FullHD = Size{W: 1920, H: 1080}
	FourK  = Size{W: 3840, H: 2160}
)

// Size is a frame geometry.
type Size struct{ W, H int }

// Pixels returns the pixel count.
func (s Size) Pixels() int { return s.W * s.H }

// String renders like "1280x720".
func (s Size) String() string { return fmt.Sprintf("%dx%d", s.W, s.H) }

// object is one synthetic moving rectangle.
type object struct {
	x, y   float64
	vx, vy float64
	w, h   int
}

// Source generates deterministic synthetic video: bright rectangles
// moving over a noisy dark background, standing in for the camera feeds
// of the paper's surveillance workload.
type Source struct {
	size Size
	objs []object
	seed uint64
}

// NewSource creates a source with the given number of moving objects.
func NewSource(size Size, objects int, seed int64) (*Source, error) {
	if size.W < 8 || size.H < 8 {
		return nil, fmt.Errorf("tracking: frame %v too small", size)
	}
	if objects < 0 {
		return nil, fmt.Errorf("tracking: negative object count")
	}
	s := &Source{size: size, seed: uint64(seed)*2654435761 + 12345}
	x := s.seed
	next := func(mod int) int {
		x = x*6364136223846793005 + 1442695040888963407
		return int((x >> 33) % uint64(mod))
	}
	for i := 0; i < objects; i++ {
		s.objs = append(s.objs, object{
			x:  float64(next(size.W)),
			y:  float64(next(size.H)),
			vx: float64(1 + next(4)),
			vy: float64(1 + next(3)),
			w:  size.W/16 + next(size.W/16+1),
			h:  size.H/16 + next(size.H/16+1),
		})
	}
	return s, nil
}

// Size returns the frame geometry.
func (s *Source) Size() Size { return s.size }

// Frame renders frame f into buf (len = W*H), deterministically.
func (s *Source) Frame(f int, buf []byte) error {
	if len(buf) != s.size.Pixels() {
		return fmt.Errorf("tracking: frame buffer %d bytes, want %d", len(buf), s.size.Pixels())
	}
	// Low-amplitude deterministic background noise, independent of
	// frame order so any stage split sees identical pixels.
	for i := range buf {
		h := uint64(i)*0x9E3779B97F4A7C15 + uint64(f)*0xBF58476D1CE4E5B9 + s.seed
		h ^= h >> 31
		buf[i] = byte(20 + (h % 11)) // background 20..30
	}
	for _, o := range s.objs {
		ox := int(o.x+o.vx*float64(f)) % s.size.W
		oy := int(o.y+o.vy*float64(f)) % s.size.H
		if ox < 0 {
			ox += s.size.W
		}
		if oy < 0 {
			oy += s.size.H
		}
		for dy := 0; dy < o.h; dy++ {
			y := oy + dy
			if y >= s.size.H {
				break // objects clip at the border instead of wrapping
			}
			row := y * s.size.W
			for dx := 0; dx < o.w; dx++ {
				x := ox + dx
				if x >= s.size.W {
					break
				}
				buf[row+x] = 220
			}
		}
	}
	return nil
}
