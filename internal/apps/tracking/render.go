package tracking

import (
	"fmt"
	"strings"
)

// RenderDFG draws the data-flow graph of the pipeline (the paper's
// Fig. 3): nodes are tasks, edges are the locations they exchange data
// through, with the GMM and CCL split-merge fans shown under their
// master stages.
func (c Config) RenderDFG() string {
	var b strings.Builder
	fmt.Fprintf(&b, "video tracking DFG, %s, %d tasks\n", c.Size, c.NumTasks())
	spine := []string{fmt.Sprintf("[%d:producer]", c.taskProducer())}
	spine = append(spine, fmt.Sprintf("[%d:gmm]", c.taskGMM()))
	spine = append(spine, fmt.Sprintf("[%d:erode]", c.taskErode()))
	for d := 0; d < c.Dilates; d++ {
		spine = append(spine, fmt.Sprintf("[%d:dilate]", c.taskDilate(d)))
	}
	spine = append(spine, fmt.Sprintf("[%d:ccl]", c.taskCCL()))
	spine = append(spine, fmt.Sprintf("[%d:tracking]", c.taskTracking()))
	spine = append(spine, fmt.Sprintf("[%d:consumer]", c.taskConsumer()))
	b.WriteString(strings.Join(spine, " ==> "))
	b.WriteByte('\n')
	fan := func(master string, first, count int) {
		fmt.Fprintf(&b, "%s <=> split{", master)
		for i := 0; i < count; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", first+i)
		}
		b.WriteString("}\n")
	}
	fan(fmt.Sprintf("[%d:gmm]", c.taskGMM()), c.taskGMMWorker(0), c.GMMSplits)
	fan(fmt.Sprintf("[%d:ccl]", c.taskCCL()), c.taskCCLWorker(0), c.CCLSplits)
	fmt.Fprintf(&b, "edges carry one %s frame (%d bytes) per iteration; split edges carry strips\n",
		c.Size, c.Size.Pixels())
	return b.String()
}
