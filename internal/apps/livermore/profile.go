package livermore

import (
	"fmt"

	"orwlplace/internal/perfsim"
	"orwlplace/internal/profile"
)

// planesStreamed is the number of planes the stencil moves per sweep:
// the five coefficient planes, the za reads and the za write-back.
const planesStreamed = 7

// Runtime traffic factors, calibrated against the measured counters of
// Table II (ORWL(Affinity) 14.2 vs OpenMP(Affinity) 64 billion L3
// misses for the same computation):
//
//   - the pipelined 2-D ORWL decomposition reuses halo rows and block
//     borders from the shared caches across the wavefront, saving a
//     fraction of the compulsory stream;
//   - the fork-join version restarts from a cold prefetch state after
//     every sweep barrier and re-reads the chunk boundary rows, so the
//     same planes cross the memory controllers more than once.
const (
	orwlPipelineTrafficFactor = 0.85
	ompBarrierTrafficFactor   = 1.8
)

// Profile builds the perfsim workload of the ORWL Livermore Kernel 23
// run at paper scale: a matrixSize² double-precision grid processed for
// `loops` sweeps on the given number of cores. Following §VI-B1, each
// block is handled by four threads — one computing the central block
// and three updating borders with the neighbourhood — so cores/4 blocks
// are used (one block below four cores), and every thread gets its own
// core.
func Profile(matrixSize, cores, loops int) (*perfsim.Workload, error) {
	if matrixSize < 4 || cores < 1 || loops < 1 {
		return nil, fmt.Errorf("livermore: invalid profile %d/%d/%d", matrixSize, cores, loops)
	}
	blocks := cores / 4
	threadsPerBlock := 4
	if blocks < 1 {
		blocks = 1
		threadsPerBlock = cores
	}
	gx, gy := GridDims(blocks)
	n := blocks * threadsPerBlock

	blockRows := matrixSize / gy
	blockCols := matrixSize / gx
	cells := float64(blockRows) * float64(blockCols)
	pipelineFactor := orwlPipelineTrafficFactor
	if blocks == 1 {
		pipelineFactor = 1 // a single block is plain serial streaming
	}
	traffic := cells * 8 * planesStreamed * pipelineFactor
	workingSet := cells * 8 * planesStreamed

	b := profile.New(fmt.Sprintf("k23-orwl-%dc", cores), n)
	central := func(blk int) int { return blk * threadsPerBlock }
	rowBorderBytes := float64(blockCols) * 8
	colBorderBytes := float64(blockRows) * 8
	for blk := 0; blk < blocks; blk++ {
		bx, by := blk%gx, blk/gx
		b.Thread(central(blk), cells*FlopsPerCell /* ~1 cycle per flop */, workingSet, traffic)
		for o := 1; o < threadsPerBlock; o++ {
			b.Thread(central(blk)+o,
				(rowBorderBytes+colBorderBytes)*2,
				(rowBorderBytes+colBorderBytes)*4,
				(rowBorderBytes+colBorderBytes)*2)
			// Border operations share the block data with the central
			// thread: strong intra-block affinity.
			b.Link(central(blk), central(blk)+o, cells*8/8)
		}
		// Cross-block border exchanges, attached to the border
		// operation threads (or the central one when the block runs
		// alone).
		attach := func(nb, off int, vol float64) {
			b.Link(central(blk)+off%threadsPerBlock, central(nb)+off%threadsPerBlock, vol)
		}
		if bx+1 < gx {
			attach(blk+1, 1, colBorderBytes)
		}
		if by+1 < gy {
			attach(blk+gx, 2, rowBorderBytes)
		}
	}

	// One control thread per border location; each sweep triggers a
	// grant/release pair per handle on both sides.
	return b.Iterations(loops).
		Control(blocks*4, float64(blocks)*4*2.5).
		Startup(float64(n + blocks*4)).
		Build()
}

// ProfileOpenMP builds the perfsim workload of the fork-join
// parallel-for implementation: `cores` threads each own a full-width
// 1-D chunk of rows with static scheduling, synchronised by a barrier
// per sweep, on shared master-allocated planes.
func ProfileOpenMP(matrixSize, cores, loops int) (*perfsim.Workload, error) {
	if matrixSize < 4 || cores < 1 || loops < 1 {
		return nil, fmt.Errorf("livermore: invalid profile %d/%d/%d", matrixSize, cores, loops)
	}
	rows := float64(matrixSize) / float64(cores)
	cells := rows * float64(matrixSize)
	barrierFactor := ompBarrierTrafficFactor
	if cores == 1 {
		barrierFactor = 1 // no barriers in a single-threaded run
	}
	b := profile.New(fmt.Sprintf("k23-omp-%dc", cores), cores).
		EachThread(cells*FlopsPerCell, cells*8*planesStreamed, cells*8*planesStreamed*barrierFactor)
	// Adjacent chunks exchange their border rows every sweep.
	rowBytes := float64(matrixSize) * 8
	for i := 0; i+1 < cores; i++ {
		b.Link(i, i+1, 2*rowBytes)
	}
	// A barrier per sweep wakes a fraction of the team; the shared
	// planes are initialised by the master thread, so first touch
	// concentrates them on its NUMA node.
	return b.Iterations(loops).
		Control(0, 0.1*float64(cores)).
		Startup(float64(cores)).
		MasterAlloc().
		Build()
}

// TotalFlops returns the floating-point work of a run, for rate
// conversions.
func TotalFlops(matrixSize, loops int) float64 {
	interior := float64(matrixSize-2) * float64(matrixSize-2)
	return interior * FlopsPerCell * float64(loops)
}
