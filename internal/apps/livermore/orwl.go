package livermore

import (
	"fmt"

	"orwlplace/internal/core"
	"orwlplace/internal/fp"
	"orwlplace/internal/orwl"
	"orwlplace/internal/topology"
)

// Border location names. Each task owns four locations carrying the
// border it produces for the neighbour in that direction; e.g. "toS" is
// the task's bottom row, read by its south neighbour.
const (
	locToN = "toN"
	locToS = "toS"
	locToE = "toE"
	locToW = "toW"
)

// ORWLResult reports a parallel run.
type ORWLResult struct {
	Program *orwl.Program
	// Mapping is non-nil when the affinity module was active.
	Module *core.Module
}

// RunORWL executes loops Gauss-Seidel sweeps over g using a gx x gy
// block decomposition, one ORWL task per block. Cross-block borders
// travel through per-edge locations: "forward" edges (from the north
// and west neighbours) are writer-first in the FIFO, so a block sees
// its NW neighbours' current-sweep values; "backward" edges (south,
// east) are reader-first, so it sees the previous sweep — the exact
// dependence pattern of the sequential kernel, which makes the blocked
// result bitwise equal to Grid.Serial.
//
// When top is non-nil, the affinity module is attached in forced
// automatic mode, reproducing the paper's ORWL (affinity)
// configuration; the computed binding is recorded on the returned
// program.
func RunORWL(g *Grid, gx, gy, loops int, top *topology.Topology) (*ORWLResult, error) {
	blocks, err := makeBlocks(g.M, g.N, gx, gy)
	if err != nil {
		return nil, err
	}
	if loops < 0 {
		return nil, fmt.Errorf("livermore: negative loop count %d", loops)
	}
	prog, err := orwl.NewProgram(len(blocks), locToN, locToS, locToE, locToW)
	if err != nil {
		return nil, err
	}
	res := &ORWLResult{Program: prog}
	if top != nil {
		mod, _, err := core.EnableAutomatic(prog, top, true)
		if err != nil {
			return nil, err
		}
		res.Module = mod
	}

	err = prog.Run(func(ctx *orwl.TaskContext) error {
		b := blocks[ctx.TID()]
		rows, cols := b.r1-b.r0, b.c1-b.c0
		sl := newSlab(rows, cols)
		sl.loadFrom(g, b)

		neighbour := func(dx, dy int) int {
			nx, ny := b.bx+dx, b.by+dy
			if nx < 0 || nx >= gx || ny < 0 || ny >= gy {
				return -1
			}
			return ny*gx + nx
		}
		nN, nS, nE, nW := neighbour(0, -1), neighbour(0, 1), neighbour(1, 0), neighbour(-1, 0)

		rowBytes := cols * fp.Bytes
		colBytes := rows * fp.Bytes

		// Size own border locations and preset the "backward" ones
		// (read before first write) with the initial border values.
		bufRow := make([]float64, cols)
		bufCol := make([]float64, rows)
		tmpRow := make([]byte, rowBytes)
		tmpCol := make([]byte, colBytes)
		preset := func(name string, vals []float64, buf []byte) error {
			if err := fp.PutFloat64s(buf, vals); err != nil {
				return err
			}
			return ctx.Location(orwl.Loc(ctx.TID(), name)).Preset(buf)
		}
		if err := ctx.Scale(locToN, rowBytes); err != nil {
			return err
		}
		if err := ctx.Scale(locToS, rowBytes); err != nil {
			return err
		}
		if err := ctx.Scale(locToE, colBytes); err != nil {
			return err
		}
		if err := ctx.Scale(locToW, colBytes); err != nil {
			return err
		}
		// Backward payloads: my toN is read by my north neighbour with
		// lag 1, my toW by the west neighbour.
		sl.topRow(bufRow)
		if err := preset(locToN, bufRow, tmpRow); err != nil {
			return err
		}
		sl.leftCol(bufCol)
		if err := preset(locToW, bufCol, tmpCol); err != nil {
			return err
		}

		// Handles. Write handles on own borders; read handles on the
		// neighbours' facing borders. Forward edges writer-first
		// (priority 0 writer, 1 reader); backward edges reader-first.
		writeN := orwl.NewHandle2()
		writeS := orwl.NewHandle2()
		writeE := orwl.NewHandle2()
		writeW := orwl.NewHandle2()
		readN := orwl.NewHandle2() // north neighbour's toS (forward)
		readW := orwl.NewHandle2() // west neighbour's toE (forward)
		readS := orwl.NewHandle2() // south neighbour's toN (backward)
		readE := orwl.NewHandle2() // east neighbour's toW (backward)

		ins := func(err error) error { return err }
		if nS >= 0 {
			// Forward: my toS feeds the south neighbour.
			if err := ins(ctx.WriteInsert(writeS, orwl.Loc(ctx.TID(), locToS), 0)); err != nil {
				return err
			}
			// Backward: south neighbour's toN, reader (me) first.
			if err := ins(ctx.ReadInsert(readS, orwl.Loc(nS, locToN), 0)); err != nil {
				return err
			}
		}
		if nN >= 0 {
			if err := ins(ctx.ReadInsert(readN, orwl.Loc(nN, locToS), 1)); err != nil {
				return err
			}
			if err := ins(ctx.WriteInsert(writeN, orwl.Loc(ctx.TID(), locToN), 1)); err != nil {
				return err
			}
		}
		if nE >= 0 {
			if err := ins(ctx.WriteInsert(writeE, orwl.Loc(ctx.TID(), locToE), 0)); err != nil {
				return err
			}
			if err := ins(ctx.ReadInsert(readE, orwl.Loc(nE, locToW), 0)); err != nil {
				return err
			}
		}
		if nW >= 0 {
			if err := ins(ctx.ReadInsert(readW, orwl.Loc(nW, locToE), 1)); err != nil {
				return err
			}
			if err := ins(ctx.WriteInsert(writeW, orwl.Loc(ctx.TID(), locToW), 1)); err != nil {
				return err
			}
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}

		readBorder := func(h *orwl.Handle, set func([]float64), vals []float64) error {
			return h.Section(func(buf []byte) error {
				if err := fp.GetFloat64s(vals, buf); err != nil {
					return err
				}
				set(vals)
				return nil
			})
		}
		writeBorder := func(h *orwl.Handle, get func([]float64), vals []float64) error {
			return h.Section(func(buf []byte) error {
				get(vals)
				return fp.PutFloat64s(buf, vals)
			})
		}

		for l := 0; l < loops; l++ {
			// Current-sweep halos from the NW wavefront.
			if nN >= 0 {
				if err := readBorder(readN, sl.setNorthHalo, bufRow); err != nil {
					return err
				}
			}
			if nW >= 0 {
				if err := readBorder(readW, sl.setWestHalo, bufCol); err != nil {
					return err
				}
			}
			// Previous-sweep halos from the SE side.
			if nS >= 0 {
				if err := readBorder(readS, sl.setSouthHalo, bufRow); err != nil {
					return err
				}
			}
			if nE >= 0 {
				if err := readBorder(readE, sl.setEastHalo, bufCol); err != nil {
					return err
				}
			}
			sl.step(g, b)
			// Publish the updated borders.
			if nS >= 0 {
				if err := writeBorder(writeS, sl.bottomRow, bufRow); err != nil {
					return err
				}
			}
			if nE >= 0 {
				if err := writeBorder(writeE, sl.rightCol, bufCol); err != nil {
					return err
				}
			}
			if nN >= 0 {
				if err := writeBorder(writeN, sl.topRow, bufRow); err != nil {
					return err
				}
			}
			if nW >= 0 {
				if err := writeBorder(writeW, sl.leftCol, bufCol); err != nil {
					return err
				}
			}
		}
		sl.storeTo(g, b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
