package livermore

import "fmt"

// blockSpec describes one block of the interior decomposition.
type blockSpec struct {
	id     int
	bx, by int // grid coordinates
	r0, r1 int // global row range [r0, r1)
	c0, c1 int // global column range [c0, c1)
}

// partition splits total into parts near-equal chunks (first chunks one
// larger when it does not divide evenly).
func partition(total, parts int) []int {
	out := make([]int, parts)
	base, extra := total/parts, total%parts
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}

// makeBlocks decomposes the interior of an m x n grid into a gx x gy
// block grid, row-major block ids.
func makeBlocks(m, n, gx, gy int) ([]blockSpec, error) {
	interiorRows, interiorCols := m-2, n-2
	if gx < 1 || gy < 1 {
		return nil, fmt.Errorf("livermore: block grid %dx%d invalid", gx, gy)
	}
	if gy > interiorRows || gx > interiorCols {
		return nil, fmt.Errorf("livermore: block grid %dx%d too fine for %dx%d interior",
			gx, gy, interiorCols, interiorRows)
	}
	rowSizes := partition(interiorRows, gy)
	colSizes := partition(interiorCols, gx)
	blocks := make([]blockSpec, 0, gx*gy)
	r := 1
	for by := 0; by < gy; by++ {
		c := 1
		for bx := 0; bx < gx; bx++ {
			blocks = append(blocks, blockSpec{
				id: by*gx + bx, bx: bx, by: by,
				r0: r, r1: r + rowSizes[by],
				c0: c, c1: c + colSizes[bx],
			})
			c += colSizes[bx]
		}
		r += rowSizes[by]
	}
	return blocks, nil
}

// GridDims picks a near-square block grid (gx columns x gy rows) for a
// given number of blocks, preferring more columns than rows when the
// count is not a perfect square.
func GridDims(blocks int) (gx, gy int) {
	if blocks < 1 {
		return 1, 1
	}
	gy = 1
	for d := 1; d*d <= blocks; d++ {
		if blocks%d == 0 {
			gy = d
		}
	}
	return blocks / gy, gy
}

// slab is a block-local working copy of za with a one-cell halo ring.
type slab struct {
	rows, cols int // interior size
	vals       []float64
}

func newSlab(rows, cols int) *slab {
	return &slab{rows: rows, cols: cols, vals: make([]float64, (rows+2)*(cols+2))}
}

func (s *slab) stride() int { return s.cols + 2 }

// at addresses interior cell (i, j), 0-based.
func (s *slab) at(i, j int) int { return (i+1)*s.stride() + (j + 1) }

// loadFrom copies the block's cells and its constant global-boundary
// halo edges from the grid.
func (s *slab) loadFrom(g *Grid, b blockSpec) {
	for i := 0; i < s.rows; i++ {
		copy(s.vals[s.at(i, 0):s.at(i, 0)+s.cols], g.Za[(b.r0+i)*g.N+b.c0:(b.r0+i)*g.N+b.c1])
	}
	// Global boundary halos never change during the run; interior halos
	// are overwritten from neighbour payloads each sweep.
	if b.r0 == 1 {
		copy(s.vals[s.at(-1, 0):s.at(-1, 0)+s.cols], g.Za[0*g.N+b.c0:0*g.N+b.c1])
	}
	if b.r1 == g.M-1 {
		copy(s.vals[s.at(s.rows, 0):s.at(s.rows, 0)+s.cols], g.Za[(g.M-1)*g.N+b.c0:(g.M-1)*g.N+b.c1])
	}
	if b.c0 == 1 {
		for i := 0; i < s.rows; i++ {
			s.vals[s.at(i, -1)] = g.Za[(b.r0+i)*g.N]
		}
	}
	if b.c1 == g.N-1 {
		for i := 0; i < s.rows; i++ {
			s.vals[s.at(i, s.cols)] = g.Za[(b.r0+i)*g.N+g.N-1]
		}
	}
}

// storeTo writes the interior cells back into the grid.
func (s *slab) storeTo(g *Grid, b blockSpec) {
	for i := 0; i < s.rows; i++ {
		copy(g.Za[(b.r0+i)*g.N+b.c0:(b.r0+i)*g.N+b.c1], s.vals[s.at(i, 0):s.at(i, 0)+s.cols])
	}
}

// step performs one Gauss-Seidel sweep over the slab, using the global
// coefficient planes at the block's position. The operation order per
// cell matches Grid.stepRow exactly, so blocked and serial runs agree
// bitwise.
func (s *slab) step(g *Grid, b blockSpec) {
	st := s.stride()
	for i := 0; i < s.rows; i++ {
		gRow := (b.r0 + i) * g.N
		for j := 0; j < s.cols; j++ {
			idx := s.at(i, j)
			gIdx := gRow + b.c0 + j
			qa := s.vals[idx+st]*g.Zr[gIdx] + s.vals[idx-st]*g.Zb[gIdx] +
				s.vals[idx+1]*g.Zu[gIdx] + s.vals[idx-1]*g.Zv[gIdx] +
				g.Zz[gIdx]
			s.vals[idx] += 0.175 * (qa - s.vals[idx])
		}
	}
}

// Border extraction/injection for the halo exchange.

func (s *slab) topRow(dst []float64) {
	copy(dst, s.vals[s.at(0, 0):s.at(0, 0)+s.cols])
}
func (s *slab) bottomRow(dst []float64) {
	copy(dst, s.vals[s.at(s.rows-1, 0):s.at(s.rows-1, 0)+s.cols])
}
func (s *slab) leftCol(dst []float64) {
	for i := 0; i < s.rows; i++ {
		dst[i] = s.vals[s.at(i, 0)]
	}
}
func (s *slab) rightCol(dst []float64) {
	for i := 0; i < s.rows; i++ {
		dst[i] = s.vals[s.at(i, s.cols-1)]
	}
}
func (s *slab) setNorthHalo(src []float64) {
	copy(s.vals[s.at(-1, 0):s.at(-1, 0)+s.cols], src)
}
func (s *slab) setSouthHalo(src []float64) {
	copy(s.vals[s.at(s.rows, 0):s.at(s.rows, 0)+s.cols], src)
}
func (s *slab) setWestHalo(src []float64) {
	for i := 0; i < s.rows; i++ {
		s.vals[s.at(i, -1)] = src[i]
	}
}
func (s *slab) setEastHalo(src []float64) {
	for i := 0; i < s.rows; i++ {
		s.vals[s.at(i, s.cols)] = src[i]
	}
}
