package livermore

import (
	"testing"

	"orwlplace/internal/topology"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(2, 10, 1); err == nil {
		t.Error("accepted tiny grid")
	}
	if _, err := NewGrid(10, 2, 1); err == nil {
		t.Error("accepted tiny grid")
	}
	g, err := NewGrid(8, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Za) != 64 || len(g.Zz) != 64 {
		t.Error("planes not allocated")
	}
}

func TestGridDeterministicBySeed(t *testing.T) {
	a, _ := NewGrid(8, 8, 7)
	b, _ := NewGrid(8, 8, 7)
	c, _ := NewGrid(8, 8, 8)
	d, _ := MaxAbsDiff(a, b)
	if d != 0 {
		t.Error("same seed differs")
	}
	d, _ = MaxAbsDiff(a, c)
	if d == 0 {
		t.Error("different seeds identical")
	}
}

func TestSerialChangesInteriorOnly(t *testing.T) {
	g, _ := NewGrid(8, 8, 1)
	orig := g.Clone()
	g.Serial(3)
	// Boundary rows/cols unchanged.
	for k := 0; k < g.N; k++ {
		if g.Za[k] != orig.Za[k] || g.Za[(g.M-1)*g.N+k] != orig.Za[(g.M-1)*g.N+k] {
			t.Fatal("boundary rows changed")
		}
	}
	for j := 0; j < g.M; j++ {
		if g.Za[j*g.N] != orig.Za[j*g.N] || g.Za[j*g.N+g.N-1] != orig.Za[j*g.N+g.N-1] {
			t.Fatal("boundary cols changed")
		}
	}
	d, _ := MaxAbsDiff(g, orig)
	if d == 0 {
		t.Error("interior did not change")
	}
}

func TestMaxAbsDiffShapeMismatch(t *testing.T) {
	a, _ := NewGrid(8, 8, 1)
	b, _ := NewGrid(8, 9, 1)
	if _, err := MaxAbsDiff(a, b); err == nil {
		t.Error("accepted shape mismatch")
	}
}

func TestMakeBlocksPartition(t *testing.T) {
	blocks, err := makeBlocks(18, 18, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 8 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	// Cover the interior exactly once.
	covered := make(map[[2]int]int)
	for _, b := range blocks {
		for r := b.r0; r < b.r1; r++ {
			for c := b.c0; c < b.c1; c++ {
				covered[[2]int{r, c}]++
			}
		}
	}
	if len(covered) != 16*16 {
		t.Errorf("covered %d cells, want %d", len(covered), 16*16)
	}
	for cell, n := range covered {
		if n != 1 {
			t.Fatalf("cell %v covered %d times", cell, n)
		}
	}
	if _, err := makeBlocks(10, 10, 0, 1); err == nil {
		t.Error("accepted zero block grid")
	}
	if _, err := makeBlocks(10, 10, 20, 1); err == nil {
		t.Error("accepted over-fine block grid")
	}
}

func TestGridDims(t *testing.T) {
	cases := []struct{ blocks, gx, gy int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {8, 4, 2}, {16, 4, 4}, {24, 6, 4}, {0, 1, 1},
	}
	for _, c := range cases {
		gx, gy := GridDims(c.blocks)
		if gx != c.gx || gy != c.gy {
			t.Errorf("GridDims(%d) = %dx%d, want %dx%d", c.blocks, gx, gy, c.gx, c.gy)
		}
	}
}

func TestForkJoinMatchesSerialBitwise(t *testing.T) {
	for _, cfg := range []struct{ m, n, gx, gy, loops int }{
		{10, 10, 2, 2, 1},
		{18, 14, 3, 2, 5},
		{33, 29, 4, 3, 7},
	} {
		ref, _ := NewGrid(cfg.m, cfg.n, 5)
		par := ref.Clone()
		ref.Serial(cfg.loops)
		if err := RunForkJoin(par, cfg.gx, cfg.gy, cfg.loops); err != nil {
			t.Fatal(err)
		}
		d, err := MaxAbsDiff(ref, par)
		if err != nil {
			t.Fatal(err)
		}
		if d != 0 {
			t.Errorf("%+v: fork-join differs from serial by %g", cfg, d)
		}
	}
}

func TestORWLMatchesSerialBitwise(t *testing.T) {
	for _, cfg := range []struct{ m, n, gx, gy, loops int }{
		{10, 10, 1, 1, 3},
		{10, 10, 2, 2, 1},
		{18, 14, 3, 2, 5},
		{33, 29, 4, 3, 7},
		{20, 20, 1, 4, 4},
		{20, 20, 4, 1, 4},
	} {
		ref, _ := NewGrid(cfg.m, cfg.n, 9)
		par := ref.Clone()
		ref.Serial(cfg.loops)
		if _, err := RunORWL(par, cfg.gx, cfg.gy, cfg.loops, nil); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		d, err := MaxAbsDiff(ref, par)
		if err != nil {
			t.Fatal(err)
		}
		if d != 0 {
			t.Errorf("%+v: ORWL differs from serial by %g", cfg, d)
		}
	}
}

func TestORWLZeroLoopsIsIdentity(t *testing.T) {
	g, _ := NewGrid(12, 12, 3)
	orig := g.Clone()
	if _, err := RunORWL(g, 2, 2, 0, nil); err != nil {
		t.Fatal(err)
	}
	d, _ := MaxAbsDiff(g, orig)
	if d != 0 {
		t.Error("zero loops changed the grid")
	}
	if _, err := RunORWL(g, 2, 2, -1, nil); err == nil {
		t.Error("accepted negative loops")
	}
	if err := RunForkJoin(g, 2, 2, -1); err == nil {
		t.Error("fork-join accepted negative loops")
	}
}

func TestORWLWithAffinityBindsTasks(t *testing.T) {
	g, _ := NewGrid(18, 18, 2)
	ref := g.Clone()
	ref.Serial(4)
	res, err := RunORWL(g, 2, 2, 4, topology.TinyFlat())
	if err != nil {
		t.Fatal(err)
	}
	d, _ := MaxAbsDiff(ref, g)
	if d != 0 {
		t.Errorf("affinity run changed results by %g", d)
	}
	if res.Module == nil || res.Module.Mapping() == nil {
		t.Fatal("affinity module inactive")
	}
	if got := len(res.Program.Binding()); got != 4 {
		t.Errorf("bound %d tasks, want 4", got)
	}
	// The dependency matrix must reflect the 2x2 stencil: adjacent
	// blocks communicate, diagonal ones do not.
	m := res.Module.Matrix()
	if m.At(0, 1)+m.At(1, 0) == 0 || m.At(0, 2)+m.At(2, 0) == 0 {
		t.Error("missing neighbour dependencies")
	}
	if m.At(0, 3)+m.At(3, 0) != 0 {
		t.Error("diagonal blocks should not communicate")
	}
}

func TestProfileShape(t *testing.T) {
	w, err := Profile(16384, 64, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Threads) != 64 {
		t.Fatalf("threads = %d, want 64", len(w.Threads))
	}
	if w.ControlThreads == 0 || w.ControlEventsPerIter == 0 {
		t.Error("ORWL profile should have control threads")
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Central threads are heavier than border threads.
	if w.Threads[0].ComputeCycles <= w.Threads[1].ComputeCycles {
		t.Error("central thread should dominate")
	}
	// Intra-block affinity dominates cross-block volumes.
	if w.Comm.At(0, 1) <= w.Comm.At(1, 5) {
		t.Error("intra-block volume should dominate")
	}

	small, err := Profile(1024, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Threads) != 1 {
		t.Errorf("1-core profile threads = %d", len(small.Threads))
	}
	if _, err := Profile(2, 1, 1); err == nil {
		t.Error("accepted tiny matrix")
	}
	if _, err := Profile(1024, 0, 1); err == nil {
		t.Error("accepted zero cores")
	}
}

func TestProfileOpenMPShape(t *testing.T) {
	omp, err := ProfileOpenMP(16384, 64, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := omp.Validate(); err != nil {
		t.Fatal(err)
	}
	if omp.ControlThreads != 0 {
		t.Error("fork-join profile should have no ORWL control threads")
	}
	if len(omp.Threads) != 64 {
		t.Errorf("threads = %d", len(omp.Threads))
	}
	// 1-D full-width chunks stream za three times; the 2-D ORWL blocks
	// of the same run are tiled and stream it once, so the per-sweep
	// traffic across all threads is larger for OpenMP.
	orwl, err := Profile(16384, 64, 100)
	if err != nil {
		t.Fatal(err)
	}
	var ompTraffic, orwlTraffic float64
	for _, th := range omp.Threads {
		ompTraffic += th.MemoryTraffic
	}
	for _, th := range orwl.Threads {
		orwlTraffic += th.MemoryTraffic
	}
	if ompTraffic <= orwlTraffic {
		t.Errorf("OpenMP traffic %g should exceed tiled ORWL traffic %g", ompTraffic, orwlTraffic)
	}
	if _, err := ProfileOpenMP(2, 1, 1); err == nil {
		t.Error("accepted tiny matrix")
	}
}

func TestTotalFlops(t *testing.T) {
	if got := TotalFlops(4, 1); got != 2*2*FlopsPerCell {
		t.Errorf("TotalFlops = %g", got)
	}
	if TotalFlops(16384, 100) <= 0 {
		t.Error("paper-scale flops should be positive")
	}
}
