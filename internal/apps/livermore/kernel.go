// Package livermore implements the Livermore Kernel 23 benchmark
// (2-D implicit hydrodynamics fragment, §V-A): a memory-bound 5-point
// stencil that is parallelised by pipelining blocks along NW→SE
// wavefronts. Three implementations are provided: a serial reference, a
// blocked ORWL version whose tasks exchange borders through locations,
// and an OpenMP-style fork-join version that parallelises each
// wavefront diagonal.
package livermore

import "fmt"

// Grid holds the stencil state: the value plane za and the five
// coefficient planes, all m x n row-major.
type Grid struct {
	M, N                   int
	Za, Zb, Zr, Zu, Zv, Zz []float64
}

// NewGrid allocates an m x n grid with deterministic, seed-dependent
// coefficients mimicking the LinPack initialisation.
func NewGrid(m, n int, seed int64) (*Grid, error) {
	if m < 3 || n < 3 {
		return nil, fmt.Errorf("livermore: grid %dx%d too small (need >= 3x3)", m, n)
	}
	g := &Grid{
		M: m, N: n,
		Za: make([]float64, m*n),
		Zb: make([]float64, m*n),
		Zr: make([]float64, m*n),
		Zu: make([]float64, m*n),
		Zv: make([]float64, m*n),
		Zz: make([]float64, m*n),
	}
	// A cheap deterministic LCG keeps initialisation reproducible
	// without pulling in math/rand for a fixed pattern.
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		x = x*6364136223846793005 + 1442695040888963407
		return float64(x>>11) / float64(1<<53)
	}
	for i := range g.Za {
		g.Za[i] = next()
		g.Zb[i] = 0.05 + 0.1*next()
		g.Zr[i] = 0.05 + 0.1*next()
		g.Zu[i] = 0.05 + 0.1*next()
		g.Zv[i] = 0.05 + 0.1*next()
		g.Zz[i] = 0.1 * next()
	}
	return g, nil
}

// Clone deep-copies the grid.
func (g *Grid) Clone() *Grid {
	c := &Grid{M: g.M, N: g.N}
	dup := func(s []float64) []float64 { return append([]float64(nil), s...) }
	c.Za, c.Zb, c.Zr, c.Zu, c.Zv, c.Zz = dup(g.Za), dup(g.Zb), dup(g.Zr), dup(g.Zu), dup(g.Zv), dup(g.Zz)
	return c
}

// stepRow updates row j of za over columns [k0, k1) following
// Listing 2. It reads za[j-1] (already updated this sweep), za[j+1]
// (previous sweep), za[j][k-1] (updated) and za[j][k+1] (old) — the
// Gauss-Seidel ordering of the original kernel.
func (g *Grid) stepRow(j, k0, k1 int) {
	n := g.N
	za, zb, zr, zu, zv, zz := g.Za, g.Zb, g.Zr, g.Zu, g.Zv, g.Zz
	row := j * n
	for k := k0; k < k1; k++ {
		qa := za[row+n+k]*zr[row+k] + za[row-n+k]*zb[row+k] +
			za[row+k+1]*zu[row+k] + za[row+k-1]*zv[row+k] +
			zz[row+k]
		za[row+k] += 0.175 * (qa - za[row+k])
	}
}

// Serial runs the reference kernel for the given number of sweeps over
// the interior (rows 1..m-2, columns 1..n-2), exactly as Listing 2.
func (g *Grid) Serial(loops int) {
	for l := 0; l < loops; l++ {
		for j := 1; j < g.M-1; j++ {
			g.stepRow(j, 1, g.N-1)
		}
	}
}

// MaxAbsDiff returns the largest absolute element difference of the za
// planes, for verification.
func MaxAbsDiff(a, b *Grid) (float64, error) {
	if a.M != b.M || a.N != b.N {
		return 0, fmt.Errorf("livermore: grid shapes differ (%dx%d vs %dx%d)", a.M, a.N, b.M, b.N)
	}
	var mx float64
	for i := range a.Za {
		d := a.Za[i] - b.Za[i]
		if d < 0 {
			d = -d
		}
		if d > mx {
			mx = d
		}
	}
	return mx, nil
}

// FlopsPerCell is the floating-point operation count of one stencil
// update (4 mul + 4 add for qa, then 1 sub, 1 mul, 1 add).
const FlopsPerCell = 11
