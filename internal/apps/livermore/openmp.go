package livermore

import (
	"fmt"
	"sync"
)

// RunForkJoin executes loops sweeps with the OpenMP-style
// implementation of §VI-B1: fork-join parallelism with static
// scheduling. Within each sweep, the blocks of every NW→SE anti-
// diagonal are processed in parallel worker goroutines and a barrier
// separates consecutive diagonals, which preserves the Gauss-Seidel
// dependence pattern: results are bitwise equal to Grid.Serial, like
// the ORWL version — but sweeps do not pipeline, which is exactly the
// structural disadvantage against ORWL observed in the paper.
func RunForkJoin(g *Grid, gx, gy, loops int) error {
	blocks, err := makeBlocks(g.M, g.N, gx, gy)
	if err != nil {
		return err
	}
	if loops < 0 {
		return fmt.Errorf("livermore: negative loop count %d", loops)
	}
	// Group block ids per anti-diagonal (bx+by).
	diags := make([][]int, gx+gy-1)
	for _, b := range blocks {
		d := b.bx + b.by
		diags[d] = append(diags[d], b.id)
	}
	for l := 0; l < loops; l++ {
		for _, diag := range diags {
			var wg sync.WaitGroup
			for _, id := range diag {
				wg.Add(1)
				go func(b blockSpec) {
					defer wg.Done()
					// In-place update on the shared grid is safe:
					// blocks of a diagonal are disjoint, their N/W
					// halo rows were finalised by the previous
					// diagonal, and S/E halos are untouched until the
					// next one.
					for j := b.r0; j < b.r1; j++ {
						g.stepRow(j, b.c0, b.c1)
					}
				}(blocks[id])
			}
			wg.Wait()
		}
	}
	return nil
}
