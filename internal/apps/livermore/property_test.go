package livermore

import (
	"testing"
	"testing/quick"
)

// Property: for any grid geometry, block decomposition and sweep count
// (within small bounds), the ORWL pipelined execution and the fork-join
// execution are bitwise equal to the serial kernel.
func TestParallelEqualsSerialProperty(t *testing.T) {
	f := func(mRaw, nRaw, gxRaw, gyRaw, loopRaw uint8) bool {
		m := 8 + int(mRaw)%17  // 8..24
		n := 8 + int(nRaw)%17  // 8..24
		gx := 1 + int(gxRaw)%4 // 1..4
		gy := 1 + int(gyRaw)%4
		loops := 1 + int(loopRaw)%5
		if gx > n-2 || gy > m-2 {
			return true // decomposition finer than the interior: skipped
		}
		ref, err := NewGrid(m, n, int64(mRaw)*131+int64(nRaw))
		if err != nil {
			return false
		}
		fj := ref.Clone()
		ow := ref.Clone()
		ref.Serial(loops)
		if err := RunForkJoin(fj, gx, gy, loops); err != nil {
			return false
		}
		if _, err := RunORWL(ow, gx, gy, loops, nil); err != nil {
			return false
		}
		d1, err := MaxAbsDiff(ref, fj)
		if err != nil || d1 != 0 {
			return false
		}
		d2, err := MaxAbsDiff(ref, ow)
		return err == nil && d2 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the kernel is a contraction towards the neighbour average
// when coefficients are small — values stay bounded across sweeps.
func TestKernelBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, err := NewGrid(12, 12, seed)
		if err != nil {
			return false
		}
		g.Serial(50)
		for _, v := range g.Za {
			if v != v || v > 100 || v < -100 { // NaN or blow-up
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
