// Package matmul implements the block-cyclic dense matrix
// multiplication of §V-B: each ORWL task owns a block of rows of the
// result matrix C and the input blocks of B circulate between tasks
// through locations, so that after p phases every task has seen the
// whole of B. An MKL-style fork-join baseline provides the comparison
// point of Fig. 5.
package matmul

import (
	"fmt"
	"math/rand"

	"orwlplace/internal/blas"
)

// Matrix is a dense row-major square matrix.
type Matrix struct {
	N    int
	Data []float64
}

// NewMatrix returns a zero n x n matrix.
func NewMatrix(n int) (*Matrix, error) {
	if n <= 0 {
		return nil, fmt.Errorf("matmul: invalid size %d", n)
	}
	return &Matrix{N: n, Data: make([]float64, n*n)}, nil
}

// NewRandomMatrix returns an n x n matrix with deterministic
// pseudo-random entries.
func NewRandomMatrix(n int, seed int64) (*Matrix, error) {
	m, err := NewMatrix(n)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = rng.Float64() - 0.5
	}
	return m, nil
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{N: m.N, Data: append([]float64(nil), m.Data...)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Serial computes C += A*B with the blocked serial kernel.
func Serial(a, b, c *Matrix) error {
	if a.N != b.N || a.N != c.N {
		return fmt.Errorf("matmul: size mismatch %d/%d/%d", a.N, b.N, c.N)
	}
	return blas.Dgemm(a.N, a.N, a.N, a.Data, a.N, b.Data, b.N, c.Data, c.N)
}

// MaxAbsDiff returns the largest absolute element difference.
func MaxAbsDiff(a, b *Matrix) (float64, error) {
	if a.N != b.N {
		return 0, fmt.Errorf("matmul: size mismatch %d vs %d", a.N, b.N)
	}
	var mx float64
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > mx {
			mx = d
		}
	}
	return mx, nil
}

// TotalFlops is the floating-point operation count of one n x n
// multiplication (2 ops per multiply-add).
func TotalFlops(n int) float64 {
	fn := float64(n)
	return 2 * fn * fn * fn
}

// rowBlocks partitions n rows into p near-equal blocks and returns the
// start offsets (length p+1).
func rowBlocks(n, p int) []int {
	offs := make([]int, p+1)
	base, extra := n/p, n%p
	for i := 0; i < p; i++ {
		offs[i+1] = offs[i] + base
		if i < extra {
			offs[i+1]++
		}
	}
	return offs
}
