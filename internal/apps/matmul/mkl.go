package matmul

import (
	"fmt"
	"sync"

	"orwlplace/internal/blas"
)

// RunForkJoin computes C += A*B with an MKL-style multithreaded DGEMM:
// the rows of C are statically split over `workers` goroutines that all
// read the shared A and B. This mirrors the paper's MKL baseline, where
// one master thread allocates the matrices (first touch on one NUMA
// node) and worker threads pull the shared data from there — the
// behaviour whose scaling collapse Fig. 5 documents.
func RunForkJoin(a, b, c *Matrix, workers int) error {
	if a.N != b.N || a.N != c.N {
		return fmt.Errorf("matmul: size mismatch %d/%d/%d", a.N, b.N, c.N)
	}
	if workers < 1 {
		return fmt.Errorf("matmul: worker count %d < 1", workers)
	}
	if workers > a.N {
		workers = a.N
	}
	n := a.N
	offs := rowBlocks(n, workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rows := offs[w+1] - offs[w]
			errs[w] = blas.Dgemm(rows, n, n,
				a.Data[offs[w]*n:], n,
				b.Data, n,
				c.Data[offs[w]*n:], n)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
