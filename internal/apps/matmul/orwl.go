package matmul

import (
	"encoding/binary"
	"fmt"

	"orwlplace/internal/blas"
	"orwlplace/internal/core"
	"orwlplace/internal/fp"
	"orwlplace/internal/orwl"
	"orwlplace/internal/topology"
)

// locB is the per-task location holding the B block currently residing
// at the task.
const locB = "bblock"

// ORWLResult reports a parallel multiplication run.
type ORWLResult struct {
	Program *orwl.Program
	Module  *core.Module
}

// RunORWL computes C += A*B with p ORWL tasks. Task t owns row block t
// of A and C; the row blocks of B circulate along the task ring through
// each task's "bblock" location: in every phase a task fetches the
// block stored at its predecessor, accumulates the corresponding
// partial product into its C rows, and deposits the block in its own
// location for the successor. After p phases every task has consumed
// all of B.
//
// When top is non-nil the affinity module runs in forced automatic mode
// (the paper's ORWL (Affinity) configuration).
func RunORWL(a, b, c *Matrix, p int, top *topology.Topology) (*ORWLResult, error) {
	if a.N != b.N || a.N != c.N {
		return nil, fmt.Errorf("matmul: size mismatch %d/%d/%d", a.N, b.N, c.N)
	}
	n := a.N
	if p < 1 || p > n {
		return nil, fmt.Errorf("matmul: task count %d out of range [1,%d]", p, n)
	}
	offs := rowBlocks(n, p)
	maxRows := offs[1] - offs[0]
	// Payload: 8-byte block id header + the block rows.
	payloadBytes := 8 + maxRows*n*fp.Bytes

	prog, err := orwl.NewProgram(p, locB)
	if err != nil {
		return nil, err
	}
	res := &ORWLResult{Program: prog}
	if top != nil {
		mod, _, err := core.EnableAutomatic(prog, top, true)
		if err != nil {
			return nil, err
		}
		res.Module = mod
	}

	encode := func(buf []byte, blockID int) error {
		binary.LittleEndian.PutUint64(buf, uint64(blockID))
		rows := offs[blockID+1] - offs[blockID]
		return fp.PutFloat64s(buf[8:8+rows*n*fp.Bytes], b.Data[offs[blockID]*n:offs[blockID+1]*n])
	}

	err = prog.Run(func(ctx *orwl.TaskContext) error {
		t := ctx.TID()
		pred := (t - 1 + p) % p
		myRows := offs[t+1] - offs[t]

		own := ctx.Location(orwl.Loc(t, locB))
		initBuf := make([]byte, payloadBytes)
		if err := encode(initBuf, t); err != nil {
			return err
		}
		if err := own.Preset(initBuf); err != nil {
			return err
		}

		readPred := orwl.NewHandle2()
		writeOwn := orwl.NewHandle2()
		if p > 1 {
			// Reader-first on every location: the successor consumes
			// the initial block before the owner overwrites it.
			if err := ctx.ReadInsert(readPred, orwl.Loc(pred, locB), 0); err != nil {
				return err
			}
			if err := ctx.WriteInsert(writeOwn, orwl.Loc(t, locB), 1); err != nil {
				return err
			}
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}

		blockBuf := make([]float64, maxRows*n)
		cur := make([]byte, payloadBytes)
		if p == 1 {
			return blas.Dgemm(n, n, n, a.Data, n, b.Data, n, c.Data, n)
		}
		for phase := 0; phase < p; phase++ {
			// Fetch the block waiting at the predecessor.
			if err := readPred.Section(func(buf []byte) error {
				copy(cur, buf)
				return nil
			}); err != nil {
				return err
			}
			blockID := int(binary.LittleEndian.Uint64(cur))
			if blockID < 0 || blockID >= p {
				return fmt.Errorf("matmul: task %d phase %d: bad block id %d", t, phase, blockID)
			}
			kRows := offs[blockID+1] - offs[blockID]
			if err := fp.GetFloat64s(blockBuf[:kRows*n], cur[8:8+kRows*n*fp.Bytes]); err != nil {
				return err
			}
			// C[myRows, :] += A[myRows, kRange] * B[kRange, :].
			if err := blas.Dgemm(
				myRows, n, kRows,
				a.Data[offs[t]*n+offs[blockID]:], n,
				blockBuf, n,
				c.Data[offs[t]*n:], n,
			); err != nil {
				return err
			}
			// Pass the block on to the successor.
			if err := writeOwn.Section(func(buf []byte) error {
				copy(buf, cur)
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
