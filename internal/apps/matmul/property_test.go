package matmul

import (
	"testing"
	"testing/quick"
)

// Property: for any size and task count, the block-cyclic ORWL
// multiplication matches the serial kernel within numerical tolerance.
func TestORWLEqualsSerialProperty(t *testing.T) {
	f := func(nRaw, pRaw uint8, seed int64) bool {
		n := 2 + int(nRaw)%14 // 2..15
		p := 1 + int(pRaw)%n  // 1..n
		a, err := NewRandomMatrix(n, seed)
		if err != nil {
			return false
		}
		b, err := NewRandomMatrix(n, seed+1)
		if err != nil {
			return false
		}
		want, _ := NewMatrix(n)
		if Serial(a, b, want) != nil {
			return false
		}
		got, _ := NewMatrix(n)
		if _, err := RunORWL(a, b, got, p, nil); err != nil {
			return false
		}
		d, err := MaxAbsDiff(want, got)
		return err == nil && d < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: C accumulates — running the multiplication twice doubles
// the result of a single run when C starts at zero.
func TestAccumulationProperty(t *testing.T) {
	f := func(seed int64) bool {
		const n = 8
		a, _ := NewRandomMatrix(n, seed)
		b, _ := NewRandomMatrix(n, seed+7)
		once, _ := NewMatrix(n)
		if Serial(a, b, once) != nil {
			return false
		}
		twice, _ := NewMatrix(n)
		if Serial(a, b, twice) != nil || Serial(a, b, twice) != nil {
			return false
		}
		for i := range once.Data {
			d := twice.Data[i] - 2*once.Data[i]
			if d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
