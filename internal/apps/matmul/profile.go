package matmul

import (
	"fmt"

	"orwlplace/internal/comm"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/profile"
)

// cyclesPerFlop models a well-vectorised DGEMM inner kernel: with
// AVX/FMA units a Sandy-Bridge-class core retires several flops per
// cycle.
const cyclesPerFlop = 0.15

// ProfileORWL builds the perfsim workload of the block-cyclic ORWL
// multiplication of two matrixSize² matrices over p tasks: p phases, a
// ring communication pattern carrying one B row block per phase, and
// distributed first-touch data.
func ProfileORWL(matrixSize, p int) (*perfsim.Workload, error) {
	if matrixSize < 1 || p < 1 {
		return nil, fmt.Errorf("matmul: invalid profile %d/%d", matrixSize, p)
	}
	n := float64(matrixSize)
	rows := n / float64(p)
	blockBytes := rows * n * 8
	// Per phase: 2 * rows * rows * n flops on a row panel + C rows +
	// the circulating block. One location per task; a grant/release
	// pair on both sides per phase.
	return profile.New(fmt.Sprintf("matmul-orwl-%dp", p), p).
		EachThread(2*rows*rows*n*cyclesPerFlop, 3*blockBytes, blockBytes).
		Comm(comm.Ring(p, blockBytes, true)).
		Iterations(p).
		Control(p, float64(p)*2).
		Startup(float64(2 * p)).
		Build()
}

// ProfileMKL builds the perfsim workload of the MKL-style fork-join
// multiplication: the same compute partition, but A and B live on the
// master's NUMA node, so every phase pulls the shared panels from
// thread 0 — a star communication pattern that saturates the master
// node's links once several sockets are involved.
func ProfileMKL(matrixSize, p int) (*perfsim.Workload, error) {
	if matrixSize < 1 || p < 1 {
		return nil, fmt.Errorf("matmul: invalid profile %d/%d", matrixSize, p)
	}
	n := float64(matrixSize)
	rows := n / float64(p)
	blockBytes := rows * n * 8
	b := profile.New(fmt.Sprintf("matmul-mkl-%dp", p), p).
		EachThread(2*rows*rows*n*cyclesPerFlop, 3*blockBytes, blockBytes)
	for i := 1; i < p; i++ {
		// Per phase each worker streams one B panel from the master's
		// node.
		b.Link(0, i, blockBytes)
	}
	// One fork-join per run, amortised; A, B and C are allocated by
	// the calling (master) thread.
	return b.Iterations(p).
		Control(0, 0.4).
		Startup(float64(p)).
		MasterAlloc().
		Build()
}
