package matmul

import (
	"fmt"

	"orwlplace/internal/comm"
	"orwlplace/internal/perfsim"
)

// cyclesPerFlop models a well-vectorised DGEMM inner kernel: with
// AVX/FMA units a Sandy-Bridge-class core retires several flops per
// cycle.
const cyclesPerFlop = 0.15

// ProfileORWL builds the perfsim workload of the block-cyclic ORWL
// multiplication of two matrixSize² matrices over p tasks: p phases, a
// ring communication pattern carrying one B row block per phase, and
// distributed first-touch data.
func ProfileORWL(matrixSize, p int) (*perfsim.Workload, error) {
	if matrixSize < 1 || p < 1 {
		return nil, fmt.Errorf("matmul: invalid profile %d/%d", matrixSize, p)
	}
	n := float64(matrixSize)
	rows := n / float64(p)
	blockBytes := rows * n * 8
	threads := make([]perfsim.Thread, p)
	for i := range threads {
		threads[i] = perfsim.Thread{
			// Per phase: 2 * rows * rows * n flops.
			ComputeCycles: 2 * rows * rows * n * cyclesPerFlop,
			// A row panel + C rows + the circulating block.
			WorkingSet:    3 * blockBytes,
			MemoryTraffic: blockBytes,
		}
	}
	return &perfsim.Workload{
		Name:       fmt.Sprintf("matmul-orwl-%dp", p),
		Threads:    threads,
		Comm:       comm.Ring(p, blockBytes, true),
		Iterations: p,
		// One location per task; a grant/release pair on both sides per
		// phase.
		ControlThreads:         p,
		ControlEventsPerIter:   float64(p) * 2,
		StartupContextSwitches: float64(2 * p),
	}, nil
}

// ProfileMKL builds the perfsim workload of the MKL-style fork-join
// multiplication: the same compute partition, but A and B live on the
// master's NUMA node, so every phase pulls the shared panels from
// thread 0 — a star communication pattern that saturates the master
// node's links once several sockets are involved.
func ProfileMKL(matrixSize, p int) (*perfsim.Workload, error) {
	if matrixSize < 1 || p < 1 {
		return nil, fmt.Errorf("matmul: invalid profile %d/%d", matrixSize, p)
	}
	n := float64(matrixSize)
	rows := n / float64(p)
	blockBytes := rows * n * 8
	threads := make([]perfsim.Thread, p)
	for i := range threads {
		threads[i] = perfsim.Thread{
			ComputeCycles: 2 * rows * rows * n * cyclesPerFlop,
			WorkingSet:    3 * blockBytes,
			MemoryTraffic: blockBytes,
		}
	}
	m := comm.NewMatrix(p)
	for i := 1; i < p; i++ {
		// Per phase each worker streams one B panel from the master's
		// node.
		m.AddSym(0, i, blockBytes)
	}
	return &perfsim.Workload{
		Name:                   fmt.Sprintf("matmul-mkl-%dp", p),
		Threads:                threads,
		Comm:                   m,
		Iterations:             p,
		ControlEventsPerIter:   0.4, // one fork-join per run, amortised
		StartupContextSwitches: float64(p),
		// A, B and C are allocated by the calling (master) thread.
		MasterAlloc: true,
	}, nil
}
