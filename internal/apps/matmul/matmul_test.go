package matmul

import (
	"testing"

	"orwlplace/internal/topology"
)

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(0); err == nil {
		t.Error("accepted zero size")
	}
	if _, err := NewRandomMatrix(-1, 0); err == nil {
		t.Error("accepted negative size")
	}
}

func TestRandomMatrixDeterministic(t *testing.T) {
	a, _ := NewRandomMatrix(8, 3)
	b, _ := NewRandomMatrix(8, 3)
	d, _ := MaxAbsDiff(a, b)
	if d != 0 {
		t.Error("same seed differs")
	}
	c, _ := NewRandomMatrix(8, 4)
	d, _ = MaxAbsDiff(a, c)
	if d == 0 {
		t.Error("different seeds identical")
	}
}

func TestMaxAbsDiffMismatch(t *testing.T) {
	a, _ := NewMatrix(4)
	b, _ := NewMatrix(5)
	if _, err := MaxAbsDiff(a, b); err == nil {
		t.Error("accepted size mismatch")
	}
}

func TestSerialAgainstHandChecked(t *testing.T) {
	a, _ := NewMatrix(2)
	b, _ := NewMatrix(2)
	c, _ := NewMatrix(2)
	copy(a.Data, []float64{1, 2, 3, 4})
	copy(b.Data, []float64{5, 6, 7, 8})
	if err := Serial(a, b, c); err != nil {
		t.Fatal(err)
	}
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("c[%d] = %g, want %g", i, c.Data[i], w)
		}
	}
	bad, _ := NewMatrix(3)
	if err := Serial(a, bad, c); err == nil {
		t.Error("accepted mismatch")
	}
}

func TestORWLMatchesSerial(t *testing.T) {
	for _, cfg := range []struct{ n, p int }{
		{8, 1}, {8, 2}, {8, 4}, {12, 3}, {17, 4}, {16, 5}, {9, 9},
	} {
		a, _ := NewRandomMatrix(cfg.n, 1)
		b, _ := NewRandomMatrix(cfg.n, 2)
		want, _ := NewMatrix(cfg.n)
		if err := Serial(a, b, want); err != nil {
			t.Fatal(err)
		}
		got, _ := NewMatrix(cfg.n)
		if _, err := RunORWL(a, b, got, cfg.p, nil); err != nil {
			t.Fatalf("n=%d p=%d: %v", cfg.n, cfg.p, err)
		}
		d, err := MaxAbsDiff(want, got)
		if err != nil {
			t.Fatal(err)
		}
		if d > 1e-9 {
			t.Errorf("n=%d p=%d: max diff %g", cfg.n, cfg.p, d)
		}
	}
}

func TestORWLValidation(t *testing.T) {
	a, _ := NewRandomMatrix(4, 1)
	b, _ := NewRandomMatrix(4, 2)
	c, _ := NewMatrix(4)
	if _, err := RunORWL(a, b, c, 0, nil); err == nil {
		t.Error("accepted zero tasks")
	}
	if _, err := RunORWL(a, b, c, 5, nil); err == nil {
		t.Error("accepted more tasks than rows")
	}
	bad, _ := NewMatrix(5)
	if _, err := RunORWL(a, bad, c, 2, nil); err == nil {
		t.Error("accepted size mismatch")
	}
}

func TestORWLWithAffinity(t *testing.T) {
	a, _ := NewRandomMatrix(16, 1)
	b, _ := NewRandomMatrix(16, 2)
	want, _ := NewMatrix(16)
	if err := Serial(a, b, want); err != nil {
		t.Fatal(err)
	}
	got, _ := NewMatrix(16)
	res, err := RunORWL(a, b, got, 4, topology.TinyFlat())
	if err != nil {
		t.Fatal(err)
	}
	d, _ := MaxAbsDiff(want, got)
	if d > 1e-9 {
		t.Errorf("affinity run differs by %g", d)
	}
	if res.Module == nil || res.Module.Mapping() == nil {
		t.Fatal("affinity module inactive")
	}
	// The dependency matrix of the circulation is a ring.
	m := res.Module.Matrix()
	for i := 0; i < 4; i++ {
		if m.At(i, (i+1)%4) == 0 {
			t.Errorf("missing ring edge %d->%d", i, (i+1)%4)
		}
	}
	if m.At(0, 2) != 0 {
		t.Error("non-neighbour tasks should not communicate")
	}
}

func TestForkJoinMatchesSerial(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7, 20} {
		a, _ := NewRandomMatrix(12, 5)
		b, _ := NewRandomMatrix(12, 6)
		want, _ := NewMatrix(12)
		if err := Serial(a, b, want); err != nil {
			t.Fatal(err)
		}
		got, _ := NewMatrix(12)
		if err := RunForkJoin(a, b, got, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		d, _ := MaxAbsDiff(want, got)
		if d > 1e-9 {
			t.Errorf("workers=%d: max diff %g", workers, d)
		}
	}
	a, _ := NewRandomMatrix(4, 1)
	c, _ := NewMatrix(4)
	if err := RunForkJoin(a, a, c, 0); err == nil {
		t.Error("accepted zero workers")
	}
	bad, _ := NewMatrix(5)
	if err := RunForkJoin(a, bad, c, 2); err == nil {
		t.Error("accepted mismatch")
	}
}

func TestProfiles(t *testing.T) {
	orwl, err := ProfileORWL(16384, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := orwl.Validate(); err != nil {
		t.Fatal(err)
	}
	if orwl.Iterations != 64 || len(orwl.Threads) != 64 {
		t.Error("ORWL profile shape wrong")
	}
	if orwl.Comm.At(0, 1) == 0 || orwl.Comm.At(63, 0) == 0 {
		t.Error("ring comm missing")
	}
	if orwl.ControlThreads == 0 {
		t.Error("ORWL profile needs control threads")
	}

	mkl, err := ProfileMKL(16384, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := mkl.Validate(); err != nil {
		t.Fatal(err)
	}
	if mkl.Comm.At(0, 1) == 0 || mkl.Comm.At(0, 63) == 0 {
		t.Error("star comm missing")
	}
	if mkl.Comm.At(1, 2) != 0 {
		t.Error("workers should not talk to each other")
	}
	if mkl.ControlThreads != 0 {
		t.Error("MKL profile should not have ORWL control threads")
	}

	if _, err := ProfileORWL(0, 4); err == nil {
		t.Error("accepted zero size")
	}
	if _, err := ProfileMKL(16, 0); err == nil {
		t.Error("accepted zero threads")
	}
}

func TestTotalFlops(t *testing.T) {
	if got := TotalFlops(10); got != 2000 {
		t.Errorf("TotalFlops(10) = %g", got)
	}
}

func TestRowBlocks(t *testing.T) {
	offs := rowBlocks(10, 3)
	want := []int{0, 4, 7, 10}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("offs = %v, want %v", offs, want)
		}
	}
}
