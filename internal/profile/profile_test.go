package profile

import (
	"testing"

	"orwlplace/internal/comm"
)

func TestBuilderAssemblesWorkload(t *testing.T) {
	w, err := New("w", 3).
		Thread(0, 100, 200, 300).
		EachThread(1, 2, 3).
		Link(0, 1, 64).
		Link(1, 2, 32).
		Iterations(7).
		Control(2, 1.5).
		Startup(9).
		MasterAlloc().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "w" || len(w.Threads) != 3 || w.Iterations != 7 {
		t.Fatalf("workload = %+v", w)
	}
	if w.Threads[0].ComputeCycles != 1 {
		t.Error("EachThread should overwrite earlier Thread calls")
	}
	if w.Comm.At(0, 1) != 64 || w.Comm.At(1, 0) != 64 || w.Comm.At(2, 1) != 32 {
		t.Errorf("links not symmetric: %v", w.Comm)
	}
	if w.ControlThreads != 2 || w.ControlEventsPerIter != 1.5 ||
		w.StartupContextSwitches != 9 || !w.MasterAlloc {
		t.Errorf("runtime knobs lost: %+v", w)
	}
}

func TestBuilderStages(t *testing.T) {
	w, err := New("s", 2).
		EachThread(1, 1, 1).
		Stages([][]int{{0}, {1}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Stages) != 2 {
		t.Errorf("stages = %v", w.Stages)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := New("e", 0).Build(); err == nil {
		t.Error("accepted zero threads")
	}
	// Negative counts error through the builder instead of panicking
	// in make; later calls ride the sticky error.
	if _, err := New("e", -1).Thread(0, 1, 1, 1).Build(); err == nil {
		t.Error("accepted negative thread count")
	}
	if _, err := New("e", 2).Thread(2, 1, 1, 1).Build(); err == nil {
		t.Error("accepted out-of-range thread")
	}
	if _, err := New("e", 2).Link(0, 5, 1).Build(); err == nil {
		t.Error("accepted out-of-range link")
	}
	// A prebuilt matrix must match the thread count.
	if _, err := New("e", 2).Comm(comm.NewMatrix(3)).Build(); err == nil {
		t.Error("accepted mismatched comm matrix")
	}
	// A nil matrix errors instead of panicking in later calls.
	if _, err := New("e", 2).Comm(nil).Link(0, 1, 1).Build(); err == nil {
		t.Error("accepted nil comm matrix")
	}
	// The first error sticks through later calls.
	if _, err := New("e", 2).Thread(9, 1, 1, 1).Link(0, 1, 1).Iterations(3).Build(); err == nil {
		t.Error("error did not stick")
	}
}
