// Package profile builds perfsim workloads from application models.
//
// The three evaluated applications (Livermore K23, matmul, video
// tracking) each derive a placement-independent workload — per-thread
// compute/memory characteristics, a communication matrix, runtime
// control-thread counts — from their paper-scale parameters. The
// assembly and validation of that description is identical across
// them; Builder centralises it so an application profiler only states
// its numbers.
package profile

import (
	"fmt"

	"orwlplace/internal/comm"
	"orwlplace/internal/perfsim"
)

// Builder accumulates one workload description. The zero thread
// count is rejected at New; everything else is validated at Build.
type Builder struct {
	w   perfsim.Workload
	err error
}

// New starts a workload for n compute threads with an empty
// communication matrix and a single iteration.
func New(name string, n int) *Builder {
	if n < 1 {
		return &Builder{
			w:   perfsim.Workload{Name: name, Comm: comm.NewMatrix(0)},
			err: fmt.Errorf("profile: workload %q needs at least one thread, got %d", name, n),
		}
	}
	return &Builder{w: perfsim.Workload{
		Name:       name,
		Threads:    make([]perfsim.Thread, n),
		Comm:       comm.NewMatrix(n),
		Iterations: 1,
	}}
}

// Thread sets the compute cycles, working set and per-iteration
// memory traffic of thread i.
func (b *Builder) Thread(i int, cycles, workingSet, traffic float64) *Builder {
	if b.err != nil {
		return b
	}
	if i < 0 || i >= len(b.w.Threads) {
		b.err = fmt.Errorf("profile: workload %q: thread %d out of range [0,%d)", b.w.Name, i, len(b.w.Threads))
		return b
	}
	b.w.Threads[i] = perfsim.Thread{ComputeCycles: cycles, WorkingSet: workingSet, MemoryTraffic: traffic}
	return b
}

// EachThread sets every thread to the same characteristics — the
// shape of the regular data-parallel profiles.
func (b *Builder) EachThread(cycles, workingSet, traffic float64) *Builder {
	for i := range b.w.Threads {
		b.Thread(i, cycles, workingSet, traffic)
	}
	return b
}

// Link adds a symmetric communication volume between threads i and j.
func (b *Builder) Link(i, j int, bytes float64) *Builder {
	if b.err != nil {
		return b
	}
	n := b.w.Comm.Order()
	if i < 0 || i >= n || j < 0 || j >= n {
		b.err = fmt.Errorf("profile: workload %q: link %d<->%d out of range [0,%d)", b.w.Name, i, j, n)
		return b
	}
	b.w.Comm.AddSym(i, j, bytes)
	return b
}

// Comm replaces the communication matrix with a prebuilt one (e.g. a
// pattern from internal/comm or a matrix extracted from a DFG).
func (b *Builder) Comm(m *comm.Matrix) *Builder {
	if b.err != nil {
		return b
	}
	if m == nil {
		b.err = fmt.Errorf("profile: workload %q: nil comm matrix", b.w.Name)
		return b
	}
	b.w.Comm = m
	return b
}

// Iterations sets the number of iterations (sweeps, phases, frames).
func (b *Builder) Iterations(n int) *Builder {
	b.w.Iterations = n
	return b
}

// Control declares the runtime's control threads and their wake-up
// rate per iteration (zero threads for fork-join runtimes, which only
// pay barrier wake-ups).
func (b *Builder) Control(threads int, eventsPerIter float64) *Builder {
	b.w.ControlThreads = threads
	b.w.ControlEventsPerIter = eventsPerIter
	return b
}

// Startup accounts thread creation and runtime initialisation context
// switches.
func (b *Builder) Startup(contextSwitches float64) *Builder {
	b.w.StartupContextSwitches = contextSwitches
	return b
}

// MasterAlloc marks the shared data as first-touched by a master
// thread, as in the OpenMP/MKL baselines.
func (b *Builder) MasterAlloc() *Builder {
	b.w.MasterAlloc = true
	return b
}

// Stages groups threads into sequential fork-join phases instead of a
// pipelined steady state.
func (b *Builder) Stages(stages [][]int) *Builder {
	b.w.Stages = stages
	return b
}

// Build finalises and validates the workload.
func (b *Builder) Build() (*perfsim.Workload, error) {
	if b.err != nil {
		return nil, b.err
	}
	w := b.w
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &w, nil
}
