package core

import (
	"strings"
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/orwl"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

func TestRenderMappingHyperthreadMode(t *testing.T) {
	top := topology.TinyHT()
	mp, err := treematch.Map(top, comm.Ring(4, 100, true), treematch.Options{ControlThreads: true})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderMapping(mp, []string{"a", "b", "c", "d"})
	if !strings.Contains(out, "hyperthread-sibling") {
		t.Errorf("render missing control mode:\n%s", out)
	}
	// Every task appears with its control thread on the same core line.
	for _, want := range []string{"0:a", "0:a(ctl)", "3:d(ctl)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderMappingOversubscribed(t *testing.T) {
	top := topology.TinyFlat()
	mp, err := treematch.Map(top, comm.Ring(16, 100, false), treematch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderMapping(mp, nil)
	// 16 tasks on 8 cores: at least one core line lists two tasks.
	two := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "core") && strings.Count(line, ",") >= 1 {
			two = true
		}
	}
	if !two {
		t.Errorf("oversubscribed render shows no shared core:\n%s", out)
	}
}

func TestAffinityComputeDeterministic(t *testing.T) {
	// Two identical programs must produce identical mappings — the
	// module is deterministic, a prerequisite for the paper's
	// "portable performance" claim.
	bindings := make([]map[int]int, 2)
	for i := range bindings {
		prog := orwlMustPipeline(t, 6)
		mod, err := Attach(prog, topology.Fig2Machine())
		if err != nil {
			t.Fatal(err)
		}
		mod.DependencyGet()
		if err := mod.AffinityCompute(); err != nil {
			t.Fatal(err)
		}
		if err := mod.AffinitySet(); err != nil {
			t.Fatal(err)
		}
		bindings[i] = prog.Binding()
	}
	for task, pu := range bindings[0] {
		if bindings[1][task] != pu {
			t.Fatalf("non-deterministic mapping: task %d -> %d vs %d",
				task, pu, bindings[1][task])
		}
	}
}

// orwlMustPipeline builds and schedules a simple pipeline program.
func orwlMustPipeline(t *testing.T, n int) *orwl.Program {
	t.Helper()
	prog := orwl.MustProgram(n, "main")
	err := prog.Run(func(ctx *orwl.TaskContext) error {
		if err := ctx.Scale("main", 256); err != nil {
			return err
		}
		h := orwl.NewHandle()
		if err := ctx.WriteInsert(h, orwl.Loc(ctx.TID(), "main"), ctx.TID()); err != nil {
			return err
		}
		if ctx.TID() > 0 {
			r := orwl.NewHandle()
			if err := ctx.ReadInsert(r, orwl.Loc(ctx.TID()-1, "main"), ctx.TID()); err != nil {
				return err
			}
		}
		return ctx.Schedule()
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}
