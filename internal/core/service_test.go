package core

import (
	"net"
	"testing"

	"orwlplace/internal/orwlnet"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// startDaemon runs a placement-only orwlnet server for the machine and
// returns a connected remote service stub.
func startDaemon(t *testing.T, top *topology.Topology) *orwlnet.RemoteService {
	t.Helper()
	eng, err := placement.NewEngine(top)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := placement.NewLocalService(eng)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := orwlnet.NewServer(lis, nil, orwlnet.WithPlacement(svc))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	c, err := orwlnet.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	remote, err := c.PlacementService()
	if err != nil {
		t.Fatal(err)
	}
	return remote
}

// TestThreeStepAPIOverRemoteService is the paper's three-step API with
// the compute step running in a remote placement daemon: the program,
// extraction and binding stay local, only the mapping crosses the
// wire.
func TestThreeStepAPIOverRemoteService(t *testing.T) {
	remote := startDaemon(t, topology.Fig2Machine())
	prog := orwlMustPipeline(t, 6)
	mod, err := Attach(prog, nil, WithService(remote))
	if err != nil {
		t.Fatal(err)
	}
	if mod.Engine() != nil {
		t.Error("remote module leaked a local engine")
	}
	mod.DependencyGet()
	if err := mod.AffinityCompute(); err != nil {
		t.Fatal(err)
	}
	if err := mod.AffinitySet(); err != nil {
		t.Fatal(err)
	}
	if prog.Binding() == nil {
		t.Fatal("remote placement bound nothing")
	}
	resp := mod.LastResponse()
	if resp == nil {
		t.Fatal("no response recorded")
	}
	if resp.Assignment == nil || resp.Assignment.Strategy != placement.TreeMatch {
		t.Errorf("response assignment = %+v", resp.Assignment)
	}

	// The binding matches what a local module computes on the same
	// machine.
	localProg := orwlMustPipeline(t, 6)
	localMod, err := Attach(localProg, topology.Fig2Machine())
	if err != nil {
		t.Fatal(err)
	}
	localMod.DependencyGet()
	if err := localMod.AffinityCompute(); err != nil {
		t.Fatal(err)
	}
	if err := localMod.AffinitySet(); err != nil {
		t.Fatal(err)
	}
	local, viaRemote := localProg.Binding(), prog.Binding()
	if len(local) != len(viaRemote) {
		t.Fatalf("local binding %v, remote %v", local, viaRemote)
	}
	for task, pu := range local {
		if viaRemote[task] != pu {
			t.Fatalf("task %d: local pu %d, remote pu %d", task, pu, viaRemote[task])
		}
	}

	// Mapping() fetches the machine from the daemon.
	if mp := mod.Mapping(); mp == nil || mp.Top.Attrs.Name != "Fig2-4socket" {
		t.Errorf("Mapping() = %+v", mp)
	}
}

func TestAttachRemoteValidation(t *testing.T) {
	remote := startDaemon(t, topology.TinyHT())
	prog := orwlMustPipeline(t, 4)

	if _, err := Attach(prog, nil, WithService(remote), WithStrategy("nope")); err == nil {
		t.Error("unknown strategy accepted against remote service")
	}
	// Mismatched local topology expectation: the daemon serves TinyHT.
	if _, err := Attach(prog, topology.TinyFlat(), WithService(remote)); err == nil {
		t.Error("topology mismatch with remote service accepted")
	}
	// Matching topology is fine.
	if _, err := Attach(prog, topology.TinyHT(), WithService(remote)); err != nil {
		t.Errorf("matching topology rejected: %v", err)
	}
	// WithEngine and WithService together are ambiguous.
	eng, err := placement.NewEngine(topology.TinyHT())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(prog, nil, WithService(remote), WithEngine(eng)); err == nil {
		t.Error("WithEngine+WithService accepted")
	}
}
