package core

import (
	"strings"
	"testing"

	"orwlplace/internal/orwl"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// TestModuleObservedAffinity drives a program whose actual traffic
// (steady-state raw requests) diverges from its declared handle graph
// and checks the module places on the measured matrix when attached
// with WithObservedAffinity.
func TestModuleObservedAffinity(t *testing.T) {
	prog := orwl.MustProgram(4, "data")
	err := prog.Run(func(ctx *orwl.TaskContext) error {
		if err := ctx.Scale("data", 1<<10); err != nil {
			return err
		}
		w := orwl.NewHandle()
		if err := ctx.WriteInsert(w, orwl.Loc(ctx.TID(), "data"), 0); err != nil {
			return err
		}
		// Declared: a pipeline.
		if ctx.TID() > 0 {
			r := orwl.NewHandle()
			if err := ctx.ReadInsert(r, orwl.Loc(ctx.TID()-1, "data"), 1); err != nil {
				return err
			}
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		if err := w.Section(func([]byte) error { return nil }); err != nil {
			return err
		}
		// Observed: everyone actually reads task 0.
		if ctx.TID() != 0 {
			req, err := ctx.Request(orwl.Loc(0, "data"), orwl.Read)
			if err != nil {
				return err
			}
			req.Await()
			if err := req.Release(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	mod, err := Attach(prog, topology.Fig2Machine(), WithObservedAffinity())
	if err != nil {
		t.Fatal(err)
	}
	if name := mod.Source().Name(); name != "observed-window" {
		t.Fatalf("source = %q, want observed-window", name)
	}
	if err := mod.DependencyGet(); err != nil {
		t.Fatal(err)
	}
	obs := mod.Matrix()
	if obs.At(0, 3) == 0 {
		t.Error("observed matrix misses the measured 0->3 flow")
	}
	decl := prog.DependencyMatrix()
	if decl.At(0, 3) != 0 {
		t.Error("declared matrix unexpectedly contains 0->3")
	}
	if err := mod.AffinityCompute(); err != nil {
		t.Fatal(err)
	}
	if err := mod.AffinitySet(); err != nil {
		t.Fatal(err)
	}
	if len(prog.Binding()) != 4 {
		t.Errorf("binding = %v, want all 4 tasks bound", prog.Binding())
	}
}

func TestModuleSourceExclusive(t *testing.T) {
	prog := orwl.MustProgram(2, "x")
	_, err := Attach(prog, topology.Fig2Machine(),
		WithObservedAffinity(), WithSource(placement.Declared(prog)))
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("err = %v, want mutual-exclusion error", err)
	}
}

// TestDependencyGetErrorPath: a custom failing source must surface
// through DependencyGet, not crash the automatic hook.
func TestDependencyGetErrorPath(t *testing.T) {
	prog := orwl.MustProgram(2, "x")
	mod, err := Attach(prog, topology.Fig2Machine(),
		WithSource(placement.Fixed("broken", nil)))
	if err != nil {
		t.Fatal(err)
	}
	if err := mod.DependencyGet(); err == nil {
		t.Error("DependencyGet over a broken source succeeded")
	}
}

// TestObservedAffinityEmptyWindowRejected: an idle window must not
// silently rebind the program to an arbitrary mapping.
func TestObservedAffinityEmptyWindowRejected(t *testing.T) {
	prog := orwl.MustProgram(4, "data")
	mod, err := Attach(prog, topology.Fig2Machine(), WithObservedAffinity())
	if err != nil {
		t.Fatal(err)
	}
	if err := mod.DependencyGet(); err == nil || !strings.Contains(err.Error(), "no traffic") {
		t.Errorf("DependencyGet over an idle window = %v, want no-traffic error", err)
	}
}
