package core

import (
	"strings"
	"testing"

	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// TestSharedEngineCachesAcrossModules is the dynamic-program story:
// phases attach fresh modules to one engine, and a phase whose
// communication matrix was seen before is served from the mapping
// cache.
func TestSharedEngineCachesAcrossModules(t *testing.T) {
	eng, err := placement.NewEngine(topology.Fig2Machine())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		prog := orwlMustPipeline(t, 6)
		mod, err := Attach(prog, nil, WithEngine(eng))
		if err != nil {
			t.Fatal(err)
		}
		if mod.Engine() != eng {
			t.Fatal("module did not adopt the shared engine")
		}
		mod.DependencyGet()
		if err := mod.AffinityCompute(); err != nil {
			t.Fatal(err)
		}
		if err := mod.AffinitySet(); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want the second phase served from cache", st)
	}
}

func TestWithStrategyNoneLeavesUnbound(t *testing.T) {
	prog := orwlMustPipeline(t, 4)
	mod, err := Attach(prog, topology.TinyFlat(), WithStrategy(placement.None))
	if err != nil {
		t.Fatal(err)
	}
	mod.DependencyGet()
	if err := mod.AffinityCompute(); err != nil {
		t.Fatal(err)
	}
	if err := mod.AffinitySet(); err != nil {
		t.Fatal(err)
	}
	if prog.Binding() != nil {
		t.Errorf("none strategy bound tasks: %v", prog.Binding())
	}
	if mod.Mapping() != nil {
		t.Error("none strategy produced a mapping")
	}
	if a := mod.Assignment(); a == nil || !a.Unbound {
		t.Errorf("assignment = %+v, want unbound", a)
	}
}

func TestWithStrategyOblivious(t *testing.T) {
	prog := orwlMustPipeline(t, 4)
	mod, err := Attach(prog, topology.TinyFlat(), WithStrategy("scatter"))
	if err != nil {
		t.Fatal(err)
	}
	mod.DependencyGet()
	if err := mod.AffinityCompute(); err != nil {
		t.Fatal(err)
	}
	if err := mod.AffinitySet(); err != nil {
		t.Fatal(err)
	}
	if len(prog.Binding()) != 4 {
		t.Errorf("binding = %v", prog.Binding())
	}
}

func TestAttachTopologyEngineMismatch(t *testing.T) {
	eng, err := placement.NewEngine(topology.Fig2Machine())
	if err != nil {
		t.Fatal(err)
	}
	prog := orwlMustPipeline(t, 2)
	if _, err := Attach(prog, topology.TinyFlat(), WithEngine(eng)); err == nil {
		t.Error("accepted a topology different from the shared engine's")
	}
	// The engine's own machine (same structure, fresh pointer) is fine.
	if _, err := Attach(prog, topology.Fig2Machine(), WithEngine(eng)); err != nil {
		t.Errorf("rejected the engine's own machine: %v", err)
	}
}

func TestAttachUnknownStrategy(t *testing.T) {
	if _, err := Attach(orwlMustPipeline(t, 2), topology.TinyFlat(), WithStrategy("bogus")); err == nil {
		t.Error("accepted unknown strategy")
	}
}

// TestRenderMappingCorelessTopology pins the fix for the nil
// dereference on PUs without a Core ancestor: a degenerate
// machine-of-PUs tree renders per-PU lines instead of crashing.
func TestRenderMappingCorelessTopology(t *testing.T) {
	root := &topology.Object{Type: topology.Machine}
	for i := 0; i < 4; i++ {
		root.Children = append(root.Children, &topology.Object{Type: topology.PU, OSIndex: i})
	}
	top, err := topology.New(root, topology.Attrs{Name: "coreless"})
	if err != nil {
		t.Fatal(err)
	}
	mapping := &treematch.Mapping{
		Top:       top,
		ComputePU: []int{2, 0},
		ControlPU: []int{-1, -1},
	}
	out := RenderMapping(mapping, []string{"a", "b"})
	for _, want := range []string{"coreless", "pu", "0:a", "1:b"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
