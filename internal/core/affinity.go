// Package core implements the paper's contribution: the automatic,
// abstracted and portable affinity module for the ORWL runtime (§IV).
//
// Attached to an orwl.Program, the module hooks the orwl_schedule
// barrier: at that point the runtime knows every task, every location
// and every handle, so the module derives the communication matrix,
// obtains the machine topology, runs the adapted TreeMatch algorithm
// and binds each task's compute (and control) threads — with no change
// to the application code. The fully automatic mode is switched on by
// the ORWL_AFFINITY environment variable, exactly as in the paper; the
// advanced API (DependencyGet, AffinityCompute, AffinitySet) exposes
// the three steps separately for debugging and for dynamic task graphs
// whose communication matrix changes at run time.
//
// The module is a thin shim over placement.Service: the service owns
// matrix-to-assignment mapping (in process via placement.Engine, or in
// a remote daemon via the orwlnet stub); this package keeps the
// paper-named three-step surface, the environment gating, and the
// purely local steps (matrix extraction, binding commit).
package core

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"orwlplace/internal/comm"
	"orwlplace/internal/orwl"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// EnvVar is the environment variable that activates the fully automatic
// mode (ORWL_AFFINITY=1).
const EnvVar = "ORWL_AFFINITY"

// EnabledByEnv reports whether the automatic affinity mode is requested
// by the environment.
func EnabledByEnv() bool {
	v := strings.TrimSpace(os.Getenv(EnvVar))
	return v == "1" || strings.EqualFold(v, "true") || strings.EqualFold(v, "yes")
}

// Module is one affinity-module instance bound to a program and a
// placement service (usually the in-process engine; possibly a remote
// daemon's stub).
type Module struct {
	mu       sync.Mutex
	prog     *orwl.Program
	svc      placement.Service
	eng      *placement.Engine      // non-nil only when svc is in-process
	top      *topology.Topology     // the service's machine, fetched once at Attach
	ctx      context.Context        // base context for service calls
	src      placement.MatrixSource // step-1 seam; defaults to Declared(prog)
	observed bool                   // WithObservedAffinity: resolve src at Attach
	strategy string
	opt      placement.Options

	matrix   *comm.Matrix
	asgn     *placement.Assignment
	lastResp *placement.PlaceResponse
}

// Option customises a Module.
type Option func(*Module)

// WithTreeMatchOptions overrides the TreeMatch tuning (mainly for the
// ablation benchmarks).
func WithTreeMatchOptions(opt treematch.Options) Option {
	return func(m *Module) { m.opt = opt }
}

// WithStrategy selects a registered placement strategy instead of the
// default TreeMatch — mainly to drive baseline comparisons through
// the same three-step API.
func WithStrategy(name string) Option {
	return func(m *Module) { m.strategy = name }
}

// WithEngine shares an existing placement engine (and therefore its
// mapping cache) across modules. Dynamic programs that oscillate
// between phases attach one module per phase to a common engine so a
// recurring communication matrix pays the mapping cost once.
func WithEngine(e *placement.Engine) Option {
	return func(m *Module) { m.eng = e }
}

// WithService routes the compute step through an explicit placement
// service — typically the orwlnet stub of a remote placement daemon,
// so the program's mapping is computed on (and for) another node's
// topology while extraction and binding stay local.
func WithService(svc placement.Service) Option {
	return func(m *Module) { m.svc = svc }
}

// WithContext sets the base context for the module's service calls
// (Attach validation, AffinityCompute). Remote modules should pass a
// context with a deadline so a hung daemon cannot block the program
// indefinitely; the default is context.Background().
func WithContext(ctx context.Context) Option {
	return func(m *Module) { m.ctx = ctx }
}

// WithSource selects where DependencyGet draws the communication
// matrix from. The default is the program's declared handle graph
// (placement.Declared); an adaptive deployment passes
// placement.Observed/ObservedWindow so the module places on what the
// runtime measured instead of what the program announced.
func WithSource(src placement.MatrixSource) Option {
	return func(m *Module) { m.src = src }
}

// WithObservedAffinity is WithSource over the program's windowed
// observed traffic: each DependencyGet consumes the epoch since the
// previous one.
func WithObservedAffinity() Option {
	return func(m *Module) { m.observed = true }
}

// Attach creates the affinity module for a program on a machine. It
// does not install the automatic hook; call EnableAutomatic for the
// paper's transparent mode, or drive the three-step API manually.
func Attach(prog *orwl.Program, top *topology.Topology, opts ...Option) (*Module, error) {
	if prog == nil {
		return nil, fmt.Errorf("core: nil program")
	}
	m := &Module{
		prog:     prog,
		strategy: placement.TreeMatch,
		opt:      placement.Options{ControlThreads: true},
	}
	for _, o := range opts {
		o(m)
	}
	if m.ctx == nil {
		m.ctx = context.Background()
	}
	if m.observed {
		if m.src != nil {
			return nil, fmt.Errorf("core: WithSource and WithObservedAffinity are mutually exclusive")
		}
		m.src = placement.ObservedWindow(prog)
	}
	if m.src == nil {
		m.src = placement.Declared(prog)
	}
	if m.svc != nil && m.eng != nil {
		return nil, fmt.Errorf("core: WithEngine and WithService are mutually exclusive")
	}
	if m.svc == nil {
		// In-process deployment: build (or adopt) an engine and wrap it.
		if m.eng == nil {
			if top == nil {
				return nil, fmt.Errorf("core: nil topology")
			}
			eng, err := placement.NewEngine(top)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			m.eng = eng
		} else if top != nil && placement.Signature(top) != m.eng.TopologySignature() {
			// A shared engine places on its own machine; silently accepting
			// a different topology would bind tasks to PUs that do not
			// exist on it.
			return nil, fmt.Errorf("core: topology %q does not match engine's %q",
				top.Attrs.Name, m.eng.Topology().Attrs.Name)
		}
		svc, err := placement.NewLocalService(m.eng)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		m.svc = svc
		m.top = m.eng.Topology()
		if _, ok := placement.Lookup(m.strategy); !ok {
			return nil, fmt.Errorf("core: unknown strategy %q", m.strategy)
		}
		return m, nil
	}
	// External service (usually remote): validate strategy and topology
	// against the service's own description instead of the local
	// registry — the daemon's strategy set is authoritative.
	stats, err := m.svc.Stats(m.ctx)
	if err != nil {
		return nil, fmt.Errorf("core: placement service unavailable: %w", err)
	}
	known := false
	for _, name := range stats.Strategies {
		if name == m.strategy {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("core: unknown strategy %q (service offers %v)", m.strategy, stats.Strategies)
	}
	if top != nil && placement.Signature(top) != stats.TopologySignature {
		return nil, fmt.Errorf("core: topology %q does not match service's %q",
			top.Attrs.Name, stats.TopologyName)
	}
	// Fetch the service's machine once: it is immutable for the life of
	// the service, and Mapping() should not pay (or be able to fail on)
	// a network round trip per call.
	m.top, err = m.svc.Topology(m.ctx)
	if err != nil {
		return nil, fmt.Errorf("core: placement service topology: %w", err)
	}
	return m, nil
}

// EnableAutomatic installs the schedule hook implementing the fully
// automatic mode: when the last task reaches orwl_schedule, the module
// computes and applies the optimized binding, transparently to the
// application. When force is false the hook is installed only if
// ORWL_AFFINITY is set in the environment; the returned bool says
// whether automatic mode is active.
func EnableAutomatic(prog *orwl.Program, top *topology.Topology, force bool, opts ...Option) (*Module, bool, error) {
	m, err := Attach(prog, top, opts...)
	if err != nil {
		return nil, false, err
	}
	if !force && !EnabledByEnv() {
		return m, false, nil
	}
	prog.SetScheduleHook(func(p *orwl.Program) {
		// Failures must not break the application: affinity is an
		// optimisation. The program simply runs unbound.
		if err := m.DependencyGet(); err != nil {
			return
		}
		if err := m.AffinityCompute(); err != nil {
			return
		}
		_ = m.AffinitySet()
	})
	return m, true, nil
}

// Engine exposes the underlying placement engine when the module's
// service is in-process (for cache statistics and direct strategy
// access); nil when the module places through a remote service.
func (m *Module) Engine() *placement.Engine { return m.eng }

// Service exposes the placement service the module computes through.
func (m *Module) Service() placement.Service { return m.svc }

// DependencyGet re-extracts the communication matrix from the
// module's matrix source (orwl_dependency_get): the declared handle
// graph by default, the runtime-observed traffic under
// WithObservedAffinity/WithSource. Extraction is always local: the
// runtime state lives in this process. The previously computed
// assignment is invalidated either way.
func (m *Module) DependencyGet() error {
	m.mu.Lock()
	src := m.src
	m.mu.Unlock()
	mat, err := src.Matrix()
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if _, observed := src.(*placement.ObservedSource); observed && mat.Total() == 0 {
		// An idle window carries no affinity signal: computing on an
		// all-zero matrix would silently rebind the program to an
		// arbitrary mapping (the reconciler guards the same condition
		// with MinWindowBytes). The module keeps its previous matrix
		// and assignment.
		return fmt.Errorf("core: observed source %q saw no traffic — keeping the current mapping", src.Name())
	}
	m.mu.Lock()
	m.matrix = mat
	m.asgn = nil
	m.lastResp = nil
	m.mu.Unlock()
	return nil
}

// Source returns the module's matrix source.
func (m *Module) Source() placement.MatrixSource {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.src
}

// AffinityCompute runs the configured strategy on the current
// communication matrix and the hardware topology
// (orwl_affinity_compute), through the placement service — in process
// or over the wire. DependencyGet must have been called. A matrix
// already seen by the service is served from its mapping cache.
func (m *Module) AffinityCompute() error {
	m.mu.Lock()
	mat := m.matrix
	strategy, opt := m.strategy, m.opt
	m.mu.Unlock()
	if mat == nil {
		return fmt.Errorf("core: AffinityCompute before DependencyGet")
	}
	resp, err := m.svc.Place(m.ctx, &placement.PlaceRequest{
		Strategy: strategy,
		Matrix:   mat,
		Options:  opt,
	})
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	m.mu.Lock()
	m.asgn = resp.Assignment
	m.lastResp = resp
	m.mu.Unlock()
	return nil
}

// AffinitySet commits the computed mapping: every task's compute thread
// (and, when resources allow, its control threads) is bound
// (orwl_affinity_set). On this Go reproduction the binding is recorded
// on the program — the performance simulator and the reporting tools
// consume it — because goroutines cannot be pinned portably.
func (m *Module) AffinitySet() error {
	m.mu.Lock()
	asgn := m.asgn
	m.mu.Unlock()
	if asgn == nil {
		return fmt.Errorf("core: AffinitySet before AffinityCompute")
	}
	return placement.Bind(m.prog, asgn)
}

// LastResponse returns the full service response of the last
// AffinityCompute — cache-hit flag, modeled cost, service latency —
// or nil before the first compute.
func (m *Module) LastResponse() *placement.PlaceResponse {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastResp
}

// Matrix returns the last communication matrix, or nil.
func (m *Module) Matrix() *comm.Matrix {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.matrix
}

// Assignment returns the last computed assignment, or nil.
func (m *Module) Assignment() *placement.Assignment {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.asgn
}

// Mapping returns the last computed mapping in the paper's result
// shape, or nil. The topology is the service's machine, fetched once
// at Attach.
func (m *Module) Mapping() *treematch.Mapping {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.asgn.Mapping(m.top)
}

// RenderMapping renders a task allocation like the paper's Fig. 2: for
// every socket, the cores and the tasks bound to them. taskNames may be
// nil, in which case tasks are shown by id.
func RenderMapping(mapping *treematch.Mapping, taskNames []string) string {
	if mapping == nil {
		return "(no mapping)\n"
	}
	top := mapping.Top
	taskOnPU := make(map[int][]string)
	name := func(t int) string {
		if taskNames != nil && t < len(taskNames) && taskNames[t] != "" {
			return fmt.Sprintf("%d:%s", t, taskNames[t])
		}
		return fmt.Sprintf("%d", t)
	}
	for t, pu := range mapping.ComputePU {
		taskOnPU[pu] = append(taskOnPU[pu], name(t))
	}
	for t, pu := range mapping.ControlPU {
		if pu >= 0 {
			taskOnPU[pu] = append(taskOnPU[pu], name(t)+"(ctl)")
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "task allocation on %s (control mode: %s)\n",
		top.Attrs.Name, mapping.Mode)
	groups := top.Objects(topology.Group)
	if len(groups) == 0 {
		groups = []*topology.Object{top.Root}
	}
	for _, g := range groups {
		if g.Type == topology.Group {
			fmt.Fprintf(&b, "%s\n", g)
		}
		for _, pu := range g.PUs() {
			core := pu.AncestorOfType(topology.Core)
			if core == nil {
				// A PU without a Core ancestor (degenerate trees) gets
				// its own line.
				cell := append([]string(nil), taskOnPU[pu.LogicalIndex]...)
				sort.Strings(cell)
				line := "-"
				if len(cell) > 0 {
					line = strings.Join(cell, ", ")
				}
				fmt.Fprintf(&b, "    pu %2d: %s\n", pu.LogicalIndex, line)
				continue
			}
			if core.Children[0] != pu {
				// Render per-core lines only once, on the first PU;
				// siblings are folded into the same line below.
				continue
			}
			sock := pu.AncestorOfType(topology.Socket)
			if core.LogicalIndex%8 == 0 && sock != nil {
				fmt.Fprintf(&b, "  %s\n", sock)
			}
			var cell []string
			for _, sib := range core.Children {
				cell = append(cell, taskOnPU[sib.LogicalIndex]...)
			}
			sort.Strings(cell)
			if len(cell) == 0 {
				fmt.Fprintf(&b, "    core %2d: -\n", core.LogicalIndex)
			} else {
				fmt.Fprintf(&b, "    core %2d: %s\n", core.LogicalIndex, strings.Join(cell, ", "))
			}
		}
	}
	return b.String()
}
