package core

import (
	"strings"
	"testing"

	"orwlplace/internal/orwl"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// runPipelineProgram builds and schedules a 4-task ORWL pipeline with
// 100-byte locations.
func runPipelineProgram(t *testing.T, prog *orwl.Program) {
	t.Helper()
	err := prog.Run(func(ctx *orwl.TaskContext) error {
		if err := ctx.Scale("main", 100); err != nil {
			return err
		}
		here := orwl.NewHandle()
		if err := ctx.WriteInsert(here, orwl.Loc(ctx.TID(), "main"), ctx.TID()); err != nil {
			return err
		}
		if ctx.TID() > 0 {
			there := orwl.NewHandle()
			if err := ctx.ReadInsert(there, orwl.Loc(ctx.TID()-1, "main"), ctx.TID()); err != nil {
				return err
			}
		}
		return ctx.Schedule()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAttachValidation(t *testing.T) {
	if _, err := Attach(nil, topology.TinyFlat()); err == nil {
		t.Error("accepted nil program")
	}
	if _, err := Attach(orwl.MustProgram(1, "m"), nil); err == nil {
		t.Error("accepted nil topology")
	}
}

func TestEnabledByEnv(t *testing.T) {
	for _, c := range []struct {
		val  string
		want bool
	}{{"1", true}, {"true", true}, {"YES", true}, {"0", false}, {"", false}, {"no", false}} {
		t.Setenv(EnvVar, c.val)
		if got := EnabledByEnv(); got != c.want {
			t.Errorf("ORWL_AFFINITY=%q: enabled = %v, want %v", c.val, got, c.want)
		}
	}
}

func TestManualThreeStepAPI(t *testing.T) {
	prog := orwl.MustProgram(4, "main")
	mod, err := Attach(prog, topology.TinyFlat())
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order calls fail cleanly.
	if err := mod.AffinityCompute(); err == nil {
		t.Error("AffinityCompute before DependencyGet accepted")
	}
	if err := mod.AffinitySet(); err == nil {
		t.Error("AffinitySet before AffinityCompute accepted")
	}

	runPipelineProgram(t, prog)

	mod.DependencyGet()
	m := mod.Matrix()
	if m == nil || m.Order() != 4 {
		t.Fatalf("matrix = %v", m)
	}
	if m.At(0, 1) != 100 {
		t.Errorf("volume 0->1 = %g, want 100", m.At(0, 1))
	}
	if err := mod.AffinityCompute(); err != nil {
		t.Fatal(err)
	}
	if mod.Mapping() == nil {
		t.Fatal("no mapping after compute")
	}
	if err := mod.AffinitySet(); err != nil {
		t.Fatal(err)
	}
	b := prog.Binding()
	if len(b) != 4 {
		t.Fatalf("binding = %v", b)
	}
	seen := map[int]bool{}
	for task, pu := range b {
		if pu < 0 || pu >= topology.TinyFlat().NumPUs() {
			t.Errorf("task %d bound to invalid PU %d", task, pu)
		}
		if seen[pu] {
			t.Error("two tasks bound to one PU")
		}
		seen[pu] = true
	}
}

func TestDependencyGetResetsMapping(t *testing.T) {
	prog := orwl.MustProgram(2, "main")
	mod, err := Attach(prog, topology.TinyFlat())
	if err != nil {
		t.Fatal(err)
	}
	runPipelineProgram2(t, prog)
	mod.DependencyGet()
	if err := mod.AffinityCompute(); err != nil {
		t.Fatal(err)
	}
	mod.DependencyGet() // dynamic re-computation path
	if err := mod.AffinitySet(); err == nil {
		t.Error("AffinitySet should fail after DependencyGet invalidated the mapping")
	}
}

func runPipelineProgram2(t *testing.T, prog *orwl.Program) {
	t.Helper()
	err := prog.Run(func(ctx *orwl.TaskContext) error {
		if err := ctx.Scale("main", 64); err != nil {
			return err
		}
		h := orwl.NewHandle()
		if err := ctx.WriteInsert(h, orwl.Loc(ctx.TID(), "main"), ctx.TID()); err != nil {
			return err
		}
		if ctx.TID() > 0 {
			r := orwl.NewHandle()
			if err := ctx.ReadInsert(r, orwl.Loc(0, "main"), ctx.TID()); err != nil {
				return err
			}
		}
		return ctx.Schedule()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnableAutomaticViaEnv(t *testing.T) {
	t.Setenv(EnvVar, "1")
	prog := orwl.MustProgram(4, "main")
	mod, active, err := EnableAutomatic(prog, topology.TinyFlat(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !active {
		t.Fatal("automatic mode should be active with ORWL_AFFINITY=1")
	}
	runPipelineProgram(t, prog)
	if prog.Binding() == nil {
		t.Error("automatic mode did not bind tasks")
	}
	if mod.Mapping() == nil {
		t.Error("automatic mode left no mapping")
	}
}

func TestEnableAutomaticDisabledWithoutEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	prog := orwl.MustProgram(4, "main")
	_, active, err := EnableAutomatic(prog, topology.TinyFlat(), false)
	if err != nil {
		t.Fatal(err)
	}
	if active {
		t.Fatal("automatic mode should be off without ORWL_AFFINITY")
	}
	runPipelineProgram(t, prog)
	if prog.Binding() != nil {
		t.Error("bindings applied although affinity was off")
	}
}

func TestEnableAutomaticForced(t *testing.T) {
	t.Setenv(EnvVar, "")
	prog := orwl.MustProgram(4, "main")
	_, active, err := EnableAutomatic(prog, topology.TinyHT(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !active {
		t.Fatal("forced automatic mode should be active")
	}
	runPipelineProgram(t, prog)
	b := prog.Binding()
	if len(b) != 4 {
		t.Fatalf("binding = %v", b)
	}
	// On the hyperthreaded machine control threads land on siblings.
	cb := prog.ControlBinding()
	if len(cb) != 4 {
		t.Fatalf("control binding = %v", cb)
	}
}

func TestEnableAutomaticValidation(t *testing.T) {
	if _, _, err := EnableAutomatic(nil, topology.TinyFlat(), true); err == nil {
		t.Error("accepted nil program")
	}
}

func TestWithTreeMatchOptions(t *testing.T) {
	prog := orwl.MustProgram(4, "main")
	mod, err := Attach(prog, topology.TinyFlat(),
		WithTreeMatchOptions(treematch.Options{ControlThreads: false}))
	if err != nil {
		t.Fatal(err)
	}
	runPipelineProgram(t, prog)
	mod.DependencyGet()
	if err := mod.AffinityCompute(); err != nil {
		t.Fatal(err)
	}
	if mod.Mapping().Mode != treematch.ControlNone {
		t.Errorf("control mode = %v, want none when disabled", mod.Mapping().Mode)
	}
}

func TestRenderMapping(t *testing.T) {
	prog := orwl.MustProgram(4, "main")
	mod, _, err := EnableAutomatic(prog, topology.Fig2Machine(), true)
	if err != nil {
		t.Fatal(err)
	}
	runPipelineProgram(t, prog)
	out := RenderMapping(mod.Mapping(), []string{"producer", "gmm", "ccl", "consumer"})
	for _, want := range []string{"Fig2-4socket", "producer", "3:consumer", "core"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if got := RenderMapping(nil, nil); !strings.Contains(got, "no mapping") {
		t.Errorf("nil mapping render = %q", got)
	}
}
