package ctrlplane

import (
	"context"
	"fmt"
	"sync"
	"time"

	"orwlplace/internal/comm"
	"orwlplace/internal/placement"
)

// Remap is one adopted fleet mapping: the event pushed to opWatchRemaps
// subscribers. Epoch is a per-machine monotone counter (1 = the first
// mapping the controller ever adopted for the machine), so clients can
// dedup the catch-up ack against pushed events and resubscribe after a
// reconnect with "give me anything newer than N".
type Remap struct {
	Machine string
	// Epoch stamps the adoption; a subscriber applies a remap only when
	// its epoch exceeds the last one it applied.
	Epoch uint64
	// Drift is the measured drift that triggered the adoption (0 for
	// the initial mapping).
	Drift float64
	// Assignment maps the machine's global task space: task t (a
	// lease's TaskBase+i) runs on Assignment.ComputePU[t]. A client
	// applies its lease's slice.
	Assignment *placement.Assignment
	// MovedTasks lists, ascending, the tasks whose placement changed
	// relative to the previous epoch — what a schema v6 delta frame
	// ships and an O(changed) re-bind touches. Nil means unknown (the
	// initial adoption, a catch-up snapshot, or incomparable
	// assignments): consumers must then treat every task as possibly
	// moved.
	MovedTasks []int
	// RemappedPartitions lists the partition indices the reconciler
	// re-placed for this adoption (nil when unknown or unpartitioned).
	RemappedPartitions []int
	// Delta is set on the client side when this event was reconstructed
	// from a delta frame rather than received as a full snapshot — a
	// diagnostic for counters; the Assignment is complete either way.
	Delta bool
}

// Config tunes a Controller.
type Config struct {
	// Adaptive tunes the per-machine reconcilers (drift threshold,
	// strategy, hysteresis, ...). The zero value gets the
	// placement.AdaptiveConfig defaults.
	Adaptive placement.AdaptiveConfig
	// StaleAfter is the lease staleness window (0 = DefaultStaleAfter,
	// negative = never evict).
	StaleAfter time.Duration
	// ReportRate / ReportBurst bound each lease's observed-report
	// cadence (token bucket, reports/sec; rate 0 = unlimited). A peer
	// above its budget gets a retryable "rate limit" error and its
	// report is dropped without touching other peers.
	ReportRate  float64
	ReportBurst float64
	// MaxLeaseTasks bounds each lease's task range and with it the
	// machine's global task-space order (0 = DefaultMaxLeaseTasks).
	// The merged fleet matrix is sparse, so raising it costs O(nnz),
	// not O(n²); snapshot restores are validated against the same
	// bound.
	MaxLeaseTasks int
}

// Controller is the daemon-hosted reconciliation engine: one
// placement.Reconciler per fleet machine, fed by the Collector's
// merged observed matrices, publishing adopted mappings to
// subscribers. It is the transport-agnostic core of the fleet control
// plane; internal/orwlnet bridges it to opFleetLease /
// opObservedReport / opWatchRemaps.
type Controller struct {
	fleet *placement.MultiService
	col   *Collector
	cfg   Config

	mu      sync.Mutex
	loops   map[string]*machineLoop
	subs    map[uint64]*subscriber
	nextSub uint64
	pushed  uint64
}

// machineLoop is one machine's reconciliation state. mu serialises
// Epoch per machine (different machines reconcile independently);
// epoch and latest are guarded by the controller's mu, since publish
// and Subscribe must see them atomically.
type machineLoop struct {
	name string
	svc  *placement.LocalService
	src  *handoffSource
	rec  *placement.Reconciler

	mu     sync.Mutex
	primed bool

	epoch  uint64
	latest *Remap
}

type subscriber struct {
	machine string
	ch      chan Remap
}

// handoffSource adapts the controller's pull-then-reconcile flow to
// the AffinitySource seam the Reconciler consumes: the controller
// drains a Collector window, stashes it here, and runs one Epoch. The
// window stays in the collector's native representation (sparse above
// the dense threshold) all the way into the reconciler.
type handoffSource struct {
	mu sync.Mutex
	a  comm.Affinity
}

func (s *handoffSource) Name() string { return "fleet-observed" }

func (s *handoffSource) Affinity() (comm.Affinity, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.a == nil {
		return nil, fmt.Errorf("ctrlplane: no merged window staged")
	}
	return s.a, nil
}

func (s *handoffSource) set(a comm.Affinity) {
	s.mu.Lock()
	s.a = a
	s.mu.Unlock()
}

// NewController builds the control plane over a fleet: one reconciler
// per currently registered machine (attached to its service, so the
// adaptive counters surface through Stats), one shared collector.
func NewController(fleet *placement.MultiService, cfg Config) (*Controller, error) {
	if fleet == nil {
		return nil, fmt.Errorf("ctrlplane: nil fleet")
	}
	machines := fleet.Machines()
	if len(machines) == 0 {
		return nil, fmt.Errorf("ctrlplane: fleet has no machines")
	}
	c := &Controller{
		fleet: fleet,
		col:   NewCollector(cfg.StaleAfter),
		cfg:   cfg,
		loops: make(map[string]*machineLoop, len(machines)),
		subs:  make(map[uint64]*subscriber),
	}
	if cfg.ReportRate > 0 {
		c.col.SetReportLimit(cfg.ReportRate, cfg.ReportBurst)
	}
	if cfg.MaxLeaseTasks > 0 {
		c.col.SetMaxLeaseTasks(cfg.MaxLeaseTasks)
	}
	for _, name := range machines {
		svc, err := fleet.MachineService(name)
		if err != nil {
			return nil, err
		}
		src := &handoffSource{}
		// prog is nil: the daemon owns no tasks to re-bind — adopted
		// mappings travel to the processes that do, via Subscribe.
		rec, err := placement.NewAffinityReconciler(svc.Engine(), src, nil, cfg.Adaptive)
		if err != nil {
			return nil, err
		}
		svc.AttachReconciler(rec)
		c.loops[name] = &machineLoop{name: name, svc: svc, src: src, rec: rec}
	}
	return c, nil
}

// Collector returns the lease/report merger the controller reconciles
// from.
func (c *Controller) Collector() *Collector { return c.col }

// Machines lists the machines the controller reconciles.
func (c *Controller) Machines() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.loops))
	for name := range c.loops {
		out = append(out, name)
	}
	return out
}

// resolve maps the empty machine name to the fleet's default machine,
// mirroring the placement-routing convention ("" = default).
func (c *Controller) resolve(machine string) string {
	if machine == "" {
		return c.fleet.DefaultMachine()
	}
	return machine
}

// Register leases a task range with no ownership token; see
// RegisterToken.
func (c *Controller) Register(machine, peer string, base, count int) (Lease, error) {
	return c.RegisterToken(machine, peer, base, count, 0)
}

// RegisterToken leases a task range; the machine ("" = the fleet
// default) must be one the controller reconciles (a lease against an
// unknown machine would feed a matrix nobody consumes). A non-zero
// token claims ownership: only a registration presenting the same
// token can later replace the lease.
func (c *Controller) RegisterToken(machine, peer string, base, count int, token uint64) (Lease, error) {
	machine = c.resolve(machine)
	c.mu.Lock()
	_, ok := c.loops[machine]
	c.mu.Unlock()
	if !ok {
		return Lease{}, fmt.Errorf("ctrlplane: unknown machine %q", machine)
	}
	return c.col.RegisterToken(machine, peer, base, count, token)
}

// Report merges one observed window under a lease.
func (c *Controller) Report(leaseID, seq uint64, delta *comm.Matrix) error {
	return c.col.Report(leaseID, seq, delta)
}

// ReportAffinity merges one observed window under a lease without
// densifying a sparse delta.
func (c *Controller) ReportAffinity(leaseID, seq uint64, delta comm.Affinity) error {
	return c.col.ReportAffinity(leaseID, seq, delta)
}

// Epoch runs one reconciliation step for machine: drain the merged
// window, measure drift, adopt when warranted, publish to subscribers.
// A nil report means the machine was idle (no merged traffic).
func (c *Controller) Epoch(machine string) (*placement.EpochReport, error) {
	machine = c.resolve(machine)
	c.mu.Lock()
	lp, ok := c.loops[machine]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("ctrlplane: unknown machine %q", machine)
	}
	lp.mu.Lock()
	defer lp.mu.Unlock()
	w := c.col.WindowAffinity(machine)
	if w == nil || w.Total() == 0 {
		return nil, nil
	}
	if !lp.primed {
		// First traffic ever seen for this machine: compute and adopt
		// the initial fleet mapping (epoch 1) directly — there is no
		// baseline to drift from yet. The affinity path keeps a large
		// machine's first mapping on the partitioned sparse pipeline.
		a, _, err := lp.svc.Engine().ComputeAffinity(c.adaptiveStrategy(), w, 0, c.cfg.Adaptive.Options)
		if err != nil {
			return nil, err
		}
		if err := lp.rec.SetCurrentAffinity(a, w); err != nil {
			return nil, err
		}
		lp.primed = true
		c.publish(lp, Remap{Machine: machine, Assignment: a.Clone()})
		return &placement.EpochReport{WindowBytes: w.Total(), Recomputed: true, Adopted: true, Assignment: a.Clone()}, nil
	}
	lp.src.set(w)
	rep, err := lp.rec.Epoch()
	if err != nil {
		return nil, err
	}
	if rep.Adopted {
		c.publish(lp, Remap{
			Machine:            machine,
			Drift:              rep.Drift,
			Assignment:         rep.Assignment.Clone(),
			MovedTasks:         cloneInts(rep.MovedTasks),
			RemappedPartitions: cloneInts(rep.RemappedPartitions),
		})
	}
	return rep, nil
}

// cloneInts copies s, preserving the nil (unknown) vs empty (known,
// nothing in it) distinction that MovedTasks relies on.
func cloneInts(s []int) []int {
	if s == nil {
		return nil
	}
	out := make([]int, len(s))
	copy(out, s)
	return out
}

func (c *Controller) adaptiveStrategy() string {
	if c.cfg.Adaptive.Strategy != "" {
		return c.cfg.Adaptive.Strategy
	}
	return placement.TreeMatch
}

// publish stamps the remap with the machine's next epoch and fans it
// out to the machine's subscribers, latest-wins: a slow subscriber's
// buffer keeps only the newest events, which is safe because every
// remap is a full snapshot of the mapping, not an increment.
func (c *Controller) publish(lp *machineLoop, ev Remap) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lp.epoch++
	ev.Epoch = lp.epoch
	lp.latest = &ev
	for _, sub := range c.subs {
		if sub.machine != lp.name {
			continue
		}
		select {
		case sub.ch <- ev:
		default:
			// Full: displace the oldest buffered event and retry once.
			select {
			case <-sub.ch:
			default:
			}
			select {
			case sub.ch <- ev:
			default:
			}
		}
		c.pushed++
	}
}

// Subscribe registers a remap watcher for machine. Events newer than
// sinceEpoch flow on the returned channel; if the machine's latest
// adopted mapping is already newer than sinceEpoch it is returned as
// the catch-up event (the wire layer answers it as the opWatchRemaps
// ack). Registration and catch-up are atomic under one lock, so an
// adoption can never fall between them unseen. Release with
// Unsubscribe, which closes the channel.
func (c *Controller) Subscribe(machine string, sinceEpoch uint64) (id uint64, ch <-chan Remap, catchUp *Remap, err error) {
	machine = c.resolve(machine)
	c.mu.Lock()
	defer c.mu.Unlock()
	lp, ok := c.loops[machine]
	if !ok {
		return 0, nil, nil, fmt.Errorf("ctrlplane: unknown machine %q", machine)
	}
	c.nextSub++
	sub := &subscriber{machine: machine, ch: make(chan Remap, 8)}
	c.subs[c.nextSub] = sub
	if lp.latest != nil && lp.latest.Epoch > sinceEpoch {
		cp := *lp.latest
		catchUp = &cp
	}
	return c.nextSub, sub.ch, catchUp, nil
}

// Unsubscribe drops a watcher and closes its channel.
func (c *Controller) Unsubscribe(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sub, ok := c.subs[id]; ok {
		delete(c.subs, id)
		close(sub.ch)
	}
}

// Latest returns the machine's newest adopted remap (nil before the
// first adoption).
func (c *Controller) Latest(machine string) *Remap {
	machine = c.resolve(machine)
	c.mu.Lock()
	defer c.mu.Unlock()
	lp, ok := c.loops[machine]
	if !ok || lp.latest == nil {
		return nil
	}
	cp := *lp.latest
	return &cp
}

// Stats snapshots the control plane's counters for the schema v5
// stats payload.
func (c *Controller) Stats() placement.FleetStats {
	reports, peers, evicted := c.col.Counters()
	throttled, conflicts := c.col.Abuse()
	c.mu.Lock()
	defer c.mu.Unlock()
	return placement.FleetStats{
		ReportsReceived:   reports,
		PeersTracked:      peers,
		RemapsPushed:      c.pushed,
		StalePeersEvicted: evicted,
		Watchers:          uint64(len(c.subs)),
		ReportsThrottled:  throttled,
		LeaseConflicts:    conflicts,
	}
}

// Run drives Epoch for every machine on a ticker until the context is
// cancelled. Per-machine errors go to report (nil drops them) and do
// not stop the loop — one machine's model failure must not stall the
// fleet.
func (c *Controller) Run(ctx context.Context, every time.Duration, report func(machine string, rep *placement.EpochReport, err error)) error {
	if every <= 0 {
		return fmt.Errorf("ctrlplane: non-positive epoch interval %v", every)
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			for _, machine := range c.Machines() {
				rep, err := c.Epoch(machine)
				if report != nil && (rep != nil || err != nil) {
					report(machine, rep, err)
				}
			}
		}
	}
}
