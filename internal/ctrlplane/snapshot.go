package ctrlplane

// Control-plane durability. A daemon restart used to discard every
// lease, epoch and adopted mapping, stranding the fleet's placement
// history; this file gives the controller a snapshot it can write
// atomically and restore on startup, so a restarted daemon resumes at
// its last snapshotted epoch instead of re-priming from zero.
//
// The file format is deliberately self-contained (no dependency on the
// wire codecs, which evolve with the protocol):
//
//	magic "ORWLSNAP" | version byte | payload | CRC32-IEEE (big endian)
//
// The checksum covers magic, version and payload, so truncation and
// bit flips are both caught. Version 1 persists leases, orders and
// epochs; version 2 (current) adds each machine's drift-baseline
// matrix, letting a restored reconciler measure drift against the
// matrix its adopted mapping was computed from. Unknown versions and
// checksum failures decode to an error — the daemon logs it and starts
// fresh rather than crashing or trusting damaged state.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"

	"orwlplace/internal/comm"
	"orwlplace/internal/placement"
	"orwlplace/internal/treematch"
)

const (
	// snapshotMagic identifies a control-plane snapshot file.
	snapshotMagic = "ORWLSNAP"
	// SnapshotVersionLeases is the first snapshot schema: leases,
	// machine orders, epochs and latest adopted remaps.
	SnapshotVersionLeases = 1
	// SnapshotVersionBaseline adds the per-machine drift-baseline
	// matrix, stored densely (order²  floats).
	SnapshotVersionBaseline = 2
	// SnapshotVersionSparse stores the baseline as a sparse nonzero
	// list — O(nnz) on disk, the only form that scales to the raised
	// lease-task bounds — and persists the assignment's partition
	// structure, so a restored reconciler resumes per-subtree drift
	// tracking. This is the current version; version 1 and 2 files
	// still restore.
	SnapshotVersionSparse = 3
	// SnapshotVersion is the version SaveSnapshot writes.
	SnapshotVersion = SnapshotVersionSparse

	// snapMaxCount bounds decoded collection lengths, so a corrupt or
	// hostile length prefix cannot force a huge allocation before the
	// checksum would have caught it.
	snapMaxCount = 1 << 20
)

// LeaseRecord is one persisted lease: the lease identity plus the
// highest report sequence merged under it, so retransmits arriving
// after a restart do not double-count traffic.
type LeaseRecord struct {
	Lease
	LastSeq uint64
}

// MachineRecord is one machine's persisted reconciliation state.
type MachineRecord struct {
	Name string
	// Order is the machine's global task-space size (it can exceed the
	// union of live leases: evicted leases' ranges stay claimed).
	Order int
	// Epoch is the machine's adoption counter; the next adopted remap
	// is stamped Epoch+1.
	Epoch uint64
	// Latest is the newest adopted remap, nil before the first
	// adoption.
	Latest *Remap
	// Base is the drift baseline backing Latest.Assignment, nil in
	// version-1 snapshots and before the first adoption. Restoring it
	// re-primes the machine's reconciler. Version-2 files carry it
	// densely, version-3 as a sparse nonzero list; in memory it is
	// whatever representation matches the order.
	Base comm.Affinity
}

// Snapshot is the controller state worth surviving a restart. Pending
// (merged-but-unreconciled) observed windows are deliberately not
// persisted: they are one epoch of in-flight traffic, and clients keep
// reporting after a reconnect.
type Snapshot struct {
	NextLeaseID uint64
	Leases      []LeaseRecord
	Machines    []MachineRecord
}

// --- binary helpers -------------------------------------------------
//
// Everything is length-prefixed uvarints and fixed 8-byte floats; the
// helpers mirror the wire codec's shape but stay private to the file
// format, so wire evolution cannot silently change what old snapshots
// mean.

func snapPutString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func snapGetUvarint(src []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, nil, fmt.Errorf("ctrlplane: snapshot: truncated varint")
	}
	return v, src[n:], nil
}

func snapGetString(src []byte) (string, []byte, error) {
	n, rest, err := snapGetUvarint(src)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("ctrlplane: snapshot: string of %d bytes overruns payload", n)
	}
	return string(rest[:n]), rest[n:], nil
}

func snapPutFloat(dst []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
}

func snapGetFloat(src []byte) (float64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, fmt.Errorf("ctrlplane: snapshot: truncated float")
	}
	return math.Float64frombits(binary.BigEndian.Uint64(src)), src[8:], nil
}

// snapPutIntSlice writes a length-prefixed zigzag-varint int slice
// (ControlPU carries -1 for "leave to the OS").
func snapPutIntSlice(dst []byte, xs []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(xs)))
	for _, x := range xs {
		dst = binary.AppendVarint(dst, int64(x))
	}
	return dst
}

func snapGetIntSlice(src []byte) ([]int, []byte, error) {
	n, rest, err := snapGetUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, rest, nil
	}
	if n > snapMaxCount {
		return nil, nil, fmt.Errorf("ctrlplane: snapshot: int slice of %d entries exceeds the cap", n)
	}
	out := make([]int, n)
	for i := range out {
		v, k := binary.Varint(rest)
		if k <= 0 {
			return nil, nil, fmt.Errorf("ctrlplane: snapshot: truncated int slice")
		}
		out[i] = int(v)
		rest = rest[k:]
	}
	return out, rest, nil
}

// snapPutDenseMatrix writes the version-2 baseline record: order²
// floats. Sparse baselines densify — the price of emitting a
// downgrade-compatible file.
func snapPutDenseMatrix(dst []byte, a comm.Affinity) []byte {
	if a == nil {
		return binary.AppendUvarint(dst, 0)
	}
	m := a.Dense()
	n := m.Order()
	dst = binary.AppendUvarint(dst, uint64(n)+1) // 0 = nil, k+1 = order k
	for i := 0; i < n; i++ {
		for _, v := range m.RowView(i) {
			dst = snapPutFloat(dst, v)
		}
	}
	return dst
}

func snapGetDenseMatrix(src []byte, maxTasks int) (*comm.Matrix, []byte, error) {
	enc, rest, err := snapGetUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if enc == 0 {
		return nil, rest, nil
	}
	n := int(enc - 1)
	if n > maxTasks {
		return nil, nil, fmt.Errorf("ctrlplane: snapshot: matrix order %d exceeds the %d-task cap", n, maxTasks)
	}
	if uint64(len(rest)) < uint64(n)*uint64(n)*8 {
		return nil, nil, fmt.Errorf("ctrlplane: snapshot: truncated %dx%d matrix", n, n)
	}
	m := comm.NewMatrix(n)
	for i := 0; i < n; i++ {
		row := m.RowView(i)
		for j := range row {
			if row[j], rest, err = snapGetFloat(rest); err != nil {
				return nil, nil, err
			}
		}
	}
	return m, rest, nil
}

// snapPutSparseMatrix writes the version-3 baseline record: order,
// nonzero count, then (row, col, value) triples in row-major order —
// deterministic (ForEachRow yields ascending columns) and O(nnz) on
// disk however large the task space is.
func snapPutSparseMatrix(dst []byte, a comm.Affinity) []byte {
	if a == nil {
		return binary.AppendUvarint(dst, 0)
	}
	n := a.Order()
	dst = binary.AppendUvarint(dst, uint64(n)+1) // 0 = nil, k+1 = order k
	dst = binary.AppendUvarint(dst, uint64(a.NNZ()))
	for i := 0; i < n; i++ {
		a.ForEachRow(i, func(j int, v float64) {
			dst = binary.AppendUvarint(dst, uint64(i))
			dst = binary.AppendUvarint(dst, uint64(j))
			dst = snapPutFloat(dst, v)
		})
	}
	return dst
}

func snapGetSparseMatrix(src []byte, maxTasks int) (comm.Affinity, []byte, error) {
	enc, rest, err := snapGetUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if enc == 0 {
		return nil, rest, nil
	}
	n := int(enc - 1)
	if n > maxTasks {
		return nil, nil, fmt.Errorf("ctrlplane: snapshot: matrix order %d exceeds the %d-task cap", n, maxTasks)
	}
	nnz, rest, err := snapGetUvarint(rest)
	if err != nil {
		return nil, nil, err
	}
	// Each entry is at least two 1-byte varints plus an 8-byte float;
	// a count the payload cannot possibly hold is damage, not data.
	if nnz > uint64(len(rest))/10 {
		return nil, nil, fmt.Errorf("ctrlplane: snapshot: %d sparse entries overrun the payload", nnz)
	}
	a := comm.NewAffinity(n)
	for k := uint64(0); k < nnz; k++ {
		var i, j uint64
		if i, rest, err = snapGetUvarint(rest); err != nil {
			return nil, nil, err
		}
		if j, rest, err = snapGetUvarint(rest); err != nil {
			return nil, nil, err
		}
		var v float64
		if v, rest, err = snapGetFloat(rest); err != nil {
			return nil, nil, err
		}
		if i >= uint64(n) || j >= uint64(n) {
			return nil, nil, fmt.Errorf("ctrlplane: snapshot: sparse entry (%d,%d) outside a %d-task matrix", i, j, n)
		}
		a.Set(int(i), int(j), v)
	}
	return a, rest, nil
}

const (
	snapAssignUnbound        = 1 << 0
	snapAssignOversubscribed = 1 << 1
	snapAssignHasControl     = 1 << 2
	snapAssignHasCoreOf      = 1 << 3
	// snapAssignHasPartitions marks a persisted partition structure —
	// written only at SnapshotVersionSparse and later, so version-2
	// files stay decodable by version-2 daemons.
	snapAssignHasPartitions = 1 << 4
)

func snapPutAssignment(dst []byte, a *placement.Assignment, version int) []byte {
	if a == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	parts := a.Partitions
	if version < SnapshotVersionSparse {
		parts = nil
	}
	var flags byte
	if a.Unbound {
		flags |= snapAssignUnbound
	}
	if a.Oversubscribed {
		flags |= snapAssignOversubscribed
	}
	if a.ControlPU != nil {
		flags |= snapAssignHasControl
	}
	if a.CoreOf != nil {
		flags |= snapAssignHasCoreOf
	}
	if parts != nil {
		flags |= snapAssignHasPartitions
	}
	dst = append(dst, flags)
	dst = snapPutString(dst, a.Strategy)
	dst = binary.AppendUvarint(dst, uint64(a.Mode))
	dst = snapPutIntSlice(dst, a.ComputePU)
	if a.ControlPU != nil {
		dst = snapPutIntSlice(dst, a.ControlPU)
	}
	if a.CoreOf != nil {
		dst = snapPutIntSlice(dst, a.CoreOf)
	}
	if parts != nil {
		dst = binary.AppendUvarint(dst, uint64(len(parts.Parts)))
		for _, p := range parts.Parts {
			dst = binary.AppendUvarint(dst, uint64(p.Depth))
			dst = binary.AppendUvarint(dst, uint64(p.Object))
			dst = snapPutIntSlice(dst, p.Tasks)
		}
	}
	return dst
}

func snapGetAssignment(src []byte) (*placement.Assignment, []byte, error) {
	if len(src) < 1 {
		return nil, nil, fmt.Errorf("ctrlplane: snapshot: truncated assignment")
	}
	present, rest := src[0], src[1:]
	if present == 0 {
		return nil, rest, nil
	}
	if len(rest) < 1 {
		return nil, nil, fmt.Errorf("ctrlplane: snapshot: truncated assignment flags")
	}
	flags := rest[0]
	rest = rest[1:]
	a := &placement.Assignment{
		Unbound:        flags&snapAssignUnbound != 0,
		Oversubscribed: flags&snapAssignOversubscribed != 0,
	}
	var err error
	if a.Strategy, rest, err = snapGetString(rest); err != nil {
		return nil, nil, err
	}
	var mode uint64
	if mode, rest, err = snapGetUvarint(rest); err != nil {
		return nil, nil, err
	}
	a.Mode = treematch.ControlMode(mode)
	if a.ComputePU, rest, err = snapGetIntSlice(rest); err != nil {
		return nil, nil, err
	}
	if flags&snapAssignHasControl != 0 {
		if a.ControlPU, rest, err = snapGetIntSlice(rest); err != nil {
			return nil, nil, err
		}
	}
	if flags&snapAssignHasCoreOf != 0 {
		if a.CoreOf, rest, err = snapGetIntSlice(rest); err != nil {
			return nil, nil, err
		}
	}
	if flags&snapAssignHasPartitions != 0 {
		var np uint64
		if np, rest, err = snapGetUvarint(rest); err != nil {
			return nil, nil, err
		}
		if np > snapMaxCount {
			return nil, nil, fmt.Errorf("ctrlplane: snapshot: %d partitions exceeds the cap", np)
		}
		parts := &treematch.Partitioning{Parts: make([]treematch.Partition, 0, np)}
		for k := uint64(0); k < np; k++ {
			var p treematch.Partition
			var u uint64
			if u, rest, err = snapGetUvarint(rest); err != nil {
				return nil, nil, err
			}
			p.Depth = int(u)
			if u, rest, err = snapGetUvarint(rest); err != nil {
				return nil, nil, err
			}
			p.Object = int(u)
			if p.Tasks, rest, err = snapGetIntSlice(rest); err != nil {
				return nil, nil, err
			}
			parts.Parts = append(parts.Parts, p)
		}
		a.Partitions = parts
	}
	return a, rest, nil
}

// --- codec ----------------------------------------------------------

// EncodeSnapshot serialises s at the requested schema version: a
// version-1 encoding drops the baseline matrices, version 2 stores
// them densely (and drops partition structures), version 3 stores
// them sparse. The output is deterministic: leases sort by ID,
// machines by name.
func EncodeSnapshot(s *Snapshot, version int) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("ctrlplane: nil snapshot")
	}
	if version < SnapshotVersionLeases || version > SnapshotVersionSparse {
		return nil, fmt.Errorf("ctrlplane: unknown snapshot version %d", version)
	}
	leases := append([]LeaseRecord(nil), s.Leases...)
	sort.Slice(leases, func(i, j int) bool { return leases[i].ID < leases[j].ID })
	machines := append([]MachineRecord(nil), s.Machines...)
	sort.Slice(machines, func(i, j int) bool { return machines[i].Name < machines[j].Name })

	dst := append([]byte(nil), snapshotMagic...)
	dst = append(dst, byte(version))
	dst = binary.AppendUvarint(dst, s.NextLeaseID)
	dst = binary.AppendUvarint(dst, uint64(len(leases)))
	for _, lr := range leases {
		dst = binary.AppendUvarint(dst, lr.ID)
		dst = snapPutString(dst, lr.Machine)
		dst = snapPutString(dst, lr.Peer)
		dst = binary.AppendUvarint(dst, uint64(lr.TaskBase))
		dst = binary.AppendUvarint(dst, uint64(lr.TaskCount))
		dst = binary.AppendUvarint(dst, lr.Token)
		dst = binary.AppendUvarint(dst, lr.LastSeq)
	}
	dst = binary.AppendUvarint(dst, uint64(len(machines)))
	for _, mr := range machines {
		dst = snapPutString(dst, mr.Name)
		dst = binary.AppendUvarint(dst, uint64(mr.Order))
		dst = binary.AppendUvarint(dst, mr.Epoch)
		if mr.Latest == nil {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
			dst = snapPutFloat(dst, mr.Latest.Drift)
			dst = snapPutAssignment(dst, mr.Latest.Assignment, version)
		}
		if version >= SnapshotVersionSparse {
			dst = snapPutSparseMatrix(dst, mr.Base)
		} else if version >= SnapshotVersionBaseline {
			dst = snapPutDenseMatrix(dst, mr.Base)
		}
	}
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst)), nil
}

// DecodeSnapshot parses and verifies a snapshot file image against the
// default lease-task bound. Damage of any kind — bad magic, unknown
// version, checksum mismatch, truncation — is an error; the caller is
// expected to log it and start fresh.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	return DecodeSnapshotLimit(data, 0)
}

// DecodeSnapshotLimit is DecodeSnapshot with an explicit lease-task
// bound (0 = DefaultMaxLeaseTasks): lease ranges and matrix orders
// beyond it are rejected. A daemon running with a raised
// -max-lease-tasks must decode with the same bound it registers
// with, or its own snapshots would fail to restore.
func DecodeSnapshotLimit(data []byte, maxTasks int) (*Snapshot, error) {
	if maxTasks <= 0 {
		maxTasks = DefaultMaxLeaseTasks
	}
	if len(data) < len(snapshotMagic)+1+4 {
		return nil, fmt.Errorf("ctrlplane: snapshot: %d bytes is too short to be a snapshot", len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("ctrlplane: snapshot: bad magic (not a control-plane snapshot)")
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("ctrlplane: snapshot: checksum mismatch (stored %08x, computed %08x) — file damaged", sum, got)
	}
	version := int(body[len(snapshotMagic)])
	if version < SnapshotVersionLeases || version > SnapshotVersionSparse {
		return nil, fmt.Errorf("ctrlplane: snapshot: unsupported version %d (this daemon reads <= %d)", version, SnapshotVersion)
	}
	rest := body[len(snapshotMagic)+1:]

	s := &Snapshot{}
	var err error
	if s.NextLeaseID, rest, err = snapGetUvarint(rest); err != nil {
		return nil, err
	}
	var n uint64
	if n, rest, err = snapGetUvarint(rest); err != nil {
		return nil, err
	}
	if n > snapMaxCount {
		return nil, fmt.Errorf("ctrlplane: snapshot: %d leases exceeds the cap", n)
	}
	s.Leases = make([]LeaseRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var lr LeaseRecord
		if lr.ID, rest, err = snapGetUvarint(rest); err != nil {
			return nil, err
		}
		if lr.Machine, rest, err = snapGetString(rest); err != nil {
			return nil, err
		}
		if lr.Peer, rest, err = snapGetString(rest); err != nil {
			return nil, err
		}
		var u uint64
		if u, rest, err = snapGetUvarint(rest); err != nil {
			return nil, err
		}
		lr.TaskBase = int(u)
		if u, rest, err = snapGetUvarint(rest); err != nil {
			return nil, err
		}
		lr.TaskCount = int(u)
		if lr.TaskBase < 0 || lr.TaskCount <= 0 || lr.TaskBase+lr.TaskCount > maxTasks {
			return nil, fmt.Errorf("ctrlplane: snapshot: lease %d range [%d,+%d) out of bounds (max %d tasks)", lr.ID, lr.TaskBase, lr.TaskCount, maxTasks)
		}
		if lr.Token, rest, err = snapGetUvarint(rest); err != nil {
			return nil, err
		}
		if lr.LastSeq, rest, err = snapGetUvarint(rest); err != nil {
			return nil, err
		}
		s.Leases = append(s.Leases, lr)
	}
	if n, rest, err = snapGetUvarint(rest); err != nil {
		return nil, err
	}
	if n > snapMaxCount {
		return nil, fmt.Errorf("ctrlplane: snapshot: %d machines exceeds the cap", n)
	}
	s.Machines = make([]MachineRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var mr MachineRecord
		if mr.Name, rest, err = snapGetString(rest); err != nil {
			return nil, err
		}
		var u uint64
		if u, rest, err = snapGetUvarint(rest); err != nil {
			return nil, err
		}
		mr.Order = int(u)
		if mr.Order < 0 || mr.Order > maxTasks {
			return nil, fmt.Errorf("ctrlplane: snapshot: machine %q order %d out of bounds (max %d tasks)", mr.Name, mr.Order, maxTasks)
		}
		if mr.Epoch, rest, err = snapGetUvarint(rest); err != nil {
			return nil, err
		}
		if len(rest) < 1 {
			return nil, fmt.Errorf("ctrlplane: snapshot: truncated machine record")
		}
		hasLatest := rest[0] != 0
		rest = rest[1:]
		if hasLatest {
			ev := &Remap{Machine: mr.Name, Epoch: mr.Epoch}
			if ev.Drift, rest, err = snapGetFloat(rest); err != nil {
				return nil, err
			}
			if ev.Assignment, rest, err = snapGetAssignment(rest); err != nil {
				return nil, err
			}
			if ev.Assignment == nil {
				return nil, fmt.Errorf("ctrlplane: snapshot: machine %q adopted remap without an assignment", mr.Name)
			}
			mr.Latest = ev
		}
		if version >= SnapshotVersionSparse {
			if mr.Base, rest, err = snapGetSparseMatrix(rest, maxTasks); err != nil {
				return nil, err
			}
		} else if version >= SnapshotVersionBaseline {
			var bm *comm.Matrix
			if bm, rest, err = snapGetDenseMatrix(rest, maxTasks); err != nil {
				return nil, err
			}
			if bm != nil {
				mr.Base = bm
			}
		}
		s.Machines = append(s.Machines, mr)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("ctrlplane: snapshot: %d trailing bytes after the last record", len(rest))
	}
	return s, nil
}

// SnapshotFileInfo reports the container-level facts of a snapshot
// image — schema version and checksum integrity — without decoding the
// payload. Inspection tooling uses it to tell "damaged file" apart
// from "valid file the current bounds reject".
func SnapshotFileInfo(data []byte) (version int, crcOK bool, err error) {
	if len(data) < len(snapshotMagic)+1+4 {
		return 0, false, fmt.Errorf("ctrlplane: snapshot: %d bytes is too short to be a snapshot", len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return 0, false, fmt.Errorf("ctrlplane: snapshot: bad magic (not a control-plane snapshot)")
	}
	version = int(data[len(snapshotMagic)])
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	return version, crc32.ChecksumIEEE(body) == sum, nil
}

// SaveSnapshot writes s to path atomically (temp file in the same
// directory, fsync, rename), so a crash mid-write leaves the previous
// snapshot intact.
func SaveSnapshot(path string, s *Snapshot) error {
	data, err := EncodeSnapshot(s, SnapshotVersion)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ctrlplane: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("ctrlplane: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ctrlplane: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ctrlplane: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ctrlplane: snapshot: %w", err)
	}
	return nil
}

// snapshotRotation names the numbered generations behind path:
// path.1 is the previous snapshot, path.2 the one before, and so on.
func snapshotRotation(path string, i int) string {
	return fmt.Sprintf("%s.%d", path, i)
}

// SaveSnapshotRotate is SaveSnapshot with retention: before the fresh
// write, the existing generations shift down one slot (path → path.1 →
// … → path.(keep-1), the oldest falling off), so the last keep
// snapshots survive. keep <= 1 is plain SaveSnapshot. Rotation is a
// chain of renames oldest-first, so a crash at any point leaves every
// surviving generation intact (at worst the newest state lives in
// path.1 until the next save); the fresh write itself stays atomic.
func SaveSnapshotRotate(path string, s *Snapshot, keep int) error {
	if keep <= 1 {
		return SaveSnapshot(path, s)
	}
	for i := keep - 2; i >= 1; i-- {
		if err := os.Rename(snapshotRotation(path, i), snapshotRotation(path, i+1)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("ctrlplane: snapshot: rotating generation %d: %w", i, err)
		}
	}
	if err := os.Rename(path, snapshotRotation(path, 1)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("ctrlplane: snapshot: rotating current snapshot: %w", err)
	}
	return SaveSnapshot(path, s)
}

// LoadSnapshotNewestLimit restores from a rotated snapshot set: it
// tries path, then path.1, path.2, … up to keep-1 generations back,
// and returns the first one that reads and verifies — a damaged or
// truncated newest file (a crash mid-rotation, a corrupted disk
// block) falls back to the older generation instead of forcing a
// cold start. The returned source names the file that won. Only when
// every present generation is damaged (or none exists) does it
// return the newest file's error, wrapped fs.ErrNotExist when no
// generation exists at all.
func LoadSnapshotNewestLimit(path string, maxTasks, keep int) (*Snapshot, string, error) {
	if keep < 1 {
		keep = 1
	}
	var firstErr error
	missing := 0
	for i := 0; i < keep; i++ {
		p := path
		if i > 0 {
			p = snapshotRotation(path, i)
		}
		snap, err := LoadSnapshotLimit(p, maxTasks)
		if err == nil {
			return snap, p, nil
		}
		if errors.Is(err, fs.ErrNotExist) {
			missing++
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if missing == keep {
		return nil, "", firstErr // no generation exists: a fresh deployment
	}
	return nil, "", fmt.Errorf("ctrlplane: snapshot: no valid generation under %s: %w", path, firstErr)
}

// LoadSnapshot reads and verifies the snapshot at path. A missing file
// surfaces as an fs.ErrNotExist-wrapped error (a fresh deployment, not
// damage); anything else unreadable or undecodable is an error the
// caller should log before starting fresh.
func LoadSnapshot(path string) (*Snapshot, error) {
	return LoadSnapshotLimit(path, 0)
}

// LoadSnapshotLimit is LoadSnapshot validating against an explicit
// lease-task bound (0 = DefaultMaxLeaseTasks) — pair it with the
// collector's SetMaxLeaseTasks configuration.
func LoadSnapshotLimit(path string, maxTasks int) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeSnapshotLimit(data, maxTasks)
}

// --- collector import/export ---------------------------------------

// export snapshots the collector's lease table and machine orders.
func (c *Collector) export() (nextID uint64, leases []LeaseRecord, orders map[string]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictStaleLocked()
	leases = make([]LeaseRecord, 0, len(c.leases))
	for _, ls := range c.leases {
		leases = append(leases, LeaseRecord{Lease: ls.Lease, LastSeq: ls.lastSeq})
	}
	orders = make(map[string]int, len(c.machines))
	for name, ms := range c.machines {
		orders[name] = ms.order
	}
	return c.nextID, leases, orders
}

// restore replaces the collector's lease table and machine orders with
// snapshotted state. Restored leases are treated as freshly reporting
// (their staleness clock restarts now — the peers are expected to
// reconnect and resume), and their report buckets start full.
func (c *Collector) restore(nextID uint64, leases []LeaseRecord, orders map[string]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	if nextID > c.nextID {
		c.nextID = nextID
	}
	for _, lr := range leases {
		c.leases[lr.ID] = &leaseState{
			Lease:      lr.Lease,
			lastReport: now,
			lastSeq:    lr.LastSeq,
			bucket:     c.reportBurst,
			lastRefill: now,
		}
	}
	for name, order := range orders {
		ms := c.machineLocked(name)
		if order > ms.order {
			ms.order = order
		}
	}
}

// --- controller snapshot/restore ------------------------------------

// Snapshot captures the controller's durable state: the lease table
// and, per machine, the adoption epoch, latest adopted remap and the
// reconciler's drift baseline.
func (c *Controller) Snapshot() *Snapshot {
	nextID, leases, orders := c.col.export()
	s := &Snapshot{NextLeaseID: nextID, Leases: leases}
	type pending struct {
		idx int
		lp  *machineLoop
	}
	var fill []pending
	c.mu.Lock()
	for name, lp := range c.loops {
		mr := MachineRecord{Name: name, Order: orders[name], Epoch: lp.epoch}
		if lp.latest != nil {
			cp := *lp.latest
			cp.Assignment = cp.Assignment.Clone()
			mr.Latest = &cp
		}
		s.Machines = append(s.Machines, mr)
		fill = append(fill, pending{idx: len(s.Machines) - 1, lp: lp})
	}
	c.mu.Unlock()
	// The baseline lives behind the reconciler's own lock; fetch it
	// outside c.mu so a concurrent Epoch cannot deadlock us.
	for _, p := range fill {
		s.Machines[p.idx].Base = p.lp.rec.BaselineAffinity()
	}
	sort.Slice(s.Machines, func(i, j int) bool { return s.Machines[i].Name < s.Machines[j].Name })
	return s
}

// Restore rebuilds the controller from a snapshot: leases resume under
// their old IDs (so reconnecting clients' reports are refused with
// "unknown lease" only if they truly expired), machines resume at
// their snapshotted epoch, and machines whose snapshot carries both an
// adopted assignment and a baseline matrix come back primed — the next
// drift measurement compares against the restored baseline instead of
// re-priming from zero. Machines in the snapshot that the controller
// no longer hosts are skipped. Call before serving traffic.
func (c *Controller) Restore(s *Snapshot) error {
	if s == nil {
		return nil
	}
	orders := make(map[string]int, len(s.Machines))
	for _, mr := range s.Machines {
		orders[mr.Name] = mr.Order
	}
	c.col.restore(s.NextLeaseID, s.Leases, orders)
	for _, mr := range s.Machines {
		c.mu.Lock()
		lp, ok := c.loops[mr.Name]
		c.mu.Unlock()
		if !ok {
			continue
		}
		if mr.Latest != nil && mr.Latest.Assignment != nil && mr.Base != nil {
			if err := lp.rec.SetCurrentAffinity(mr.Latest.Assignment, mr.Base); err != nil {
				return fmt.Errorf("ctrlplane: restoring machine %q: %w", mr.Name, err)
			}
			lp.mu.Lock()
			lp.primed = true
			lp.mu.Unlock()
		}
		c.mu.Lock()
		lp.epoch = mr.Epoch
		if mr.Latest != nil {
			cp := *mr.Latest
			lp.latest = &cp
		}
		c.mu.Unlock()
	}
	return nil
}
