package ctrlplane

import (
	"testing"
	"time"

	"orwlplace/internal/comm"
)

// delta builds a count x count matrix with one cell set.
func delta(count, i, j int, v float64) *comm.Matrix {
	m := comm.NewMatrix(count)
	m.Set(i, j, v)
	return m
}

func TestCollectorMergesAtLeaseOffsets(t *testing.T) {
	c := NewCollector(-1)
	a, err := c.Register("m", "a", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Register("m", "b", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Order("m"); got != 8 {
		t.Fatalf("order = %d, want 8", got)
	}
	// Peer a reports local (1,2); peer b reports local (0,3). In the
	// fleet matrix they land at (1,2) and (4,7).
	if err := c.Report(a.ID, 1, delta(4, 1, 2, 10)); err != nil {
		t.Fatal(err)
	}
	if err := c.Report(b.ID, 1, delta(4, 0, 3, 20)); err != nil {
		t.Fatal(err)
	}
	if err := c.Report(b.ID, 2, delta(4, 0, 3, 5)); err != nil {
		t.Fatal(err)
	}
	w := c.Window("m")
	if w == nil || w.Order() != 8 {
		t.Fatalf("window = %v, want order 8", w)
	}
	if got := w.At(1, 2); got != 10 {
		t.Errorf("fleet(1,2) = %g, want 10", got)
	}
	if got := w.At(4, 7); got != 25 {
		t.Errorf("fleet(4,7) = %g, want 25 (two deltas summed)", got)
	}
	if got := w.Total(); got != 35 {
		t.Errorf("total = %g, want 35", got)
	}
	// Window drains: the next call sees only new traffic, at the same
	// global order.
	if w := c.Window("m"); w == nil || w.Total() != 0 || w.Order() != 8 {
		t.Fatalf("drained window = %v (total %g), want empty order-8", w, w.Total())
	}
}

func TestCollectorSeqDedup(t *testing.T) {
	c := NewCollector(-1)
	ls, err := c.Register("m", "p", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Report(ls.ID, 7, delta(2, 0, 1, 3)); err != nil {
		t.Fatal(err)
	}
	// A retransmit of the same window (same seq) and a stale reordered
	// one must both be dropped silently.
	if err := c.Report(ls.ID, 7, delta(2, 0, 1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Report(ls.ID, 6, delta(2, 0, 1, 3)); err != nil {
		t.Fatal(err)
	}
	if got := c.Window("m").At(0, 1); got != 3 {
		t.Fatalf("fleet(0,1) = %g, want 3 (duplicates merged once)", got)
	}
	reports, _, _ := c.Counters()
	if reports != 1 {
		t.Fatalf("reports = %d, want 1", reports)
	}
}

func TestCollectorStalenessEviction(t *testing.T) {
	c := NewCollector(time.Minute)
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }
	live, err := c.Register("m", "live", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	dead, err := c.Register("m", "dead", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// live keeps reporting; dead goes silent past the window.
	clock = clock.Add(45 * time.Second)
	if err := c.Report(live.ID, 1, delta(2, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(45 * time.Second)
	if err := c.Report(live.ID, 2, delta(2, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Leases("m")); got != 1 {
		t.Fatalf("live leases = %d, want 1 (dead peer evicted)", got)
	}
	if err := c.Report(dead.ID, 3, delta(2, 0, 1, 1)); err == nil {
		t.Fatal("report under an evicted lease succeeded, want refusal")
	}
	_, peers, evicted := c.Counters()
	if peers != 1 || evicted != 1 {
		t.Fatalf("peers=%d evicted=%d, want 1/1", peers, evicted)
	}
	// The evicted peer's task space stays claimed: orders never shrink.
	if got := c.Order("m"); got != 4 {
		t.Fatalf("order = %d, want 4 after eviction", got)
	}
}

func TestCollectorReRegisterReplaces(t *testing.T) {
	c := NewCollector(-1)
	first, err := c.Register("m", "p", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Register("m", "p", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if first.ID == second.ID {
		t.Fatal("re-register reused the lease id")
	}
	if err := c.Report(first.ID, 1, delta(2, 0, 1, 1)); err == nil {
		t.Fatal("report under a replaced lease succeeded, want refusal")
	}
	if got := len(c.Leases("m")); got != 1 {
		t.Fatalf("leases = %d, want 1", got)
	}
	// The fresh incarnation starts a fresh sequence space.
	if err := c.Report(second.ID, 1, delta(4, 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorValidation(t *testing.T) {
	c := NewCollector(-1)
	if _, err := c.Register("", "p", 0, 2); err == nil {
		t.Error("empty machine accepted")
	}
	if _, err := c.Register("m", "", 0, 2); err == nil {
		t.Error("empty peer accepted")
	}
	if _, err := c.Register("m", "p", -1, 2); err == nil {
		t.Error("negative base accepted")
	}
	if _, err := c.Register("m", "p", 0, 0); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := c.Register("m", "p", 0, DefaultMaxLeaseTasks+1); err == nil {
		t.Error("oversized range accepted")
	}
	ls, err := c.Register("m", "p", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Report(ls.ID, 1, delta(3, 0, 1, 1)); err == nil {
		t.Error("order-mismatched window accepted")
	}
	if err := c.Report(ls.ID+99, 1, delta(2, 0, 1, 1)); err == nil {
		t.Error("unknown lease accepted")
	}
	if err := c.Report(ls.ID, 1, nil); err == nil {
		t.Error("nil window accepted")
	}
}
