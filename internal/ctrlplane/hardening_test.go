package ctrlplane

import (
	"strings"
	"testing"
	"time"

	"orwlplace/internal/comm"
)

// TestLeaseOwnershipToken: a lease registered with a token can only be
// displaced by the same token; legacy (token 0) leases stay
// displaceable.
func TestLeaseOwnershipToken(t *testing.T) {
	c := NewCollector(-1)
	owned, err := c.RegisterToken("m", "alice", 0, 4, 0xa11ce)
	if err != nil {
		t.Fatal(err)
	}

	// A stranger without the token cannot displace it...
	if _, err := c.RegisterToken("m", "alice", 0, 4, 0); err == nil || !strings.Contains(err.Error(), "lease conflict") {
		t.Fatalf("tokenless displacement: err = %v, want lease conflict", err)
	}
	// ...nor with a wrong token...
	if _, err := c.RegisterToken("m", "alice", 0, 4, 0xbad); err == nil || !strings.Contains(err.Error(), "lease conflict") {
		t.Fatalf("wrong-token displacement: err = %v, want lease conflict", err)
	}
	// ...and the original lease still works.
	if err := c.Report(owned.ID, 1, comm.NewMatrix(4)); err != nil {
		t.Fatalf("owned lease broken by failed displacements: %v", err)
	}
	if _, conflicts := c.Abuse(); conflicts != 2 {
		t.Fatalf("conflicts = %d, want 2", conflicts)
	}

	// The owner reconnecting with its token replaces its own lease.
	renewed, err := c.RegisterToken("m", "alice", 0, 4, 0xa11ce)
	if err != nil {
		t.Fatalf("owner re-registration: %v", err)
	}
	if renewed.ID == owned.ID {
		t.Fatal("re-registration did not mint a fresh lease")
	}
	if err := c.Report(owned.ID, 2, comm.NewMatrix(4)); err == nil {
		t.Fatal("displaced lease still accepts reports")
	}

	// A different peer name is a different lease: no conflict.
	if _, err := c.RegisterToken("m", "bob", 0, 4, 0xb0b); err != nil {
		t.Fatalf("unrelated peer rejected: %v", err)
	}

	// Legacy tokenless leases keep the historical displacement semantics.
	if _, err := c.Register("m", "carol", 4, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterToken("m", "carol", 4, 4, 0xca401); err != nil {
		t.Fatalf("tokenless lease not displaceable: %v", err)
	}
}

// TestReportRateLimit: a lease exceeding the configured report rate is
// throttled with a retryable error while other leases keep reporting,
// the throttled window is retransmittable, and the bucket refills with
// time.
func TestReportRateLimit(t *testing.T) {
	c := NewCollector(-1)
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }
	c.SetReportLimit(1, 3) // 1 report/sec, burst of 3

	spammer, err := c.Register("m", "spammer", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	polite, err := c.Register("m", "polite", 4, 4)
	if err != nil {
		t.Fatal(err)
	}

	window := func() *comm.Matrix {
		m := comm.NewMatrix(4)
		m.AddSym(0, 1, 100)
		return m
	}

	// The burst allows 3 back-to-back reports; the 4th is throttled.
	for seq := uint64(1); seq <= 3; seq++ {
		if err := c.Report(spammer.ID, seq, window()); err != nil {
			t.Fatalf("burst report %d: %v", seq, err)
		}
	}
	err = c.Report(spammer.ID, 4, window())
	if err == nil || !strings.Contains(err.Error(), "rate limit") {
		t.Fatalf("4th report: err = %v, want rate limit", err)
	}
	if throttled, _ := c.Abuse(); throttled != 1 {
		t.Fatalf("throttled = %d, want 1", throttled)
	}

	// Another lease is unaffected: the bucket is per lease.
	if err := c.Report(polite.ID, 1, window()); err != nil {
		t.Fatalf("polite peer throttled by the spammer: %v", err)
	}

	// After a second the bucket has one token again — and the throttled
	// sequence number was NOT consumed, so the retransmit still merges.
	clock = clock.Add(time.Second)
	if err := c.Report(spammer.ID, 4, window()); err != nil {
		t.Fatalf("retransmit after refill: %v", err)
	}
	w := c.Window("m")
	if w == nil || w.At(0, 1) != 4*100 {
		t.Fatalf("merged window lost the throttled retransmit: %+v", w)
	}

	// Throttling does not mark the peer dead: lastReport advanced, so a
	// hammering-but-throttled peer is not evicted as stale.
	reports, peers, evicted := c.Counters()
	if reports != 5 || peers != 2 || evicted != 0 {
		t.Fatalf("counters = (%d, %d, %d), want (5, 2, 0)", reports, peers, evicted)
	}
}
