package ctrlplane

import (
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

const ctrlTasks = 16

// testFleet builds a one-machine fleet on the paper's Fig. 2 testbed.
func testFleet(t *testing.T) *placement.MultiService {
	t.Helper()
	fleet := placement.NewMultiService()
	if err := fleet.AddMachine("fig2", topology.Fig2Machine()); err != nil {
		t.Fatal(err)
	}
	return fleet
}

// testConfig mirrors the adaptive golden-shift tuning: a
// communication-dominated workload model, so the ring→clusters shift
// reliably clears the gain-vs-migration-cost bar.
func testConfig() Config {
	threads := make([]perfsim.Thread, ctrlTasks)
	for i := range threads {
		threads[i] = perfsim.Thread{ComputeCycles: 1e5, WorkingSet: 1 << 20, MemoryTraffic: 1 << 14}
	}
	return Config{
		Adaptive: placement.AdaptiveConfig{
			Horizon:  50,
			Workload: &perfsim.Workload{Name: "ctrl-test", Threads: threads, Iterations: 1},
		},
		StaleAfter: -1,
	}
}

// ringMatrix / clusterMatrix are the golden shift's two phases.
func ringMatrix(n int, vol float64) *comm.Matrix {
	m := comm.NewMatrix(n)
	for i := 0; i+1 < n; i++ {
		m.AddSym(i, i+1, vol)
	}
	return m
}

func clusterMatrix(n, k int, vol float64) *comm.Matrix {
	m := comm.NewMatrix(n)
	for base := 0; base < k; base++ {
		var members []int
		for i := base; i < n; i += k {
			members = append(members, i)
		}
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				m.AddSym(members[x], members[y], vol)
			}
		}
	}
	return m
}

func TestControllerPrimesAndAdopts(t *testing.T) {
	ctrl, err := NewController(testFleet(t), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	lease, err := ctrl.Register("", "peer", 0, ctrlTasks)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Machine != "fig2" {
		t.Fatalf("empty machine resolved to %q, want fig2", lease.Machine)
	}

	// Idle machine: no window, no epoch.
	rep, err := ctrl.Epoch("fig2")
	if err != nil || rep != nil {
		t.Fatalf("idle epoch = (%v, %v), want (nil, nil)", rep, err)
	}

	// Subscribe before any adoption: no catch-up.
	subID, events, catchUp, err := ctrl.Subscribe("", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Unsubscribe(subID)
	if catchUp != nil {
		t.Fatalf("catch-up before first adoption = %+v, want nil", catchUp)
	}

	// First traffic primes the machine: initial mapping, epoch 1.
	ring := ringMatrix(ctrlTasks, 1<<20)
	if err := ctrl.Report(lease.ID, 1, ring); err != nil {
		t.Fatal(err)
	}
	rep, err = ctrl.Epoch("")
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || !rep.Adopted || rep.Assignment == nil {
		t.Fatalf("priming epoch = %+v, want adopted with assignment", rep)
	}
	ev := <-events
	if ev.Epoch != 1 || ev.Machine != "fig2" || ev.Assignment == nil {
		t.Fatalf("first pushed remap = %+v, want epoch 1 on fig2", ev)
	}
	if len(ev.Assignment.ComputePU) != ctrlTasks {
		t.Fatalf("remap covers %d tasks, want %d", len(ev.Assignment.ComputePU), ctrlTasks)
	}

	// Same pattern again: drift-free, nothing adopted.
	if err := ctrl.Report(lease.ID, 2, ring); err != nil {
		t.Fatal(err)
	}
	rep, err = ctrl.Epoch("fig2")
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Adopted {
		t.Fatalf("drift-free epoch = %+v, want no adoption", rep)
	}

	// The shift: clustered pattern the ring mapping is wrong for.
	if err := ctrl.Report(lease.ID, 3, clusterMatrix(ctrlTasks, 4, 1<<20)); err != nil {
		t.Fatal(err)
	}
	rep, err = ctrl.Epoch("fig2")
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || !rep.Adopted {
		t.Fatalf("shift epoch = %+v, want adoption", rep)
	}
	ev = <-events
	if ev.Epoch != 2 || ev.Drift == 0 {
		t.Fatalf("shift remap = epoch %d drift %.3f, want epoch 2 with drift", ev.Epoch, ev.Drift)
	}

	// A late subscriber catches up atomically with the latest epoch —
	// and a since-epoch at the latest gets nothing.
	id2, _, cu, err := ctrl.Subscribe("fig2", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Unsubscribe(id2)
	if cu == nil || cu.Epoch != 2 {
		t.Fatalf("late catch-up = %+v, want epoch 2", cu)
	}
	id3, _, cu3, err := ctrl.Subscribe("fig2", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Unsubscribe(id3)
	if cu3 != nil {
		t.Fatalf("up-to-date catch-up = %+v, want nil", cu3)
	}

	st := ctrl.Stats()
	if st.ReportsReceived != 3 || st.PeersTracked != 1 || st.RemapsPushed < 2 || st.Watchers != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if got := ctrl.Latest(""); got == nil || got.Epoch != 2 {
		t.Fatalf("latest = %+v, want epoch 2", got)
	}
}

func TestControllerUnsubscribeCloses(t *testing.T) {
	ctrl, err := NewController(testFleet(t), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	id, events, _, err := ctrl.Subscribe("fig2", 0)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Unsubscribe(id)
	if _, ok := <-events; ok {
		t.Fatal("event channel still open after Unsubscribe")
	}
	ctrl.Unsubscribe(id) // idempotent
	if _, _, _, err := ctrl.Subscribe("nope", 0); err == nil {
		t.Fatal("subscribe to unknown machine succeeded")
	}
}
