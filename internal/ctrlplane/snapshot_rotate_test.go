package ctrlplane

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Snapshot rotation: SaveSnapshotRotate keeps the last N generations
// and LoadSnapshotNewestLimit restores the newest one that verifies,
// falling back past damaged files.

// rotSnap builds a minimal distinguishable snapshot: NextLeaseID is
// the generation marker.
func rotSnap(id uint64) *Snapshot { return &Snapshot{NextLeaseID: id} }

// corrupt flips a byte near the end of the file, so the CRC check
// fails while magic and version stay intact.
func corrupt(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSaveSnapshotRotateKeepsGenerations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ctrl.snap")
	for id := uint64(1); id <= 4; id++ {
		if err := SaveSnapshotRotate(path, rotSnap(id), 3); err != nil {
			t.Fatal(err)
		}
	}
	// After four saves with keep=3: path=4, path.1=3, path.2=2; the
	// first generation fell off.
	for gen, want := range map[string]uint64{path: 4, path + ".1": 3, path + ".2": 2} {
		snap, err := LoadSnapshot(gen)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if snap.NextLeaseID != want {
			t.Fatalf("%s holds generation %d, want %d", gen, snap.NextLeaseID, want)
		}
	}
	if _, err := os.Stat(path + ".3"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("generation beyond keep exists: %v", err)
	}

	snap, src, err := LoadSnapshotNewestLimit(path, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NextLeaseID != 4 || src != path {
		t.Fatalf("newest = generation %d from %s, want 4 from %s", snap.NextLeaseID, src, path)
	}
}

func TestSaveSnapshotRotateKeepOne(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ctrl.snap")
	for id := uint64(1); id <= 3; id++ {
		if err := SaveSnapshotRotate(path, rotSnap(id), 1); err != nil {
			t.Fatal(err)
		}
	}
	if snap, err := LoadSnapshot(path); err != nil || snap.NextLeaseID != 3 {
		t.Fatalf("keep=1 snapshot = (%+v, %v), want generation 3", snap, err)
	}
	if _, err := os.Stat(path + ".1"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("keep=1 left a rotated generation: %v", err)
	}
}

func TestLoadSnapshotNewestFallsBackPastDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ctrl.snap")
	for id := uint64(1); id <= 3; id++ {
		if err := SaveSnapshotRotate(path, rotSnap(id), 3); err != nil {
			t.Fatal(err)
		}
	}

	// Damage the newest file: restore falls back to path.1.
	corrupt(t, path)
	snap, src, err := LoadSnapshotNewestLimit(path, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NextLeaseID != 2 || src != path+".1" {
		t.Fatalf("fallback = generation %d from %s, want 2 from %s.1", snap.NextLeaseID, src, path)
	}

	// Damage path.1 too: path.2 still restores.
	corrupt(t, path+".1")
	snap, src, err = LoadSnapshotNewestLimit(path, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NextLeaseID != 1 || src != path+".2" {
		t.Fatalf("second fallback = generation %d from %s, want 1 from %s.2", snap.NextLeaseID, src, path)
	}

	// Every generation damaged: a descriptive error naming the newest
	// file's failure, not fs.ErrNotExist (the files exist, they are bad).
	corrupt(t, path+".2")
	_, _, err = LoadSnapshotNewestLimit(path, 0, 3)
	if err == nil || !strings.Contains(err.Error(), "no valid generation") {
		t.Fatalf("all-damaged error = %v, want a no-valid-generation error", err)
	}
	if errors.Is(err, fs.ErrNotExist) {
		t.Fatal("all-damaged error claims the snapshot does not exist")
	}
}

func TestLoadSnapshotNewestAllMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.snap")
	_, _, err := LoadSnapshotNewestLimit(path, 0, 3)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing-set error = %v, want fs.ErrNotExist (fresh deployment)", err)
	}
}
