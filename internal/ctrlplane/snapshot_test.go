package ctrlplane

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/placement"
)

// snapFixture builds a representative snapshot: two leases (one owned,
// one legacy), two machines (one with an adopted remap and baseline,
// one still virgin).
func snapFixture() *Snapshot {
	base := comm.NewMatrix(4)
	base.AddSym(0, 1, 1<<20)
	base.AddSym(2, 3, 512.5)
	return &Snapshot{
		NextLeaseID: 7,
		Leases: []LeaseRecord{
			{Lease: Lease{ID: 3, Machine: "fig2", Peer: "alpha", TaskBase: 0, TaskCount: 2, Token: 0xdeadbeef}, LastSeq: 41},
			{Lease: Lease{ID: 7, Machine: "fig2", Peer: "beta", TaskBase: 2, TaskCount: 2}, LastSeq: 9},
		},
		Machines: []MachineRecord{
			{
				Name:  "fig2",
				Order: 4,
				Epoch: 5,
				Latest: &Remap{
					Machine: "fig2",
					Epoch:   5,
					Drift:   0.375,
					Assignment: &placement.Assignment{
						Strategy:  "treematch",
						ComputePU: []int{0, 2, 4, 6},
						ControlPU: []int{1, 3, 5, 7},
						CoreOf:    []int{0, 1, 2, 3},
					},
				},
				Base: base,
			},
			{Name: "lonely", Order: 8, Epoch: 0},
		},
	}
}

// TestSnapshotRoundTrip: encode/decode is the identity at every
// supported version (modulo what old versions do not carry).
func TestSnapshotRoundTrip(t *testing.T) {
	for _, version := range []int{SnapshotVersionLeases, SnapshotVersionBaseline, SnapshotVersionSparse} {
		want := snapFixture()
		data, err := EncodeSnapshot(want, version)
		if err != nil {
			t.Fatalf("v%d encode: %v", version, err)
		}
		got, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatalf("v%d decode: %v", version, err)
		}
		if version < SnapshotVersionBaseline {
			// Version 1 does not persist baselines; erase them from the
			// expectation.
			want.Machines[0].Base = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("v%d round trip changed the snapshot:\n got %+v\nwant %+v", version, got, want)
		}
	}
}

// TestSnapshotRejectsDamage: every truncation and every bit flip of a
// valid snapshot must decode to an error, never to silently wrong
// state — the daemon's start-fresh path depends on damage being
// detected.
func TestSnapshotRejectsDamage(t *testing.T) {
	data, err := EncodeSnapshot(snapFixture(), SnapshotVersion)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded cleanly", cut, len(data))
		}
	}
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(data)
			mut[i] ^= 1 << bit
			if _, err := DecodeSnapshot(mut); err == nil {
				t.Fatalf("flipping bit %d of byte %d decoded cleanly", bit, i)
			}
		}
	}
}

func TestSnapshotRejectsUnknownVersion(t *testing.T) {
	data, err := EncodeSnapshot(snapFixture(), SnapshotVersion)
	if err != nil {
		t.Fatal(err)
	}
	// Patch the version byte and fix the checksum so only the version
	// skew is wrong.
	mut := bytes.Clone(data[:len(data)-4])
	mut[len(snapshotMagic)] = SnapshotVersion + 1
	mut = binary.BigEndian.AppendUint32(mut, crc32.ChecksumIEEE(mut))
	if _, err := DecodeSnapshot(mut); err == nil {
		t.Fatal("future version decoded cleanly")
	}
}

// TestSaveLoadSnapshot: the file round trip, plus the two failure
// shapes the daemon distinguishes — absent (fresh start, silent) and
// corrupt (fresh start, warned).
func TestSaveLoadSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ctrl.snap")
	if _, err := LoadSnapshot(path); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want fs.ErrNotExist", err)
	}
	want := snapFixture()
	if err := SaveSnapshot(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("file round trip changed the snapshot")
	}
	// Atomic write leaves no temp litter next to the snapshot.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot dir has %d entries, want just the snapshot", len(entries))
	}
	// Corrupt the tail: load must fail, not hand back damaged state.
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("corrupt snapshot loaded cleanly")
	}
}

// TestControllerSnapshotRestore: a controller that adopted a mapping
// snapshots, a fresh controller restores, and the fleet resumes —
// same lease IDs, same epoch counter, primed reconciler.
func TestControllerSnapshotRestore(t *testing.T) {
	build := func() *Controller {
		t.Helper()
		ctrl, err := NewController(testFleet(t), testConfig())
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	ctrl := build()
	lease, err := ctrl.RegisterToken("", "alpha", 0, ctrlTasks, 0xfeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Report(lease.ID, 1, ringMatrix(ctrlTasks, 1<<20)); err != nil {
		t.Fatal(err)
	}
	rep, err := ctrl.Epoch("")
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || !rep.Adopted {
		t.Fatal("priming epoch did not adopt")
	}
	snap := ctrl.Snapshot()

	restored := build()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// The lease survives under its old ID with its sequence history:
	// a retransmit of the already-merged window is accepted and deduped.
	if err := restored.Report(lease.ID, 1, ringMatrix(ctrlTasks, 1<<20)); err != nil {
		t.Fatalf("report on restored lease: %v", err)
	}
	ev := restored.Latest("")
	if ev == nil || ev.Epoch != ctrl.Latest("").Epoch {
		t.Fatalf("restored latest = %+v, want the snapshotted adoption", ev)
	}
	// The deduped retransmit merged no traffic, so the restored (and
	// primed) reconciler sees an idle epoch — no spurious re-adoption.
	rep2, err := restored.Epoch("")
	if err != nil {
		t.Fatal(err)
	}
	if rep2 != nil && rep2.Adopted {
		t.Fatalf("restored controller re-adopted on a deduped retransmit: %+v", rep2)
	}
	// The epoch counter resumes: the next adoption is stamped above the
	// snapshotted epoch, not back at 1.
	if err := restored.Report(lease.ID, 2, clusterMatrix(ctrlTasks, 4, 1<<20)); err != nil {
		t.Fatal(err)
	}
	rep3, err := restored.Epoch("")
	if err != nil {
		t.Fatal(err)
	}
	if rep3 == nil || !rep3.Adopted {
		t.Fatalf("golden shift after restore = %+v, want adoption", rep3)
	}
	if next := restored.Latest(""); next.Epoch <= ev.Epoch {
		t.Fatalf("post-restore adoption epoch %d did not advance past snapshotted %d", next.Epoch, ev.Epoch)
	}
	// Ownership survives too: a stranger still cannot displace the lease.
	if _, err := restored.RegisterToken("", "alpha", 0, ctrlTasks, 0xbad); err == nil {
		t.Fatal("restored owned lease displaced by the wrong token")
	}
}

// FuzzSnapshotDecode: the decoder must reject or round-trip, never
// panic, whatever bytes are on disk.
func FuzzSnapshotDecode(f *testing.F) {
	for _, version := range []int{SnapshotVersionLeases, SnapshotVersionBaseline, SnapshotVersionSparse} {
		data, err := EncodeSnapshot(snapFixture(), version)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// Accepted input must re-encode: decode is only allowed to
		// produce snapshots the encoder understands.
		if _, err := EncodeSnapshot(s, SnapshotVersion); err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
	})
}
