// Package ctrlplane is the daemon-side fleet control plane: it gives
// remote peers a cross-process task identity, merges their observed-
// traffic windows into one fleet-wide matrix per machine, runs the
// adaptive reconciler over the merged view, and publishes adopted
// remaps to subscribers.
//
// The paper's placement loop — measure task affinity, map it onto the
// hardware tree, bind — closes in-process through placement.Reconciler.
// This package closes it across processes: each client process leases
// a contiguous slice of a machine's global task space, ships the
// traffic it measured among its own tasks, and the daemon sees the
// union — the matrix no single process could observe. The wire face
// (opFleetLease / opObservedReport / opWatchRemaps, schema v5) lives
// in internal/orwlnet; this package is transport-agnostic.
package ctrlplane

import (
	"fmt"
	"sync"
	"time"

	"orwlplace/internal/comm"
)

// Lease is a registered (machine, peer, task-range) identity: the
// peer's tasks [TaskBase, TaskBase+TaskCount) name rows/columns of the
// machine's fleet-wide observed matrix. The ID is server-assigned and
// names the lease in subsequent observed reports.
type Lease struct {
	ID        uint64
	Machine   string
	Peer      string
	TaskBase  int
	TaskCount int
	// Token is the ownership secret presented at registration. A lease
	// registered with a non-zero token can only be replaced by a
	// registration presenting the same token; zero means unowned
	// (legacy clients), which any later registration may displace.
	Token uint64
}

// DefaultMaxLeaseTasks bounds a single lease's task range — and with
// it the order of the merged matrix a hostile registration could force
// the daemon to allocate — when the collector is not configured with
// its own bound. It matches the wire codec's dense matrix-order
// ceiling; deployments whose peers speak the sparse delta encoding can
// raise it (orwlnetd -max-lease-tasks) now that the merged fleet
// matrix is O(nnz) rather than O(n²).
const DefaultMaxLeaseTasks = 2896

// leaseState is a live lease plus its liveness bookkeeping.
type leaseState struct {
	Lease
	lastReport time.Time
	lastSeq    uint64 // highest observed-report sequence merged

	// Report-rate token bucket (only consulted when the collector has a
	// report limit configured).
	bucket     float64
	lastRefill time.Time
}

// machineState accumulates one machine's merged observed traffic.
type machineState struct {
	// pending holds the deltas merged since the last Window call, in
	// the representation matching the order (sparse above the dense
	// threshold — the fleet matrix of a 10k-task machine is O(nnz)).
	// Its order is the machine's global task-space size (it grows when
	// a lease extends the space and never shrinks, so the reconciler's
	// drift baseline stays comparable).
	pending comm.Affinity
	order   int
}

// Collector merges per-peer observed-traffic windows into per-machine
// fleet-wide matrices. Reports are deltas (each covers the traffic
// since the peer's previous report), so merging is pure addition at
// the lease's task offset; Window drains the merged delta, giving the
// consumer (the Controller's reconciler) the same disjoint-epoch
// semantics placement.ObservedWindow gives in-process.
//
// Peers that stop reporting are evicted after StaleAfter: their lease
// dies and later reports under it are refused, forcing a re-register
// — a crashed client cannot pin fleet state forever.
type Collector struct {
	staleAfter time.Duration
	now        func() time.Time // injectable for eviction tests

	// reportRate/reportBurst configure the per-lease report token
	// bucket; rate 0 disables limiting.
	reportRate  float64
	reportBurst float64

	// maxTasks bounds lease task ranges; 0 means DefaultMaxLeaseTasks.
	maxTasks int

	mu       sync.Mutex
	nextID   uint64
	leases   map[uint64]*leaseState
	machines map[string]*machineState

	reports   uint64
	evicted   uint64
	throttled uint64
	conflicts uint64
}

// DefaultStaleAfter is the lease staleness window when the caller
// passes zero: generous enough for second-scale reporting cadences,
// short enough that a dead peer disappears within a minute.
const DefaultStaleAfter = time.Minute

// NewCollector builds a collector evicting leases idle for staleAfter
// (0 = DefaultStaleAfter, negative = never evict).
func NewCollector(staleAfter time.Duration) *Collector {
	if staleAfter == 0 {
		staleAfter = DefaultStaleAfter
	}
	return &Collector{
		staleAfter: staleAfter,
		now:        time.Now,
		leases:     make(map[uint64]*leaseState),
		machines:   make(map[string]*machineState),
	}
}

// SetReportLimit configures the per-lease observed-report token
// bucket: each lease may sustain rate reports/sec with bursts up to
// burst. Rate <= 0 disables limiting (the default). Call before the
// collector starts taking reports.
func (c *Collector) SetReportLimit(rate, burst float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if burst < 1 {
		burst = 1
	}
	c.reportRate = rate
	c.reportBurst = burst
}

// SetMaxLeaseTasks bounds lease task ranges (n <= 0 restores
// DefaultMaxLeaseTasks). Call before the collector starts taking
// registrations; snapshot restores validate against the same bound
// (DecodeSnapshotLimit), so configure both consistently.
func (c *Collector) SetMaxLeaseTasks(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n <= 0 {
		n = 0
	}
	c.maxTasks = n
}

// MaxLeaseTasks returns the effective lease task-range bound.
func (c *Collector) MaxLeaseTasks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxTasksLocked()
}

func (c *Collector) maxTasksLocked() int {
	if c.maxTasks > 0 {
		return c.maxTasks
	}
	return DefaultMaxLeaseTasks
}

// Register leases the task range [base, base+count) of machine's
// global task space to peer and returns the lease, with no ownership
// token — the legacy, displaceable registration. See RegisterToken.
func (c *Collector) Register(machine, peer string, base, count int) (Lease, error) {
	return c.RegisterToken(machine, peer, base, count, 0)
}

// RegisterToken leases the task range [base, base+count) of machine's
// global task space to peer and returns the lease. Re-registering an
// existing (machine, peer) pair — a client that reconnected — replaces
// the old lease, so a bounced process does not leak identities; but a
// live lease carrying a non-zero ownership token is only replaceable
// by a registration presenting the same token, so one peer cannot
// displace another's lease just by naming it. Ranges of different
// peers may overlap; their traffic merges additively.
func (c *Collector) RegisterToken(machine, peer string, base, count int, token uint64) (Lease, error) {
	if machine == "" || peer == "" {
		return Lease{}, fmt.Errorf("ctrlplane: lease needs a machine and a peer name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if max := c.maxTasksLocked(); base < 0 || count <= 0 || base+count > max {
		return Lease{}, fmt.Errorf("ctrlplane: lease task range [%d,%d) out of bounds (max %d tasks)", base, base+count, max)
	}
	c.evictStaleLocked()
	// Replace a previous incarnation of the same peer — unless the live
	// lease is owned and the caller cannot prove ownership.
	for id, ls := range c.leases {
		if ls.Machine == machine && ls.Peer == peer {
			if ls.Token != 0 && ls.Token != token {
				c.conflicts++
				return Lease{}, fmt.Errorf("ctrlplane: lease conflict: peer %q on machine %q is held by another owner", peer, machine)
			}
			delete(c.leases, id)
		}
	}
	c.nextID++
	now := c.now()
	ls := &leaseState{
		Lease:      Lease{ID: c.nextID, Machine: machine, Peer: peer, TaskBase: base, TaskCount: count, Token: token},
		lastReport: now,
		bucket:     c.reportBurst,
		lastRefill: now,
	}
	c.leases[ls.ID] = ls
	ms := c.machineLocked(machine)
	if base+count > ms.order {
		ms.order = base + count
	}
	return ls.Lease, nil
}

func (c *Collector) machineLocked(machine string) *machineState {
	ms := c.machines[machine]
	if ms == nil {
		ms = &machineState{}
		c.machines[machine] = ms
	}
	return ms
}

// Report merges one observed window (a delta since the peer's previous
// report) into the lease's machine. The delta's order must equal the
// lease's task count; cell (i, j) lands at (base+i, base+j). seq is
// the peer's report sequence number: a sequence at or below the last
// merged one is dropped without error (a retransmit after reconnect
// must not double-count traffic).
func (c *Collector) Report(leaseID, seq uint64, delta *comm.Matrix) error {
	if delta == nil {
		return fmt.Errorf("ctrlplane: nil observed window")
	}
	return c.ReportAffinity(leaseID, seq, delta)
}

// ReportAffinity is Report on the representation-independent surface:
// a sparse delta merges in O(nnz), never materializing the peer's
// task range densely.
func (c *Collector) ReportAffinity(leaseID, seq uint64, delta comm.Affinity) error {
	if delta == nil {
		return fmt.Errorf("ctrlplane: nil observed window")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictStaleLocked()
	ls, ok := c.leases[leaseID]
	if !ok {
		return fmt.Errorf("ctrlplane: unknown lease %d (expired or never registered — re-register)", leaseID)
	}
	if delta.Order() != ls.TaskCount {
		return fmt.Errorf("ctrlplane: observed window order %d does not match lease %d task count %d", delta.Order(), leaseID, ls.TaskCount)
	}
	now := c.now()
	ls.lastReport = now // a throttled peer is still alive
	if c.reportRate > 0 {
		ls.bucket += now.Sub(ls.lastRefill).Seconds() * c.reportRate
		if ls.bucket > c.reportBurst {
			ls.bucket = c.reportBurst
		}
		ls.lastRefill = now
		if ls.bucket < 1 {
			c.throttled++
			return fmt.Errorf("ctrlplane: rate limit: lease %d exceeded %g reports/sec (burst %g) — back off and retry", leaseID, c.reportRate, c.reportBurst)
		}
		ls.bucket--
	}
	if seq <= ls.lastSeq && seq != 0 {
		return nil // duplicate or reordered resend
	}
	ls.lastSeq = seq
	ms := c.machineLocked(ls.Machine)
	c.growPendingLocked(ms)
	base := ls.TaskBase
	delta.ForEach(func(i, j int, v float64) {
		ms.pending.Add(base+i, base+j, v)
	})
	c.reports++
	return nil
}

// growPendingLocked (re)creates the machine's pending accumulator at
// the current global order, carrying over already-merged cells.
func (c *Collector) growPendingLocked(ms *machineState) {
	if ms.pending != nil && ms.pending.Order() >= ms.order {
		return
	}
	grown := comm.NewAffinity(ms.order)
	if ms.pending != nil {
		ms.pending.ForEach(func(i, j int, v float64) {
			grown.Set(i, j, v)
		})
	}
	ms.pending = grown
}

// Window drains and returns the machine's merged observed delta since
// the previous Window call — the fleet-wide analogue of one
// TrafficWindow epoch, materialized densely for legacy consumers.
// The returned matrix always has the machine's current global order;
// nil means no lease has touched the machine yet. Large machines
// should drain via WindowAffinity instead.
func (c *Collector) Window(machine string) *comm.Matrix {
	a := c.WindowAffinity(machine)
	if a == nil {
		return nil
	}
	if m, ok := a.(*comm.Matrix); ok {
		return m
	}
	return a.Dense()
}

// WindowAffinity drains and returns the machine's merged observed
// delta in its native representation — sparse above the dense
// threshold, so a 10k-task fleet window is O(nnz) end to end. Nil
// means no lease has touched the machine yet.
func (c *Collector) WindowAffinity(machine string) comm.Affinity {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictStaleLocked()
	ms := c.machines[machine]
	if ms == nil || ms.order == 0 {
		return nil
	}
	c.growPendingLocked(ms)
	w := ms.pending
	ms.pending = nil
	return w
}

// Order returns the machine's current global task-space size (0 while
// no lease has touched it).
func (c *Collector) Order(machine string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	ms := c.machines[machine]
	if ms == nil {
		return 0
	}
	return ms.order
}

// Leases snapshots the live leases of one machine ("" = all machines),
// in no particular order.
func (c *Collector) Leases(machine string) []Lease {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictStaleLocked()
	var out []Lease
	for _, ls := range c.leases {
		if machine == "" || ls.Machine == machine {
			out = append(out, ls.Lease)
		}
	}
	return out
}

// Counters returns (reports merged, live leases, stale evictions).
func (c *Collector) Counters() (reports, peers, evicted uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictStaleLocked()
	return c.reports, uint64(len(c.leases)), c.evicted
}

// Abuse returns the hostile-peer counters: reports refused by the rate
// limit and registrations refused by lease-ownership conflicts.
func (c *Collector) Abuse() (throttled, conflicts uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.throttled, c.conflicts
}

// evictStaleLocked drops leases whose peer has not reported within
// staleAfter. The task space they claimed stays claimed (orders never
// shrink — the reconciler's baseline must stay comparable), only the
// identity dies.
func (c *Collector) evictStaleLocked() {
	if c.staleAfter < 0 {
		return
	}
	cutoff := c.now().Add(-c.staleAfter)
	for id, ls := range c.leases {
		if ls.lastReport.Before(cutoff) {
			delete(c.leases, id)
			c.evicted++
		}
	}
}
