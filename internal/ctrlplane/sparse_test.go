package ctrlplane

// Tests for the sparse-first control plane surfaces added for the 10k
// task scale-up: version-3 snapshots (sparse baselines + persisted
// partitions), the configurable lease-task bound, and the collector's
// O(nnz) merge path.

import (
	"reflect"
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/placement"
	"orwlplace/internal/treematch"
)

// sparseFixture builds a snapshot whose machine lives above the dense
// threshold: a sparse baseline and a partitioned assignment — the state
// a large-scale reconciler would persist.
func sparseFixture(n int) *Snapshot {
	base := comm.NewSparse(n)
	base.AddSym(0, 1, 1<<20)
	base.AddSym(n-2, n-1, 42.5)
	base.Set(5, n/2, 7)
	compute := make([]int, n)
	for i := range compute {
		compute[i] = i % 64
	}
	tasksA := make([]int, n/2)
	tasksB := make([]int, n-n/2)
	for i := range tasksA {
		tasksA[i] = i
	}
	for i := range tasksB {
		tasksB[i] = n/2 + i
	}
	return &Snapshot{
		NextLeaseID: 3,
		Leases: []LeaseRecord{
			{Lease: Lease{ID: 2, Machine: "big", Peer: "p", TaskBase: 0, TaskCount: n}, LastSeq: 4},
		},
		Machines: []MachineRecord{{
			Name:  "big",
			Order: n,
			Epoch: 9,
			Latest: &Remap{
				Machine: "big",
				Epoch:   9,
				Drift:   0.5,
				Assignment: &placement.Assignment{
					Strategy:  "treematch",
					ComputePU: compute,
					Partitions: &treematch.Partitioning{Parts: []treematch.Partition{
						{Depth: 1, Object: 0, Tasks: tasksA},
						{Depth: 1, Object: 1, Tasks: tasksB},
					}},
				},
			},
			Base: base,
		}},
	}
}

// sameAffinity compares two affinities entry-wise regardless of
// representation.
func sameAffinity(t *testing.T, got, want comm.Affinity) {
	t.Helper()
	if got == nil || want == nil {
		if got != want {
			t.Fatalf("affinity = %v, want %v", got, want)
		}
		return
	}
	if got.Order() != want.Order() || got.NNZ() != want.NNZ() {
		t.Fatalf("affinity order/nnz = %d/%d, want %d/%d", got.Order(), got.NNZ(), want.Order(), want.NNZ())
	}
	want.ForEach(func(i, j int, v float64) {
		if g := got.At(i, j); g != v {
			t.Fatalf("affinity(%d,%d) = %g, want %g", i, j, g, v)
		}
	})
}

// TestSnapshotSparseRoundTrip: a version-3 file carries a sparse
// baseline and the partition structure through encode/decode without
// ever materializing order² state on disk.
func TestSnapshotSparseRoundTrip(t *testing.T) {
	n := comm.DenseOrderThreshold + 88
	want := sparseFixture(n)
	data, err := EncodeSnapshot(want, SnapshotVersionSparse)
	if err != nil {
		t.Fatal(err)
	}
	// The file must be O(nnz): a dense order-600 baseline alone would be
	// 600²·8 ≈ 2.9 MB.
	if len(data) > 64<<10 {
		t.Fatalf("sparse snapshot is %d bytes — looks densified", len(data))
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	sameAffinity(t, got.Machines[0].Base, want.Machines[0].Base)
	if _, ok := got.Machines[0].Base.(*comm.Sparse); !ok {
		t.Fatalf("decoded baseline is %T, want *comm.Sparse above the dense threshold", got.Machines[0].Base)
	}
	gp := got.Machines[0].Latest.Assignment.Partitions
	wp := want.Machines[0].Latest.Assignment.Partitions
	if !reflect.DeepEqual(gp, wp) {
		t.Fatalf("partitions changed in the round trip:\n got %+v\nwant %+v", gp, wp)
	}
	if !reflect.DeepEqual(got.Leases, want.Leases) {
		t.Fatal("leases changed in the round trip")
	}
}

// TestSnapshotV2DropsPartitions: encoding at version 2 must stay
// readable by version-2 daemons, which means no partition records and a
// dense baseline.
func TestSnapshotV2DropsPartitions(t *testing.T) {
	want := sparseFixture(comm.DenseOrderThreshold + 88)
	data, err := EncodeSnapshot(want, SnapshotVersionBaseline)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Machines[0].Latest.Assignment.Partitions != nil {
		t.Fatal("version-2 encoding leaked the partition structure")
	}
	sameAffinity(t, got.Machines[0].Base, want.Machines[0].Base)
	if _, ok := got.Machines[0].Base.(*comm.Matrix); !ok {
		t.Fatalf("version-2 baseline decoded as %T, want dense *comm.Matrix", got.Machines[0].Base)
	}
}

// TestSnapshotDecodeLimit: the decoder enforces the lease-task bound it
// is given — the default rejects a fleet beyond DefaultMaxLeaseTasks,
// and a daemon running with a raised -max-lease-tasks decodes its own
// larger snapshots with the same raised bound.
func TestSnapshotDecodeLimit(t *testing.T) {
	big := DefaultMaxLeaseTasks + 1200
	s := sparseFixture(big)
	data, err := EncodeSnapshot(s, SnapshotVersionSparse)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(data); err == nil {
		t.Fatalf("order-%d snapshot decoded under the default %d-task bound", big, DefaultMaxLeaseTasks)
	}
	got, err := DecodeSnapshotLimit(data, big)
	if err != nil {
		t.Fatalf("decode with matching bound: %v", err)
	}
	if got.Machines[0].Order != big {
		t.Fatalf("order = %d, want %d", got.Machines[0].Order, big)
	}
	if _, err := DecodeSnapshotLimit(data, big-1); err == nil {
		t.Fatal("snapshot decoded under a bound smaller than its lease range")
	}
}

// TestCollectorRaisedLeaseBound: the registration bound is
// configurable; raised, the collector accepts larger fleets and merges
// sparse deltas at lease offsets without densifying.
func TestCollectorRaisedLeaseBound(t *testing.T) {
	c := NewCollector(-1)
	if got := c.MaxLeaseTasks(); got != DefaultMaxLeaseTasks {
		t.Fatalf("default bound = %d, want %d", got, DefaultMaxLeaseTasks)
	}
	if _, err := c.Register("m", "p", 0, DefaultMaxLeaseTasks+1); err == nil {
		t.Fatal("lease beyond the default bound registered")
	}
	c.SetMaxLeaseTasks(8192)
	if got := c.MaxLeaseTasks(); got != 8192 {
		t.Fatalf("raised bound = %d, want 8192", got)
	}
	a, err := c.Register("m", "p", 0, 4096)
	if err != nil {
		t.Fatalf("lease under the raised bound: %v", err)
	}
	b, err := c.Register("m", "q", 4096, 100)
	if err != nil {
		t.Fatal(err)
	}

	// Sparse deltas merge at the lease offsets, O(nnz) end to end.
	d := comm.NewSparse(4096)
	d.Set(1, 2, 10)
	d.Set(4000, 4095, 5)
	if err := c.ReportAffinity(a.ID, 1, d); err != nil {
		t.Fatal(err)
	}
	if err := c.ReportAffinity(b.ID, 1, delta(100, 0, 3, 20)); err != nil {
		t.Fatal(err)
	}
	w := c.WindowAffinity("m")
	if w == nil || w.Order() != 4196 {
		t.Fatalf("window order = %v, want 4196", w)
	}
	if _, ok := w.(*comm.Sparse); !ok {
		t.Fatalf("fleet window is %T above the dense threshold, want *comm.Sparse", w)
	}
	if got := w.At(1, 2); got != 10 {
		t.Errorf("fleet(1,2) = %g, want 10", got)
	}
	if got := w.At(4000, 4095); got != 5 {
		t.Errorf("fleet(4000,4095) = %g, want 5", got)
	}
	if got := w.At(4096, 4099); got != 20 {
		t.Errorf("fleet(4096,4099) = %g, want 20 (dense delta at the lease offset)", got)
	}
	if got := w.NNZ(); got != 3 {
		t.Errorf("fleet nnz = %d, want 3", got)
	}
	// The window drains like the dense path.
	if w := c.WindowAffinity("m"); w == nil || w.Total() != 0 || w.Order() != 4196 {
		t.Fatalf("drained window = %v, want empty order-4196", w)
	}

	// Resetting to 0 restores the default bound.
	c.SetMaxLeaseTasks(0)
	if got := c.MaxLeaseTasks(); got != DefaultMaxLeaseTasks {
		t.Fatalf("reset bound = %d, want %d", got, DefaultMaxLeaseTasks)
	}
}
