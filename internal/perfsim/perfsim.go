// Package perfsim models the execution of a placed multi-threaded
// workload on a NUMA machine. It substitutes for the paper's physical
// testbeds: Go cannot pin goroutines to cores, so the performance
// effects of thread placement — shared-cache communication, NUMA
// latency and bandwidth, hyperthread contention, OS migrations — are
// computed from an explicit analytical model instead of measured with
// hardware counters.
//
// The model, in one paragraph: per iteration each thread owes
// ComputeCycles of work (multiplied by a contention factor when compute
// threads share a physical core) and streams MemoryTraffic bytes
// through the cache hierarchy; streaming is prefetched, so it overlaps
// compute and costs bandwidth, not latency. Communication between
// threads is synchronisation-bound and costs latency per cache line —
// an L2/L3 access when the peers share a cache, a (remote) DRAM access
// otherwise. Aggregate traffic is pushed through two bandwidth channels
// per NUMA node (local DRAM and the interconnect link); the iteration
// time is the maximum of the slowest thread and the busiest channel
// (steady-state throughput of a pipelined or bulk-synchronous
// execution), or the sum over stages for fork-join runtimes. Unbound
// executions are placed by a simulated OS policy (dynsched.go) that
// adds migrations, their cache-refill traffic and a cache-disruption
// inflation of all private traffic.
//
// Counters (L3 misses, stalled front-end cycles, context switches, CPU
// migrations) are accumulated from the same quantities, so the tables
// of the paper stay consistent with its figures.
package perfsim

import (
	"fmt"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

// CacheLine is the modeled cache line size in bytes.
const CacheLine = 64

// Model constants; see the package comment for their role.
const (
	// controlShareFactor is the per-control-thread slowdown of a
	// compute thread sharing its core (control threads are mostly
	// blocked).
	controlShareFactor = 0.05
	// unboundControlNoiseMax scales the compute-time noise caused by
	// control threads left to the OS: they time-slice with the compute
	// threads, the more of them relative to the machine the worse.
	unboundControlNoiseMax = 0.25
	// boundControlSwitchDiscount scales context switches when control
	// threads have a dedicated PU.
	boundControlSwitchDiscount = 0.9
	// coldMissFraction is the compulsory-miss floor of private traffic.
	coldMissFraction = 0.02
	// commMLP is the memory-level parallelism achieved on
	// communication traffic, which is synchronisation-bound.
	commMLP = 2
	// perCoreStreamGBps is the streaming bandwidth one core can draw
	// from its local memory controller (prefetched, latency hidden).
	perCoreStreamGBps = 10
	// l3StreamGBps is the per-core bandwidth of L3-resident traffic.
	l3StreamGBps = 30
	// unboundWakeupSeconds is the scheduler latency of waking an
	// unbound control thread. In a pipelined execution every
	// grant/release handoff sits on the critical path, so these
	// wake-ups throttle the whole pipeline — one reason the paper's
	// strategy of parking control threads on hyperthread siblings or
	// spare cores pays off.
	unboundWakeupSeconds = 5e-6
)

// Thread describes one simulated compute thread.
type Thread struct {
	// ComputeCycles is the pure computation per iteration, in cycles.
	ComputeCycles float64
	// WorkingSet is the per-thread resident data in bytes; it drives
	// cache-capacity misses and migration refill costs.
	WorkingSet float64
	// MemoryTraffic is the private data volume in bytes that the thread
	// moves through the cache hierarchy each iteration.
	MemoryTraffic float64
}

// Workload is a placement-independent description of an application
// run.
type Workload struct {
	Name    string
	Threads []Thread
	// Comm holds the bytes exchanged between thread pairs per
	// iteration.
	Comm *comm.Matrix
	// Iterations is the number of iterations (or frames) executed.
	Iterations int
	// ControlThreads is the number of runtime control threads deployed
	// alongside the compute threads (ORWL lock managers; zero for
	// OpenMP-style runtimes).
	ControlThreads int
	// ControlEventsPerIter is the number of control-thread wake-ups per
	// iteration; each contributes a context switch.
	ControlEventsPerIter float64
	// StartupContextSwitches accounts for thread creation and runtime
	// initialisation.
	StartupContextSwitches float64
	// MasterAlloc is true when the shared data is allocated (first
	// touched) by a master thread before the parallel execution, as in
	// the OpenMP/MKL baselines: private DRAM traffic is then partly
	// remote even under a static binding. ORWL tasks allocate their
	// own locations, so their workloads leave this false.
	MasterAlloc bool
	// Stages, when non-nil, groups thread indexes into sequential
	// fork-join phases: the iteration time is the sum over stages of
	// the slowest member, instead of the global maximum of a pipelined
	// steady state.
	Stages [][]int
}

// Validate checks internal consistency.
func (w *Workload) Validate() error {
	if len(w.Threads) == 0 {
		return fmt.Errorf("perfsim: workload %q has no threads", w.Name)
	}
	if w.Comm == nil || w.Comm.Order() != len(w.Threads) {
		return fmt.Errorf("perfsim: workload %q: comm matrix order mismatch", w.Name)
	}
	if w.Iterations <= 0 {
		return fmt.Errorf("perfsim: workload %q: iterations must be positive", w.Name)
	}
	if w.Stages != nil {
		seen := make([]bool, len(w.Threads))
		for _, stage := range w.Stages {
			for _, t := range stage {
				if t < 0 || t >= len(w.Threads) {
					return fmt.Errorf("perfsim: workload %q: stage thread %d out of range", w.Name, t)
				}
				if seen[t] {
					return fmt.Errorf("perfsim: workload %q: thread %d in two stages", w.Name, t)
				}
				seen[t] = true
			}
		}
		for t, s := range seen {
			if !s {
				return fmt.Errorf("perfsim: workload %q: thread %d in no stage", w.Name, t)
			}
		}
	}
	return nil
}

// Placement states where each thread runs.
type Placement struct {
	// ComputePU[i] is the logical PU of thread i. Ignored when Dynamic
	// is set.
	ComputePU []int
	// ControlPU[i] is the PU the control threads attached to thread i
	// are bound to, or -1 when unbound. May be nil.
	ControlPU []int
	// LocalAlloc is true when memory is first-touched by bound threads
	// (so private DRAM traffic stays on the local node) — unless the
	// workload declares MasterAlloc.
	LocalAlloc bool
	// Dynamic, when non-nil, lets the simulated OS scheduler place (and
	// migrate) threads instead of a static binding.
	Dynamic *DynamicPolicy
}

// Result aggregates the modeled run.
type Result struct {
	// Seconds is the modeled wall-clock time.
	Seconds float64
	// L3Misses counts cache lines served from beyond L3.
	L3Misses float64
	// StalledCycles counts front-end stall cycles over all threads.
	StalledCycles float64
	// ContextSwitches and CPUMigrations mirror the OS counters of
	// Tables II-IV.
	ContextSwitches float64
	CPUMigrations   float64
	// CrossNUMABytes is the total traffic crossing NUMA nodes.
	CrossNUMABytes float64
	// BottleneckThread is the index of the slowest thread (diagnostic).
	BottleneckThread int
}

// GFLOPS converts the result to a rate given the total floating-point
// operations of the run.
func (r *Result) GFLOPS(totalFlops float64) float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return totalFlops / r.Seconds / 1e9
}

// FPS converts the result to frames per second given the total frames.
func (r *Result) FPS(frames int) float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(frames) / r.Seconds
}

// Simulate runs the model for a workload under a placement on the given
// machine.
func Simulate(top *topology.Topology, w *Workload, pl *Placement) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	n := len(w.Threads)
	attrs := top.Attrs
	clockHz := attrs.ClockMHz * 1e6

	computePU := pl.ComputePU
	remoteAllocFrac := 0.0
	if !pl.LocalAlloc || w.MasterAlloc {
		remoteAllocFrac = 0.5
	}
	trafficInflation := 1.0
	var migBytesPerIter float64 // per-thread amortized migration refill
	var migrations float64
	var preemptSwitches float64
	if pl.Dynamic != nil {
		dyn := pl.Dynamic.withDefaults()
		var err error
		computePU, err = dynamicPlacement(top, n, dyn)
		if err != nil {
			return nil, err
		}
		// Interference from the OS scheduler grows with machine load: a
		// lone unbound thread keeps its cache and node, a saturated
		// machine migrates and evicts constantly (this is why the
		// unbound curves of Fig. 4/5 only detach from the bound ones
		// beyond one or two sockets).
		load := (float64(n) + float64(w.ControlThreads)/4) / float64(top.NumCores())
		if load > 1 {
			load = 1
		}
		remoteAllocFrac = dyn.RemoteAllocFraction * load
		trafficInflation = 1 + (dyn.TrafficInflation-1)*load
		waves := float64(w.Iterations) / float64(dyn.MigrationEvery)
		allThreads := float64(n + w.ControlThreads)
		migrations = waves * allThreads * dyn.MigrationFraction * (0.2 + 0.8*load)
		preemptSwitches = migrations // every migration implies a switch
		var avgWS float64
		for _, th := range w.Threads {
			avgWS += th.WorkingSet
		}
		avgWS /= float64(n)
		migBytesPerIter = avgWS * dyn.MigrationFraction * load / float64(dyn.MigrationEvery)
	}
	if len(computePU) != n {
		return nil, fmt.Errorf("perfsim: placement for %d threads, want %d", len(computePU), n)
	}
	pus := top.PUs()
	for i, pu := range computePU {
		if pu < 0 || pu >= len(pus) {
			return nil, fmt.Errorf("perfsim: thread %d on invalid PU %d", i, pu)
		}
	}

	// Per-core compute-thread population for the contention factor.
	computeOnCore := make(map[*topology.Object]int)
	for _, pu := range computePU {
		computeOnCore[pus[pu].Parent]++
	}
	controlOnCore := make(map[*topology.Object]int)
	controlBound := false
	if len(pl.ControlPU) == n {
		for _, pu := range pl.ControlPU {
			if pu >= 0 && pu < len(pus) {
				controlOnCore[pus[pu].Parent]++
				controlBound = true
			}
		}
	}

	// Socket-level working-set occupancy for cache-capacity misses.
	l3Occupancy := make(map[*topology.Object]float64)
	l3Size := make(map[*topology.Object]float64)
	for i, th := range w.Threads {
		l3 := cacheDomain(pus[computePU[i]])
		l3Occupancy[l3] += th.WorkingSet
		if l3Size[l3] == 0 {
			l3Size[l3] = l3CapacityOf(l3)
		}
	}

	sym := w.Comm.Symmetrized()
	perThreadCommSec := make([]float64, n)
	perThreadStreamSec := make([]float64, n)
	perThreadStallCycles := make([]float64, n) // counter only
	var l3Misses, crossBytes float64
	// Two bandwidth channels per NUMA node: the inter-node link and the
	// local DRAM controller.
	nodeLinkBytes := make(map[*topology.Object]float64)
	nodeDRAMBytes := make(map[*topology.Object]float64)

	// Communication: latency-bound, split evenly between endpoints.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := sym.At(i, j)
			if v == 0 {
				continue
			}
			lines := v / CacheLine
			pi, pj := pus[computePU[i]], pus[computePU[j]]
			var latency float64
			switch topology.LocalityOf(pi, pj) {
			case topology.SamePU, topology.SameCore, topology.SameL2:
				latency = attrs.L2LatencyCycles
			case topology.SameL3:
				latency = attrs.L3LatencyCycles
			case topology.SameNUMA:
				latency = attrs.DRAMLatencyCycles
				l3Misses += lines
				nodeDRAMBytes[numaOf(pi)] += v
			case topology.SameGroup:
				latency = attrs.DRAMLatencyCycles * attrs.RemoteNUMAFactor
				l3Misses += lines
				crossBytes += v
				nodeLinkBytes[numaOf(pi)] += v
				nodeLinkBytes[numaOf(pj)] += v
				nodeDRAMBytes[numaOf(pi)] += v
			default: // cross-group
				latency = attrs.DRAMLatencyCycles * attrs.CrossGroupFactor
				l3Misses += lines
				crossBytes += v
				nodeLinkBytes[numaOf(pi)] += v
				nodeLinkBytes[numaOf(pj)] += v
				nodeDRAMBytes[numaOf(pi)] += v
			}
			stall := lines * latency
			perThreadStallCycles[i] += stall / 2
			perThreadStallCycles[j] += stall / 2
			sec := stall / commMLP / clockHz
			perThreadCommSec[i] += sec / 2
			perThreadCommSec[j] += sec / 2
		}
	}

	// Private traffic: bandwidth-bound streaming, partly remote when
	// allocation is not local, inflated under dynamic scheduling.
	for i, th := range w.Threads {
		traffic := th.MemoryTraffic*trafficInflation + migBytesPerIter
		if traffic == 0 {
			continue
		}
		l3 := cacheDomain(pus[computePU[i]])
		occ := l3Occupancy[l3]
		capacity := l3Size[l3]
		missFrac := coldMissFraction
		if capacity > 0 && occ > capacity {
			if overflow := (occ - capacity) / occ; overflow > missFrac {
				missFrac = overflow
			}
		} else if capacity == 0 {
			missFrac = 1
		}
		hitBytes := traffic * (1 - missFrac)
		missBytes := traffic * missFrac
		missLines := missBytes / CacheLine
		perThreadStreamSec[i] += hitBytes/(l3StreamGBps*1e9) + missBytes/(perCoreStreamGBps*1e9)
		dramLat := attrs.DRAMLatencyCycles * (1 - remoteAllocFrac)
		dramLat += attrs.DRAMLatencyCycles * attrs.RemoteNUMAFactor * remoteAllocFrac
		perThreadStallCycles[i] += missLines * dramLat
		l3Misses += missLines
		node := numaOf(pus[computePU[i]])
		nodeDRAMBytes[node] += missBytes
		if remoteBytes := missBytes * remoteAllocFrac; remoteBytes > 0 {
			crossBytes += remoteBytes
			nodeLinkBytes[node] += remoteBytes
		}
	}

	// Per-thread iteration time: compute overlaps prefetched streaming;
	// communication latency does not overlap.
	perThreadSeconds := make([]float64, n)
	bottleneck := 0
	for i, th := range w.Threads {
		core := pus[computePU[i]].Parent
		factor := float64(computeOnCore[core])
		if factor < 1 {
			factor = 1
		}
		factor += controlShareFactor * float64(controlOnCore[core])
		if w.ControlThreads > 0 && !controlBound {
			ctlLoad := float64(w.ControlThreads) / 4 / float64(top.NumCores())
			if ctlLoad > 1 {
				ctlLoad = 1
			}
			factor *= 1 + unboundControlNoiseMax*ctlLoad
		}
		computeSec := th.ComputeCycles * factor / clockHz
		busy := computeSec
		if perThreadStreamSec[i] > busy {
			busy = perThreadStreamSec[i]
		}
		perThreadSeconds[i] = busy + perThreadCommSec[i]
		if perThreadSeconds[i] > perThreadSeconds[bottleneck] {
			bottleneck = i
		}
	}

	// Iteration time: pipelined steady state (slowest thread) or, for
	// fork-join runtimes, the sum of the per-stage critical paths; in
	// both cases bounded below by the busiest NUMA channel.
	var iterSeconds float64
	if w.Stages == nil {
		iterSeconds = perThreadSeconds[bottleneck]
		if pl.Dynamic != nil {
			if w.ControlThreads > 0 {
				// Unbound control threads put a scheduler wake-up on
				// every pipeline handoff.
				iterSeconds += w.ControlEventsPerIter * unboundWakeupSeconds
			}
			// A migration of any stage stalls the whole pipeline while
			// the stage refills its state: the refill traffic of every
			// thread lands on the critical path, and each migration
			// opens a bubble of about half an iteration while the
			// stalled stage's successors drain and refill.
			iterSeconds += float64(n) * migBytesPerIter / (perCoreStreamGBps * 1e9)
			iterSeconds *= 1 + 0.5*migrations/float64(w.Iterations)
		}
	} else {
		for _, stage := range w.Stages {
			var worst float64
			for _, t := range stage {
				if perThreadSeconds[t] > worst {
					worst = perThreadSeconds[t]
				}
			}
			iterSeconds += worst
		}
	}
	for _, bytes := range nodeLinkBytes {
		if t := bytes / (attrs.InterconnectGBps * 1e9); t > iterSeconds {
			iterSeconds = t
		}
	}
	dramBytesPerSec := attrs.LocalMemGBps * 1e9
	if dramBytesPerSec <= 0 {
		dramBytesPerSec = 20e9
	}
	for _, bytes := range nodeDRAMBytes {
		if t := bytes / dramBytesPerSec; t > iterSeconds {
			iterSeconds = t
		}
	}

	iters := float64(w.Iterations)
	switches := w.StartupContextSwitches + preemptSwitches
	ctl := w.ControlEventsPerIter * iters
	if controlBound {
		ctl *= boundControlSwitchDiscount
	}
	switches += ctl

	return &Result{
		Seconds:          iterSeconds * iters,
		L3Misses:         l3Misses * iters,
		StalledCycles:    sum(perThreadStallCycles) * iters,
		ContextSwitches:  switches,
		CPUMigrations:    migrations,
		CrossNUMABytes:   crossBytes * iters,
		BottleneckThread: bottleneck,
	}, nil
}

// cacheDomain returns the L3 (or, failing that, socket or NUMA node)
// the PU belongs to.
func cacheDomain(pu *topology.Object) *topology.Object {
	for _, t := range []topology.ObjectType{topology.L3, topology.Socket, topology.NUMANode} {
		if o := pu.AncestorOfType(t); o != nil {
			return o
		}
	}
	return pu.Ancestor(0)
}

func l3CapacityOf(o *topology.Object) float64 {
	if o.Type == topology.L3 {
		return float64(o.CacheSize)
	}
	for _, c := range o.Children {
		if c.Type == topology.L3 {
			return float64(c.CacheSize)
		}
	}
	return 0
}

func numaOf(pu *topology.Object) *topology.Object {
	if o := pu.AncestorOfType(topology.NUMANode); o != nil {
		return o
	}
	return pu.Ancestor(0)
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
