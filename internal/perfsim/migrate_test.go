package perfsim

import (
	"testing"

	"orwlplace/internal/topology"
)

func migrationWorkload(n int) *Workload {
	threads := make([]Thread, n)
	for i := range threads {
		threads[i] = Thread{ComputeCycles: 1e5, WorkingSet: 1 << 20, MemoryTraffic: 1 << 14}
	}
	return &Workload{Name: "mig", Threads: threads, Iterations: 1}
}

func TestMigrationCost(t *testing.T) {
	top := topology.Fig2Machine()
	w := migrationWorkload(4)

	same := []int{0, 1, 2, 3}
	if c, err := MigrationCost(top, w, same, same); err != nil || c != 0 {
		t.Errorf("no-move cost = %g, %v, want 0, nil", c, err)
	}

	// A local move (within the socket) must cost less than a
	// cross-socket one.
	local, err := MigrationCost(top, w, []int{0, 1, 2, 3}, []int{4, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	pus := top.NumPUs()
	cross, err := MigrationCost(top, w, []int{0, 1, 2, 3}, []int{pus - 1, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if local <= 0 || cross <= 0 {
		t.Fatalf("costs local %g, cross %g, want both positive", local, cross)
	}
	if cross <= local {
		t.Errorf("cross-socket move (%g s) not more expensive than local move (%g s)", cross, local)
	}

	// Moving everything costs more than moving one thread.
	all, err := MigrationCost(top, w, []int{0, 1, 2, 3}, []int{pus - 1, pus - 2, pus - 3, pus - 4})
	if err != nil {
		t.Fatal(err)
	}
	if all <= cross {
		t.Errorf("full remap (%g s) not more expensive than single move (%g s)", all, cross)
	}

	if _, err := MigrationCost(top, w, []int{0}, []int{0, 1}); err == nil {
		t.Error("mismatched binding lengths accepted")
	}
	if _, err := MigrationCost(top, w, []int{0, 1, 2, 3}, []int{0, 1, 2, 1 << 20}); err == nil {
		t.Error("invalid destination PU accepted")
	}
}
