package perfsim

import (
	"testing"
	"testing/quick"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// computeWorkload builds a simple n-thread workload with the given comm
// pattern.
func computeWorkload(n int, m *comm.Matrix) *Workload {
	threads := make([]Thread, n)
	for i := range threads {
		threads[i] = Thread{ComputeCycles: 1e6, WorkingSet: 1 << 20, MemoryTraffic: 1 << 18}
	}
	return &Workload{
		Name:       "test",
		Threads:    threads,
		Comm:       m,
		Iterations: 10,
	}
}

func identityPlacement(n int) *Placement {
	pus := make([]int, n)
	for i := range pus {
		pus[i] = i
	}
	return &Placement{ComputePU: pus, LocalAlloc: true}
}

func TestValidate(t *testing.T) {
	w := &Workload{}
	if err := w.Validate(); err == nil {
		t.Error("accepted empty workload")
	}
	w = computeWorkload(2, comm.NewMatrix(3))
	if err := w.Validate(); err == nil {
		t.Error("accepted mismatched comm matrix")
	}
	w = computeWorkload(2, comm.NewMatrix(2))
	w.Iterations = 0
	if err := w.Validate(); err == nil {
		t.Error("accepted zero iterations")
	}
}

func TestSimulateValidation(t *testing.T) {
	top := topology.TinyFlat()
	w := computeWorkload(2, comm.NewMatrix(2))
	if _, err := Simulate(top, w, &Placement{ComputePU: []int{0}}); err == nil {
		t.Error("accepted short placement")
	}
	if _, err := Simulate(top, w, &Placement{ComputePU: []int{0, 99}}); err == nil {
		t.Error("accepted invalid PU")
	}
}

func TestLocalCommCheaperThanRemote(t *testing.T) {
	top := topology.TinyFlat() // 2 NUMA x 4 cores
	m := comm.NewMatrix(2)
	m.AddSym(0, 1, 1<<20)
	w := computeWorkload(2, m)

	local, err := Simulate(top, w, &Placement{ComputePU: []int{0, 1}, LocalAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := Simulate(top, w, &Placement{ComputePU: []int{0, 4}, LocalAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	if local.Seconds >= remote.Seconds {
		t.Errorf("same-socket %gs not faster than cross-NUMA %gs", local.Seconds, remote.Seconds)
	}
	if local.L3Misses >= remote.L3Misses {
		t.Errorf("same-socket misses %g not fewer than cross-NUMA %g", local.L3Misses, remote.L3Misses)
	}
	if local.CrossNUMABytes != 0 {
		t.Errorf("same-socket run has cross-NUMA bytes %g", local.CrossNUMABytes)
	}
	if remote.CrossNUMABytes == 0 {
		t.Error("cross-NUMA run has no cross-NUMA bytes")
	}
}

func TestHyperthreadContention(t *testing.T) {
	top := topology.TinyHT() // cores have 2 PUs
	m := comm.NewMatrix(2)
	w := computeWorkload(2, m)
	w.Threads[0].MemoryTraffic = 0
	w.Threads[1].MemoryTraffic = 0

	separate, err := Simulate(top, w, &Placement{ComputePU: []int{0, 2}, LocalAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Simulate(top, w, &Placement{ComputePU: []int{0, 1}, LocalAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	// Sharing a physical core must roughly double the time.
	if shared.Seconds < separate.Seconds*1.8 {
		t.Errorf("HT sharing %gs vs separate %gs: contention too weak",
			shared.Seconds, separate.Seconds)
	}
}

func TestControlThreadSharingCost(t *testing.T) {
	top := topology.TinyHT()
	w := computeWorkload(1, comm.NewMatrix(1))
	w.Threads[0].MemoryTraffic = 0
	w.ControlThreads = 1
	w.ControlEventsPerIter = 4

	unbound, err := Simulate(top, w, &Placement{ComputePU: []int{0}, LocalAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	sibling, err := Simulate(top, w, &Placement{
		ComputePU: []int{0}, ControlPU: []int{1}, LocalAlloc: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Bound control threads: mild sibling interference but no global
	// noise, and fewer context switches.
	if sibling.ContextSwitches >= unbound.ContextSwitches {
		t.Errorf("bound control switches %g >= unbound %g",
			sibling.ContextSwitches, unbound.ContextSwitches)
	}
}

func TestCacheOverflowIncreasesMisses(t *testing.T) {
	top := topology.TinyFlat() // L3 = 4 MB
	small := computeWorkload(1, comm.NewMatrix(1))
	small.Threads[0].WorkingSet = 1 << 20 // fits
	small.Threads[0].ComputeCycles = 0    // memory-bound
	small.Threads[0].MemoryTraffic = 64 << 20
	big := computeWorkload(1, comm.NewMatrix(1))
	big.Threads[0].WorkingSet = 64 << 20 // overflows
	big.Threads[0].ComputeCycles = 0
	big.Threads[0].MemoryTraffic = 64 << 20

	rs, err := Simulate(top, small, identityPlacement(1))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Simulate(top, big, identityPlacement(1))
	if err != nil {
		t.Fatal(err)
	}
	if rb.L3Misses <= rs.L3Misses {
		t.Errorf("overflowing WS misses %g <= fitting WS %g", rb.L3Misses, rs.L3Misses)
	}
	if rb.Seconds <= rs.Seconds {
		t.Error("overflowing WS should be slower (DRAM vs L3 bandwidth)")
	}
}

func TestDynamicPlacementPolicies(t *testing.T) {
	top := topology.TinyHT() // 2 NUMA x 2 cores x 2 PUs
	consolidate, err := dynamicPlacement(top, 2, DynamicPolicy{Policy: PolicyConsolidate}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	pus := top.PUs()
	// Consolidation keeps both threads on the first NUMA node, on
	// distinct cores while cores remain free.
	n0 := pus[consolidate[0]].AncestorOfType(topology.NUMANode)
	n1 := pus[consolidate[1]].AncestorOfType(topology.NUMANode)
	if n0 != n1 || n0.LogicalIndex != 0 {
		t.Errorf("consolidate did not pack the first NUMA node")
	}
	if pus[consolidate[0]].Parent == pus[consolidate[1]].Parent {
		t.Error("consolidate packed hyperthread siblings while cores were free")
	}
	// Once a node's cores are exhausted, siblings are used before the
	// next node: 4 threads on TinyHT stay on node 0.
	packed, err := dynamicPlacement(top, 4, DynamicPolicy{Policy: PolicyConsolidate}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range packed {
		if pus[p].AncestorOfType(topology.NUMANode) != n0 {
			t.Error("consolidate spilled to a second node before saturating the first")
		}
	}
	spread, err := dynamicPlacement(top, 2, DynamicPolicy{Policy: PolicySpread}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	s0 := pus[spread[0]].AncestorOfType(topology.NUMANode)
	s1 := pus[spread[1]].AncestorOfType(topology.NUMANode)
	if s0 == s1 {
		t.Error("spread policy kept threads on one NUMA node")
	}
	if _, err := dynamicPlacement(top, 2, DynamicPolicy{Policy: SchedPolicy(9)}.withDefaults()); err == nil {
		t.Error("accepted unknown policy")
	}
}

func TestDynamicOversubscriptionWraps(t *testing.T) {
	top := topology.TinyFlat() // 8 PUs
	pl, err := dynamicPlacement(top, 20, DynamicPolicy{Policy: PolicySpread}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 20 {
		t.Fatalf("placed %d", len(pl))
	}
	for _, p := range pl {
		if p < 0 || p >= top.NumPUs() {
			t.Fatalf("invalid PU %d", p)
		}
	}
}

func TestDynamicRunHasMigrationsAndIsSlower(t *testing.T) {
	top := topology.TinyFlat()
	m := comm.Ring(8, 1<<20, false)
	w := computeWorkload(8, m)
	w.Iterations = 100

	for i := range w.Threads {
		// Make the workload memory-bound so scheduler interference
		// shows up in the run time.
		w.Threads[i].MemoryTraffic = 64 << 20
		w.Threads[i].WorkingSet = 16 << 20
	}
	mp, err := treematch.Map(top, m, treematch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := Simulate(top, w, &Placement{ComputePU: mp.ComputePU, LocalAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Simulate(top, w, &Placement{Dynamic: &DynamicPolicy{Policy: PolicySpread, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if bound.CPUMigrations != 0 {
		t.Errorf("bound run migrations = %g, want 0", bound.CPUMigrations)
	}
	if dyn.CPUMigrations == 0 {
		t.Error("dynamic run should migrate")
	}
	if bound.Seconds >= dyn.Seconds {
		t.Errorf("affinity %gs not faster than dynamic %gs", bound.Seconds, dyn.Seconds)
	}
	if bound.L3Misses >= dyn.L3Misses {
		t.Errorf("affinity misses %g not fewer than dynamic %g", bound.L3Misses, dyn.L3Misses)
	}
}

func TestDynamicDeterministicBySeed(t *testing.T) {
	top := topology.TinyFlat()
	d := DynamicPolicy{Policy: PolicySpread, Seed: 7}.withDefaults()
	a, _ := dynamicPlacement(top, 6, d)
	b, _ := dynamicPlacement(top, 6, d)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different placements")
		}
	}
	d2 := d
	d2.Seed = 8
	c, _ := dynamicPlacement(top, 6, d2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical placements")
	}
}

func TestBandwidthChannelLimitsStarPattern(t *testing.T) {
	// All threads pull from thread 0 (MKL-like first-touch on node 0):
	// the node-0 channel must saturate and set the iteration time.
	top := topology.TinyFlat()
	n := 8
	m := comm.NewMatrix(n)
	for i := 1; i < n; i++ {
		m.AddSym(0, i, 64<<20) // 64 MB per iteration per peer
	}
	w := computeWorkload(n, m)
	star, err := Simulate(top, w, identityPlacement(n))
	if err != nil {
		t.Fatal(err)
	}
	// 4 peers are on the remote node: >= 4*64MB over 8 GB/s.
	wantMin := 4.0 * 64 * (1 << 20) / (8e9) * float64(w.Iterations)
	if star.Seconds < wantMin {
		t.Errorf("star run %gs, want >= %gs (bandwidth-bound)", star.Seconds, wantMin)
	}
}

func TestPolicyFor(t *testing.T) {
	if PolicyFor(topology.SMP12E5()) != PolicyConsolidate {
		t.Error("SMP12E5 should consolidate (Linux 3.10)")
	}
	if PolicyFor(topology.SMP20E7()) != PolicySpread {
		t.Error("SMP20E7 should spread (Linux 2.6.32)")
	}
	if PolicyConsolidate.String() != "consolidate" || PolicySpread.String() != "spread" {
		t.Error("policy names wrong")
	}
	if SchedPolicy(9).String() == "" {
		t.Error("unknown policy should stringify")
	}
}

func TestResultConversions(t *testing.T) {
	r := &Result{Seconds: 2}
	if got := r.GFLOPS(4e9); got != 2 {
		t.Errorf("GFLOPS = %g", got)
	}
	if got := r.FPS(100); got != 50 {
		t.Errorf("FPS = %g", got)
	}
	zero := &Result{}
	if zero.GFLOPS(1) != 0 || zero.FPS(1) != 0 {
		t.Error("zero-time conversions should be 0")
	}
}

func TestGFLOPSScalesWithCores(t *testing.T) {
	// Pure compute workload must scale nearly linearly with cores when
	// each thread has its own core.
	top := topology.TinyFlat()
	mk := func(n int) *Result {
		w := computeWorkload(n, comm.NewMatrix(n))
		for i := range w.Threads {
			w.Threads[i].MemoryTraffic = 0
			w.Threads[i].ComputeCycles = 1e9 / float64(n)
		}
		pl := identityPlacement(n)
		r, err := Simulate(top, w, pl)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	t1 := mk(1).Seconds
	t8 := mk(8).Seconds
	speedup := t1 / t8
	if speedup < 7 || speedup > 9 {
		t.Errorf("8-core speedup = %g, want ~8", speedup)
	}
}

// Property: simulation results are deterministic and monotone in
// iteration count.
func TestSimulateDeterministicAndMonotone(t *testing.T) {
	top := topology.TinyFlat()
	f := func(seed int64) bool {
		m := comm.Random(4, 1<<16, seed)
		w := computeWorkload(4, m)
		pl := identityPlacement(4)
		a, err := Simulate(top, w, pl)
		if err != nil {
			return false
		}
		b, err := Simulate(top, w, pl)
		if err != nil {
			return false
		}
		if a.Seconds != b.Seconds || a.L3Misses != b.L3Misses {
			return false
		}
		w2 := computeWorkload(4, m)
		w2.Iterations = w.Iterations * 2
		c, err := Simulate(top, w2, pl)
		if err != nil {
			return false
		}
		return c.Seconds > a.Seconds && c.L3Misses >= a.L3Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: placing a heavy pair on the same socket never costs more
// than splitting it across NUMA nodes.
func TestLocalityMonotoneProperty(t *testing.T) {
	top := topology.TinyFlat()
	f := func(volRaw uint32) bool {
		vol := float64(volRaw%(1<<24)) + 1
		m := comm.NewMatrix(2)
		m.AddSym(0, 1, vol)
		w := computeWorkload(2, m)
		local, err := Simulate(top, w, &Placement{ComputePU: []int{0, 1}, LocalAlloc: true})
		if err != nil {
			return false
		}
		split, err := Simulate(top, w, &Placement{ComputePU: []int{0, 4}, LocalAlloc: true})
		if err != nil {
			return false
		}
		return local.Seconds <= split.Seconds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
