package perfsim

import (
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

// Additional model-behaviour tests: stages, master allocation, control
// wake-ups and channel saturation.

func TestStagesValidation(t *testing.T) {
	w := computeWorkload(3, comm.NewMatrix(3))
	w.Stages = [][]int{{0, 1}, {2, 5}}
	if err := w.Validate(); err == nil {
		t.Error("accepted out-of-range stage member")
	}
	w.Stages = [][]int{{0, 1}, {1, 2}}
	if err := w.Validate(); err == nil {
		t.Error("accepted duplicated stage member")
	}
	w.Stages = [][]int{{0, 1}}
	if err := w.Validate(); err == nil {
		t.Error("accepted incomplete stage cover")
	}
	w.Stages = [][]int{{0}, {1, 2}}
	if err := w.Validate(); err != nil {
		t.Errorf("rejected valid stages: %v", err)
	}
}

func TestStagedWorkloadSumsStageTimes(t *testing.T) {
	top := topology.TinyFlat()
	mk := func(stages [][]int) *Result {
		w := computeWorkload(2, comm.NewMatrix(2))
		w.Threads[0].MemoryTraffic = 0
		w.Threads[1].MemoryTraffic = 0
		w.Stages = stages
		r, err := Simulate(top, w, identityPlacement(2))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	pipelined := mk(nil)
	staged := mk([][]int{{0}, {1}})
	// Two equal sequential stages take twice the pipelined steady
	// state.
	ratio := staged.Seconds / pipelined.Seconds
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("staged/pipelined ratio = %g, want ~2", ratio)
	}
	together := mk([][]int{{0, 1}})
	if together.Seconds != pipelined.Seconds {
		t.Errorf("single-stage time %g != pipelined %g", together.Seconds, pipelined.Seconds)
	}
}

func TestMasterAllocForcesRemoteTraffic(t *testing.T) {
	top := topology.TinyFlat()
	mk := func(master bool) *Result {
		w := computeWorkload(2, comm.NewMatrix(2))
		w.Threads[0].ComputeCycles = 0
		w.Threads[1].ComputeCycles = 0
		w.Threads[0].MemoryTraffic = 64 << 20
		w.Threads[1].MemoryTraffic = 64 << 20
		w.Threads[0].WorkingSet = 32 << 20 // overflow L3 so traffic misses
		w.Threads[1].WorkingSet = 32 << 20
		w.MasterAlloc = master
		r, err := Simulate(top, w, identityPlacement(2))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	local := mk(false)
	master := mk(true)
	if master.CrossNUMABytes <= local.CrossNUMABytes {
		t.Errorf("master alloc cross bytes %g not above local %g",
			master.CrossNUMABytes, local.CrossNUMABytes)
	}
	if master.Seconds < local.Seconds {
		t.Error("master alloc should not be faster than local alloc")
	}
}

func TestUnboundControlWakeupsThrottlePipeline(t *testing.T) {
	top := topology.TinyFlat()
	mk := func(events float64) *Result {
		w := computeWorkload(2, comm.NewMatrix(2))
		w.ControlThreads = 4
		w.ControlEventsPerIter = events
		r, err := Simulate(top, w, &Placement{Dynamic: &DynamicPolicy{Policy: PolicySpread, Seed: 1}})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	quiet := mk(0)
	chatty := mk(1000)
	if chatty.Seconds <= quiet.Seconds {
		t.Errorf("control wake-ups should throttle the unbound pipeline (%g vs %g)",
			chatty.Seconds, quiet.Seconds)
	}
}

func TestDRAMChannelSaturation(t *testing.T) {
	// Many streaming threads on one node must be limited by the node's
	// DRAM bandwidth, not by their individual streaming times.
	top := topology.TinyFlat() // 4 cores per node, 20 GB/s local
	n := 4
	w := computeWorkload(n, comm.NewMatrix(n))
	for i := range w.Threads {
		w.Threads[i].ComputeCycles = 0
		w.Threads[i].MemoryTraffic = 1 << 30 // 1 GB per iteration each
		w.Threads[i].WorkingSet = 1 << 30
	}
	pl := identityPlacement(n) // all on node 0
	r, err := Simulate(top, w, pl)
	if err != nil {
		t.Fatal(err)
	}
	// 4 GB per iteration through one 20 GB/s controller: >= 0.2 s/iter.
	wantMin := 4.0 / 20 * float64(w.Iterations)
	if r.Seconds < wantMin*0.9 {
		t.Errorf("node DRAM channel not saturating: %gs, want >= %gs", r.Seconds, wantMin)
	}
	// Spreading over both nodes halves the channel pressure.
	spread := &Placement{ComputePU: []int{0, 1, 4, 5}, LocalAlloc: true}
	r2, err := Simulate(top, w, spread)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Seconds >= r.Seconds {
		t.Errorf("two-node spread %gs not faster than one-node %gs", r2.Seconds, r.Seconds)
	}
}

func TestTrafficInflationIncreasesMisses(t *testing.T) {
	top := topology.TinyFlat()
	w := computeWorkload(4, comm.NewMatrix(4))
	for i := range w.Threads {
		w.Threads[i].MemoryTraffic = 16 << 20
		w.Threads[i].WorkingSet = 16 << 20
	}
	lo, err := Simulate(top, w, &Placement{Dynamic: &DynamicPolicy{
		Policy: PolicySpread, Seed: 1, TrafficInflation: 1.0001,
	}})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Simulate(top, w, &Placement{Dynamic: &DynamicPolicy{
		Policy: PolicySpread, Seed: 1, TrafficInflation: 3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if hi.L3Misses <= lo.L3Misses {
		t.Errorf("inflation misses %g not above baseline %g", hi.L3Misses, lo.L3Misses)
	}
}

func TestBottleneckThreadReported(t *testing.T) {
	top := topology.TinyFlat()
	w := computeWorkload(3, comm.NewMatrix(3))
	w.Threads[1].ComputeCycles = 100 * w.Threads[0].ComputeCycles
	r, err := Simulate(top, w, identityPlacement(3))
	if err != nil {
		t.Fatal(err)
	}
	if r.BottleneckThread != 1 {
		t.Errorf("bottleneck = %d, want 1", r.BottleneckThread)
	}
}

func TestControlShareSlowdown(t *testing.T) {
	top := topology.TinyHT()
	w := computeWorkload(1, comm.NewMatrix(1))
	w.Threads[0].MemoryTraffic = 0
	w.ControlThreads = 1
	// Control on the sibling PU of the compute core: mild slowdown vs
	// control on a different core.
	sameCore, err := Simulate(top, w, &Placement{
		ComputePU: []int{0}, ControlPU: []int{1}, LocalAlloc: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	otherCore, err := Simulate(top, w, &Placement{
		ComputePU: []int{0}, ControlPU: []int{2}, LocalAlloc: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sameCore.Seconds <= otherCore.Seconds {
		t.Errorf("sibling control (%g) should cost slightly more than remote control (%g)",
			sameCore.Seconds, otherCore.Seconds)
	}
	ratio := sameCore.Seconds / otherCore.Seconds
	if ratio > 1.1 {
		t.Errorf("sibling-control penalty %g too harsh", ratio)
	}
}
