package perfsim

import (
	"encoding/json"
	"fmt"
	"io"

	"orwlplace/internal/comm"
)

// jsonWorkload is the on-disk form of a Workload, consumed by
// cmd/simulate: thread descriptions plus the communication matrix as
// rows of bytes-per-iteration.
type jsonWorkload struct {
	Name                   string      `json:"name"`
	Threads                []Thread    `json:"threads"`
	Comm                   [][]float64 `json:"comm"`
	Iterations             int         `json:"iterations"`
	ControlThreads         int         `json:"control_threads,omitempty"`
	ControlEventsPerIter   float64     `json:"control_events_per_iter,omitempty"`
	StartupContextSwitches float64     `json:"startup_context_switches,omitempty"`
	MasterAlloc            bool        `json:"master_alloc,omitempty"`
	Stages                 [][]int     `json:"stages,omitempty"`
}

// WriteJSON encodes the workload.
func (w *Workload) WriteJSON(out io.Writer) error {
	if err := w.Validate(); err != nil {
		return err
	}
	rows := make([][]float64, w.Comm.Order())
	for i := range rows {
		rows[i] = w.Comm.Row(i)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonWorkload{
		Name:                   w.Name,
		Threads:                w.Threads,
		Comm:                   rows,
		Iterations:             w.Iterations,
		ControlThreads:         w.ControlThreads,
		ControlEventsPerIter:   w.ControlEventsPerIter,
		StartupContextSwitches: w.StartupContextSwitches,
		MasterAlloc:            w.MasterAlloc,
		Stages:                 w.Stages,
	})
}

// ReadJSON decodes a workload written by WriteJSON (or hand-authored in
// the same schema) and validates it.
func ReadJSON(in io.Reader) (*Workload, error) {
	var jw jsonWorkload
	dec := json.NewDecoder(in)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jw); err != nil {
		return nil, fmt.Errorf("perfsim: decode workload: %w", err)
	}
	m, err := comm.FromRows(jw.Comm)
	if err != nil {
		return nil, fmt.Errorf("perfsim: workload comm: %w", err)
	}
	w := &Workload{
		Name:                   jw.Name,
		Threads:                jw.Threads,
		Comm:                   m,
		Iterations:             jw.Iterations,
		ControlThreads:         jw.ControlThreads,
		ControlEventsPerIter:   jw.ControlEventsPerIter,
		StartupContextSwitches: jw.StartupContextSwitches,
		MasterAlloc:            jw.MasterAlloc,
		Stages:                 jw.Stages,
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
