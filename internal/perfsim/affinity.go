package perfsim

import (
	"fmt"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

// CommSeconds models the per-iteration communication time of a binding
// under a traffic pattern, walking only the pattern's nonzeros: each
// symmetrized pair volume pays the latency of the channel between its
// endpoints' PUs, with the same constants Simulate charges (cache-line
// granularity, memory-level parallelism, remote-NUMA inflation). It is
// the sub-O(n²) gain signal for adaptive re-placement at fleet scale,
// where materializing the dense matrix a full Simulate run needs would
// defeat the sparse path.
//
// The result is comparable across bindings of the same workload (the
// quantity a reconciler differences), not with Result.Seconds of a full
// simulation — compute, streaming and channel saturation are
// deliberately left out.
func CommSeconds(top *topology.Topology, a comm.Affinity, computePU []int) (float64, error) {
	n := a.Order()
	if len(computePU) < n {
		return 0, fmt.Errorf("perfsim: comm seconds for %d entities, binding covers %d", n, len(computePU))
	}
	pus := top.PUs()
	for i := 0; i < n; i++ {
		if pu := computePU[i]; pu < 0 || pu >= len(pus) {
			return 0, fmt.Errorf("perfsim: entity %d on invalid PU %d", i, pu)
		}
	}
	attrs := top.Attrs
	clockHz := attrs.ClockMHz * 1e6
	if clockHz <= 0 {
		return 0, fmt.Errorf("perfsim: topology %s has no clock rate", top.Attrs.Name)
	}
	var total float64
	charge := func(i, j int, vol float64) {
		pi, pj := pus[computePU[i]], pus[computePU[j]]
		var latency float64
		switch topology.LocalityOf(pi, pj) {
		case topology.SamePU, topology.SameCore, topology.SameL2:
			latency = attrs.L2LatencyCycles
		case topology.SameL3:
			latency = attrs.L3LatencyCycles
		case topology.SameNUMA:
			latency = attrs.DRAMLatencyCycles
		case topology.SameGroup:
			latency = attrs.DRAMLatencyCycles * attrs.RemoteNUMAFactor
		default:
			latency = attrs.DRAMLatencyCycles * attrs.CrossGroupFactor
		}
		total += (vol / CacheLine) * latency / commMLP / clockHz
	}
	for i := 0; i < n; i++ {
		a.ForEachRow(i, func(j int, v float64) {
			switch {
			case j > i:
				charge(i, j, v+a.At(j, i))
			case j < i && a.At(j, i) == 0:
				// The mirror entry is zero, so this pair was invisible
				// from row j: charge it here.
				charge(j, i, v)
			}
		})
	}
	return total, nil
}
