package perfsim

import (
	"bytes"
	"strings"
	"testing"

	"orwlplace/internal/comm"
)

func TestWorkloadJSONRoundTrip(t *testing.T) {
	w := computeWorkload(3, comm.Ring(3, 1024, true))
	w.Name = "roundtrip"
	w.ControlThreads = 2
	w.ControlEventsPerIter = 4
	w.MasterAlloc = true
	w.Stages = [][]int{{0}, {1, 2}}
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != w.Name || len(got.Threads) != 3 || got.Iterations != w.Iterations {
		t.Errorf("round trip = %+v", got)
	}
	if got.Comm.At(0, 1) != 1024 || got.Comm.At(2, 0) != 1024 {
		t.Error("comm matrix lost")
	}
	if !got.MasterAlloc || got.ControlThreads != 2 || len(got.Stages) != 2 {
		t.Error("flags lost")
	}
	if got.Threads[0].ComputeCycles != w.Threads[0].ComputeCycles {
		t.Error("thread fields lost")
	}
}

func TestWriteJSONRejectsInvalid(t *testing.T) {
	w := &Workload{Name: "bad"}
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err == nil {
		t.Error("accepted invalid workload")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"name":"x","threads":[],"comm":[],"iterations":1}`,
		`{"name":"x","threads":[{}],"comm":[[0],[0]],"iterations":1}`,
		`{"name":"x","threads":[{}],"comm":[[0]],"iterations":0}`,
		`{"name":"x","threads":[{}],"comm":[[0]],"iterations":1,"unknown_field":3}`,
		`{"name":"x","threads":[{}],"comm":[[0,0]],"iterations":1}`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestReadJSONMinimalValid(t *testing.T) {
	in := `{"name":"mini","threads":[{"ComputeCycles":1000}],"comm":[[0]],"iterations":5}`
	w, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w.Threads[0].ComputeCycles != 1000 || w.Iterations != 5 {
		t.Errorf("parsed = %+v", w)
	}
}
