package perfsim

import (
	"fmt"
	"math/rand"

	"orwlplace/internal/topology"
)

// SchedPolicy selects the simulated OS scheduler behaviour for unbound
// runs. The two testbed kernels behaved differently (§VI-B1): Linux
// 3.10 consolidated threads onto few NUMA nodes, using hyperthread
// siblings, while Linux 2.6.32 spread threads evenly over all nodes.
type SchedPolicy int

const (
	// PolicyConsolidate packs threads onto the fewest NUMA nodes,
	// filling hyperthread siblings first (SMP12E5 / Linux 3.10).
	PolicyConsolidate SchedPolicy = iota
	// PolicySpread distributes threads round-robin over every NUMA node
	// (SMP20E7 / Linux 2.6.32).
	PolicySpread
)

// String names the policy.
func (p SchedPolicy) String() string {
	switch p {
	case PolicyConsolidate:
		return "consolidate"
	case PolicySpread:
		return "spread"
	default:
		return fmt.Sprintf("SchedPolicy(%d)", int(p))
	}
}

// PolicyFor returns the dynamic-scheduling policy matching a machine's
// kernel, defaulting to consolidation for modern kernels.
func PolicyFor(top *topology.Topology) SchedPolicy {
	if top.Attrs.Kernel != "" && top.Attrs.Kernel < "3" {
		return PolicySpread
	}
	return PolicyConsolidate
}

// DynamicPolicy parameterises the simulated OS scheduler.
type DynamicPolicy struct {
	Policy SchedPolicy
	// Seed makes the affinity-oblivious thread-to-slot assignment
	// reproducible.
	Seed int64
	// MigrationEvery is the number of iterations between migration
	// waves (default 10).
	MigrationEvery int
	// MigrationFraction is the fraction of threads migrating per wave
	// (default 0.25).
	MigrationFraction float64
	// RemoteAllocFraction is the fraction of private DRAM traffic
	// served by remote nodes, reflecting first-touch pages left behind
	// by migrations (default 0.5).
	RemoteAllocFraction float64
	// TrafficInflation multiplies private memory traffic: unbound
	// threads displace each other's cache contents (time-slicing,
	// migrations, NUMA-balancing page movement), so the same data is
	// fetched several times per iteration (default 2.5).
	TrafficInflation float64
}

func (d DynamicPolicy) withDefaults() DynamicPolicy {
	if d.MigrationEvery == 0 {
		d.MigrationEvery = 10
	}
	if d.MigrationFraction == 0 {
		d.MigrationFraction = 0.25
	}
	if d.RemoteAllocFraction == 0 {
		d.RemoteAllocFraction = 0.5
	}
	if d.TrafficInflation == 0 {
		d.TrafficInflation = 2.5
	}
	return d
}

// dynamicPlacement computes the PU each thread lands on under the
// policy. The slot order follows the policy; the thread-to-slot
// assignment is a seeded random permutation, because the OS knows
// nothing about which threads communicate.
func dynamicPlacement(top *topology.Topology, n int, dyn DynamicPolicy) ([]int, error) {
	var slots []int
	switch dyn.Policy {
	case PolicyConsolidate:
		// Pack NUMA node by NUMA node; within a node fill one PU per
		// core first, then the hyperthread siblings — so HT contention
		// appears once a node's cores are exhausted, as on the Linux
		// 3.10 testbed under load.
		nodes := top.Objects(topology.NUMANode)
		if len(nodes) == 0 {
			nodes = []*topology.Object{top.Root}
		}
		// The 3.10 kernel consolidates: it fills a node's cores, its
		// siblings, then moves to the next node only when the previous
		// one is saturated... except that it balances per *pair* of
		// nodes under memory pressure; the net effect observed in the
		// paper is that 64 threads land on 4 nodes of the
		// hyperthreaded machine. Filling cores+siblings node by node
		// reproduces exactly that.
		for _, node := range nodes {
			pus := node.PUs()
			var first, rest []*topology.Object
			for _, pu := range pus {
				if pu.Parent.Children[0] == pu {
					first = append(first, pu)
				} else {
					rest = append(rest, pu)
				}
			}
			for _, pu := range append(first, rest...) {
				slots = append(slots, pu.LogicalIndex)
			}
		}
	case PolicySpread:
		nodes := top.Objects(topology.NUMANode)
		if len(nodes) == 0 {
			nodes = []*topology.Object{top.Root}
		}
		perNode := make([][]*topology.Object, len(nodes))
		maxLen := 0
		for i, node := range nodes {
			perNode[i] = node.PUs()
			if len(perNode[i]) > maxLen {
				maxLen = len(perNode[i])
			}
		}
		for k := 0; k < maxLen; k++ {
			for _, pus := range perNode {
				if k < len(pus) {
					slots = append(slots, pus[k].LogicalIndex)
				}
			}
		}
	default:
		return nil, fmt.Errorf("perfsim: unknown scheduler policy %v", dyn.Policy)
	}
	if n > len(slots) {
		// Oversubscription: wrap around.
		base := slots
		for len(slots) < n {
			slots = append(slots, base[len(slots)%len(base)])
		}
	}
	slots = slots[:n]
	// Affinity-oblivious assignment: shuffle which thread gets which
	// slot.
	rng := rand.New(rand.NewSource(dyn.Seed))
	perm := rng.Perm(n)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = slots[perm[i]]
	}
	return out, nil
}
