package perfsim

import (
	"fmt"

	"orwlplace/internal/topology"
)

// MigrationCost models the one-time price of moving a placed workload
// from one binding to another — the toll an adaptive re-placement
// loop must recoup before a remap pays off. It uses the same
// quantities as the dynamic-scheduling model (dynsched.go): a moved
// thread refills its working set through the per-core streaming
// channel (remote-inflated when the move crosses NUMA nodes), pays a
// scheduler wake-up, and stalls a pipelined execution while it warms
// up — so threads that merely swap hyperthreads are almost free and
// cross-socket moves dominate.
//
// The result is in modeled seconds, directly comparable with
// Result.Seconds of a Simulate run.
func MigrationCost(top *topology.Topology, w *Workload, from, to []int) (float64, error) {
	n := len(w.Threads)
	if len(from) != n || len(to) != n {
		return 0, fmt.Errorf("perfsim: migration cost for %d threads, got bindings %d -> %d", n, len(from), len(to))
	}
	pus := top.PUs()
	attrs := top.Attrs
	var cost float64
	moved := 0
	for i, th := range w.Threads {
		if from[i] == to[i] {
			continue
		}
		moved++
		if from[i] < 0 || from[i] >= len(pus) || to[i] < 0 || to[i] >= len(pus) {
			return 0, fmt.Errorf("perfsim: thread %d migrates across invalid PUs %d -> %d", i, from[i], to[i])
		}
		src, dst := pus[from[i]], pus[to[i]]
		switch topology.LocalityOf(src, dst) {
		case topology.SamePU:
			// Logical relabeling, no state moves.
			continue
		case topology.SameCore, topology.SameL2, topology.SameL3:
			// The shared cache keeps most of the working set warm; only
			// the private-cache fraction refills. A small fixed fraction
			// stands in for L1/L2 residency.
			cost += 0.1 * th.WorkingSet / (l3StreamGBps * 1e9)
		case topology.SameNUMA:
			cost += th.WorkingSet / (perCoreStreamGBps * 1e9)
		default:
			// Crossing a NUMA node (or group) refills through the
			// interconnect at remote latency: the same refill, inflated
			// by the remote-access factor, plus first-touch pages left
			// behind on the old node that keep costing until re-touched
			// — folded into the same factor.
			factor := attrs.RemoteNUMAFactor
			if factor < 1 {
				factor = 1
			}
			cost += th.WorkingSet * factor / (perCoreStreamGBps * 1e9)
		}
		// Every migration is a deschedule/reschedule pair.
		cost += unboundWakeupSeconds
	}
	if cost > 0 && w.Stages == nil {
		// A pipelined steady state drains and refills around the moved
		// stages: approximate the bubble as one extra wake-up per moved
		// thread, matching the per-handoff penalty the simulator charges
		// unbound control threads. Only movers are charged — a partial
		// remap of a 10k-task program that touches one subtree must not
		// pay a bubble proportional to the whole program.
		cost += float64(moved) * unboundWakeupSeconds
	}
	return cost, nil
}
