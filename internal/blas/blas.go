// Package blas provides the dense linear-algebra kernels the matrix
// multiplication application builds on, standing in for the MKL BLAS
// the paper links against. Matrices are dense, row-major float64.
package blas

import "fmt"

// blockSize is the cache-blocking tile edge for Dgemm.
const blockSize = 64

// Dgemm computes C += A * B for row-major matrices: A is m x k, B is
// k x n, C is m x n. It uses i-k-j loop order with cache blocking.
func Dgemm(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) error {
	if m < 0 || n < 0 || k < 0 {
		return fmt.Errorf("blas: negative dimension %dx%dx%d", m, n, k)
	}
	if lda < k || ldb < n || ldc < n {
		return fmt.Errorf("blas: leading dimensions too small (%d/%d/%d for %dx%dx%d)", lda, ldb, ldc, m, n, k)
	}
	if len(a) < (m-1)*lda+k && m > 0 {
		return fmt.Errorf("blas: a too short")
	}
	if len(b) < (k-1)*ldb+n && k > 0 {
		return fmt.Errorf("blas: b too short")
	}
	if len(c) < (m-1)*ldc+n && m > 0 {
		return fmt.Errorf("blas: c too short")
	}
	for i0 := 0; i0 < m; i0 += blockSize {
		iMax := min(i0+blockSize, m)
		for k0 := 0; k0 < k; k0 += blockSize {
			kMax := min(k0+blockSize, k)
			for j0 := 0; j0 < n; j0 += blockSize {
				jMax := min(j0+blockSize, n)
				for i := i0; i < iMax; i++ {
					arow := a[i*lda : i*lda+k]
					crow := c[i*ldc : i*ldc+n]
					for kk := k0; kk < kMax; kk++ {
						av := arow[kk]
						if av == 0 {
							continue
						}
						brow := b[kk*ldb : kk*ldb+n]
						for j := j0; j < jMax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
	return nil
}

// Daxpy computes y += alpha * x.
func Daxpy(alpha float64, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("blas: daxpy length mismatch %d vs %d", len(x), len(y))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
	return nil
}

// Ddot returns the dot product of x and y.
func Ddot(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("blas: ddot length mismatch %d vs %d", len(x), len(y))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s, nil
}

// Dscal scales x by alpha in place.
func Dscal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dcopy copies x into y.
func Dcopy(x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("blas: dcopy length mismatch %d vs %d", len(x), len(y))
	}
	copy(y, x)
	return nil
}

// Dnrm2Sq returns the squared Euclidean norm of x (cheaper than the
// norm itself and sufficient for convergence tests).
func Dnrm2Sq(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
