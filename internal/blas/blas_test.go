package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveGemm is the reference implementation.
func naiveGemm(m, n, k int, a, b, c []float64) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				s += a[i*k+kk] * b[kk*n+j]
			}
			c[i*n+j] += s
		}
	}
}

func randSlice(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func TestDgemmMatchesNaive(t *testing.T) {
	cases := []struct{ m, n, k int }{
		{1, 1, 1}, {2, 3, 4}, {7, 5, 3}, {64, 64, 64}, {65, 63, 70}, {128, 1, 17},
	}
	for _, c := range cases {
		a := randSlice(c.m*c.k, 1)
		b := randSlice(c.k*c.n, 2)
		got := randSlice(c.m*c.n, 3)
		want := append([]float64(nil), got...)
		if err := Dgemm(c.m, c.n, c.k, a, c.k, b, c.n, got, c.n); err != nil {
			t.Fatalf("%dx%dx%d: %v", c.m, c.n, c.k, err)
		}
		naiveGemm(c.m, c.n, c.k, a, b, want)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%dx%dx%d: element %d = %g, want %g", c.m, c.n, c.k, i, got[i], want[i])
			}
		}
	}
}

func TestDgemmZeroDims(t *testing.T) {
	if err := Dgemm(0, 0, 0, nil, 0, nil, 0, nil, 0); err != nil {
		t.Errorf("0x0x0 should be a no-op: %v", err)
	}
}

func TestDgemmValidation(t *testing.T) {
	if err := Dgemm(-1, 1, 1, nil, 1, nil, 1, nil, 1); err == nil {
		t.Error("accepted negative dim")
	}
	a := make([]float64, 4)
	if err := Dgemm(2, 2, 2, a, 1, a, 2, a, 2); err == nil {
		t.Error("accepted lda < k")
	}
	if err := Dgemm(2, 2, 2, a[:2], 2, a, 2, a, 2); err == nil {
		t.Error("accepted short a")
	}
	if err := Dgemm(2, 2, 2, a, 2, a[:2], 2, a, 2); err == nil {
		t.Error("accepted short b")
	}
	if err := Dgemm(2, 2, 2, a, 2, a, 2, a[:2], 2); err == nil {
		t.Error("accepted short c")
	}
}

func TestDgemmStridedSubmatrix(t *testing.T) {
	// Multiply the top-left 2x2 blocks of 4x4 matrices.
	a := randSlice(16, 4)
	b := randSlice(16, 5)
	c := make([]float64, 16)
	if err := Dgemm(2, 2, 2, a, 4, b, 4, c, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := a[i*4]*b[j] + a[i*4+1]*b[4+j]
			if math.Abs(c[i*4+j]-want) > 1e-12 {
				t.Errorf("c[%d][%d] = %g, want %g", i, j, c[i*4+j], want)
			}
		}
	}
	// Cells outside the block stay zero.
	if c[2] != 0 || c[8] != 0 {
		t.Error("gemm wrote outside the block")
	}
}

func TestDaxpyDdotDscalDcopy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if err := Daxpy(2, x, y); err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[2] != 12 {
		t.Errorf("daxpy = %v", y)
	}
	if err := Daxpy(1, x, []float64{1}); err == nil {
		t.Error("daxpy accepted mismatch")
	}
	d, err := Ddot([]float64{1, 2}, []float64{3, 4})
	if err != nil || d != 11 {
		t.Errorf("ddot = %g, %v", d, err)
	}
	if _, err := Ddot(x, []float64{1}); err == nil {
		t.Error("ddot accepted mismatch")
	}
	z := []float64{2, 4}
	Dscal(0.5, z)
	if z[0] != 1 || z[1] != 2 {
		t.Errorf("dscal = %v", z)
	}
	dst := make([]float64, 3)
	if err := Dcopy(x, dst); err != nil || dst[1] != 2 {
		t.Errorf("dcopy = %v, %v", dst, err)
	}
	if err := Dcopy(x, dst[:1]); err == nil {
		t.Error("dcopy accepted mismatch")
	}
	if got := Dnrm2Sq([]float64{3, 4}); got != 25 {
		t.Errorf("dnrm2sq = %g", got)
	}
}

// Property: Dgemm is linear in A — gemm(alpha*A) == alpha*gemm(A).
func TestDgemmLinearityProperty(t *testing.T) {
	f := func(seed int64, alphaRaw int8) bool {
		alpha := float64(alphaRaw%7) + 0.5
		const n = 8
		a := randSlice(n*n, seed)
		b := randSlice(n*n, seed+1)
		c1 := make([]float64, n*n)
		if Dgemm(n, n, n, a, n, b, n, c1, n) != nil {
			return false
		}
		a2 := append([]float64(nil), a...)
		Dscal(alpha, a2)
		c2 := make([]float64, n*n)
		if Dgemm(n, n, n, a2, n, b, n, c2, n) != nil {
			return false
		}
		for i := range c1 {
			if math.Abs(c2[i]-alpha*c1[i]) > 1e-9*(1+math.Abs(c1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
