package topology

import "fmt"

// Spec describes a balanced machine for the generic builder. A zero
// count at any level removes that level from the tree (except cores and
// PUs, which are mandatory).
type Spec struct {
	Name string
	// Groups is the number of NUMA groups (blades). 0 or 1 omits the
	// level.
	Groups int
	// NUMAPerGroup is the number of NUMA nodes per group (>= 1).
	NUMAPerGroup int
	// SocketsPerNUMA is the number of sockets per NUMA node (>= 1).
	SocketsPerNUMA int
	// CoresPerSocket is the number of physical cores per socket (>= 1).
	CoresPerSocket int
	// PUsPerCore is the number of hardware threads per core; 1 means no
	// hyperthreading, 2 is typical SMT.
	PUsPerCore int

	// Cache capacities in bytes; zero omits that cache level from the
	// tree. L3 is per socket, L2 and L1 per core.
	L3Size int64
	L2Size int64
	L1Size int64

	// MemoryPerNUMA is the local memory per NUMA node in bytes.
	MemoryPerNUMA int64

	Attrs Attrs
}

// Build constructs a balanced topology from the spec.
func Build(spec Spec) (*Topology, error) {
	if spec.NUMAPerGroup < 1 || spec.SocketsPerNUMA < 1 || spec.CoresPerSocket < 1 {
		return nil, fmt.Errorf("topology: spec needs at least one NUMA node, socket and core (got %d/%d/%d)",
			spec.NUMAPerGroup, spec.SocketsPerNUMA, spec.CoresPerSocket)
	}
	if spec.PUsPerCore < 1 {
		return nil, fmt.Errorf("topology: spec needs at least one PU per core (got %d)", spec.PUsPerCore)
	}
	groups := spec.Groups
	if groups < 1 {
		groups = 1
	}
	root := &Object{Type: Machine, Memory: spec.MemoryPerNUMA * int64(groups*spec.NUMAPerGroup)}
	puOS := 0
	for g := 0; g < groups; g++ {
		groupObj := root
		if spec.Groups > 1 {
			groupObj = &Object{Type: Group}
			root.Children = append(root.Children, groupObj)
		}
		for n := 0; n < spec.NUMAPerGroup; n++ {
			numa := &Object{Type: NUMANode, Memory: spec.MemoryPerNUMA}
			groupObj.Children = append(groupObj.Children, numa)
			for s := 0; s < spec.SocketsPerNUMA; s++ {
				sock := &Object{Type: Socket}
				numa.Children = append(numa.Children, sock)
				coreParent := sock
				if spec.L3Size > 0 {
					l3 := &Object{Type: L3, CacheSize: spec.L3Size}
					sock.Children = append(sock.Children, l3)
					coreParent = l3
				}
				for c := 0; c < spec.CoresPerSocket; c++ {
					puParent := coreParent
					if spec.L2Size > 0 {
						l2 := &Object{Type: L2, CacheSize: spec.L2Size}
						puParent.Children = append(puParent.Children, l2)
						puParent = l2
					}
					if spec.L1Size > 0 {
						l1 := &Object{Type: L1, CacheSize: spec.L1Size}
						puParent.Children = append(puParent.Children, l1)
						puParent = l1
					}
					core := &Object{Type: Core}
					puParent.Children = append(puParent.Children, core)
					for p := 0; p < spec.PUsPerCore; p++ {
						pu := &Object{Type: PU, OSIndex: puOS}
						puOS++
						core.Children = append(core.Children, pu)
					}
				}
			}
		}
	}
	attrs := spec.Attrs
	if attrs.Name == "" {
		attrs.Name = spec.Name
	}
	attrs.Hyperthreaded = spec.PUsPerCore > 1
	applyLatencyDefaults(&attrs)
	return New(root, attrs)
}

// applyLatencyDefaults fills in reasonable latency attributes when the
// spec left them zero, so the performance simulator always has a
// complete model.
func applyLatencyDefaults(a *Attrs) {
	if a.L1LatencyCycles == 0 {
		a.L1LatencyCycles = 4
	}
	if a.L2LatencyCycles == 0 {
		a.L2LatencyCycles = 12
	}
	if a.L3LatencyCycles == 0 {
		a.L3LatencyCycles = 40
	}
	if a.DRAMLatencyCycles == 0 {
		a.DRAMLatencyCycles = 200
	}
	if a.RemoteNUMAFactor == 0 {
		a.RemoteNUMAFactor = 1.8
	}
	if a.CrossGroupFactor == 0 {
		a.CrossGroupFactor = 2.6
	}
	if a.ClockMHz == 0 {
		a.ClockMHz = 2600
	}
	if a.InterconnectGBps == 0 {
		a.InterconnectGBps = 10
	}
	if a.LocalMemGBps == 0 {
		a.LocalMemGBps = 20
	}
}

// MustBuild is Build but panics on error; intended for the fixed
// synthetic machines and for tests.
func MustBuild(spec Spec) *Topology {
	t, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return t
}
