package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Render writes an lstopo-like indented description of the tree to w.
func (t *Topology) Render(w io.Writer) error {
	var walk func(o *Object, indent int) error
	walk = func(o *Object, indent int) error {
		pad := strings.Repeat("  ", indent)
		var attr string
		switch {
		case o.CacheSize > 0:
			attr = fmt.Sprintf(" (%s)", humanBytes(o.CacheSize))
		case o.Memory > 0 && o.Type == NUMANode:
			attr = fmt.Sprintf(" (%s)", humanBytes(o.Memory))
		}
		if _, err := fmt.Fprintf(w, "%s%s%s\n", pad, o, attr); err != nil {
			return err
		}
		for _, c := range o.Children {
			if err := walk(c, indent+1); err != nil {
				return err
			}
		}
		return nil
	}
	if _, err := fmt.Fprintf(w, "%s: %d cores, %d PUs, depth %d\n",
		t.Attrs.Name, t.NumCores(), t.NumPUs(), t.Depth()); err != nil {
		return err
	}
	return walk(t.Root, 0)
}

// RenderString returns the Render output as a string.
func (t *Topology) RenderString() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// jsonObject mirrors Object for serialisation without parent cycles.
type jsonObject struct {
	Type      string       `json:"type"`
	OSIndex   int          `json:"os_index,omitempty"`
	CacheSize int64        `json:"cache_size,omitempty"`
	Memory    int64        `json:"memory,omitempty"`
	Children  []jsonObject `json:"children,omitempty"`
}

type jsonTopology struct {
	Attrs Attrs      `json:"attrs"`
	Root  jsonObject `json:"root"`
}

// MarshalJSON encodes the topology tree.
func (t *Topology) MarshalJSON() ([]byte, error) {
	var conv func(o *Object) jsonObject
	conv = func(o *Object) jsonObject {
		j := jsonObject{
			Type:      o.Type.String(),
			OSIndex:   o.OSIndex,
			CacheSize: o.CacheSize,
			Memory:    o.Memory,
		}
		for _, c := range o.Children {
			j.Children = append(j.Children, conv(c))
		}
		return j
	}
	return json.Marshal(jsonTopology{Attrs: t.Attrs, Root: conv(t.Root)})
}

// Clone returns a deep copy of the topology by round-tripping its
// canonical JSON encoding — exactly the copy a remote caller receives
// over the wire, so a clone fingerprints (placement.Signature)
// identically to the original and mutating it cannot reach the
// original's tree.
func (t *Topology) Clone() (*Topology, error) {
	data, err := t.MarshalJSON()
	if err != nil {
		return nil, fmt.Errorf("topology: clone: %w", err)
	}
	return FromJSON(data)
}

// FromJSON decodes a topology previously produced by MarshalJSON.
func FromJSON(data []byte) (*Topology, error) {
	var jt jsonTopology
	if err := json.Unmarshal(data, &jt); err != nil {
		return nil, fmt.Errorf("topology: decode: %w", err)
	}
	typeByName := make(map[string]ObjectType, int(numObjectTypes))
	for i := ObjectType(0); i < numObjectTypes; i++ {
		typeByName[i.String()] = i
	}
	var conv func(j jsonObject) (*Object, error)
	conv = func(j jsonObject) (*Object, error) {
		typ, ok := typeByName[j.Type]
		if !ok {
			return nil, fmt.Errorf("topology: unknown object type %q", j.Type)
		}
		o := &Object{Type: typ, OSIndex: j.OSIndex, CacheSize: j.CacheSize, Memory: j.Memory}
		for _, jc := range j.Children {
			c, err := conv(jc)
			if err != nil {
				return nil, err
			}
			o.Children = append(o.Children, c)
		}
		return o, nil
	}
	root, err := conv(jt.Root)
	if err != nil {
		return nil, err
	}
	return New(root, jt.Attrs)
}
