package topology

import "testing"

func TestRestrictShape(t *testing.T) {
	top := SMP12E5()
	r, err := Restrict(top, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.NumObjects(NUMANode); got != 4 {
		t.Errorf("NUMA nodes = %d", got)
	}
	if got := r.NumCores(); got != 32 {
		t.Errorf("cores = %d", got)
	}
	if got := r.NumPUs(); got != 64 {
		t.Errorf("PUs = %d (hyperthreaded)", got)
	}
	if r.Depth() != top.Depth() {
		t.Errorf("depth changed: %d vs %d", r.Depth(), top.Depth())
	}
	if !r.Attrs.Hyperthreaded || r.Attrs.ClockMHz != top.Attrs.ClockMHz {
		t.Error("attributes lost")
	}
	// The original is untouched.
	if top.NumObjects(NUMANode) != 12 {
		t.Error("Restrict mutated its input")
	}
}

func TestRestrictFullMachineIsCopy(t *testing.T) {
	top := TinyFlat()
	r, err := Restrict(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumPUs() != top.NumPUs() {
		t.Error("full restriction changed shape")
	}
	// Independent trees: scaling an object on one must not affect the
	// other (structural check: different object pointers).
	if r.Root == top.Root || r.PU(0) == top.PU(0) {
		t.Error("Restrict returned shared objects")
	}
}

func TestRestrictValidation(t *testing.T) {
	top := TinyFlat()
	if _, err := Restrict(top, 0); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := Restrict(top, 3); err == nil {
		t.Error("accepted more nodes than exist")
	}
}

func TestRestrictOnGroupedMachine(t *testing.T) {
	top := Fig2Machine() // 2 groups x 2 NUMA
	r, err := Restrict(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.NumObjects(NUMANode); got != 2 {
		t.Errorf("NUMA nodes = %d", got)
	}
	// The second blade is emptied and must disappear entirely.
	if got := r.NumObjects(Group); got != 1 {
		t.Errorf("groups = %d, want 1", got)
	}
	if got := r.NumCores(); got != 16 {
		t.Errorf("cores = %d", got)
	}
	// Restricting to 3 keeps one node of the second blade.
	r3, err := Restrict(top, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := r3.NumObjects(Group); got != 2 {
		t.Errorf("groups after 3-node cut = %d, want 2", got)
	}
	if got := r3.NumCores(); got != 24 {
		t.Errorf("cores = %d", got)
	}
}
