package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSMP12E5Shape(t *testing.T) {
	top := SMP12E5()
	if got := top.NumObjects(NUMANode); got != 12 {
		t.Errorf("NUMA nodes = %d, want 12", got)
	}
	if got := top.NumObjects(Socket); got != 12 {
		t.Errorf("sockets = %d, want 12", got)
	}
	if got := top.NumCores(); got != 96 {
		t.Errorf("cores = %d, want 96", got)
	}
	if got := top.NumPUs(); got != 192 {
		t.Errorf("PUs = %d, want 192", got)
	}
	if !top.Attrs.Hyperthreaded {
		t.Error("SMP12E5 should be hyperthreaded")
	}
	if got := top.Objects(L3)[0].CacheSize; got != 20480<<10 {
		t.Errorf("L3 size = %d, want %d", got, 20480<<10)
	}
}

func TestSMP20E7Shape(t *testing.T) {
	top := SMP20E7()
	if got := top.NumObjects(NUMANode); got != 20 {
		t.Errorf("NUMA nodes = %d, want 20", got)
	}
	if got := top.NumCores(); got != 160 {
		t.Errorf("cores = %d, want 160", got)
	}
	if got := top.NumPUs(); got != 160 {
		t.Errorf("PUs = %d, want 160", got)
	}
	if top.Attrs.Hyperthreaded {
		t.Error("SMP20E7 should not be hyperthreaded")
	}
}

func TestFig2MachineShape(t *testing.T) {
	top := Fig2Machine()
	if got := top.NumObjects(Group); got != 2 {
		t.Errorf("groups = %d, want 2", got)
	}
	if got := top.NumObjects(Socket); got != 4 {
		t.Errorf("sockets = %d, want 4", got)
	}
	if got := top.NumCores(); got != 32 {
		t.Errorf("cores = %d, want 32", got)
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	cases := []Spec{
		{},
		{NUMAPerGroup: 1, SocketsPerNUMA: 1, CoresPerSocket: 0, PUsPerCore: 1},
		{NUMAPerGroup: 1, SocketsPerNUMA: 1, CoresPerSocket: 1, PUsPerCore: 0},
		{NUMAPerGroup: 0, SocketsPerNUMA: 1, CoresPerSocket: 1, PUsPerCore: 1},
	}
	for i, spec := range cases {
		if _, err := Build(spec); err == nil {
			t.Errorf("case %d: Build accepted invalid spec %+v", i, spec)
		}
	}
}

func TestNewRejectsUnbalancedTree(t *testing.T) {
	root := &Object{Type: Machine}
	core := &Object{Type: Core}
	root.Children = []*Object{core, {Type: PU}}
	core.Children = []*Object{{Type: PU}}
	if _, err := New(root, Attrs{}); err == nil {
		t.Fatal("New accepted an unbalanced tree")
	}
}

func TestNewRejectsNonPULeaf(t *testing.T) {
	root := &Object{Type: Machine}
	root.Children = []*Object{{Type: Core}}
	if _, err := New(root, Attrs{}); err == nil {
		t.Fatal("New accepted a non-PU leaf")
	}
	if _, err := New(nil, Attrs{}); err == nil {
		t.Fatal("New accepted a nil root")
	}
}

func TestLogicalIndexesAreDense(t *testing.T) {
	top := SMP12E5()
	for typ := Machine; typ < numObjectTypes; typ++ {
		for i, o := range top.Objects(typ) {
			if o.LogicalIndex != i {
				t.Fatalf("%s logical index = %d, want %d", typ, o.LogicalIndex, i)
			}
		}
	}
}

func TestPUOSIndexesSequential(t *testing.T) {
	top := SMP20E7()
	for i, pu := range top.PUs() {
		if pu.OSIndex != i {
			t.Fatalf("PU %d has OS index %d", i, pu.OSIndex)
		}
	}
}

func TestAncestorAndDepth(t *testing.T) {
	top := TinyHT()
	pu := top.PU(0)
	if pu.Depth() != top.Depth() {
		t.Fatalf("PU depth %d != topology depth %d", pu.Depth(), top.Depth())
	}
	if got := pu.Ancestor(0); got != top.Root {
		t.Errorf("Ancestor(0) = %v, want root", got)
	}
	if got := pu.Ancestor(pu.Depth()); got != pu {
		t.Errorf("Ancestor(self depth) = %v, want the PU itself", got)
	}
	if got := pu.Ancestor(-1); got != nil {
		t.Errorf("Ancestor(-1) = %v, want nil", got)
	}
	if got := pu.Ancestor(pu.Depth() + 1); got != nil {
		t.Errorf("Ancestor(below) = %v, want nil", got)
	}
	if got := pu.AncestorOfType(Core); got == nil || got.Type != Core {
		t.Errorf("AncestorOfType(Core) = %v", got)
	}
	if got := pu.AncestorOfType(Group); got != nil {
		t.Errorf("AncestorOfType(Group) = %v, want nil on TinyHT", got)
	}
}

func TestCommonAncestorAndHopDistance(t *testing.T) {
	top := TinyHT() // 2 NUMA x 2 cores x 2 PUs
	pus := top.PUs()
	// Same core: PUs 0 and 1.
	if loc := LocalityOf(pus[0], pus[1]); loc != SameCore {
		t.Errorf("PU0/PU1 locality = %v, want same-core", loc)
	}
	// Same socket/L3, different core: PUs 0 and 2.
	if loc := LocalityOf(pus[0], pus[2]); loc != SameL3 {
		t.Errorf("PU0/PU2 locality = %v, want same-l3", loc)
	}
	// Different NUMA: PUs 0 and 4.
	if loc := LocalityOf(pus[0], pus[4]); loc != CrossGroup && loc != SameGroup {
		// TinyHT has no Group level; common ancestor is the machine.
		t.Errorf("PU0/PU4 locality = %v", loc)
	}
	if loc := LocalityOf(pus[3], pus[3]); loc != SamePU {
		t.Errorf("self locality = %v, want same-pu", loc)
	}
	if d := HopDistance(pus[0], pus[0]); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	d01 := HopDistance(pus[0], pus[1])
	d02 := HopDistance(pus[0], pus[2])
	d04 := HopDistance(pus[0], pus[4])
	if !(d01 < d02 && d02 < d04) {
		t.Errorf("distances not monotone: same-core %d, same-socket %d, cross-numa %d", d01, d02, d04)
	}
}

func TestLocalityOfFig2CrossBlade(t *testing.T) {
	top := Fig2Machine()
	pus := top.PUs()
	// 8 cores per socket, 2 sockets per blade: PU 0 and PU 8 are on
	// different sockets of the same blade; PU 0 and PU 16 cross blades.
	if loc := LocalityOf(pus[0], pus[8]); loc != SameGroup {
		t.Errorf("same-blade cross-numa locality = %v, want same-group", loc)
	}
	if loc := LocalityOf(pus[0], pus[16]); loc != CrossGroup {
		t.Errorf("cross-blade locality = %v, want cross-group", loc)
	}
}

func TestAritiesProduct(t *testing.T) {
	for _, top := range []*Topology{SMP12E5(), SMP20E7(), Fig2Machine(), TinyHT(), TinyFlat()} {
		prod := 1
		for _, a := range top.Arities() {
			prod *= a
		}
		if prod != top.NumPUs() {
			t.Errorf("%s: product of arities %v = %d, want %d PUs",
				top.Attrs.Name, top.Arities(), prod, top.NumPUs())
		}
	}
}

func TestObjectsAtDepth(t *testing.T) {
	top := TinyFlat()
	if got := len(top.ObjectsAtDepth(0)); got != 1 {
		t.Errorf("objects at depth 0 = %d, want 1", got)
	}
	if got := len(top.ObjectsAtDepth(top.Depth())); got != top.NumPUs() {
		t.Errorf("objects at leaf depth = %d, want %d", got, top.NumPUs())
	}
}

func TestPUsUnderObject(t *testing.T) {
	top := TinyHT()
	numa := top.Objects(NUMANode)[0]
	pus := numa.PUs()
	if len(pus) != 4 {
		t.Fatalf("PUs under first NUMA = %d, want 4", len(pus))
	}
	for _, pu := range pus {
		if pu.AncestorOfType(NUMANode) != numa {
			t.Errorf("PU %v not under expected NUMA node", pu)
		}
	}
}

func TestPUBoundsChecks(t *testing.T) {
	top := TinyFlat()
	if top.PU(-1) != nil || top.PU(top.NumPUs()) != nil {
		t.Error("PU out-of-range should return nil")
	}
	if top.Objects(ObjectType(-1)) != nil {
		t.Error("Objects with invalid type should return nil")
	}
}

func TestCPUSet(t *testing.T) {
	s := NewCPUSet(3, 1, 2, 8)
	if !s.Contains(2) || s.Contains(4) {
		t.Error("membership wrong")
	}
	s.Add(4)
	if got, want := s.String(), "1-4,8"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got := NewCPUSet().String(); got != "{}" {
		t.Errorf("empty set String() = %q", got)
	}
	if got := NewCPUSet(5).String(); got != "5" {
		t.Errorf("singleton String() = %q", got)
	}
	ids := s.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("IDs not sorted: %v", ids)
		}
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d, want 5", s.Len())
	}
}

func TestRenderContainsKeyObjects(t *testing.T) {
	out := TinyHT().RenderString()
	for _, want := range []string{"TinyHT", "NUMANode#1", "Core#3", "PU#7", "L3#0 (4MB)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, top := range []*Topology{TinyHT(), Fig2Machine()} {
		data, err := top.MarshalJSON()
		if err != nil {
			t.Fatalf("%s: marshal: %v", top.Attrs.Name, err)
		}
		got, err := FromJSON(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", top.Attrs.Name, err)
		}
		if got.NumPUs() != top.NumPUs() || got.NumCores() != top.NumCores() ||
			got.Depth() != top.Depth() || got.Attrs.Name != top.Attrs.Name {
			t.Errorf("%s: round trip changed shape", top.Attrs.Name)
		}
		if got.RenderString() != top.RenderString() {
			t.Errorf("%s: round trip changed rendering", top.Attrs.Name)
		}
	}
}

func TestFromJSONRejectsGarbage(t *testing.T) {
	if _, err := FromJSON([]byte(`{"root":{"type":"Gizmo"}}`)); err == nil {
		t.Error("FromJSON accepted unknown object type")
	}
	if _, err := FromJSON([]byte(`not json`)); err == nil {
		t.Error("FromJSON accepted non-JSON")
	}
}

func TestObjectTypeString(t *testing.T) {
	if Machine.String() != "Machine" || PU.String() != "PU" {
		t.Error("object type names wrong")
	}
	if got := ObjectType(99).String(); !strings.Contains(got, "99") {
		t.Errorf("invalid type String() = %q", got)
	}
	if ObjectType(99).Valid() {
		t.Error("ObjectType(99) should be invalid")
	}
}

func TestLocalityString(t *testing.T) {
	if SameCore.String() != "same-core" || CrossGroup.String() != "cross-group" {
		t.Error("locality names wrong")
	}
	if got := Locality(42).String(); !strings.Contains(got, "42") {
		t.Errorf("invalid locality String() = %q", got)
	}
}

// Property: hop distance is a metric restricted to the tree — symmetric,
// zero iff equal, and satisfies the triangle inequality.
func TestHopDistanceMetricProperties(t *testing.T) {
	top := SMP12E5()
	pus := top.PUs()
	n := len(pus)
	f := func(a, b, c uint16) bool {
		i, j, k := int(a)%n, int(b)%n, int(c)%n
		dij := HopDistance(pus[i], pus[j])
		dji := HopDistance(pus[j], pus[i])
		if dij != dji {
			return false
		}
		if (dij == 0) != (i == j) {
			return false
		}
		dik := HopDistance(pus[i], pus[k])
		dkj := HopDistance(pus[k], pus[j])
		return dij <= dik+dkj
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the common ancestor of two objects is an ancestor of both
// and is the deepest such object.
func TestCommonAncestorProperty(t *testing.T) {
	top := SMP20E7()
	pus := top.PUs()
	n := len(pus)
	f := func(a, b uint16) bool {
		x, y := pus[int(a)%n], pus[int(b)%n]
		ca := CommonAncestor(x, y)
		if ca == nil {
			return false
		}
		if x.Ancestor(ca.Depth()) != ca || y.Ancestor(ca.Depth()) != ca {
			return false
		}
		// One level deeper the ancestors must differ (unless x == y).
		if x == y {
			return ca == x
		}
		if ca.Depth() == x.Depth() {
			return true
		}
		return x.Ancestor(ca.Depth()+1) != y.Ancestor(ca.Depth()+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
