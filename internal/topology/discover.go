package topology

import (
	"fmt"
	"runtime"
	"sort"
)

// Machine discovery: the synthetic testbeds are published under stable
// names so every front end (lstopo, simulate, orwlnetd, the public
// facade) resolves machines the same way instead of each keeping its
// own flag-to-constructor table.

// machineBuilders maps machine names to constructors. Every call
// builds a fresh tree, so callers may mutate (restrict) their copy.
var machineBuilders = map[string]func() *Topology{
	"smp12e5":  SMP12E5,
	"smp20e7":  SMP20E7,
	"fig2":     Fig2Machine,
	"fleet1k":  Fleet1K,
	"tinyht":   TinyHT,
	"tinyflat": TinyFlat,
}

// MachineNames lists the discoverable machine names, sorted.
func MachineNames() []string {
	names := make([]string, 0, len(machineBuilders))
	for name := range machineBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ByName builds the named machine, or errors listing the valid names.
func ByName(name string) (*Topology, error) {
	build, ok := machineBuilders[name]
	if !ok {
		return nil, fmt.Errorf("topology: unknown machine %q (have %v)", name, MachineNames())
	}
	return build(), nil
}

// Host approximates the machine the process runs on: a flat
// single-socket tree with one core per available CPU. Go exposes no
// portable cache/NUMA introspection, so this is the honest lower bound
// of discovery — enough for a placement daemon to serve its own host
// when no named testbed is requested.
func Host() *Topology {
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	return MustBuild(Spec{
		Name:           "host",
		Groups:         1,
		NUMAPerGroup:   1,
		SocketsPerNUMA: 1,
		CoresPerSocket: n,
		PUsPerCore:     1,
		Attrs:          Attrs{Name: "host"},
	})
}
