package topology

import "fmt"

// Subtree returns a standalone topology whose root is a deep copy of
// the given object of top, with all machine attributes preserved. The
// partitioned mapper uses it to run TreeMatch against one branch of a
// machine (a NUMA node, a socket) as if it were a whole machine: the
// subtree's PUs keep their OS indexes, and because logical indexes are
// assigned depth-first, the subtree's local logical index k corresponds
// to global logical index base+k where base is the first PU (or core)
// of the branch — which is what makes stitching per-partition mappings
// back into machine-global bindings a constant-offset translation.
func Subtree(top *Topology, obj *Object) (*Topology, error) {
	if top == nil || obj == nil {
		return nil, fmt.Errorf("topology: subtree of nil")
	}
	var clone func(o *Object) *Object
	clone = func(o *Object) *Object {
		c := &Object{
			Type:      o.Type,
			OSIndex:   o.OSIndex,
			CacheSize: o.CacheSize,
			Memory:    o.Memory,
		}
		for _, child := range o.Children {
			c.Children = append(c.Children, clone(child))
		}
		return c
	}
	attrs := top.Attrs
	attrs.Name = fmt.Sprintf("%s/%s", top.Attrs.Name, obj)
	sub, err := New(clone(obj), attrs)
	if err != nil {
		return nil, fmt.Errorf("topology: subtree %s: %w", obj, err)
	}
	return sub, nil
}
