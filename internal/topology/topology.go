// Package topology provides a portable, abstracted view of the hardware
// topology of a shared-memory machine, playing the role that hwloc plays
// in the paper.
//
// A Topology is a tree of Objects: the machine at the root, then NUMA
// groups (blades), NUMA nodes, sockets, cache levels, cores and
// processing units (PUs, i.e. hardware threads) at the leaves. The
// mapping algorithm (internal/treematch) consumes the tree shape (depths
// and arities); the performance simulator (internal/perfsim) consumes
// the cache sizes, latencies and NUMA interconnect attributes.
//
// Synthetic builders reproduce the two testbed machines of the paper's
// Table I (SMP12E5 and SMP20E7) as well as the 4-socket machine of
// Fig. 2; a generic builder constructs arbitrary balanced machines.
package topology

import (
	"fmt"
	"sort"
	"strings"
)

// ObjectType enumerates the kinds of objects found in a topology tree,
// ordered from the root (Machine) towards the leaves (PU).
type ObjectType int

// Object types, from outermost to innermost.
const (
	Machine ObjectType = iota
	Group              // a NUMA group or blade connecting several NUMA nodes
	NUMANode
	Socket
	L3
	L2
	L1
	Core
	PU // processing unit: one hardware thread
	numObjectTypes
)

var objectTypeNames = [...]string{
	Machine:  "Machine",
	Group:    "Group",
	NUMANode: "NUMANode",
	Socket:   "Socket",
	L3:       "L3",
	L2:       "L2",
	L1:       "L1",
	Core:     "Core",
	PU:       "PU",
}

// String returns the hwloc-style name of the object type.
func (t ObjectType) String() string {
	if t < 0 || int(t) >= len(objectTypeNames) {
		return fmt.Sprintf("ObjectType(%d)", int(t))
	}
	return objectTypeNames[t]
}

// Valid reports whether t is one of the defined object types.
func (t ObjectType) Valid() bool { return t >= Machine && t < numObjectTypes }

// Object is one vertex of the topology tree.
type Object struct {
	Type ObjectType
	// LogicalIndex numbers objects of the same type across the whole
	// machine in depth-first order (like hwloc logical indexes).
	LogicalIndex int
	// OSIndex is the operating-system numbering; for PUs this is the
	// index used in binding masks. It equals LogicalIndex for the
	// synthetic machines built here.
	OSIndex int
	// CacheSize is the capacity in bytes for L1/L2/L3 objects, zero
	// otherwise.
	CacheSize int64
	// Memory is the local memory in bytes for Machine and NUMANode
	// objects, zero otherwise.
	Memory int64

	Parent   *Object
	Children []*Object

	depth int // root = 0
}

// Depth returns the depth of the object in the tree; the root machine
// has depth 0.
func (o *Object) Depth() int { return o.depth }

// Arity returns the number of children.
func (o *Object) Arity() int { return len(o.Children) }

// IsLeaf reports whether the object has no children.
func (o *Object) IsLeaf() bool { return len(o.Children) == 0 }

// String renders the object as "Type#logical".
func (o *Object) String() string {
	return fmt.Sprintf("%s#%d", o.Type, o.LogicalIndex)
}

// Ancestor returns the ancestor of o at the given depth, or nil if depth
// is below o or negative.
func (o *Object) Ancestor(depth int) *Object {
	if depth < 0 || depth > o.depth {
		return nil
	}
	cur := o
	for cur.depth > depth {
		cur = cur.Parent
	}
	return cur
}

// AncestorOfType returns the closest ancestor (possibly o itself) with
// the given type, or nil if there is none.
func (o *Object) AncestorOfType(t ObjectType) *Object {
	for cur := o; cur != nil; cur = cur.Parent {
		if cur.Type == t {
			return cur
		}
	}
	return nil
}

// PUs returns all PU leaves below o in logical order.
func (o *Object) PUs() []*Object {
	var out []*Object
	var walk func(*Object)
	walk = func(x *Object) {
		if x.Type == PU {
			out = append(out, x)
			return
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(o)
	return out
}

// Attrs carries machine-wide attributes used for reporting (Table I) and
// by the performance simulator.
type Attrs struct {
	Name             string
	OS               string
	Kernel           string
	SocketModel      string
	ClockMHz         float64
	Hyperthreaded    bool
	InterconnectName string
	// InterconnectGBps is the NUMA interconnect bandwidth in GB/s.
	InterconnectGBps float64
	// LocalMemGBps is the local DRAM bandwidth of one NUMA node in
	// GB/s.
	LocalMemGBps float64
	// Latencies of a miss serviced at each level, in core cycles.
	L1LatencyCycles   float64
	L2LatencyCycles   float64
	L3LatencyCycles   float64
	DRAMLatencyCycles float64
	// RemoteNUMAFactor multiplies DRAM latency for an access serviced
	// by a remote NUMA node on the same group.
	RemoteNUMAFactor float64
	// CrossGroupFactor multiplies DRAM latency for an access serviced
	// across groups/blades.
	CrossGroupFactor float64
}

// Topology is an immutable topology tree plus cached per-type object
// lists.
type Topology struct {
	Root  *Object
	Attrs Attrs

	byType [numObjectTypes][]*Object
	depth  int
}

// New finalises a tree rooted at root: it assigns depths and logical
// indexes and builds the per-type caches. The tree must be non-empty and
// all leaves must be PUs at the same depth.
func New(root *Object, attrs Attrs) (*Topology, error) {
	if root == nil {
		return nil, fmt.Errorf("topology: nil root")
	}
	t := &Topology{Root: root, Attrs: attrs}
	counters := make([]int, numObjectTypes)
	leafDepth := -1
	var walk func(o *Object, depth int) error
	walk = func(o *Object, depth int) error {
		if !o.Type.Valid() {
			return fmt.Errorf("topology: invalid object type %d", int(o.Type))
		}
		o.depth = depth
		o.LogicalIndex = counters[o.Type]
		counters[o.Type]++
		if o.OSIndex == 0 {
			o.OSIndex = o.LogicalIndex
		}
		t.byType[o.Type] = append(t.byType[o.Type], o)
		if o.IsLeaf() {
			if o.Type != PU {
				return fmt.Errorf("topology: leaf %s is not a PU", o)
			}
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("topology: unbalanced tree: PU at depth %d and %d", leafDepth, depth)
			}
			return nil
		}
		for _, c := range o.Children {
			c.Parent = o
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, 0); err != nil {
		return nil, err
	}
	if len(t.byType[PU]) == 0 {
		return nil, fmt.Errorf("topology: no PUs")
	}
	t.depth = leafDepth
	return t, nil
}

// Depth returns the depth of the PU leaves (the root is at depth 0).
func (t *Topology) Depth() int { return t.depth }

// Objects returns all objects of the given type in logical order. The
// returned slice must not be modified.
func (t *Topology) Objects(typ ObjectType) []*Object {
	if !typ.Valid() {
		return nil
	}
	return t.byType[typ]
}

// NumObjects returns the number of objects of the given type.
func (t *Topology) NumObjects(typ ObjectType) int { return len(t.Objects(typ)) }

// PUs returns the processing units in logical order.
func (t *Topology) PUs() []*Object { return t.byType[PU] }

// Cores returns the cores in logical order.
func (t *Topology) Cores() []*Object { return t.byType[Core] }

// NumPUs returns the number of processing units.
func (t *Topology) NumPUs() int { return len(t.byType[PU]) }

// NumCores returns the number of physical cores.
func (t *Topology) NumCores() int { return len(t.byType[Core]) }

// PU returns the PU with the given logical index, or nil.
func (t *Topology) PU(logical int) *Object {
	pus := t.byType[PU]
	if logical < 0 || logical >= len(pus) {
		return nil
	}
	return pus[logical]
}

// ObjectsAtDepth returns the objects at the given tree depth in
// depth-first order.
func (t *Topology) ObjectsAtDepth(depth int) []*Object {
	var out []*Object
	var walk func(*Object)
	walk = func(o *Object) {
		if o.depth == depth {
			out = append(out, o)
			return
		}
		for _, c := range o.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// Arities returns the arity of each level from the root (index 0) down
// to the parents of the PUs. For the balanced synthetic machines every
// object at a level has the same arity; if arities differ the maximum is
// reported.
func (t *Topology) Arities() []int {
	ar := make([]int, t.depth)
	// A single walk touching every object once, instead of one
	// ObjectsAtDepth materialization per level: Arities sits on the
	// mapping hot path (coreArities runs per treematch.Map call).
	var walk func(*Object)
	walk = func(o *Object) {
		if o.depth < len(ar) && o.Arity() > ar[o.depth] {
			ar[o.depth] = o.Arity()
		}
		for _, c := range o.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return ar
}

// CommonAncestor returns the deepest object that is an ancestor of both
// a and b (possibly one of them).
func CommonAncestor(a, b *Object) *Object {
	for a != nil && b != nil {
		if a.depth > b.depth {
			a = a.Parent
			continue
		}
		if b.depth > a.depth {
			b = b.Parent
			continue
		}
		if a == b {
			return a
		}
		a, b = a.Parent, b.Parent
	}
	return nil
}

// HopDistance returns the number of tree edges on the path between a and
// b (0 if a == b). It is the distance notion TreeMatch minimises.
func HopDistance(a, b *Object) int {
	ca := CommonAncestor(a, b)
	if ca == nil {
		return -1
	}
	return (a.depth - ca.depth) + (b.depth - ca.depth)
}

// Locality classifies how close two PUs are in the memory hierarchy.
type Locality int

// Localities from closest to farthest.
const (
	SamePU Locality = iota
	SameCore
	SameL2
	SameL3
	SameNUMA
	SameGroup
	CrossGroup
)

var localityNames = [...]string{
	SamePU:     "same-pu",
	SameCore:   "same-core",
	SameL2:     "same-l2",
	SameL3:     "same-l3",
	SameNUMA:   "same-numa",
	SameGroup:  "same-group",
	CrossGroup: "cross-group",
}

// String names the locality class.
func (l Locality) String() string {
	if l < 0 || int(l) >= len(localityNames) {
		return fmt.Sprintf("Locality(%d)", int(l))
	}
	return localityNames[l]
}

// LocalityOf classifies the relationship between two PUs.
func LocalityOf(a, b *Object) Locality {
	if a == b {
		return SamePU
	}
	ca := CommonAncestor(a, b)
	if ca == nil {
		return CrossGroup
	}
	switch ca.Type {
	case Core:
		return SameCore
	case L1:
		return SameCore
	case L2:
		return SameL2
	case L3, Socket:
		return SameL3
	case NUMANode:
		return SameNUMA
	case Group:
		return SameGroup
	default:
		return CrossGroup
	}
}

// CPUSet is a set of PU OS indexes, used to express bindings.
type CPUSet map[int]struct{}

// NewCPUSet builds a set from the given PU OS indexes.
func NewCPUSet(ids ...int) CPUSet {
	s := make(CPUSet, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Add inserts a PU OS index.
func (s CPUSet) Add(id int) { s[id] = struct{}{} }

// Contains reports membership.
func (s CPUSet) Contains(id int) bool {
	_, ok := s[id]
	return ok
}

// Len returns the number of PUs in the set.
func (s CPUSet) Len() int { return len(s) }

// IDs returns the sorted PU OS indexes.
func (s CPUSet) IDs() []int {
	out := make([]int, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// String renders the set as a comma-separated list of ids, with dashes
// for runs, e.g. "0-3,8".
func (s CPUSet) String() string {
	ids := s.IDs()
	if len(ids) == 0 {
		return "{}"
	}
	var b strings.Builder
	for i := 0; i < len(ids); {
		j := i
		for j+1 < len(ids) && ids[j+1] == ids[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j > i {
			fmt.Fprintf(&b, "%d-%d", ids[i], ids[j])
		} else {
			fmt.Fprintf(&b, "%d", ids[i])
		}
		i = j + 1
	}
	return b.String()
}
