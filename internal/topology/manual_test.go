package topology

import "testing"

// Tests on hand-built trees covering shapes the generic builder cannot
// produce (shared L2s, missing cache levels).

// sharedL2Machine builds 1 socket with one L2 shared by two cores.
func sharedL2Machine(t *testing.T) *Topology {
	t.Helper()
	root := &Object{Type: Machine}
	numa := &Object{Type: NUMANode, Memory: 1 << 30}
	sock := &Object{Type: Socket}
	l2 := &Object{Type: L2, CacheSize: 1 << 20}
	root.Children = []*Object{numa}
	numa.Children = []*Object{sock}
	sock.Children = []*Object{l2}
	for c := 0; c < 2; c++ {
		core := &Object{Type: Core}
		core.Children = []*Object{{Type: PU}}
		l2.Children = append(l2.Children, core)
	}
	top, err := New(root, Attrs{Name: "sharedL2"})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestSharedL2Locality(t *testing.T) {
	top := sharedL2Machine(t)
	pus := top.PUs()
	if len(pus) != 2 {
		t.Fatalf("PUs = %d", len(pus))
	}
	if loc := LocalityOf(pus[0], pus[1]); loc != SameL2 {
		t.Errorf("locality = %v, want same-l2", loc)
	}
}

func TestNoCacheMachine(t *testing.T) {
	// NUMA -> Socket -> Core -> PU without any cache objects.
	root := &Object{Type: Machine}
	for n := 0; n < 2; n++ {
		numa := &Object{Type: NUMANode}
		sock := &Object{Type: Socket}
		core := &Object{Type: Core}
		core.Children = []*Object{{Type: PU}}
		sock.Children = []*Object{core}
		numa.Children = []*Object{sock}
		root.Children = append(root.Children, numa)
	}
	top, err := New(root, Attrs{Name: "nocache"})
	if err != nil {
		t.Fatal(err)
	}
	pus := top.PUs()
	// Common ancestor is the machine: cross-group locality by our
	// classification (no Group level).
	if loc := LocalityOf(pus[0], pus[1]); loc != CrossGroup {
		t.Errorf("locality = %v", loc)
	}
	if top.NumObjects(L3) != 0 {
		t.Error("phantom caches")
	}
}

func TestOSIndexPreserved(t *testing.T) {
	// Explicit OS indexes must survive New and JSON round trips.
	root := &Object{Type: Machine}
	core := &Object{Type: Core}
	core.Children = []*Object{{Type: PU, OSIndex: 7}, {Type: PU, OSIndex: 3}}
	root.Children = []*Object{core}
	top, err := New(root, Attrs{Name: "osidx"})
	if err != nil {
		t.Fatal(err)
	}
	if top.PUs()[0].OSIndex != 7 || top.PUs()[1].OSIndex != 3 {
		t.Errorf("OS indexes = %d/%d", top.PUs()[0].OSIndex, top.PUs()[1].OSIndex)
	}
	data, err := top.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.PUs()[0].OSIndex != 7 || back.PUs()[1].OSIndex != 3 {
		t.Error("OS indexes lost in round trip")
	}
}

func TestObjectStringAndPUsOnLeaf(t *testing.T) {
	top := TinyFlat()
	pu := top.PU(0)
	if pu.String() != "PU#0" {
		t.Errorf("String = %q", pu.String())
	}
	if got := pu.PUs(); len(got) != 1 || got[0] != pu {
		t.Error("PUs of a leaf should be itself")
	}
	if pu.IsLeaf() != true || top.Root.IsLeaf() {
		t.Error("leaf detection wrong")
	}
	if top.Root.Arity() == 0 {
		t.Error("root arity zero")
	}
}

func TestHopDistanceDisjointTrees(t *testing.T) {
	a := TinyFlat()
	b := TinyFlat()
	if d := HopDistance(a.PU(0), b.PU(0)); d != -1 {
		t.Errorf("disjoint distance = %d, want -1", d)
	}
	if CommonAncestor(a.PU(0), nil) != nil {
		t.Error("nil ancestor should be nil")
	}
}
