package topology

// Synthetic models of the machines used in the paper's evaluation
// (Table I) plus the 4-socket machine of Fig. 2.

// SMP12E5 models the newer testbed: 12 NUMA nodes of one E5-4620 socket
// each (8 cores, 2.6 GHz), hyperthreading enabled (192 PUs on 96 cores),
// NUMAlink6 interconnect at 6.5 GB/s, L1 32K / L2 256K / L3 20480K.
func SMP12E5() *Topology {
	return MustBuild(Spec{
		Name:           "SMP12E5",
		Groups:         1,
		NUMAPerGroup:   12,
		SocketsPerNUMA: 1,
		CoresPerSocket: 8,
		PUsPerCore:     2,
		L1Size:         32 << 10,
		L2Size:         256 << 10,
		L3Size:         20480 << 10,
		MemoryPerNUMA:  32 << 30,
		Attrs: Attrs{
			Name:             "SMP12E5",
			OS:               "Red Hat 4.8.3-9",
			Kernel:           "3.10.0",
			SocketModel:      "E5-4620",
			ClockMHz:         2600,
			InterconnectName: "NUMAlink6",
			InterconnectGBps: 6.5,
		},
	})
}

// SMP20E7 models the older testbed: 20 NUMA nodes of one E7-8837 socket
// each (8 cores, 2.66 GHz), no hyperthreading (160 PUs on 160 cores),
// NUMAlink5 interconnect at 15 GB/s, L1 32K / L2 32K / L3 24576K.
func SMP20E7() *Topology {
	return MustBuild(Spec{
		Name:           "SMP20E7",
		Groups:         1,
		NUMAPerGroup:   20,
		SocketsPerNUMA: 1,
		CoresPerSocket: 8,
		PUsPerCore:     1,
		L1Size:         32 << 10,
		L2Size:         32 << 10,
		L3Size:         24576 << 10,
		MemoryPerNUMA:  32 << 30,
		Attrs: Attrs{
			Name:             "SMP20E7",
			OS:               "SUSE Server 11",
			Kernel:           "2.6.32.46",
			SocketModel:      "E7-8837",
			ClockMHz:         2660,
			InterconnectName: "NUMAlink5",
			InterconnectGBps: 15,
		},
	})
}

// Fig2Machine models the 4-socket, 32-core machine of the paper's
// Fig. 2: 2 blades of 2 sockets, 8 cores per socket, no hyperthreading.
// Each socket is its own NUMA node, as on the testbeds.
func Fig2Machine() *Topology {
	return MustBuild(Spec{
		Name:           "Fig2-4socket",
		Groups:         2,
		NUMAPerGroup:   2,
		SocketsPerNUMA: 1,
		CoresPerSocket: 8,
		PUsPerCore:     1,
		L1Size:         32 << 10,
		L2Size:         256 << 10,
		L3Size:         20480 << 10,
		MemoryPerNUMA:  16 << 30,
		Attrs: Attrs{
			Name:             "Fig2-4socket",
			SocketModel:      "E5-4620",
			ClockMHz:         2600,
			InterconnectName: "QPI",
			InterconnectGBps: 12,
		},
	})
}

// TinyHT is a small hyperthreaded machine used throughout the test
// suite: 2 NUMA nodes x 1 socket x 2 cores x 2 PUs = 8 PUs.
func TinyHT() *Topology {
	return MustBuild(Spec{
		Name:           "TinyHT",
		NUMAPerGroup:   2,
		SocketsPerNUMA: 1,
		CoresPerSocket: 2,
		PUsPerCore:     2,
		L1Size:         32 << 10,
		L2Size:         256 << 10,
		L3Size:         4 << 20,
		MemoryPerNUMA:  4 << 30,
		Attrs:          Attrs{Name: "TinyHT", ClockMHz: 2000, InterconnectGBps: 8},
	})
}

// Fleet1K is a synthetic large-scale testbed for the sparse mapping
// path: 16 blades of 4 NUMA nodes with one 16-core socket each — 1024
// cores, no hyperthreading. It extrapolates the SMP testbeds' shape to
// the scale the partitioned mapper targets (10k tasks oversubscribed
// ~10x onto 1k cores).
func Fleet1K() *Topology {
	return MustBuild(Spec{
		Name:           "Fleet1K",
		Groups:         16,
		NUMAPerGroup:   4,
		SocketsPerNUMA: 1,
		CoresPerSocket: 16,
		PUsPerCore:     1,
		L1Size:         32 << 10,
		L2Size:         256 << 10,
		L3Size:         20480 << 10,
		MemoryPerNUMA:  64 << 30,
		Attrs: Attrs{
			Name:             "Fleet1K",
			SocketModel:      "synthetic-16c",
			ClockMHz:         2600,
			InterconnectName: "NUMAlink6",
			InterconnectGBps: 6.5,
		},
	})
}

// TinyFlat is a small non-hyperthreaded machine for tests: 2 NUMA nodes
// x 1 socket x 4 cores = 8 PUs.
func TinyFlat() *Topology {
	return MustBuild(Spec{
		Name:           "TinyFlat",
		NUMAPerGroup:   2,
		SocketsPerNUMA: 1,
		CoresPerSocket: 4,
		PUsPerCore:     1,
		L1Size:         32 << 10,
		L2Size:         256 << 10,
		L3Size:         4 << 20,
		MemoryPerNUMA:  4 << 30,
		Attrs:          Attrs{Name: "TinyFlat", ClockMHz: 2000, InterconnectGBps: 8},
	})
}
