package topology

import "fmt"

// Restrict returns a new topology containing only the first `nodes`
// NUMA nodes of top (in logical order), with all attributes preserved.
// It reproduces experiment setups that confine an application to part
// of a machine, like the paper's video-tracking runs "on only 4
// sockets (30 cores)". The input topology is not modified.
func Restrict(top *Topology, nodes int) (*Topology, error) {
	total := top.NumObjects(NUMANode)
	if total == 0 {
		return nil, fmt.Errorf("topology: %s has no NUMA nodes to restrict", top.Attrs.Name)
	}
	if nodes < 1 || nodes > total {
		return nil, fmt.Errorf("topology: restrict to %d of %d NUMA nodes", nodes, total)
	}
	if nodes == total {
		// Still rebuild, so the caller always owns an independent tree.
		nodes = total
	}
	kept := 0
	var clone func(o *Object) *Object
	clone = func(o *Object) *Object {
		if o.Type == NUMANode {
			if kept >= nodes {
				return nil
			}
			kept++
		}
		c := &Object{
			Type:      o.Type,
			OSIndex:   o.OSIndex,
			CacheSize: o.CacheSize,
			Memory:    o.Memory,
		}
		for _, child := range o.Children {
			if cc := clone(child); cc != nil {
				c.Children = append(c.Children, cc)
			}
		}
		if o.Type != PU && len(c.Children) == 0 {
			return nil // containers emptied by the cut disappear
		}
		return c
	}
	root := clone(top.Root)
	if root == nil {
		return nil, fmt.Errorf("topology: restriction removed every PU")
	}
	attrs := top.Attrs
	attrs.Name = fmt.Sprintf("%s/%dnodes", top.Attrs.Name, nodes)
	return New(root, attrs)
}
