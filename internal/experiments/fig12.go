package experiments

import (
	"fmt"

	"orwlplace/internal/apps/tracking"
	"orwlplace/internal/comm"
	"orwlplace/internal/core"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// Fig1 regenerates the communication matrix of the 30-task video
// tracking application (the paper renders it on a logarithmic gray
// scale). The returned matrix is the one the ORWL runtime derives at
// schedule time; the string is the text raster.
func Fig1() (*comm.Matrix, string, error) {
	cfg := tracking.PaperConfig(tracking.HD)
	m, err := cfg.CommMatrix()
	if err != nil {
		return nil, "", err
	}
	text := "Fig. 1 — communication matrix of the video tracking application\n" +
		m.RenderGrayScale()
	return m, text, nil
}

// Fig2 regenerates the task allocation of the tracking application on
// the 4-socket, 32-core machine: Algorithm 1 maps the 30 tasks and
// reserves the spare cores for control threads.
func Fig2() (*treematch.Mapping, string, error) {
	cfg := tracking.PaperConfig(tracking.HD)
	m, err := cfg.CommMatrix()
	if err != nil {
		return nil, "", err
	}
	eng := engineFor(topology.Fig2Machine())
	a, err := eng.Compute(placement.TreeMatch, m, 0, placement.Options{ControlThreads: true})
	if err != nil {
		return nil, "", err
	}
	mapping := a.Mapping(eng.Topology())
	text := "Fig. 2 — " + core.RenderMapping(mapping, cfg.TaskNames())
	return mapping, text, nil
}

// Fig3 renders the data-flow graph of the video tracking application
// (Fig. 3 of the paper).
func Fig3() string {
	return "Fig. 3 — " + tracking.PaperConfig(tracking.HD).RenderDFG()
}

// TableI renders the characteristics of the two simulated testbeds.
func TableI() *Table {
	t := &Table{
		ID:      "Table I",
		Title:   "Multi-core architectures used for the experiments",
		Columns: []string{"Name"},
	}
	tops := Machines()
	for _, top := range tops {
		t.Columns = append(t.Columns, top.Attrs.Name)
	}
	row := func(name string, get func(*topology.Topology) string) {
		r := []string{name}
		for _, top := range tops {
			r = append(r, get(top))
		}
		t.Rows = append(t.Rows, r)
	}
	row("OS", func(tp *topology.Topology) string { return tp.Attrs.OS })
	row("Kernel", func(tp *topology.Topology) string { return tp.Attrs.Kernel })
	row("Cores per socket", func(tp *topology.Topology) string {
		return fmt.Sprintf("%d", tp.NumCores()/tp.NumObjects(topology.Socket))
	})
	row("NUMA nodes", func(tp *topology.Topology) string {
		return fmt.Sprintf("%d", tp.NumObjects(topology.NUMANode))
	})
	row("Socket", func(tp *topology.Topology) string { return tp.Attrs.SocketModel })
	row("Clock rate", func(tp *topology.Topology) string {
		return fmt.Sprintf("%.0fMHz", tp.Attrs.ClockMHz)
	})
	row("Hyper-Threading", func(tp *topology.Topology) string {
		if tp.Attrs.Hyperthreaded {
			return "Yes"
		}
		return "No"
	})
	row("Total cores", func(tp *topology.Topology) string { return fmt.Sprintf("%d", tp.NumCores()) })
	row("Total PUs", func(tp *topology.Topology) string { return fmt.Sprintf("%d", tp.NumPUs()) })
	row("L1 cache", func(tp *topology.Topology) string { return cacheSize(tp, topology.L1) })
	row("L2 cache", func(tp *topology.Topology) string { return cacheSize(tp, topology.L2) })
	row("L3 cache", func(tp *topology.Topology) string { return cacheSize(tp, topology.L3) })
	row("Memory interconnect", func(tp *topology.Topology) string {
		return fmt.Sprintf("%s (%.1fGB/s)", tp.Attrs.InterconnectName, tp.Attrs.InterconnectGBps)
	})
	return t
}

func cacheSize(tp *topology.Topology, typ topology.ObjectType) string {
	objs := tp.Objects(typ)
	if len(objs) == 0 {
		return "-"
	}
	return fmt.Sprintf("%dK", objs[0].CacheSize>>10)
}
