package experiments

import (
	"fmt"

	"orwlplace/internal/perfsim"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// dynamicSeed fixes the affinity-oblivious scheduler permutation so
// every regeneration produces the same numbers.
const dynamicSeed = 42

// runAffinity maps a workload with the paper's affinity module
// (TreeMatch with control-thread accounting) and simulates it.
func runAffinity(top *topology.Topology, w *perfsim.Workload) (*perfsim.Result, *treematch.Mapping, error) {
	mapping, err := treematch.Map(top, w.Comm, treematch.Options{ControlThreads: true})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: mapping %q: %w", w.Name, err)
	}
	res, err := perfsim.Simulate(top, w, &perfsim.Placement{
		ComputePU:  mapping.ComputePU,
		ControlPU:  mapping.ControlPU,
		LocalAlloc: true,
	})
	if err != nil {
		return nil, nil, err
	}
	return res, mapping, nil
}

// runDynamic simulates an unbound run under the machine's native OS
// scheduling policy.
func runDynamic(top *topology.Topology, w *perfsim.Workload) (*perfsim.Result, error) {
	return perfsim.Simulate(top, w, &perfsim.Placement{
		Dynamic: &perfsim.DynamicPolicy{
			Policy: perfsim.PolicyFor(top),
			Seed:   dynamicSeed,
		},
	})
}

// runStrategy simulates a run bound by one of the OpenMP/MKL
// environment strategies.
func runStrategy(top *topology.Topology, w *perfsim.Workload, s treematch.Strategy) (*perfsim.Result, error) {
	place, err := treematch.Place(top, len(w.Threads), s)
	if err != nil {
		return nil, err
	}
	return perfsim.Simulate(top, w, &perfsim.Placement{
		ComputePU:  place,
		LocalAlloc: true,
	})
}

// Machines returns the two simulated testbeds of Table I.
func Machines() []*topology.Topology {
	return []*topology.Topology{topology.SMP12E5(), topology.SMP20E7()}
}
