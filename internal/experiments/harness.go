package experiments

import (
	"fmt"
	"sync"

	"orwlplace/internal/perfsim"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// dynamicSeed fixes the affinity-oblivious scheduler permutation so
// every regeneration produces the same numbers.
const dynamicSeed = 42

// Engines are memoised per machine signature: every figure, table and
// the summary regenerate overlapping workloads (k23Run and matmulRun
// re-derive identical matrices for the tables and the summary), so a
// shared mapping cache makes the whole evaluation pay each TreeMatch
// run once.
var (
	enginesMu sync.Mutex
	engines   = map[uint64]*placement.Engine{}
)

func engineFor(top *topology.Topology) *placement.Engine {
	sig := placement.Signature(top)
	enginesMu.Lock()
	defer enginesMu.Unlock()
	if e, ok := engines[sig]; ok {
		return e
	}
	e, err := placement.NewEngine(top)
	if err != nil {
		panic(err) // machines come from topology constructors, never nil
	}
	engines[sig] = e
	return e
}

// runAffinity maps a workload with the paper's affinity module
// (TreeMatch with control-thread accounting) and simulates it.
func runAffinity(top *topology.Topology, w *perfsim.Workload) (*perfsim.Result, *treematch.Mapping, error) {
	eng := engineFor(top)
	res, a, err := eng.Simulate(placement.TreeMatch, w, placement.Options{ControlThreads: true}, dynamicSeed)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: mapping %q: %w", w.Name, err)
	}
	return res, a.Mapping(eng.Topology()), nil
}

// runDynamic simulates an unbound run under the machine's native OS
// scheduling policy — the registry's none baseline.
func runDynamic(top *topology.Topology, w *perfsim.Workload) (*perfsim.Result, error) {
	res, _, err := engineFor(top).Simulate(placement.None, w, placement.Options{}, dynamicSeed)
	return res, err
}

// runStrategy simulates a run bound by one registered strategy.
func runStrategy(top *topology.Topology, w *perfsim.Workload, name string) (*perfsim.Result, error) {
	res, _, err := engineFor(top).Simulate(name, w, placement.Options{}, dynamicSeed)
	return res, err
}

// bestOblivious evaluates every registered matrix-oblivious bound
// strategy and returns the fastest run with its name — how the paper
// reports "the best OpenMP/MKL environment binding found". New
// strategies join the comparison by registering, without touching the
// figures. The candidate runs are independent, so they fan out across
// goroutines; the winner is picked from the collected results in
// registry order, keeping the outcome deterministic.
func bestOblivious(top *topology.Topology, w *perfsim.Workload) (*perfsim.Result, string, error) {
	names := placement.ObliviousNames()
	results, err := runStrategiesParallel(top, w, names, nil)
	if err != nil {
		return nil, "", err
	}
	var best *perfsim.Result
	var bestName string
	for i, res := range results {
		if best == nil || res.Seconds < best.Seconds {
			best, bestName = res, names[i]
		}
	}
	if best == nil {
		return nil, "", fmt.Errorf("experiments: no oblivious strategies registered")
	}
	return best, bestName, nil
}

// runStrategiesParallel simulates one workload under several
// strategies concurrently, returning the results in input order. opts
// maps a strategy name to non-default options (nil for all-default).
// The engine underneath is concurrency-safe and singleflights
// duplicate keys, so the fan-out costs no duplicate computes.
func runStrategiesParallel(top *topology.Topology, w *perfsim.Workload, names []string, opts map[string]placement.Options) ([]*perfsim.Result, error) {
	eng := engineFor(top)
	results := make([]*perfsim.Result, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			results[i], _, errs[i] = eng.Simulate(name, w, opts[name], dynamicSeed)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Machines returns the two simulated testbeds of Table I.
func Machines() []*topology.Topology {
	return []*topology.Topology{topology.SMP12E5(), topology.SMP20E7()}
}
