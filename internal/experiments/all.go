package experiments

import (
	"fmt"
	"io"
)

// Artifact is one regenerated paper artifact.
type Artifact struct {
	ID   string
	Text string
}

// All regenerates every table and figure in paper order.
func All() ([]Artifact, error) {
	var out []Artifact
	add := func(id, text string) { out = append(out, Artifact{ID: id, Text: text}) }

	_, fig1, err := Fig1()
	if err != nil {
		return nil, err
	}
	add("fig1", fig1)

	_, fig2, err := Fig2()
	if err != nil {
		return nil, err
	}
	add("fig2", fig2)

	add("fig3", Fig3())

	add("table1", TableI().Render())

	for _, top := range Machines() {
		fig4, err := Fig4(top)
		if err != nil {
			return nil, err
		}
		add("fig4", fig4.Render())
	}
	t2, err := TableII()
	if err != nil {
		return nil, err
	}
	add("table2", t2.Render())

	for _, top := range Machines() {
		fig5, err := Fig5(top)
		if err != nil {
			return nil, err
		}
		add("fig5", fig5.Render())
	}
	t3, err := TableIII()
	if err != nil {
		return nil, err
	}
	add("table3", t3.Render())

	for _, top := range Machines() {
		fig6, err := Fig6(top)
		if err != nil {
			return nil, err
		}
		add("fig6", fig6.Render())
	}
	t4, err := TableIV()
	if err != nil {
		return nil, err
	}
	add("table4", t4.Render())

	strat, err := StrategyTable()
	if err != nil {
		return nil, err
	}
	add("strategies", strat.Render())

	summary, err := Summary()
	if err != nil {
		return nil, err
	}
	add("summary", summary.Render())
	return out, nil
}

// WriteAll renders every artifact to w.
func WriteAll(w io.Writer) error {
	arts, err := All()
	if err != nil {
		return err
	}
	for _, a := range arts {
		if _, err := fmt.Fprintf(w, "%s\n", a.Text); err != nil {
			return err
		}
	}
	return nil
}
