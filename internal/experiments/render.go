// Package experiments regenerates every table and figure of the
// paper's evaluation section (§VI) on the simulated testbeds. Each
// artifact has one entry point returning structured data plus a text
// rendering; cmd/experiments drives them all, and the root-level
// benchmarks wrap them as testing.B targets.
package experiments

import (
	"fmt"
	"strings"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	Y     []float64
}

// Figure is a reproduced paper figure: X values (core counts,
// resolutions) against one or more series.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	XTicks []string
	Series []Series
}

// Render lays the figure out as an aligned text table, one row per X
// tick.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n", f.ID, f.Title, f.YLabel)
	headers := append([]string{f.XLabel}, labels(f.Series)...)
	rows := make([][]string, len(f.XTicks))
	for i, tick := range f.XTicks {
		row := []string{tick}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, formatValue(s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows[i] = row
	}
	writeAligned(&b, headers, rows)
	return b.String()
}

// Table is a reproduced paper table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Render lays the table out with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeAligned(&b, t.Columns, t.Rows)
	return b.String()
}

func labels(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Label
	}
	return out
}

func formatValue(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func writeAligned(b *strings.Builder, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for _, row := range rows {
		writeRow(row)
	}
}

// billions formats a counter as billions with one decimal.
func billions(v float64) string { return fmt.Sprintf("%.1f", v/1e9) }
