package experiments

import (
	"fmt"

	"orwlplace/internal/apps/tracking"
	"orwlplace/internal/topology"
)

// Summary condenses the whole evaluation into the paper's headline
// numbers: the speedup the automatic affinity module delivers over the
// unbound native run and over the best oblivious baseline, per
// application and machine ("spectacular performance improvements …
// up to 9x without changing a line of code", §I/§VI).
func Summary() (*Table, error) {
	t := &Table{
		ID:    "Summary",
		Title: "Affinity-module speedups (modeled), per application and machine",
		Columns: []string{
			"application", "machine", "vs native ORWL", "vs best baseline",
		},
	}
	addRow := func(app, machine string, native, baseline, affinity float64) {
		t.Rows = append(t.Rows, []string{
			app, machine,
			fmt.Sprintf("%.1fx", native/affinity),
			fmt.Sprintf("%.1fx", baseline/affinity),
		})
	}

	for _, top := range Machines() {
		cores := Fig4Cores(top)
		res, err := k23Run(top, cores[len(cores)-1])
		if err != nil {
			return nil, err
		}
		addRow("Livermore K23", top.Attrs.Name,
			res.ORWL.Seconds, res.OpenMPAffinity.Seconds, res.ORWLAffinity.Seconds)
	}
	for _, top := range Machines() {
		cores := Fig5Cores(top)
		res, err := matmulRun(top, cores[len(cores)-1])
		if err != nil {
			return nil, err
		}
		best := res.MKL.Seconds
		for _, r := range []float64{res.MKLScatter.Seconds, res.MKLCompact.Seconds} {
			if r < best {
				best = r
			}
		}
		addRow("Matrix multiplication", top.Attrs.Name,
			res.ORWL.Seconds, best, res.ORWLAffinity.Seconds)
	}
	for _, top := range Machines() {
		res, err := trackingRun(top, tracking.HD, trackingFrames)
		if err != nil {
			return nil, err
		}
		addRow("Video tracking (HD)", top.Attrs.Name,
			res.ORWL.Seconds, res.OpenMPAffinity.Seconds, res.ORWLAffinity.Seconds)
	}
	return t, nil
}

// MaxAffinityGain returns the largest native-vs-affinity factor in the
// summary — the "up to Nx" of the abstract.
func MaxAffinityGain() (float64, error) {
	var max float64
	for _, top := range []*topology.Topology{Machines()[0], Machines()[1]} {
		cores := Fig4Cores(top)
		res, err := k23Run(top, cores[len(cores)-1])
		if err != nil {
			return 0, err
		}
		if g := res.ORWL.Seconds / res.ORWLAffinity.Seconds; g > max {
			max = g
		}
		tr, err := trackingRun(top, tracking.HD, trackingFrames)
		if err != nil {
			return 0, err
		}
		if g := tr.ORWL.Seconds / tr.ORWLAffinity.Seconds; g > max {
			max = g
		}
	}
	return max, nil
}
