package experiments

import (
	"strings"
	"testing"

	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// These tests pin the qualitative claims of the paper's evaluation:
// orderings, crossovers and improvement factors. Absolute values are
// modeled, so assertions use the shapes §VI reports, not its numbers.

func TestFig1MatrixStructure(t *testing.T) {
	m, text, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if m.Order() != 30 {
		t.Fatalf("order = %d, want 30", m.Order())
	}
	// Pipeline spine and split stars present.
	if m.At(0, 1) == 0 {
		t.Error("producer->gmm missing")
	}
	if m.At(1, 10) == 0 || m.At(1, 25) == 0 {
		t.Error("gmm split star missing")
	}
	if m.At(7, 26) == 0 {
		t.Error("ccl split star missing")
	}
	if !strings.Contains(text, "Fig. 1") {
		t.Error("render missing title")
	}
}

func TestFig2MappingReproducesPaperStructure(t *testing.T) {
	mapping, text, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	// 30 tasks on 32 cores: spare-core control mode, like the paper's
	// cores 22-23 being "automatically reserved for control threads".
	if mapping.Mode != treematch.ControlSpareCores {
		t.Errorf("control mode = %v, want spare-cores", mapping.Mode)
	}
	ctl := 0
	for _, pu := range mapping.ControlPU {
		if pu >= 0 {
			ctl++
		}
	}
	if ctl != 2 {
		t.Errorf("%d control placements, want 2 (32-30 spare cores)", ctl)
	}
	// One compute task per core.
	seen := map[int]bool{}
	for _, c := range mapping.CoreOf {
		if seen[c] {
			t.Fatal("core reused")
		}
		seen[c] = true
	}
	// The heavy gmm<->splits star must be kept close: the gmm master
	// shares a socket with several of its split workers... at minimum,
	// the mapping must beat scatter on the cost metric.
	m, _, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	top := topology.Fig2Machine()
	tmCost, err := treematch.Cost(top, m, mapping.ComputePU)
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := treematch.Place(top, 30, treematch.StrategyScatter)
	scCost, _ := treematch.Cost(top, m, sc)
	if tmCost >= scCost {
		t.Errorf("treematch cost %g >= scatter %g", tmCost, scCost)
	}
	if !strings.Contains(text, "producer") {
		t.Error("render missing task names")
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	tab := TableI()
	text := tab.Render()
	for _, want := range []string{
		"SMP12E5", "SMP20E7", "E5-4620", "E7-8837",
		"NUMAlink6", "NUMAlink5", "3.10.0", "2.6.32.46",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func seriesByLabel(f *Figure, label string) []float64 {
	for _, s := range f.Series {
		if s.Label == label {
			return s.Y
		}
	}
	return nil
}

func TestFig4Shapes(t *testing.T) {
	for _, top := range Machines() {
		fig, err := Fig4(top)
		if err != nil {
			t.Fatal(err)
		}
		orwl := seriesByLabel(fig, "ORWL")
		aff := seriesByLabel(fig, "ORWL(affinity)")
		omp := seriesByLabel(fig, "OpenMP")
		ompAff := seriesByLabel(fig, "OpenMP(affinity)")
		last := len(aff) - 1

		// At one core all configurations are equivalent (±10%).
		for _, s := range [][]float64{orwl, omp, ompAff} {
			if ratio := s[0] / aff[0]; ratio < 0.9 || ratio > 1.1 {
				t.Errorf("%s: 1-core ratio %g, want ~1", top.Attrs.Name, ratio)
			}
		}
		// The affinity module keeps scaling to the full machine.
		if aff[last] >= aff[0]/4 {
			t.Errorf("%s: ORWL(affinity) scaled only %gx", top.Attrs.Name, aff[0]/aff[last])
		}
		// At the largest core count: ORWL(affinity) is the fastest and
		// beats the native run by a substantial factor (paper: ~8x on
		// SMP12E5, ~3x on SMP20E7).
		for _, s := range [][]float64{orwl, omp, ompAff} {
			if aff[last] >= s[last] {
				t.Errorf("%s: ORWL(affinity) %g not fastest (vs %g)", top.Attrs.Name, aff[last], s[last])
			}
		}
		gain := orwl[last] / aff[last]
		wantGain := 2.0
		if top.Attrs.Hyperthreaded {
			wantGain = 4.0 // hyperthreading amplifies the win (§VII)
		}
		if gain < wantGain {
			t.Errorf("%s: affinity gain %.1fx, want >= %.1fx", top.Attrs.Name, gain, wantGain)
		}
		// Natives plateau: past 16 cores they improve far slower than
		// the affinity version.
		if orwl[last] > orwl[0] {
			t.Errorf("%s: native ORWL slower at full machine than at 1 core", top.Attrs.Name)
		}
	}
}

func TestFig4HyperthreadingAmplifiesGain(t *testing.T) {
	// §VII: moving to the hyperthreaded machine makes the ORWL gain
	// larger, because control threads get the sibling PUs.
	gains := map[string]float64{}
	for _, top := range Machines() {
		fig, err := Fig4(top)
		if err != nil {
			t.Fatal(err)
		}
		orwl := seriesByLabel(fig, "ORWL")
		aff := seriesByLabel(fig, "ORWL(affinity)")
		// Compare at 64 cores (index 4 on both machines).
		gains[top.Attrs.Name] = orwl[4] / aff[4]
	}
	if gains["SMP12E5"] <= gains["SMP20E7"] {
		t.Errorf("gain on hyperthreaded SMP12E5 (%.1fx) should exceed SMP20E7 (%.1fx)",
			gains["SMP12E5"], gains["SMP20E7"])
	}
}

func TestTableIICounters(t *testing.T) {
	res, err := k23Run(topology.SMP12E5(), 64)
	if err != nil {
		t.Fatal(err)
	}
	// Affinity zeroes migrations (both runtimes).
	if res.ORWLAffinity.CPUMigrations != 0 || res.OpenMPAffinity.CPUMigrations != 0 {
		t.Error("bound runs must not migrate")
	}
	if res.ORWL.CPUMigrations == 0 || res.OpenMP.CPUMigrations == 0 {
		t.Error("native runs must migrate")
	}
	// ORWL generates far more context switches than OpenMP (control
	// threads), with a slight reduction under affinity.
	if res.ORWL.ContextSwitches < 5*res.OpenMP.ContextSwitches {
		t.Errorf("ORWL switches %g not >> OpenMP %g",
			res.ORWL.ContextSwitches, res.OpenMP.ContextSwitches)
	}
	if res.ORWLAffinity.ContextSwitches >= res.ORWL.ContextSwitches {
		t.Error("affinity should slightly reduce ORWL context switches")
	}
	// Affinity cuts misses and stalls.
	if res.ORWLAffinity.L3Misses >= res.ORWL.L3Misses {
		t.Error("affinity should reduce ORWL L3 misses")
	}
	if res.ORWLAffinity.StalledCycles >= res.ORWL.StalledCycles {
		t.Error("affinity should reduce ORWL stalls")
	}
	// ORWL(affinity) has the fewest misses of all four configurations.
	for _, other := range []float64{res.ORWL.L3Misses, res.OpenMP.L3Misses, res.OpenMPAffinity.L3Misses} {
		if res.ORWLAffinity.L3Misses >= other {
			t.Error("ORWL(affinity) should have the fewest L3 misses")
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	for _, top := range Machines() {
		fig, err := Fig5(top)
		if err != nil {
			t.Fatal(err)
		}
		aff := seriesByLabel(fig, "ORWL(Affinity)")
		mkl := seriesByLabel(fig, "MKL")
		scatter := seriesByLabel(fig, "MKL(scatter)")
		compact := seriesByLabel(fig, "MKL(compact)")
		last := len(aff) - 1

		// ORWL(Affinity) keeps scaling to the full machine and peaks
		// there.
		for i := 1; i <= last; i++ {
			if aff[i] < aff[i-1]*0.95 {
				t.Errorf("%s: ORWL(Affinity) dropped at tick %d (%g -> %g)",
					top.Attrs.Name, i, aff[i-1], aff[i])
			}
		}
		// The MKL variants stagnate: their best point is well below the
		// ORWL(Affinity) peak and they decline at full machine size.
		for _, s := range [][]float64{mkl, scatter, compact} {
			peak := 0.0
			for _, v := range s {
				if v > peak {
					peak = v
				}
			}
			if peak > aff[last]/2 {
				t.Errorf("%s: an MKL variant peaks at %g, too close to ORWL(Affinity) %g",
					top.Attrs.Name, peak, aff[last])
			}
			if s[last] >= peak {
				t.Errorf("%s: MKL variant should decline past its peak", top.Attrs.Name)
			}
		}
		// Inside one socket everything scales (8-core values all
		// within 2.5x of each other, as in the paper).
		idx8 := 3 // ticks are 1,2,4,8,...
		for _, s := range [][]float64{mkl, scatter, compact} {
			if aff[idx8] > s[idx8]*2.5 {
				t.Errorf("%s: 8-core gap too large (%g vs %g)", top.Attrs.Name, aff[idx8], s[idx8])
			}
		}
	}
}

func TestFig5CompactVsScatterCrossover(t *testing.T) {
	// §VI-B2: on the hyperthreaded machine the compact strategy wastes
	// half the performance at low thread counts (siblings first), while
	// scatter does not — the kind of machine-dependent behaviour that
	// makes manual tuning non-portable.
	fig, err := Fig5(topology.SMP12E5())
	if err != nil {
		t.Fatal(err)
	}
	scatter := seriesByLabel(fig, "MKL(scatter)")
	compact := seriesByLabel(fig, "MKL(compact)")
	if compact[1] >= scatter[1]*0.8 {
		t.Errorf("2 cores on SMP12E5: compact (%g) should trail scatter (%g)", compact[1], scatter[1])
	}
}

func TestTableIIICounters(t *testing.T) {
	res, err := matmulRun(topology.SMP12E5(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.ORWLAffinity.CPUMigrations != 0 || res.MKLScatter.CPUMigrations != 0 {
		t.Error("bound runs must not migrate")
	}
	if res.ORWLAffinity.L3Misses >= res.MKLScatter.L3Misses {
		t.Error("ORWL(Affinity) should out-localise bound MKL")
	}
	if res.ORWL.ContextSwitches < 10*res.MKL.ContextSwitches {
		t.Error("ORWL should context-switch much more than MKL")
	}
}

func TestFig6Shapes(t *testing.T) {
	for _, top := range Machines() {
		fig, err := Fig6(top)
		if err != nil {
			t.Fatal(err)
		}
		seq := seriesByLabel(fig, "Sequential")
		omp := seriesByLabel(fig, "OpenMP")
		ompAff := seriesByLabel(fig, "OpenMP(Affinity)")
		orwl := seriesByLabel(fig, "ORWL")
		aff := seriesByLabel(fig, "ORWL(Affinity)")
		for i := range fig.XTicks {
			// Orderings of Fig. 6: ORWL(Affinity) highest; ORWL beats
			// both OpenMP variants; OpenMP(Affinity) beats OpenMP.
			if !(aff[i] > orwl[i] && orwl[i] > ompAff[i] && ompAff[i] > omp[i]) {
				t.Errorf("%s %s: ordering violated: seq %g omp %g ompAff %g orwl %g aff %g",
					top.Attrs.Name, fig.XTicks[i], seq[i], omp[i], ompAff[i], orwl[i], aff[i])
			}
			// Affinity accelerates ORWL by a large factor (paper: 4.5x
			// and 2.5x) and OpenMP by a smaller one (2x and 1.5x).
			if aff[i] < 1.5*orwl[i] {
				t.Errorf("%s %s: ORWL affinity gain only %.2fx",
					top.Attrs.Name, fig.XTicks[i], aff[i]/orwl[i])
			}
			gainORWL := aff[i] / orwl[i]
			gainOMP := ompAff[i] / omp[i]
			if gainOMP >= gainORWL {
				t.Errorf("%s %s: OpenMP affinity gain %.2fx should trail ORWL's %.2fx",
					top.Attrs.Name, fig.XTicks[i], gainOMP, gainORWL)
			}
		}
		// Higher resolutions are slower across the board.
		for i := 1; i < len(aff); i++ {
			if aff[i] >= aff[i-1] {
				t.Errorf("%s: FPS should drop with resolution", top.Attrs.Name)
			}
		}
	}
}

func TestTableIVCounters(t *testing.T) {
	tab, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	text := tab.Render()
	if !strings.Contains(text, "CPU migrations") {
		t.Error("missing migrations row")
	}
}

func TestAllArtifacts(t *testing.T) {
	arts, err := All()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fig1", "fig2", "fig3", "table1", "fig4", "fig4", "table2",
		"fig5", "fig5", "table3", "fig6", "fig6", "table4", "strategies", "summary"}
	if len(arts) != len(want) {
		t.Fatalf("artifacts = %d, want %d", len(arts), len(want))
	}
	for i, a := range arts {
		if a.ID != want[i] {
			t.Errorf("artifact %d = %q, want %q", i, a.ID, want[i])
		}
		if a.Text == "" {
			t.Errorf("artifact %q empty", a.ID)
		}
	}
	var sb strings.Builder
	if err := WriteAll(&sb); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) < 1000 {
		t.Error("WriteAll output suspiciously short")
	}
}

func TestRenderHelpers(t *testing.T) {
	f := &Figure{
		ID: "Fig. X", Title: "test", XLabel: "cores", YLabel: "s",
		XTicks: []string{"1", "2"},
		Series: []Series{{Label: "a", Y: []float64{1.5, 2000}}, {Label: "b", Y: []float64{0}}},
	}
	out := f.Render()
	if !strings.Contains(out, "Fig. X") || !strings.Contains(out, "2000") {
		t.Errorf("figure render = %q", out)
	}
	// Short series render as "-".
	if !strings.Contains(out, "-") {
		t.Error("missing placeholder for short series")
	}
	tab := &Table{ID: "T", Title: "t", Columns: []string{"a", "b"}, Rows: [][]string{{"x", "y"}}}
	if !strings.Contains(tab.Render(), "x  y") && !strings.Contains(tab.Render(), "x") {
		t.Errorf("table render = %q", tab.Render())
	}
	if formatValue(0) != "0" || formatValue(12.34) != "12.3" {
		t.Error("formatValue wrong")
	}
}
