package experiments

import (
	"orwlplace/internal/apps/tracking"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/topology"
)

// Tracking experiment parameters (§VI-B3): 30 tasks on 30 cores (4
// sockets); throughput measured in frames per second over a long run.
const trackingFrames = 1000

// fourSockets restricts a testbed machine to its first four sockets
// (32 cores), as the paper does for the streaming experiment: "we use
// only 4 sockets (30 cores) of the architectures".
func fourSockets(top *topology.Topology) *topology.Topology {
	restricted, err := topology.Restrict(top, 4)
	if err != nil {
		panic(err) // both testbeds have >= 12 NUMA nodes
	}
	return restricted
}

// trackingResult bundles the five configurations of Fig. 6 / Table IV.
type trackingResult struct {
	Sequential, OpenMP, OpenMPAffinity, ORWL, ORWLAffinity *perfsim.Result
}

func trackingRun(full *topology.Topology, size tracking.Size, frames int) (*trackingResult, error) {
	top := fourSockets(full)
	cfg := tracking.PaperConfig(size)
	orwlW, err := cfg.Profile(frames)
	if err != nil {
		return nil, err
	}
	ompW, err := cfg.ProfileOpenMP(frames)
	if err != nil {
		return nil, err
	}
	seqW, err := cfg.ProfileSequential(frames)
	if err != nil {
		return nil, err
	}
	out := &trackingResult{}
	if out.Sequential, err = runStrategy(top, seqW, "compact-cores"); err != nil {
		return nil, err
	}
	if out.OpenMP, err = runDynamic(top, ompW); err != nil {
		return nil, err
	}
	// Like Fig. 4: the best environment binding found over the whole
	// strategy registry.
	if out.OpenMPAffinity, _, err = bestOblivious(top, ompW); err != nil {
		return nil, err
	}
	if out.ORWL, err = runDynamic(top, orwlW); err != nil {
		return nil, err
	}
	if out.ORWLAffinity, _, err = runAffinity(top, orwlW); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig6 regenerates one panel of Fig. 6: tracking FPS per resolution on
// the given machine, 30 tasks on 4 sockets.
func Fig6(top *topology.Topology) (*Figure, error) {
	fig := &Figure{
		ID:     "Fig. 6 (" + top.Attrs.Name + ")",
		Title:  "HD video tracking throughput, 30 tasks",
		XLabel: "resolution",
		YLabel: "FPS",
		Series: []Series{
			{Label: "Sequential"}, {Label: "OpenMP"}, {Label: "OpenMP(Affinity)"},
			{Label: "ORWL"}, {Label: "ORWL(Affinity)"},
		},
	}
	for _, size := range []tracking.Size{tracking.HD, tracking.FullHD, tracking.FourK} {
		res, err := trackingRun(top, size, trackingFrames)
		if err != nil {
			return nil, err
		}
		name := map[string]string{"1280x720": "HD", "1920x1080": "Full HD", "3840x2160": "4K"}[size.String()]
		fig.XTicks = append(fig.XTicks, name)
		for i, r := range []*perfsim.Result{
			res.Sequential, res.OpenMP, res.OpenMPAffinity, res.ORWL, res.ORWLAffinity,
		} {
			fig.Series[i].Y = append(fig.Series[i].Y, r.FPS(trackingFrames))
		}
	}
	return fig, nil
}

// TableIV regenerates the counters of the HD tracking run on SMP12E5
// (30 cores).
func TableIV() (*Table, error) {
	res, err := trackingRun(topology.SMP12E5(), tracking.HD, trackingFrames)
	if err != nil {
		return nil, err
	}
	return counterTable("Table IV",
		"Video tracking counters on SMP12E5 (30 tasks, HD)",
		[]string{"ORWL", "ORWL(Affinity)", "OpenMP", "OpenMP(Affinity)"},
		[]*perfsim.Result{res.ORWL, res.ORWLAffinity, res.OpenMP, res.OpenMPAffinity}), nil
}
