package experiments

import (
	"fmt"

	"orwlplace/internal/apps/livermore"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/topology"
)

// K23 experiment parameters (§VI-B1): 100 sweeps over a 16384x16384
// double-precision matrix.
const (
	k23MatrixSize = 16384
	k23Loops      = 100
)

// Fig4Cores returns the x axis of Fig. 4 for a machine: 1..96 cores on
// the hyperthreaded SMP12E5, 1..128 on SMP20E7.
func Fig4Cores(top *topology.Topology) []int {
	if top.Attrs.Hyperthreaded {
		return []int{1, 8, 16, 32, 64, 96}
	}
	return []int{1, 8, 16, 32, 64, 128}
}

// k23Result bundles the four configurations at one core count.
type k23Result struct {
	ORWL, ORWLAffinity, OpenMP, OpenMPAffinity *perfsim.Result
}

// k23Run evaluates all four configurations of Fig. 4 / Table II.
func k23Run(top *topology.Topology, cores int) (*k23Result, error) {
	orwlW, err := livermore.Profile(k23MatrixSize, cores, k23Loops)
	if err != nil {
		return nil, err
	}
	ompW, err := livermore.ProfileOpenMP(k23MatrixSize, cores, k23Loops)
	if err != nil {
		return nil, err
	}
	out := &k23Result{}
	if out.ORWL, err = runDynamic(top, orwlW); err != nil {
		return nil, err
	}
	if out.ORWLAffinity, _, err = runAffinity(top, orwlW); err != nil {
		return nil, err
	}
	if out.OpenMP, err = runDynamic(top, ompW); err != nil {
		return nil, err
	}
	// The paper reports the best OpenMP binding found (OMP_PLACES=cores
	// with close/spread equivalent). Deliberately wider than the
	// authors' two candidates: every registered environment strategy
	// competes, so the baseline can only get stronger as strategies
	// are added — the shape tests pin that the affinity module still
	// wins.
	if out.OpenMPAffinity, _, err = bestOblivious(top, ompW); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig4 regenerates one panel of Fig. 4: K23 processing time against
// core count on the given machine.
func Fig4(top *topology.Topology) (*Figure, error) {
	cores := Fig4Cores(top)
	fig := &Figure{
		ID:     "Fig. 4 (" + top.Attrs.Name + ")",
		Title:  "Livermore Kernel 23 processing time, 100 sweeps of 16384^2 doubles",
		XLabel: "cores",
		YLabel: "seconds",
		Series: []Series{
			{Label: "ORWL"}, {Label: "ORWL(affinity)"},
			{Label: "OpenMP"}, {Label: "OpenMP(affinity)"},
		},
	}
	for _, c := range cores {
		res, err := k23Run(top, c)
		if err != nil {
			return nil, err
		}
		fig.XTicks = append(fig.XTicks, fmt.Sprintf("%d", c))
		fig.Series[0].Y = append(fig.Series[0].Y, res.ORWL.Seconds)
		fig.Series[1].Y = append(fig.Series[1].Y, res.ORWLAffinity.Seconds)
		fig.Series[2].Y = append(fig.Series[2].Y, res.OpenMP.Seconds)
		fig.Series[3].Y = append(fig.Series[3].Y, res.OpenMPAffinity.Seconds)
	}
	return fig, nil
}

// TableII regenerates the hardware/software counters of the 64-core
// K23 run on SMP12E5.
func TableII() (*Table, error) {
	res, err := k23Run(topology.SMP12E5(), 64)
	if err != nil {
		return nil, err
	}
	return counterTable("Table II",
		"Livermore Kernel 23 counters on SMP12E5 (64 cores)",
		[]string{"ORWL", "ORWL(Affinity)", "OpenMP", "OpenMP(Affinity)"},
		[]*perfsim.Result{res.ORWL, res.ORWLAffinity, res.OpenMP, res.OpenMPAffinity}), nil
}

// counterTable renders the four-counter rows shared by Tables II-IV.
func counterTable(id, title string, cols []string, rs []*perfsim.Result) *Table {
	t := &Table{ID: id, Title: title, Columns: append([]string{"counter"}, cols...)}
	row := func(name string, get func(*perfsim.Result) string) {
		r := []string{name}
		for _, res := range rs {
			r = append(r, get(res))
		}
		t.Rows = append(t.Rows, r)
	}
	row("Billions of L3 misses", func(r *perfsim.Result) string { return billions(r.L3Misses) })
	row("Billions of stalled cycles", func(r *perfsim.Result) string { return billions(r.StalledCycles) })
	row("Context switches", func(r *perfsim.Result) string { return fmt.Sprintf("%.0f", r.ContextSwitches) })
	row("CPU migrations", func(r *perfsim.Result) string { return fmt.Sprintf("%.0f", r.CPUMigrations) })
	return t
}
