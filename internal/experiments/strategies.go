package experiments

import (
	"fmt"

	"orwlplace/internal/apps/tracking"
	"orwlplace/internal/placement"
)

// StrategyTable runs the full strategy registry — the paper's affinity
// module, every environment baseline and the unbound OS scheduler —
// over the HD tracking workload on both testbeds. It is the registry
// made visible: a strategy registered in internal/placement gains a
// row here (and a candidate slot in the best-baseline selections of
// Figs. 4 and 6) without any harness change.
func StrategyTable() (*Table, error) {
	tops := Machines()
	t := &Table{
		ID:    "Strategies",
		Title: "Modeled seconds per registered placement strategy, HD tracking workload",
		Columns: []string{
			"strategy", tops[0].Attrs.Name, tops[1].Attrs.Name,
		},
	}
	cfg := tracking.PaperConfig(tracking.HD)
	w, err := cfg.Profile(trackingFrames)
	if err != nil {
		return nil, err
	}
	for _, name := range placement.Names() {
		// The affinity module accounts for the runtime's control
		// threads, like the paper's configuration.
		opt := placement.Options{}
		if name == placement.TreeMatch {
			opt.ControlThreads = true
		}
		row := []string{name}
		for _, top := range tops {
			res, _, err := engineFor(top).Simulate(name, w, opt, dynamicSeed)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", res.Seconds))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
