package experiments

import (
	"fmt"
	"sync"

	"orwlplace/internal/apps/tracking"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// StrategyTable runs the full strategy registry — the paper's affinity
// module, every environment baseline and the unbound OS scheduler —
// over the HD tracking workload on both testbeds. It is the registry
// made visible: a strategy registered in internal/placement gains a
// row here (and a candidate slot in the best-baseline selections of
// Figs. 4 and 6) without any harness change.
func StrategyTable() (*Table, error) {
	tops := Machines()
	t := &Table{
		ID:    "Strategies",
		Title: "Modeled seconds per registered placement strategy, HD tracking workload",
		Columns: []string{
			"strategy", tops[0].Attrs.Name, tops[1].Attrs.Name,
		},
	}
	cfg := tracking.PaperConfig(tracking.HD)
	w, err := cfg.Profile(trackingFrames)
	if err != nil {
		return nil, err
	}
	names := placement.Names()
	// The affinity module accounts for the runtime's control threads,
	// like the paper's configuration.
	opts := map[string]placement.Options{
		placement.TreeMatch: {ControlThreads: true},
	}
	// Every (strategy, machine) cell is independent: fan the per-machine
	// sweeps out in parallel and assemble rows in registry order.
	perTop := make([][]*perfsim.Result, len(tops))
	errs := make([]error, len(tops))
	var wg sync.WaitGroup
	for ti, top := range tops {
		wg.Add(1)
		go func(ti int, top *topology.Topology) {
			defer wg.Done()
			perTop[ti], errs[ti] = runStrategiesParallel(top, w, names, opts)
		}(ti, top)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for ni, name := range names {
		row := []string{name}
		for ti := range tops {
			row = append(row, fmt.Sprintf("%.2f", perTop[ti][ni].Seconds))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
