package experiments

import (
	"fmt"

	"orwlplace/internal/apps/matmul"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/topology"
)

// Matmul experiment parameters (§VI-B2): C = A*B on 16384x16384
// double-precision matrices.
const matmulSize = 16384

// Fig5Cores returns the x axis of Fig. 5 for a machine.
func Fig5Cores(top *topology.Topology) []int {
	if top.Attrs.Hyperthreaded {
		return []int{1, 2, 4, 8, 16, 32, 64, 96}
	}
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 160}
}

// matmulResult bundles the five configurations of Fig. 5 / Table III.
type matmulResult struct {
	ORWL, ORWLAffinity          *perfsim.Result
	MKL, MKLScatter, MKLCompact *perfsim.Result
}

func matmulRun(top *topology.Topology, cores int) (*matmulResult, error) {
	orwlW, err := matmul.ProfileORWL(matmulSize, cores)
	if err != nil {
		return nil, err
	}
	mklW, err := matmul.ProfileMKL(matmulSize, cores)
	if err != nil {
		return nil, err
	}
	out := &matmulResult{}
	if out.ORWL, err = runDynamic(top, orwlW); err != nil {
		return nil, err
	}
	if out.ORWLAffinity, _, err = runAffinity(top, orwlW); err != nil {
		return nil, err
	}
	if out.MKL, err = runDynamic(top, mklW); err != nil {
		return nil, err
	}
	if out.MKLScatter, err = runStrategy(top, mklW, "scatter"); err != nil {
		return nil, err
	}
	// KMP_AFFINITY=compact fills hyperthread siblings first.
	if out.MKLCompact, err = runStrategy(top, mklW, "compact"); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig5 regenerates one panel of Fig. 5: matmul FLOP/s against core
// count on the given machine.
func Fig5(top *topology.Topology) (*Figure, error) {
	flops := matmul.TotalFlops(matmulSize)
	fig := &Figure{
		ID:     "Fig. 5 (" + top.Attrs.Name + ")",
		Title:  "Matrix multiplication 16384^2, block-cyclic vs MKL-style",
		XLabel: "cores",
		YLabel: "GFLOPS",
		Series: []Series{
			{Label: "ORWL"}, {Label: "ORWL(Affinity)"},
			{Label: "MKL"}, {Label: "MKL(scatter)"}, {Label: "MKL(compact)"},
		},
	}
	for _, c := range Fig5Cores(top) {
		res, err := matmulRun(top, c)
		if err != nil {
			return nil, err
		}
		fig.XTicks = append(fig.XTicks, fmt.Sprintf("%d", c))
		fig.Series[0].Y = append(fig.Series[0].Y, res.ORWL.GFLOPS(flops))
		fig.Series[1].Y = append(fig.Series[1].Y, res.ORWLAffinity.GFLOPS(flops))
		fig.Series[2].Y = append(fig.Series[2].Y, res.MKL.GFLOPS(flops))
		fig.Series[3].Y = append(fig.Series[3].Y, res.MKLScatter.GFLOPS(flops))
		fig.Series[4].Y = append(fig.Series[4].Y, res.MKLCompact.GFLOPS(flops))
	}
	return fig, nil
}

// TableIII regenerates the counters of the 64-core matmul run on
// SMP12E5.
func TableIII() (*Table, error) {
	res, err := matmulRun(topology.SMP12E5(), 64)
	if err != nil {
		return nil, err
	}
	return counterTable("Table III",
		"Matrix multiplication counters on SMP12E5 (64 cores)",
		[]string{"ORWL", "ORWL(Affinity)", "MKL", "MKL(scatter)", "MKL(compact)"},
		[]*perfsim.Result{res.ORWL, res.ORWLAffinity, res.MKL, res.MKLScatter, res.MKLCompact}), nil
}
