package comm

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewMatrixAndAccessors(t *testing.T) {
	m := NewMatrix(3)
	if m.Order() != 3 {
		t.Fatalf("order = %d", m.Order())
	}
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if got := m.At(0, 1); got != 7 {
		t.Errorf("At(0,1) = %g, want 7", got)
	}
	m.AddSym(1, 2, 3)
	if m.At(1, 2) != 3 || m.At(2, 1) != 3 {
		t.Error("AddSym did not write both triangles")
	}
	m.AddSym(2, 2, 4)
	if m.At(2, 2) != 4 {
		t.Error("AddSym on diagonal should add once")
	}
	if NewMatrix(-5).Order() != 0 {
		t.Error("negative order should clamp to 0")
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{0, 1}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 2 {
		t.Error("FromRows content wrong")
	}
	if _, err := FromRows([][]float64{{0, 1}, {2}}); err == nil {
		t.Error("FromRows accepted ragged rows")
	}
}

func TestSymmetrized(t *testing.T) {
	m, _ := FromRows([][]float64{{9, 1, 0}, {2, 0, 5}, {0, 0, 0}})
	s := m.Symmetrized()
	if !s.IsSymmetric() {
		t.Fatal("Symmetrized not symmetric")
	}
	if s.At(0, 1) != 3 || s.At(1, 0) != 3 {
		t.Errorf("symmetrized (0,1) = %g, want 3", s.At(0, 1))
	}
	if s.At(0, 0) != 0 {
		t.Error("diagonal should be cleared")
	}
	if s.At(1, 2) != 5 || s.At(2, 1) != 5 {
		t.Error("one-sided entries should be mirrored")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 1)
	c := m.Clone()
	c.Set(0, 1, 99)
	if m.At(0, 1) != 1 {
		t.Error("Clone is shallow")
	}
}

func TestTotalAndMaxEntry(t *testing.T) {
	m, _ := FromRows([][]float64{{0, 2}, {3, 0}})
	if m.Total() != 5 {
		t.Errorf("Total = %g", m.Total())
	}
	if m.MaxEntry() != 3 {
		t.Errorf("MaxEntry = %g", m.MaxEntry())
	}
	if NewMatrix(0).MaxEntry() != 0 {
		t.Error("empty MaxEntry should be 0")
	}
}

func TestRowIsCopy(t *testing.T) {
	m := NewMatrix(2)
	m.Set(1, 0, 7)
	r := m.Row(1)
	r[0] = 0
	if m.At(1, 0) != 7 {
		t.Error("Row returned a live view")
	}
}

func TestExtend(t *testing.T) {
	m, _ := FromRows([][]float64{{0, 1}, {1, 0}})
	e := m.Extend(4)
	if e.Order() != 4 {
		t.Fatalf("extended order = %d", e.Order())
	}
	if e.At(0, 1) != 1 || e.At(1, 0) != 1 {
		t.Error("Extend lost original entries")
	}
	if e.At(3, 3) != 0 || e.At(0, 3) != 0 {
		t.Error("Extend should zero-fill")
	}
	if m.Extend(1).Order() != 2 {
		t.Error("Extend below order should keep order")
	}
}

func TestPermuted(t *testing.T) {
	m, _ := FromRows([][]float64{{0, 10, 20}, {1, 0, 21}, {2, 12, 0}})
	p, err := m.Permuted([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// New entity 0 is old entity 2.
	if p.At(0, 1) != m.At(2, 0) {
		t.Errorf("Permuted(0,1) = %g, want %g", p.At(0, 1), m.At(2, 0))
	}
	if _, err := m.Permuted([]int{0, 0, 1}); err == nil {
		t.Error("accepted duplicate permutation")
	}
	if _, err := m.Permuted([]int{0, 1}); err == nil {
		t.Error("accepted short permutation")
	}
	if _, err := m.Permuted([]int{0, 1, 5}); err == nil {
		t.Error("accepted out-of-range permutation")
	}
}

func TestAggregate(t *testing.T) {
	// Two clusters of 2; intra volume 10, inter volume 1.
	m := Clustered(4, 2, 10, 1)
	agg, err := m.Aggregate([][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Order() != 2 {
		t.Fatalf("aggregated order = %d", agg.Order())
	}
	// Between groups: 2x2 ordered pairs from group 0 to group 1 = 4
	// entries of 1; the reverse direction lands in At(1,0).
	if agg.At(0, 1) != 4 || agg.At(1, 0) != 4 {
		t.Errorf("inter-group volume = %g/%g, want 4/4", agg.At(0, 1), agg.At(1, 0))
	}
	// Within group 0: pairs (0,1) and (1,0).
	if agg.At(0, 0) != 20 {
		t.Errorf("intra-group volume = %g, want 20", agg.At(0, 0))
	}

	if _, err := m.Aggregate([][]int{{0, 1}, {1, 2, 3}}); err == nil {
		t.Error("accepted overlapping groups")
	}
	if _, err := m.Aggregate([][]int{{0, 1}}); err == nil {
		t.Error("accepted incomplete grouping")
	}
	if _, err := m.Aggregate([][]int{{0, 1}, {2, 9}}); err == nil {
		t.Error("accepted out-of-range entity")
	}
}

func TestRingPattern(t *testing.T) {
	m := Ring(4, 8, false)
	if m.At(0, 1) != 8 || m.At(2, 3) != 8 {
		t.Error("pipeline links missing")
	}
	if m.At(3, 0) != 0 {
		t.Error("pipeline should not wrap")
	}
	w := Ring(4, 8, true)
	if w.At(3, 0) != 8 {
		t.Error("ring should wrap")
	}
	if w.Total() != 32 {
		t.Errorf("ring total = %g", w.Total())
	}
}

func TestStencil2DPattern(t *testing.T) {
	m := Stencil2D(3, 2, 100, 10)
	// Entity 0=(0,0): east neighbour 1, south neighbour 3.
	if m.At(0, 1) != 10 || m.At(1, 0) != 10 {
		t.Error("east/west volume wrong")
	}
	if m.At(0, 3) != 100 || m.At(3, 0) != 100 {
		t.Error("north/south volume wrong")
	}
	if m.At(0, 4) != 0 {
		t.Error("diagonal neighbours should not communicate")
	}
	if !m.IsSymmetric() {
		t.Error("stencil matrix should be symmetric")
	}
	// Edges: horizontal (bx-1)*by = 4, vertical bx*(by-1) = 3.
	want := 2 * (4*10.0 + 3*100.0)
	if m.Total() != want {
		t.Errorf("total = %g, want %g", m.Total(), want)
	}
}

func TestUniformAndClustered(t *testing.T) {
	u := Uniform(3, 2)
	if u.At(0, 0) != 0 || u.At(0, 2) != 2 {
		t.Error("uniform wrong")
	}
	c := Clustered(6, 3, 9, 1)
	if c.At(0, 1) != 9 || c.At(0, 2) != 1 {
		t.Error("clustered wrong")
	}
	if !c.IsSymmetric() {
		t.Error("clustered should be symmetric")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(5, 10, 42)
	b := Random(5, 10, 42)
	c := Random(5, 10, 43)
	if a.String() != b.String() {
		t.Error("same seed should reproduce")
	}
	if a.String() == c.String() {
		t.Error("different seeds should differ")
	}
	if !a.IsSymmetric() {
		t.Error("random matrix should be symmetric")
	}
}

func TestHeaviestPairs(t *testing.T) {
	m := NewMatrix(4)
	m.Set(0, 1, 1)
	m.Set(2, 3, 10)
	m.Set(3, 2, 5)
	pairs := m.HeaviestPairs(0)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2", len(pairs))
	}
	if pairs[0].I != 2 || pairs[0].J != 3 || pairs[0].Volume != 15 {
		t.Errorf("heaviest = %+v", pairs[0])
	}
	if got := m.HeaviestPairs(1); len(got) != 1 {
		t.Errorf("limit ignored: %d", len(got))
	}
}

func TestGrayScaleRender(t *testing.T) {
	m := Clustered(4, 2, 1e6, 1)
	out := m.RenderGrayScale()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("render lines = %d", len(lines))
	}
	// Heavy intra-cluster cells must render darker than light ones.
	heavy := lines[1][1]
	light := lines[1][2]
	if heavy == light {
		t.Errorf("gray scale did not separate %g from %g: %q", 1e6, 1.0, lines[1])
	}
	if lines[1][0] != ' ' {
		t.Error("zero diagonal should render blank")
	}
}

func TestRenderPGM(t *testing.T) {
	m := Clustered(4, 2, 1e6, 1)
	img := m.RenderPGM(2)
	if !bytes.HasPrefix(img, []byte("P5\n8 8\n255\n")) {
		t.Fatalf("bad header: %q", img[:12])
	}
	pixels := img[len("P5\n8 8\n255\n"):]
	if len(pixels) != 64 {
		t.Fatalf("pixel count = %d", len(pixels))
	}
	// Diagonal (zero) is white; heavy intra-cluster cells are darker
	// than light inter-cluster ones.
	if pixels[0] != 255 {
		t.Error("zero entry should be white")
	}
	heavy := pixels[2] // (0,1) scaled: row 0, col 2
	light := pixels[4] // (0,2)
	if heavy >= light {
		t.Errorf("heavy pixel %d not darker than light %d", heavy, light)
	}
	// Scale clamping.
	if got := NewMatrix(2).RenderPGM(0); !bytes.HasPrefix(got, []byte("P5\n2 2\n")) {
		t.Error("scale 0 should clamp to 1")
	}
}

func TestIORoundTrip(t *testing.T) {
	m := Random(7, 100, 1)
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Order() != m.Order() {
		t.Fatalf("order changed: %d", got.Order())
	}
	for i := 0; i < m.Order(); i++ {
		for j := 0; j < m.Order(); j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("(%d,%d) = %g, want %g", i, j, got.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestReadAcceptsCommentsAndRejectsGarbage(t *testing.T) {
	in := "# a comment\n\n2\n0 1\n1 0\n"
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read with comments: %v", err)
	}
	if m.At(0, 1) != 1 {
		t.Error("content wrong")
	}
	bad := []string{
		"",
		"x\n",
		"2\n0 1\n",
		"2\n0 1 2\n0 0\n",
		"2\n0 a\n0 0\n",
		"-1\n",
	}
	for _, s := range bad {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Errorf("Read accepted %q", s)
		}
	}
}

// Property: symmetrization is idempotent and preserves the total volume.
func TestSymmetrizeProperties(t *testing.T) {
	f := func(seed int64) bool {
		m := Random(6, 50, seed)
		// Random is symmetric; perturb to make it asymmetric.
		m.Set(0, 1, m.At(0, 1)+13)
		offDiag := 0.0
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				if i != j {
					offDiag += m.At(i, j)
				}
			}
		}
		s := m.Symmetrized()
		if math.Abs(s.Total()-2*offDiag) > 1e-9*(1+offDiag) {
			return false
		}
		ss := s.Symmetrized()
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				if math.Abs(ss.At(i, j)-2*s.At(i, j)) > 1e-9 {
					return false
				}
			}
		}
		return s.IsSymmetric()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: aggregation preserves total volume minus the entries that
// fall on intra-group diagonals (none here since diagonals are zero).
func TestAggregatePreservesVolume(t *testing.T) {
	f := func(seed int64) bool {
		m := Random(8, 100, seed)
		groups := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
		agg, err := m.Aggregate(groups)
		if err != nil {
			return false
		}
		return math.Abs(agg.Total()-m.Total()) < 1e-6*(1+m.Total())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The *Into variants must agree with their allocating counterparts
// while reusing the destination's storage across calls of different
// orders.
func TestIntoVariantsMatchAndReuseStorage(t *testing.T) {
	dst := NewMatrix(0)
	for _, n := range []int{6, 3, 6, 8} {
		m := Random(n, 50, int64(n))
		m.Set(1, 2, 7) // break symmetry so Symmetrized does work
		m.SymmetrizedInto(dst)
		want := m.Symmetrized()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if dst.At(i, j) != want.At(i, j) {
					t.Fatalf("n=%d: SymmetrizedInto (%d,%d) = %g, want %g", n, i, j, dst.At(i, j), want.At(i, j))
				}
			}
		}
	}

	m := Random(4, 10, 1)
	ext := NewMatrix(1)
	ext.Set(0, 0, 99) // stale state must be cleared
	m.ExtendInto(ext, 6)
	want := m.Extend(6)
	if ext.Order() != 6 {
		t.Fatalf("ExtendInto order = %d", ext.Order())
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if ext.At(i, j) != want.At(i, j) {
				t.Fatalf("ExtendInto (%d,%d) = %g, want %g", i, j, ext.At(i, j), want.At(i, j))
			}
		}
	}

	groups := [][]int{{0, 2}, {1, 3}}
	agg := NewMatrix(0)
	groupOf := make([]int, 4)
	if err := m.AggregateInto(agg, groups, groupOf); err != nil {
		t.Fatal(err)
	}
	wantAgg, err := m.Aggregate(groups)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(agg.At(i, j)-wantAgg.At(i, j)) > 1e-12 {
				t.Fatalf("AggregateInto (%d,%d) = %g, want %g", i, j, agg.At(i, j), wantAgg.At(i, j))
			}
		}
	}
}

func TestAggregateIntoValidation(t *testing.T) {
	m := Random(4, 10, 2)
	dst := NewMatrix(0)
	if err := m.AggregateInto(dst, [][]int{{0, 9}, {1, 2}}, nil); err == nil {
		t.Error("accepted out-of-range entity")
	}
	if err := m.AggregateInto(dst, [][]int{{0, 1}, {1, 2}}, nil); err == nil {
		t.Error("accepted duplicated entity")
	}
	if err := m.AggregateInto(dst, [][]int{{0, 1}}, nil); err == nil {
		t.Error("accepted uncovered entity")
	}
}

func TestResetAndRowView(t *testing.T) {
	m := NewMatrix(3)
	m.Set(1, 1, 5)
	m.Reset(2)
	if m.Order() != 2 || m.Total() != 0 {
		t.Errorf("Reset left order=%d total=%g", m.Order(), m.Total())
	}
	m.Set(1, 0, 4)
	row := m.RowView(1)
	if len(row) != 2 || row[0] != 4 {
		t.Errorf("RowView = %v", row)
	}
	row[1] = 9
	if m.At(1, 1) != 9 {
		t.Error("RowView writes must alias the matrix")
	}
}

func TestHeaviestPairsSkipsZeroVolumes(t *testing.T) {
	m := NewMatrix(64) // sparse: two nonzero pairs out of 2016
	m.AddSym(3, 9, 5)
	m.AddSym(10, 11, 7)
	pairs := m.HeaviestPairs(0)
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs, want only the 2 nonzero ones", len(pairs))
	}
	if pairs[0].Volume != 14 || pairs[1].Volume != 10 {
		t.Errorf("pairs = %v, want decreasing symmetrized volumes 14, 10", pairs)
	}
}
