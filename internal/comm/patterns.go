package comm

import "math/rand"

// Pattern generators produce the communication structures exercised by
// the paper's applications and by the ablation benchmarks.

// Ring returns the matrix of a pipeline/ring of n entities where entity
// i sends volume bytes to entity (i+1) mod n. With wrap=false the last
// link is omitted (a pure pipeline, like Listing 1 of the paper).
func Ring(n int, volume float64, wrap bool) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		j := i + 1
		if j == n {
			if !wrap {
				break
			}
			j = 0
		}
		m.Set(i, j, volume)
	}
	return m
}

// Stencil2D returns the matrix of a bx x by block decomposition of a 2-D
// stencil: blocks exchange border rows/columns with their N/S/E/W
// neighbours. rowVolume is the volume of a horizontal border (exchanged
// with N/S), colVolume of a vertical border (E/W). Entities are numbered
// row-major.
func Stencil2D(bx, by int, rowVolume, colVolume float64) *Matrix {
	n := bx * by
	m := NewMatrix(n)
	id := func(x, y int) int { return y*bx + x }
	for y := 0; y < by; y++ {
		for x := 0; x < bx; x++ {
			if y+1 < by {
				m.AddSym(id(x, y), id(x, y+1), rowVolume)
			}
			if x+1 < bx {
				m.AddSym(id(x, y), id(x+1, y), colVolume)
			}
		}
	}
	return m
}

// Uniform returns an all-to-all matrix with the given off-diagonal
// volume.
func Uniform(n int, volume float64) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, volume)
			}
		}
	}
	return m
}

// Clustered returns a matrix of k clusters of size n/k each: heavy
// intra-cluster volume and light inter-cluster volume. n must be a
// multiple of k. It is the canonical input on which topology-aware
// placement beats oblivious strategies.
func Clustered(n, k int, intra, inter float64) *Matrix {
	m := NewMatrix(n)
	size := n / k
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if i/size == j/size {
				m.Set(i, j, intra)
			} else {
				m.Set(i, j, inter)
			}
		}
	}
	return m
}

// RingOfClusters returns a sparse matrix of k clusters of clusterSize
// tasks each: inside a cluster the tasks form a ring exchanging intra
// bytes with each neighbour, and consecutive clusters are linked
// through a border task pair exchanging inter bytes (the last task of
// cluster c talks to the first task of cluster c+1, wrapping around).
// The nonzero count is O(n) for n = k*clusterSize, which makes it the
// canonical large-scale workload: structure for the partitioner to
// find, no dense slab anywhere.
func RingOfClusters(k, clusterSize int, intra, inter float64) *Sparse {
	n := k * clusterSize
	s := NewSparse(n)
	for c := 0; c < k; c++ {
		base := c * clusterSize
		for i := 0; i < clusterSize; i++ {
			j := i + 1
			if j == clusterSize {
				if clusterSize < 3 {
					break // a 2-ring would double the single link
				}
				j = 0
			}
			s.AddSym(base+i, base+j, intra)
		}
		next := ((c + 1) % k) * clusterSize
		if k > 1 && (k > 2 || c == 0) {
			s.AddSym(base+clusterSize-1, next, inter)
		}
	}
	return s
}

// Random returns a symmetric random matrix with entries uniform in
// [0,max), seeded deterministically.
func Random(n int, max float64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64() * max
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}
