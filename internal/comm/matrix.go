// Package comm provides communication matrices: square matrices whose
// entry (i,j) is the volume of data (in bytes) exchanged between
// computing entities i and j during one execution or iteration.
//
// The ORWL runtime derives such a matrix from the task–location graph
// (§IV-A of the paper); TreeMatch consumes it to group entities by
// affinity; the performance simulator uses it to cost a placement.
package comm

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Matrix is a dense square communication matrix. Entry (i,j) holds the
// volume sent from entity i to entity j; most consumers symmetrize it
// first since placement cares about total exchanged volume.
type Matrix struct {
	n    int
	data []float64
}

// NewMatrix returns an n x n zero matrix.
func NewMatrix(n int) *Matrix {
	if n < 0 {
		n = 0
	}
	return &Matrix{n: n, data: make([]float64, n*n)}
}

// FromRows builds a matrix from row slices; all rows must have length
// len(rows).
func FromRows(rows [][]float64) (*Matrix, error) {
	n := len(rows)
	m := NewMatrix(n)
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("comm: row %d has %d entries, want %d", i, len(r), n)
		}
		copy(m.data[i*n:(i+1)*n], r)
	}
	return m, nil
}

// Order returns the matrix order (number of entities).
func (m *Matrix) Order() int { return m.n }

// At returns entry (i,j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.n+j] }

// Set stores v at (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.n+j] = v }

// Add accumulates v into (i,j).
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.n+j] += v }

// AddSym accumulates v into both (i,j) and (j,i).
func (m *Matrix) AddSym(i, j int, v float64) {
	if i == j {
		m.data[i*m.n+j] += v
		return
	}
	m.data[i*m.n+j] += v
	m.data[j*m.n+i] += v
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.n)
	copy(c.data, m.data)
	return c
}

// Reset returns the matrix to an n x n all-zero state, reusing the
// existing backing storage when it is large enough. It is the
// primitive behind the *Into variants: a matrix owned by a workspace
// is Reset instead of reallocated, so a multi-level mapping pipeline
// does O(1) matrix allocations.
func (m *Matrix) Reset(n int) {
	m.resize(n)
	clear(m.data)
}

// resize sets the order to n reusing storage; the entries are left
// unspecified (callers overwrite every cell or clear explicitly).
func (m *Matrix) resize(n int) {
	if n < 0 {
		n = 0
	}
	m.n = n
	if cap(m.data) < n*n {
		m.data = make([]float64, n*n)
		return
	}
	m.data = m.data[:n*n]
}

// RowView returns row i without copying. The slice aliases the
// matrix: it is invalidated by Reset/resize and writes through it
// mutate the matrix. Hot loops (grouping affinity updates) use it to
// stream a row sequentially instead of calling At per entry.
func (m *Matrix) RowView(i int) []float64 {
	return m.data[i*m.n : (i+1)*m.n]
}

// Symmetrized returns a new matrix S with S[i][j] = S[j][i] =
// m[i][j]+m[j][i] for i != j and zero diagonal. Placement algorithms
// work on symmetrized volumes.
func (m *Matrix) Symmetrized() *Matrix {
	return m.SymmetrizedInto(NewMatrix(0))
}

// SymmetrizedInto writes the symmetrized matrix into dst (resized and
// fully overwritten) and returns dst. dst must not be m itself.
func (m *Matrix) SymmetrizedInto(dst *Matrix) *Matrix {
	if dst == m {
		panic("comm: SymmetrizedInto aliases the receiver")
	}
	n := m.n
	dst.resize(n)
	// Row-major writes with a constant-stride transposed read: stores
	// stay sequential (a strided store costs an RFO per cache line) and
	// the fixed-stride loads run ahead of the hardware prefetcher.
	data := m.data
	for i := 0; i < n; i++ {
		row := data[i*n : (i+1)*n]
		out := dst.data[i*n : (i+1)*n]
		idx := i
		for j, v := range row {
			out[j] = v + data[idx]
			idx += n
		}
		out[i] = 0
	}
	return dst
}

// IsSymmetric reports whether m equals its transpose.
func (m *Matrix) IsSymmetric() bool {
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if m.data[i*m.n+j] != m.data[j*m.n+i] {
				return false
			}
		}
	}
	return true
}

// Total returns the sum of all entries.
func (m *Matrix) Total() float64 {
	var t float64
	for _, v := range m.data {
		t += v
	}
	return t
}

// MaxEntry returns the largest entry.
func (m *Matrix) MaxEntry() float64 {
	mx := math.Inf(-1)
	if len(m.data) == 0 {
		return 0
	}
	for _, v := range m.data {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.n)
	copy(out, m.data[i*m.n:(i+1)*m.n])
	return out
}

// Extend returns a new matrix of order newOrder whose leading principal
// submatrix is m and whose remaining entries are zero. It is the
// primitive used to add virtual entities (control threads, padding for
// non-divisible group sizes).
func (m *Matrix) Extend(newOrder int) *Matrix {
	return m.ExtendInto(NewMatrix(0), newOrder)
}

// ExtendInto writes the extension into dst (resized and fully
// overwritten) and returns dst. dst must not be m itself.
func (m *Matrix) ExtendInto(dst *Matrix, newOrder int) *Matrix {
	if dst == m {
		panic("comm: ExtendInto aliases the receiver")
	}
	if newOrder < m.n {
		newOrder = m.n
	}
	dst.Reset(newOrder)
	for i := 0; i < m.n; i++ {
		copy(dst.data[i*newOrder:i*newOrder+m.n], m.data[i*m.n:(i+1)*m.n])
	}
	return dst
}

// Permuted returns P, with P[i][j] = m[perm[i]][perm[j]]: the matrix
// seen after renumbering entity perm[i] as i.
func (m *Matrix) Permuted(perm []int) (*Matrix, error) {
	if len(perm) != m.n {
		return nil, fmt.Errorf("comm: permutation length %d, want %d", len(perm), m.n)
	}
	seen := make([]bool, m.n)
	for _, p := range perm {
		if p < 0 || p >= m.n || seen[p] {
			return nil, fmt.Errorf("comm: invalid permutation %v", perm)
		}
		seen[p] = true
	}
	out := NewMatrix(m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			out.data[i*m.n+j] = m.data[perm[i]*m.n+perm[j]]
		}
	}
	return out, nil
}

// Aggregate merges entities into groups: groups[g] lists the entity
// indexes of group g, and the result R has order len(groups) with
// R[a][b] = sum over i in groups[a], j in groups[b] of m[i][j]
// (diagonal excluded for a == b). This is AggregateComMatrix of
// Algorithm 1.
func (m *Matrix) Aggregate(groups [][]int) (*Matrix, error) {
	out := NewMatrix(0)
	if err := m.AggregateInto(out, groups, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// AggregateInto writes the aggregation into dst (resized and fully
// overwritten). groupOf is optional scratch of length >= Order()
// (allocated when nil), so a workspace-driven pipeline aggregates
// without per-level allocations. dst must not be m itself.
func (m *Matrix) AggregateInto(dst *Matrix, groups [][]int, groupOf []int) error {
	if dst == m {
		panic("comm: AggregateInto aliases the receiver")
	}
	n := m.n
	if len(groupOf) < n {
		groupOf = make([]int, n)
	}
	groupOf = groupOf[:n]
	for i := range groupOf {
		groupOf[i] = -1
	}
	for a, ga := range groups {
		for _, i := range ga {
			if i < 0 || i >= n {
				return fmt.Errorf("comm: aggregate: entity %d out of range", i)
			}
			if groupOf[i] != -1 {
				return fmt.Errorf("comm: aggregate: entity %d in two groups", i)
			}
			groupOf[i] = a
		}
	}
	for i, g := range groupOf {
		if g == -1 {
			return fmt.Errorf("comm: aggregate: entity %d not in any group", i)
		}
	}
	k := len(groups)
	dst.Reset(k)
	// Per-block accumulation into registers: summing a destination
	// cell through memory serialises on the FP add latency (every
	// add depends on the previous store), so each (row, group) partial
	// sum is built in a register and committed once.
	for a, ga := range groups {
		drow := dst.data[a*k : (a+1)*k]
		for _, i := range ga {
			row := m.data[i*n : (i+1)*n]
			for b, gb := range groups {
				var s float64
				if b == a {
					for _, j := range gb {
						if j != i {
							s += row[j]
						}
					}
				} else {
					// Two accumulators hide the FP-add latency of the
					// gather (a single running sum serialises on it).
					var s1 float64
					x := 0
					for ; x+1 < len(gb); x += 2 {
						s += row[gb[x]]
						s1 += row[gb[x+1]]
					}
					if x < len(gb) {
						s += row[gb[x]]
					}
					s += s1
				}
				drow[b] += s
			}
		}
	}
	return nil
}

// String renders the matrix compactly, one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderGrayScale renders the matrix like the paper's Fig. 1: a
// character raster on a logarithmic gray scale, darkest for the largest
// volumes. Useful to eyeball the structure of an application.
func (m *Matrix) RenderGrayScale() string {
	shades := []byte(" .:-=+*#%@")
	mx := m.MaxEntry()
	var b strings.Builder
	fmt.Fprintf(&b, "comm matrix %dx%d (log gray scale, max=%g)\n", m.n, m.n, mx)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			v := m.At(i, j)
			var idx int
			if v > 0 && mx > 0 {
				// Map log10(v) over ~6 decades onto the ramp.
				rel := 1 - (math.Log10(mx)-math.Log10(v))/6
				if rel < 0 {
					rel = 0
				}
				idx = 1 + int(rel*float64(len(shades)-2))
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderPGM encodes the matrix as a binary PGM (P5) gray-scale image
// on the same logarithmic scale as RenderGrayScale, one pixel per
// entry with dark = heavy, so Fig. 1 can be regenerated as an actual
// image file. scale repeats each entry into a scale x scale pixel
// block (min 1).
func (m *Matrix) RenderPGM(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	side := m.n * scale
	header := fmt.Sprintf("P5\n%d %d\n255\n", side, side)
	out := make([]byte, 0, len(header)+side*side)
	out = append(out, header...)
	mx := m.MaxEntry()
	row := make([]byte, side)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			v := m.At(i, j)
			shade := byte(255) // white background
			if v > 0 && mx > 0 {
				rel := 1 - (math.Log10(mx)-math.Log10(v))/6
				if rel < 0 {
					rel = 0
				}
				shade = byte(200 * (1 - rel))
			}
			for s := 0; s < scale; s++ {
				row[j*scale+s] = shade
			}
		}
		for s := 0; s < scale; s++ {
			out = append(out, row...)
		}
	}
	return out
}

// HeaviestPairs returns the entity pairs (i<j) sorted by decreasing
// symmetrized volume, up to limit pairs (all if limit <= 0). Ties are
// broken by (i,j) order so the result is deterministic.
//
// Contract: only pairs with a strictly positive symmetrized volume are
// returned — zero (non-communicating) and negative pairs are skipped,
// so on a sparse matrix the result holds the nonzero pairs only, never
// all n² candidates. Callers that need every pair must enumerate the
// matrix themselves; callers that only consume the heaviest few (the
// greedy grouping engine seeds) should prefer a lazily-popped heap
// over sorting the full list.
func (m *Matrix) HeaviestPairs(limit int) []Pair {
	// Count first so the slice is allocated exactly once at the nonzero
	// size instead of growing through the append doubling schedule.
	nz := 0
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if m.data[i*m.n+j]+m.data[j*m.n+i] > 0 {
				nz++
			}
		}
	}
	pairs := make([]Pair, 0, nz)
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			v := m.data[i*m.n+j] + m.data[j*m.n+i]
			if v > 0 {
				pairs = append(pairs, Pair{I: i, J: j, Volume: v})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].Volume != pairs[b].Volume {
			return pairs[a].Volume > pairs[b].Volume
		}
		if pairs[a].I != pairs[b].I {
			return pairs[a].I < pairs[b].I
		}
		return pairs[a].J < pairs[b].J
	})
	if limit > 0 && len(pairs) > limit {
		pairs = pairs[:limit]
	}
	return pairs
}

// Pair is an entity pair with its exchanged volume.
type Pair struct {
	I, J   int
	Volume float64
}
