package comm

import "math"

// FNV-1a 64-bit parameters, applied word-wise below.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Fingerprint hashes the order and every entry of the matrix (bit
// pattern, not numeric value, so NaNs and signed zeros distinguish).
// It is the identity the placement mapping cache keys on and the wire
// protocol's "fingerprint-only" request handle: a client that has
// already shipped a matrix body refers to it by this hash, and the
// serving daemon resolves it from its recently-seen table. Both sides
// must therefore hash the exact same value stream — order, then
// entries row-major as raw float64 bits.
//
// The mix is FNV-1a applied per 64-bit word rather than per byte: one
// xor-multiply per entry instead of eight keeps the hash out of the
// warm placement profile (it runs on every request on both sides of
// the wire). Position still matters — each entry is folded under a
// different number of multiplies — so permuted matrices hash apart.
// The hash is an in-memory identity, never persisted, so its value may
// change between builds. A client and server that happen to disagree
// (mixed builds) stay correct — every fingerprint reference misses and
// the body is resent — they just lose the compact-request optimisation.
func Fingerprint(m *Matrix) uint64 {
	if m == nil {
		return 0
	}
	h := uint64(fnvOffset64)
	n := m.Order()
	h = (h ^ uint64(n)) * fnvPrime64
	for i := 0; i < n; i++ {
		for _, v := range m.RowView(i) {
			h = (h ^ math.Float64bits(v)) * fnvPrime64
		}
	}
	return h
}
