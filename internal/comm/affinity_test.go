package comm

import (
	"math"
	"testing"
)

// applyOps drives the same mutation sequence derived from data into
// both representations. Values are small integers so every float64 sum
// is exact and the comparisons below can demand bit equality.
func applyOps(data []byte, dense *Matrix, sparse *Sparse) {
	n := dense.Order()
	for k := 0; k+3 < len(data); k += 4 {
		i := int(data[k]) % n
		j := int(data[k+1]) % n
		v := float64(int8(data[k+2]))
		switch data[k+3] % 3 {
		case 0:
			dense.Set(i, j, v)
			sparse.Set(i, j, v)
		case 1:
			dense.Add(i, j, v)
			sparse.Add(i, j, v)
		case 2:
			dense.AddSym(i, j, v)
			sparse.AddSym(i, j, v)
		}
	}
}

func checkEquivalent(t *testing.T, dense *Matrix, sparse *Sparse) {
	t.Helper()
	n := dense.Order()
	if sparse.Order() != n {
		t.Fatalf("order: sparse %d, dense %d", sparse.Order(), n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d, s := dense.At(i, j), sparse.At(i, j); d != s {
				t.Fatalf("At(%d,%d): sparse %g, dense %g", i, j, s, d)
			}
		}
	}
	if d, s := dense.NNZ(), sparse.NNZ(); d != s {
		t.Fatalf("NNZ: sparse %d, dense %d", s, d)
	}
	if d, s := dense.Total(), sparse.Total(); d != s {
		t.Fatalf("Total: sparse %g, dense %g", s, d)
	}
	if d, s := FingerprintOf(dense), FingerprintOf(sparse); d != s {
		t.Fatalf("FingerprintOf: sparse %#x, dense %#x", s, d)
	}

	dp := dense.HeaviestPairs(0)
	sp := sparse.HeaviestPairs(0)
	if len(dp) != len(sp) {
		t.Fatalf("HeaviestPairs: sparse %d pairs, dense %d", len(sp), len(dp))
	}
	for k := range dp {
		if dp[k] != sp[k] {
			t.Fatalf("HeaviestPairs[%d]: sparse %+v, dense %+v", k, sp[k], dp[k])
		}
	}

	// Symmetrization must agree entry-for-entry across representations.
	dsym := dense.SymmetrizedInto(NewMatrix(0))
	ssym := sparse.SymmetrizedInto(NewSparse(0))
	if d, s := FingerprintOf(dsym), FingerprintOf(ssym); d != s {
		t.Fatalf("symmetrized fingerprint: sparse %#x, dense %#x", s, d)
	}
	gsym := NewSparse(0)
	SymmetrizeAffinityInto(gsym, Affinity(dense))
	if d, s := FingerprintOf(dsym), FingerprintOf(gsym); d != s {
		t.Fatalf("SymmetrizeAffinityInto(dense) fingerprint: got %#x, want %#x", s, d)
	}

	// Aggregation over a round-robin partition into min(n,3) groups.
	g := n
	if g > 3 {
		g = 3
	}
	groups := make([][]int, g)
	for i := 0; i < n; i++ {
		groups[i%g] = append(groups[i%g], i)
	}
	dagg := NewMatrix(0)
	if err := dense.AggregateInto(dagg, groups, nil); err != nil {
		t.Fatalf("dense aggregate: %v", err)
	}
	sagg := NewMatrix(0)
	if err := sparse.AggregateInto(sagg, groups, nil); err != nil {
		t.Fatalf("sparse aggregate: %v", err)
	}
	for a := 0; a < g; a++ {
		for b := 0; b < g; b++ {
			if dagg.At(a, b) != sagg.At(a, b) {
				t.Fatalf("aggregate (%d,%d): sparse %g, dense %g", a, b, sagg.At(a, b), dagg.At(a, b))
			}
		}
	}
}

// FuzzSparseDenseEquivalence drives random mutation sequences into a
// dense Matrix and a Sparse side by side and asserts the Affinity
// surface cannot tell them apart: entries, NNZ, totals, symmetrize,
// aggregate, heaviest pairs and FingerprintOf all agree.
func FuzzSparseDenseEquivalence(f *testing.F) {
	f.Add([]byte{5, 0, 1, 10, 0, 1, 0, 20, 1})
	f.Add([]byte{12, 3, 7, 255, 2, 7, 3, 1, 1, 3, 7, 1, 0})
	f.Add([]byte{1, 0, 0, 5, 0})
	f.Add([]byte{30, 0, 29, 100, 2, 29, 0, 156, 1, 14, 14, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := 1 + int(data[0])%32
		dense := NewMatrix(n)
		sparse := NewSparse(n)
		applyOps(data[1:], dense, sparse)
		checkEquivalent(t, dense, sparse)
	})
}

func TestSparseDenseEquivalencePatterns(t *testing.T) {
	random := Random(20, 50, 7)
	// Integer-quantize so sums are exact regardless of addition order
	// (Total/aggregate walk entries in representation-specific order).
	for i := 0; i < random.Order(); i++ {
		for j := 0; j < random.Order(); j++ {
			random.Set(i, j, math.Round(random.At(i, j)))
		}
	}
	for name, m := range map[string]*Matrix{
		"ring":      Ring(17, 64, true),
		"stencil":   Stencil2D(5, 4, 10, 3),
		"clustered": Clustered(24, 4, 100, 1),
		"random":    random,
	} {
		_ = name
		checkEquivalent(t, m, SparseFromMatrix(m))
	}
}

func TestNewAffinityRepresentation(t *testing.T) {
	if _, ok := NewAffinity(DenseOrderThreshold).(*Matrix); !ok {
		t.Fatalf("NewAffinity(%d) not dense", DenseOrderThreshold)
	}
	if _, ok := NewAffinity(DenseOrderThreshold + 1).(*Sparse); !ok {
		t.Fatalf("NewAffinity(%d) not sparse", DenseOrderThreshold+1)
	}
}

func TestSparseZeroDeletion(t *testing.T) {
	s := NewSparse(4)
	s.Add(1, 2, 5)
	s.Add(1, 2, -5)
	s.Set(0, 3, 7)
	s.Set(0, 3, 0)
	if nz := s.NNZ(); nz != 0 {
		t.Fatalf("NNZ after cancellation = %d, want 0", nz)
	}
}

func TestSparseForEachRowAscendingAndReentrant(t *testing.T) {
	s := NewSparse(8)
	for _, j := range []int{5, 1, 7, 3} {
		s.Set(2, j, float64(j))
		s.Set(4, j, float64(j))
	}
	var outer []int
	s.ForEachRow(2, func(j int, v float64) {
		outer = append(outer, j)
		inner := []int{}
		s.ForEachRow(4, func(k int, _ float64) { inner = append(inner, k) })
		if len(inner) != 4 {
			t.Fatalf("nested iteration saw %d cols", len(inner))
		}
	})
	want := []int{1, 3, 5, 7}
	for i, j := range want {
		if outer[i] != j {
			t.Fatalf("row order %v, want %v", outer, want)
		}
	}
}

func TestRingOfClustersSparse(t *testing.T) {
	k, size := 8, 16
	s := RingOfClusters(k, size, 1000, 10)
	n := k * size
	if s.Order() != n {
		t.Fatalf("order %d, want %d", s.Order(), n)
	}
	// O(n) nonzeros: 2 per intra link (size links per cluster) plus 2
	// per inter link (k links).
	if nnz := s.NNZ(); nnz > 4*n {
		t.Fatalf("nnz %d not O(n) for n=%d", nnz, n)
	}
	if got := s.At(0, 1); got != 1000 {
		t.Fatalf("intra volume %g", got)
	}
	if got := s.At(size-1, size); got != 10 {
		t.Fatalf("inter volume %g", got)
	}
	// Aggregating by cluster recovers the ring-of-clusters shape.
	groups := make([][]int, k)
	for i := 0; i < n; i++ {
		groups[i/size] = append(groups[i/size], i)
	}
	agg := NewMatrix(0)
	if err := AggregateAffinityInto(agg, s, groups, nil); err != nil {
		t.Fatal(err)
	}
	if agg.At(0, 1) != 10 || agg.At(0, 2) != 0 {
		t.Fatalf("cluster aggregate ring broken: %g %g", agg.At(0, 1), agg.At(0, 2))
	}
}

func TestFingerprintOfSkipsZeros(t *testing.T) {
	a := NewMatrix(6)
	b := NewMatrix(6)
	a.Set(2, 3, 9)
	b.Set(2, 3, 9)
	b.Set(4, 4, 0) // explicit stored zero must not change the identity
	if FingerprintOf(a) != FingerprintOf(b) {
		t.Fatal("stored zero changed FingerprintOf")
	}
	if FingerprintOf(a) == Fingerprint(a) && a.NNZ() != 36 {
		t.Log("FingerprintOf coincides with Fingerprint (harmless, but unexpected)")
	}
	if math.Float64bits(a.At(2, 3)) != math.Float64bits(9.0) {
		t.Fatal("value mangled")
	}
}
