package comm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Write writes the matrix in the plain text format accepted by Read:
// the order on the first line, then one whitespace-separated row per
// line.
func (m *Matrix) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, m.n); err != nil {
		return err
	}
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(m.At(i, j), 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a matrix in the format produced by Write. Blank lines
// and lines starting with '#' are ignored.
func Read(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	next := func() (string, bool) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}
	head, ok := next()
	if !ok {
		return nil, fmt.Errorf("comm: empty input")
	}
	n, err := strconv.Atoi(head)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("comm: bad order line %q", head)
	}
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		line, ok := next()
		if !ok {
			return nil, fmt.Errorf("comm: missing row %d", i)
		}
		fields := strings.Fields(line)
		if len(fields) != n {
			return nil, fmt.Errorf("comm: row %d has %d entries, want %d", i, len(fields), n)
		}
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("comm: row %d col %d: %w", i, j, err)
			}
			m.Set(i, j, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("comm: read: %w", err)
	}
	return m, nil
}
