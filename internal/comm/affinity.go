package comm

import "math"

// Affinity is the representation-independent surface of a communication
// matrix: the operations the mapping pipeline actually needs, satisfied
// by both the dense *Matrix and the hash-of-rows *Sparse. Callers that
// hold an Affinity never commit to an O(n²) layout — a 10k-task program
// whose tasks each talk to a handful of neighbours stays O(nnz) end to
// end (extraction, symmetrization, partitioning, aggregation,
// fingerprinting).
//
// Like *Matrix, implementations are not safe for concurrent mutation.
type Affinity interface {
	// Order is the number of entities (matrix order).
	Order() int
	// At returns entry (i,j).
	At(i, j int) float64
	// Set stores v at (i,j).
	Set(i, j int, v float64)
	// Add accumulates v into (i,j).
	Add(i, j int, v float64)
	// AddSym accumulates v into both (i,j) and (j,i).
	AddSym(i, j int, v float64)
	// Total is the sum of all entries.
	Total() float64
	// NNZ is the number of nonzero entries. Dense matrices count in
	// O(n²); sparse ones answer in O(rows).
	NNZ() int
	// ForEachRow calls fn for every nonzero (j, v) of row i, in
	// ascending column order. The ascending order is part of the
	// contract: deterministic algorithms (greedy partitioning,
	// fingerprinting) rely on it.
	ForEachRow(i int, fn func(j int, v float64))
	// ForEach calls fn for every nonzero (i, j, v) in unspecified
	// order. It is the bulk-extraction primitive: consumers that sort
	// or bucket the nonzeros themselves (CSR builds) use it to skip
	// the per-row ordering work ForEachRow pays for.
	ForEach(fn func(i, j int, v float64))
	// Reset returns the affinity to an n x n all-zero state, reusing
	// storage where possible (the *Into-style scratch primitive).
	Reset(n int)
	// HeaviestPairs returns the entity pairs (i<j) sorted by decreasing
	// symmetrized volume, up to limit pairs (all if limit <= 0), with
	// the same strictly-positive-volume contract as (*Matrix).HeaviestPairs.
	HeaviestPairs(limit int) []Pair
	// CloneAffinity returns a deep copy with the same representation.
	CloneAffinity() Affinity
	// Dense materializes the affinity as a dense matrix. For *Matrix it
	// returns the receiver (no copy); for *Sparse it allocates O(n²) —
	// callers on the sparse path must avoid it above small orders.
	Dense() *Matrix
}

// DenseOrderThreshold is the order up to which NewAffinity picks the
// dense representation: below it the flat n² slab (2 MiB of float64 at
// 512) wins on constant factors and cache behaviour, above it the
// hash-of-rows representation keeps memory O(nnz). The crossover is a
// density argument — observed HPC communication graphs hold O(n)
// nonzeros, so at 512+ tasks the dense slab is overwhelmingly zeros.
const DenseOrderThreshold = 512

// NewAffinity returns an empty n x n affinity in the representation
// appropriate for the order: dense up to DenseOrderThreshold, sparse
// above it.
func NewAffinity(n int) Affinity {
	if n <= DenseOrderThreshold {
		return NewMatrix(n)
	}
	return NewSparse(n)
}

// Dense-side conformance. Order/At/Set/Add/AddSym/Total/Reset/
// HeaviestPairs are the existing methods; the remainder follows.

// NNZ counts the nonzero entries (O(n²) on the dense representation).
func (m *Matrix) NNZ() int {
	nz := 0
	for _, v := range m.data {
		if v != 0 {
			nz++
		}
	}
	return nz
}

// ForEachRow calls fn for every nonzero of row i in ascending column
// order.
func (m *Matrix) ForEachRow(i int, fn func(j int, v float64)) {
	for j, v := range m.data[i*m.n : (i+1)*m.n] {
		if v != 0 {
			fn(j, v)
		}
	}
}

// ForEach calls fn for every nonzero (i, j, v), row-major (the dense
// layout's natural order; callers must not rely on it).
func (m *Matrix) ForEach(fn func(i, j int, v float64)) {
	for i := 0; i < m.n; i++ {
		for j, v := range m.data[i*m.n : (i+1)*m.n] {
			if v != 0 {
				fn(i, j, v)
			}
		}
	}
}

// CloneAffinity returns a deep copy as an Affinity.
func (m *Matrix) CloneAffinity() Affinity { return m.Clone() }

// Dense returns the receiver: the dense matrix is its own dense form.
func (m *Matrix) Dense() *Matrix { return m }

// FingerprintOf hashes the nonzero structure of an affinity: order,
// then every nonzero as (row, column, value bits) in row-major
// ascending-column order. Because zeros are skipped, a dense and a
// sparse affinity holding the same entries hash identically — this is
// the identity the representation-independent placement paths key on.
//
// It deliberately differs from Fingerprint, which hashes all n² dense
// entries and remains the wire protocol's fingerprint-only handle;
// FingerprintOf(m) != Fingerprint(m) in general. Like Fingerprint it
// is an in-memory identity, never persisted.
func FingerprintOf(a Affinity) uint64 {
	if a == nil {
		return 0
	}
	h := uint64(fnvOffset64)
	n := a.Order()
	h = (h ^ uint64(n)) * fnvPrime64
	for i := 0; i < n; i++ {
		a.ForEachRow(i, func(j int, v float64) {
			h = (h ^ uint64(i)) * fnvPrime64
			h = (h ^ uint64(j)) * fnvPrime64
			h = (h ^ math.Float64bits(v)) * fnvPrime64
		})
	}
	return h
}

// SymmetrizeAffinityInto writes the symmetrized form of a into dst
// (Reset to a's order and fully overwritten): dst[i][j] = dst[j][i] =
// a[i][j] + a[j][i] for i != j, zero diagonal. It is the
// representation-independent counterpart of (*Matrix).SymmetrizedInto
// and runs in O(nnz). dst must not alias a.
func SymmetrizeAffinityInto(dst, a Affinity) {
	if dst == a {
		panic("comm: SymmetrizeAffinityInto aliases its source")
	}
	n := a.Order()
	dst.Reset(n)
	for i := 0; i < n; i++ {
		a.ForEachRow(i, func(j int, v float64) {
			if i == j {
				return
			}
			dst.Add(i, j, v)
			dst.Add(j, i, v)
		})
	}
}

// AggregateAffinityInto writes the group aggregation of a into the
// dense dst (resized and fully overwritten), with the same semantics
// and validation as (*Matrix).AggregateInto: dst[x][y] = sum over
// i in groups[x], j in groups[y] of a[i][j], diagonal entries i == j
// excluded. The result is dense because its order is the group count,
// which the partitioned mapper keeps at or below the dense threshold.
// groupOf is optional scratch of length >= a.Order(). Runs in O(nnz).
func AggregateAffinityInto(dst *Matrix, a Affinity, groups [][]int, groupOf []int) error {
	n := a.Order()
	if len(groupOf) < n {
		groupOf = make([]int, n)
	}
	groupOf = groupOf[:n]
	for i := range groupOf {
		groupOf[i] = -1
	}
	for g, members := range groups {
		for _, i := range members {
			if i < 0 || i >= n {
				return errAggregate("entity %d out of range", i)
			}
			if groupOf[i] != -1 {
				return errAggregate("entity %d in two groups", i)
			}
			groupOf[i] = g
		}
	}
	for i, g := range groupOf {
		if g == -1 {
			return errAggregate("entity %d not in any group", i)
		}
	}
	dst.Reset(len(groups))
	for i := 0; i < n; i++ {
		gi := groupOf[i]
		a.ForEachRow(i, func(j int, v float64) {
			if i == j {
				return
			}
			dst.Add(gi, groupOf[j], v)
		})
	}
	return nil
}
