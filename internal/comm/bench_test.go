package comm

import "testing"

// Matrix-pipeline micro-benches: one per primitive the mapping hot
// path leans on. The *Into variants run against a reused destination,
// like treematch.Map drives them — with -benchmem they should report
// zero allocations in steady state.

func BenchmarkSymmetrizedInto(b *testing.B) {
	m := Random(160, 1000, 7)
	dst := NewMatrix(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SymmetrizedInto(dst)
	}
}

func BenchmarkExtendInto(b *testing.B) {
	m := Random(120, 1000, 7)
	dst := NewMatrix(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ExtendInto(dst, 160)
	}
}

func BenchmarkAggregateInto(b *testing.B) {
	m := Random(160, 1000, 7)
	groups := make([][]int, 20)
	for g := range groups {
		for x := 0; x < 8; x++ {
			groups[g] = append(groups[g], g*8+x)
		}
	}
	dst := NewMatrix(0)
	groupOf := make([]int, m.Order())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.AggregateInto(dst, groups, groupOf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeaviestPairsSparse(b *testing.B) {
	m := Ring(160, 1<<20, true) // 160 nonzero pairs out of 12720
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pairs := m.HeaviestPairs(0); len(pairs) != 160 {
			b.Fatal("wrong pair count")
		}
	}
}
