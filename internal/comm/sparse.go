package comm

import (
	"fmt"
	"sort"
)

// Sparse is a hash-of-rows communication matrix: each row is a map from
// column index to volume, so storage and iteration are O(nnz) instead
// of O(n²). It implements the same Affinity surface as the dense
// *Matrix and mirrors its *Into scratch variants; the two
// representations are interchangeable and decision-identical (see
// FuzzSparseDenseEquivalence).
//
// Exact zeros are not stored: Set with 0 and Add sequences that cancel
// to 0 delete the entry, so NNZ and iteration reflect the true nonzero
// structure.
type Sparse struct {
	n    int
	rows []map[int]float64
	// cols is per-call scratch for ascending-order row iteration; reused
	// across ForEachRow calls, which makes Sparse (like Matrix) unsafe
	// for concurrent use.
	cols []int
}

// NewSparse returns an n x n zero sparse matrix.
func NewSparse(n int) *Sparse {
	if n < 0 {
		n = 0
	}
	return &Sparse{n: n, rows: make([]map[int]float64, n)}
}

// Order returns the matrix order.
func (s *Sparse) Order() int { return s.n }

// At returns entry (i,j).
func (s *Sparse) At(i, j int) float64 {
	if r := s.rows[i]; r != nil {
		return r[j]
	}
	return 0
}

// Set stores v at (i,j), deleting the entry when v is zero.
func (s *Sparse) Set(i, j int, v float64) {
	if v == 0 {
		if r := s.rows[i]; r != nil {
			delete(r, j)
		}
		return
	}
	r := s.rows[i]
	if r == nil {
		r = make(map[int]float64, 4)
		s.rows[i] = r
	}
	r[j] = v
}

// Add accumulates v into (i,j).
func (s *Sparse) Add(i, j int, v float64) {
	if v == 0 {
		return
	}
	r := s.rows[i]
	if r == nil {
		r = make(map[int]float64, 4)
		s.rows[i] = r
	}
	nv := r[j] + v
	if nv == 0 {
		delete(r, j)
		return
	}
	r[j] = nv
}

// AddSym accumulates v into both (i,j) and (j,i).
func (s *Sparse) AddSym(i, j int, v float64) {
	if i == j {
		s.Add(i, j, v)
		return
	}
	s.Add(i, j, v)
	s.Add(j, i, v)
}

// Total returns the sum of all entries.
func (s *Sparse) Total() float64 {
	var t float64
	for _, r := range s.rows {
		for _, v := range r {
			t += v
		}
	}
	return t
}

// NNZ returns the number of stored (nonzero) entries.
func (s *Sparse) NNZ() int {
	nz := 0
	for _, r := range s.rows {
		nz += len(r)
	}
	return nz
}

// RowNNZ returns the number of nonzeros in row i without iterating.
func (s *Sparse) RowNNZ(i int) int { return len(s.rows[i]) }

// ForEachRow calls fn for every nonzero (j, v) of row i in ascending
// column order. Map iteration order is randomized, so the columns are
// gathered into reused scratch and sorted — O(k log k) for a row of k
// nonzeros.
func (s *Sparse) ForEachRow(i int, fn func(j int, v float64)) {
	r := s.rows[i]
	if len(r) == 0 {
		return
	}
	// Claim the scratch for this call; a nested ForEachRow on the same
	// receiver (fn iterating another row) sees nil and allocates its
	// own, so reentrancy costs an allocation instead of corruption.
	cols := s.cols[:0]
	s.cols = nil
	for j := range r {
		cols = append(cols, j)
	}
	sort.Ints(cols)
	for _, j := range cols {
		fn(j, r[j])
	}
	s.cols = cols
}

// ForEach calls fn for every nonzero (i, j, v) in unspecified order
// (rows ascending, columns in hash order — no per-row sort).
func (s *Sparse) ForEach(fn func(i, j int, v float64)) {
	for i, r := range s.rows {
		for j, v := range r {
			fn(i, j, v)
		}
	}
}

// Reset returns the matrix to an n x n all-zero state, reusing the row
// table (and the per-row maps up to the new order) so steady-state
// windows allocate nothing.
func (s *Sparse) Reset(n int) {
	if n < 0 {
		n = 0
	}
	if cap(s.rows) < n {
		s.rows = make([]map[int]float64, n)
	} else {
		s.rows = s.rows[:n]
		for i := range s.rows {
			clear(s.rows[i])
		}
	}
	s.n = n
}

// Clone returns a deep copy.
func (s *Sparse) Clone() *Sparse {
	c := NewSparse(s.n)
	for i, r := range s.rows {
		if len(r) == 0 {
			continue
		}
		nr := make(map[int]float64, len(r))
		for j, v := range r {
			nr[j] = v
		}
		c.rows[i] = nr
	}
	return c
}

// CloneAffinity returns a deep copy as an Affinity.
func (s *Sparse) CloneAffinity() Affinity { return s.Clone() }

// Dense materializes the sparse matrix as a dense one: O(n²) memory,
// for interop with consumers that have not been lifted onto Affinity.
func (s *Sparse) Dense() *Matrix {
	m := NewMatrix(s.n)
	for i, r := range s.rows {
		row := m.data[i*s.n : (i+1)*s.n]
		for j, v := range r {
			row[j] = v
		}
	}
	return m
}

// SparseFromMatrix converts a dense matrix to the sparse
// representation, keeping only nonzeros.
func SparseFromMatrix(m *Matrix) *Sparse {
	s := NewSparse(m.Order())
	for i := 0; i < m.n; i++ {
		for j, v := range m.RowView(i) {
			if v != 0 {
				s.Set(i, j, v)
			}
		}
	}
	return s
}

// SymmetrizedInto writes the symmetrized matrix into dst (Reset and
// fully overwritten) and returns dst, mirroring the dense variant:
// dst[i][j] = s[i][j] + s[j][i] for i != j, zero diagonal. O(nnz).
// dst must not be s itself.
func (s *Sparse) SymmetrizedInto(dst *Sparse) *Sparse {
	if dst == s {
		panic("comm: SymmetrizedInto aliases the receiver")
	}
	dst.Reset(s.n)
	for i, r := range s.rows {
		for j, v := range r {
			if i == j || v == 0 {
				continue
			}
			dst.Add(i, j, v)
			dst.Add(j, i, v)
		}
	}
	return dst
}

// AggregateInto writes the group aggregation into the dense dst with
// the same semantics as (*Matrix).AggregateInto, walking only the
// nonzeros. groupOf is optional scratch of length >= Order().
func (s *Sparse) AggregateInto(dst *Matrix, groups [][]int, groupOf []int) error {
	return AggregateAffinityInto(dst, s, groups, groupOf)
}

// HeaviestPairs returns the entity pairs (i<j) sorted by decreasing
// symmetrized volume, up to limit pairs (all if limit <= 0), with the
// dense method's contract: strictly positive symmetrized volumes only,
// ties broken by (i,j). Enumeration is O(nnz): a pair is emitted from
// its upper-triangle entry, or from the lower-triangle entry when the
// upper one is absent.
func (s *Sparse) HeaviestPairs(limit int) []Pair {
	pairs := make([]Pair, 0, s.NNZ())
	for i, r := range s.rows {
		for j, v := range r {
			if v == 0 {
				continue
			}
			switch {
			case j > i:
				if vol := v + s.At(j, i); vol > 0 {
					pairs = append(pairs, Pair{I: i, J: j, Volume: vol})
				}
			case j < i:
				if s.At(j, i) != 0 {
					continue // counted from the upper-triangle entry
				}
				if v > 0 {
					pairs = append(pairs, Pair{I: j, J: i, Volume: v})
				}
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].Volume != pairs[b].Volume {
			return pairs[a].Volume > pairs[b].Volume
		}
		if pairs[a].I != pairs[b].I {
			return pairs[a].I < pairs[b].I
		}
		return pairs[a].J < pairs[b].J
	})
	if limit > 0 && len(pairs) > limit {
		pairs = pairs[:limit]
	}
	return pairs
}

func errAggregate(format string, args ...any) error {
	return fmt.Errorf("comm: aggregate: "+format, args...)
}
