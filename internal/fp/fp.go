// Package fp converts between float64 slices and the byte buffers held
// by ORWL locations. Locations store raw bytes (they may hold any
// resource); the numeric applications use these helpers at the
// location boundary.
package fp

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Bytes is the encoded size of one float64.
const Bytes = 8

// PutFloat64s encodes src into dst, which must be exactly
// len(src)*Bytes long.
func PutFloat64s(dst []byte, src []float64) error {
	if len(dst) != len(src)*Bytes {
		return fmt.Errorf("fp: buffer %d bytes for %d floats", len(dst), len(src))
	}
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[i*Bytes:], math.Float64bits(v))
	}
	return nil
}

// GetFloat64s decodes src into dst, which must hold exactly
// len(src)/Bytes values.
func GetFloat64s(dst []float64, src []byte) error {
	if len(src) != len(dst)*Bytes {
		return fmt.Errorf("fp: buffer %d bytes for %d floats", len(src), len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*Bytes:]))
	}
	return nil
}

// Float64s decodes a whole buffer into a fresh slice.
func Float64s(src []byte) ([]float64, error) {
	if len(src)%Bytes != 0 {
		return nil, fmt.Errorf("fp: buffer length %d not a multiple of %d", len(src), Bytes)
	}
	out := make([]float64, len(src)/Bytes)
	if err := GetFloat64s(out, src); err != nil {
		return nil, err
	}
	return out, nil
}
