package fp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	src := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1)}
	buf := make([]byte, len(src)*Bytes)
	if err := PutFloat64s(buf, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, len(src))
	if err := GetFloat64s(dst, buf); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Errorf("value %d = %g, want %g", i, dst[i], src[i])
		}
	}
	got, err := Float64s(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(src) || got[3] != math.Pi {
		t.Error("Float64s round trip failed")
	}
}

func TestSizeValidation(t *testing.T) {
	if err := PutFloat64s(make([]byte, 7), []float64{1}); err == nil {
		t.Error("accepted short buffer")
	}
	if err := GetFloat64s(make([]float64, 2), make([]byte, 8)); err == nil {
		t.Error("accepted mismatched decode")
	}
	if _, err := Float64s(make([]byte, 9)); err == nil {
		t.Error("accepted ragged buffer")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		buf := make([]byte, len(vals)*Bytes)
		if PutFloat64s(buf, vals) != nil {
			return false
		}
		back, err := Float64s(buf)
		if err != nil || len(back) != len(vals) {
			return false
		}
		for i := range vals {
			if back[i] != vals[i] && !(math.IsNaN(back[i]) && math.IsNaN(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
