//go:build !linux

package bind

const platformSupported = false

func setAffinity(cpus []int) error { return nil }

func clearAffinity() error { return nil }

func getAffinity() ([]int, error) { return nil, nil }
