//go:build linux

package bind

import (
	"runtime"
	"syscall"
	"unsafe"
)

const platformSupported = true

// cpuSetWords is the size of the kernel cpu_set_t in 64-bit words
// (1024 CPUs).
const cpuSetWords = 16

type cpuSet [cpuSetWords]uint64

func (s *cpuSet) set(cpu int) {
	if cpu >= 0 && cpu < cpuSetWords*64 {
		s[cpu/64] |= 1 << uint(cpu%64)
	}
}

func (s *cpuSet) isSet(cpu int) bool {
	if cpu < 0 || cpu >= cpuSetWords*64 {
		return false
	}
	return s[cpu/64]&(1<<uint(cpu%64)) != 0
}

func schedSetaffinity(set *cpuSet) error {
	// pid 0 = the calling thread.
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, unsafe.Sizeof(*set), uintptr(unsafe.Pointer(set)))
	if errno != 0 {
		return errno
	}
	return nil
}

func schedGetaffinity(set *cpuSet) error {
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_GETAFFINITY,
		0, unsafe.Sizeof(*set), uintptr(unsafe.Pointer(set)))
	if errno != 0 {
		return errno
	}
	return nil
}

func setAffinity(cpus []int) error {
	var set cpuSet
	any := false
	for _, c := range cpus {
		if c < runtime.NumCPU() {
			set.set(c)
			any = true
		}
	}
	if !any {
		// The requested PUs do not exist on this host (e.g. binding for
		// a simulated 96-core machine on a laptop): fall back to the
		// full mask rather than EINVAL, keeping binding best-effort.
		for c := 0; c < runtime.NumCPU(); c++ {
			set.set(c)
		}
	}
	return schedSetaffinity(&set)
}

func clearAffinity() error {
	var set cpuSet
	for c := 0; c < runtime.NumCPU(); c++ {
		set.set(c)
	}
	return schedSetaffinity(&set)
}

func getAffinity() ([]int, error) {
	var set cpuSet
	if err := schedGetaffinity(&set); err != nil {
		return nil, err
	}
	var out []int
	for c := 0; c < cpuSetWords*64; c++ {
		if set.isSet(c) {
			out = append(out, c)
		}
	}
	return out, nil
}
