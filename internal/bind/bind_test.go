package bind

import (
	"runtime"
	"testing"
)

func TestBindCurrentValidation(t *testing.T) {
	if _, err := BindCurrent(); err == nil {
		t.Error("accepted empty CPU set")
	}
	if _, err := BindCurrent(-1); err == nil {
		t.Error("accepted negative CPU id")
	}
}

func TestBindUnbindRoundTrip(t *testing.T) {
	b, err := BindCurrent(0)
	if err != nil {
		t.Fatalf("BindCurrent: %v", err)
	}
	if got := b.CPUs(); len(got) != 1 || got[0] != 0 {
		t.Errorf("CPUs = %v", got)
	}
	if Supported() {
		cur, err := Current()
		if err != nil {
			t.Fatal(err)
		}
		if len(cur) != 1 || cur[0] != 0 {
			t.Errorf("thread affinity = %v, want [0]", cur)
		}
	}
	if err := b.Unbind(); err != nil {
		t.Fatalf("Unbind: %v", err)
	}
	if err := b.Unbind(); err != nil {
		t.Errorf("second Unbind should be a no-op: %v", err)
	}
	if Supported() {
		cur, err := Current()
		if err != nil {
			t.Fatal(err)
		}
		if len(cur) != runtime.NumCPU() {
			t.Errorf("after unbind affinity covers %d CPUs, want %d", len(cur), runtime.NumCPU())
		}
	}
}

func TestBindOutOfRangeFallsBack(t *testing.T) {
	// Binding to a PU of a larger simulated machine must not fail: it
	// degrades to the full host mask.
	b, err := BindCurrent(runtime.NumCPU() + 500)
	if err != nil {
		t.Fatalf("out-of-range bind should degrade, got %v", err)
	}
	defer b.Unbind()
	if Supported() {
		cur, err := Current()
		if err != nil {
			t.Fatal(err)
		}
		if len(cur) == 0 {
			t.Error("fallback mask empty")
		}
	}
}

func TestBindMultipleCPUs(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("single-CPU host")
	}
	b, err := BindCurrent(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Unbind()
	if Supported() {
		cur, err := Current()
		if err != nil {
			t.Fatal(err)
		}
		if len(cur) != 2 {
			t.Errorf("affinity = %v, want [0 1]", cur)
		}
	}
}
