// Package bind pins the calling goroutine's OS thread to processing
// units, playing hwloc's thread-binding role (hwloc_set_thread_cpubind)
// on the live runtime.
//
// Go schedules goroutines across OS threads, so a meaningful binding
// first locks the goroutine to its current thread (runtime.LockOSThread)
// and then restricts that thread's CPU affinity mask. This works on
// Linux; on other platforms the calls degrade to recorded no-ops so the
// affinity module stays portable, which mirrors the paper's stance that
// binding is an optimisation the application must never depend on.
package bind

import (
	"fmt"
	"runtime"
	"sync"
)

// Binding tracks the bound state of the calling goroutine.
type Binding struct {
	mu     sync.Mutex
	locked bool
	cpus   []int
}

// Supported reports whether real OS-thread binding is available on this
// platform.
func Supported() bool { return platformSupported }

// BindCurrent locks the calling goroutine to its OS thread and
// restricts the thread to the given PU OS indexes. It returns the
// Binding handle for Unbind. On unsupported platforms the binding is
// recorded but no system call is made, and err is nil.
func BindCurrent(cpus ...int) (*Binding, error) {
	if len(cpus) == 0 {
		return nil, fmt.Errorf("bind: empty CPU set")
	}
	for _, c := range cpus {
		if c < 0 {
			return nil, fmt.Errorf("bind: negative CPU id %d", c)
		}
	}
	runtime.LockOSThread()
	b := &Binding{locked: true, cpus: append([]int(nil), cpus...)}
	if err := setAffinity(cpus); err != nil {
		runtime.UnlockOSThread()
		b.locked = false
		return nil, fmt.Errorf("bind: %w", err)
	}
	return b, nil
}

// CPUs returns the PU OS indexes of the binding.
func (b *Binding) CPUs() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]int(nil), b.cpus...)
}

// Unbind releases the OS thread (and, where supported, restores an
// unrestricted affinity mask). It is idempotent.
func (b *Binding) Unbind() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.locked {
		return nil
	}
	err := clearAffinity()
	runtime.UnlockOSThread()
	b.locked = false
	return err
}

// Current returns the PU OS indexes the calling thread may run on, or
// nil on unsupported platforms.
func Current() ([]int, error) { return getAffinity() }
