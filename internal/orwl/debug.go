package orwl

import (
	"fmt"
	"sort"
	"strings"
)

// QueueInfo is a snapshot of one location's FIFO, for debugging and for
// the stall diagnostics of DumpState.
type QueueInfo struct {
	Location string
	Owner    int
	Size     int
	// Groups lists the queued request groups in FIFO order; entry 0 is
	// granted.
	Groups []QueueGroup
}

// QueueGroup describes one FIFO entry.
type QueueGroup struct {
	Mode    Mode
	Width   int // number of coalesced requests (readers share)
	Pending int // not yet released
	Granted bool
}

// Snapshot captures the location's queue state.
func (l *Location) Snapshot() QueueInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	info := QueueInfo{Location: l.name, Owner: l.owner, Size: len(l.data)}
	for _, g := range l.queue {
		info.Groups = append(info.Groups, QueueGroup{
			Mode:    g.mode,
			Width:   len(g.reqs),
			Pending: g.pending,
			Granted: g.granted,
		})
	}
	return info
}

// DumpState renders every location's queue, for diagnosing stalls: a
// deadlocked program shows non-empty queues whose heads are granted but
// never released, and the blocked requests waiting behind them. Empty
// queues are omitted unless verbose is set.
func (p *Program) DumpState(verbose bool) string {
	p.mu.Lock()
	ids := make([]LocationID, 0, len(p.locs))
	for id := range p.locs {
		ids = append(ids, id)
	}
	locs := make(map[LocationID]*Location, len(p.locs))
	for id, l := range p.locs {
		locs[id] = l
	}
	scheduled := p.scheduled
	arrivals := p.arrivals
	p.mu.Unlock()

	sort.Slice(ids, func(a, b int) bool {
		if ids[a].Task != ids[b].Task {
			return ids[a].Task < ids[b].Task
		}
		return ids[a].Name < ids[b].Name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "program: %d tasks, scheduled=%v (%d/%d arrivals)\n",
		p.numTasks, scheduled, arrivals, p.numTasks)
	for _, id := range ids {
		info := locs[id].Snapshot()
		if len(info.Groups) == 0 && !verbose {
			continue
		}
		fmt.Fprintf(&b, "  %s (%dB):", info.Location, info.Size)
		if len(info.Groups) == 0 {
			b.WriteString(" idle\n")
			continue
		}
		for i, g := range info.Groups {
			state := "waiting"
			if g.Granted {
				state = "granted"
			}
			if i > 0 {
				b.WriteString(" <-")
			}
			fmt.Fprintf(&b, " [%s x%d %s pending=%d]", g.Mode, g.Width, state, g.Pending)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
