package orwl

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// Stress and failure-injection tests for the runtime.

// TestManyTasksRing runs a 32-task iterative token ring for many rounds
// and checks the token visits every task in order.
func TestManyTasksRing(t *testing.T) {
	const tasks = 32
	const rounds = 20
	p := MustProgram(tasks, "slot")
	var tokenSum atomic.Int64
	err := p.Run(func(ctx *TaskContext) error {
		if err := ctx.Scale("slot", 8); err != nil {
			return err
		}
		pred := (ctx.TID() - 1 + tasks) % tasks
		read := NewHandle2()
		write := NewHandle2()
		// Reader-first alternation around the ring, like the matmul
		// block circulation.
		if err := ctx.ReadInsert(read, Loc(pred, "slot"), 0); err != nil {
			return err
		}
		if err := ctx.WriteInsert(write, Loc(ctx.TID(), "slot"), 1); err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		var carry byte
		for r := 0; r < rounds; r++ {
			if err := read.Section(func(buf []byte) error {
				carry = buf[0]
				return nil
			}); err != nil {
				return err
			}
			tokenSum.Add(int64(carry))
			if err := write.Section(func(buf []byte) error {
				buf[0] = carry + 1
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Token values increase by one per hop; the exact sum is fixed by
	// determinism of the protocol: just require progress happened on
	// every task.
	if tokenSum.Load() == 0 {
		t.Error("ring made no progress")
	}
}

// TestManyLocationsConcurrent exercises many independent locations at
// once under the race detector.
func TestManyLocationsConcurrent(t *testing.T) {
	const tasks = 16
	p := MustProgram(tasks, "a", "b", "c")
	err := p.Run(func(ctx *TaskContext) error {
		for _, name := range []string{"a", "b", "c"} {
			if err := ctx.Scale(name, 16); err != nil {
				return err
			}
		}
		var handles []*Handle
		for _, name := range []string{"a", "b", "c"} {
			h := NewHandle2()
			if err := ctx.WriteInsert(h, Loc(ctx.TID(), name), 0); err != nil {
				return err
			}
			handles = append(handles, h)
			r := NewHandle2()
			if err := ctx.ReadInsert(r, Loc((ctx.TID()+1)%tasks, name), 1); err != nil {
				return err
			}
			handles = append(handles, r)
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		for iter := 0; iter < 10; iter++ {
			for i := 0; i < len(handles); i += 2 {
				if err := handles[i].Section(func(buf []byte) error {
					buf[0]++
					return nil
				}); err != nil {
					return err
				}
				if err := handles[i+1].Section(func([]byte) error { return nil }); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPresetAfterQueueingFails(t *testing.T) {
	p := MustProgram(1, "m")
	loc := p.Location(Loc(0, "m"))
	err := p.Run(func(ctx *TaskContext) error {
		h := NewHandle()
		if err := ctx.WriteInsert(h, Loc(0, "m"), 0); err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		if err := loc.Preset([]byte{1}); err == nil {
			return fmt.Errorf("preset accepted with queued requests")
		}
		return h.Section(func([]byte) error { return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPresetSetsDataAndSize(t *testing.T) {
	p := MustProgram(1, "m")
	loc := p.Location(Loc(0, "m"))
	if err := loc.Preset([]byte{9, 8, 7}); err != nil {
		t.Fatal(err)
	}
	if loc.Size() != 3 {
		t.Errorf("size = %d", loc.Size())
	}
	err := p.Run(func(ctx *TaskContext) error {
		h := NewHandle()
		if err := ctx.ReadInsert(h, Loc(0, "m"), 0); err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		return h.Section(func(buf []byte) error {
			if buf[0] != 9 || buf[2] != 7 {
				return fmt.Errorf("preset data lost: %v", buf)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQueueDrainsCompletely verifies no grants remain pending after a
// full run.
func TestQueueDrainsCompletely(t *testing.T) {
	p := MustProgram(4, "m")
	err := p.Run(func(ctx *TaskContext) error {
		h := NewHandle()
		if err := ctx.WriteInsert(h, Loc(0, "m"), ctx.TID()); err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		return h.Section(func([]byte) error { return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Location(Loc(0, "m")).queueLen(); got != 0 {
		t.Errorf("queue length after run = %d", got)
	}
	ins, grants, rels := p.ControlStats()
	if ins != grants || grants != rels {
		t.Errorf("control events unbalanced: %d/%d/%d", ins, grants, rels)
	}
}

// TestInterleavedReadersWriters checks a long, mixed FIFO is granted in
// exactly insertion order with reader groups coalesced.
func TestInterleavedReadersWriters(t *testing.T) {
	// Priorities: W0, R1, R1, W2, R3 — the two priority-1 readers share
	// one grant between the writers.
	p := MustProgram(5, "m")
	var order atomic.Int32
	err := p.Run(func(ctx *TaskContext) error {
		h := NewHandle()
		var err error
		switch ctx.TID() {
		case 0:
			err = ctx.WriteInsert(h, Loc(0, "m"), 0)
		case 1, 2:
			err = ctx.ReadInsert(h, Loc(0, "m"), 1)
		case 3:
			err = ctx.WriteInsert(h, Loc(0, "m"), 2)
		case 4:
			err = ctx.ReadInsert(h, Loc(0, "m"), 3)
		}
		if err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		return h.Section(func([]byte) error {
			pos := order.Add(1)
			switch ctx.TID() {
			case 0:
				if pos != 1 {
					return fmt.Errorf("writer 0 ran at position %d", pos)
				}
			case 1, 2:
				if pos != 2 && pos != 3 {
					return fmt.Errorf("reader %d ran at position %d", ctx.TID(), pos)
				}
			case 3:
				if pos != 4 {
					return fmt.Errorf("writer 3 ran at position %d", pos)
				}
			case 4:
				if pos != 5 {
					return fmt.Errorf("reader 4 ran at position %d", pos)
				}
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}
