package orwl

import (
	"fmt"
	"time"
)

// StallReport describes a suspected stall: the runtime made no control
// progress for a full watch interval while requests were still queued
// and waiting.
type StallReport struct {
	// Waiting counts the queued request groups that are not granted.
	Waiting int
	// State is the DumpState rendering at detection time.
	State string
}

// Error lets a StallReport travel as an error.
func (s *StallReport) Error() string {
	return fmt.Sprintf("orwl: no progress with %d waiting request groups\n%s", s.Waiting, s.State)
}

// WatchStalls polls the runtime every interval and calls report when a
// full interval passes with zero grant/release activity while requests
// are waiting — the signature of a lock-order deadlock (e.g. two
// iterative tasks acquiring each other's locations in opposite
// orders). It returns a stop function; the watchdog also stops itself
// after firing once. Polling is cheap (two atomic loads plus a queue
// scan), so intervals of a few milliseconds are fine in tests.
func (p *Program) WatchStalls(interval time.Duration, report func(*StallReport)) (stop func()) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		_, lastGrants, lastReleases := p.ControlStats()
		idle := 0
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			_, grants, releases := p.ControlStats()
			progressed := grants != lastGrants || releases != lastReleases
			lastGrants, lastReleases = grants, releases
			if progressed || p.waitingGroups() == 0 {
				idle = 0
				continue
			}
			// Require two consecutive idle intervals before declaring a
			// stall, so a scheduling hiccup on a loaded machine is not
			// mistaken for a deadlock.
			idle++
			if idle < 2 {
				continue
			}
			report(&StallReport{Waiting: p.waitingGroups(), State: p.DumpState(false)})
			return
		}
	}()
	var stopped bool
	return func() {
		if !stopped {
			stopped = true
			close(done)
		}
	}
}

// waitingGroups counts queued, non-granted request groups across all
// locations.
func (p *Program) waitingGroups() int {
	p.mu.Lock()
	locs := make([]*Location, 0, len(p.locs))
	for _, l := range p.locs {
		locs = append(locs, l)
	}
	p.mu.Unlock()
	waiting := 0
	for _, l := range locs {
		for _, g := range l.Snapshot().Groups {
			if !g.Granted {
				waiting++
			}
		}
	}
	return waiting
}
