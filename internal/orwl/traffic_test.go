package orwl

import (
	"sync"
	"testing"
)

// runObservedPipeline drives iters rounds of a 1->2->...->n pipeline over
// iterative handles, so the observed counters see real traffic.
func runObservedPipeline(t *testing.T, tasks, size, iters int) *Program {
	t.Helper()
	prog := MustProgram(tasks, "data")
	err := prog.Run(func(ctx *TaskContext) error {
		if err := ctx.Scale("data", size); err != nil {
			return err
		}
		w := NewHandle2()
		if err := ctx.WriteInsert(w, Loc(ctx.TID(), "data"), 0); err != nil {
			return err
		}
		var r *Handle
		if ctx.TID() > 0 {
			r = NewHandle2()
			if err := ctx.ReadInsert(r, Loc(ctx.TID()-1, "data"), 1); err != nil {
				return err
			}
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			if err := w.Section(func(buf []byte) error { return nil }); err != nil {
				return err
			}
			if r != nil {
				if err := r.Section(func(buf []byte) error { return nil }); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestObservedMatrixPipeline(t *testing.T) {
	const tasks, size, iters = 4, 1 << 10, 5
	prog := runObservedPipeline(t, tasks, size, iters)

	obs := prog.ObservedMatrix()
	if obs.Order() != tasks {
		t.Fatalf("observed order %d, want %d", obs.Order(), tasks)
	}
	// Reader i observes writer i-1's data once per iteration after the
	// first write lands; the writer races the reader per round, so the
	// count is iters +- 1 grants of `size` bytes each.
	for i := 1; i < tasks; i++ {
		got := obs.At(i-1, i)
		lo, hi := float64((iters-1)*size), float64((iters+1)*size)
		if got < lo || got > hi {
			t.Errorf("observed(%d->%d) = %g, want within [%g, %g]", i-1, i, got, lo, hi)
		}
	}
	// Nothing flows against the pipeline direction or between
	// non-adjacent tasks.
	for i := 0; i < tasks; i++ {
		for j := 0; j < tasks; j++ {
			if j == i+1 {
				continue
			}
			if v := obs.At(i, j); v != 0 {
				t.Errorf("observed(%d->%d) = %g, want 0", i, j, v)
			}
		}
	}
	if bytes, ops := prog.Traffic().Totals(); bytes == 0 || ops == 0 {
		t.Errorf("Totals() = (%d, %d), want both positive", bytes, ops)
	}
}

func TestObservedWindowPartitionsTraffic(t *testing.T) {
	const tasks, size, iters = 3, 256, 4
	prog := runObservedPipeline(t, tasks, size, iters)

	w1 := prog.ObservedWindow()
	if w1.Total() == 0 {
		t.Fatal("first window empty, want the run's traffic")
	}
	w2 := prog.ObservedWindow()
	if w2.Total() != 0 {
		t.Errorf("second window total %g, want 0 (no traffic between windows)", w2.Total())
	}
	// Windows partition the cumulative matrix.
	if got, want := w1.Total(), prog.ObservedMatrix().Total(); got != want {
		t.Errorf("window total %g != cumulative total %g", got, want)
	}
}

func TestObservedDivergesFromDeclared(t *testing.T) {
	// Declared: a pipeline. Actually driven: task 2 reads task 0 via
	// steady-state raw requests. The declared matrix keeps the
	// pipeline shape; the observed matrix shows the real flow.
	prog := MustProgram(3, "data")
	var rawObs *RawRequest
	err := prog.Run(func(ctx *TaskContext) error {
		if err := ctx.Scale("data", 128); err != nil {
			return err
		}
		w := NewHandle()
		if err := ctx.WriteInsert(w, Loc(ctx.TID(), "data"), 0); err != nil {
			return err
		}
		if ctx.TID() > 0 {
			r := NewHandle()
			if err := ctx.ReadInsert(r, Loc(ctx.TID()-1, "data"), 1); err != nil {
				return err
			}
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		if err := w.Section(func([]byte) error { return nil }); err != nil {
			return err
		}
		if ctx.TID() == 2 {
			req, err := ctx.Request(Loc(0, "data"), Read)
			if err != nil {
				return err
			}
			req.Await()
			if err := req.Release(); err != nil {
				return err
			}
			rawObs = req
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = rawObs

	decl := prog.DependencyMatrix()
	obs := prog.ObservedMatrix()
	if decl.At(0, 2) != 0 {
		t.Errorf("declared(0->2) = %g, want 0: the raw request is invisible to the handle graph", decl.At(0, 2))
	}
	if obs.At(0, 2) != 128 {
		t.Errorf("observed(0->2) = %g, want 128 from the steady-state read", obs.At(0, 2))
	}
}

func TestUnattributedRequestsRecordNothing(t *testing.T) {
	prog := MustProgram(2, "data")
	loc := prog.Location(Loc(0, "data"))
	loc.Scale(64)

	w := loc.NewRequestFor(0, Write)
	w.Await()
	if err := w.Release(); err != nil {
		t.Fatal(err)
	}
	r := loc.NewRequest(Read) // remote-peer path: no task identity
	r.Await()
	if err := r.Release(); err != nil {
		t.Fatal(err)
	}
	if total := prog.ObservedMatrix().Total(); total != 0 {
		t.Errorf("observed total %g after unattributed read, want 0", total)
	}
}

func TestFifoInstrumented(t *testing.T) {
	prog := MustProgram(4)
	f, err := NewFifo(2)
	if err != nil {
		t.Fatal(err)
	}
	f.Instrument(prog.Traffic(), 1, 3)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := f.Push(make([]byte, 100)); err != nil {
				t.Error(err)
				return
			}
		}
		f.Close()
	}()
	pops := 0
	for {
		if _, ok := f.Pop(); !ok {
			break
		}
		pops++
	}
	wg.Wait()

	obs := prog.ObservedMatrix()
	if got := obs.At(1, 3); got != float64(100*pops) {
		t.Errorf("observed(1->3) = %g, want %d", got, 100*pops)
	}
	if got := prog.Traffic().Ops(1, 3); got != uint64(pops) {
		t.Errorf("ops(1->3) = %d, want %d", got, pops)
	}
}

func TestTrafficRecordBounds(t *testing.T) {
	tr := newTraffic(2)
	tr.Record(-1, 1, 10) // unattributed producer
	tr.Record(0, -1, 10) // unattributed consumer
	tr.Record(0, 0, 10)  // self pair
	tr.Record(5, 1, 10)  // out of range
	tr.Record(0, 7, 10)  // out of range
	if bytes, ops := tr.Totals(); bytes != 0 || ops != 0 {
		t.Errorf("Totals() = (%d, %d) after invalid records, want (0, 0)", bytes, ops)
	}
	var nilT *Traffic
	nilT.Record(0, 1, 10) // must not panic
}
