// Package orwl implements the Ordered Read-Write Lock programming model
// (§III of the paper): shared resources are abstracted as locations,
// concurrent access is ordered by a FIFO of read/write requests, and
// applications are decomposed into tasks that interact only through the
// locations they share.
//
// The runtime mirrors the reference C library's primitives: Location
// (orwl_location), Handle (orwl_handle / orwl_handle2), Section
// (ORWL_SECTION / ORWL_SECTION2), Program (orwl_init/orwl_schedule),
// plus the DFG extensions Fifo (orwl_fifo) and Split (orwl_split). When
// all tasks have announced their handles, Schedule orders the initial
// requests, which makes the full task–location graph — and hence the
// communication matrix — available to the affinity module without any
// user annotation.
package orwl

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Mode is the access mode of a request: concurrent Read or exclusive
// Write.
type Mode int

// Access modes.
const (
	Read Mode = iota
	Write
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Location is a shared resource guarded by an ordered read-write lock.
// Requests are queued FIFO; adjacent read requests share a grant (a
// reader group), a write request is granted exclusively.
type Location struct {
	name  string
	owner int // task that owns this location (it appears in its namespace)

	mu    sync.Mutex
	data  []byte
	queue []*group

	// Statistics, maintained atomically: they stand in for the control
	// traffic the ORWL control threads handle in the C implementation.
	grants   atomic.Uint64
	inserts  atomic.Uint64
	releases atomic.Uint64

	// traffic is the program-wide observed-communication recorder
	// (nil for locations created outside a program, e.g. in low-level
	// tests). lastWriter is the task id of the most recent released
	// writer, or -1: a read release records lastWriter -> reader
	// traffic of the location's current size.
	traffic    *Traffic
	lastWriter atomic.Int64
}

// newLocation builds a location owned by a task and wired to the
// program's traffic recorder.
func newLocation(name string, owner int, traffic *Traffic) *Location {
	l := &Location{name: name, owner: owner, traffic: traffic}
	l.lastWriter.Store(-1)
	return l
}

// group is one FIFO entry: either a single writer or a set of readers
// sharing the grant.
type group struct {
	mode    Mode
	reqs    []*request
	pending int // requests not yet released
	granted bool
}

// request is one queued access by one handle.
type request struct {
	mode  Mode
	ready chan struct{}
	loc   *Location
	done  bool
	// task is the task the request acts for, or -1 when unattributed
	// (raw requests from remote peers). Attributed requests feed the
	// observed-traffic counters on release.
	task int
}

// Name returns the location name.
func (l *Location) Name() string { return l.name }

// Owner returns the task id owning the location.
func (l *Location) Owner() int { return l.owner }

// Size returns the current buffer size in bytes.
func (l *Location) Size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.data)
}

// Scale resizes the location's buffer, preserving existing content up
// to the new size (orwl_scale).
func (l *Location) Scale(size int) {
	if size < 0 {
		size = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if size <= cap(l.data) {
		l.data = l.data[:size]
		return
	}
	nd := make([]byte, size)
	copy(nd, l.data)
	l.data = nd
}

// Preset fills the location's buffer (resizing it) before any request
// is queued. It is the initialisation path for locations whose first
// FIFO entry is a read — e.g. the lag-1 border exchanges of iterative
// stencils, where the first reader must observe the initial data.
func (l *Location) Preset(data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.queue) != 0 {
		return fmt.Errorf("orwl: preset on location %q with queued requests", l.name)
	}
	l.data = append(l.data[:0], data...)
	return nil
}

// Stats reports the number of insert/grant/release control events the
// location has processed.
func (l *Location) Stats() (inserts, grants, releases uint64) {
	return l.inserts.Load(), l.grants.Load(), l.releases.Load()
}

// insert queues an unattributed request; callers wait on req.ready.
func (l *Location) insert(mode Mode) *request {
	return l.insertFor(-1, mode)
}

// insertFor queues a request acting for a task (-1 when unattributed);
// callers wait on req.ready.
func (l *Location) insertFor(task int, mode Mode) *request {
	req := &request{mode: mode, ready: make(chan struct{}), loc: l, task: task}
	l.mu.Lock()
	l.enqueueLocked(req)
	l.mu.Unlock()
	l.inserts.Add(1)
	return req
}

// enqueueLocked appends the request, coalescing adjacent readers, and
// grants it immediately when it lands at the head.
func (l *Location) enqueueLocked(req *request) {
	if req.mode == Read && len(l.queue) > 0 {
		tail := l.queue[len(l.queue)-1]
		// Readers join the tail reader group. If that group is the
		// granted head the new reader is admitted immediately: no
		// writer is waiting behind it, so FIFO order is preserved.
		if tail.mode == Read {
			tail.reqs = append(tail.reqs, req)
			tail.pending++
			if tail.granted {
				l.grants.Add(1)
				close(req.ready)
			}
			return
		}
	}
	g := &group{mode: req.mode, reqs: []*request{req}, pending: 1}
	l.queue = append(l.queue, g)
	if len(l.queue) == 1 {
		l.grantLocked(g)
	}
}

func (l *Location) grantLocked(g *group) {
	g.granted = true
	for _, r := range g.reqs {
		l.grants.Add(1)
		close(r.ready)
	}
}

// observeReleaseLocked feeds the observed-traffic counters at the end
// of a critical section, the one point where a transfer demonstrably
// happened: a releasing writer becomes the location's last writer, a
// releasing reader has consumed the last writer's data, so the
// location's current size is recorded as lastWriter -> reader volume.
// Unattributed requests (task < 0: remote raw requests) and locations
// outside a program (nil recorder) record nothing, keeping the legacy
// paths at their old cost.
func (l *Location) observeReleaseLocked(req *request) {
	if req.task < 0 {
		return
	}
	if req.mode == Write {
		l.lastWriter.Store(int64(req.task))
		return
	}
	if w := l.lastWriter.Load(); w >= 0 && int(w) != req.task {
		l.traffic.Record(int(w), req.task, len(l.data))
	}
}

// release marks one request of the head group as done; when the whole
// group is done the next group is granted.
func (l *Location) release(req *request) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if req.done {
		return fmt.Errorf("orwl: double release on location %q", l.name)
	}
	if len(l.queue) == 0 || !contains(l.queue[0], req) {
		return fmt.Errorf("orwl: release of non-granted request on location %q", l.name)
	}
	l.observeReleaseLocked(req)
	req.done = true
	head := l.queue[0]
	head.pending--
	l.releases.Add(1)
	if head.pending == 0 {
		l.queue = l.queue[1:]
		if len(l.queue) > 0 {
			l.grantLocked(l.queue[0])
		}
	}
	return nil
}

// releaseAndReinsert atomically releases the request and queues a fresh
// request with the same mode at the FIFO tail. This is the iterative
// handle (orwl_handle2) step: before leaving the critical section the
// task requests the resource for its next iteration, which guarantees
// that every task gets exactly one turn per round.
func (l *Location) releaseAndReinsert(req *request) (*request, error) {
	next := &request{mode: req.mode, ready: make(chan struct{}), loc: l, task: req.task}
	l.mu.Lock()
	defer l.mu.Unlock()
	if req.done {
		return nil, fmt.Errorf("orwl: double release on location %q", l.name)
	}
	if len(l.queue) == 0 || !contains(l.queue[0], req) {
		return nil, fmt.Errorf("orwl: release of non-granted request on location %q", l.name)
	}
	l.observeReleaseLocked(req)
	// Insert the next-iteration request first so it lands behind every
	// request already queued, then release the current one.
	l.enqueueLocked(next)
	l.inserts.Add(1)
	req.done = true
	head := l.queue[0]
	head.pending--
	l.releases.Add(1)
	if head.pending == 0 {
		l.queue = l.queue[1:]
		if len(l.queue) > 0 {
			l.grantLocked(l.queue[0])
		}
	}
	return next, nil
}

// cancel withdraws a queued request: a granted one is released, an
// ungranted one is removed from its FIFO group, closing its ready
// channel so blocked Awaits return. This is the liveness path for
// dead remote clients (orwlnet): their queued requests must not stall
// the FIFO — or a draining server — forever. Cancelling an already
// released request is a no-op.
func (l *Location) cancel(req *request) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if req.done {
		return
	}
	// A granted request behaves like a release: the group may be
	// holding successors back.
	if len(l.queue) > 0 && l.queue[0].granted && contains(l.queue[0], req) {
		req.done = true
		head := l.queue[0]
		head.pending--
		l.releases.Add(1)
		if head.pending == 0 {
			l.queue = l.queue[1:]
			if len(l.queue) > 0 {
				l.grantLocked(l.queue[0])
			}
		}
		return
	}
	// Ungranted: drop it from its group, dropping the group when it
	// empties, and wake anything blocked on it.
	for gi, g := range l.queue {
		for ri, r := range g.reqs {
			if r != req {
				continue
			}
			req.done = true
			close(req.ready)
			g.reqs = append(g.reqs[:ri], g.reqs[ri+1:]...)
			g.pending--
			if g.pending == 0 {
				l.queue = append(l.queue[:gi], l.queue[gi+1:]...)
				if gi == 0 && len(l.queue) > 0 && !l.queue[0].granted {
					l.grantLocked(l.queue[0])
				}
			}
			return
		}
	}
}

func contains(g *group, req *request) bool {
	for _, r := range g.reqs {
		if r == req {
			return true
		}
	}
	return false
}

// buffer returns the raw storage; only valid while holding a grant.
func (l *Location) buffer() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.data
}

// RawRequest exposes one queued FIFO access for low-level integrations
// such as the network location service (orwlnet). Applications should
// use Handle, which adds state checking on top. RawRequest is safe for
// concurrent use: a connection reaper may Cancel it while a handler
// goroutine is blocked in Await or mid-ReleaseAndReinsert.
type RawRequest struct {
	loc *Location

	mu  sync.Mutex
	req *request
}

// NewRequest queues an unattributed request at the FIFO tail and
// returns it. Unlike Handle insertion, this path is not ordered by the
// schedule barrier: it is the steady-state insertion used by remote
// peers. Unattributed requests bypass the observed-traffic counters.
func (l *Location) NewRequest(mode Mode) *RawRequest {
	return l.NewRequestFor(-1, mode)
}

// NewRequestFor is NewRequest acting for a task: releases of the
// request feed the program's observed-traffic counters, so
// steady-state (post-schedule) accesses — the dynamic traffic a
// declared dependency graph cannot see — appear in ObservedMatrix.
func (l *Location) NewRequestFor(task int, mode Mode) *RawRequest {
	return &RawRequest{loc: l, req: l.insertFor(task, mode)}
}

// current reads the tracked request under the lock (ReleaseAndReinsert
// swaps it).
func (r *RawRequest) current() *request {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.req
}

// Mode returns the request's access mode.
func (r *RawRequest) Mode() Mode { return r.current().mode }

// Await blocks until the request is granted (or cancelled).
func (r *RawRequest) Await() { <-r.current().ready }

// TryAwait reports whether the request is granted, without blocking.
func (r *RawRequest) TryAwait() bool {
	select {
	case <-r.current().ready:
		return true
	default:
		return false
	}
}

// Buffer returns the location's storage; only valid between Await and
// Release.
func (r *RawRequest) Buffer() []byte { return r.loc.buffer() }

// Release ends the grant.
func (r *RawRequest) Release() error { return r.loc.release(r.current()) }

// ReleaseAndReinsert atomically releases the grant and queues the next
// iteration's request (the Handle2 step); the RawRequest then tracks
// the new request.
func (r *RawRequest) ReleaseAndReinsert() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	next, err := r.loc.releaseAndReinsert(r.req)
	if err != nil {
		return err
	}
	r.req = next
	return nil
}

// Cancel withdraws the request from the FIFO: granted requests are
// released, ungranted ones removed and their Awaits unblocked. It is
// idempotent and safe concurrently with the other methods — the path
// a server takes when the owning client connection dies.
func (r *RawRequest) Cancel() { r.loc.cancel(r.current()) }

// queueLen returns the number of queued groups (for tests/diagnostics).
func (l *Location) queueLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue)
}
