package orwl

import "fmt"

// Split is the orwl_split DFG primitive: it partitions the data of a
// location into k pieces, each guarded by its own request FIFO, so that
// k sub-tasks can process the pieces in parallel (used for the GMM and
// CCL stages of the video-tracking application, §V-C).
type Split struct {
	parent *Location
	parts  []*Location
}

// NewSplit creates a split of loc into k near-equal contiguous pieces.
// The parts are registered as extra locations of the program, named
// "<loc>#<i>" and owned by ownerTask, so they participate in dependency
// extraction. The parent must be scaled to its final size first.
func (p *Program) NewSplit(loc *Location, id LocationID, k int) (*Split, error) {
	if loc == nil {
		return nil, fmt.Errorf("orwl: split of nil location")
	}
	if k <= 0 {
		return nil, fmt.Errorf("orwl: split into %d parts", k)
	}
	size := loc.Size()
	s := &Split{parent: loc}
	base := size / k
	extra := size % k
	off := 0
	for i := 0; i < k; i++ {
		sz := base
		if i < extra {
			sz++
		}
		partID := LocationID{Task: id.Task, Name: fmt.Sprintf("%s#%d", id.Name, i)}
		part, err := p.AddLocation(partID)
		if err != nil {
			return nil, err
		}
		part.Scale(sz)
		s.parts = append(s.parts, part)
		off += sz
	}
	return s, nil
}

// Parts returns the number of pieces.
func (s *Split) Parts() int { return len(s.parts) }

// Part returns the i-th piece location.
func (s *Split) Part(i int) *Location {
	if i < 0 || i >= len(s.parts) {
		return nil
	}
	return s.parts[i]
}

// Scatter copies the parent's buffer into the pieces. The caller must
// hold a grant on the parent and write grants on every piece (the usual
// pattern is the splitter task holding all of them inside nested
// sections).
func (s *Split) Scatter(parentBuf []byte) {
	off := 0
	for _, part := range s.parts {
		buf := part.buffer()
		n := 0
		if off < len(parentBuf) {
			n = copy(buf, parentBuf[off:])
		}
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
		off += len(buf)
	}
}

// Gather copies the pieces back into the parent's buffer. The caller
// must hold a write grant on the parent and grants on every piece.
func (s *Split) Gather(parentBuf []byte) {
	off := 0
	for _, part := range s.parts {
		off += copy(parentBuf[off:], part.buffer())
	}
}
