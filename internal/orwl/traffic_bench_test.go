package orwl

import "testing"

// The observed-traffic counters sit on the runtime's hottest paths
// (grant release, FIFO pop). These benches pair each instrumented
// path with its uninstrumented twin so BENCH_PR5.json records that
// the overhead stays within noise.

func BenchmarkTrafficRecord(b *testing.B) {
	tr := newTraffic(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(1, 2, 4096)
	}
}

func benchRawAcquireRelease(b *testing.B, task int) {
	prog := MustProgram(2, "data")
	loc := prog.Location(Loc(0, "data"))
	loc.Scale(1 << 12)
	// Seed a last writer so the attributed variant pays the full
	// recording cost on every read release.
	w := loc.NewRequestFor(0, Write)
	w.Await()
	if err := w.Release(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := loc.NewRequestFor(task, Read)
		r.Await()
		if err := r.Release(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRawAcquireRelease is the uninstrumented acquire-release
// cycle (unattributed request, counters skipped).
func BenchmarkRawAcquireRelease(b *testing.B) { benchRawAcquireRelease(b, -1) }

// BenchmarkRawAcquireReleaseObserved is the same cycle with the
// observed-traffic recording active on every release.
func BenchmarkRawAcquireReleaseObserved(b *testing.B) { benchRawAcquireRelease(b, 1) }

func benchFifoPushPop(b *testing.B, instrument bool) {
	f, err := NewFifo(4)
	if err != nil {
		b.Fatal(err)
	}
	if instrument {
		f.Instrument(newTraffic(8), 0, 1)
	}
	payload := make([]byte, 1<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Push(payload); err != nil {
			b.Fatal(err)
		}
		if _, ok := f.Pop(); !ok {
			b.Fatal("pop failed")
		}
	}
}

// BenchmarkFifoPushPop is the uninstrumented push/pop hot path.
func BenchmarkFifoPushPop(b *testing.B) { benchFifoPushPop(b, false) }

// BenchmarkFifoPushPopObserved is the same path with per-version
// traffic recording.
func BenchmarkFifoPushPopObserved(b *testing.B) { benchFifoPushPop(b, true) }

// BenchmarkObservedWindow snapshots a 64-task window — the per-epoch
// cost the adaptive loop pays.
func BenchmarkObservedWindow(b *testing.B) {
	tr := newTraffic(64)
	for i := 0; i < 64; i++ {
		tr.Record(i, (i+1)%64, 1<<16)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Window()
	}
}
