package orwl

import (
	"testing"
	"time"
)

func newCancelLoc(t *testing.T) *Location {
	t.Helper()
	prog := MustProgram(1)
	loc, err := prog.AddLocation(Loc(0, "l"))
	if err != nil {
		t.Fatal(err)
	}
	loc.Scale(4)
	return loc
}

// TestCancelUngrantedUnblocksAwait is the dead-client story: a request
// queued behind a held grant is withdrawn, and its blocked Await
// returns instead of waiting for a release that will never come.
func TestCancelUngrantedUnblocksAwait(t *testing.T) {
	loc := newCancelLoc(t)
	holder := loc.NewRequest(Write)
	holder.Await() // granted immediately

	waiter := loc.NewRequest(Write)
	unblocked := make(chan struct{})
	go func() {
		waiter.Await()
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("await returned before grant or cancel")
	case <-time.After(10 * time.Millisecond):
	}

	waiter.Cancel()
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("cancel did not unblock Await")
	}
	// The holder's grant is untouched and the queue stays sane.
	if err := holder.Release(); err != nil {
		t.Fatalf("release after cancel of successor: %v", err)
	}
}

// TestCancelGrantedReleases: cancelling the grant holder passes the
// grant on, exactly like a release.
func TestCancelGrantedReleases(t *testing.T) {
	loc := newCancelLoc(t)
	holder := loc.NewRequest(Write)
	holder.Await()
	next := loc.NewRequest(Write)

	holder.Cancel()
	done := make(chan struct{})
	go func() {
		next.Await()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cancel of the grant holder did not grant the successor")
	}
	if err := next.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelMiddleReaderGroup: removing one reader from a queued
// group leaves the rest of the group intact.
func TestCancelMiddleReaderGroup(t *testing.T) {
	loc := newCancelLoc(t)
	holder := loc.NewRequest(Write)
	holder.Await()
	r1 := loc.NewRequest(Read)
	r2 := loc.NewRequest(Read)

	r1.Cancel()
	if err := holder.Release(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		r2.Await()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("surviving reader not granted after sibling cancel")
	}
	if err := r2.Release(); err != nil {
		t.Fatal(err)
	}
	// Double cancel and cancel-after-release are no-ops.
	r1.Cancel()
	r2.Cancel()
}
