package orwl

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestModeString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("mode names wrong")
	}
	if Mode(7).String() == "" {
		t.Error("unknown mode should still stringify")
	}
}

func TestNewProgramValidation(t *testing.T) {
	if _, err := NewProgram(0); err == nil {
		t.Error("accepted zero tasks")
	}
	if _, err := NewProgram(-3, "x"); err == nil {
		t.Error("accepted negative tasks")
	}
	p, err := NewProgram(2, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumTasks() != 2 {
		t.Error("task count wrong")
	}
	if got := p.LocationNames(); len(got) != 2 || got[0] != "a" {
		t.Errorf("location names = %v", got)
	}
	for tid := 0; tid < 2; tid++ {
		for _, n := range []string{"a", "b"} {
			if p.Location(Loc(tid, n)) == nil {
				t.Errorf("missing location %d/%s", tid, n)
			}
		}
	}
	if p.Location(Loc(5, "a")) != nil {
		t.Error("resolved nonexistent location")
	}
}

func TestLocationScaleAndSize(t *testing.T) {
	p := MustProgram(1, "m")
	loc := p.Location(Loc(0, "m"))
	if loc.Size() != 0 {
		t.Error("fresh location should be empty")
	}
	loc.Scale(16)
	if loc.Size() != 16 {
		t.Errorf("size = %d", loc.Size())
	}
	buf := loc.buffer()
	buf[3] = 42
	loc.Scale(8) // shrink keeps prefix
	if loc.Size() != 8 || loc.buffer()[3] != 42 {
		t.Error("shrink lost data")
	}
	loc.Scale(32) // grow preserves prefix
	if loc.buffer()[3] != 42 {
		t.Error("grow lost data")
	}
	loc.Scale(-1)
	if loc.Size() != 0 {
		t.Error("negative scale should clamp to zero")
	}
	if loc.Owner() != 0 || loc.Name() != "0/m" {
		t.Errorf("owner/name = %d/%q", loc.Owner(), loc.Name())
	}
}

func TestAddLocation(t *testing.T) {
	p := MustProgram(1, "m")
	l, err := p.AddLocation(Loc(0, "extra"))
	if err != nil || l == nil {
		t.Fatalf("AddLocation: %v", err)
	}
	if _, err := p.AddLocation(Loc(0, "extra")); err == nil {
		t.Error("accepted duplicate location")
	}
	if _, err := p.AddLocation(Loc(0, "m")); err == nil {
		t.Error("accepted clash with grid location")
	}
}

// runPipeline runs the paper's Listing 1: a chain where each task reads
// its predecessor's location, and returns the final values.
func runPipeline(t *testing.T, n int) []float64 {
	t.Helper()
	p := MustProgram(n, "main_loc")
	vals := make([]float64, n)
	err := p.Run(func(ctx *TaskContext) error {
		if err := ctx.Scale("main_loc", 8); err != nil {
			return err
		}
		here := NewHandle()
		there := NewHandle()
		if err := ctx.WriteInsert(here, Loc(ctx.TID(), "main_loc"), ctx.TID()); err != nil {
			return err
		}
		if ctx.TID() > 0 {
			if err := ctx.ReadInsert(there, Loc(ctx.TID()-1, "main_loc"), ctx.TID()); err != nil {
				return err
			}
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		return here.Section(func(wbuf []byte) error {
			val := float64(ctx.TID() + 1)
			if ctx.TID() > 0 {
				if err := there.Section(func(rbuf []byte) error {
					prev := float64frombits(rbuf)
					val = (prev + val) * 0.5
					return nil
				}); err != nil {
					return err
				}
			}
			float64tobits(wbuf, val)
			vals[ctx.TID()] = val
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

func float64frombits(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
func float64tobits(b []byte, v float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
}

func TestListing1Pipeline(t *testing.T) {
	vals := runPipeline(t, 8)
	// Task 0 writes 1; task i computes (prev + i+1)/2.
	want := 1.0
	if vals[0] != want {
		t.Errorf("task 0 value = %g, want %g", vals[0], want)
	}
	for i := 1; i < len(vals); i++ {
		want = (want + float64(i+1)) * 0.5
		if vals[i] != want {
			t.Errorf("task %d value = %g, want %g", i, vals[i], want)
		}
	}
}

func TestPipelineManyTasks(t *testing.T) {
	vals := runPipeline(t, 64)
	if len(vals) != 64 {
		t.Fatal("wrong length")
	}
	// Values converge towards n; just check the recurrence held for a
	// couple of points.
	want := 1.0
	for i := 1; i < 64; i++ {
		want = (want + float64(i+1)) * 0.5
	}
	if vals[63] != want {
		t.Errorf("last value = %g, want %g", vals[63], want)
	}
}

func TestFIFOOrderingIsPriorityOrder(t *testing.T) {
	// Three tasks write to the same location with priorities 2,0,1:
	// grants must follow priority order regardless of goroutine timing.
	p := MustProgram(3, "shared")
	var order []int
	var mu sync.Mutex
	prio := []int{2, 0, 1}
	err := p.Run(func(ctx *TaskContext) error {
		h := NewHandle()
		if err := ctx.WriteInsert(h, Loc(0, "shared"), prio[ctx.TID()]); err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		return h.Section(func([]byte) error {
			mu.Lock()
			order = append(order, ctx.TID())
			mu.Unlock()
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 0} // priorities 0,1,2
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

func TestReadersShareGrant(t *testing.T) {
	// One writer (priority 0) then 4 readers (priority 1): all readers
	// must hold the grant concurrently.
	p := MustProgram(5, "shared")
	var concurrent atomic.Int32
	var peak atomic.Int32
	err := p.Run(func(ctx *TaskContext) error {
		h := NewHandle()
		var err error
		if ctx.TID() == 0 {
			err = ctx.WriteInsert(h, Loc(0, "shared"), 0)
		} else {
			err = ctx.ReadInsert(h, Loc(0, "shared"), 1)
		}
		if err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		return h.Section(func([]byte) error {
			if ctx.TID() == 0 {
				return nil
			}
			n := concurrent.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond) // let the others arrive
			concurrent.Add(-1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() != 4 {
		t.Errorf("peak concurrent readers = %d, want 4", peak.Load())
	}
}

func TestWriterExcludesReaders(t *testing.T) {
	// Writer between two reader groups: no reader of the second group
	// may run while the writer holds the grant.
	p := MustProgram(3, "shared")
	var stage atomic.Int32
	err := p.Run(func(ctx *TaskContext) error {
		h := NewHandle()
		var err error
		switch ctx.TID() {
		case 0:
			err = ctx.ReadInsert(h, Loc(0, "shared"), 0)
		case 1:
			err = ctx.WriteInsert(h, Loc(0, "shared"), 1)
		case 2:
			err = ctx.ReadInsert(h, Loc(0, "shared"), 2)
		}
		if err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		return h.Section(func([]byte) error {
			got := stage.Add(1)
			if int32(ctx.TID())+1 != got {
				return fmt.Errorf("task %d ran at stage %d", ctx.TID(), got)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHandle2Iterative(t *testing.T) {
	// Two tasks alternate exclusive access to one location over many
	// iterations; the iterative handle must enforce strict alternation.
	const iters = 50
	p := MustProgram(2, "ping")
	var trace []int
	var mu sync.Mutex
	err := p.Run(func(ctx *TaskContext) error {
		h := NewHandle2()
		if err := ctx.WriteInsert(h, Loc(0, "ping"), ctx.TID()); err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			if err := h.Section(func([]byte) error {
				mu.Lock()
				trace = append(trace, ctx.TID())
				mu.Unlock()
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2*iters {
		t.Fatalf("trace length = %d", len(trace))
	}
	for i, tid := range trace {
		if tid != i%2 {
			t.Fatalf("iteration %d ran task %d, want strict alternation (trace %v...)",
				i, tid, trace[:min(len(trace), 12)])
		}
	}
}

func TestHandleErrors(t *testing.T) {
	p := MustProgram(1, "m")
	h := NewHandle()
	if err := h.Acquire(); err == nil {
		t.Error("acquire on unbound handle should fail")
	}
	if err := h.Release(); err == nil {
		t.Error("release without acquire should fail")
	}
	if _, err := h.WriteMap(); err == nil {
		t.Error("write map without grant should fail")
	}
	if _, err := h.ReadMap(); err == nil {
		t.Error("read map without grant should fail")
	}
	err := p.Run(func(ctx *TaskContext) error {
		if err := ctx.WriteInsert(h, Loc(0, "m"), 0); err != nil {
			return err
		}
		h2 := NewHandle()
		if err := ctx.WriteInsert(h2, Loc(0, "m"), 1); err != nil {
			return err
		}
		// Rebinding a bound handle fails.
		if err := ctx.ReadInsert(h, Loc(0, "m"), 2); err == nil {
			return fmt.Errorf("rebind accepted")
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		if err := h.Acquire(); err != nil {
			return err
		}
		if err := h.Acquire(); err == nil {
			return fmt.Errorf("double acquire accepted")
		}
		// Read map works on a write handle's grant; write map on a read
		// handle must fail (checked via h3 below).
		if _, err := h.WriteMap(); err != nil {
			return err
		}
		if err := h.Release(); err != nil {
			return err
		}
		if err := h.Release(); err == nil {
			return fmt.Errorf("double release accepted")
		}
		if err := h.Acquire(); err == nil {
			return fmt.Errorf("acquire on spent handle accepted")
		}
		return h2.Section(func([]byte) error { return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteMapOnReadHandleFails(t *testing.T) {
	p := MustProgram(1, "m")
	err := p.Run(func(ctx *TaskContext) error {
		h := NewHandle()
		if err := ctx.ReadInsert(h, Loc(0, "m"), 0); err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		if err := h.Acquire(); err != nil {
			return err
		}
		if _, err := h.WriteMap(); err == nil {
			return fmt.Errorf("write map on read handle accepted")
		}
		if _, err := h.ReadMap(); err != nil {
			return err
		}
		return h.Release()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryAcquire(t *testing.T) {
	p := MustProgram(2, "m")
	err := p.Run(func(ctx *TaskContext) error {
		h := NewHandle()
		if err := ctx.WriteInsert(h, Loc(0, "m"), ctx.TID()); err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		if ctx.TID() == 0 {
			ok, err := h.TryAcquire()
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("priority-0 TryAcquire should succeed immediately")
			}
			time.Sleep(time.Millisecond)
			return h.Release()
		}
		// Task 1 is behind task 0; poll until granted.
		for {
			ok, err := h.TryAcquire()
			if err != nil {
				return err
			}
			if ok {
				return h.Release()
			}
			time.Sleep(100 * time.Microsecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScheduleErrors(t *testing.T) {
	p := MustProgram(1, "m")
	if err := p.Run(func(ctx *TaskContext) error { return ctx.Schedule() }); err != nil {
		t.Fatal(err)
	}
	// A second wave of arrivals must fail.
	ctx := &TaskContext{prog: p, tid: 0}
	if err := ctx.Schedule(); err == nil {
		t.Error("extra schedule arrival accepted")
	}
	// Insertion after schedule must fail.
	h := NewHandle()
	if err := ctx.WriteInsert(h, Loc(0, "m"), 0); err == nil {
		t.Error("insert after schedule accepted")
	}
	// Unknown locations are rejected.
	p2 := MustProgram(1, "m")
	err := p2.Run(func(c *TaskContext) error {
		if err := c.WriteInsert(NewHandle(), Loc(9, "m"), 0); err == nil {
			return fmt.Errorf("unknown location accepted")
		}
		if err := c.ReadInsert(NewHandle(), Loc(0, "nope"), 0); err == nil {
			return fmt.Errorf("unknown name accepted")
		}
		if err := c.Scale("nope", 4); err == nil {
			return fmt.Errorf("scale of unknown location accepted")
		}
		return c.Schedule()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDependencyMatrixPipeline(t *testing.T) {
	p := MustProgram(4, "main_loc")
	err := p.Run(func(ctx *TaskContext) error {
		if err := ctx.Scale("main_loc", 100); err != nil {
			return err
		}
		here := NewHandle()
		if err := ctx.WriteInsert(here, Loc(ctx.TID(), "main_loc"), ctx.TID()); err != nil {
			return err
		}
		if ctx.TID() > 0 {
			there := NewHandle()
			if err := ctx.ReadInsert(there, Loc(ctx.TID()-1, "main_loc"), ctx.TID()); err != nil {
				return err
			}
		}
		return ctx.Schedule()
	})
	if err != nil {
		t.Fatal(err)
	}
	m := p.DependencyMatrix()
	if m.Order() != 4 {
		t.Fatalf("order = %d", m.Order())
	}
	for i := 0; i < 3; i++ {
		if m.At(i, i+1) != 100 {
			t.Errorf("volume %d->%d = %g, want 100", i, i+1, m.At(i, i+1))
		}
	}
	if m.At(0, 2) != 0 || m.At(1, 0) != 0 {
		t.Error("unexpected extra dependencies")
	}
}

func TestDependencyMatrixUnsizedLocationCountsOne(t *testing.T) {
	p := MustProgram(2, "m")
	err := p.Run(func(ctx *TaskContext) error {
		h := NewHandle()
		if ctx.TID() == 0 {
			if err := ctx.WriteInsert(h, Loc(0, "m"), 0); err != nil {
				return err
			}
		} else {
			if err := ctx.ReadInsert(h, Loc(0, "m"), 1); err != nil {
				return err
			}
		}
		return ctx.Schedule()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.DependencyMatrix().At(0, 1); got != 1 {
		t.Errorf("unsized dependency volume = %g, want 1", got)
	}
}

func TestControlThreadsPerTask(t *testing.T) {
	p := MustProgram(3, "a", "b")
	if _, err := p.AddLocation(Loc(1, "extra")); err != nil {
		t.Fatal(err)
	}
	counts := p.ControlThreadsPerTask()
	want := []int{2, 3, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("task %d owns %d locations, want %d", i, counts[i], want[i])
		}
	}
}

func TestScheduleHookAndBindings(t *testing.T) {
	p := MustProgram(2, "m")
	hookRan := make(chan struct{})
	p.SetScheduleHook(func(prog *Program) {
		prog.SetBinding(0, 5)
		prog.SetBinding(1, 9)
		prog.SetControlBinding(0, 6)
		close(hookRan)
	})
	err := p.Run(func(ctx *TaskContext) error { return ctx.Schedule() })
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-hookRan:
	default:
		t.Fatal("schedule hook did not run")
	}
	b := p.Binding()
	if b[0] != 5 || b[1] != 9 {
		t.Errorf("binding = %v", b)
	}
	cb := p.ControlBinding()
	if cb[0] != 6 {
		t.Errorf("control binding = %v", cb)
	}
	if !p.Scheduled() {
		t.Error("program should report scheduled")
	}
	// Mutating the returned maps must not leak into the program.
	b[0] = 99
	if p.Binding()[0] != 5 {
		t.Error("Binding returned a live reference")
	}
}

func TestBindingNilWhenEmpty(t *testing.T) {
	p := MustProgram(1, "m")
	if p.Binding() != nil || p.ControlBinding() != nil {
		t.Error("empty bindings should be nil")
	}
}

func TestControlStatsCount(t *testing.T) {
	p := MustProgram(2, "m")
	err := p.Run(func(ctx *TaskContext) error {
		h := NewHandle()
		if err := ctx.WriteInsert(h, Loc(0, "m"), ctx.TID()); err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		return h.Section(func([]byte) error { return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	ins, grants, rels := p.ControlStats()
	if ins != 2 || grants != 2 || rels != 2 {
		t.Errorf("stats = %d/%d/%d, want 2/2/2", ins, grants, rels)
	}
}

func TestRunTasksHeterogeneous(t *testing.T) {
	p := MustProgram(2, "m")
	var a, b atomic.Bool
	err := p.RunTasks([]func(*TaskContext) error{
		func(ctx *TaskContext) error { a.Store(true); return ctx.Schedule() },
		func(ctx *TaskContext) error { b.Store(true); return ctx.Schedule() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Load() || !b.Load() {
		t.Error("not all bodies ran")
	}
	p2 := MustProgram(2, "m")
	if err := p2.RunTasks(nil); err == nil {
		t.Error("accepted wrong body count")
	}
}

func TestRunPropagatesError(t *testing.T) {
	p := MustProgram(2, "m")
	sentinel := fmt.Errorf("boom")
	err := p.Run(func(ctx *TaskContext) error {
		if err := ctx.Schedule(); err != nil {
			return err
		}
		if ctx.TID() == 1 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Errorf("err = %v, want sentinel", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
