package orwl

import "fmt"

// Handle links a task to a location with a fixed access mode
// (orwl_handle). A plain handle carries a single request: once acquired
// and released it is spent. Use Handle2 for iterative access.
type Handle struct {
	loc       *Location
	mode      Mode
	iterative bool
	cur       *request
	acquired  bool
	inserted  bool
}

// NewHandle returns an unbound single-shot handle
// (ORWL_HANDLE_INITIALIZER).
func NewHandle() *Handle { return &Handle{} }

// NewHandle2 returns an unbound iterative handle: on every release it
// re-queues a request for the next iteration (orwl_handle2).
func NewHandle2() *Handle { return &Handle{iterative: true} }

// Location returns the location the handle is bound to, or nil.
func (h *Handle) Location() *Location { return h.loc }

// Mode returns the access mode of the handle.
func (h *Handle) Mode() Mode { return h.mode }

// Iterative reports whether the handle re-queues itself on release.
func (h *Handle) Iterative() bool { return h.iterative }

// bind attaches the handle to a location; the actual FIFO insertion is
// deferred to Program.schedule so that initial requests are ordered by
// priority across all tasks.
func (h *Handle) bind(loc *Location, mode Mode) error {
	if h.inserted {
		return fmt.Errorf("orwl: handle already bound to %q", h.loc.name)
	}
	h.loc = loc
	h.mode = mode
	h.inserted = true
	return nil
}

// Acquire blocks until the handle's pending request is granted. It is
// an error to acquire an unbound or spent handle, or to acquire twice
// without releasing.
func (h *Handle) Acquire() error {
	if h.cur == nil {
		return fmt.Errorf("orwl: acquire on unbound or spent handle")
	}
	if h.acquired {
		return fmt.Errorf("orwl: double acquire on location %q", h.loc.name)
	}
	<-h.cur.ready
	h.acquired = true
	return nil
}

// TryAcquire acquires if the grant is already available and reports
// whether it did.
func (h *Handle) TryAcquire() (bool, error) {
	if h.cur == nil {
		return false, fmt.Errorf("orwl: acquire on unbound or spent handle")
	}
	if h.acquired {
		return false, fmt.Errorf("orwl: double acquire on location %q", h.loc.name)
	}
	select {
	case <-h.cur.ready:
		h.acquired = true
		return true, nil
	default:
		return false, nil
	}
}

// Release ends the critical section. Iterative handles atomically queue
// their next-iteration request; single-shot handles become spent.
func (h *Handle) Release() error {
	if !h.acquired || h.cur == nil {
		return fmt.Errorf("orwl: release without acquire")
	}
	h.acquired = false
	if h.iterative {
		next, err := h.loc.releaseAndReinsert(h.cur)
		if err != nil {
			return err
		}
		h.cur = next
		return nil
	}
	err := h.loc.release(h.cur)
	h.cur = nil
	return err
}

// WriteMap returns the location's buffer for writing
// (orwl_write_map). The handle must hold a granted write request.
func (h *Handle) WriteMap() ([]byte, error) {
	if !h.acquired {
		return nil, fmt.Errorf("orwl: write map without grant")
	}
	if h.mode != Write {
		return nil, fmt.Errorf("orwl: write map on read handle for %q", h.loc.name)
	}
	return h.loc.buffer(), nil
}

// ReadMap returns the location's buffer for reading (orwl_read_map).
// The handle must hold a grant; callers must not modify the returned
// slice.
func (h *Handle) ReadMap() ([]byte, error) {
	if !h.acquired {
		return nil, fmt.Errorf("orwl: read map without grant")
	}
	return h.loc.buffer(), nil
}

// Section runs fn inside the handle's critical section (ORWL_SECTION /
// ORWL_SECTION2): it acquires, invokes fn with the mapped buffer, and
// releases even when fn returns an error.
func (h *Handle) Section(fn func(buf []byte) error) error {
	if err := h.Acquire(); err != nil {
		return err
	}
	var buf []byte
	var err error
	if h.mode == Write {
		buf, err = h.WriteMap()
	} else {
		buf, err = h.ReadMap()
	}
	if err != nil {
		_ = h.Release()
		return err
	}
	ferr := fn(buf)
	rerr := h.Release()
	if ferr != nil {
		return ferr
	}
	return rerr
}
