package orwl

import (
	"strings"
	"testing"
)

func TestSnapshotAndDumpState(t *testing.T) {
	p := MustProgram(3, "m")
	loc := p.Location(Loc(0, "m"))
	loc.Scale(32)

	// Before any requests: idle.
	out := p.DumpState(false)
	if strings.Contains(out, "0/m") {
		t.Errorf("idle location should be omitted without verbose:\n%s", out)
	}
	out = p.DumpState(true)
	if !strings.Contains(out, "0/m (32B): idle") {
		t.Errorf("verbose dump missing idle location:\n%s", out)
	}

	// Queue a writer (granted) and two readers (waiting, coalesced).
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- p.Run(func(ctx *TaskContext) error {
			h := NewHandle()
			var err error
			if ctx.TID() == 0 {
				err = ctx.WriteInsert(h, Loc(0, "m"), 0)
			} else {
				err = ctx.ReadInsert(h, Loc(0, "m"), 1)
			}
			if err != nil {
				return err
			}
			if err := ctx.Schedule(); err != nil {
				return err
			}
			if ctx.TID() == 0 {
				if err := h.Acquire(); err != nil {
					return err
				}
				<-release
				return h.Release()
			}
			return h.Section(func([]byte) error { return nil })
		})
	}()

	// Wait until the writer holds the grant and the readers queued.
	for {
		info := loc.Snapshot()
		if len(info.Groups) == 2 && info.Groups[0].Granted && info.Groups[1].Width == 2 {
			break
		}
	}
	out = p.DumpState(false)
	if !strings.Contains(out, "[write x1 granted pending=1]") {
		t.Errorf("dump missing granted writer:\n%s", out)
	}
	if !strings.Contains(out, "[read x2 waiting pending=2]") {
		t.Errorf("dump missing coalesced waiting readers:\n%s", out)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Drained again.
	if info := loc.Snapshot(); len(info.Groups) != 0 {
		t.Errorf("queue not drained: %+v", info)
	}
}

func TestSnapshotFields(t *testing.T) {
	p := MustProgram(2, "x")
	loc := p.Location(Loc(1, "x"))
	loc.Scale(7)
	info := loc.Snapshot()
	if info.Owner != 1 || info.Size != 7 || info.Location != "1/x" {
		t.Errorf("snapshot = %+v", info)
	}
}
