package orwl

// Tests for the recorder's sparse mode: above comm.DenseOrderThreshold
// tasks the counters live in lock-striped hash shards instead of a flat
// n² array, and every snapshot surface must behave exactly like the
// dense mode's.

import (
	"sync"
	"testing"

	"orwlplace/internal/comm"
)

func TestTrafficSparseMode(t *testing.T) {
	n := comm.DenseOrderThreshold + 1
	tr := newTraffic(n)
	if !tr.Sparse() {
		t.Fatalf("%d-task recorder is dense, want sparse above the %d threshold", n, comm.DenseOrderThreshold)
	}
	if dense := newTraffic(comm.DenseOrderThreshold); dense.Sparse() {
		t.Fatalf("%d-task recorder is sparse, want dense at the threshold", comm.DenseOrderThreshold)
	}

	tr.Record(0, 1, 100)
	tr.Record(0, 1, 50)
	tr.Record(n-1, 0, 7)
	tr.Record(3, 3, 9)  // self transfer: dropped
	tr.Record(-1, 2, 9) // unattributed: dropped
	tr.Record(0, n, 9)  // out of range: dropped

	a := tr.Affinity()
	if a.Order() != n {
		t.Fatalf("affinity order = %d, want %d", a.Order(), n)
	}
	if _, ok := a.(*comm.Sparse); !ok {
		t.Fatalf("cumulative affinity is %T, want *comm.Sparse above the threshold", a)
	}
	if got := a.At(0, 1); got != 150 {
		t.Errorf("affinity(0,1) = %g, want 150", got)
	}
	if got := a.At(n-1, 0); got != 7 {
		t.Errorf("affinity(%d,0) = %g, want 7", n-1, got)
	}
	if got := a.NNZ(); got != 2 {
		t.Errorf("affinity nnz = %d, want 2", got)
	}
	if m := tr.Matrix(); m.At(0, 1) != 150 || m.At(n-1, 0) != 7 {
		t.Errorf("dense snapshot disagrees with the sparse counters")
	}
	if bytes, ops := tr.Totals(); bytes != 157 || ops != 3 {
		t.Errorf("totals = (%d, %d), want (157, 3)", bytes, ops)
	}
	if got := tr.Ops(0, 1); got != 2 {
		t.Errorf("ops(0,1) = %d, want 2", got)
	}

	// Windows carve disjoint epochs off the sparse counters too.
	w := tr.NewWindow()
	if first := w.NextAffinity(); first.At(0, 1) != 150 || first.NNZ() != 2 {
		t.Fatalf("first epoch = %v nnz %d, want the full history", first.At(0, 1), first.NNZ())
	}
	tr.Record(0, 1, 25)
	second := w.NextAffinity()
	if second.At(0, 1) != 25 || second.NNZ() != 1 {
		t.Fatalf("second epoch (0,1) = %g nnz %d, want only the new 25 bytes", second.At(0, 1), second.NNZ())
	}
	if idle := w.NextAffinity(); idle.Total() != 0 {
		t.Fatalf("idle epoch total = %g, want 0", idle.Total())
	}
}

// TestTrafficSparseConcurrentRecord hammers the shards from many
// goroutines: the striped counters must neither lose nor double-count
// a transfer.
func TestTrafficSparseConcurrentRecord(t *testing.T) {
	n := comm.DenseOrderThreshold + 100
	tr := newTraffic(n)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Spread across pairs (and shards); every worker also hits
				// one shared hot pair to exercise contention.
				tr.Record(w+1, n-1-w, 3)
				tr.Record(0, n-1, 1)
			}
		}(w)
	}
	wg.Wait()
	bytes, ops := tr.Totals()
	wantBytes := uint64(workers*perWorker*3 + workers*perWorker)
	if bytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", bytes, wantBytes)
	}
	if want := uint64(2 * workers * perWorker); ops != want {
		t.Fatalf("ops = %d, want %d", ops, want)
	}
	if got := tr.Affinity().At(0, n-1); got != float64(workers*perWorker) {
		t.Fatalf("hot pair = %g, want %d", got, workers*perWorker)
	}
}
