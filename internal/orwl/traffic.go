package orwl

import (
	"sync"
	"sync/atomic"

	"orwlplace/internal/comm"
)

// Traffic accumulates the observed inter-task communication of a
// running program: for every (from, to) task pair, the bytes that
// actually moved and the number of transfer operations. It is the
// runtime-measured counterpart of the declared dependency matrix —
// what the tasks really exchange, not what their handle graph
// announces at the schedule barrier.
//
// Up to comm.DenseOrderThreshold tasks the counters are plain atomics
// over a flat n×n array, so recording on the acquire-release and
// push/pop hot paths costs two uncontended atomic adds and no
// allocation. Above the threshold a flat array would be O(n²) — 1.6 GB
// of counters for a 10k-task program whose tasks talk to a handful of
// neighbours each — so the recorder switches to sharded hash counters:
// O(nnz) memory, one short mutex hold per record. Snapshots (Matrix,
// Window, their affinity forms) walk the counters without stopping the
// writers; the snapshot as a whole is only approximately
// instantaneous, which is fine for a drift signal.
type Traffic struct {
	n     int
	bytes []atomic.Uint64 // dense mode; nil in sparse mode
	ops   []atomic.Uint64

	shards []trafficShard // sparse mode; nil in dense mode

	// win is the program's default window (see Window); independent
	// consumers create their own with NewWindow.
	win *TrafficWindow
}

// trafficShards is the sparse-mode shard count. Power of two so the
// shard pick is a mask; 256 keeps contention negligible for the
// thread counts a single process runs.
const trafficShards = 256

// trafficShard is one lock-striped slice of the sparse counters, keyed
// by the flattened pair index from*n+to.
type trafficShard struct {
	mu    sync.Mutex
	bytes map[int64]uint64
	ops   map[int64]uint64
}

// newTraffic sizes a recorder for n tasks: dense counters up to
// comm.DenseOrderThreshold, sharded sparse counters above.
func newTraffic(n int) *Traffic {
	t := &Traffic{n: n}
	if n <= comm.DenseOrderThreshold {
		t.bytes = make([]atomic.Uint64, n*n)
		t.ops = make([]atomic.Uint64, n*n)
	} else {
		t.shards = make([]trafficShard, trafficShards)
		for i := range t.shards {
			t.shards[i].bytes = make(map[int64]uint64)
			t.shards[i].ops = make(map[int64]uint64)
		}
	}
	t.win = t.NewWindow()
	return t
}

// Tasks returns the number of tasks the recorder covers.
func (t *Traffic) Tasks() int { return t.n }

// Sparse reports whether the recorder runs in sparse mode.
func (t *Traffic) Sparse() bool { return t != nil && t.shards != nil }

// Record accumulates one transfer of b bytes from task `from` to task
// `to`. Out-of-range or self pairs and unattributed endpoints
// (negative ids, e.g. remote peers without a task identity) are
// dropped — the recorder measures inter-task traffic only.
func (t *Traffic) Record(from, to, b int) {
	if t == nil || from == to || from < 0 || to < 0 || from >= t.n || to >= t.n {
		return
	}
	i := int64(from)*int64(t.n) + int64(to)
	if t.shards == nil {
		t.bytes[i].Add(uint64(b))
		t.ops[i].Add(1)
		return
	}
	sh := &t.shards[i&(trafficShards-1)]
	sh.mu.Lock()
	sh.bytes[i] += uint64(b)
	sh.ops[i]++
	sh.mu.Unlock()
}

// forEachBytes visits every nonzero cumulative byte counter.
func (t *Traffic) forEachBytes(fn func(idx int64, v uint64)) {
	if t.shards == nil {
		for i := range t.bytes {
			if v := t.bytes[i].Load(); v != 0 {
				fn(int64(i), v)
			}
		}
		return
	}
	for s := range t.shards {
		sh := &t.shards[s]
		sh.mu.Lock()
		for i, v := range sh.bytes {
			if v != 0 {
				fn(i, v)
			}
		}
		sh.mu.Unlock()
	}
}

// loadBytes reads one cumulative byte counter.
func (t *Traffic) loadBytes(idx int64) uint64 {
	if t.shards == nil {
		return t.bytes[idx].Load()
	}
	sh := &t.shards[idx&(trafficShards-1)]
	sh.mu.Lock()
	v := sh.bytes[idx]
	sh.mu.Unlock()
	return v
}

// Affinity returns the cumulative observed communication as an
// affinity in the representation matching the task count — the O(nnz)
// snapshot a 10k-task program's placement loop consumes.
func (t *Traffic) Affinity() comm.Affinity {
	a := comm.NewAffinity(t.n)
	n64 := int64(t.n)
	t.forEachBytes(func(idx int64, v uint64) {
		a.Set(int(idx/n64), int(idx%n64), float64(v))
	})
	return a
}

// Matrix returns the cumulative observed communication matrix: entry
// (i, j) holds the bytes moved from task i to task j since the
// program started. Above the dense threshold this materializes n²
// cells — large-scale consumers should use Affinity instead.
func (t *Traffic) Matrix() *comm.Matrix {
	m := comm.NewMatrix(t.n)
	n64 := int64(t.n)
	t.forEachBytes(func(idx int64, v uint64) {
		m.Set(int(idx/n64), int(idx%n64), float64(v))
	})
	return m
}

// TrafficWindow carves the recorder's cumulative counters into
// disjoint epochs for one consumer: each Next call returns the
// traffic since that window's previous call. Every consumer that
// snapshots independently (an adaptive reconciler, a module with
// observed affinity, a monitoring scraper) must own its own window —
// sharing one would silently steal epochs from the other readers.
type TrafficWindow struct {
	t *Traffic

	mu   sync.Mutex
	base map[int64]uint64 // cumulative byte counts at the previous Next call
}

// NewWindow returns an independent epoch window over the recorder
// with an empty baseline: the first Next returns everything recorded
// since the program started.
func (t *Traffic) NewWindow() *TrafficWindow {
	return &TrafficWindow{t: t, base: make(map[int64]uint64)}
}

// NextAffinity returns the observed affinity of the epoch since the
// previous call (or since the start, on the first call) and advances
// the window baseline. O(nnz) in both time and memory.
func (w *TrafficWindow) NextAffinity() comm.Affinity {
	w.mu.Lock()
	defer w.mu.Unlock()
	t := w.t
	a := comm.NewAffinity(t.n)
	n64 := int64(t.n)
	t.forEachBytes(func(idx int64, cur uint64) {
		if d := cur - w.base[idx]; d != 0 {
			a.Set(int(idx/n64), int(idx%n64), float64(d))
		}
		w.base[idx] = cur
	})
	return a
}

// Next is NextAffinity materialized densely — the original epoch
// surface, kept for consumers that still run on *comm.Matrix.
func (w *TrafficWindow) Next() *comm.Matrix {
	a := w.NextAffinity()
	if m, ok := a.(*comm.Matrix); ok {
		return m
	}
	return a.Dense()
}

// Window advances the recorder's default window — a convenience for
// single-consumer programs. Independent consumers must use NewWindow:
// this shared window hands each epoch to whichever caller asks first.
func (t *Traffic) Window() *comm.Matrix {
	return t.win.Next()
}

// Totals returns the cumulative byte and operation counts over all
// pairs.
func (t *Traffic) Totals() (bytes, ops uint64) {
	if t.shards == nil {
		for i := range t.bytes {
			bytes += t.bytes[i].Load()
			ops += t.ops[i].Load()
		}
		return
	}
	for s := range t.shards {
		sh := &t.shards[s]
		sh.mu.Lock()
		for _, v := range sh.bytes {
			bytes += v
		}
		for _, v := range sh.ops {
			ops += v
		}
		sh.mu.Unlock()
	}
	return
}

// Ops returns the cumulative transfer-operation count for the (from,
// to) pair.
func (t *Traffic) Ops(from, to int) uint64 {
	if from < 0 || to < 0 || from >= t.n || to >= t.n {
		return 0
	}
	i := int64(from)*int64(t.n) + int64(to)
	if t.shards == nil {
		return t.ops[i].Load()
	}
	sh := &t.shards[i&(trafficShards-1)]
	sh.mu.Lock()
	v := sh.ops[i]
	sh.mu.Unlock()
	return v
}

// Traffic exposes the program's traffic recorder, so DFG primitives
// that live outside the location grid (Fifo) can be wired into the
// same observed matrix.
func (p *Program) Traffic() *Traffic { return p.traffic }

// ObservedMatrix returns the cumulative runtime-observed communication
// matrix — the measured counterpart of DependencyMatrix. Entry (i, j)
// is the bytes that actually flowed from task i to task j through
// location grants, raw requests and instrumented FIFOs.
func (p *Program) ObservedMatrix() *comm.Matrix { return p.traffic.Matrix() }

// ObservedAffinity is ObservedMatrix on the representation-independent
// surface: sparse above the dense threshold, so a 10k-task program's
// observed traffic never materializes n².
func (p *Program) ObservedAffinity() comm.Affinity { return p.traffic.Affinity() }

// ObservedWindow returns the observed matrix since the previous
// ObservedWindow call and starts a new window — the epoch snapshots an
// adaptive placement loop consumes.
func (p *Program) ObservedWindow() *comm.Matrix { return p.traffic.Window() }
