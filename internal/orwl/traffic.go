package orwl

import (
	"sync"
	"sync/atomic"

	"orwlplace/internal/comm"
)

// Traffic accumulates the observed inter-task communication of a
// running program: for every (from, to) task pair, the bytes that
// actually moved and the number of transfer operations. It is the
// runtime-measured counterpart of the declared dependency matrix —
// what the tasks really exchange, not what their handle graph
// announces at the schedule barrier.
//
// The counters are plain atomics over a flat n×n array, so recording
// on the acquire-release and push/pop hot paths costs two uncontended
// atomic adds and no allocation. Snapshots (Matrix, Window) walk the
// array without stopping the writers: each cell is read atomically,
// the snapshot as a whole is only approximately instantaneous, which
// is fine for a drift signal.
type Traffic struct {
	n     int
	bytes []atomic.Uint64
	ops   []atomic.Uint64

	// win is the program's default window (see Window); independent
	// consumers create their own with NewWindow.
	win *TrafficWindow
}

// newTraffic sizes a recorder for n tasks.
func newTraffic(n int) *Traffic {
	t := &Traffic{
		n:     n,
		bytes: make([]atomic.Uint64, n*n),
		ops:   make([]atomic.Uint64, n*n),
	}
	t.win = t.NewWindow()
	return t
}

// Tasks returns the number of tasks the recorder covers.
func (t *Traffic) Tasks() int { return t.n }

// Record accumulates one transfer of b bytes from task `from` to task
// `to`. Out-of-range or self pairs and unattributed endpoints
// (negative ids, e.g. remote peers without a task identity) are
// dropped — the recorder measures inter-task traffic only.
func (t *Traffic) Record(from, to, b int) {
	if t == nil || from == to || from < 0 || to < 0 || from >= t.n || to >= t.n {
		return
	}
	i := from*t.n + to
	t.bytes[i].Add(uint64(b))
	t.ops[i].Add(1)
}

// Matrix returns the cumulative observed communication matrix: entry
// (i, j) holds the bytes moved from task i to task j since the
// program started.
func (t *Traffic) Matrix() *comm.Matrix {
	m := comm.NewMatrix(t.n)
	for i := 0; i < t.n; i++ {
		for j := 0; j < t.n; j++ {
			if v := t.bytes[i*t.n+j].Load(); v != 0 {
				m.Set(i, j, float64(v))
			}
		}
	}
	return m
}

// TrafficWindow carves the recorder's cumulative counters into
// disjoint epochs for one consumer: each Next call returns the
// traffic since that window's previous call. Every consumer that
// snapshots independently (an adaptive reconciler, a module with
// observed affinity, a monitoring scraper) must own its own window —
// sharing one would silently steal epochs from the other readers.
type TrafficWindow struct {
	t *Traffic

	mu   sync.Mutex
	base []uint64 // cumulative byte counts at the previous Next call
}

// NewWindow returns an independent epoch window over the recorder
// with an empty baseline: the first Next returns everything recorded
// since the program started.
func (t *Traffic) NewWindow() *TrafficWindow {
	return &TrafficWindow{t: t, base: make([]uint64, t.n*t.n)}
}

// Next returns the observed matrix of the epoch since the previous
// Next call (or since the start, on the first call) and advances the
// window baseline.
func (w *TrafficWindow) Next() *comm.Matrix {
	w.mu.Lock()
	defer w.mu.Unlock()
	t := w.t
	m := comm.NewMatrix(t.n)
	for i := range w.base {
		cur := t.bytes[i].Load()
		if d := cur - w.base[i]; d != 0 {
			m.Set(i/t.n, i%t.n, float64(d))
		}
		w.base[i] = cur
	}
	return m
}

// Window advances the recorder's default window — a convenience for
// single-consumer programs. Independent consumers must use NewWindow:
// this shared window hands each epoch to whichever caller asks first.
func (t *Traffic) Window() *comm.Matrix {
	return t.win.Next()
}

// Totals returns the cumulative byte and operation counts over all
// pairs.
func (t *Traffic) Totals() (bytes, ops uint64) {
	for i := range t.bytes {
		bytes += t.bytes[i].Load()
		ops += t.ops[i].Load()
	}
	return
}

// Ops returns the cumulative transfer-operation count for the (from,
// to) pair.
func (t *Traffic) Ops(from, to int) uint64 {
	if from < 0 || to < 0 || from >= t.n || to >= t.n {
		return 0
	}
	return t.ops[from*t.n+to].Load()
}

// Traffic exposes the program's traffic recorder, so DFG primitives
// that live outside the location grid (Fifo) can be wired into the
// same observed matrix.
func (p *Program) Traffic() *Traffic { return p.traffic }

// ObservedMatrix returns the cumulative runtime-observed communication
// matrix — the measured counterpart of DependencyMatrix. Entry (i, j)
// is the bytes that actually flowed from task i to task j through
// location grants, raw requests and instrumented FIFOs.
func (p *Program) ObservedMatrix() *comm.Matrix { return p.traffic.Matrix() }

// ObservedWindow returns the observed matrix since the previous
// ObservedWindow call and starts a new window — the epoch snapshots an
// adaptive placement loop consumes.
func (p *Program) ObservedWindow() *comm.Matrix { return p.traffic.Window() }
