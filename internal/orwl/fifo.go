package orwl

import (
	"fmt"
	"sync"
)

// Fifo is the orwl_fifo DFG primitive: a bounded queue of data versions
// between a producer and consumers. Instead of holding the location
// lock while a frame is consumed, the producer pushes a fresh copy and
// releases immediately, which keeps the pipeline flowing (§V-C).
type Fifo struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	buf      [][]byte
	capacity int
	closed   bool
}

// NewFifo creates a FIFO holding at most capacity versions.
func NewFifo(capacity int) (*Fifo, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("orwl: fifo capacity must be positive, got %d", capacity)
	}
	f := &Fifo{capacity: capacity}
	f.notEmpty = sync.NewCond(&f.mu)
	f.notFull = sync.NewCond(&f.mu)
	return f, nil
}

// Push copies data into the FIFO, blocking while it is full. Pushing to
// a closed FIFO returns an error.
func (f *Fifo) Push(data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.buf) >= f.capacity && !f.closed {
		f.notFull.Wait()
	}
	if f.closed {
		return fmt.Errorf("orwl: push on closed fifo")
	}
	f.buf = append(f.buf, cp)
	f.notEmpty.Signal()
	return nil
}

// Pop removes and returns the oldest version, blocking while the FIFO
// is empty. It returns ok=false once the FIFO is closed and drained.
func (f *Fifo) Pop() (data []byte, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.buf) == 0 && !f.closed {
		f.notEmpty.Wait()
	}
	if len(f.buf) == 0 {
		return nil, false
	}
	data = f.buf[0]
	f.buf = f.buf[1:]
	f.notFull.Signal()
	return data, true
}

// TryPop is Pop without blocking.
func (f *Fifo) TryPop() (data []byte, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.buf) == 0 {
		return nil, false
	}
	data = f.buf[0]
	f.buf = f.buf[1:]
	f.notFull.Signal()
	return data, true
}

// Len returns the number of buffered versions.
func (f *Fifo) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.buf)
}

// Close marks the FIFO finished: blocked producers fail, consumers
// drain the remaining versions and then see ok=false.
func (f *Fifo) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	f.notEmpty.Broadcast()
	f.notFull.Broadcast()
}
