package orwl

import (
	"fmt"
	"sync"
)

// Fifo is the orwl_fifo DFG primitive: a bounded queue of data versions
// between a producer and consumers. Instead of holding the location
// lock while a frame is consumed, the producer pushes a fresh copy and
// releases immediately, which keeps the pipeline flowing (§V-C).
type Fifo struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	buf      [][]byte
	capacity int
	closed   bool

	// Observed-traffic instrumentation (see Instrument): nil/negative
	// means uninstrumented, which keeps Push/Pop at their old cost.
	traffic  *Traffic
	producer int
	consumer int
}

// NewFifo creates a FIFO holding at most capacity versions.
func NewFifo(capacity int) (*Fifo, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("orwl: fifo capacity must be positive, got %d", capacity)
	}
	f := &Fifo{capacity: capacity, producer: -1, consumer: -1}
	f.notEmpty = sync.NewCond(&f.mu)
	f.notFull = sync.NewCond(&f.mu)
	return f, nil
}

// Instrument wires the FIFO into a program's observed-traffic
// recorder (typically prog.Traffic()): every popped version is
// recorded as producer -> consumer volume. FIFOs are point-to-point
// in the DFG applications, so one task pair per FIFO suffices; leave
// a FIFO uninstrumented (the default) and its Push/Pop paths skip the
// counters entirely.
func (f *Fifo) Instrument(t *Traffic, producer, consumer int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.traffic = t
	f.producer = producer
	f.consumer = consumer
}

// Push copies data into the FIFO, blocking while it is full. Pushing to
// a closed FIFO returns an error.
func (f *Fifo) Push(data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.buf) >= f.capacity && !f.closed {
		f.notFull.Wait()
	}
	if f.closed {
		return fmt.Errorf("orwl: push on closed fifo")
	}
	f.buf = append(f.buf, cp)
	f.notEmpty.Signal()
	return nil
}

// Pop removes and returns the oldest version, blocking while the FIFO
// is empty. It returns ok=false once the FIFO is closed and drained.
func (f *Fifo) Pop() (data []byte, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.buf) == 0 && !f.closed {
		f.notEmpty.Wait()
	}
	if len(f.buf) == 0 {
		return nil, false
	}
	data = f.buf[0]
	f.buf = f.buf[1:]
	f.notFull.Signal()
	f.observePopLocked(len(data))
	return data, true
}

// TryPop is Pop without blocking.
func (f *Fifo) TryPop() (data []byte, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.buf) == 0 {
		return nil, false
	}
	data = f.buf[0]
	f.buf = f.buf[1:]
	f.notFull.Signal()
	f.observePopLocked(len(data))
	return data, true
}

// observePopLocked records one consumed version on the instrumented
// task pair. A pop is the point where the data demonstrably moved
// producer -> consumer (a pushed version may still be dropped by
// Close), so the pair is counted once per version, here.
func (f *Fifo) observePopLocked(bytes int) {
	if f.traffic != nil {
		f.traffic.Record(f.producer, f.consumer, bytes)
	}
}

// Len returns the number of buffered versions.
func (f *Fifo) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.buf)
}

// Close marks the FIFO finished: blocked producers fail, consumers
// drain the remaining versions and then see ok=false.
func (f *Fifo) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	f.notEmpty.Broadcast()
	f.notFull.Broadcast()
}
