package orwl

import (
	"bytes"
	"sync"
	"testing"
)

func TestFifoValidation(t *testing.T) {
	if _, err := NewFifo(0); err == nil {
		t.Error("accepted zero capacity")
	}
	if _, err := NewFifo(-1); err == nil {
		t.Error("accepted negative capacity")
	}
}

func TestFifoOrderAndCopySemantics(t *testing.T) {
	f, err := NewFifo(4)
	if err != nil {
		t.Fatal(err)
	}
	src := []byte{1, 2, 3}
	if err := f.Push(src); err != nil {
		t.Fatal(err)
	}
	src[0] = 99 // must not affect the queued version
	if err := f.Push([]byte{4}); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 2 {
		t.Errorf("len = %d", f.Len())
	}
	got, ok := f.Pop()
	if !ok || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("pop = %v, %v", got, ok)
	}
	got, ok = f.Pop()
	if !ok || !bytes.Equal(got, []byte{4}) {
		t.Errorf("pop = %v, %v", got, ok)
	}
	if _, ok := f.TryPop(); ok {
		t.Error("TryPop on empty should fail")
	}
}

func TestFifoBlocksWhenFullAndDrainsOnClose(t *testing.T) {
	f, err := NewFifo(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Push([]byte{1}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Push([]byte{2}) }() // blocks until a pop
	if got, ok := f.Pop(); !ok || got[0] != 1 {
		t.Fatalf("pop = %v %v", got, ok)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got, ok := f.Pop(); !ok || got[0] != 2 {
		t.Errorf("drain after close = %v %v", got, ok)
	}
	if _, ok := f.Pop(); ok {
		t.Error("pop after drain should report closed")
	}
	if err := f.Push([]byte{3}); err == nil {
		t.Error("push after close accepted")
	}
}

func TestFifoCloseUnblocksProducer(t *testing.T) {
	f, _ := NewFifo(1)
	_ = f.Push([]byte{1})
	done := make(chan error, 1)
	go func() { done <- f.Push([]byte{2}) }()
	f.Close()
	if err := <-done; err == nil {
		t.Error("blocked producer should fail on close")
	}
}

func TestFifoProducerConsumerStress(t *testing.T) {
	f, _ := NewFifo(8)
	const n = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := f.Push([]byte{byte(i), byte(i >> 8)}); err != nil {
				t.Error(err)
				return
			}
		}
		f.Close()
	}()
	count := 0
	for {
		got, ok := f.Pop()
		if !ok {
			break
		}
		val := int(got[0]) | int(got[1])<<8
		if val != count {
			t.Fatalf("out of order: got %d, want %d", val, count)
		}
		count++
	}
	wg.Wait()
	if count != n {
		t.Errorf("consumed %d, want %d", count, n)
	}
}

func TestSplitValidation(t *testing.T) {
	p := MustProgram(1, "frame")
	loc := p.Location(Loc(0, "frame"))
	loc.Scale(10)
	if _, err := p.NewSplit(nil, Loc(0, "frame"), 2); err == nil {
		t.Error("accepted nil location")
	}
	if _, err := p.NewSplit(loc, Loc(0, "frame"), 0); err == nil {
		t.Error("accepted zero parts")
	}
}

func TestSplitPartSizesAndScatterGather(t *testing.T) {
	p := MustProgram(1, "frame")
	loc := p.Location(Loc(0, "frame"))
	loc.Scale(10)
	s, err := p.NewSplit(loc, Loc(0, "frame"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Parts() != 3 {
		t.Fatalf("parts = %d", s.Parts())
	}
	// 10 bytes over 3 parts: sizes 4,3,3.
	wantSizes := []int{4, 3, 3}
	total := 0
	for i, w := range wantSizes {
		if got := s.Part(i).Size(); got != w {
			t.Errorf("part %d size = %d, want %d", i, got, w)
		}
		total += s.Part(i).Size()
	}
	if total != 10 {
		t.Errorf("total = %d", total)
	}
	if s.Part(-1) != nil || s.Part(3) != nil {
		t.Error("out-of-range Part should be nil")
	}

	src := []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s.Scatter(src)
	if got := s.Part(1).buffer(); !bytes.Equal(got, []byte{4, 5, 6}) {
		t.Errorf("part 1 = %v", got)
	}
	dst := make([]byte, 10)
	s.Gather(dst)
	if !bytes.Equal(dst, src) {
		t.Errorf("gather = %v", dst)
	}
}

func TestSplitPartsParticipateInDependencies(t *testing.T) {
	// A splitter task writes parts; worker tasks read them: the comm
	// matrix must show splitter -> worker edges.
	p := MustProgram(3, "frame")
	loc := p.Location(Loc(0, "frame"))
	loc.Scale(8)
	s, err := p.NewSplit(loc, Loc(0, "frame"), 2)
	if err != nil {
		t.Fatal(err)
	}
	err = p.Run(func(ctx *TaskContext) error {
		switch ctx.TID() {
		case 0:
			h0 := NewHandle()
			h1 := NewHandle()
			if err := ctx.WriteInsert(h0, Loc(0, "frame#0"), 0); err != nil {
				return err
			}
			if err := ctx.WriteInsert(h1, Loc(0, "frame#1"), 0); err != nil {
				return err
			}
			return ctx.Schedule()
		default:
			h := NewHandle()
			name := "frame#0"
			if ctx.TID() == 2 {
				name = "frame#1"
			}
			if err := ctx.ReadInsert(h, Loc(0, name), 1); err != nil {
				return err
			}
			return ctx.Schedule()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m := p.DependencyMatrix()
	if m.At(0, 1) != 4 || m.At(0, 2) != 4 {
		t.Errorf("split dependencies = %g/%g, want 4/4", m.At(0, 1), m.At(0, 2))
	}
	_ = s
}

func TestSplitUnevenSmallerThanParts(t *testing.T) {
	p := MustProgram(1, "x")
	loc := p.Location(Loc(0, "x"))
	loc.Scale(2)
	s, err := p.NewSplit(loc, Loc(0, "x"), 4)
	if err != nil {
		t.Fatal(err)
	}
	sizes := 0
	for i := 0; i < 4; i++ {
		sizes += s.Part(i).Size()
	}
	if sizes != 2 {
		t.Errorf("total part size = %d, want 2", sizes)
	}
	// Scatter with a short parent buffer must zero-fill.
	s.Scatter([]byte{7})
	if got := s.Part(0).buffer(); len(got) != 1 || got[0] != 7 {
		t.Errorf("part 0 = %v", got)
	}
}
