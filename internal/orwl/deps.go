package orwl

import (
	"orwlplace/internal/comm"
)

// DependencyMatrix derives the task communication matrix from the
// task–location graph, exactly as the runtime does when orwl_schedule
// is called (§IV-A): for every location, every writer exchanges the
// location's size with every reader. The entry (w, r) accumulates the
// volume flowing from writer task w to reader task r.
//
// The matrix is available from the moment all insertions are recorded;
// calling it before the schedule barrier from the schedule hook is the
// intended use.
func (p *Program) DependencyMatrix() *comm.Matrix {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := comm.NewMatrix(p.numTasks)
	type locUse struct {
		writers []int
		readers []int
	}
	uses := make(map[*Location]*locUse)
	for _, rec := range p.inserts {
		u := uses[rec.loc]
		if u == nil {
			u = &locUse{}
			uses[rec.loc] = u
		}
		if rec.mode == Write {
			u.writers = append(u.writers, rec.task)
		} else {
			u.readers = append(u.readers, rec.task)
		}
	}
	for loc, u := range uses {
		size := float64(len(loc.data))
		if size == 0 {
			// Unsized locations still express a dependency; count one
			// unit so connectivity is preserved.
			size = 1
		}
		for _, w := range u.writers {
			for _, r := range u.readers {
				if w != r {
					m.Add(w, r, size)
				}
			}
		}
	}
	return m
}

// ControlThreadsPerTask counts, for every task, the locations it owns —
// the number of control threads the C runtime would deploy on its
// behalf. The affinity module uses this to dimension the control-thread
// extension of the communication matrix.
func (p *Program) ControlThreadsPerTask() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	counts := make([]int, p.numTasks)
	for id := range p.locs {
		if id.Task >= 0 && id.Task < p.numTasks {
			counts[id.Task]++
		}
	}
	return counts
}
