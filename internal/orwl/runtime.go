package orwl

import (
	"fmt"
	"sort"
	"sync"

	"orwlplace/internal/bind"
)

// LocationID names a location in a task's namespace, as
// ORWL_LOCATION(task, name) does in the C library.
type LocationID struct {
	Task int
	Name string
}

// Loc is shorthand for LocationID{task, name}.
func Loc(task int, name string) LocationID { return LocationID{Task: task, Name: name} }

// insertRec records one handle insertion before scheduling, so the
// runtime can order initial requests by priority and derive the
// dependency graph.
type insertRec struct {
	task     int
	handle   *Handle
	loc      *Location
	mode     Mode
	priority int
	seq      int
}

// Program is the ORWL runtime instance for one application run: a fixed
// set of tasks, their per-task locations, and the schedule barrier
// where the affinity module plugs in.
type Program struct {
	numTasks int
	locNames []string

	mu      sync.Mutex
	locs    map[LocationID]*Location
	inserts []insertRec
	seq     int

	scheduled   bool
	arrivals    int
	schedDone   chan struct{}
	scheduleErr error

	// traffic records the observed inter-task communication (see
	// traffic.go); every location of the program shares it.
	traffic *Traffic

	// scheduleHook runs exactly once, when the last task reaches
	// Schedule and after all initial requests are ordered — the point
	// where the paper's affinity module computes and applies the thread
	// mapping.
	scheduleHook func(*Program)

	// binding is populated by the affinity module (task -> logical PU);
	// -1 or missing means unbound.
	binding        map[int]int
	controlBinding map[int]int
}

// NewProgram creates a runtime for numTasks tasks, declaring the given
// location names in every task's namespace
// (ORWL_LOCATIONS_PER_TASK).
func NewProgram(numTasks int, locNames ...string) (*Program, error) {
	if numTasks <= 0 {
		return nil, fmt.Errorf("orwl: program needs at least one task, got %d", numTasks)
	}
	p := &Program{
		numTasks:  numTasks,
		locNames:  append([]string(nil), locNames...),
		locs:      make(map[LocationID]*Location),
		schedDone: make(chan struct{}),
		binding:   make(map[int]int),
		traffic:   newTraffic(numTasks),
	}
	for t := 0; t < numTasks; t++ {
		for _, name := range locNames {
			id := LocationID{Task: t, Name: name}
			p.locs[id] = newLocation(fmt.Sprintf("%d/%s", t, name), t, p.traffic)
		}
	}
	return p, nil
}

// MustProgram is NewProgram panicking on error, for tests and examples.
func MustProgram(numTasks int, locNames ...string) *Program {
	p, err := NewProgram(numTasks, locNames...)
	if err != nil {
		panic(err)
	}
	return p
}

// NumTasks returns the task count.
func (p *Program) NumTasks() int { return p.numTasks }

// LocationNames returns the per-task location names.
func (p *Program) LocationNames() []string { return append([]string(nil), p.locNames...) }

// Location resolves a location id, or nil if it does not exist.
func (p *Program) Location(id LocationID) *Location {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.locs[id]
}

// AddLocation declares an extra location outside the regular per-task
// grid (used by the Split primitive and by DFG-style programs). The
// owner is recorded for dependency accounting.
func (p *Program) AddLocation(id LocationID) (*Location, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.locs[id]; dup {
		return nil, fmt.Errorf("orwl: duplicate location %v", id)
	}
	if p.scheduled {
		return nil, fmt.Errorf("orwl: cannot add location %v after schedule", id)
	}
	l := newLocation(fmt.Sprintf("%d/%s", id.Task, id.Name), id.Task, p.traffic)
	p.locs[id] = l
	return l, nil
}

// SetScheduleHook installs the function invoked once at the schedule
// barrier; the affinity module uses it to compute and set bindings.
func (p *Program) SetScheduleHook(hook func(*Program)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.scheduleHook = hook
}

// SetBinding records the placement of a task's compute thread (PU
// index; logical and OS indexes coincide on the synthetic machines).
// The binding parameterises the performance simulator and the
// reporting tools, and a task may apply it to its own OS thread with
// TaskContext.BindSelf.
func (p *Program) SetBinding(task, pu int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.binding[task] = pu
}

// SetControlBinding records the placement of a task's control threads.
func (p *Program) SetControlBinding(task, pu int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.controlBinding == nil {
		p.controlBinding = make(map[int]int)
	}
	p.controlBinding[task] = pu
}

// Binding returns the compute binding (task -> PU), or nil when no
// affinity was applied.
func (p *Program) Binding() map[int]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.binding) == 0 {
		return nil
	}
	out := make(map[int]int, len(p.binding))
	for k, v := range p.binding {
		out[k] = v
	}
	return out
}

// ControlBinding returns the control-thread binding, or nil.
func (p *Program) ControlBinding() map[int]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.controlBinding) == 0 {
		return nil
	}
	out := make(map[int]int, len(p.controlBinding))
	for k, v := range p.controlBinding {
		out[k] = v
	}
	return out
}

// recordInsert registers a handle insertion before the schedule point.
func (p *Program) recordInsert(task int, h *Handle, loc *Location, mode Mode, priority int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.scheduled {
		return fmt.Errorf("orwl: handle insertion after schedule")
	}
	if err := h.bind(loc, mode); err != nil {
		return err
	}
	p.inserts = append(p.inserts, insertRec{
		task: task, handle: h, loc: loc, mode: mode,
		priority: priority, seq: p.seq,
	})
	p.seq++
	return nil
}

// scheduleArrive implements the orwl_schedule barrier: the last task to
// arrive performs the global ordered insertion of all initial requests,
// runs the schedule hook, and releases everyone.
func (p *Program) scheduleArrive() error {
	p.mu.Lock()
	p.arrivals++
	if p.arrivals > p.numTasks {
		p.mu.Unlock()
		return fmt.Errorf("orwl: more schedule arrivals than tasks")
	}
	if p.arrivals < p.numTasks {
		p.mu.Unlock()
		<-p.schedDone
		p.mu.Lock()
		err := p.scheduleErr
		p.mu.Unlock()
		return err
	}
	// Last arrival: order all initial requests by (priority, seq) per
	// location and insert them into the FIFOs.
	recs := append([]insertRec(nil), p.inserts...)
	sort.SliceStable(recs, func(a, b int) bool {
		if recs[a].priority != recs[b].priority {
			return recs[a].priority < recs[b].priority
		}
		return recs[a].seq < recs[b].seq
	})
	for _, r := range recs {
		r.handle.cur = r.loc.insertFor(r.task, r.mode)
	}
	p.scheduled = true
	hook := p.scheduleHook
	p.mu.Unlock()

	if hook != nil {
		hook(p)
	}
	close(p.schedDone)
	return nil
}

// InsertCount reports the number of handle insertions recorded so far
// — the dependency information the declared matrix derives from.
// Placement front ends use it to reject extraction from a program
// that has announced no handles yet.
func (p *Program) InsertCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.inserts)
}

// Scheduled reports whether the schedule barrier has completed.
func (p *Program) Scheduled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.scheduled
}

// TaskContext is the view a task body has of the runtime.
type TaskContext struct {
	prog *Program
	tid  int
}

// TID returns the task id (orwl_mytid).
func (c *TaskContext) TID() int { return c.tid }

// NumTasks returns the number of tasks in the program.
func (c *TaskContext) NumTasks() int { return c.prog.numTasks }

// Program returns the enclosing program.
func (c *TaskContext) Program() *Program { return c.prog }

// Location resolves a location id.
func (c *TaskContext) Location(id LocationID) *Location { return c.prog.Location(id) }

// Scale resizes one of the task's own locations (orwl_scale).
func (c *TaskContext) Scale(name string, size int) error {
	loc := c.prog.Location(Loc(c.tid, name))
	if loc == nil {
		return fmt.Errorf("orwl: task %d has no location %q", c.tid, name)
	}
	loc.Scale(size)
	return nil
}

// WriteInsert binds h to the location with write access at the given
// FIFO priority (orwl_write_insert).
func (c *TaskContext) WriteInsert(h *Handle, id LocationID, priority int) error {
	loc := c.prog.Location(id)
	if loc == nil {
		return fmt.Errorf("orwl: unknown location %v", id)
	}
	return c.prog.recordInsert(c.tid, h, loc, Write, priority)
}

// ReadInsert binds h to the location with read access at the given FIFO
// priority (orwl_read_insert).
func (c *TaskContext) ReadInsert(h *Handle, id LocationID, priority int) error {
	loc := c.prog.Location(id)
	if loc == nil {
		return fmt.Errorf("orwl: unknown location %v", id)
	}
	return c.prog.recordInsert(c.tid, h, loc, Read, priority)
}

// Schedule synchronises with all other tasks and activates the ordered
// initial requests (orwl_schedule). Every task must call it exactly
// once, after performing all its insertions.
func (c *TaskContext) Schedule() error { return c.prog.scheduleArrive() }

// Request queues a steady-state access on a location for this task —
// the post-schedule insertion path dynamic programs use when their
// communication pattern drifts away from the declared handle graph.
// Unlike handles, these requests are attributed but unordered: they
// land at the FIFO tail in call order. Releases feed the program's
// observed-traffic counters.
func (c *TaskContext) Request(id LocationID, mode Mode) (*RawRequest, error) {
	loc := c.prog.Location(id)
	if loc == nil {
		return nil, fmt.Errorf("orwl: unknown location %v", id)
	}
	return loc.NewRequestFor(c.tid, mode), nil
}

// BindSelf applies the affinity module's placement to the calling task
// goroutine: it locks the goroutine to its OS thread and restricts the
// thread to the bound PU (hwloc's thread binding, best effort — a
// no-op when the task is unbound or the platform cannot pin threads).
// The returned function releases the binding; callers typically defer
// it right after Schedule.
func (c *TaskContext) BindSelf() (release func(), err error) {
	c.prog.mu.Lock()
	pu, ok := c.prog.binding[c.tid]
	c.prog.mu.Unlock()
	if !ok || pu < 0 {
		return func() {}, nil
	}
	b, err := bind.BindCurrent(pu)
	if err != nil {
		return func() {}, err
	}
	return func() { _ = b.Unbind() }, nil
}

// Run executes body as the program's tasks, one goroutine per task, and
// waits for all of them. The first non-nil error is returned.
func (p *Program) Run(body func(*TaskContext) error) error {
	var wg sync.WaitGroup
	errs := make([]error, p.numTasks)
	for t := 0; t < p.numTasks; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			errs[tid] = body(&TaskContext{prog: p, tid: tid})
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunTasks executes a distinct body per task id, for heterogeneous
// programs such as the video-tracking DFG.
func (p *Program) RunTasks(bodies []func(*TaskContext) error) error {
	if len(bodies) != p.numTasks {
		return fmt.Errorf("orwl: %d task bodies for %d tasks", len(bodies), p.numTasks)
	}
	return p.Run(func(ctx *TaskContext) error { return bodies[ctx.tid](ctx) })
}

// ControlStats sums the control events (inserts, grants, releases) over
// all locations: a proxy for the control-thread traffic of the C
// runtime.
func (p *Program) ControlStats() (inserts, grants, releases uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, l := range p.locs {
		i, g, r := l.Stats()
		inserts += i
		grants += g
		releases += r
	}
	return
}
