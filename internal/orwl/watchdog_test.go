package orwl

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestWatchStallsDetectsDeadlock builds a guaranteed lock-order
// deadlock: each of two tasks holds its own location and then waits for
// the other's, with FIFO priorities that grant both inner requests
// behind the held writes.
func TestWatchStallsDetectsDeadlock(t *testing.T) {
	p := MustProgram(2, "m")
	fired := make(chan *StallReport, 1)
	stop := p.WatchStalls(5*time.Millisecond, func(r *StallReport) { fired <- r })
	defer stop()

	release := make(chan struct{})
	done := make(chan error, 2)
	for tid := 0; tid < 2; tid++ {
		go func(tid int) {
			ctx := &TaskContext{prog: p, tid: tid}
			own := NewHandle()
			peer := NewHandle()
			if err := ctx.WriteInsert(own, Loc(tid, "m"), 0); err != nil {
				done <- err
				return
			}
			if err := ctx.ReadInsert(peer, Loc(1-tid, "m"), 1); err != nil {
				done <- err
				return
			}
			if err := ctx.Schedule(); err != nil {
				done <- err
				return
			}
			if err := own.Acquire(); err != nil {
				done <- err
				return
			}
			// Deadlock: the peer's location is held by its owner, which
			// is symmetrically waiting for ours.
			select {
			case <-peer.ready():
				done <- nil
			case <-release:
				done <- own.Release()
			}
		}(tid)
	}

	select {
	case r := <-fired:
		if r.Waiting != 2 {
			t.Errorf("waiting groups = %d, want 2", r.Waiting)
		}
		if !strings.Contains(r.State, "waiting") {
			t.Errorf("report state missing queues:\n%s", r.State)
		}
		if !strings.Contains(r.Error(), "no progress") {
			t.Error("error text wrong")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog did not fire on a deadlock")
	}
	// Unblock the tasks so the test exits cleanly.
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// ready exposes the grant channel for the deadlock test only.
func (h *Handle) ready() <-chan struct{} { return h.cur.ready }

// TestWatchStallsQuietOnHealthyRun verifies no false positives on a
// busy pipeline.
func TestWatchStallsQuietOnHealthyRun(t *testing.T) {
	p := MustProgram(2, "ping")
	var fired atomic.Bool
	stop := p.WatchStalls(100*time.Millisecond, func(*StallReport) { fired.Store(true) })
	defer stop()
	err := p.Run(func(ctx *TaskContext) error {
		h := NewHandle2()
		if err := ctx.WriteInsert(h, Loc(0, "ping"), ctx.TID()); err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		for i := 0; i < 200; i++ {
			if err := h.Section(func([]byte) error {
				time.Sleep(100 * time.Microsecond)
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if fired.Load() {
		t.Error("watchdog fired on a healthy alternating run")
	}
}

// TestWatchStallsIgnoresIdleProgram: an idle program (drained queues)
// never triggers.
func TestWatchStallsIgnoresIdleProgram(t *testing.T) {
	p := MustProgram(1, "m")
	var fired atomic.Bool
	stop := p.WatchStalls(2*time.Millisecond, func(*StallReport) { fired.Store(true) })
	defer stop()
	time.Sleep(20 * time.Millisecond)
	if fired.Load() {
		t.Error("watchdog fired on an idle program")
	}
	stop() // double-stop is safe
}
