package orwl

import (
	"runtime"
	"testing"

	"orwlplace/internal/bind"
)

func TestBindSelfUnboundIsNoop(t *testing.T) {
	p := MustProgram(1, "m")
	err := p.Run(func(ctx *TaskContext) error {
		if err := ctx.Schedule(); err != nil {
			return err
		}
		release, err := ctx.BindSelf()
		if err != nil {
			return err
		}
		release()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBindSelfAppliesBinding(t *testing.T) {
	p := MustProgram(2, "m")
	p.SetScheduleHook(func(prog *Program) {
		prog.SetBinding(0, 0)
		prog.SetBinding(1, 0)
	})
	err := p.Run(func(ctx *TaskContext) error {
		if err := ctx.Schedule(); err != nil {
			return err
		}
		release, err := ctx.BindSelf()
		if err != nil {
			return err
		}
		defer release()
		if bind.Supported() && runtime.NumCPU() > 1 {
			cpus, err := bind.Current()
			if err != nil {
				return err
			}
			if len(cpus) != 1 || cpus[0] != 0 {
				t.Errorf("task %d affinity = %v, want [0]", ctx.TID(), cpus)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// After Run, the test goroutine itself must be unrestricted.
	if bind.Supported() {
		cpus, err := bind.Current()
		if err != nil {
			t.Fatal(err)
		}
		if len(cpus) != runtime.NumCPU() {
			t.Errorf("test thread affinity leaked: %v", cpus)
		}
	}
}
