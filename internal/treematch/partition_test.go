package treematch

import (
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

// TestMapAffinityDenseGolden pins the tentpole's decision-identity
// guarantee: at or below the partition threshold, MapAffinity takes the
// single-shot dense path and must reproduce Map bit for bit, whichever
// representation carries the affinity.
func TestMapAffinityDenseGolden(t *testing.T) {
	cases := []struct {
		name string
		top  *topology.Topology
		m    *comm.Matrix
		opt  Options
	}{
		{"ring-tinyht", topology.TinyHT(), comm.Ring(4, 100, true), Options{ControlThreads: true}},
		{"clustered-smp20e7", topology.SMP20E7(), comm.Clustered(160, 20, 1000, 10), Options{}},
		{"stencil-smp12e5", topology.SMP12E5(), comm.Stencil2D(8, 8, 50, 30), Options{ControlThreads: true}},
		{"oversub-tinyflat", topology.TinyFlat(), comm.Ring(20, 10, false), Options{}},
		{"random-fig2", topology.Fig2Machine(), comm.Random(32, 100, 3), Options{RefineRounds: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := Map(tc.top, tc.m, tc.opt)
			if err != nil {
				t.Fatalf("Map: %v", err)
			}
			for _, a := range []comm.Affinity{tc.m, comm.SparseFromMatrix(tc.m)} {
				got, err := MapAffinity(tc.top, a, tc.opt)
				if err != nil {
					t.Fatalf("MapAffinity: %v", err)
				}
				if got.Mode != want.Mode || got.Oversubscribed != want.Oversubscribed {
					t.Fatalf("mode/oversub diverged: got %v/%v want %v/%v",
						got.Mode, got.Oversubscribed, want.Mode, want.Oversubscribed)
				}
				for i := range want.ComputePU {
					if got.ComputePU[i] != want.ComputePU[i] ||
						got.ControlPU[i] != want.ControlPU[i] ||
						got.CoreOf[i] != want.CoreOf[i] {
						t.Fatalf("task %d diverged: got (%d,%d,%d) want (%d,%d,%d)", i,
							got.ComputePU[i], got.ControlPU[i], got.CoreOf[i],
							want.ComputePU[i], want.ControlPU[i], want.CoreOf[i])
					}
				}
				if got.Partitions != nil {
					t.Fatal("dense path reported a partitioning")
				}
			}
		})
	}
}

// TestPartitionGreedySparseMatchesGroupGreedy pins the sparse
// partitioner to the dense greedy grouper's decisions on matrices where
// both run (symmetric, non-negative, exact division).
func TestPartitionGreedySparseMatchesGroupGreedy(t *testing.T) {
	for _, tc := range []struct {
		name  string
		m     *comm.Matrix
		arity int
	}{
		{"ring24", comm.Ring(24, 100, true), 4},
		{"clustered32", comm.Clustered(32, 8, 1000, 1), 4},
		{"stencil36", comm.Stencil2D(6, 6, 70, 20), 6},
		{"sparse-islands", comm.RingOfClusters(6, 5, 500, 5).Dense(), 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.m.Order()
			ws := getWorkspace()
			want := groupGreedy(tc.m, tc.arity, ws, false)
			normalizeGroups(want)
			putWorkspace(ws)

			pt := newPartitioner(tc.m)
			tasks := make([]int, n)
			for i := range tasks {
				tasks[i] = i
			}
			got := pt.split(tasks, n/tc.arity)
			if len(got) != len(want) {
				t.Fatalf("%d groups, want %d", len(got), len(want))
			}
			for g := range want {
				if len(got[g]) != len(want[g]) {
					t.Fatalf("group %d: %v, want %v", g, got[g], want[g])
				}
				for k := range want[g] {
					if got[g][k] != want[g][k] {
						t.Fatalf("group %d: %v, want %v", g, got[g], want[g])
					}
				}
			}
		})
	}
}

// TestMapAffinityPartitioned checks the sparse partitioned path on a
// ring-of-clusters big enough to cross the threshold: the mapping must
// be structurally valid, every partition's tasks must land inside its
// own subtree, the partitions must tile the task set, and the weak-cut
// recursion must keep almost all intra-cluster traffic NUMA-local.
func TestMapAffinityPartitioned(t *testing.T) {
	top := topology.Fleet1K()
	k, size := 128, 32
	s := comm.RingOfClusters(k, size, 1000, 10)
	n := k * size
	mp, err := MapAffinity(top, s, Options{})
	if err != nil {
		t.Fatalf("MapAffinity: %v", err)
	}
	if mp.Partitions == nil {
		t.Fatal("no partitioning recorded above the threshold")
	}
	if len(mp.ComputePU) != n {
		t.Fatalf("%d bindings, want %d", len(mp.ComputePU), n)
	}
	nPU := top.NumPUs()
	for i, pu := range mp.ComputePU {
		if pu < 0 || pu >= nPU {
			t.Fatalf("task %d bound to PU %d out of range", i, pu)
		}
	}

	// Partition containment: each partition's tasks bound under its
	// subtree, and the parts must tile the task set exactly.
	seen := make([]bool, n)
	for _, part := range mp.Partitions.Parts {
		objs := top.ObjectsAtDepth(part.Depth)
		if part.Object < 0 || part.Object >= len(objs) {
			t.Fatalf("partition object %d out of range at depth %d", part.Object, part.Depth)
		}
		obj := objs[part.Object]
		pus := obj.PUs()
		lo := pus[0].LogicalIndex
		hi := lo + len(pus)
		for _, g := range part.Tasks {
			if seen[g] {
				t.Fatalf("task %d in two partitions", g)
			}
			seen[g] = true
			if mp.ComputePU[g] < lo || mp.ComputePU[g] >= hi {
				t.Fatalf("task %d of partition %d bound to PU %d outside [%d,%d)",
					g, part.Object, mp.ComputePU[g], lo, hi)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("task %d not in any partition", i)
		}
	}

	// Weak cuts: the recursion should keep clusters together, so the
	// overwhelming share of communication volume must stay on cores of
	// the same NUMA node. (Random placement would be ~1.5% local.)
	coresPerNUMA := top.NumCores() / top.NumObjects(topology.NUMANode)
	var intra, total float64
	for i := 0; i < n; i++ {
		s.ForEachRow(i, func(j int, v float64) {
			if j <= i {
				return
			}
			vol := v + s.At(j, i)
			total += vol
			if mp.CoreOf[i]/coresPerNUMA == mp.CoreOf[j]/coresPerNUMA {
				intra += vol
			}
		})
	}
	if total <= 0 {
		t.Fatal("no communication volume")
	}
	if frac := intra / total; frac < 0.75 {
		t.Fatalf("only %.1f%% of volume is NUMA-local", 100*frac)
	}
}

// TestRemapPartitionIsolated drives the partial-recompute primitive:
// remapping one partition against a changed affinity must not move any
// task of the other partitions.
func TestRemapPartitionIsolated(t *testing.T) {
	top := topology.Fleet1K()
	s := comm.RingOfClusters(64, 32, 1000, 10)
	mp, err := MapAffinity(top, s, Options{})
	if err != nil {
		t.Fatalf("MapAffinity: %v", err)
	}
	if mp.Partitions == nil || len(mp.Partitions.Parts) < 2 {
		t.Fatalf("want >= 2 partitions, got %+v", mp.Partitions)
	}
	target := mp.Partitions.Parts[1]
	before := make([]int, len(mp.ComputePU))
	copy(before, mp.ComputePU)

	// Perturb the traffic inside the target partition: reverse its
	// heaviest links so the subtree mapping changes.
	changed := s.Clone()
	for i := 0; i+1 < len(target.Tasks); i += 2 {
		changed.AddSym(target.Tasks[i], target.Tasks[i+1], 5000)
	}
	if err := RemapPartition(mp, changed, target, Options{}); err != nil {
		t.Fatalf("RemapPartition: %v", err)
	}
	inTarget := make(map[int]bool, len(target.Tasks))
	for _, g := range target.Tasks {
		inTarget[g] = true
	}
	for i := range before {
		if !inTarget[i] && mp.ComputePU[i] != before[i] {
			t.Fatalf("task %d outside the remapped partition moved %d -> %d",
				i, before[i], mp.ComputePU[i])
		}
	}
}
